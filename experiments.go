package megh

import (
	"megh/internal/experiments"
	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

// Experiment harness, re-exported: everything needed to regenerate the
// paper's Tables 2–3 and Figures 1–8.
type (
	// Setup sizes one experiment (dataset, M hosts, N VMs, steps, seed).
	Setup = experiments.Setup
	// Dataset selects the PlanetLab-like or Google-like workload.
	Dataset = experiments.Dataset
	// TableRow is one policy's line in a Table-2/3-style comparison.
	TableRow = experiments.TableRow
	// SeriesSet maps policy → full run result (Figures 2–5 series).
	SeriesSet = experiments.SeriesSet
	// ScalabilityPoint is one cell of the Figure-6 grids.
	ScalabilityPoint = experiments.ScalabilityPoint
	// SensitivityPoint is one boxplot of Figure 8.
	SensitivityPoint = experiments.SensitivityPoint
)

// The two evaluation workloads (§6.2).
const (
	PlanetLab = experiments.PlanetLab
	Google    = experiments.Google
)

// PaperPlanetLab returns the full Table-2 setup (800 PMs, 1052 VMs, 7 days).
func PaperPlanetLab(seed int64) Setup { return experiments.PaperPlanetLab(seed) }

// PaperGoogle returns the full Table-3 setup (500 PMs, 2000 VMs, 7 days).
func PaperGoogle(seed int64) Setup { return experiments.PaperGoogle(seed) }

// PaperMadVMSubset returns the Figure-4/5 setup (100 PMs, 150 VMs, 3 days).
func PaperMadVMSubset(ds Dataset, seed int64) Setup {
	return experiments.PaperMadVMSubset(ds, seed)
}

// PolicyNames lists the registered policies in presentation order.
func PolicyNames() []string { return experiments.PolicyNames() }

// NewPolicy builds any registered policy by its table name (e.g. "Megh",
// "THR-MMT", "MadVM").
func NewPolicy(name string, numVMs, numHosts int, seed int64) (Policy, error) {
	return experiments.NewPolicy(name, numVMs, numHosts, seed)
}

// RunPolicy builds and runs one named policy on a setup.
func RunPolicy(setup Setup, policy string) (*Result, error) {
	return experiments.RunPolicy(setup, policy)
}

// RunTable reproduces a Table-2/3-style comparison.
func RunTable(setup Setup, policies []string) ([]TableRow, error) {
	return experiments.RunTable(setup, policies)
}

// Workload substrate, re-exported.
type (
	// Trace is a per-VM CPU-utilization sequence (one sample per 5 min).
	Trace = workload.Trace
	// PlanetLabTraceConfig parameterises the PlanetLab-like generator.
	PlanetLabTraceConfig = workload.PlanetLabConfig
	// GoogleTraceConfig parameterises the Google-like generator.
	GoogleTraceConfig = workload.GoogleConfig
	// GoogleTask records one synthetic Google task (Figure 1b analysis).
	GoogleTask = workload.GoogleTask
)

// GeneratePlanetLabTraces produces n PlanetLab-like traces matched to the
// paper's §6.2 statistics (mean ≈ 12 %, std ≈ 34 %, sustained bursts).
func GeneratePlanetLabTraces(cfg PlanetLabTraceConfig, n int) ([]Trace, error) {
	return workload.GeneratePlanetLab(cfg, n)
}

// DefaultPlanetLabTraceConfig returns the fitted generator parameters.
func DefaultPlanetLabTraceConfig(seed int64) PlanetLabTraceConfig {
	return workload.DefaultPlanetLabConfig(seed)
}

// GenerateGoogleTraces produces n Google-Cluster-like traces plus the
// underlying task list (log-spread durations over 10¹–10⁶ s).
func GenerateGoogleTraces(cfg GoogleTraceConfig, n int) ([]Trace, []GoogleTask, error) {
	return workload.GenerateGoogle(cfg, n)
}

// DefaultGoogleTraceConfig returns the fitted generator parameters.
func DefaultGoogleTraceConfig(seed int64) GoogleTraceConfig {
	return workload.DefaultGoogleConfig(seed)
}

// Fleet constructors for the paper's host/VM mixes.

// PlanetLabHosts builds m hosts alternating HP ProLiant ML110 G4/G5
// (Table 1 power models).
func PlanetLabHosts(m int) ([]HostSpec, error) { return sim.PlanetLabHosts(m) }

// PlanetLabVMs builds n VM specs from the paper's instance mix.
func PlanetLabVMs(n int, seed int64) ([]VMSpec, error) { return sim.PlanetLabVMs(n, seed) }

// GoogleHosts builds m hosts for the Google setup.
func GoogleHosts(m int) ([]HostSpec, error) { return sim.GoogleHosts(m) }

// GoogleVMs builds n VM specs for the Google setup.
func GoogleVMs(n int, seed int64) ([]VMSpec, error) { return sim.GoogleVMs(n, seed) }

// Power models, re-exported.
type PowerModel = power.Model

// HPProLiantG4 and HPProLiantG5 return the paper's Table-1 SPECpower
// models.
func HPProLiantG4() PowerModel { return power.HPProLiantG4() }

// HPProLiantG5 returns the second Table-1 server model.
func HPProLiantG5() PowerModel { return power.HPProLiantG5() }
