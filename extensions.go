package megh

import (
	"io"

	"megh/internal/consolidation"
	"megh/internal/core"
	"megh/internal/cost"
	"megh/internal/experiments"
	"megh/internal/sim"
	"megh/internal/topology"
	"megh/internal/workload"
)

// Cost model, re-exported.
type (
	// CostParams holds the §3 cost-model constants (energy tariff, SLA
	// refund tiers, optional resource modules).
	CostParams = cost.Params
	// SLAAccounting selects how refund tiers are keyed.
	SLAAccounting = cost.SLAAccounting
)

// SLA accounting modes (see DESIGN.md §5.4).
const (
	SLAPerInterval = cost.SLAPerInterval
	SLACumulative  = cost.SLACumulative
)

// DefaultCostParams returns the paper's §6.1 cost constants.
func DefaultCostParams() CostParams { return cost.Default() }

// Failure injects a host outage for robustness experiments.
type Failure = sim.Failure

// MigrationTimeModel estimates live-migration copy times; plug a custom
// one into SimConfig.Migration.
type MigrationTimeModel = sim.MigrationTimeModel

// Fat-tree topology extension (§7 future work).
type (
	// FatTree is a k-ary fat-tree host layout with hop-count distances.
	FatTree = topology.FatTree
	// TopologyMigrationModel scales migration times with fat-tree path
	// length.
	TopologyMigrationModel = topology.MigrationModel
)

// NewFatTree builds a k-ary fat-tree (k even).
func NewFatTree(k int) (*FatTree, error) { return topology.NewFatTree(k) }

// NewTopologyMigrationModel builds a fat-tree migration-time model sized
// for numHosts hosts.
func NewTopologyMigrationModel(numHosts int, hopFactor float64) (*TopologyMigrationModel, error) {
	return topology.NewMigrationModel(numHosts, hopFactor)
}

// VM victim-selection policies for the consolidation baselines.
type Selection = consolidation.Selection

// Victim-selection policies.
const (
	SelectMMT            = consolidation.SelectMMT
	SelectRandom         = consolidation.SelectRandom
	SelectMaxCorrelation = consolidation.SelectMaxCorrelation
	SelectMinUtil        = consolidation.SelectMinUtil
)

// LoadLearner restores a Megh learner saved with (*Learner).SaveState —
// Q-table persistence across scheduler restarts.
func LoadLearner(r io.Reader) (*Learner, error) { return core.LoadState(r) }

// Diurnal (periodic) workload extension (§7's "periodicity" knowledge).
type DiurnalTraceConfig = workload.DiurnalConfig

// DefaultDiurnalTraceConfig returns a gentle day/night pattern.
func DefaultDiurnalTraceConfig(seed int64) DiurnalTraceConfig {
	return workload.DefaultDiurnalConfig(seed)
}

// GenerateDiurnalTraces produces n periodic traces.
func GenerateDiurnalTraces(cfg DiurnalTraceConfig, n int) ([]Trace, error) {
	return workload.GenerateDiurnal(cfg, n)
}

// Ablation and robustness runners, re-exported.
type ReplicatedRow = experiments.ReplicatedRow

// RunReplicated runs each policy several times with distinct seeds and
// returns mean ± std summaries.
func RunReplicated(setup Setup, policies []string, reps int) ([]ReplicatedRow, error) {
	return experiments.RunReplicated(setup, policies, reps)
}

// RunCustom runs a pre-built policy on a setup with an optional simulator
// configuration mutator (cost model, topology, failures, …).
func RunCustom(setup Setup, p Policy, mutate func(*SimConfig)) (*Result, error) {
	return experiments.RunCustom(setup, p, mutate)
}

// FailureRecovery injects host outages and reports how each policy copes.
func FailureRecovery(setup Setup, policies []string, failures []Failure) ([]TableRow, error) {
	return experiments.FailureRecovery(setup, policies, failures)
}
