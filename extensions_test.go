package megh_test

import (
	"bytes"
	"testing"

	"megh"
)

func TestPublicAPICostParams(t *testing.T) {
	p := megh.DefaultCostParams()
	if p.EnergyPricePerKWh != 0.18675 {
		t.Fatalf("tariff = %g", p.EnergyPricePerKWh)
	}
	p.Accounting = megh.SLACumulative
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if megh.SLAPerInterval.String() != "per-interval" {
		t.Fatal("accounting re-export broken")
	}
}

func TestPublicAPITopology(t *testing.T) {
	tree, err := megh.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Hosts() != 16 {
		t.Fatalf("fat-tree hosts = %d", tree.Hosts())
	}
	model, err := megh.NewTopologyMigrationModel(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var _ megh.MigrationTimeModel = model
	// End to end: a topology-aware run through the facade.
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 12, VMs: 16, Steps: 24, Seed: 3}
	p, err := megh.NewPolicy("Megh", setup.VMs, setup.Hosts, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := megh.RunCustom(setup, p, func(c *megh.SimConfig) {
		c.Migration = model
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost() <= 0 {
		t.Fatal("topology-aware run degenerate")
	}
}

func TestPublicAPIPersistenceRoundTrip(t *testing.T) {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 10, VMs: 13, Steps: 36, Seed: 4}
	learner, err := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := megh.RunCustom(setup, learner, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := learner.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := megh.LoadLearner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.QTableNNZ() != learner.QTableNNZ() {
		t.Fatal("facade persistence lost Q-table entries")
	}
}

func TestPublicAPIDiurnalTraces(t *testing.T) {
	cfg := megh.DefaultDiurnalTraceConfig(6)
	cfg.Steps = 100
	traces, err := megh.GenerateDiurnalTraces(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 || traces[0].Len() != 100 {
		t.Fatalf("diurnal generation wrong: %d traces", len(traces))
	}
}

func TestPublicAPIReplicatedAndFailures(t *testing.T) {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 10, VMs: 13, Steps: 24, Seed: 2}
	rows, err := megh.RunReplicated(setup, []string{"Megh"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Reps != 2 {
		t.Fatalf("replicated rows = %+v", rows)
	}
	fr, err := megh.FailureRecovery(setup, []string{"Megh"}, []megh.Failure{
		{Host: 0, From: 5, Until: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 1 {
		t.Fatalf("failure rows = %d", len(fr))
	}
}

func TestPublicAPICustomMMTAndSelection(t *testing.T) {
	thr, err := megh.NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	if thr.Detector() == nil {
		t.Fatal("detector accessor broken")
	}
	custom, err := megh.NewMMT(thr.Detector(), megh.MMTConfig{Selection: megh.SelectRandom, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if custom.Name() != "THR-RS" {
		t.Fatalf("custom MMT name %q", custom.Name())
	}
	if megh.SelectMaxCorrelation.String() != "MC" || megh.SelectMinUtil.String() != "MU" {
		t.Fatal("selection re-exports broken")
	}
}
