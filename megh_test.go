package megh_test

import (
	"math"
	"testing"

	"megh"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow
// end-to-end through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 20, VMs: 26, Steps: 72, Seed: 1}
	cfg, err := setup.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := megh.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	learner, err := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(learner)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "Megh" {
		t.Fatalf("policy name %q", res.Policy)
	}
	if res.TotalCost() <= 0 || math.IsNaN(res.TotalCost()) {
		t.Fatalf("bad total cost %g", res.TotalCost())
	}
	if len(res.Steps) != setup.Steps {
		t.Fatalf("steps recorded %d, want %d", len(res.Steps), setup.Steps)
	}
}

func TestPublicAPIBaselineConstructors(t *testing.T) {
	ctors := map[string]func() (megh.Policy, error){
		"THR-MMT": func() (megh.Policy, error) { return megh.NewTHRMMT() },
		"IQR-MMT": func() (megh.Policy, error) { return megh.NewIQRMMT() },
		"MAD-MMT": func() (megh.Policy, error) { return megh.NewMADMMT() },
		"LR-MMT":  func() (megh.Policy, error) { return megh.NewLRMMT() },
		"LRR-MMT": func() (megh.Policy, error) { return megh.NewLRRMMT() },
		"MadVM":   func() (megh.Policy, error) { return megh.NewMadVM(5, megh.DefaultMadVMConfig(1)) },
		"Q-learning": func() (megh.Policy, error) {
			return megh.NewQLearning(5, megh.DefaultQLearningConfig(1))
		},
	}
	for want, mk := range ctors {
		p, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if p.Name() != want {
			t.Fatalf("constructor for %q built %q", want, p.Name())
		}
	}
}

func TestPublicAPIPaperSetups(t *testing.T) {
	if s := megh.PaperPlanetLab(1); s.Hosts != 800 || s.VMs != 1052 {
		t.Fatalf("PaperPlanetLab = %+v", s)
	}
	if s := megh.PaperGoogle(1); s.Hosts != 500 || s.VMs != 2000 {
		t.Fatalf("PaperGoogle = %+v", s)
	}
	if s := megh.PaperMadVMSubset(megh.Google, 1); s.Hosts != 100 || s.VMs != 150 {
		t.Fatalf("PaperMadVMSubset = %+v", s)
	}
	if len(megh.PolicyNames()) < 6 {
		t.Fatal("policy registry too small")
	}
}

func TestPublicAPITraceGenerators(t *testing.T) {
	pl, err := megh.GeneratePlanetLabTraces(megh.DefaultPlanetLabTraceConfig(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 3 {
		t.Fatalf("got %d PlanetLab traces", len(pl))
	}
	g, tasks, err := megh.GenerateGoogleTraces(megh.DefaultGoogleTraceConfig(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 3 || len(tasks) == 0 {
		t.Fatalf("Google generation incomplete: %d traces, %d tasks", len(g), len(tasks))
	}
}

func TestPublicAPIFleetAndPower(t *testing.T) {
	hosts, err := megh.PlanetLabHosts(4)
	if err != nil {
		t.Fatal(err)
	}
	vms, err := megh.PlanetLabVMs(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 4 || len(vms) != 6 {
		t.Fatal("fleet sizes wrong")
	}
	if megh.HPProLiantG4().Power(0) != 86 || megh.HPProLiantG5().Power(1) != 135 {
		t.Fatal("Table-1 power endpoints wrong")
	}
	if _, err := megh.GoogleHosts(3); err != nil {
		t.Fatal(err)
	}
	if _, err := megh.GoogleVMs(3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRunPolicyAndTable(t *testing.T) {
	setup := megh.Setup{Dataset: megh.Google, Hosts: 10, VMs: 14, Steps: 48, Seed: 2}
	res, err := megh.RunPolicy(setup, "Megh")
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost() <= 0 {
		t.Fatal("non-positive cost")
	}
	rows, err := megh.RunTable(setup, []string{"Megh", "THR-MMT"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestPublicAPILearnerIntrospection(t *testing.T) {
	learner, err := megh.New(megh.DefaultConfig(4, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if learner.QTableNNZ() != 0 {
		t.Fatal("fresh learner has non-empty Q-table")
	}
	if learner.Temperature() != 3 {
		t.Fatalf("initial temperature %g, want 3", learner.Temperature())
	}
	if q := learner.Q(megh.Action{VM: 1, Host: 2}); q != 0 {
		t.Fatalf("fresh Q = %g", q)
	}
}
