module megh

go 1.22
