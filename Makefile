GO ?= go
GOFMT ?= gofmt

.PHONY: verify check build test race vet fmt-check bench-trace bench-json bench-alloc-gate

# Tier-1: everything compiles and the test suite passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

# Full gate: formatting, vet, the whole suite under the race detector,
# a short run of the trace-overhead benchmark (compare the disabled
# sub-benchmark against no-tracer: they must match in ns/op and allocs/op),
# and the allocation-regression gate on the untraced decide path.
check: fmt-check vet race bench-trace bench-alloc-gate

# gofmt -l lists files needing reformatting; any output fails the gate.
fmt-check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Short-mode trace-overhead benchmark (also asserts the decide path
# builds and runs; full numbers need a longer -benchtime).
bench-trace:
	$(GO) test -run=- -bench=BenchmarkDecide -benchtime=100x ./internal/core/

# Allocation-regression gate: the untraced decide path with no pending cost
# must stay at exactly 0 allocs/op. Short (300 iterations) so `make check`
# stays fast; benchjson fails the build on any regression.
bench-alloc-gate:
	$(GO) test -run=- -bench='BenchmarkDecide/no-tracer-nocost' -benchtime=300x -benchmem ./internal/core/ \
		| $(GO) run ./cmd/benchjson -assert-zero-alloc BenchmarkDecide/no-tracer-nocost

# Regenerate the tracked benchmark baseline. Decide benchmarks run a fixed
# iteration count: the learner's Q-table densifies as updates accumulate, so
# ns/op is only comparable across revisions at an identical iteration count.
bench-json:
	@{ $(GO) test -run=- -bench='BenchmarkDecide' -benchtime=10000x -benchmem ./internal/core/ ; \
	   $(GO) test -run=- -bench='BenchmarkShermanMorrison' -benchmem ./internal/sparse/ ; \
	   $(GO) test -run=- -bench='BenchmarkFigure6_Megh|BenchmarkTable2_Megh' -benchmem . ; } \
		| $(GO) run ./cmd/benchjson -commit "$$(git rev-parse --short HEAD)" \
			-note "Decide benchmarks use -benchtime=10000x (fixed iterations; see DESIGN.md Performance)" \
			-o BENCH_megh.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
