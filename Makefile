GO ?= go
GOFMT ?= gofmt

.PHONY: verify check build test race vet fmt-check bench-trace bench-json bench-check bench-alloc-gate fuzz-short routes-golden metriclint cover scenario-smoke

# Tier-1: everything compiles and the test suite passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

# Full gate: formatting, vet, the route-table golden check, the
# metric-naming lint, the whole suite under the race detector, a short
# run of the trace-overhead benchmark (compare the disabled sub-benchmark
# against no-tracer: they must match in ns/op and allocs/op), the
# allocation-regression gate on the untraced decide path, and a short
# fuzz pass over the fuzz targets, and the scenario-matrix smoke run.
check: fmt-check vet routes-golden metriclint race scenario-smoke bench-trace bench-alloc-gate fuzz-short

# Scenario-matrix smoke: every registered scenario, under the race detector
# and the invariant checker, end to end through the real CLI. Catches wiring
# rot (registry ↔ flags ↔ experiments) that package tests cannot see.
scenario-smoke:
	$(GO) run -race ./cmd/meghsim -scenario all -steps 200 -hosts 16 -vms 28 -check

# Metric-naming conventions (megh_ prefix, _total on counters, unit
# suffixes on histograms, no cross-registry type conflicts), enforced
# against the registries the real components build. See cmd/metriclint.
metriclint:
	$(GO) run ./cmd/metriclint

# The service's HTTP surface is pinned: the live mux patterns must match
# the committed internal/server/routes.golden. Regenerate deliberately
# (and review the diff) with:
#   $(GO) test ./internal/server/ -run TestRoutesGolden -update
routes-golden:
	$(GO) test -run=TestRoutesGolden ./internal/server/

# gofmt -l lists files needing reformatting; any output fails the gate.
fmt-check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Short-mode trace-overhead benchmark (also asserts the decide path
# builds and runs; full numbers need a longer -benchtime), plus the
# health-layer overhead pair: "on-default-cadence" must stay within a few
# percent of "off" (DESIGN.md's health overhead budget).
bench-trace:
	$(GO) test -run=- -bench=BenchmarkDecide -benchtime=100x ./internal/core/
	$(GO) test -run=- -bench=BenchmarkDecideHealth -benchtime=100x ./internal/health/

# Allocation-regression gates: the untraced decide path with no pending cost
# must stay at exactly 0 allocs/op, and the coalesced server decide path
# (round + waiter + demux machinery per uncontended request) must stay within
# its small fixed budget. Short iteration counts so `make check` stays fast;
# benchjson fails the build on any regression.
bench-alloc-gate:
	$(GO) test -run=- -bench='BenchmarkDecide/no-tracer-nocost' -benchtime=300x -benchmem ./internal/core/ \
		| $(GO) run ./cmd/benchjson -assert-zero-alloc BenchmarkDecide/no-tracer-nocost
	$(GO) test -run=- -bench='BenchmarkCoalescedDecide/serial' -benchtime=300x -benchmem ./internal/server/ \
		| $(GO) run ./cmd/benchjson -assert-max-allocs BenchmarkCoalescedDecide/serial=16

# Regenerate the tracked benchmark baseline. Decide benchmarks run a fixed
# iteration count: the learner's Q-table densifies as updates accumulate, so
# ns/op is only comparable across revisions at an identical iteration count.
# Every benchmark runs -count=$(BENCH_REPS) times and benchjson keeps the
# fastest rep per name, filtering scheduler noise out of the baseline.
BENCH_REPS ?= 3
bench-json:
	@{ $(GO) test -run=- -bench='BenchmarkDecide' -benchtime=10000x -count=$(BENCH_REPS) -benchmem ./internal/core/ ; \
	   $(GO) test -run=- -bench='BenchmarkShermanMorrison' -count=$(BENCH_REPS) -benchmem ./internal/sparse/ ; \
	   $(GO) test -run=- -bench='BenchmarkCoalescedDecide' -benchtime=10000x -count=$(BENCH_REPS) -benchmem ./internal/server/ ; \
	   $(GO) test -run=- -bench='BenchmarkFigure6_Megh|BenchmarkTable2_Megh' -count=$(BENCH_REPS) -benchmem . ; } \
		| $(GO) run ./cmd/benchjson -commit "$$(git rev-parse --short HEAD)" \
			-note "Decide benchmarks use -benchtime=10000x (fixed iterations; see DESIGN.md Performance); fastest of $(BENCH_REPS) reps per benchmark" \
			-o BENCH_megh.json

# Performance regression gate: rerun the tracked benchmarks (same fixed
# iteration counts and -count=$(BENCH_REPS) fastest-rep selection as
# bench-json) and fail when any shared benchmark's ns/op regressed more
# than 20% against the committed BENCH_megh.json. Benchmarks new in this
# revision are skipped, so adding one does not need a baseline regen in the
# same change. Noisy machines can widen the budget:
#   make bench-check BENCH_TOLERANCE=0.35
BENCH_TOLERANCE ?= 0.20
bench-check:
	@{ $(GO) test -run=- -bench='BenchmarkDecide' -benchtime=10000x -count=$(BENCH_REPS) -benchmem ./internal/core/ ; \
	   $(GO) test -run=- -bench='BenchmarkShermanMorrison' -count=$(BENCH_REPS) -benchmem ./internal/sparse/ ; \
	   $(GO) test -run=- -bench='BenchmarkCoalescedDecide' -benchtime=10000x -count=$(BENCH_REPS) -benchmem ./internal/server/ ; \
	   $(GO) test -run=- -bench='BenchmarkFigure6_Megh|BenchmarkTable2_Megh' -count=$(BENCH_REPS) -benchmem . ; } \
		| $(GO) run ./cmd/benchjson -check BENCH_megh.json -check-tolerance $(BENCH_TOLERANCE)

# Short fuzz pass: each target gets FUZZTIME of coverage-guided input
# generation on top of its committed seed corpus (testdata/fuzz/). Any
# crasher is written back into testdata/fuzz/ and fails the run. Go runs
# one fuzz target per invocation, hence one line per target.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run=- -fuzz=FuzzPlanetLabParse -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run=- -fuzz=FuzzGoogleParse -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run=- -fuzz=FuzzCheckpointLoad -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -run=- -fuzz=FuzzDecideRequestJSON -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -run=- -fuzz=FuzzShermanMorrisonBasis -fuzztime=$(FUZZTIME) ./internal/sparse/
	$(GO) test -run=- -fuzz=FuzzScenarioConfig -fuzztime=$(FUZZTIME) ./internal/scenario/
	$(GO) test -run=- -fuzz=FuzzRingOwners -fuzztime=$(FUZZTIME) ./internal/cluster/

# Per-package coverage floors. Raise a floor when a package's coverage
# improves for good; never lower one to make a regression pass.
COVER_FLOORS = \
	internal/core:90 \
	internal/sim:92 \
	internal/sparse:94 \
	internal/workload:92 \
	internal/server:90 \
	internal/trace:92 \
	internal/power:92 \
	internal/invariant:85 \
	internal/experiments:85 \
	internal/scenario:90 \
	internal/cluster:95

# cover fails if any package above slips below its floor.
cover:
	@fail=0; \
	for entry in $(COVER_FLOORS); do \
		pkg=$${entry%%:*}; floor=$${entry##*:}; \
		pct=$$($(GO) test -cover "./$$pkg/" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; fail=1; continue; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then echo "FAIL $$pkg: coverage $$pct% below floor $$floor%"; fail=1; \
		else echo "ok   $$pkg: coverage $$pct% (floor $$floor%)"; fi; \
	done; exit $$fail

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
