GO ?= go
GOFMT ?= gofmt

.PHONY: verify check build test race vet fmt-check bench-trace

# Tier-1: everything compiles and the test suite passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

# Full gate: formatting, vet, the whole suite under the race detector,
# and a short run of the trace-overhead benchmark (compare the disabled
# sub-benchmark against no-tracer: they must match in ns/op and allocs/op).
check: fmt-check vet race bench-trace

# gofmt -l lists files needing reformatting; any output fails the gate.
fmt-check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Short-mode trace-overhead benchmark (also asserts the decide path
# builds and runs; full numbers need a longer -benchtime).
bench-trace:
	$(GO) test -run=- -bench=BenchmarkDecide -benchtime=100x ./internal/core/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
