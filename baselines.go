package megh

import (
	"megh/internal/consolidation"
	"megh/internal/madvm"
	"megh/internal/qlearn"
)

// Baseline policies, re-exported.
type (
	// MMT is the Minimum-Migration-Time consolidation heuristic family
	// (Beloglazov & Buyya), the paper's primary comparison.
	MMT = consolidation.MMT
	// Detector decides host overload for an MMT policy.
	Detector = consolidation.Detector
	// MMTConfig tunes an MMT policy around its detector.
	MMTConfig = consolidation.Config
	// MadVM is the approximate-MDP baseline (Han et al., INFOCOM 2016).
	MadVM = madvm.MadVM
	// MadVMConfig parameterises MadVM.
	MadVMConfig = madvm.Config
	// QLearning is the offline-trained tabular baseline (§2.2).
	QLearning = qlearn.QLearning
	// QLearningConfig parameterises the Q-learner.
	QLearningConfig = qlearn.Config
)

// NewTHRMMT returns THR-MMT: static 70 % overload threshold, MMT victim
// selection, PABFD placement, underload consolidation.
func NewTHRMMT() (*MMT, error) { return consolidation.NewTHRMMT() }

// NewIQRMMT returns IQR-MMT (adaptive interquartile-range threshold).
func NewIQRMMT() (*MMT, error) { return consolidation.NewIQRMMT() }

// NewMADMMT returns MAD-MMT (adaptive median-absolute-deviation threshold).
func NewMADMMT() (*MMT, error) { return consolidation.NewMADMMT() }

// NewLRMMT returns LR-MMT (Loess local-regression overload prediction).
func NewLRMMT() (*MMT, error) { return consolidation.NewLRMMT() }

// NewLRRMMT returns LRR-MMT (robust local regression).
func NewLRRMMT() (*MMT, error) { return consolidation.NewLRRMMT() }

// NewMMT builds an MMT policy around a custom detector.
func NewMMT(d Detector, cfg MMTConfig) (*MMT, error) {
	return consolidation.NewMMT(d, cfg)
}

// NewMadVM constructs the MadVM baseline for numVMs virtual machines.
func NewMadVM(numVMs int, cfg MadVMConfig) (*MadVM, error) {
	return madvm.New(numVMs, cfg)
}

// DefaultMadVMConfig returns the Figure-4/5 MadVM parameters.
func DefaultMadVMConfig(seed int64) MadVMConfig { return madvm.DefaultConfig(seed) }

// NewQLearning constructs the Q-learning baseline; call its Train method
// with a Simulator before serving.
func NewQLearning(numVMs int, cfg QLearningConfig) (*QLearning, error) {
	return qlearn.New(numVMs, cfg)
}

// DefaultQLearningConfig returns the baseline Q-learning parameters.
func DefaultQLearningConfig(seed int64) QLearningConfig { return qlearn.DefaultConfig(seed) }
