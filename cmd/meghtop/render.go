package main

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"megh/internal/server"
)

// renderFleet writes one plain-text frame of the dashboard: the fleet
// header, the verdict histogram, the decide-latency SLO burn rates, the
// worst-N session table, and the slowest recent decides (exemplars). It
// is a pure function of the response — no clock reads, no terminal
// control — so tests can assert on its exact output and main can wrap it
// in whatever refresh loop it wants.
func renderFleet(w io.Writer, source string, r *server.FleetHealthResponse) {
	fmt.Fprintf(w, "megh fleet health — %s\n", source)
	fmt.Fprintf(w, "sessions: %d defined, %d live    verdicts: %d healthy / %d degraded / %d diverging\n",
		r.SessionsDefined, r.SessionsLive,
		r.Verdicts["healthy"], r.Verdicts["degraded"], r.Verdicts["diverging"])

	if r.SLO != nil && len(r.SLO.Windows) > 0 {
		fmt.Fprintf(w, "slo %s: latency < %s, target %.3f%%",
			r.SLO.Name, fmtSeconds(r.SLO.Objective), 100*r.SLO.Target)
		for _, win := range r.SLO.Windows {
			fmt.Fprintf(w, "    %s burn %.2f (%d/%d good)",
				win.Window, win.BurnRate, win.Good, win.Total)
		}
		if r.SLO.FastBurn {
			fmt.Fprint(w, "    ** FAST BURN **")
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-20s %-8s %-10s %10s  %s\n",
		"SESSION", "STATE", "VERDICT", "DECIDES", "REASON")
	if len(r.Worst) == 0 {
		fmt.Fprintln(w, "  (no sessions)")
	}
	for _, row := range r.Worst {
		marker := " "
		switch row.Verdict {
		case "diverging":
			marker = "!"
		case "degraded":
			marker = "~"
		}
		fmt.Fprintf(w, "%s %-20s %-8s %-10s %10d  %s\n",
			marker, row.ID, row.State, row.Verdict, row.Decides, row.Reason)
	}

	if len(r.DecideExemplars) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "recent decides by latency bucket:")
		for _, ex := range r.DecideExemplars {
			bucket := "+Inf"
			if !math.IsInf(ex.Bucket, 1) {
				bucket = fmtSeconds(ex.Bucket)
			}
			fmt.Fprintf(w, "  ≤%-8s %10s  req=%s\n", bucket, fmtSeconds(ex.Value), ex.Label)
		}
	}
}

// fmtSeconds renders a duration given in seconds compactly (1.5ms, 2s).
func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	return d.Round(10 * time.Microsecond).String()
}

// renderError is the frame shown when a poll fails; the dashboard keeps
// running so a meghd restart comes back on its own.
func renderError(w io.Writer, source string, err error) {
	fmt.Fprintf(w, "megh fleet health — %s\n", source)
	fmt.Fprintf(w, "poll failed: %v\n", err)
	fmt.Fprintln(w, strings.Repeat("-", 40))
}
