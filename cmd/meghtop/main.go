// Command meghtop is a polling terminal dashboard over meghd's fleet
// health API — "top" for a Megh deployment. Every refresh interval it
// fetches GET /v2/health from one meghd and redraws a plain-text frame:
//
//   - the session census and learning-health verdict histogram
//     (healthy / degraded / diverging),
//   - decide-latency SLO burn rates per window, flagging the multi-window
//     fast-burn page condition,
//   - the worst-N sessions (most severe verdict first, diverging rows
//     marked with "!"), with the scoring reason,
//   - the latest decide-latency exemplars: one recent X-Request-ID per
//     histogram bucket, so a slow bucket links to a concrete request.
//
// Usage:
//
//	meghtop -addr http://localhost:8080
//	meghtop -addr http://localhost:8080 -n 20 -every 5s
//	meghtop -once            # print a single frame and exit (no redraw)
//
// -once suppresses the screen-clear escape codes, so the output is pipe-
// and script-friendly; the interactive mode clears the terminal between
// frames like top(1).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"megh/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meghtop:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meghtop", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "http://localhost:8080", "meghd base URL")
		n     = fs.Int("n", 10, "worst sessions to show")
		every = fs.Duration("every", 2*time.Second, "refresh interval")
		once  = fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}

	for {
		resp, err := fetchFleet(client, *addr, *n)
		if !*once {
			// Clear and home, like top(1); emitted only in interactive
			// mode so piped output stays clean.
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		if err != nil {
			if *once {
				return err
			}
			renderError(out, *addr, err)
		} else {
			renderFleet(out, *addr, resp)
		}
		if *once {
			return nil
		}
		time.Sleep(*every)
	}
}

// fetchFleet polls GET /v2/health?n= and decodes the fleet roll-up.
func fetchFleet(client *http.Client, addr string, n int) (*server.FleetHealthResponse, error) {
	url := addr + "/v2/health?n=" + strconv.Itoa(n)
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	var fleet server.FleetHealthResponse
	if err := json.Unmarshal(body, &fleet); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &fleet, nil
}
