package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"megh/internal/obs"
	"megh/internal/server"
)

func TestRenderFleetFrame(t *testing.T) {
	resp := &server.FleetHealthResponse{
		SessionsDefined: 3,
		SessionsLive:    2,
		Verdicts:        map[string]int{"healthy": 1, "degraded": 1, "diverging": 1},
		Worst: []server.FleetSessionHealth{
			{ID: "dc-eu-1", State: "live", Verdict: "diverging",
				Reason: "bellman residual ewma 12.3 above divergence threshold", Decides: 410},
			{ID: "dc-us-2", State: "evicted", Verdict: "degraded",
				Reason: "deferred queue age 40 past flush cadence", Decides: 12},
			{ID: "default", State: "live", Verdict: "healthy", Decides: 9000},
		},
		SLO: &obs.SLOStatus{
			Name: "decide", Objective: 0.1, Target: 0.999,
			Windows: []obs.SLOWindowStatus{
				{Window: "5m", Seconds: 300, Good: 1190, Total: 1200, BadFraction: 1.0 / 120, BurnRate: 8.33},
				{Window: "1h", Seconds: 3600, Good: 14000, Total: 14040, BadFraction: 40.0 / 14040, BurnRate: 2.85},
			},
		},
		DecideExemplars: []obs.Exemplar{
			{Bucket: 0.1, Value: 0.093, Label: "req-slow-1"},
			{Bucket: math.Inf(1), Value: 1.7, Label: "req-awful-2"},
		},
	}
	var buf bytes.Buffer
	renderFleet(&buf, "http://meghd:8080", resp)
	out := buf.String()

	for _, want := range []string{
		"megh fleet health — http://meghd:8080",
		"sessions: 3 defined, 2 live",
		"1 healthy / 1 degraded / 1 diverging",
		"slo decide: latency < 100ms, target 99.900%",
		"5m burn 8.33 (1190/1200 good)",
		"1h burn 2.85 (14000/14040 good)",
		"! dc-eu-1",
		"diverging",
		"bellman residual ewma 12.3 above divergence threshold",
		"~ dc-us-2",
		"evicted",
		"req=req-slow-1",
		"req=req-awful-2",
		"≤+Inf",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Severity ordering: the diverging session renders above the healthy one.
	if strings.Index(out, "dc-eu-1") > strings.Index(out, "default") {
		t.Errorf("diverging session not first in worst-N:\n%s", out)
	}
	// No fast burn flagged: only one window is past the threshold.
	if strings.Contains(out, "FAST BURN") {
		t.Errorf("fast burn flagged without both windows burning:\n%s", out)
	}
}

func TestRenderFleetFastBurnAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	renderFleet(&buf, "x", &server.FleetHealthResponse{
		Verdicts: map[string]int{},
		SLO:      &obs.SLOStatus{Name: "decide", Objective: 0.1, Target: 0.999, FastBurn: true, Windows: []obs.SLOWindowStatus{{Window: "5m"}}},
	})
	out := buf.String()
	if !strings.Contains(out, "** FAST BURN **") {
		t.Errorf("fast-burn flag missing:\n%s", out)
	}
	if !strings.Contains(out, "(no sessions)") {
		t.Errorf("empty worst-N placeholder missing:\n%s", out)
	}
}

// testWorld builds a 4×3 snapshot with one overloaded host so the learner
// always has migration candidates.
func testWorld(step int) server.StateRequest {
	req := server.StateRequest{Step: step}
	for i := 0; i < 3; i++ {
		req.Hosts = append(req.Hosts, server.HostState{
			MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, PowerModel: "g4",
		})
	}
	for j := 0; j < 4; j++ {
		util, host := 0.2+0.05*float64((step+j)%8), j%3
		if j == 0 {
			util = 1.0
		}
		if j == 1 {
			host = 0
		}
		req.VMs = append(req.VMs, server.VMState{
			Host: host, Utilization: util,
			MIPS: 2500, RAMMB: 1024, BandwidthMbps: 100,
		})
	}
	return req
}

func post(t *testing.T, url string, body any, wantCode int) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: got %d, want %d", url, resp.StatusCode, wantCode)
	}
}

// TestMeghtopShowsDivergingSession is the end-to-end check: drive a real
// service until one session's absurd feedback flips its verdict to
// diverging, then poll it exactly as meghtop does and assert the rendered
// worst-N frame surfaces the sick session.
func TestMeghtopShowsDivergingSession(t *testing.T) {
	svc, err := server.New(server.Config{NumVMs: 4, NumHosts: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, id := range []string{"ok", "sick"} {
		raw, _ := json.Marshal(server.SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 5})
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/sessions/"+id, bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("creating %q: %d", id, resp.StatusCode)
		}
	}
	costs := map[string]float64{"ok": 0.5, "sick": 5e12}
	for _, id := range []string{"ok", "sick"} {
		for step := 0; step < 4; step++ {
			post(t, ts.URL+"/v2/sessions/"+id+"/decide", testWorld(step), http.StatusOK)
			post(t, ts.URL+"/v2/sessions/"+id+"/feedback",
				server.FeedbackRequest{Step: step, StepCost: costs[id]}, http.StatusNoContent)
		}
	}

	fleet, err := fetchFleet(http.DefaultClient, ts.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	renderFleet(&buf, ts.URL, fleet)
	out := buf.String()

	if !strings.Contains(out, "! sick") {
		t.Errorf("diverging session not marked in worst-N:\n%s", out)
	}
	sickLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "sick") {
			sickLine = line
			break
		}
	}
	if !strings.Contains(sickLine, "diverging") {
		t.Errorf("sick session row lacks diverging verdict: %q\n%s", sickLine, out)
	}
	if !strings.Contains(out, "1 healthy / 0 degraded / 1 diverging") &&
		!strings.Contains(out, "2 healthy / 0 degraded / 1 diverging") {
		t.Errorf("verdict histogram missing the diverging count:\n%s", out)
	}
	// The sick session heads the table — severity beats decide volume.
	if strings.Index(out, "sick") > strings.Index(out, "ok ") {
		t.Errorf("worst-N not severity-ordered:\n%s", out)
	}
}
