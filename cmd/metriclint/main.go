// Command metriclint enforces the repo's metric-naming conventions over
// every registry the reproduction actually builds, so a misnamed metric
// fails `make check` instead of shipping:
//
//   - every family name matches ^megh_[a-z][a-z0-9_]*$ (megh_ prefix,
//     lowercase snake case),
//   - counters end in _total,
//   - histograms end in a unit suffix (_seconds or _bytes),
//   - no family uses the reserved exposition suffixes _bucket, _sum or
//     _count (they collide with the histogram rendering), and
//     non-counters do not end in _total,
//   - one name never appears with two different types across registries.
//
// Rather than grepping source for name literals, the linter instantiates
// the real components — the HTTP service (with a live session, so the
// fleet-level megh_session_* renames are linted too), a core learner, a
// health tracker, and a short simulator run — and checks what they
// register: obs.Registry.Gather() for in-process registries, plus the
// `# TYPE` lines of the rendered /metrics exposition for the service.
// Output is one line per violation (exit 1), or a summary line (exit 0).
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"

	"megh/internal/core"
	"megh/internal/health"
	"megh/internal/obs"
	"megh/internal/power"
	"megh/internal/server"
	"megh/internal/sim"
	"megh/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
}

// familyRef is one observed (name, type) pair and where it came from.
type familyRef struct {
	name, typ, source string
}

func run() error {
	var fams []familyRef
	for _, gather := range []struct {
		source string
		fn     func() ([]obs.FamilySnapshot, error)
	}{
		{"server", gatherServer},
		{"cluster", gatherCluster},
		{"core", gatherCore},
		{"health", gatherHealth},
		{"sim", gatherSim},
	} {
		snaps, err := gather.fn()
		if err != nil {
			return fmt.Errorf("building %s registry: %w", gather.source, err)
		}
		for _, s := range snaps {
			fams = append(fams, familyRef{name: s.Name, typ: s.Type, source: gather.source})
		}
	}
	exposition, err := gatherExposition()
	if err != nil {
		return fmt.Errorf("rendering /metrics: %w", err)
	}
	fams = append(fams, exposition...)

	violations := lint(fams)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println(v)
		}
		return fmt.Errorf("%d violation(s)", len(violations))
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.name] = true
	}
	fmt.Printf("metriclint: %d families clean across %d registrations\n", len(names), len(fams))
	return nil
}

var nameRe = regexp.MustCompile(`^megh_[a-z][a-z0-9_]*$`)

// lint applies every rule and returns the sorted, deduplicated violation
// lines.
func lint(fams []familyRef) []string {
	seen := map[string]bool{}
	var out []string
	report := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}
	types := map[string]familyRef{}
	for _, f := range fams {
		if !nameRe.MatchString(f.name) {
			report("%s: %q must match %s (megh_ prefix, lowercase snake case)",
				f.source, f.name, nameRe)
		}
		for _, reserved := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(f.name, reserved) {
				report("%s: %q ends in reserved exposition suffix %q",
					f.source, f.name, reserved)
			}
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(f.name, "_total") {
				report("%s: counter %q must end in _total", f.source, f.name)
			}
		case "histogram":
			if !strings.HasSuffix(f.name, "_seconds") && !strings.HasSuffix(f.name, "_bytes") {
				report("%s: histogram %q must end in a unit suffix (_seconds or _bytes)",
					f.source, f.name)
			}
		default:
			if strings.HasSuffix(f.name, "_total") {
				report("%s: %s %q must not end in _total (reserved for counters)",
					f.source, f.typ, f.name)
			}
		}
		if prev, ok := types[f.name]; ok && prev.typ != f.typ {
			report("duplicate registration: %q is a %s in %s but a %s in %s",
				f.name, prev.typ, prev.source, f.typ, f.source)
		} else if !ok {
			types[f.name] = f
		}
	}
	sort.Strings(out)
	return out
}

// gatherServer builds the HTTP service and snapshots its registry — the
// default session's learner, health tracker, HTTP middleware, and session
// gauges all register here.
func gatherServer() ([]obs.FamilySnapshot, error) {
	svc, err := server.New(server.Config{NumVMs: 4, NumHosts: 3, Seed: 1})
	if err != nil {
		return nil, err
	}
	svc.Handler() // route histograms register at handler construction
	return svc.Metrics().Gather(), nil
}

// gatherCluster builds a cluster-mode service so the cluster runtime's
// counters and gauges (megh_cluster_*) register and get linted too.
func gatherCluster() ([]obs.FamilySnapshot, error) {
	dir, err := os.MkdirTemp("", "metriclint-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	svc, err := server.New(server.Config{
		NumVMs: 4, NumHosts: 3, Seed: 1,
		CheckpointDir: dir,
		Cluster: &server.ClusterConfig{
			NodeName:     "lint",
			AdvertiseURL: "http://localhost:1",
			Peers:        map[string]string{"peer": "http://localhost:2"},
		},
	})
	if err != nil {
		return nil, err
	}
	svc.Handler()
	return svc.Metrics().Gather(), nil
}

// gatherExposition renders the service's full /metrics page — including
// the SLO gauges published at scrape time and the fleet block that
// renames per-session families to megh_session_* — and lints its # TYPE
// lines, so the rewriting layers obey the same conventions as direct
// registrations.
func gatherExposition() ([]familyRef, error) {
	svc, err := server.New(server.Config{NumVMs: 4, NumHosts: 3, Seed: 1})
	if err != nil {
		return nil, err
	}
	h := svc.Handler()

	spec := strings.NewReader(`{"num_vms":4,"num_hosts":3,"seed":1}`)
	req := httptest.NewRequest(http.MethodPut, "/v2/sessions/lint", spec)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		return nil, fmt.Errorf("creating lint session: %d %s", rec.Code, rec.Body)
	}
	// One decide gives the lint session traffic so the fleet block renders
	// its renamed families with non-empty points.
	decide := bytes.NewReader(worldJSON())
	req = httptest.NewRequest(http.MethodPost, "/v2/sessions/lint/decide", decide)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("driving lint session: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %d", rec.Code)
	}
	var fams []familyRef
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			fams = append(fams, familyRef{name: fields[2], typ: fields[3], source: "/metrics"})
		}
	}
	return fams, sc.Err()
}

// worldJSON is a minimal valid 4×3 decide snapshot.
func worldJSON() []byte {
	var b bytes.Buffer
	b.WriteString(`{"step":0,"hosts":[`)
	for i := 0; i < 3; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"mips":4000,"ram_mb":8192,"bandwidth_mbps":1000}`)
	}
	b.WriteString(`],"vms":[`)
	for j := 0; j < 4; j++ {
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"host":%d,"utilization":0.5,"mips":2500,"ram_mb":1024,"bandwidth_mbps":100}`, j%3)
	}
	b.WriteString(`]}`)
	return b.Bytes()
}

func gatherCore() ([]obs.FamilySnapshot, error) {
	learner, err := core.New(core.DefaultConfig(4, 3, 1))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	learner.Instrument(reg)
	return reg.Gather(), nil
}

func gatherHealth() ([]obs.FamilySnapshot, error) {
	learner, err := core.New(core.DefaultConfig(4, 3, 1))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	health.NewTracker(learner, true, health.Config{}).Instrument(reg)
	return reg.Gather(), nil
}

// gatherSim runs a two-step simulation so the per-step instrumentation
// registers exactly as production runs register it.
func gatherSim() ([]obs.FamilySnapshot, error) {
	lin, err := power.NewLinear("lint", 100, 200)
	if err != nil {
		return nil, err
	}
	host := sim.HostSpec{MIPS: 1000, RAMMB: 4096, BandwidthMbps: 1000, Power: lin}
	vm := sim.VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
	reg := obs.NewRegistry()
	s, err := sim.New(sim.Config{
		Hosts:            []sim.HostSpec{host, host, host},
		VMs:              []sim.VMSpec{vm, vm},
		Traces:           []workload.Trace{{0.5, 0.6}, {0.4, 0.5}},
		Steps:            2,
		Seed:             1,
		InitialPlacement: sim.PlacementRoundRobin,
		Metrics:          reg,
	})
	if err != nil {
		return nil, err
	}
	learner, err := core.New(core.DefaultConfig(2, 3, 1))
	if err != nil {
		return nil, err
	}
	if _, err := s.Run(learner); err != nil {
		return nil, err
	}
	return reg.Gather(), nil
}
