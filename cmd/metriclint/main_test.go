package main

import (
	"strings"
	"testing"
)

func TestLintRules(t *testing.T) {
	fams := []familyRef{
		{"megh_good_total", "counter", "a"},
		{"megh_lat_seconds", "histogram", "a"},
		{"megh_size_bytes", "histogram", "a"},
		{"megh_gauge", "gauge", "a"},
		{"bad_prefix_total", "counter", "a"},
		{"megh_Upper_total", "counter", "a"},
		{"megh_requests", "counter", "a"},
		{"megh_latency", "histogram", "a"},
		{"megh_thing_count", "gauge", "a"},
		{"megh_thing_sum", "gauge", "a"},
		{"megh_thing_bucket", "gauge", "a"},
		{"megh_gauge_total", "gauge", "a"},
		{"megh_dup", "gauge", "a"},
		{"megh_dup", "counter", "b"},
	}
	got := strings.Join(lint(fams), "\n")
	for _, want := range []string{
		`"bad_prefix_total" must match`,
		`"megh_Upper_total" must match`,
		`counter "megh_requests" must end in _total`,
		`histogram "megh_latency" must end in a unit suffix`,
		`"megh_thing_count" ends in reserved exposition suffix "_count"`,
		`"megh_thing_sum" ends in reserved exposition suffix "_sum"`,
		`"megh_thing_bucket" ends in reserved exposition suffix "_bucket"`,
		`gauge "megh_gauge_total" must not end in _total`,
		`duplicate registration: "megh_dup" is a gauge in a but a counter in b`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("violations missing %q:\n%s", want, got)
		}
	}
	for _, clean := range []string{"megh_good_total", "megh_lat_seconds", "megh_size_bytes", `"megh_gauge"`} {
		if strings.Contains(got, clean+`"`) || strings.Contains(got, clean+" ") {
			t.Errorf("clean family %s flagged:\n%s", clean, got)
		}
	}
}

func TestLintDeduplicatesRepeatedViolations(t *testing.T) {
	fams := []familyRef{
		{"megh_requests", "counter", "a"},
		{"megh_requests", "counter", "a"},
	}
	if v := lint(fams); len(v) != 1 {
		t.Fatalf("repeated identical violation not deduplicated: %v", v)
	}
}

// TestRealRegistriesAreClean is the check the binary performs, run as a
// test so `go test ./...` catches a misnamed metric even without make.
func TestRealRegistriesAreClean(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("metriclint on the real registries: %v", err)
	}
}
