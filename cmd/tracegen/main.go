// Command tracegen emits synthetic workload traces in the CloudSim
// PlanetLab file format (one integer utilization percentage per line, one
// file per VM), so the generated workloads can be inspected, plotted, or
// fed to other tools — and so real PlanetLab trace files can be diffed
// against them.
//
// Usage:
//
//	tracegen -dataset planetlab -n 1052 -steps 2016 -seed 1 -dir traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"megh/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset = flag.String("dataset", "planetlab", "workload: planetlab or google")
		n       = flag.Int("n", 10, "number of traces (VMs)")
		steps   = flag.Int("steps", workload.SevenDays, "samples per trace (5-minute steps)")
		seed    = flag.Int64("seed", 1, "generator seed")
		dir     = flag.String("dir", ".", "output directory (created if missing)")
	)
	flag.Parse()

	var traces []workload.Trace
	switch *dataset {
	case "planetlab":
		cfg := workload.DefaultPlanetLabConfig(*seed)
		cfg.Steps = *steps
		var err error
		traces, err = workload.GeneratePlanetLab(cfg, *n)
		if err != nil {
			return err
		}
	case "google":
		cfg := workload.DefaultGoogleConfig(*seed)
		cfg.Steps = *steps
		var err error
		traces, _, err = workload.GenerateGoogle(cfg, *n)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown dataset %q (want planetlab or google)", *dataset)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", *dir, err)
	}
	for i, tr := range traces {
		path := filepath.Join(*dir, fmt.Sprintf("%s_vm%04d.txt", *dataset, i))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("creating %s: %w", path, err)
		}
		if err := workload.WriteTrace(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", path, err)
		}
	}
	fmt.Printf("wrote %d traces (%d samples each) to %s\n", len(traces), *steps, *dir)
	return nil
}
