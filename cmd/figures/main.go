// Command figures regenerates the data series behind every figure of the
// paper's evaluation (Figures 1–8) as CSV on stdout.
//
// Usage:
//
//	figures -fig 1a                  # PlanetLab workload dynamics
//	figures -fig 2 -scale 8          # Megh vs THR-MMT series, ⅛ scale
//	figures -fig 4                   # Megh vs MadVM (PlanetLab subset)
//	figures -fig 6a -sizes 100,200   # THR-MMT scalability grid
//	figures -fig 7                   # Q-table growth
//	figures -fig 8a -reps 5          # Temp₀ sensitivity boxplots
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"megh/internal/experiments"
	"megh/internal/report"
	"megh/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig   = flag.String("fig", "", "figure id: 1a 1b 2 3 4 5 6a 6b 7 8a 8b")
		scale = flag.Int("scale", 1, "divide the paper's sizes by this factor (figs 2, 3)")
		seed  = flag.Int64("seed", 1, "experiment seed")
		reps  = flag.Int("reps", 25, "repetitions for figs 6 and 8 (paper: 25)")
		steps = flag.Int("steps", 0, "override the horizon in 5-minute steps")
		sizes = flag.String("sizes", "", "comma-separated sizes for figs 6 and 7 (default paper grid)")
		plot  = flag.Bool("plot", false, "render a terminal chart instead of CSV (figs 2-6, 8)")
		svg   = flag.Bool("svg", false, "emit an SVG chart instead of CSV (figs 2-5)")
	)
	flag.Parse()

	parseSizes := func(def []int) ([]int, error) {
		if *sizes == "" {
			return def, nil
		}
		parts := strings.Split(*sizes, ",")
		out := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad -sizes entry %q: %w", p, err)
			}
			out = append(out, v)
		}
		return out, nil
	}
	stepsOr := func(def int) int {
		if *steps > 0 {
			return *steps
		}
		return def
	}

	switch *fig {
	case "1a":
		f, err := experiments.RunFigure1a(1052, stepsOr(workload.SevenDays), *seed)
		if err != nil {
			return err
		}
		fmt.Println("step,mean_pct,max_pct,min_pct,std_pct")
		for t := range f.Mean {
			fmt.Printf("%d,%.3f,%.3f,%.3f,%.3f\n", t, f.Mean[t], f.Max[t], f.Min[t], f.Std[t])
		}
		return nil

	case "1b":
		f, err := experiments.RunFigure1b(2000, stepsOr(workload.SevenDays), *seed, 25)
		if err != nil {
			return err
		}
		fmt.Println("bin_lo_sec,bin_hi_sec,tasks")
		for i, c := range f.Counts {
			fmt.Printf("%.1f,%.1f,%d\n", f.BinEdges[i], f.BinEdges[i+1], c)
		}
		return nil

	case "2", "3":
		setup := experiments.PaperPlanetLab(*seed)
		if *fig == "3" {
			setup = experiments.PaperGoogle(*seed)
		}
		setup = setup.Scaled(*scale)
		if *steps > 0 {
			setup.Steps = *steps
		}
		set, err := experiments.RunSeries(setup, []string{"Megh", "THR-MMT"})
		if err != nil {
			return err
		}
		if *svg {
			return svgCostSeries(set, []string{"Megh", "THR-MMT"},
				fmt.Sprintf("Figure %s: per-step cost", *fig))
		}
		if *plot {
			return plotCostSeries(set, []string{"Megh", "THR-MMT"},
				fmt.Sprintf("Figure %s: per-step cost (USD)", *fig))
		}
		return experiments.WriteSeriesCSV(os.Stdout, set, []string{"Megh", "THR-MMT"})

	case "4", "5":
		ds := experiments.PlanetLab
		if *fig == "5" {
			ds = experiments.Google
		}
		setup := experiments.PaperMadVMSubset(ds, *seed)
		if *steps > 0 {
			setup.Steps = *steps
		}
		set, err := experiments.RunSeries(setup, []string{"Megh", "MadVM"})
		if err != nil {
			return err
		}
		if *svg {
			return svgCostSeries(set, []string{"Megh", "MadVM"},
				fmt.Sprintf("Figure %s: per-step cost", *fig))
		}
		if *plot {
			return plotCostSeries(set, []string{"Megh", "MadVM"},
				fmt.Sprintf("Figure %s: per-step cost (USD)", *fig))
		}
		return experiments.WriteSeriesCSV(os.Stdout, set, []string{"Megh", "MadVM"})

	case "6a", "6b":
		policy := "THR-MMT"
		if *fig == "6b" {
			policy = "Megh"
		}
		grid, err := parseSizes([]int{100, 200, 300, 400, 500, 600, 700, 800})
		if err != nil {
			return err
		}
		pts, err := experiments.RunScalability(experiments.PlanetLab, policy,
			grid, *reps, stepsOr(workload.StepsPerDay), *seed)
		if err != nil {
			return err
		}
		if *plot {
			return plotScalabilityGrid(pts, grid,
				fmt.Sprintf("Figure %s: %s per-step exec time (ms)", *fig, policy))
		}
		return experiments.WriteScalabilityCSV(os.Stdout, pts)

	case "7":
		grid, err := parseSizes([]int{100, 200, 400, 800})
		if err != nil {
			return err
		}
		growth, err := experiments.QTableGrowth(experiments.PlanetLab, grid,
			stepsOr(workload.SevenDays), *seed)
		if err != nil {
			return err
		}
		return experiments.WriteQTableGrowthCSV(os.Stdout, growth, grid)

	case "8a":
		setup := sensitivitySetup(*seed, stepsOr(workload.StepsPerDay))
		temps := make([]float64, 0, 20)
		for v := 0.5; v <= 10.001; v += 0.5 {
			temps = append(temps, v)
		}
		pts, err := experiments.RunSensitivityTemp(setup, temps, 0.001, *reps)
		if err != nil {
			return err
		}
		if *plot {
			return plotSensitivity(pts, "Figure 8a: per-step cost vs Temp0")
		}
		return experiments.WriteSensitivityCSV(os.Stdout, pts)

	case "8b":
		setup := sensitivitySetup(*seed, stepsOr(workload.StepsPerDay))
		// 30 log-spaced values in [10⁻³, 10⁰] at 0.1 decade spacing.
		eps := make([]float64, 0, 31)
		for e := -3.0; e <= 0.001; e += 0.1 {
			eps = append(eps, pow10(e))
		}
		pts, err := experiments.RunSensitivityEpsilon(setup, eps, 1, *reps)
		if err != nil {
			return err
		}
		if *plot {
			return plotSensitivity(pts, "Figure 8b: per-step cost vs ε")
		}
		return experiments.WriteSensitivityCSV(os.Stdout, pts)

	default:
		return fmt.Errorf("unknown figure %q (want 1a 1b 2 3 4 5 6a 6b 7 8a 8b)", *fig)
	}
}

// sensitivitySetup is the PlanetLab world the Figure-8 sweeps run on; kept
// below full scale so 25 repetitions per parameter value stay tractable.
func sensitivitySetup(seed int64, steps int) experiments.Setup {
	return experiments.Setup{
		Dataset: experiments.PlanetLab,
		Hosts:   100, VMs: 132, Steps: steps, Seed: seed,
	}
}

func pow10(e float64) float64 { return math.Pow(10, e) }

// plotCostSeries renders the per-step cost panel as a terminal line chart.
func plotCostSeries(set experiments.SeriesSet, order []string, title string) error {
	series := make([]report.Series, 0, len(order))
	for _, name := range order {
		r, ok := set[name]
		if !ok {
			continue
		}
		series = append(series, report.Series{Name: name, Values: r.PerStepCosts()})
	}
	return report.LineChart(os.Stdout, title, series, 100, 20)
}

// svgCostSeries renders the per-step cost panel as an SVG line chart.
func svgCostSeries(set experiments.SeriesSet, order []string, title string) error {
	series := make([]report.Series, 0, len(order))
	for _, name := range order {
		r, ok := set[name]
		if !ok {
			continue
		}
		series = append(series, report.Series{Name: name, Values: r.PerStepCosts()})
	}
	return report.LineChartSVG(os.Stdout, title, "step (5-minute intervals)", "USD per step", series)
}

// plotScalabilityGrid renders the Figure-6 grid as a heat map.
func plotScalabilityGrid(pts []experiments.ScalabilityPoint, grid []int, title string) error {
	idx := make(map[[2]int]float64, len(pts))
	for _, p := range pts {
		idx[[2]int{p.Hosts, p.VMs}] = p.MeanDecideMs
	}
	labels := make([]string, len(grid))
	cells := make([][]float64, len(grid))
	for i, m := range grid {
		labels[i] = strconv.Itoa(m)
		cells[i] = make([]float64, len(grid))
		for j, n := range grid {
			cells[i][j] = idx[[2]int{m, n}]
		}
	}
	return report.HeatGrid(os.Stdout, title+"  (rows: hosts, cols: VMs)", labels, labels, cells)
}

// plotSensitivity renders the Figure-8 boxplots as strips.
func plotSensitivity(pts []experiments.SensitivityPoint, title string) error {
	rows := make([]report.BoxplotRow, 0, len(pts))
	for _, p := range pts {
		b := p.Boxplot
		rows = append(rows, report.BoxplotRow{
			Label: fmt.Sprintf("%.4g", p.Param),
			P05:   b.P05, Q1: b.Q1, Median: b.Median, Q3: b.Q3, P95: b.P95,
		})
	}
	return report.BoxplotStrips(os.Stdout, title, rows, 60)
}
