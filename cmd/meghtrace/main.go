// Command meghtrace analyses the structured JSONL traces written by
// meghsim -trace, meghd -trace, or any sim.Config with a Tracer.
//
// Usage:
//
//	meghtrace summary run.jsonl
//	meghtrace diff a.jsonl b.jsonl
//
// summary prints event counts, the cost decomposition, migration-cause and
// rejection breakdowns, host wake/sleep transitions, the learner's final
// state, and — when the trace was recorded with timings — per-phase decide
// latency percentiles (p50/p90/p99/max).
//
// summary is batch-aware: traces from meghd's batched decide path
// (POST /v2/sessions/{id}/decide/batch) carry one batch event per request
// recording how many observe→decide items it served. The report counts
// batch requests and items, and with timings adds a "decide/item" latency
// row — each batch request's wall time divided by its item count — so
// batched and single-decide runs compare per decision, not per request.
//
// diff compares two traces step by step, ignoring wall-clock timing
// fields, and reports every divergence (different chosen action, executed
// migration, cost, digest, …). It exits 0 and prints "zero divergence"
// when the runs match, and exits 1 otherwise — the reproducibility check
// behind "two same-seed runs are byte-identical".
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"megh/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "meghtrace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: meghtrace summary FILE | meghtrace diff FILE_A FILE_B")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "summary":
		return runSummary(args[1:])
	case "diff":
		return runDiff(args[1:])
	case "-h", "-help", "--help", "help":
		fmt.Println(usage().Error())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q; %v", args[0], usage())
	}
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usage()
	}
	events, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	s := trace.Summarize(events)

	fmt.Printf("trace: %s\n", fs.Arg(0))
	fmt.Printf("events: %d (%d decide, %d step, %d batch), steps %d..%d\n",
		s.Events, s.DecideEvents, s.StepEvents, s.BatchEvents, s.FirstStep, s.LastStep)
	if s.BatchEvents > 0 {
		fmt.Printf("batches: %d requests carrying %d items (%.1f items/request)\n",
			s.BatchEvents, s.BatchItems, float64(s.BatchItems)/float64(s.BatchEvents))
	}
	fmt.Printf("cost: total %.4f (energy %.4f, sla %.4f, resource %.4f)\n",
		s.TotalCost, s.EnergyCost, s.SLACost, s.ResourceCost)

	fmt.Printf("migrations: %d executed, %d rejected, %d stay decisions\n",
		s.Executed, s.Rejected, s.StayChosen)
	printBreakdown("  executed by cause", s.MigrationsByCause)
	printBreakdown("  rejected by reason", s.RejectedByReason)
	printBreakdown("  candidates by reason", s.CandidatesByReason)

	fmt.Printf("hosts: %d woken, %d slept\n", s.WokenHosts, s.SleptHosts)
	if s.DecideEvents > 0 {
		fmt.Printf("learner: final Q-table nnz %d, final temperature %.4f\n",
			s.FinalQTableNNZ, s.FinalTemperature)
	}

	if s.DecideTotal.Count > 0 || len(s.Spans) > 0 || s.BatchPerItem.Count > 0 {
		fmt.Println("decide latency (recorded with timings):")
		fmt.Printf("  %-11s %8s %10s %10s %10s %10s\n",
			"phase", "count", "p50", "p90", "p99", "max")
		for _, sp := range s.Spans {
			printSpanStat(sp)
		}
		if s.DecideTotal.Count > 0 {
			printSpanStat(s.DecideTotal)
		}
		if s.BatchPerItem.Count > 0 {
			// Wall time per batch request ÷ items in it: the amortized
			// per-decision latency of the batched path.
			printSpanStat(s.BatchPerItem)
		}
	} else {
		fmt.Println("decide latency: not recorded (rerun with -trace-timings)")
	}
	return nil
}

func printSpanStat(sp trace.SpanStat) {
	fmt.Printf("  %-11s %8d %10s %10s %10s %10s\n", sp.Name, sp.Count,
		fmtNanos(sp.P50), fmtNanos(sp.P90), fmtNanos(sp.P99), fmtNanos(sp.Max))
}

func fmtNanos(n int64) string {
	return time.Duration(n).Round(time.Microsecond / 10).String()
}

// printBreakdown prints a count map in deterministic (sorted) order.
func printBreakdown(title string, m map[string]int) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%s:", title)
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, m[k])
	}
	fmt.Println()
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	maxDiv := fs.Int("max", 20, "stop after this many divergences (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return usage()
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	a, err := trace.ReadFile(pathA)
	if err != nil {
		return err
	}
	b, err := trace.ReadFile(pathB)
	if err != nil {
		return err
	}
	res := trace.Diff(a, b, *maxDiv)
	fmt.Printf("a: %s (%d events)\nb: %s (%d events)\n",
		pathA, res.EventsA, pathB, res.EventsB)
	if res.Identical() {
		fmt.Printf("zero divergence across %d compared events\n", res.Compared)
		return nil
	}
	if res.MissingInA > 0 || res.MissingInB > 0 {
		fmt.Printf("missing events: %d only in b, %d only in a\n",
			res.MissingInA, res.MissingInB)
	}
	if len(res.Divergences) > 0 {
		fmt.Printf("first divergence at step %d\n", res.FirstStep())
		for _, d := range res.Divergences {
			fmt.Printf("  step %-6d %-7s %-22s a=%s  b=%s\n",
				d.Step, d.Kind, d.Field, d.A, d.B)
		}
		if res.Truncated {
			fmt.Printf("  … truncated after %d divergences (-max to raise)\n",
				len(res.Divergences))
		}
	}
	os.Exit(1)
	return nil
}
