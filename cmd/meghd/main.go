// Command meghd runs the Megh scheduler as an HTTP service — the "global
// resource manager" of paper §3.1 as a deployable component. A monitoring
// pipeline POSTs per-interval utilization snapshots; meghd answers with
// live-migration decisions, learns from posted cost feedback, and
// checkpoints its Q-table so restarts lose nothing.
//
// Usage:
//
//	meghd -vms 1052 -hosts 800 -listen :8080 -checkpoint /var/lib/megh/state
//
// One meghd can also serve many independent data centers as named
// sessions, each with its own learner, trace ring, and checkpoint file:
//
//	meghd -vms 1052 -hosts 800 -checkpoint-dir /var/lib/megh/sessions -max-sessions 64
//
// API (see the megh/internal/server package doc for request/response
// bodies):
//
//	PUT    /v2/sessions/{id}            create (or idempotently re-assert) a session
//	GET    /v2/sessions                 list sessions
//	GET    /v2/sessions/{id}            session info (spec, residency, counters)
//	DELETE /v2/sessions/{id}            delete a session and its checkpoint
//	POST   /v2/sessions/{id}/decide     migration decision for that session
//	POST   /v2/sessions/{id}/decide/batch  many observe→decide steps in one request
//	POST   /v2/sessions/{id}/feedback   observed step cost for that session
//	GET    /v2/sessions/{id}/stats      learner internals for that session
//	POST   /v2/sessions/{id}/checkpoint persist that session now
//	GET    /v2/sessions/{id}/trace/tail newest buffered trace events
//	GET    /v2/sessions/{id}/metrics    per-session Prometheus text
//	GET    /v2/sessions/{id}/health     learning-health snapshot (never thaws an evicted session)
//	GET    /v2/health                   fleet roll-up: verdict histogram, worst-N sessions,
//	                                    decide-latency SLO burn rates, latency exemplars
//
//	POST /v1/decide      {"step":0,"hosts":[…],"vms":[…]} → {"migrations":[…]}
//	POST /v1/feedback    {"step":0,"step_cost":0.61}       → 204
//	GET  /v1/stats       → learner internals (Q-table size, temperature, …)
//	GET  /v1/trace/tail  → newest buffered trace events (with -trace)
//	POST /v1/checkpoint  → writes the state file
//	GET  /metrics        → Prometheus text format (request counters, decide
//	                       latency histogram, learner gauges)
//	GET  /healthz        → "ok"
//	GET  /debug/pprof/*  → live CPU/heap/goroutine profiles
//
// Cluster mode shards the /v2 sessions across several meghd nodes by
// consistent hashing, proxies requests to each session's owner, and
// replicates every checkpoint to the session's ring successors so a node
// crash loses no learning (the new owner promotes its replica on the
// session's next touch):
//
//	meghd -vms 1052 -hosts 800 -checkpoint-dir /var/lib/megh/sessions \
//	  -cluster-node a -cluster-advertise http://10.0.0.1:8080 \
//	  -cluster-peers b=http://10.0.0.2:8080,c=http://10.0.0.3:8080
//
//	GET    /v2/cluster                  membership view (answers enabled=false unclustered)
//	GET    /v2/cluster/route/{id}       where a session ID lands on the ring
//	PUT    /v2/cluster/replicas/{id}    peer pushing a checkpoint image for safekeeping
//	GET    /v2/cluster/replicas/{id}    stored replica image
//	DELETE /v2/cluster/replicas/{id}    drop a replica image
//	POST   /v2/cluster/rebalance        hand misplaced sessions to their ring owners
//
// The /v1 routes are a deprecated shim over the reserved "default"
// session; /v1 and /v2/sessions/default address the same learner.
//
// Observability: -trace FILE appends one JSONL event per decision and per
// feedback post (analyse with meghtrace); -log-level picks the stderr log
// verbosity.
//
// Lifecycle: SIGINT/SIGTERM drains in-flight requests (up to
// -drain-timeout) and writes a final checkpoint before exiting; with
// -checkpoint-every > 0 the state is also persisted periodically, so a
// crash loses at most one period of learning.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"megh/internal/server"
	"megh/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "meghd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":8080", "address to serve on")
		vms        = flag.Int("vms", 0, "number of virtual machines (N, required)")
		hosts      = flag.Int("hosts", 0, "number of physical machines (M, required)")
		overload   = flag.Float64("overload", 0.70, "overload threshold β")
		step       = flag.Float64("step", 300, "monitoring interval τ in seconds")
		checkpoint = flag.String("checkpoint", "", "default-session state file (restored on start if present)")
		ckptDir    = flag.String("checkpoint-dir", "",
			"directory for per-session checkpoint files (enables eviction and restart restore for /v2 sessions)")
		maxSessions = flag.Int("max-sessions", 0,
			"max learners resident in memory; 0 = unlimited (>0 needs -checkpoint-dir; LRU sessions are checkpointed and evicted)")
		maxInFlight = flag.Int("max-inflight", 0,
			"max concurrent in-flight decisions (batches weigh their item count) before shedding 429s; 0 = unlimited")
		coalesceLinger = flag.Duration("coalesce-linger", 0,
			"window during which concurrent decide requests to one session merge into a single batched learner call; 0 = default (100µs), <0 disables coalescing")
		sessionRing = flag.Int("session-ring", 0,
			"per-session trace ring size for /v2 trace tails; 0 = default, <0 disables")
		ckptEvery = flag.Duration("checkpoint-every", 5*time.Minute,
			"periodic checkpoint interval; 0 disables (needs -checkpoint or -checkpoint-dir)")
		drain = flag.Duration("drain-timeout", 10*time.Second,
			"how long to wait for in-flight requests on shutdown")
		deferThreshold = flag.Float64("defer-threshold", 0,
			"defer/merge LSPI updates whose influence is below this threshold; 0 = exact mode (apply every update immediately)")
		deferMaxAge = flag.Int("defer-maxage", 0,
			"max decides a deferred update may wait before the queue is flushed; 0 = default cadence (only meaningful with -defer-threshold)")
		healthProbeEvery = flag.Int("health-probe-every", 0,
			"decides between sampled learning-health probes (theta and inverse-drift spot checks) per session; 0 = default cadence, <0 disables probing")
		sloDecideP99 = flag.Float64("slo-decide-p99", 0,
			"decide-latency SLO objective in seconds for the burn-rate tracking on /v2/health and /metrics; 0 = default, <0 disables")
		metricsTopK = flag.Int("metrics-session-topk", 0,
			"sessions keeping their own label on the fleet /metrics block (busiest by decisions; the rest fold into session=\"other\"); 0 = default, <0 unbounded")
		clusterNode = flag.String("cluster-node", "",
			"this node's cluster name; setting it enables cluster mode (needs -checkpoint-dir and -cluster-advertise)")
		clusterAdvertise = flag.String("cluster-advertise", "",
			"base URL peers use to reach this node, e.g. http://10.0.0.1:8080")
		clusterPeers = flag.String("cluster-peers", "",
			"comma-separated name=url peer list; an entry matching -cluster-node is ignored, so all nodes can share one list")
		clusterReplicas = flag.Int("cluster-replicas", 0,
			"nodes holding each session's checkpoint, owner included; 0 = default (2)")
		clusterVNodes = flag.Int("cluster-vnodes", 0,
			"virtual points per node on the placement ring (all nodes must agree); 0 = default (64)")
		clusterHeartbeat = flag.Duration("cluster-heartbeat", 0,
			"peer probe cadence; 0 = default (1s)")
		clusterFailAfter = flag.Int("cluster-fail-after", 0,
			"consecutive failed probes before a peer is considered dead; 0 = default (3)")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "exploration seed")
		traceOut  = flag.String("trace", "", "append structured trace events (JSONL) to this file")
		traceRing = flag.Int("trace-ring", trace.DefaultRingSize,
			"trace events retained in memory for GET /v1/trace/tail")
		traceTimings = flag.Bool("trace-timings", false,
			"record wall-clock span timings in trace events (nondeterministic)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()

	level, err := trace.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := trace.NewLogger(os.Stderr, level)

	if *vms <= 0 || *hosts <= 0 {
		return fmt.Errorf("-vms and -hosts are required and must be positive")
	}

	// The tracer is on by default with only the in-memory ring (feeding
	// GET /v1/trace/tail); -trace adds the JSONL file sink and
	// -trace-ring 0 without -trace turns tracing off entirely.
	var tracer *trace.Tracer
	if *traceOut != "" || *traceRing > 0 {
		tracer, err = trace.New(trace.Options{
			Path: *traceOut, RingSize: *traceRing, Timings: *traceTimings})
		if err != nil {
			return fmt.Errorf("opening trace sink: %w", err)
		}
		defer func() {
			if cerr := tracer.Close(); cerr != nil {
				logger.Errorf("closing trace sink: %v", cerr)
			}
		}()
		if *traceOut != "" {
			logger.Infof("tracing decisions to %s (ring=%d, timings=%t)",
				*traceOut, *traceRing, *traceTimings)
		}
	}

	var clusterCfg *server.ClusterConfig
	if *clusterNode != "" {
		peers, err := parsePeers(*clusterPeers)
		if err != nil {
			return err
		}
		clusterCfg = &server.ClusterConfig{
			NodeName:       *clusterNode,
			AdvertiseURL:   *clusterAdvertise,
			Peers:          peers,
			Replicas:       *clusterReplicas,
			VNodes:         *clusterVNodes,
			HeartbeatEvery: *clusterHeartbeat,
			FailAfter:      *clusterFailAfter,
		}
	}

	svc, err := server.New(server.Config{
		NumVMs:             *vms,
		NumHosts:           *hosts,
		OverloadThreshold:  *overload,
		StepSeconds:        *step,
		CheckpointPath:     *checkpoint,
		CheckpointDir:      *ckptDir,
		MaxSessions:        *maxSessions,
		MaxInFlight:        *maxInFlight,
		CoalesceLinger:     *coalesceLinger,
		SessionRing:        *sessionRing,
		DeferThreshold:     *deferThreshold,
		DeferMaxAge:        *deferMaxAge,
		Seed:               *seed,
		Tracer:             tracer,
		HealthProbeEvery:   *healthProbeEvery,
		SLODecideP99:       *sloDecideP99,
		MetricsSessionTopK: *metricsTopK,
		Cluster:            clusterCfg,
	})
	if err != nil {
		return err
	}
	logger.Infof("serving %d VMs × %d hosts on %s (β=%.2f, τ=%.0fs, checkpoint=%q)",
		*vms, *hosts, *listen, *overload, *step, *checkpoint)
	if *ckptDir != "" {
		logger.Infof("sessions: checkpoint-dir=%s max-sessions=%d", *ckptDir, *maxSessions)
	}
	srv := &http.Server{
		Addr:              *listen,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if clusterCfg != nil {
		logger.Infof("cluster: node=%s advertise=%s peers=%d replicas=%d",
			clusterCfg.NodeName, clusterCfg.AdvertiseURL, len(clusterCfg.Peers), clusterCfg.Replicas)
		go svc.StartCluster(ctx)
	}

	// Periodic checkpoints bound how much learning a crash can lose.
	// CheckpointAll covers every resident session, the default one
	// included, so the single-tenant and multi-tenant paths share it.
	if (*checkpoint != "" || *ckptDir != "") && *ckptEvery > 0 {
		go func() {
			ticker := time.NewTicker(*ckptEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if n, err := svc.CheckpointAll(); err != nil {
						logger.Warnf("periodic checkpoint failed: %v", err)
					} else {
						logger.Debugf("checkpointed %d session(s)", n)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// persist the learner one last time so no learning is lost.
	logger.Infof("shutting down (draining up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	if *checkpoint != "" || *ckptDir != "" {
		if n, err := svc.CheckpointAll(); err != nil {
			logger.Errorf("final checkpoint failed: %v", err)
			if shutdownErr == nil {
				shutdownErr = err
			}
		} else {
			logger.Infof("final checkpoint: %d session(s) persisted", n)
		}
	}
	// Let the final checkpoint's replica pushes land before exiting, so a
	// clean shutdown leaves peers holding this node's freshest learning.
	svc.WaitReplication()
	return shutdownErr
}

// parsePeers decodes a "name=url,name=url" peer list.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("-cluster-peers entry %q is not name=url", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("-cluster-peers lists node %q twice", name)
		}
		peers[name] = url
	}
	return peers, nil
}
