// Command meghd runs the Megh scheduler as an HTTP service — the "global
// resource manager" of paper §3.1 as a deployable component. A monitoring
// pipeline POSTs per-interval utilization snapshots; meghd answers with
// live-migration decisions, learns from posted cost feedback, and
// checkpoints its Q-table so restarts lose nothing.
//
// Usage:
//
//	meghd -vms 1052 -hosts 800 -listen :8080 -checkpoint /var/lib/megh/state
//
// API:
//
//	POST /v1/decide     {"step":0,"hosts":[…],"vms":[…]} → {"migrations":[…]}
//	POST /v1/feedback   {"step":0,"step_cost":0.61}       → 204
//	GET  /v1/stats      → learner internals (Q-table size, temperature, …)
//	POST /v1/checkpoint → writes the state file
//	GET  /healthz       → "ok"
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"megh/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "meghd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":8080", "address to serve on")
		vms        = flag.Int("vms", 0, "number of virtual machines (N, required)")
		hosts      = flag.Int("hosts", 0, "number of physical machines (M, required)")
		overload   = flag.Float64("overload", 0.70, "overload threshold β")
		step       = flag.Float64("step", 300, "monitoring interval τ in seconds")
		checkpoint = flag.String("checkpoint", "", "learner state file (restored on start if present)")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "exploration seed")
	)
	flag.Parse()

	if *vms <= 0 || *hosts <= 0 {
		return fmt.Errorf("-vms and -hosts are required and must be positive")
	}
	svc, err := server.New(server.Config{
		NumVMs:            *vms,
		NumHosts:          *hosts,
		OverloadThreshold: *overload,
		StepSeconds:       *step,
		CheckpointPath:    *checkpoint,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	log.Printf("meghd: serving %d VMs × %d hosts on %s (β=%.2f, τ=%.0fs, checkpoint=%q)",
		*vms, *hosts, *listen, *overload, *step, *checkpoint)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
