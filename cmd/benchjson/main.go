// Command benchjson turns `go test -bench -benchmem` output into a tracked
// machine-readable baseline.
//
// It reads benchmark text on stdin, parses every result line into
// {name, iterations, ns/op, B/op, allocs/op, custom metrics}, and writes a
// single JSON document. The repository keeps the result as BENCH_megh.json
// (regenerate with `make bench-json`): committing it alongside performance
// work gives every revision an auditable before/after record, and reviews
// can diff the numbers like any other file.
//
// With -assert-zero-alloc, benchjson additionally fails (exit 1) unless the
// named benchmarks report exactly 0 allocs/op — `make check` uses this as a
// regression gate on the allocation-free decide path. -assert-max-allocs
// generalises the gate to bounded-allocation paths: repeated NAME=N pairs
// each fail the run when the named benchmark exceeds N allocs/op (`make
// check` bounds the coalesced server decide path this way).
//
// With -check FILE, benchjson compares the freshly parsed results against
// the committed baseline document instead of writing one: any benchmark
// present in both whose ns/op regressed by more than -check-tolerance
// (default 0.20, i.e. 20%) fails the run, listing every offender —
// `make bench-check` uses this as the performance regression gate against
// BENCH_megh.json. Benchmarks new in this run (absent from the baseline)
// are skipped, so adding a benchmark never requires regenerating the
// baseline in the same change.
//
// Usage:
//
//	go test -run=- -bench=. -benchmem ./... | benchjson -commit $(git rev-parse --short HEAD) -o BENCH_megh.json
//	go test -run=- -bench=Decide/no-tracer-nocost -benchmem ./internal/core | benchjson -assert-zero-alloc BenchmarkDecide/no-tracer-nocost
//	go test -run=- -bench=. -benchmem ./... | benchjson -check BENCH_megh.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op"`
	AllocsPerOp float64            `json:"allocs_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is the BENCH_megh.json document.
type File struct {
	Schema     int      `json:"schema"`
	Commit     string   `json:"commit,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches a go test benchmark result: name, iteration count, then
// tab-separated "<value> <unit>" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// cpuSuffix strips the trailing GOMAXPROCS qualifier go test appends to
// benchmark names (e.g. BenchmarkDecide/no-tracer-8 → BenchmarkDecide/no-tracer).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse consumes benchmark text and returns the parsed results plus the
// "cpu:" header line, if present. Repetitions of one benchmark (-count=N)
// collapse to the fastest rep by ns/op: the minimum is the noise-robust
// estimate a regression gate wants — scheduler interference and frequency
// scaling only ever make a run slower, never faster.
func parse(r io.Reader) ([]Result, string, error) {
	var results []Result
	var cpu string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu:") {
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		res := Result{Name: cpuSuffix.ReplaceAllString(m[1], ""), Iterations: iters}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, "", fmt.Errorf("benchjson: odd metric fields in %q", line)
		}
		for i := 0; i < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("benchjson: bad metric value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			case "MB/s":
				fallthrough
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = val
			}
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	best := make(map[string]int, len(results))
	deduped := results[:0]
	for _, r := range results {
		if at, ok := best[r.Name]; ok {
			if r.NsPerOp < deduped[at].NsPerOp {
				deduped[at] = r
			}
			continue
		}
		best[r.Name] = len(deduped)
		deduped = append(deduped, r)
	}
	results = deduped
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, cpu, nil
}

// assertZeroAlloc fails unless every named benchmark is present and reports
// exactly zero allocations per operation.
func assertZeroAlloc(results []Result, names []string) error {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, n := range names {
		r, ok := byName[n]
		if !ok {
			return fmt.Errorf("benchjson: benchmark %q not found in input (have %d results)", n, len(results))
		}
		if r.AllocsPerOp != 0 {
			return fmt.Errorf("benchjson: %s allocates %.0f allocs/op (%.0f B/op), want 0 — the allocation-free decide path regressed",
				n, r.AllocsPerOp, r.BytesPerOp)
		}
	}
	return nil
}

// assertMaxAllocs fails unless every "NAME=N" entry names a present
// benchmark reporting at most N allocs/op.
func assertMaxAllocs(results []Result, specs []string) error {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, spec := range specs {
		name, limitStr, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("benchjson: -assert-max-allocs entry %q is not NAME=N", spec)
		}
		limit, err := strconv.ParseFloat(limitStr, 64)
		if err != nil || limit < 0 {
			return fmt.Errorf("benchjson: -assert-max-allocs entry %q has a bad limit", spec)
		}
		r, ok := byName[name]
		if !ok {
			return fmt.Errorf("benchjson: benchmark %q not found in input (have %d results)", name, len(results))
		}
		if r.AllocsPerOp > limit {
			return fmt.Errorf("benchjson: %s allocates %.0f allocs/op (%.0f B/op), limit %.0f — the bounded-allocation path regressed",
				name, r.AllocsPerOp, r.BytesPerOp, limit)
		}
	}
	return nil
}

// checkRegressions compares fresh results against the committed baseline:
// each benchmark present in both must keep ns/op within (1+tolerance)× its
// baseline value. Every offender is reported, not just the first, so one
// run shows the full damage. Benchmarks missing from the baseline pass
// (they are new); benchmarks missing from the fresh run are ignored (the
// caller chose what to re-run).
func checkRegressions(results []Result, baselinePath string, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchjson: reading baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchjson: parsing baseline %s: %w", baselinePath, err)
	}
	byName := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, r := range results {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		compared++
		if r.NsPerOp > b.NsPerOp*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("  %s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit +%.0f%%)",
					r.Name, r.NsPerOp, b.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, tolerance*100))
		}
	}
	if compared == 0 {
		return fmt.Errorf("benchjson: no benchmark in the input matches the baseline %s (%d baseline entries)",
			baselinePath, len(base.Benchmarks))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchjson: %d of %d benchmarks regressed beyond the %.0f%% tolerance vs %s:\n%s",
			len(regressions), compared, tolerance*100, baselinePath, strings.Join(regressions, "\n"))
	}
	return nil
}

func run(in io.Reader, out io.Writer, commit, outPath, note, zeroAlloc, maxAllocs, checkPath string, checkTol float64) error {
	results, cpu, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark results on stdin")
	}
	gated := false
	if zeroAlloc != "" {
		var names []string
		for _, n := range strings.Split(zeroAlloc, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if err := assertZeroAlloc(results, names); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchjson: zero-alloc gate passed for %s\n", zeroAlloc)
		gated = true
	}
	if maxAllocs != "" {
		var specs []string
		for _, n := range strings.Split(maxAllocs, ",") {
			if n = strings.TrimSpace(n); n != "" {
				specs = append(specs, n)
			}
		}
		if err := assertMaxAllocs(results, specs); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchjson: max-allocs gate passed for %s\n", maxAllocs)
		gated = true
	}
	if gated && outPath == "" && checkPath == "" {
		return nil
	}
	if checkPath != "" {
		if checkTol <= 0 {
			return fmt.Errorf("benchjson: -check-tolerance %g must be positive", checkTol)
		}
		if err := checkRegressions(results, checkPath, checkTol); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchjson: regression gate passed against %s (tolerance %.0f%%)\n",
			checkPath, checkTol*100)
		if outPath == "" {
			return nil
		}
	}
	doc := File{
		Schema:     1,
		Commit:     commit,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpu,
		Note:       note,
		Benchmarks: results,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" || outPath == "-" {
		_, err = out.Write(enc)
		return err
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "benchjson: wrote %d benchmarks to %s\n", len(results), outPath)
	return nil
}

func main() {
	commit := flag.String("commit", "", "commit hash to record in the output")
	outPath := flag.String("o", "", "output file (default or \"-\": stdout)")
	note := flag.String("note", "", "free-form note recorded in the output")
	zeroAlloc := flag.String("assert-zero-alloc", "",
		"comma-separated benchmark names that must report 0 allocs/op; exit 1 otherwise")
	maxAllocs := flag.String("assert-max-allocs", "",
		"comma-separated NAME=N pairs; exit 1 when NAME reports more than N allocs/op")
	checkPath := flag.String("check", "",
		"baseline BENCH JSON file to compare against; exit 1 when any shared benchmark's ns/op regresses beyond -check-tolerance")
	checkTol := flag.Float64("check-tolerance", 0.20,
		"allowed fractional ns/op regression for -check (0.20 = 20%)")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *commit, *outPath, *note, *zeroAlloc, *maxAllocs, *checkPath, *checkTol); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
