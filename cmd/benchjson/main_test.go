package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: megh/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecide/no-tracer-nocost-8         	   10000	      2648 ns/op	      29 B/op	       0 allocs/op
BenchmarkDecide/no-tracer-8                	   10000	     50041 ns/op	     412 B/op	       1 allocs/op
BenchmarkFigure6_Megh 	      20	  13039653 ns/op	         0.009982 largest_grid_decide_ms	 4498456 B/op	   12148 allocs/op
PASS
ok  	megh/internal/core	0.603s
`

func TestParse(t *testing.T) {
	results, cpu, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	// Sorted by name; GOMAXPROCS suffix stripped.
	if results[0].Name != "BenchmarkDecide/no-tracer" {
		t.Fatalf("first result %q", results[0].Name)
	}
	if results[1].Name != "BenchmarkDecide/no-tracer-nocost" {
		t.Fatalf("second result %q", results[1].Name)
	}
	nocost := results[1]
	if nocost.Iterations != 10000 || nocost.NsPerOp != 2648 || nocost.BytesPerOp != 29 || nocost.AllocsPerOp != 0 {
		t.Fatalf("nocost parsed as %+v", nocost)
	}
	fig := results[2]
	if fig.Name != "BenchmarkFigure6_Megh" {
		t.Fatalf("third result %q", fig.Name)
	}
	if got := fig.Extra["largest_grid_decide_ms"]; got != 0.009982 {
		t.Fatalf("custom metric = %v", got)
	}
}

// TestParseKeepsFastestRep: -count=N repetitions collapse to the rep with
// the lowest ns/op — the noise-robust estimate the regression gate compares.
func TestParseKeepsFastestRep(t *testing.T) {
	reps := `BenchmarkDecide/no-tracer-8	10000	52000 ns/op	412 B/op	1 allocs/op
BenchmarkDecide/no-tracer-8	10000	50041 ns/op	412 B/op	1 allocs/op
BenchmarkDecide/no-tracer-8	10000	61000 ns/op	412 B/op	1 allocs/op
`
	results, _, err := parse(strings.NewReader(reps))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1 after rep collapse", len(results))
	}
	if results[0].NsPerOp != 50041 {
		t.Fatalf("kept %v ns/op, want the fastest rep 50041", results[0].NsPerOp)
	}
}

func TestAssertZeroAlloc(t *testing.T) {
	results, _, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := assertZeroAlloc(results, []string{"BenchmarkDecide/no-tracer-nocost"}); err != nil {
		t.Fatalf("gate failed on zero-alloc benchmark: %v", err)
	}
	if err := assertZeroAlloc(results, []string{"BenchmarkDecide/no-tracer"}); err == nil {
		t.Fatal("gate passed on allocating benchmark")
	}
	if err := assertZeroAlloc(results, []string{"BenchmarkMissing"}); err == nil {
		t.Fatal("gate passed on missing benchmark")
	}
}

func TestAssertMaxAllocs(t *testing.T) {
	results, _, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := assertMaxAllocs(results, []string{"BenchmarkDecide/no-tracer=1"}); err != nil {
		t.Fatalf("gate failed at the exact limit: %v", err)
	}
	if err := assertMaxAllocs(results, []string{"BenchmarkFigure6_Megh=100"}); err == nil {
		t.Fatal("gate passed a benchmark far over its limit")
	}
	if err := assertMaxAllocs(results, []string{"BenchmarkMissing=5"}); err == nil {
		t.Fatal("gate passed on missing benchmark")
	}
	if err := assertMaxAllocs(results, []string{"BenchmarkDecide/no-tracer"}); err == nil {
		t.Fatal("gate accepted an entry without =N")
	}
	if err := assertMaxAllocs(results, []string{"BenchmarkDecide/no-tracer=-3"}); err == nil {
		t.Fatal("gate accepted a negative limit")
	}
}

func TestRunWritesJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out, "abc1234", "-", "", "", "", "", 0.20); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"commit": "abc1234"`, `"ns_op": 50041`, `"allocs_op": 0`, `"largest_grid_decide_ms": 0.009982`} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\n"), &out, "", "-", "", "", "", "", 0.20); err == nil {
		t.Fatal("empty benchmark input accepted")
	}
}

// writeBaseline produces a baseline document from benchmark text via run(),
// exactly as `make bench-json` would.
func writeBaseline(t *testing.T, benchText string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var out strings.Builder
	if err := run(strings.NewReader(benchText), &out, "base", path, "", "", "", "", 0.20); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t, sample)
	// Fresh run 10% slower on one benchmark: inside the 20% budget.
	fresh := strings.Replace(sample, "2648 ns/op", "2900 ns/op", 1)
	var out strings.Builder
	if err := run(strings.NewReader(fresh), &out, "", "", "", "", "", base, 0.20); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "regression gate passed") {
		t.Fatalf("missing pass message:\n%s", out.String())
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, sample)
	// 2648 → 4000 ns/op is a 51% regression; the error must name the
	// benchmark and both values.
	fresh := strings.Replace(sample, "2648 ns/op", "4000 ns/op", 1)
	var out strings.Builder
	err := run(strings.NewReader(fresh), &out, "", "", "", "", "", base, 0.20)
	if err == nil {
		t.Fatal("51% regression passed the 20% gate")
	}
	for _, want := range []string{"BenchmarkDecide/no-tracer-nocost", "4000", "2648"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error missing %q: %v", want, err)
		}
	}
}

func TestCheckSkipsBenchmarksNewInThisRun(t *testing.T) {
	base := writeBaseline(t, sample)
	fresh := sample + "BenchmarkDecideBatch/deferred-n64-8\t10000\t999999 ns/op\t0 B/op\t0 allocs/op\n"
	var out strings.Builder
	if err := run(strings.NewReader(fresh), &out, "", "", "", "", "", base, 0.20); err != nil {
		t.Fatalf("benchmark absent from the baseline failed the gate: %v", err)
	}
}

func TestCheckRejectsDisjointBaseline(t *testing.T) {
	other := `BenchmarkSomethingElse-8	100	50 ns/op
`
	base := writeBaseline(t, other)
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out, "", "", "", "", "", base, 0.20); err == nil {
		t.Fatal("gate passed with zero benchmarks compared")
	}
}

func TestCheckRejectsMissingBaselineFile(t *testing.T) {
	var out strings.Builder
	missing := filepath.Join(t.TempDir(), "nope.json")
	if err := run(strings.NewReader(sample), &out, "", "", "", "", "", missing, 0.20); err == nil {
		t.Fatal("gate passed without a baseline file")
	}
	if _, err := os.Stat(missing); err == nil {
		t.Fatal("check mode created the baseline file")
	}
}
