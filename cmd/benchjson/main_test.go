package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: megh/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecide/no-tracer-nocost-8         	   10000	      2648 ns/op	      29 B/op	       0 allocs/op
BenchmarkDecide/no-tracer-8                	   10000	     50041 ns/op	     412 B/op	       1 allocs/op
BenchmarkFigure6_Megh 	      20	  13039653 ns/op	         0.009982 largest_grid_decide_ms	 4498456 B/op	   12148 allocs/op
PASS
ok  	megh/internal/core	0.603s
`

func TestParse(t *testing.T) {
	results, cpu, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	// Sorted by name; GOMAXPROCS suffix stripped.
	if results[0].Name != "BenchmarkDecide/no-tracer" {
		t.Fatalf("first result %q", results[0].Name)
	}
	if results[1].Name != "BenchmarkDecide/no-tracer-nocost" {
		t.Fatalf("second result %q", results[1].Name)
	}
	nocost := results[1]
	if nocost.Iterations != 10000 || nocost.NsPerOp != 2648 || nocost.BytesPerOp != 29 || nocost.AllocsPerOp != 0 {
		t.Fatalf("nocost parsed as %+v", nocost)
	}
	fig := results[2]
	if fig.Name != "BenchmarkFigure6_Megh" {
		t.Fatalf("third result %q", fig.Name)
	}
	if got := fig.Extra["largest_grid_decide_ms"]; got != 0.009982 {
		t.Fatalf("custom metric = %v", got)
	}
}

func TestAssertZeroAlloc(t *testing.T) {
	results, _, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := assertZeroAlloc(results, []string{"BenchmarkDecide/no-tracer-nocost"}); err != nil {
		t.Fatalf("gate failed on zero-alloc benchmark: %v", err)
	}
	if err := assertZeroAlloc(results, []string{"BenchmarkDecide/no-tracer"}); err == nil {
		t.Fatal("gate passed on allocating benchmark")
	}
	if err := assertZeroAlloc(results, []string{"BenchmarkMissing"}); err == nil {
		t.Fatal("gate passed on missing benchmark")
	}
}

func TestRunWritesJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out, "abc1234", "-", "", ""); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"commit": "abc1234"`, `"ns_op": 50041`, `"allocs_op": 0`, `"largest_grid_decide_ms": 0.009982`} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\n"), &out, "", "-", "", ""); err == nil {
		t.Fatal("empty benchmark input accepted")
	}
}
