// Command meghsim runs one policy on one simulated data center and prints
// the run's summary (and optionally the per-step series as CSV).
//
// Usage:
//
//	meghsim -dataset planetlab -policy Megh -hosts 100 -vms 132 \
//	        -steps 288 -seed 1 [-csv] [-trace run.jsonl] [-metrics] [-check]
//
// Observability: -trace FILE writes one structured JSONL event per step
// (and per Megh decision) for offline analysis with meghtrace; two runs
// with the same seed produce byte-identical trace files unless
// -trace-timings adds wall-clock spans. -metrics dumps an end-of-run
// Prometheus snapshot to stdout and -metrics-out FILE writes it to a file.
// -check validates the conservation invariants of internal/invariant after
// every step and aborts the run on the first violation.
//
// Scenarios: -scenario NAME swaps the dataset generators for a registered
// scenario regime (VM churn, phase scripts, spot reclamation, RAM
// pressure; see -scenario-list). -scenario all runs every registered
// scenario, and -policy all crosses them with the default matrix policy
// set. The scenario path honors -check; the per-run observability flags
// (-trace, -metrics, -fail, -fattree, -csv) apply to dataset runs only.
//
// Registered policies: THR-MMT, IQR-MMT, MAD-MMT, LR-MMT, LRR-MMT, Megh,
// MadVM, Q-learning.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"megh/internal/experiments"
	"megh/internal/invariant"
	"megh/internal/obs"
	"megh/internal/scenario"
	"megh/internal/sim"
	"megh/internal/topology"
	"megh/internal/trace"
)

// parseFailures parses "host:from:until[,host:from:until…]".
func parseFailures(spec string) ([]sim.Failure, error) {
	if spec == "" {
		return nil, nil
	}
	var out []sim.Failure
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad -fail entry %q (want host:from:until)", part)
		}
		vals := make([]int, 3)
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad -fail entry %q: %w", part, err)
			}
			vals[i] = v
		}
		out = append(out, sim.Failure{Host: vals[0], From: vals[1], Until: vals[2]})
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "meghsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset    = flag.String("dataset", "planetlab", "workload: planetlab or google")
		policy     = flag.String("policy", "Megh", "policy name (see -list)")
		hosts      = flag.Int("hosts", 100, "number of physical machines (M)")
		vms        = flag.Int("vms", 132, "number of virtual machines (N)")
		steps      = flag.Int("steps", 288, "horizon in 5-minute steps (288 = 1 day)")
		seed       = flag.Int64("seed", 1, "seed for traces, specs, placement and policy exploration")
		csv        = flag.Bool("csv", false, "emit the per-step series as CSV instead of a summary")
		list       = flag.Bool("list", false, "list registered policies and exit")
		fatTree    = flag.Bool("fattree", false, "scale migration times with a fat-tree topology")
		failAt     = flag.String("fail", "", "inject outages, e.g. \"0:96:192,7:100:150\" (host:from:until)")
		metrics    = flag.Bool("metrics", false, "dump an end-of-run Prometheus metrics snapshot to stdout")
		metricsOut = flag.String("metrics-out", "",
			"write the end-of-run Prometheus metrics snapshot to this file")
		traceOut = flag.String("trace", "",
			"write one structured JSONL trace event per step to this file (analyse with meghtrace)")
		traceTimings = flag.Bool("trace-timings", false,
			"record wall-clock span timings in trace events (makes traces nondeterministic)")
		check = flag.Bool("check", false,
			"validate conservation invariants every step; the run aborts on the first violation")
		scenarioName = flag.String("scenario", "",
			"run a registered scenario regime instead of a dataset (\"all\" = every scenario)")
		scenarioList = flag.Bool("scenario-list", false, "list registered scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.PolicyNames() {
			fmt.Println(name)
		}
		return nil
	}
	if *scenarioList {
		for _, name := range scenario.Names() {
			cfg, _ := scenario.Get(name)
			fmt.Printf("%-14s %s\n", name, cfg.Description)
		}
		return nil
	}
	if *scenarioName != "" {
		return runScenario(*scenarioName, *policy, *hosts, *vms, *steps, *seed, *check,
			*csv || *fatTree || *failAt != "" || *metrics || *metricsOut != "" || *traceOut != "")
	}
	setup := experiments.Setup{
		Dataset: experiments.Dataset(*dataset),
		Hosts:   *hosts, VMs: *vms, Steps: *steps, Seed: *seed,
	}
	failures, err := parseFailures(*failAt)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metrics || *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer, err = trace.New(trace.Options{Path: *traceOut, Timings: *traceTimings})
		if err != nil {
			return fmt.Errorf("opening trace sink: %w", err)
		}
		defer func() {
			if tracer != nil {
				_ = tracer.Close()
			}
		}()
	}
	var mutate func(*sim.Config)
	if *fatTree || len(failures) > 0 || reg != nil || tracer != nil || *check {
		var model sim.MigrationTimeModel
		if *fatTree {
			m, err := topology.NewMigrationModel(*hosts, 0.5)
			if err != nil {
				return err
			}
			model = m
		}
		mutate = func(c *sim.Config) {
			if model != nil {
				c.Migration = model
			}
			c.Failures = failures
			c.Metrics = reg
			c.Tracer = tracer
			if *check {
				c.Checker = invariant.NewSimChecker()
			}
		}
	}
	var res *sim.Result
	if mutate == nil {
		// The default path also gives Q-learning its offline training.
		res, err = experiments.RunPolicy(setup, *policy)
	} else {
		var p sim.Policy
		p, err = experiments.NewPolicy(*policy, setup.VMs, setup.Hosts, setup.PolicySeed())
		if err != nil {
			return err
		}
		if reg != nil {
			if m, ok := p.(interface{ Instrument(*obs.Registry) }); ok {
				m.Instrument(reg)
			}
		}
		if tracer != nil {
			if tr, ok := p.(interface{ Trace(*trace.Tracer) }); ok {
				tr.Trace(tracer)
			}
		}
		res, err = experiments.RunCustom(setup, p, mutate)
	}
	if err != nil {
		return err
	}
	if tracer != nil {
		// Close (flushing) before reporting, so a crash in reporting still
		// leaves a complete trace file on disk.
		cerr := tracer.Close()
		tracer = nil
		if cerr != nil {
			return fmt.Errorf("closing trace sink: %w", cerr)
		}
	}
	if *metricsOut != "" {
		if err := dumpMetricsFile(reg, *metricsOut); err != nil {
			return err
		}
	}
	if *metrics {
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if *csv {
		return experiments.WriteSeriesCSV(os.Stdout,
			experiments.SeriesSet{res.Policy: res}, []string{res.Policy})
	}
	row := experiments.RowFromResult(res)
	return experiments.WriteTable(os.Stdout,
		fmt.Sprintf("%s on %s (%d hosts, %d VMs, %d steps, seed %d)",
			*policy, *dataset, *hosts, *vms, *steps, *seed),
		[]experiments.TableRow{row})
}

// runScenario handles the -scenario path: one registered scenario (or all
// of them) crossed with one policy (or, with -policy all, the default
// matrix set), printed as a scenario-matrix table.
func runScenario(scenarioName, policy string, hosts, vms, steps int, seed int64,
	check, unsupportedFlags bool) error {
	if unsupportedFlags {
		return fmt.Errorf("-scenario does not combine with -csv/-fattree/-fail/-metrics/-trace; " +
			"use cmd/tables -scenarios for CSV output")
	}
	if check {
		experiments.SetCheckerFactory(func() sim.Checker { return invariant.NewSimChecker() })
		defer experiments.SetCheckerFactory(nil)
	}
	setup := experiments.ScenarioSetup{Hosts: hosts, VMs: vms, Steps: steps, Seed: seed}
	var scenarios, policies []string
	if scenarioName != "all" {
		scenarios = []string{scenarioName}
	}
	if policy != "all" {
		policies = []string{policy}
	}
	rows, err := experiments.RunScenarioMatrix(setup, scenarios, policies)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Scenario matrix (%d hosts, %d VMs, %d steps, seed %d%s)",
		hosts, vms, steps, seed, map[bool]string{true: ", checked", false: ""}[check])
	return experiments.WriteScenarioTable(os.Stdout, title, rows)
}

// dumpMetricsFile writes the registry snapshot to a file.
func dumpMetricsFile(reg *obs.Registry, dest string) error {
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	werr := reg.WritePrometheus(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
