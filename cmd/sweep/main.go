// Command sweep runs the ablation studies DESIGN.md §4 calls out: the
// migration-cap and exploration-rate sweeps for Megh, the SLA accounting
// comparison, the victim-selection comparison for the MMT family, the
// fat-tree topology comparison, and a failure-injection recovery study.
//
// Usage:
//
//	sweep -study cap
//	sweep -study accounting -hosts 200 -vms 263
//	sweep -study topology
//	sweep -study failure
package main

import (
	"flag"
	"fmt"
	"os"

	"megh/internal/experiments"
	"megh/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		study = flag.String("study", "cap",
			"one of: cap, exploration, accounting, selection, topology, failure, learners")
		dataset = flag.String("dataset", "planetlab", "workload: planetlab or google")
		hosts   = flag.Int("hosts", 100, "number of physical machines")
		vms     = flag.Int("vms", 132, "number of virtual machines")
		steps   = flag.Int("steps", 288, "horizon in 5-minute steps")
		seed    = flag.Int64("seed", 1, "experiment seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	setup := experiments.Setup{
		Dataset: experiments.Dataset(*dataset),
		Hosts:   *hosts, VMs: *vms, Steps: *steps, Seed: *seed,
	}

	var (
		rows  []experiments.TableRow
		title string
		err   error
	)
	switch *study {
	case "cap":
		title = "Ablation: Megh per-step migration cap (paper default 2%)"
		rows, err = experiments.MigrationCapSweep(setup,
			[]float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.25})
	case "exploration":
		title = "Ablation: Megh exploratory-candidate rate"
		rows, err = experiments.ExplorationSweep(setup,
			[]float64{0, 0.05, 0.1, 0.25, 0.5, 1})
	case "accounting":
		title = "Ablation: SLA accounting — per-interval vs the literal cumulative Eq. 3"
		rows, err = experiments.AccountingComparison(setup, nil)
	case "selection":
		title = "Ablation: THR detector with each victim-selection policy"
		rows, err = experiments.SelectionComparison(setup)
	case "topology":
		title = "Extension: flat network vs fat-tree migration times (§7)"
		rows, err = experiments.TopologyComparison(setup, nil, 0.5)
	case "learners":
		title = "Comparison: the three RL approaches of §2.2 (Q-learning is trained offline first)"
		rows, err = experiments.LearnerComparison(setup)
	case "failure":
		title = "Extension: recovery from injected host failures"
		// Fail 5% of hosts for the middle third of the run.
		var failures []sim.Failure
		for h := 0; h < *hosts; h += 20 {
			failures = append(failures, sim.Failure{
				Host: h, From: *steps / 3, Until: 2 * *steps / 3,
			})
		}
		rows, err = experiments.FailureRecovery(setup, nil, failures)
	default:
		return fmt.Errorf("unknown study %q", *study)
	}
	if err != nil {
		return err
	}
	if *csv {
		return experiments.WriteTableCSV(os.Stdout, rows)
	}
	return experiments.WriteTable(os.Stdout, title, rows)
}
