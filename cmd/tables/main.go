// Command tables regenerates the paper's Tables 2 and 3: the six-policy
// comparison (THR/IQR/MAD/LR/LRR-MMT vs Megh) on the PlanetLab-like and
// Google-Cluster-like workloads.
//
// Usage:
//
//	tables -table 2             # full-scale Table 2 (800×1052×2016; slow)
//	tables -table 3 -scale 8    # ⅛-scale Table 3 (fast)
//	tables -table 2 -csv > table2.csv
//	tables -scenarios           # scenario matrix: every registered scenario
//	                            # × {Megh, THR-MMT, MadVM} at 20×40×300
//	tables -scenarios -csv -hosts 40 -vms 80 > scenarios.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"megh/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table     = flag.Int("table", 2, "paper table to regenerate: 2 (PlanetLab) or 3 (Google)")
		scale     = flag.Int("scale", 1, "divide the paper's sizes by this factor")
		seed      = flag.Int64("seed", 1, "experiment seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		policies  = flag.String("policies", "", "comma-separated policy list (default: the table's six)")
		parallel  = flag.Int("parallel", 0, "run policies concurrently with this many workers (0 = #CPUs, -1 = sequential)")
		scenarios = flag.Bool("scenarios", false,
			"emit the scenario matrix (every registered scenario × the matrix policies) instead of a paper table")
		hosts = flag.Int("hosts", 20, "scenario-matrix fleet size (with -scenarios)")
		vms   = flag.Int("vms", 40, "scenario-matrix VM slot count (with -scenarios)")
		steps = flag.Int("steps", 300, "scenario-matrix horizon in 5-minute steps (with -scenarios)")
	)
	flag.Parse()

	if *scenarios {
		var names []string
		if *policies != "" {
			names = strings.Split(*policies, ",")
		}
		setup := experiments.ScenarioSetup{Hosts: *hosts, VMs: *vms, Steps: *steps, Seed: *seed}
		rows, err := experiments.RunScenarioMatrix(setup, nil, names)
		if err != nil {
			return err
		}
		if *csv {
			return experiments.WriteScenarioCSV(os.Stdout, rows)
		}
		title := fmt.Sprintf("Scenario matrix (%d hosts, %d VMs, %d steps, seed %d)",
			*hosts, *vms, *steps, *seed)
		return experiments.WriteScenarioTable(os.Stdout, title, rows)
	}

	var setup experiments.Setup
	var title string
	switch *table {
	case 2:
		setup = experiments.PaperPlanetLab(*seed)
		title = "Table 2: Performance Evaluation for PlanetLab"
	case 3:
		setup = experiments.PaperGoogle(*seed)
		title = "Table 3: Performance Evaluation for Google Cluster"
	default:
		return fmt.Errorf("unknown table %d (want 2 or 3)", *table)
	}
	if *scale > 1 {
		setup = setup.Scaled(*scale)
		title += fmt.Sprintf(" (1/%d scale: %d hosts, %d VMs, %d steps)",
			*scale, setup.Hosts, setup.VMs, setup.Steps)
	}
	var names []string
	if *policies != "" {
		names = strings.Split(*policies, ",")
	}
	var rows []experiments.TableRow
	var err error
	if *parallel < 0 {
		rows, err = experiments.RunTable(setup, names)
	} else {
		rows, err = experiments.RunTableParallel(setup, names, *parallel)
	}
	if err != nil {
		return err
	}
	if *csv {
		return experiments.WriteTableCSV(os.Stdout, rows)
	}
	return experiments.WriteTable(os.Stdout, title, rows)
}
