package megh_test

import (
	"fmt"
	"log"

	"megh"
)

// Example demonstrates the quick-start flow: build a small data center,
// run the Megh learner, inspect the outcome. Deterministic given the
// seeds, so the output is stable.
func Example() {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 10, VMs: 13, Steps: 36, Seed: 1}
	cfg, err := setup.Build()
	if err != nil {
		log.Fatal(err)
	}
	sim, err := megh.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	learner, err := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
	if err != nil {
		log.Fatal(err)
	}
	result, err := sim.Run(learner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps simulated: %d\n", len(result.Steps))
	fmt.Printf("cost is positive: %v\n", result.TotalCost() > 0)
	// Output:
	// steps simulated: 36
	// cost is positive: true
}

// ExampleNewTHRMMT shows how the baseline policies plug into the same
// simulator as the learner.
func ExampleNewTHRMMT() {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 10, VMs: 13, Steps: 24, Seed: 2}
	cfg, err := setup.Build()
	if err != nil {
		log.Fatal(err)
	}
	sim, err := megh.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := megh.NewTHRMMT()
	if err != nil {
		log.Fatal(err)
	}
	result, err := sim.Run(policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result.Policy)
	// Output:
	// THR-MMT
}

// ExampleHPProLiantG4 pins the paper's Table-1 power model.
func ExampleHPProLiantG4() {
	model := megh.HPProLiantG4()
	fmt.Printf("idle: %.0f W, full load: %.0f W\n", model.Power(0), model.Power(1))
	// Output:
	// idle: 86 W, full load: 117 W
}

// ExampleGeneratePlanetLabTraces shows the synthetic workload generator.
func ExampleGeneratePlanetLabTraces() {
	cfg := megh.DefaultPlanetLabTraceConfig(7)
	cfg.Steps = 288 // one day
	traces, err := megh.GeneratePlanetLabTraces(cfg, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d traces of %d samples\n", len(traces), traces[0].Len())
	// Output:
	// 3 traces of 288 samples
}

// ExampleNewFatTree shows the §7 topology extension.
func ExampleNewFatTree() {
	tree, err := megh.NewFatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=4 fat-tree hosts: %d\n", tree.Hosts())
	fmt.Printf("hops 0→1 (same edge): %d\n", tree.Hops(0, 1))
	fmt.Printf("hops 0→15 (cross pod): %d\n", tree.Hops(0, 15))
	// Output:
	// k=4 fat-tree hosts: 16
	// hops 0→1 (same edge): 2
	// hops 0→15 (cross pod): 6
}
