package megh_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"megh"
)

// Example demonstrates the quick-start flow: build a small data center,
// run the Megh learner, inspect the outcome. Deterministic given the
// seeds, so the output is stable.
func Example() {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 10, VMs: 13, Steps: 36, Seed: 1}
	cfg, err := setup.Build()
	if err != nil {
		log.Fatal(err)
	}
	sim, err := megh.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	learner, err := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
	if err != nil {
		log.Fatal(err)
	}
	result, err := sim.Run(learner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps simulated: %d\n", len(result.Steps))
	fmt.Printf("cost is positive: %v\n", result.TotalCost() > 0)
	// Output:
	// steps simulated: 36
	// cost is positive: true
}

// ExampleNewTHRMMT shows how the baseline policies plug into the same
// simulator as the learner.
func ExampleNewTHRMMT() {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 10, VMs: 13, Steps: 24, Seed: 2}
	cfg, err := setup.Build()
	if err != nil {
		log.Fatal(err)
	}
	sim, err := megh.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := megh.NewTHRMMT()
	if err != nil {
		log.Fatal(err)
	}
	result, err := sim.Run(policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result.Policy)
	// Output:
	// THR-MMT
}

// ExampleHPProLiantG4 pins the paper's Table-1 power model.
func ExampleHPProLiantG4() {
	model := megh.HPProLiantG4()
	fmt.Printf("idle: %.0f W, full load: %.0f W\n", model.Power(0), model.Power(1))
	// Output:
	// idle: 86 W, full load: 117 W
}

// ExampleGeneratePlanetLabTraces shows the synthetic workload generator.
func ExampleGeneratePlanetLabTraces() {
	cfg := megh.DefaultPlanetLabTraceConfig(7)
	cfg.Steps = 288 // one day
	traces, err := megh.GeneratePlanetLabTraces(cfg, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d traces of %d samples\n", len(traces), traces[0].Len())
	// Output:
	// 3 traces of 288 samples
}

// ExampleNewSimChecker runs a simulation with the conservation-law
// checker attached. The checker is a pure observer — results are
// byte-identical to an unchecked run — and any violated invariant would
// have aborted the run with an error.
func ExampleNewSimChecker() {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 10, VMs: 13, Steps: 24, Seed: 3}
	cfg, err := setup.Build()
	if err != nil {
		log.Fatal(err)
	}
	checker := megh.NewSimChecker()
	cfg.Checker = checker
	sim, err := megh.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	learner, err := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(learner); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps audited: %d\n", checker.Steps)
	// Output:
	// steps audited: 24
}

// ExampleServiceClient_Session walks the /v2 session API end to end:
// host the service in-process, create a named session, post a snapshot,
// and list what the service now manages. The reserved "default" session
// (serving the /v1 shim) always exists alongside the created one.
func ExampleServiceClient_Session() {
	svc, err := megh.NewService(megh.ServiceConfig{NumVMs: 4, NumHosts: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx := context.Background()
	sess := megh.NewServiceClient(ts.URL, nil).Session("dc-east")
	info, err := sess.Create(ctx, megh.SessionSpec{NumVMs: 2, NumHosts: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s (live=%t)\n", info.ID, info.Live)

	resp, err := sess.Decide(ctx, megh.StateRequest{
		Step: 0,
		Hosts: []megh.HostState{
			{MIPS: 4000, RAMMB: 8192}, {MIPS: 4000, RAMMB: 8192},
		},
		VMs: []megh.VMState{
			{Host: 0, Utilization: 0.9, MIPS: 2500, RAMMB: 512},
			{Host: 0, Utilization: 0.8, MIPS: 2500, RAMMB: 512},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step %d migrations: %d\n", resp.Step, len(resp.Migrations))

	list, err := megh.NewServiceClient(ts.URL, nil).ListSessions(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range list.Sessions {
		fmt.Printf("session %s decisions=%d\n", s.ID, s.Decisions)
	}
	// Output:
	// created dc-east (live=true)
	// step 0 migrations: 0
	// session dc-east decisions=1
	// session default decisions=0
}

// ExampleNewFatTree shows the §7 topology extension.
func ExampleNewFatTree() {
	tree, err := megh.NewFatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=4 fat-tree hosts: %d\n", tree.Hosts())
	fmt.Printf("hops 0→1 (same edge): %d\n", tree.Hops(0, 1))
	fmt.Printf("hops 0→15 (cross pod): %d\n", tree.Hops(0, 15))
	// Output:
	// k=4 fat-tree hosts: 16
	// hops 0→1 (same edge): 2
	// hops 0→15 (cross pod): 6
}
