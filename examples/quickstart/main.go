// Quickstart: build a small simulated data center, run the Megh learner on
// a PlanetLab-like workload, and print what it did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"megh"
)

func main() {
	// A 1-day experiment on 50 hosts / 66 VMs with the PlanetLab-like
	// bursty workload. The Setup helper wires traces, host fleet, VM
	// specs, cost model and initial placement together.
	setup := megh.Setup{
		Dataset: megh.PlanetLab,
		Hosts:   50,
		VMs:     66,
		Steps:   288, // 288 five-minute steps = 24 h
		Seed:    1,
	}
	cfg, err := setup.Build()
	if err != nil {
		log.Fatal(err)
	}
	sim, err := megh.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The Megh learner with the paper's hyper-parameters (γ = 0.5,
	// Temp₀ = 3, ε = 0.01, 2 % migration cap).
	learner, err := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
	if err != nil {
		log.Fatal(err)
	}

	result, err := sim.Run(learner)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy:           %s\n", result.Policy)
	fmt.Printf("total cost:       %.2f USD (energy %.2f + SLA %.2f)\n",
		result.TotalCost(), result.TotalEnergyCost(), result.TotalSLACost())
	fmt.Printf("migrations:       %d over %d steps\n",
		result.TotalMigrations(), len(result.Steps))
	fmt.Printf("mean active PMs:  %.1f of %d\n", result.MeanActiveHosts(), setup.Hosts)
	fmt.Printf("decision latency: %.3f ms per step\n", result.MeanDecideSeconds()*1000)
	fmt.Printf("Q-table size:     %d non-zero entries\n", learner.QTableNNZ())
	fmt.Printf("final temperature: %.3f (decayed from 3 by exp(-0.01) per step)\n",
		learner.Temperature())
}
