// Google Cluster scenario: the Table-3 / Figure-5 experiment at laptop
// scale. Demonstrates (a) the task-stream workload whose durations spread
// over 10¹–10⁶ s, (b) Megh against THR-MMT and MadVM on it, and (c) the
// paper's counter-intuitive observation that on low, short-lived workloads
// the cheapest policy is NOT the one with the fewest active hosts (§6.3).
//
//	go run ./examples/googlecluster
package main

import (
	"fmt"
	"log"
	"math"

	"megh"
)

func main() {
	// First, show the workload itself: the duration spread of Fig. 1b.
	_, tasks, err := megh.GenerateGoogleTraces(megh.DefaultGoogleTraceConfig(7), 200)
	if err != nil {
		log.Fatal(err)
	}
	minD, maxD := math.Inf(1), math.Inf(-1)
	for _, task := range tasks {
		minD = math.Min(minD, task.DurationSec)
		maxD = math.Max(maxD, task.DurationSec)
	}
	fmt.Printf("Google-like task stream: %d tasks, durations %.0f s … %.0f s (%.1f decades)\n\n",
		len(tasks), minD, maxD, math.Log10(maxD/minD))

	// Then the policy comparison on the 100×150 subset the paper uses
	// for its MadVM experiments (Figure 5), at a 1-day horizon.
	setup := megh.PaperMadVMSubset(megh.Google, 7)
	setup.Steps = 288

	fmt.Printf("Policies on %d hosts / %d VMs / %d steps:\n", setup.Hosts, setup.VMs, setup.Steps)
	type line struct {
		cost   float64
		active float64
	}
	results := make(map[string]line, 3)
	for _, name := range []string{"THR-MMT", "MadVM", "Megh"} {
		res, err := megh.RunPolicy(setup, name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  %-8s cost=%7.2f USD  migrations=%5d  active hosts=%5.1f  decide=%7.3f ms\n",
			name, res.TotalCost(), res.TotalMigrations(),
			res.MeanActiveHosts(), res.MeanDecideSeconds()*1000)
		results[name] = line{res.TotalCost(), res.MeanActiveHosts()}
	}

	// §6.3's observation: fewest active hosts ≠ lowest cost on this
	// workload.
	cheapest, fewestHosts := "", ""
	for name, l := range results {
		if cheapest == "" || l.cost < results[cheapest].cost {
			cheapest = name
		}
		if fewestHosts == "" || l.active < results[fewestHosts].active {
			fewestHosts = name
		}
	}
	fmt.Printf("\ncheapest policy: %s; fewest active hosts: %s", cheapest, fewestHosts)
	if cheapest != fewestHosts {
		fmt.Printf("  ← the paper's §6.3 dilemma: consolidation is not free\n")
	} else {
		fmt.Println()
	}
}
