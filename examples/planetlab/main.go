// PlanetLab consolidation shoot-out: the Table-2 experiment at laptop
// scale. Runs all five MMT heuristics and Megh on the same bursty
// PlanetLab-like data center and prints the comparison, highlighting the
// paper's headline claims (lowest cost, orders-of-magnitude fewer
// migrations, smallest decision latency for Megh).
//
//	go run ./examples/planetlab [-hosts 100] [-vms 132] [-days 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"megh"
)

func main() {
	hosts := flag.Int("hosts", 100, "number of physical machines")
	vms := flag.Int("vms", 132, "number of virtual machines")
	days := flag.Int("days", 1, "experiment length in days")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	setup := megh.Setup{
		Dataset: megh.PlanetLab,
		Hosts:   *hosts,
		VMs:     *vms,
		Steps:   *days * 288,
		Seed:    *seed,
	}
	policies := []string{"THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT", "Megh"}

	fmt.Printf("PlanetLab-like workload: %d hosts, %d VMs, %d days (seed %d)\n\n",
		*hosts, *vms, *days, *seed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Policy\tTotal cost (USD)\t#Migrations\tMean active hosts\tExec time (ms)")

	var meghCost, thrCost float64
	var meghMigs, thrMigs int
	for _, name := range policies {
		res, err := megh.RunPolicy(setup, name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%.1f\t%.3f\n",
			name, res.TotalCost(), res.TotalMigrations(),
			res.MeanActiveHosts(), res.MeanDecideSeconds()*1000)
		switch name {
		case "Megh":
			meghCost, meghMigs = res.TotalCost(), res.TotalMigrations()
		case "THR-MMT":
			thrCost, thrMigs = res.TotalCost(), res.TotalMigrations()
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nMegh vs THR-MMT: %+.1f%% cost, %.1fx fewer migrations\n",
		(meghCost-thrCost)/thrCost*100, float64(thrMigs)/float64(max(meghMigs, 1)))
	fmt.Println("(paper Table 2 at full scale: −14.3% cost, ~141x fewer migrations)")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
