// Service loop-back demo: run meghd (the Megh scheduling service) in this
// process, then drive it over real HTTP from the simulator, exactly as a
// data-center monitoring pipeline would — snapshots in, migration
// decisions out, cost feedback closing the learning loop, and a Q-table
// checkpoint at the end.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"megh"
	"megh/internal/server"
)

func main() {
	const (
		nHosts = 40
		nVMs   = 52
		steps  = 288
	)

	// 1. Start the scheduling service on a loopback port.
	ckpt := filepath.Join(os.TempDir(), "megh-service-demo.ckpt")
	defer os.Remove(ckpt)
	svc, err := server.New(server.Config{
		NumVMs: nVMs, NumHosts: nHosts,
		CheckpointPath: ckpt, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() {
		if serveErr := httpSrv.Serve(ln); serveErr != http.ErrServerClosed {
			log.Println("server:", serveErr)
		}
	}()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("meghd serving %d VMs × %d hosts at %s\n\n", nVMs, nHosts, base)

	// 2. Build the simulated data center and drive the service over HTTP.
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: nHosts, VMs: nVMs, Steps: steps, Seed: 7}
	cfg, err := setup.Build()
	if err != nil {
		log.Fatal(err)
	}
	simulator, err := megh.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	client := server.NewClient(base, nil)
	if err := client.Health(); err != nil {
		log.Fatal(err)
	}
	policy := server.NewRemotePolicy(client)
	result, err := simulator.Run(policy)
	if err != nil {
		log.Fatal(err)
	}
	if err := policy.Err(); err != nil {
		log.Fatal("transport failure mid-run: ", err)
	}

	fmt.Printf("one simulated day through the HTTP loop:\n")
	fmt.Printf("  total cost:  %.2f USD\n", result.TotalCost())
	fmt.Printf("  migrations:  %d\n", result.TotalMigrations())
	fmt.Printf("  decide time: %.3f ms/step (including HTTP round-trip)\n\n",
		result.MeanDecideSeconds()*1000)

	// 3. Inspect and persist the learner via the API.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service stats: %d decisions, Q-table %d entries, temperature %.3f\n",
		stats.Decisions, stats.QTableNNZ, stats.Temperature)
	ck, err := client.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written: %s (%d bytes)\n\n", ck.Path, ck.Bytes)

	// 4. Multi-tenancy: the same service hosts further data centers as
	// named /v2 sessions, each an independent learner. (The /v1 calls
	// above went to the reserved "default" session.)
	const tHosts, tVMs, tSteps = 10, 13, 48
	ctx := context.Background()
	sess := client.Session("dc-west")
	if _, err := sess.Create(ctx, server.SessionSpec{
		NumVMs: tVMs, NumHosts: tHosts, Seed: 11,
	}); err != nil {
		log.Fatal(err)
	}
	tenantSetup := megh.Setup{Dataset: megh.PlanetLab, Hosts: tHosts, VMs: tVMs, Steps: tSteps, Seed: 13}
	tenantCfg, err := tenantSetup.Build()
	if err != nil {
		log.Fatal(err)
	}
	tenantSim, err := megh.NewSimulator(tenantCfg)
	if err != nil {
		log.Fatal(err)
	}
	tenantPolicy := server.NewRemoteSessionPolicy(sess)
	tenantResult, err := tenantSim.Run(tenantPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if err := tenantPolicy.Err(); err != nil {
		log.Fatal("transport failure mid-run: ", err)
	}
	fmt.Printf("tenant dc-west (%d VMs × %d hosts, %d steps): cost %.2f USD, %d migrations\n",
		tVMs, tHosts, tSteps, tenantResult.TotalCost(), tenantResult.TotalMigrations())

	list, err := client.ListSessions(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sessions on this service:")
	for _, s := range list.Sessions {
		fmt.Printf("  %-8s  %4d×%-4d  decisions=%d live=%t\n",
			s.ID, s.Spec.NumVMs, s.Spec.NumHosts, s.Decisions, s.Live)
	}
}
