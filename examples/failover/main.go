// Failover: operate Megh through injected host failures and a scheduler
// restart. Demonstrates two production-facing capabilities beyond the
// paper's evaluation: (a) failure injection — 10% of hosts go down
// mid-run and the policy must evacuate them; (b) learner persistence —
// the learner is checkpointed with SaveState, "the scheduler restarts",
// and the restored learner (LoadLearner) keeps operating with its learned
// Q-table intact.
//
//	go run ./examples/failover
package main

import (
	"bytes"
	"fmt"
	"log"

	"megh"
)

func main() {
	const (
		hosts = 60
		vms   = 80
		steps = 288 // one day
	)
	setup := megh.Setup{
		Dataset: megh.PlanetLab, Hosts: hosts, VMs: vms, Steps: steps, Seed: 9,
	}

	// 10% of hosts fail for the middle third of the day.
	var failures []megh.Failure
	for h := 0; h < hosts; h += 10 {
		failures = append(failures, megh.Failure{Host: h, From: steps / 3, Until: 2 * steps / 3})
	}

	fmt.Printf("world: %d hosts / %d VMs, %d hosts failing during steps %d–%d\n\n",
		hosts, vms, len(failures), steps/3, 2*steps/3)

	// Phase 1: run the first half-day, then checkpoint the learner.
	firstHalf := setup
	firstHalf.Steps = steps / 2
	learner, err := megh.New(megh.DefaultConfig(vms, hosts, 42))
	if err != nil {
		log.Fatal(err)
	}
	res1, err := megh.RunCustom(firstHalf, learner, func(c *megh.SimConfig) {
		c.Failures = failures
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 (steps 0–%d, failures begin at %d):\n", steps/2-1, steps/3)
	fmt.Printf("  cost %.2f USD, %d migrations, Q-table %d entries, temperature %.2f\n\n",
		res1.TotalCost(), res1.TotalMigrations(), learner.QTableNNZ(), learner.Temperature())

	var checkpoint bytes.Buffer
	if err := learner.SaveState(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes — simulating a scheduler restart…\n\n", checkpoint.Len())

	// Phase 2: restore into a "new process" and keep going on the same
	// world (failures still active until step 2·steps/3 of the original
	// timeline; here the fresh run replays the remaining failure window).
	restored, err := megh.LoadLearner(&checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored learner: Q-table %d entries, temperature %.2f (state intact)\n",
		restored.QTableNNZ(), restored.Temperature())

	secondHalf := setup
	secondHalf.Steps = steps / 2
	secondHalf.Seed = setup.Seed + 1 // fresh workload draw for the second shift
	res2, err := megh.RunCustom(secondHalf, restored, func(c *megh.SimConfig) {
		var late []megh.Failure
		for _, f := range failures {
			late = append(late, megh.Failure{Host: f.Host, From: 0, Until: steps / 6})
		}
		c.Failures = late
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2 (restored learner, failures until step %d):\n", steps/6)
	fmt.Printf("  cost %.2f USD, %d migrations, Q-table grew to %d entries\n\n",
		res2.TotalCost(), res2.TotalMigrations(), restored.QTableNNZ())

	// Compare against THR-MMT facing the same outages end to end.
	rows, err := megh.FailureRecovery(setup, []string{"THR-MMT", "Megh"}, failures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full-day comparison under the same failure schedule:")
	for _, r := range rows {
		fmt.Printf("  %-8s cost %.2f USD, %d migrations\n", r.Policy, r.TotalCost, r.Migrations)
	}
}
