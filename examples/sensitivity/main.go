// Sensitivity sweep: the Figure-8 experiment at laptop scale. Sweeps
// Megh's exploration hyper-parameters (Temp₀ with ε fixed, then ε with
// Temp₀ fixed) and renders per-step-cost boxplot strips in the terminal.
//
// The paper's own Figure 8 varies within < 0.5 % on the y-axis; expect a
// near-flat landscape here too (EXPERIMENTS.md discusses why).
//
//	go run ./examples/sensitivity [-reps 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"megh"
	"megh/internal/experiments"
	"megh/internal/report"
)

func main() {
	reps := flag.Int("reps", 5, "repetitions per parameter value (paper: 25)")
	flag.Parse()

	setup := megh.Setup{
		Dataset: megh.PlanetLab,
		Hosts:   50, VMs: 66, Steps: 144, Seed: 3,
	}

	temps := []float64{0.5, 1, 2, 3, 5, 8, 10}
	pts, err := experiments.RunSensitivityTemp(setup, temps, 0.001, *reps)
	if err != nil {
		log.Fatal(err)
	}
	render(fmt.Sprintf("Figure 8(a): per-step cost vs Temp0 (ε = 0.001, %d reps)", *reps), pts)

	fmt.Println()
	eps := []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1}
	pts, err = experiments.RunSensitivityEpsilon(setup, eps, 1, *reps)
	if err != nil {
		log.Fatal(err)
	}
	render(fmt.Sprintf("Figure 8(b): per-step cost vs ε (Temp0 = 1, %d reps)", *reps), pts)
}

func render(title string, pts []experiments.SensitivityPoint) {
	rows := make([]report.BoxplotRow, 0, len(pts))
	for _, p := range pts {
		b := p.Boxplot
		rows = append(rows, report.BoxplotRow{
			Label: fmt.Sprintf("%.4g", p.Param),
			P05:   b.P05, Q1: b.Q1, Median: b.Median, Q3: b.Q3, P95: b.P95,
		})
	}
	if err := report.BoxplotStrips(os.Stdout, title, rows, 56); err != nil {
		log.Fatal(err)
	}
}
