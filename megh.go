// Package megh is a from-scratch Go reproduction of
//
//	Basu, Wang, Hong, Chen, Bressan:
//	"Learn-as-you-go with Megh: Efficient Live Migration of Virtual
//	Machines", ICDCS 2017,
//
// comprising the Megh online reinforcement-learning migration scheduler
// (sparse-projected least-squares policy iteration with Sherman–Morrison
// incremental inverses and Boltzmann exploration), a CloudSim-equivalent
// power-aware data-center simulator, the MMT heuristic baselines
// (THR/IQR/MAD/LR/LRR), the MadVM and Q-learning learning baselines,
// PlanetLab-like and Google-Cluster-like workload generators, and an
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// # Quick start
//
//	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 100, VMs: 132,
//		Steps: 288, Seed: 1}
//	cfg, _ := setup.Build()
//	sim, _ := megh.NewSimulator(cfg)
//	learner, _ := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
//	result, _ := sim.Run(learner)
//	fmt.Printf("total cost: %.2f USD over %d migrations\n",
//		result.TotalCost(), result.TotalMigrations())
//
// The package is a facade: implementations live in internal/ packages
// (internal/core holds the learner, internal/sim the simulator, and so
// on); everything a downstream user needs is re-exported here.
package megh

import (
	"context"
	"net/http"

	"megh/internal/core"
	"megh/internal/invariant"
	"megh/internal/mdp"
	"megh/internal/server"
	"megh/internal/sim"
	"megh/internal/trace"
)

// Core simulator vocabulary, re-exported.
type (
	// Policy decides live migrations each simulation step.
	Policy = sim.Policy
	// Migration is one live-migration request (VM → destination host).
	Migration = sim.Migration
	// Snapshot is the read-only data-center view a Policy receives.
	Snapshot = sim.Snapshot
	// Result aggregates a simulation run's metrics.
	Result = sim.Result
	// StepMetrics holds one interval's measurements.
	StepMetrics = sim.StepMetrics
	// Feedback carries the realised per-stage cost to learning policies.
	Feedback = sim.Feedback
	// FeedbackReceiver marks policies that learn from realised costs.
	FeedbackReceiver = sim.FeedbackReceiver
	// HostSpec describes a physical machine.
	HostSpec = sim.HostSpec
	// VMSpec describes a virtual machine's requested resources.
	VMSpec = sim.VMSpec
	// SimConfig assembles a simulation run.
	SimConfig = sim.Config
	// Simulator executes a SimConfig against policies.
	Simulator = sim.Simulator
	// Placement selects the initial VM→host strategy.
	Placement = sim.Placement
)

// Initial placement strategies, re-exported.
const (
	PlacementRandom     = sim.PlacementRandom
	PlacementRoundRobin = sim.PlacementRoundRobin
	PlacementFirstFit   = sim.PlacementFirstFit
)

// NewSimulator validates a configuration and returns a Simulator. Each
// Run(policy) call replays the identical world, so policies can be
// compared on equal footing.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return sim.New(cfg) }

// Megh learner, re-exported from internal/core.
type (
	// Learner is the Megh reinforcement-learning policy (Algorithm 1–2).
	Learner = core.Megh
	// Config parameterises the Megh learner.
	Config = core.Config
	// Action is a (VM, destination host) pair in the learner's basis.
	Action = mdp.Action
)

// New constructs a Megh learner.
func New(cfg Config) (*Learner, error) { return core.New(cfg) }

// DefaultConfig returns the paper's §6.1 hyper-parameters (γ = 0.5,
// Temp₀ = 3, ε = 0.01, 2 % migration cap) for an N-VM, M-host data center.
func DefaultConfig(numVMs, numHosts int, seed int64) Config {
	return core.DefaultConfig(numVMs, numHosts, seed)
}

// Structured decision tracing, re-exported from internal/trace.
type (
	// Tracer records one JSONL event per simulator step and per learner
	// decision. Attach it to a SimConfig (Tracer field) and to a Learner
	// (Trace method); a nil Tracer disables tracing at zero cost.
	Tracer = trace.Tracer
	// TraceOptions configures a Tracer's sink, ring size, and whether
	// wall-clock timings are recorded (timings make traces nondeterministic
	// across runs, so they are opt-in).
	TraceOptions = trace.Options
	// TraceEvent is one decoded trace event.
	TraceEvent = trace.Event
)

// NewTracer builds a Tracer. The zero TraceOptions value keeps an
// in-memory ring of recent events without writing anywhere.
func NewTracer(o TraceOptions) (*Tracer, error) { return trace.New(o) }

// Runtime invariant checking, re-exported from internal/invariant.
type (
	// Checker validates simulator state after each step; attach one via
	// SimConfig.Checker. Any non-nil CheckStep return aborts the run.
	Checker = sim.Checker
	// StepCheck bundles what a Checker may inspect after one step.
	StepCheck = sim.StepCheck
	// SimChecker is the stock Checker: it audits the simulator's
	// conservation laws (placement bijection, occupancy sums, migration
	// accounting, cost decomposition) as a pure observer — a checked run
	// is byte-identical to an unchecked one.
	SimChecker = invariant.SimChecker
)

// NewSimChecker returns a fresh conservation-law checker for one Run.
func NewSimChecker() *SimChecker { return invariant.NewSimChecker() }

// HTTP service and client, re-exported from internal/server: the same
// scheduler as a deployable component (cmd/meghd) or embedded handler.
type (
	// Service hosts learners over HTTP: the versioned /v2 multi-session
	// API plus the deprecated /v1 shim bound to the "default" session.
	Service = server.Service
	// ServiceConfig parameterises a Service (dimensions, checkpointing,
	// session cap, admission limit).
	ServiceConfig = server.Config
	// ServiceClient is the typed HTTP client for a meghd endpoint. All
	// methods have context-accepting forms and retry transient failures
	// (5xx and 429) with exponential backoff.
	ServiceClient = server.Client
	// SessionClient is a ServiceClient view scoped to one named /v2
	// session; obtain one with ServiceClient.Session(id).
	SessionClient = server.SessionClient
	// SessionSpec declares a session's dimensions and hyper-parameters.
	SessionSpec = server.SessionSpec
	// SessionInfo reports one session's spec, residency, and counters.
	SessionInfo = server.SessionInfo
	// RemotePolicy adapts a ServiceClient (or SessionClient) into a
	// sim.Policy, so a simulation can drive a remote learner.
	RemotePolicy = server.RemotePolicy
	// StateRequest is one monitoring interval's snapshot on the wire.
	StateRequest = server.StateRequest
	// HostState and VMState are a StateRequest's constituents.
	HostState = server.HostState
	VMState   = server.VMState
	// DecideResponse carries the migration decisions for a snapshot.
	DecideResponse = server.DecideResponse
	// FeedbackRequest reports the realised cost of an interval.
	FeedbackRequest = server.FeedbackRequest
	// StatsResponse reports a learner's internals over the wire.
	StatsResponse = server.StatsResponse
	// ClusterConfig turns a Service into one node of a meghd cluster:
	// consistent-hash session routing, checkpoint replication, and
	// leader-driven rebalancing. Set it on ServiceConfig.Cluster.
	ClusterConfig = server.ClusterConfig
	// ClusterClient routes session traffic straight to each session's
	// ring owner, skipping the server-side proxy hop.
	ClusterClient = server.ClusterClient
)

// NewService builds an HTTP service hosting Megh learners.
func NewService(cfg ServiceConfig) (*Service, error) { return server.New(cfg) }

// NewServiceClient returns a client for a meghd base URL. A nil
// httpClient uses http.DefaultClient.
func NewServiceClient(baseURL string, httpClient *http.Client) *ServiceClient {
	return server.NewClient(baseURL, httpClient)
}

// NewClusterClient builds a client-side router for a meghd cluster from
// one or more seed URLs; see server.NewClusterClient.
func NewClusterClient(ctx context.Context, seedURLs []string, httpClient *http.Client) (*ClusterClient, error) {
	return server.NewClusterClient(ctx, seedURLs, httpClient)
}

// NewRemotePolicy adapts a v1 client into a simulator Policy.
func NewRemotePolicy(c *ServiceClient) *RemotePolicy { return server.NewRemotePolicy(c) }

// NewRemoteSessionPolicy adapts a session-scoped client into a Policy,
// so one simulator process can drive many named remote learners.
func NewRemoteSessionPolicy(sc *SessionClient) *RemotePolicy {
	return server.NewRemoteSessionPolicy(sc)
}
