// Package megh is a from-scratch Go reproduction of
//
//	Basu, Wang, Hong, Chen, Bressan:
//	"Learn-as-you-go with Megh: Efficient Live Migration of Virtual
//	Machines", ICDCS 2017,
//
// comprising the Megh online reinforcement-learning migration scheduler
// (sparse-projected least-squares policy iteration with Sherman–Morrison
// incremental inverses and Boltzmann exploration), a CloudSim-equivalent
// power-aware data-center simulator, the MMT heuristic baselines
// (THR/IQR/MAD/LR/LRR), the MadVM and Q-learning learning baselines,
// PlanetLab-like and Google-Cluster-like workload generators, and an
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// # Quick start
//
//	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 100, VMs: 132,
//		Steps: 288, Seed: 1}
//	cfg, _ := setup.Build()
//	sim, _ := megh.NewSimulator(cfg)
//	learner, _ := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
//	result, _ := sim.Run(learner)
//	fmt.Printf("total cost: %.2f USD over %d migrations\n",
//		result.TotalCost(), result.TotalMigrations())
//
// The package is a facade: implementations live in internal/ packages
// (internal/core holds the learner, internal/sim the simulator, and so
// on); everything a downstream user needs is re-exported here.
package megh

import (
	"megh/internal/core"
	"megh/internal/mdp"
	"megh/internal/sim"
	"megh/internal/trace"
)

// Core simulator vocabulary, re-exported.
type (
	// Policy decides live migrations each simulation step.
	Policy = sim.Policy
	// Migration is one live-migration request (VM → destination host).
	Migration = sim.Migration
	// Snapshot is the read-only data-center view a Policy receives.
	Snapshot = sim.Snapshot
	// Result aggregates a simulation run's metrics.
	Result = sim.Result
	// StepMetrics holds one interval's measurements.
	StepMetrics = sim.StepMetrics
	// Feedback carries the realised per-stage cost to learning policies.
	Feedback = sim.Feedback
	// FeedbackReceiver marks policies that learn from realised costs.
	FeedbackReceiver = sim.FeedbackReceiver
	// HostSpec describes a physical machine.
	HostSpec = sim.HostSpec
	// VMSpec describes a virtual machine's requested resources.
	VMSpec = sim.VMSpec
	// SimConfig assembles a simulation run.
	SimConfig = sim.Config
	// Simulator executes a SimConfig against policies.
	Simulator = sim.Simulator
	// Placement selects the initial VM→host strategy.
	Placement = sim.Placement
)

// Initial placement strategies, re-exported.
const (
	PlacementRandom     = sim.PlacementRandom
	PlacementRoundRobin = sim.PlacementRoundRobin
	PlacementFirstFit   = sim.PlacementFirstFit
)

// NewSimulator validates a configuration and returns a Simulator. Each
// Run(policy) call replays the identical world, so policies can be
// compared on equal footing.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return sim.New(cfg) }

// Megh learner, re-exported from internal/core.
type (
	// Learner is the Megh reinforcement-learning policy (Algorithm 1–2).
	Learner = core.Megh
	// Config parameterises the Megh learner.
	Config = core.Config
	// Action is a (VM, destination host) pair in the learner's basis.
	Action = mdp.Action
)

// New constructs a Megh learner.
func New(cfg Config) (*Learner, error) { return core.New(cfg) }

// DefaultConfig returns the paper's §6.1 hyper-parameters (γ = 0.5,
// Temp₀ = 3, ε = 0.01, 2 % migration cap) for an N-VM, M-host data center.
func DefaultConfig(numVMs, numHosts int, seed int64) Config {
	return core.DefaultConfig(numVMs, numHosts, seed)
}

// Structured decision tracing, re-exported from internal/trace.
type (
	// Tracer records one JSONL event per simulator step and per learner
	// decision. Attach it to a SimConfig (Tracer field) and to a Learner
	// (Trace method); a nil Tracer disables tracing at zero cost.
	Tracer = trace.Tracer
	// TraceOptions configures a Tracer's sink, ring size, and whether
	// wall-clock timings are recorded (timings make traces nondeterministic
	// across runs, so they are opt-in).
	TraceOptions = trace.Options
	// TraceEvent is one decoded trace event.
	TraceEvent = trace.Event
)

// NewTracer builds a Tracer. The zero TraceOptions value keeps an
// in-memory ring of recent events without writing anywhere.
func NewTracer(o TraceOptions) (*Tracer, error) { return trace.New(o) }
