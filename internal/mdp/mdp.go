// Package mdp holds the Markov-decision-process vocabulary of paper §4
// shared by the learning policies: the (VM, destination-PM) action encoding,
// its bijection onto the d = N·M-dimensional index space that spans Megh's
// sparse basis, and small helpers for discounted-cost bookkeeping.
package mdp

import "fmt"

// Action is a live-migration decision (paper §4): move VM to PM Host.
// When Host already hosts the VM, the action is a "stay" no-op — that is
// how the single (j,k) encoding answers the *when* question.
type Action struct {
	VM   int
	Host int
}

// Index maps the action to its basis index j·M + k, the coordinate of the
// sparse basis vector φ_jk of §5.
func (a Action) Index(numHosts int) int {
	if numHosts <= 0 {
		panic(fmt.Sprintf("mdp: non-positive host count %d", numHosts))
	}
	if a.VM < 0 || a.Host < 0 || a.Host >= numHosts {
		panic(fmt.Sprintf("mdp: action %+v invalid for %d hosts", a, numHosts))
	}
	return a.VM*numHosts + a.Host
}

// ActionFromIndex inverts Index.
func ActionFromIndex(idx, numHosts int) Action {
	if numHosts <= 0 {
		panic(fmt.Sprintf("mdp: non-positive host count %d", numHosts))
	}
	if idx < 0 {
		panic(fmt.Sprintf("mdp: negative action index %d", idx))
	}
	return Action{VM: idx / numHosts, Host: idx % numHosts}
}

// SpaceSize returns d = N·M, the dimension of the projected action space.
func SpaceSize(numVMs, numHosts int) int {
	if numVMs < 0 || numHosts < 0 {
		panic(fmt.Sprintf("mdp: negative space size %d×%d", numVMs, numHosts))
	}
	return numVMs * numHosts
}

// DiscountedSum accumulates Σ γ^(t-1)·c_t incrementally; it is the running
// cost-to-go realisation used by convergence diagnostics and tests.
type DiscountedSum struct {
	gamma float64
	pow   float64
	sum   float64
}

// NewDiscountedSum returns an accumulator for discount γ ∈ [0,1).
func NewDiscountedSum(gamma float64) (*DiscountedSum, error) {
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("mdp: discount %g out of [0,1)", gamma)
	}
	return &DiscountedSum{gamma: gamma, pow: 1}, nil
}

// Add folds in the next per-stage cost and returns the updated sum.
func (d *DiscountedSum) Add(cost float64) float64 {
	d.sum += d.pow * cost
	d.pow *= d.gamma
	return d.sum
}

// Sum returns the accumulated discounted sum.
func (d *DiscountedSum) Sum() float64 { return d.sum }
