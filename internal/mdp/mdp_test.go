package mdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActionIndexRoundTrip(t *testing.T) {
	const hosts = 7
	for vm := 0; vm < 5; vm++ {
		for h := 0; h < hosts; h++ {
			a := Action{VM: vm, Host: h}
			idx := a.Index(hosts)
			if got := ActionFromIndex(idx, hosts); got != a {
				t.Fatalf("round trip %+v → %d → %+v", a, idx, got)
			}
		}
	}
}

func TestActionIndexDense(t *testing.T) {
	// Indices must tile 0..N·M−1 without gaps.
	const vms, hosts = 4, 3
	seen := make(map[int]bool)
	for vm := 0; vm < vms; vm++ {
		for h := 0; h < hosts; h++ {
			seen[Action{VM: vm, Host: h}.Index(hosts)] = true
		}
	}
	if len(seen) != SpaceSize(vms, hosts) {
		t.Fatalf("indices cover %d cells, want %d", len(seen), SpaceSize(vms, hosts))
	}
	for i := 0; i < vms*hosts; i++ {
		if !seen[i] {
			t.Fatalf("index %d missing", i)
		}
	}
}

func TestActionIndexPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Action{VM: 0, Host: 0}.Index(0) },
		func() { Action{VM: -1, Host: 0}.Index(3) },
		func() { Action{VM: 0, Host: 3}.Index(3) },
		func() { ActionFromIndex(-1, 3) },
		func() { ActionFromIndex(0, 0) },
		func() { SpaceSize(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDiscountedSumGeometric(t *testing.T) {
	d, err := NewDiscountedSum(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Add(1)
	}
	if got := d.Sum(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Σ 0.5^t = %g, want 2", got)
	}
}

func TestDiscountedSumRejectsBadGamma(t *testing.T) {
	if _, err := NewDiscountedSum(1); err == nil {
		t.Fatal("γ = 1 must be rejected (infinite-horizon divergence)")
	}
	if _, err := NewDiscountedSum(-0.1); err == nil {
		t.Fatal("negative γ must be rejected")
	}
}

// Property: Index is injective over random valid actions.
func TestQuickActionIndexInjective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hosts := 1 + r.Intn(20)
		a := Action{VM: r.Intn(30), Host: r.Intn(hosts)}
		b := Action{VM: r.Intn(30), Host: r.Intn(hosts)}
		if a == b {
			return a.Index(hosts) == b.Index(hosts)
		}
		return a.Index(hosts) != b.Index(hosts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
