package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTable1ExactValues pins the embedded tables to the paper's Table 1.
func TestTable1ExactValues(t *testing.T) {
	g4 := HPProLiantG4()
	g5 := HPProLiantG5()
	wantG4 := []float64{86, 89.4, 92.6, 96, 99.5, 102, 106, 108, 112, 114, 117}
	wantG5 := []float64{93.7, 97, 101, 105, 110, 116, 121, 125, 129, 133, 135}
	for k := 0; k <= 10; k++ {
		u := float64(k) / 10
		if got := g4.Power(u); got != wantG4[k] {
			t.Errorf("G4 at %d%%: %g, want %g", k*10, got, wantG4[k])
		}
		if got := g5.Power(u); got != wantG5[k] {
			t.Errorf("G5 at %d%%: %g, want %g", k*10, got, wantG5[k])
		}
	}
}

func TestTableInterpolation(t *testing.T) {
	g4 := HPProLiantG4()
	// Midway between 0% (86W) and 10% (89.4W).
	if got, want := g4.Power(0.05), 87.7; math.Abs(got-want) > 1e-9 {
		t.Fatalf("G4 at 5%% = %g, want %g", got, want)
	}
}

func TestTableClamping(t *testing.T) {
	g5 := HPProLiantG5()
	if got := g5.Power(-0.2); got != 93.7 {
		t.Fatalf("negative utilization = %g, want idle 93.7", got)
	}
	if got := g5.Power(1.7); got != 135 {
		t.Fatalf("overload utilization = %g, want max 135", got)
	}
}

func TestTableIdleMax(t *testing.T) {
	g4 := HPProLiantG4()
	if g4.IdlePower() != 86 || g4.MaxPower() != 117 {
		t.Fatalf("G4 idle/max = %g/%g", g4.IdlePower(), g4.MaxPower())
	}
}

func TestNewTableRejectsNegative(t *testing.T) {
	var w [11]float64
	w[3] = -1
	if _, err := NewTable("bad", w); err == nil {
		t.Fatal("expected error for negative sample")
	}
}

func TestTableName(t *testing.T) {
	if HPProLiantG4().Name() != "HP ProLiant ML110 G4" {
		t.Fatal("unexpected G4 name")
	}
}

func TestLinearModel(t *testing.T) {
	l, err := NewLinear("lin", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if l.Power(0) != 100 || l.Power(1) != 200 || l.Power(0.5) != 150 {
		t.Fatalf("linear powers: %g %g %g", l.Power(0), l.Power(1), l.Power(0.5))
	}
	if l.Power(-1) != 100 || l.Power(2) != 200 {
		t.Fatal("linear model should clamp")
	}
	if l.Name() != "lin" {
		t.Fatal("name mismatch")
	}
}

func TestLinearRejectsInvalid(t *testing.T) {
	if _, err := NewLinear("bad", 200, 100); err == nil {
		t.Fatal("expected error for max < idle")
	}
	if _, err := NewLinear("bad", -1, 100); err == nil {
		t.Fatal("expected error for negative idle")
	}
}

func TestCubicModel(t *testing.T) {
	c, err := NewCubic("cub", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if c.Power(0) != 100 {
		t.Fatalf("cubic idle = %g", c.Power(0))
	}
	if got := c.Power(1); math.Abs(got-200) > 1e-9 {
		t.Fatalf("cubic max = %g", got)
	}
	// Concave: midpoint above the chord.
	if c.Power(0.5) <= 150 {
		t.Fatalf("cubic not concave: P(0.5) = %g", c.Power(0.5))
	}
	if _, err := NewCubic("bad", 5, 1); err == nil {
		t.Fatal("expected error for max < idle")
	}
}

// Property: all models are monotone non-decreasing in utilization and
// bounded by [idle, max].
func TestQuickModelsMonotone(t *testing.T) {
	lin, _ := NewLinear("lin", 90, 140)
	cub, _ := NewCubic("cub", 90, 140)
	models := []Model{HPProLiantG4(), HPProLiantG5(), lin, cub}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		for _, m := range models {
			p1, p2 := m.Power(u1), m.Power(u2)
			if p1 > p2+1e-9 {
				return false
			}
			if p1 < m.Power(0)-1e-9 || p2 > m.Power(1)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTablePower(b *testing.B) {
	g4 := HPProLiantG4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g4.Power(float64(i%100) / 100)
	}
}
