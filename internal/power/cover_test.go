package power

import "testing"

func TestCubicNameAndClamps(t *testing.T) {
	c, err := NewCubic("fan", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "fan" {
		t.Fatalf("Name() = %q", c.Name())
	}
	if got := c.Power(-0.5); got != 100 {
		t.Fatalf("P(-0.5) = %g, want idle draw", got)
	}
	if got, want := c.Power(2), c.Power(1); got != want {
		t.Fatalf("P(2) = %g, want clamp to P(1) = %g", got, want)
	}
}

// mustTable backs the embedded Table-1 models, so its panic-on-bad-input
// contract is part of the package API surface.
func TestMustTablePanicsOnBadTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mustTable accepted a negative-wattage table")
		}
	}()
	mustTable("bad", [11]float64{-1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
}
