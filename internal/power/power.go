// Package power models the electrical power drawn by physical machines as a
// function of CPU utilization, following the SPECpower_ssj2008-derived
// tables the paper uses (Table 1). Energy is integrated by the simulator
// from these instantaneous power values.
package power

import (
	"fmt"
	"math"
)

// Model yields instantaneous power (Watts) at a CPU utilization in [0,1].
// Implementations must clamp out-of-range utilizations into [0,1].
type Model interface {
	// Power returns the power draw in Watts at the given utilization.
	Power(utilization float64) float64
	// Name identifies the model (e.g. the server SKU) in reports.
	Name() string
}

// Table is a Model interpolating linearly between power samples taken at
// 0 %, 10 %, …, 100 % utilization — the exact structure of the
// SPECpower_ssj2008 results in the paper's Table 1.
type Table struct {
	name string
	// watts[k] is the draw at utilization k/10.
	watts [11]float64
}

var _ Model = (*Table)(nil)

// NewTable builds a table model from 11 samples (0 %..100 % in 10 % steps).
// It returns an error when the samples are negative.
func NewTable(name string, watts [11]float64) (*Table, error) {
	for i, w := range watts {
		if w < 0 {
			return nil, fmt.Errorf("power: negative sample %g at %d%%", w, i*10)
		}
	}
	return &Table{name: name, watts: watts}, nil
}

// Name implements Model.
func (t *Table) Name() string { return t.name }

// Power implements Model by linear interpolation between the two bracketing
// 10 %-grid samples.
func (t *Table) Power(u float64) float64 {
	if u <= 0 {
		return t.watts[0]
	}
	if u >= 1 {
		return t.watts[10]
	}
	pos := u * 10
	lo := int(pos)
	frac := pos - float64(lo)
	return t.watts[lo]*(1-frac) + t.watts[lo+1]*frac
}

// IdlePower returns the draw at 0 % utilization (the cost of keeping the
// host powered on but idle).
func (t *Table) IdlePower() float64 { return t.watts[0] }

// MaxPower returns the draw at 100 % utilization.
func (t *Table) MaxPower() float64 { return t.watts[10] }

// mustTable builds the embedded reference tables; the inputs are compile-time
// constants so failure is a programming error.
func mustTable(name string, watts [11]float64) *Table {
	t, err := NewTable(name, watts)
	if err != nil {
		panic(err)
	}
	return t
}

// HPProLiantG4 returns the SPECpower table for the HP ProLiant ML110 G4
// (paper Table 1, first row).
func HPProLiantG4() *Table {
	return mustTable("HP ProLiant ML110 G4",
		[11]float64{86, 89.4, 92.6, 96, 99.5, 102, 106, 108, 112, 114, 117})
}

// HPProLiantG5 returns the SPECpower table for the HP ProLiant ML110 G5
// (paper Table 1, second row).
func HPProLiantG5() *Table {
	return mustTable("HP ProLiant ML110 G5",
		[11]float64{93.7, 97, 101, 105, 110, 116, 121, 125, 129, 133, 135})
}

// Linear is the classic idle+proportional model
// P(u) = idle + (max − idle)·u, provided as an alternative Model for
// sensitivity studies on the power-model choice.
type Linear struct {
	name       string
	idle, max_ float64
}

var _ Model = (*Linear)(nil)

// NewLinear builds a linear model. It returns an error when max < idle or
// either is negative.
func NewLinear(name string, idle, max float64) (*Linear, error) {
	if idle < 0 || max < idle {
		return nil, fmt.Errorf("power: invalid linear model idle=%g max=%g", idle, max)
	}
	return &Linear{name: name, idle: idle, max_: max}, nil
}

// Name implements Model.
func (l *Linear) Name() string { return l.name }

// Power implements Model.
func (l *Linear) Power(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return l.idle + (l.max_-l.idle)*u
}

// Cubic is the empirical concave model P(u) = idle + (max−idle)·(2u − u^1.4)
// (Fan et al., "Power provisioning for a warehouse-sized computer"), an
// alternative Model for power-model sensitivity studies.
type Cubic struct {
	name       string
	idle, max_ float64
}

var _ Model = (*Cubic)(nil)

// NewCubic builds a concave empirical model P(u) = idle + (max−idle)·(2u−u^1.4).
// It returns an error when max < idle or either is negative.
func NewCubic(name string, idle, max float64) (*Cubic, error) {
	if idle < 0 || max < idle {
		return nil, fmt.Errorf("power: invalid cubic model idle=%g max=%g", idle, max)
	}
	return &Cubic{name: name, idle: idle, max_: max}, nil
}

// Name implements Model.
func (c *Cubic) Name() string { return c.name }

// Power implements Model.
func (c *Cubic) Power(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	shape := 2*u - math.Pow(u, 1.4)
	if shape > 1 {
		shape = 1
	}
	return c.idle + (c.max_-c.idle)*shape
}
