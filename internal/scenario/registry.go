package scenario

import (
	"fmt"
	"sort"

	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

// The built-in scenario registry. Each entry is a pure Config value —
// dimensionless and seedless — so `meghsim -scenario NAME` and the
// experiment tables realise the same regime at any size.

// Churn returns the arrival/departure-churn scenario: the fleet starts at
// 60% occupancy and slots continuously arrive and depart, so placement
// quality is judged on a moving population rather than a static one.
func Churn() Config {
	return Config{
		Name:            "churn",
		Description:     "VM arrival/departure churn over a 60%-occupied fleet",
		InitialLiveFrac: 0.60,
		ArrivalRate:     0.02,
		DepartRate:      0.01,
	}
}

// Phases returns the scripted fading/recovering/expansion scenario (the
// VMAgent regimes): load and churn fade together, recover, then expand
// past the starting level.
func Phases() Config {
	return Config{
		Name:            "phases",
		Description:     "fading → recovering → expansion phase script over load and churn",
		InitialLiveFrac: 0.80,
		ArrivalRate:     0.015,
		DepartRate:      0.008,
		Phases: []Phase{
			{Name: "steady", From: 0, LoadScale: 1, ArrivalScale: 1, DepartScale: 1},
			{Name: "fading", From: 60, LoadScale: 0.45, ArrivalScale: 0.3, DepartScale: 2.5},
			{Name: "recovering", From: 140, LoadScale: 0.9, ArrivalScale: 1.6, DepartScale: 0.6},
			{Name: "expansion", From: 220, LoadScale: 1.35, ArrivalScale: 2.2, DepartScale: 0.3},
		},
	}
}

// Spot returns the spot-reclamation scenario: a third of the fleet is
// preemptible capacity that the provider periodically takes back in
// correlated bursts, which policies observe as simultaneous host failures.
func Spot() Config {
	return Config{
		Name:            "spot",
		Description:     "1/3 spot fleet with correlated reclamation bursts",
		InitialLiveFrac: 0.75,
		ArrivalRate:     0.01,
		DepartRate:      0.005,
		Templates: []HostTemplate{
			{Name: "on-demand-g5", Weight: 2, MIPS: 2 * 2660, RAMMB: 4096,
				BandwidthMbps: 1000, Power: power.HPProLiantG5()},
			{Name: "spot-g4", Weight: 1, MIPS: 2 * 1860, RAMMB: 4096,
				BandwidthMbps: 1000, Power: power.HPProLiantG4(), Spot: true},
		},
		Spot: SpotReclaim{EventProb: 0.02, Frac: 0.5, DurationSteps: 6},
	}
}

// RAMPressure returns the multi-resource pressure scenario: RAM-heavy VM
// mixes on RAM-tight hosts, so memory — not CPU — is the binding placement
// constraint and feasibility is genuinely two-dimensional.
func RAMPressure() Config {
	return Config{
		Name:            "ram-pressure",
		Description:     "RAM-heavy VMs on RAM-tight heterogeneous hosts (2-D feasibility)",
		InitialLiveFrac: 0.70,
		ArrivalRate:     0.015,
		DepartRate:      0.008,
		Templates: []HostTemplate{
			{Name: "ram-tight", Weight: 3, MIPS: 2 * 2660, RAMMB: 3072,
				BandwidthMbps: 1000, Power: power.HPProLiantG5()},
			{Name: "ram-rich", Weight: 1, MIPS: 2 * 1860, RAMMB: 8192,
				BandwidthMbps: 1000, Power: power.HPProLiantG4()},
		},
		VMRAMOptions: []float64{870, 1740, 2048},
		Load: workload.DiurnalConfig{
			BaseMean:    0.25,
			Amplitude:   0.20,
			NoiseStd:    0.05,
			PeriodSteps: workload.StepsPerDay,
		},
	}
}

// Mixed returns the everything-at-once scenario: churn, a phase script,
// spot reclamation and RAM pressure composed — the hardest regime the
// suite ships.
func Mixed() Config {
	return Config{
		Name:            "mixed",
		Description:     "churn + phase script + spot reclamation + RAM pressure combined",
		InitialLiveFrac: 0.65,
		ArrivalRate:     0.02,
		DepartRate:      0.01,
		Templates: []HostTemplate{
			{Name: "on-demand", Weight: 3, MIPS: 2 * 2660, RAMMB: 3584,
				BandwidthMbps: 1000, Power: power.HPProLiantG5()},
			{Name: "spot", Weight: 1, MIPS: 2 * 1860, RAMMB: 4096,
				BandwidthMbps: 1000, Power: power.HPProLiantG4(), Spot: true},
		},
		VMRAMOptions: []float64{613, 1740, 2048},
		Phases: []Phase{
			{Name: "steady", From: 0, LoadScale: 1, ArrivalScale: 1, DepartScale: 1},
			{Name: "fading", From: 80, LoadScale: 0.5, ArrivalScale: 0.4, DepartScale: 2},
			{Name: "expansion", From: 180, LoadScale: 1.3, ArrivalScale: 2, DepartScale: 0.4},
		},
		Spot: SpotReclaim{EventProb: 0.015, Frac: 0.4, DurationSteps: 5},
	}
}

// registry maps scenario names to their constructors. Constructors (not
// values) so each Get returns a fresh Config no caller can poison.
var registry = map[string]func() Config{
	"churn":        Churn,
	"phases":       Phases,
	"spot":         Spot,
	"ram-pressure": RAMPressure,
	"mixed":        Mixed,
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns the named scenario's config.
func Get(name string) (Config, bool) {
	ctor, ok := registry[name]
	if !ok {
		return Config{}, false
	}
	return ctor(), true
}

// Build realises the named scenario at the given dimensions and seed.
func Build(name string, numHosts, numVMs, steps int, seed int64) (sim.Config, error) {
	cfg, ok := Get(name)
	if !ok {
		return sim.Config{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return cfg.Build(numHosts, numVMs, steps, seed)
}
