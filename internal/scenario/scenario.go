// Package scenario is the deterministic scenario-generation layer: it
// composes with internal/sim to produce the VMAgent-style workload regimes
// the paper's experiments never exercise — request-arrival dynamics (VMs
// created and deleted mid-run), scripted fading/recovering/expansion
// phases, heterogeneous host templates with a spot/preemptible fraction
// whose reclamation surfaces as correlated host-failure bursts, and
// RAM-tight fleets where placement feasibility is genuinely
// two-dimensional.
//
// Everything a scenario randomises draws from named sim.Seeds sub-streams
// ("scenario/hosts", "scenario/vmspecs", "scenario/load",
// "scenario/lifecycle", "scenario/spot"), so the same (scenario, dims,
// seed) triple always builds the identical sim.Config — the property the
// cross-process determinism suite asserts — and adding a new randomised
// ingredient cannot perturb the existing ones.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

// HostTemplate describes one machine shape in a heterogeneous fleet. The
// fleet is apportioned across templates by Weight (largest-remainder, so
// counts are exact and deterministic) and then shuffled on a named stream
// so types interleave instead of forming blocks.
type HostTemplate struct {
	// Name labels the template in docs and errors.
	Name string
	// Weight is the template's relative share of the fleet (> 0).
	Weight float64
	// MIPS, RAMMB and BandwidthMbps are the sim.HostSpec capacities.
	MIPS, RAMMB, BandwidthMbps float64
	// Power is the utilization→Watts model; nil means HP ProLiant G5.
	Power power.Model
	// Spot marks the template preemptible: its hosts are the ones spot
	// reclamation (Config.Spot) can take down.
	Spot bool
}

// Validate reports the first invalid field.
func (t HostTemplate) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("scenario: host template has no name")
	case t.Weight <= 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0):
		return fmt.Errorf("scenario: template %q weight %g must be positive and finite", t.Name, t.Weight)
	case t.MIPS <= 0:
		return fmt.Errorf("scenario: template %q MIPS %g must be positive", t.Name, t.MIPS)
	case t.RAMMB <= 0:
		return fmt.Errorf("scenario: template %q RAM %g must be positive", t.Name, t.RAMMB)
	case t.BandwidthMbps <= 0:
		return fmt.Errorf("scenario: template %q bandwidth %g must be positive", t.Name, t.BandwidthMbps)
	}
	return nil
}

// Phase is one segment of a scenario's phase script, VMAgent's fading /
// recovering / expansion regimes: from step From onward the per-VM load
// and the arrival/departure rates are scaled by the phase's factors.
type Phase struct {
	// Name labels the phase ("fading", "recovering", "expansion", …).
	Name string
	// From is the phase's first step; the first phase must start at 0 and
	// later phases strictly after their predecessor.
	From int
	// LoadScale multiplies per-VM utilization (clamped back to [0,1]).
	LoadScale float64
	// ArrivalScale and DepartScale multiply the churn rates; the scaled
	// per-slot probabilities are clamped to [0,1].
	ArrivalScale, DepartScale float64
}

// SpotReclaim parameterises correlated spot-capacity reclamation: with
// probability EventProb per step, Frac of the spot hosts go down together
// for DurationSteps intervals — the provider taking preemptible capacity
// back, which policies observe as a correlated HostFailed burst.
type SpotReclaim struct {
	EventProb     float64
	Frac          float64
	DurationSteps int
}

// Validate reports the first invalid field.
func (s SpotReclaim) Validate() error {
	switch {
	case s.EventProb < 0 || s.EventProb > 1 || math.IsNaN(s.EventProb):
		return fmt.Errorf("scenario: spot EventProb %g out of [0,1]", s.EventProb)
	case s.Frac < 0 || s.Frac > 1 || math.IsNaN(s.Frac):
		return fmt.Errorf("scenario: spot Frac %g out of [0,1]", s.Frac)
	case s.DurationSteps < 0:
		return fmt.Errorf("scenario: spot DurationSteps %d negative", s.DurationSteps)
	case (s.EventProb > 0 && s.Frac > 0) && s.DurationSteps == 0:
		return fmt.Errorf("scenario: spot reclamation enabled with zero duration")
	}
	return nil
}

// Config declares one scenario: the fleet shape, the VM mix, the load
// process, the churn process, the phase script, and the spot-reclamation
// process. It carries no dimensions or seed — those are Build arguments —
// so one Config describes the regime at every experiment size.
type Config struct {
	// Name identifies the scenario in the registry, flags and tables.
	Name string
	// Description is the one-line summary docs and listings show.
	Description string

	// Templates shapes the fleet; empty means the PlanetLab 50:50
	// G4/G5 mix (DefaultTemplates).
	Templates []HostTemplate

	// VMMIPSOptions and VMRAMOptions are the instance-type mixes VM specs
	// draw from; empty means the CloudSim mixes fleet.go uses.
	VMMIPSOptions []float64
	VMRAMOptions  []float64

	// Load parameterises the underlying diurnal utilization process.
	// Steps and Seed are overridden by Build; zero value means
	// workload.DefaultDiurnalConfig.
	Load workload.DiurnalConfig

	// InitialLiveFrac is the fraction of VM slots alive at step 0
	// (in [0,1]; 1 = the classical full population).
	InitialLiveFrac float64
	// ArrivalRate is each dead slot's per-step revival probability;
	// DepartRate each live slot's per-step departure probability.
	ArrivalRate float64
	DepartRate  float64

	// Phases is the scenario's phase script (may be empty).
	Phases []Phase

	// Spot parameterises reclamation of Spot-templated hosts.
	Spot SpotReclaim
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: config has no name")
	}
	for _, t := range c.Templates {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	for _, opts := range [][]float64{c.VMMIPSOptions, c.VMRAMOptions} {
		for _, v := range opts {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("scenario: VM option %g must be positive and finite", v)
			}
		}
	}
	switch {
	case c.InitialLiveFrac < 0 || c.InitialLiveFrac > 1 || math.IsNaN(c.InitialLiveFrac):
		return fmt.Errorf("scenario: InitialLiveFrac %g out of [0,1]", c.InitialLiveFrac)
	case c.ArrivalRate < 0 || c.ArrivalRate > 1 || math.IsNaN(c.ArrivalRate):
		return fmt.Errorf("scenario: ArrivalRate %g out of [0,1]", c.ArrivalRate)
	case c.DepartRate < 0 || c.DepartRate > 1 || math.IsNaN(c.DepartRate):
		return fmt.Errorf("scenario: DepartRate %g out of [0,1]", c.DepartRate)
	}
	for k, p := range c.Phases {
		if p.Name == "" {
			return fmt.Errorf("scenario: phase %d has no name", k)
		}
		for _, s := range [...]float64{p.LoadScale, p.ArrivalScale, p.DepartScale} {
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("scenario: phase %q scale %g must be non-negative and finite", p.Name, s)
			}
		}
		if k == 0 {
			if p.From != 0 {
				return fmt.Errorf("scenario: first phase %q starts at %d, want 0", p.Name, p.From)
			}
		} else if p.From <= c.Phases[k-1].From {
			return fmt.Errorf("scenario: phase %q starts at %d, not after %q at %d",
				p.Name, p.From, c.Phases[k-1].Name, c.Phases[k-1].From)
		}
	}
	return c.Spot.Validate()
}

// DefaultTemplates is the PlanetLab 50:50 server mix as two templates.
func DefaultTemplates() []HostTemplate {
	return []HostTemplate{
		{Name: "g4", Weight: 1, MIPS: 2 * 1860, RAMMB: 4096, BandwidthMbps: 1000, Power: power.HPProLiantG4()},
		{Name: "g5", Weight: 1, MIPS: 2 * 2660, RAMMB: 4096, BandwidthMbps: 1000, Power: power.HPProLiantG5()},
	}
}

// phaseAt returns the phase in effect at step t (neutral scales for an
// empty script).
func phaseAt(phases []Phase, t int) Phase {
	cur := Phase{LoadScale: 1, ArrivalScale: 1, DepartScale: 1}
	for _, p := range phases {
		if p.From > t {
			break
		}
		cur = p
	}
	return cur
}

// clampProb clamps a scaled probability back to [0,1].
func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// apportion splits m hosts across templates by weight with the
// largest-remainder method: exact totals, deterministic ties (lower
// template index wins).
func apportion(templates []HostTemplate, m int) []int {
	var total float64
	for _, t := range templates {
		total += t.Weight
	}
	counts := make([]int, len(templates))
	type frac struct {
		idx int
		rem float64
	}
	rems := make([]frac, len(templates))
	assigned := 0
	for i, t := range templates {
		exact := float64(m) * t.Weight / total
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = frac{idx: i, rem: exact - float64(counts[i])}
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].rem > rems[b].rem })
	for k := 0; assigned < m; k++ {
		counts[rems[k%len(rems)].idx]++
		assigned++
	}
	return counts
}

// Build realises the scenario at the given dimensions: numHosts hosts,
// numVMs VM slots, steps intervals, everything seeded from the single base
// seed via named sub-streams. The returned config carries no Checker,
// Tracer or Metrics — harnesses attach their own observers.
func (c Config) Build(numHosts, numVMs, steps int, seed int64) (sim.Config, error) {
	if err := c.Validate(); err != nil {
		return sim.Config{}, err
	}
	if numHosts <= 0 || numVMs <= 0 || steps <= 0 {
		return sim.Config{}, fmt.Errorf("scenario %s: dimensions %d hosts × %d VMs × %d steps must be positive",
			c.Name, numHosts, numVMs, steps)
	}
	seeds := sim.Seeds{Base: seed}

	// Fleet: apportion templates, then shuffle so types interleave.
	templates := c.Templates
	if len(templates) == 0 {
		templates = DefaultTemplates()
	}
	counts := apportion(templates, numHosts)
	hosts := make([]sim.HostSpec, 0, numHosts)
	hostTemplate := make([]int, 0, numHosts)
	for ti, n := range counts {
		t := templates[ti]
		pm := t.Power
		if pm == nil {
			pm = power.HPProLiantG5()
		}
		for k := 0; k < n; k++ {
			hosts = append(hosts, sim.HostSpec{
				MIPS: t.MIPS, RAMMB: t.RAMMB, BandwidthMbps: t.BandwidthMbps, Power: pm,
			})
			hostTemplate = append(hostTemplate, ti)
		}
	}
	hr := seeds.Rand("scenario/hosts")
	hr.Shuffle(numHosts, func(a, b int) {
		hosts[a], hosts[b] = hosts[b], hosts[a]
		hostTemplate[a], hostTemplate[b] = hostTemplate[b], hostTemplate[a]
	})
	var spotHosts []int
	for i, ti := range hostTemplate {
		if templates[ti].Spot {
			spotHosts = append(spotHosts, i)
		}
	}

	// VM specs from the instance-type mixes.
	mipsOpts := c.VMMIPSOptions
	if len(mipsOpts) == 0 {
		mipsOpts = []float64{1000, 1500, 2000, 2500}
	}
	ramOpts := c.VMRAMOptions
	if len(ramOpts) == 0 {
		ramOpts = []float64{613, 870, 1740}
	}
	vr := seeds.Rand("scenario/vmspecs")
	vms := make([]sim.VMSpec, numVMs)
	for j := range vms {
		vms[j] = sim.VMSpec{
			MIPS:          mipsOpts[vr.Intn(len(mipsOpts))],
			RAMMB:         ramOpts[vr.Intn(len(ramOpts))],
			BandwidthMbps: 100,
		}
	}

	// Load: phase-enveloped diurnal traces on the load stream.
	load := c.Load
	if load == (workload.DiurnalConfig{}) {
		load = workload.DefaultDiurnalConfig(0)
	}
	load.Steps = steps
	load.Seed = seeds.Stream("scenario/load")
	wphases := make([]workload.PhaseSpec, len(c.Phases))
	for k, p := range c.Phases {
		wphases[k] = workload.PhaseSpec{Name: p.Name, From: p.From, LoadScale: p.LoadScale}
	}
	traces, err := workload.GeneratePhased(load, wphases, numVMs)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", c.Name, err)
	}

	// Lifecycle: seeded arrival/departure churn over the slot universe,
	// modulated by the phase script. The generator tracks its own liveness
	// model; the simulator's deferred-arrival queue (with departure
	// cancelling a pending arrival) keeps the two convergent even when an
	// arrival does not fit immediately.
	var initialAlive []bool
	var lifecycle []sim.LifecycleEvent
	churning := c.InitialLiveFrac < 1 || c.ArrivalRate > 0 || c.DepartRate > 0
	if churning {
		lr := seeds.Rand("scenario/lifecycle")
		initialAlive = make([]bool, numVMs)
		alive := make([]bool, numVMs)
		for j := range initialAlive {
			a := lr.Float64() < c.InitialLiveFrac
			initialAlive[j] = a
			alive[j] = a
		}
		for t := 1; t < steps; t++ {
			ph := phaseAt(c.Phases, t)
			pArr := clampProb(c.ArrivalRate * ph.ArrivalScale)
			pDep := clampProb(c.DepartRate * ph.DepartScale)
			for j := 0; j < numVMs; j++ {
				if alive[j] {
					if pDep > 0 && lr.Float64() < pDep {
						alive[j] = false
						lifecycle = append(lifecycle, sim.LifecycleEvent{
							Step: t, VM: j, Kind: sim.VMDepart,
						})
					}
				} else if pArr > 0 && lr.Float64() < pArr {
					alive[j] = true
					lifecycle = append(lifecycle, sim.LifecycleEvent{
						Step: t, VM: j, Kind: sim.VMArrive, Host: -1,
					})
				}
			}
		}
	}

	// Spot reclamation: correlated failure bursts over the spot hosts.
	var failures []sim.Failure
	if len(spotHosts) > 0 && c.Spot.EventProb > 0 && c.Spot.Frac > 0 {
		sr := seeds.Rand("scenario/spot")
		victims := make([]int, len(spotHosts))
		nVictims := int(math.Ceil(c.Spot.Frac * float64(len(spotHosts))))
		for t := 0; t < steps; t++ {
			if sr.Float64() >= c.Spot.EventProb {
				continue
			}
			copy(victims, spotHosts)
			sr.Shuffle(len(victims), func(a, b int) {
				victims[a], victims[b] = victims[b], victims[a]
			})
			until := t + c.Spot.DurationSteps
			if until > steps {
				until = steps
			}
			for _, h := range victims[:nVictims] {
				failures = append(failures, sim.Failure{Host: h, From: t, Until: until})
			}
		}
	}

	return sim.Config{
		Hosts:        hosts,
		VMs:          vms,
		Traces:       traces,
		Steps:        steps,
		Seed:         seed,
		Failures:     failures,
		Lifecycle:    lifecycle,
		InitialAlive: initialAlive,
	}, nil
}
