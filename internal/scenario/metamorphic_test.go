package scenario

import (
	"math"
	"testing"

	"megh/internal/core"
	"megh/internal/invariant"
	"megh/internal/sim"
	"megh/internal/workload"
)

// VM slot indices are arbitrary labels: permuting them — specs, traces,
// initial liveness, initial assignment, every lifecycle event's VM, and
// every migration's VM — must leave each step's migration and activity
// counts identical and every cost component unchanged up to floating-point
// summation order. This is the metamorphic oracle for the whole scenario
// pipeline: it catches any hidden dependence on slot order (in Build's
// spec/trace generation wiring, the simulator's deferred-arrival queue, the
// checker's lifecycle law, or the cost accumulation) across every
// registered scenario, not a hand-picked one.

// decisionRecordingPolicy wraps a learner and keeps a per-step copy of the
// migrations it *requested* (not just the executed subset), so the replay
// reproduces rejection behavior too.
type decisionRecordingPolicy struct {
	inner     sim.Policy
	requested [][]sim.Migration
}

func (p *decisionRecordingPolicy) Name() string { return p.inner.Name() }

func (p *decisionRecordingPolicy) Decide(s *sim.Snapshot) []sim.Migration {
	ms := p.inner.Decide(s)
	p.requested = append(p.requested, append([]sim.Migration(nil), ms...))
	return ms
}

func (p *decisionRecordingPolicy) Observe(fb *sim.Feedback) {
	if r, ok := p.inner.(sim.FeedbackReceiver); ok {
		r.Observe(fb)
	}
}

// vmRelabelReplayPolicy re-issues a recorded schedule with every VM index
// pushed through the slot permutation.
type vmRelabelReplayPolicy struct {
	schedule [][]sim.Migration
	perm     []int
	scratch  []sim.Migration
}

func (p *vmRelabelReplayPolicy) Name() string { return "vm-relabel-replay" }

func (p *vmRelabelReplayPolicy) Decide(s *sim.Snapshot) []sim.Migration {
	if s.Step >= len(p.schedule) {
		return nil
	}
	p.scratch = p.scratch[:0]
	for _, m := range p.schedule[s.Step] {
		p.scratch = append(p.scratch, sim.Migration{VM: p.perm[m.VM], Dest: m.Dest})
	}
	return p.scratch
}

// relabelVMs returns cfg with every per-VM ingredient pushed through perm:
// slot perm[j] of the new world is slot j of the old.
func relabelVMs(cfg sim.Config, perm []int) sim.Config {
	out := cfg
	out.VMs = make([]sim.VMSpec, len(cfg.VMs))
	out.Traces = make([]workload.Trace, len(cfg.Traces))
	for j := range cfg.VMs {
		out.VMs[perm[j]] = cfg.VMs[j]
		out.Traces[perm[j]] = cfg.Traces[j]
	}
	if cfg.InitialAlive != nil {
		out.InitialAlive = make([]bool, len(cfg.InitialAlive))
		for j, a := range cfg.InitialAlive {
			out.InitialAlive[perm[j]] = a
		}
	}
	if cfg.InitialAssignment != nil {
		out.InitialAssignment = make([]int, len(cfg.InitialAssignment))
		for j, h := range cfg.InitialAssignment {
			out.InitialAssignment[perm[j]] = h
		}
	}
	if cfg.Lifecycle != nil {
		out.Lifecycle = make([]sim.LifecycleEvent, len(cfg.Lifecycle))
		for k, ev := range cfg.Lifecycle {
			ev.VM = perm[ev.VM]
			out.Lifecycle[k] = ev
		}
	}
	return out
}

func TestVMRelabelingPreservesCostAcrossScenarios(t *testing.T) {
	const numHosts, numVMs, steps, seed = 10, 18, 120, 42
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg, err := Build(name, numHosts, numVMs, steps, seed)
			if err != nil {
				t.Fatal(err)
			}
			// Pin the starting world so the relabeled run can start from
			// exactly the permuted copy of it.
			assign, err := sim.PlanInitialPlacement(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.InitialPlacement = sim.PlacementExplicit
			cfg.InitialAssignment = assign
			cfg.Checker = invariant.NewSimChecker()

			s1, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := core.New(core.DefaultConfig(numVMs, numHosts, sim.Seeds{Base: seed}.Policy()))
			if err != nil {
				t.Fatal(err)
			}
			rec := &decisionRecordingPolicy{inner: m}
			res1, err := s1.Run(rec)
			if err != nil {
				t.Fatal(err)
			}
			requested := 0
			for _, step := range rec.requested {
				requested += len(step)
			}
			if requested == 0 {
				t.Fatal("scenario produced no migration requests; relabeling test is vacuous")
			}

			// ρ: a rotation — a derangement, every slot really changes label.
			perm := make([]int, numVMs)
			for j := range perm {
				perm[j] = (j + 1) % numVMs
			}
			cfg2 := relabelVMs(cfg, perm)
			cfg2.Checker = invariant.NewSimChecker()

			s2, err := sim.New(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := s2.Run(&vmRelabelReplayPolicy{schedule: rec.requested, perm: perm})
			if err != nil {
				t.Fatal(err)
			}

			if len(res1.Steps) != len(res2.Steps) {
				t.Fatalf("step counts differ: %d vs %d", len(res1.Steps), len(res2.Steps))
			}
			for i := range res1.Steps {
				a, b := res1.Steps[i], res2.Steps[i]
				if a.Migrations != b.Migrations || a.Rejected != b.Rejected {
					t.Fatalf("step %d: migrations %d/%d rejected %d/%d diverge under VM relabeling",
						i, a.Migrations, b.Migrations, a.Rejected, b.Rejected)
				}
				if a.ActiveHosts != b.ActiveHosts || a.OverloadedHosts != b.OverloadedHosts {
					t.Fatalf("step %d: active %d/%d overloaded %d/%d diverge under VM relabeling",
						i, a.ActiveHosts, b.ActiveHosts, a.OverloadedHosts, b.OverloadedHosts)
				}
				if a.LiveVMs != b.LiveVMs || a.Arrivals != b.Arrivals ||
					a.Departures != b.Departures || a.DeferredArrivals != b.DeferredArrivals {
					t.Fatalf("step %d: churn accounting diverges under VM relabeling: %+v vs %+v", i, a, b)
				}
				if !relabelCostClose(a.EnergyCost, b.EnergyCost) || !relabelCostClose(a.SLACost, b.SLACost) ||
					!relabelCostClose(a.ResourceCost, b.ResourceCost) {
					t.Fatalf("step %d: cost decomposition diverges under VM relabeling: %+v vs %+v", i, a, b)
				}
			}
			if c1, c2 := res1.TotalCost(), res2.TotalCost(); !relabelCostClose(c1, c2) {
				t.Fatalf("total cost changed under VM relabeling: %g vs %g (Δ %g)", c1, c2, c1-c2)
			}
		})
	}
}

// relabelCostClose compares costs up to the drift FP summation-order
// changes introduce when per-VM sums run in a permuted order.
func relabelCostClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
