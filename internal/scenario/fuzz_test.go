package scenario

import (
	"fmt"
	"math"
	"testing"

	"megh/internal/consolidation"
	"megh/internal/invariant"
	"megh/internal/sim"
)

// arrivalPlacementChecker layers one fuzz-specific law on top of the full
// invariant suite: a VM that arrives this step must land on a live host.
// (The SimChecker asserts this too; restating it here keeps the fuzz
// oracle explicit and keeps the target honest if the checker ever loosens.)
type arrivalPlacementChecker struct {
	inner sim.Checker
}

func (c *arrivalPlacementChecker) CheckStep(sc *sim.StepCheck) error {
	if err := c.inner.CheckStep(sc); err != nil {
		return err
	}
	s := sc.Snapshot
	for _, j := range sc.Arrived {
		h := s.VMHost[j]
		if h < 0 || h >= s.NumHosts() {
			return fmt.Errorf("arrived VM %d has host %d", j, h)
		}
		if len(s.HostFailed) > 0 && s.HostFailed[h] {
			return fmt.Errorf("arrived VM %d placed on failed host %d", j, h)
		}
	}
	return nil
}

// FuzzScenarioConfig drives the whole scenario pipeline with arbitrary
// parameters: any Config that passes Validate must Build without error and
// run to completion — no panic, no conservation-law violation, no arrival
// onto a failed host — at bounded dimensions (≤8 hosts, ≤12 slots, ≤48
// steps, so the corpus replays fast in `go test` and `make fuzz-short`
// explores widely). Inputs Validate rejects are themselves a valid outcome:
// the fuzzer also hammers the validation surface with NaNs, infinities and
// out-of-range rates.
func FuzzScenarioConfig(f *testing.F) {
	// Seeds approximating the five registered regimes plus edge cases.
	f.Add(uint8(8), uint8(12), uint8(48), int64(42), 0.60, 0.02, 0.01,
		uint8(1), uint8(1), 0.0, 0.0, uint8(0), uint8(0), 1.0) // churn
	f.Add(uint8(6), uint8(10), uint8(40), int64(7), 0.80, 0.015, 0.008,
		uint8(1), uint8(1), 0.0, 0.0, uint8(0), uint8(10), 0.45) // phases
	f.Add(uint8(6), uint8(9), uint8(36), int64(3), 0.75, 0.01, 0.005,
		uint8(2), uint8(1), 0.1, 0.5, uint8(4), uint8(0), 1.0) // spot
	f.Add(uint8(4), uint8(8), uint8(24), int64(1), 1.0, 0.0, 0.0,
		uint8(3), uint8(1), 0.0, 0.0, uint8(0), uint8(0), 1.0) // static population
	f.Add(uint8(5), uint8(11), uint8(30), int64(9), 0.0, 1.0, 1.0,
		uint8(1), uint8(2), 0.3, 1.0, uint8(2), uint8(5), 2.0) // everything at max
	f.Add(uint8(1), uint8(1), uint8(1), int64(0), 0.5, 0.5, 0.5,
		uint8(1), uint8(1), math.NaN(), 0.5, uint8(1), uint8(0), 1.0) // NaN probe

	f.Fuzz(func(t *testing.T, hosts, vms, stepsRaw uint8, seed int64,
		liveFrac, arrRate, depRate float64,
		w1, w2 uint8,
		spotProb, spotFrac float64, spotDur uint8,
		phaseFrom uint8, loadScale float64) {

		numHosts := 1 + int(hosts%8)
		numVMs := 1 + int(vms%12)
		steps := 1 + int(stepsRaw%48)

		cfg := Config{
			Name:        "fuzz",
			Description: "fuzz-generated regime",
			Templates: []HostTemplate{
				{Name: "on-demand", Weight: 1 + float64(w1%7), MIPS: 2 * 2660,
					RAMMB: 4096, BandwidthMbps: 1000},
				{Name: "spot", Weight: 1 + float64(w2%7), MIPS: 2 * 1860,
					RAMMB: 4096, BandwidthMbps: 1000, Spot: true},
			},
			InitialLiveFrac: liveFrac,
			ArrivalRate:     arrRate,
			DepartRate:      depRate,
			Spot:            SpotReclaim{EventProb: spotProb, Frac: spotFrac, DurationSteps: int(spotDur % 8)},
		}
		if phaseFrom > 0 {
			cfg.Phases = []Phase{
				{Name: "steady", From: 0, LoadScale: 1, ArrivalScale: 1, DepartScale: 1},
				{Name: "shifted", From: int(phaseFrom), LoadScale: loadScale,
					ArrivalScale: loadScale, DepartScale: loadScale},
			}
		}
		if err := cfg.Validate(); err != nil {
			return // rejection is a correct outcome for hostile inputs
		}
		simCfg, err := cfg.Build(numHosts, numVMs, steps, seed)
		if err != nil {
			t.Fatalf("validated config failed Build: %v", err)
		}
		// A fuzzed world can be statically infeasible — more live RAM demand
		// than the fleet holds — and the simulator rightly refuses to place
		// it. That refusal is an acceptable outcome; everything placeable
		// must then run clean.
		if _, err := sim.PlanInitialPlacement(simCfg); err != nil {
			return
		}
		simCfg.Checker = &arrivalPlacementChecker{inner: invariant.NewSimChecker()}
		s, err := sim.New(simCfg)
		if err != nil {
			t.Fatalf("Build output rejected by sim.New: %v", err)
		}
		policy, err := consolidation.NewTHRMMT()
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(policy)
		if err != nil {
			t.Fatalf("run violated an invariant: %v", err)
		}
		if len(res.Steps) != steps {
			t.Fatalf("run completed %d of %d steps", len(res.Steps), steps)
		}
		if total := res.TotalCost(); math.IsNaN(total) || math.IsInf(total, 0) {
			t.Fatalf("degenerate total cost %g", total)
		}
	})
}
