package scenario

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"megh/internal/core"
	"megh/internal/sim"
	"megh/internal/trace"
)

const crossProcessChildEnv = "MEGH_SCENARIO_DETERMINISM_OUT"

// scenarioTraceRun realises one registered scenario at fixed small
// dimensions, runs Megh over it with the tracer attached, and returns the
// raw trace bytes. Everything stochastic — fleet shuffle, VM specs, load,
// lifecycle, spot reclamation, policy exploration — descends from the one
// base seed via named sub-streams, so these bytes are the scenario layer's
// full determinism surface.
func scenarioTraceRun(t *testing.T, name string) []byte {
	t.Helper()
	const numHosts, numVMs, steps, seed = 10, 18, 60, 1234
	cfg, err := Build(name, numHosts, numVMs, steps, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer, err := trace.New(trace.Options{W: &buf})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tracer
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.DefaultConfig(numVMs, numHosts, sim.Seeds{Base: seed}.Policy()))
	if err != nil {
		t.Fatal(err)
	}
	m.Trace(tracer)
	if _, err := s.Run(m); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// allScenarioTraces concatenates every registered scenario's trace, each
// prefixed by a name header so a divergence is attributable.
func allScenarioTraces(t *testing.T) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, name := range Names() {
		fmt.Fprintf(&out, "=== scenario %s ===\n", name)
		out.Write(scenarioTraceRun(t, name))
	}
	return out.Bytes()
}

// TestScenarioCrossProcessChild is the child half of the cross-process
// suite, active only when the parent sets crossProcessChildEnv.
func TestScenarioCrossProcessChild(t *testing.T) {
	out := os.Getenv(crossProcessChildEnv)
	if out == "" {
		t.Skip("child mode only (set by the cross-process determinism test)")
	}
	if err := os.WriteFile(out, allScenarioTraces(t), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioTracesAreByteIdenticalAcrossProcesses: realising a scenario
// and running the learner over it must produce byte-identical traces across
// two fresh processes — nothing in the scenario layer (map iteration over
// the registry, template shuffling, lifecycle generation, spot sampling)
// may depend on per-process state. In-process repeat determinism cannot
// catch a leak of process-reseeded state, so the test execs the binary
// twice and also checks the parent's own bytes.
func TestScenarioTracesAreByteIdenticalAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	runChild := func(name string) []byte {
		out := filepath.Join(dir, name)
		cmd := exec.Command(os.Args[0], "-test.run=^TestScenarioCrossProcessChild$", "-test.count=1")
		cmd.Env = append(os.Environ(), crossProcessChildEnv+"="+out)
		if raw, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child run failed: %v\n%s", err, raw)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := runChild("a.trace")
	b := runChild("b.trace")
	if len(a) == 0 {
		t.Fatal("child produced no trace output")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed scenario traces differ between two child processes")
	}
	if parent := allScenarioTraces(t); !bytes.Equal(a, parent) {
		t.Fatal("child scenario traces differ from the parent process's same-seed traces")
	}
}
