package scenario

import (
	"math"
	"reflect"
	"testing"

	"megh/internal/consolidation"
	"megh/internal/core"
	"megh/internal/invariant"
	"megh/internal/madvm"
	"megh/internal/sim"
)

func validTemplate() HostTemplate {
	return HostTemplate{Name: "t", Weight: 1, MIPS: 1000, RAMMB: 2048, BandwidthMbps: 100}
}

func TestHostTemplateValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*HostTemplate)
	}{
		{"no name", func(h *HostTemplate) { h.Name = "" }},
		{"zero weight", func(h *HostTemplate) { h.Weight = 0 }},
		{"NaN weight", func(h *HostTemplate) { h.Weight = math.NaN() }},
		{"inf weight", func(h *HostTemplate) { h.Weight = math.Inf(1) }},
		{"zero MIPS", func(h *HostTemplate) { h.MIPS = 0 }},
		{"negative RAM", func(h *HostTemplate) { h.RAMMB = -1 }},
		{"zero bandwidth", func(h *HostTemplate) { h.BandwidthMbps = 0 }},
	}
	if err := validTemplate().Validate(); err != nil {
		t.Fatalf("baseline template invalid: %v", err)
	}
	for _, tc := range cases {
		h := validTemplate()
		tc.mutate(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestSpotReclaimValidate(t *testing.T) {
	cases := []struct {
		name string
		s    SpotReclaim
		ok   bool
	}{
		{"zero value", SpotReclaim{}, true},
		{"enabled", SpotReclaim{EventProb: 0.1, Frac: 0.5, DurationSteps: 3}, true},
		{"prob out of range", SpotReclaim{EventProb: 1.5, Frac: 0.5, DurationSteps: 3}, false},
		{"NaN prob", SpotReclaim{EventProb: math.NaN(), Frac: 0.5, DurationSteps: 3}, false},
		{"frac out of range", SpotReclaim{EventProb: 0.1, Frac: -0.1, DurationSteps: 3}, false},
		{"negative duration", SpotReclaim{EventProb: 0.1, Frac: 0.5, DurationSteps: -1}, false},
		{"enabled with zero duration", SpotReclaim{EventProb: 0.1, Frac: 0.5}, false},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: got %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() Config {
		return Config{Name: "test", InitialLiveFrac: 0.8, ArrivalRate: 0.01, DepartRate: 0.01}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no name", func(c *Config) { c.Name = "" }},
		{"bad template", func(c *Config) { c.Templates = []HostTemplate{{}} }},
		{"bad VM MIPS option", func(c *Config) { c.VMMIPSOptions = []float64{1000, -5} }},
		{"NaN VM RAM option", func(c *Config) { c.VMRAMOptions = []float64{math.NaN()} }},
		{"live frac above 1", func(c *Config) { c.InitialLiveFrac = 1.01 }},
		{"NaN arrival rate", func(c *Config) { c.ArrivalRate = math.NaN() }},
		{"negative depart rate", func(c *Config) { c.DepartRate = -0.1 }},
		{"unnamed phase", func(c *Config) {
			c.Phases = []Phase{{From: 0, LoadScale: 1, ArrivalScale: 1, DepartScale: 1}}
		}},
		{"first phase not at 0", func(c *Config) {
			c.Phases = []Phase{{Name: "a", From: 5, LoadScale: 1, ArrivalScale: 1, DepartScale: 1}}
		}},
		{"non-ascending phases", func(c *Config) {
			c.Phases = []Phase{
				{Name: "a", From: 0, LoadScale: 1, ArrivalScale: 1, DepartScale: 1},
				{Name: "b", From: 0, LoadScale: 1, ArrivalScale: 1, DepartScale: 1},
			}
		}},
		{"negative phase scale", func(c *Config) {
			c.Phases = []Phase{{Name: "a", From: 0, LoadScale: -1, ArrivalScale: 1, DepartScale: 1}}
		}},
		{"bad spot", func(c *Config) { c.Spot = SpotReclaim{EventProb: 2} }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

// TestRegisteredScenariosValidate: every shipped scenario must pass its own
// validation — the registry cannot ship a config Build would reject.
func TestRegisteredScenariosValidate(t *testing.T) {
	for _, name := range Names() {
		cfg, ok := Get(name)
		if !ok {
			t.Fatalf("registry lists %q but Get fails", name)
		}
		if cfg.Name != name {
			t.Errorf("scenario %q self-reports name %q", name, cfg.Name)
		}
		if cfg.Description == "" {
			t.Errorf("scenario %q has no description", name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
	}
}

func TestApportionExactAndProportional(t *testing.T) {
	templates := []HostTemplate{
		{Name: "a", Weight: 3}, {Name: "b", Weight: 1}, {Name: "c", Weight: 1},
	}
	for _, m := range []int{1, 2, 5, 7, 100, 101} {
		counts := apportion(templates, m)
		sum := 0
		for _, n := range counts {
			sum += n
		}
		if sum != m {
			t.Fatalf("m=%d: counts %v sum to %d", m, counts, sum)
		}
		// Largest-remainder never strays more than 1 from the exact share.
		for i, n := range counts {
			exact := float64(m) * templates[i].Weight / 5
			if math.Abs(float64(n)-exact) >= 1 {
				t.Errorf("m=%d template %d: count %d vs exact %g drifts ≥1", m, i, n, exact)
			}
		}
	}
	if got := apportion(templates, 100); !reflect.DeepEqual(got, []int{60, 20, 20}) {
		t.Errorf("apportion(3:1:1, 100) = %v, want [60 20 20]", got)
	}
}

func TestPhaseAtBoundaries(t *testing.T) {
	phases := []Phase{
		{Name: "a", From: 0, LoadScale: 1, ArrivalScale: 1, DepartScale: 1},
		{Name: "b", From: 10, LoadScale: 2, ArrivalScale: 2, DepartScale: 2},
	}
	for _, tc := range []struct {
		t    int
		want string
	}{{0, "a"}, {9, "a"}, {10, "b"}, {999, "b"}} {
		if got := phaseAt(phases, tc.t); got.Name != tc.want {
			t.Errorf("phaseAt(%d) = %q, want %q", tc.t, got.Name, tc.want)
		}
	}
	neutral := phaseAt(nil, 5)
	if neutral.LoadScale != 1 || neutral.ArrivalScale != 1 || neutral.DepartScale != 1 {
		t.Errorf("empty script must yield neutral scales, got %+v", neutral)
	}
}

// TestBuildIsDeterministic: the same (scenario, dims, seed) triple must
// produce a structurally identical sim.Config on every call — the in-process
// half of the determinism contract (the subprocess suite covers restarts).
func TestBuildIsDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, err := Build(name, 12, 20, 80, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Build(name, 12, 20, 80, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Power models are fresh values per Build; compare them by name and
		// everything else structurally.
		for i := range a.Hosts {
			an, bn := a.Hosts[i].Power, b.Hosts[i].Power
			if (an == nil) != (bn == nil) || (an != nil && an.Name() != bn.Name()) {
				t.Fatalf("%s: host %d power models differ", name, i)
			}
			a.Hosts[i].Power, b.Hosts[i].Power = nil, nil
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two Builds with identical inputs differ", name)
		}
		c, err := Build(name, 12, 20, 80, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(a.Traces, c.Traces) {
			t.Fatalf("%s: different seeds produced identical traces", name)
		}
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	if _, err := Build("no-such-scenario", 4, 8, 10, 1); err == nil {
		t.Error("unknown scenario name must error")
	}
	if _, err := Churn().Build(0, 8, 10, 1); err == nil {
		t.Error("zero hosts must error")
	}
	if _, err := Churn().Build(4, -1, 10, 1); err == nil {
		t.Error("negative VMs must error")
	}
	if _, err := Churn().Build(4, 8, 0, 1); err == nil {
		t.Error("zero steps must error")
	}
	bad := Churn()
	bad.ArrivalRate = 2
	if _, err := bad.Build(4, 8, 10, 1); err == nil {
		t.Error("invalid config must fail Build")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"churn", "mixed", "phases", "ram-pressure", "spot"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get on unknown name must report !ok")
	}
}

// matrixPolicies builds the three-policy comparison set the scenario matrix
// uses: the paper's learner, the strongest CloudSim heuristic, and the
// value-iteration baseline.
func matrixPolicies(t *testing.T, numVMs, numHosts int, seed int64) map[string]sim.Policy {
	t.Helper()
	megh, err := core.New(core.DefaultConfig(numVMs, numHosts, seed))
	if err != nil {
		t.Fatal(err)
	}
	thr, err := consolidation.NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	mad, err := madvm.New(numVMs, madvm.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]sim.Policy{"Megh": megh, "THR-MMT": thr, "MadVM": mad}
}

// TestEveryScenarioRunsCleanUnderChecker is the tentpole's acceptance test:
// each registered scenario, under each matrix policy, completes a full run
// with the invariant checker attached — zero conservation-law violations —
// and actually exercises the dynamics it advertises (churn scenarios
// produce arrivals and departures, spot scenarios produce failures).
func TestEveryScenarioRunsCleanUnderChecker(t *testing.T) {
	const numHosts, numVMs, steps, seed = 16, 28, 300, 42
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for pname, policy := range matrixPolicies(t, numVMs, numHosts, sim.Seeds{Base: seed}.Policy()) {
				cfg, err := Build(name, numHosts, numVMs, steps, seed)
				if err != nil {
					t.Fatal(err)
				}
				checker := invariant.NewSimChecker()
				cfg.Checker = checker
				s, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(policy)
				if err != nil {
					t.Fatalf("%s under %s: %v", name, pname, err)
				}
				if checker.Steps != steps {
					t.Fatalf("%s under %s: checker audited %d of %d steps", name, pname, checker.Steps, steps)
				}
				if len(res.Steps) != steps {
					t.Fatalf("%s under %s: %d result steps", name, pname, len(res.Steps))
				}
				if res.TotalArrivals() == 0 || res.TotalDepartures() == 0 {
					t.Errorf("%s under %s: no churn (%d arrivals, %d departures) — scenario is vacuous",
						name, pname, res.TotalArrivals(), res.TotalDepartures())
				}
				if res.TotalCost() <= 0 || math.IsNaN(res.TotalCost()) {
					t.Errorf("%s under %s: degenerate total cost %g", name, pname, res.TotalCost())
				}
			}
		})
	}
}

// TestSpotScenarioInjectsCorrelatedFailures pins the spot-reclamation
// mechanics: the generated failure schedule hits only spot-templated hosts,
// in correlated bursts of ⌈Frac·|spot|⌉ hosts sharing a start step.
func TestSpotScenarioInjectsCorrelatedFailures(t *testing.T) {
	const numHosts, numVMs, steps, seed = 18, 24, 400, 42
	cfg, err := Build("spot", numHosts, numVMs, steps, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Failures) == 0 {
		t.Fatal("spot scenario generated no reclamation events at 400 steps; pick a longer run or new seed")
	}
	sc := Spot()
	byStart := map[int]int{}
	for _, f := range cfg.Failures {
		byStart[f.From]++
		if f.Until-f.From > sc.Spot.DurationSteps {
			t.Errorf("failure on host %d lasts %d steps, cap is %d", f.Host, f.Until-f.From, sc.Spot.DurationSteps)
		}
	}
	// Spot hosts are exactly the hosts that ever fail ∪ … well, at least
	// every burst must be the same correlated size.
	spotCount := 0
	{
		templates := sc.Templates
		counts := apportion(templates, numHosts)
		for ti, n := range counts {
			if templates[ti].Spot {
				spotCount += n
			}
		}
	}
	wantBurst := int(math.Ceil(sc.Spot.Frac * float64(spotCount)))
	for from, n := range byStart {
		if n != wantBurst {
			t.Errorf("burst at step %d takes down %d hosts, want %d", from, n, wantBurst)
		}
	}
}

// TestPhasesModulateChurnAndLoad checks the phase script has observable
// effect: the fading phase must see a lower mean live population trend than
// the expansion phase, and the phased load envelope must change the traces
// relative to the unphased config.
func TestPhasesModulateChurnAndLoad(t *testing.T) {
	const numHosts, numVMs, steps, seed = 16, 28, 300, 42
	phased := Phases()
	flat := phased
	flat.Phases = nil
	pc, err := phased.Build(numHosts, numVMs, steps, seed)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := flat.Build(numHosts, numVMs, steps, seed)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(pc.Traces, fc.Traces) {
		t.Error("phase script left the load traces unchanged")
	}
	if reflect.DeepEqual(pc.Lifecycle, fc.Lifecycle) {
		t.Error("phase script left the lifecycle schedule unchanged")
	}
	// Count net population drift inside fading vs expansion windows.
	drift := func(events []sim.LifecycleEvent, from, to int) int {
		d := 0
		for _, ev := range events {
			if ev.Step < from || ev.Step >= to {
				continue
			}
			if ev.Kind == sim.VMArrive {
				d++
			} else {
				d--
			}
		}
		return d
	}
	fading := drift(pc.Lifecycle, 60, 140)
	expansion := drift(pc.Lifecycle, 220, steps)
	if fading >= 0 {
		t.Errorf("fading phase net drift %+d, want shrinking population", fading)
	}
	if expansion <= 0 {
		t.Errorf("expansion phase net drift %+d, want growing population", expansion)
	}
}

// TestRAMPressureBindsOnMemory: in the ram-pressure scenario a meaningful
// share of (VM, host) pairs must be RAM-infeasible even when MIPS would fit
// — otherwise the scenario does not actually exercise 2-D feasibility.
func TestRAMPressureBindsOnMemory(t *testing.T) {
	cfg, err := Build("ram-pressure", 12, 24, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	ramBound := 0
	for _, vm := range cfg.VMs {
		for _, h := range cfg.Hosts {
			// A host already half-full of this VM's siblings: RAM binds
			// before MIPS for the big instances on ram-tight hosts.
			if 2*vm.RAMMB > h.RAMMB && 2*vm.MIPS <= h.MIPS {
				ramBound++
			}
		}
	}
	if ramBound == 0 {
		t.Fatal("no (VM, host) pair is RAM-bound; ram-pressure scenario is mislabeled")
	}
}

func TestDefaultTemplatesMatchPlanetLabMix(t *testing.T) {
	ts := DefaultTemplates()
	if len(ts) != 2 {
		t.Fatalf("want 2 default templates, got %d", len(ts))
	}
	for _, tpl := range ts {
		if err := tpl.Validate(); err != nil {
			t.Errorf("default template %q invalid: %v", tpl.Name, err)
		}
		if tpl.Spot {
			t.Errorf("default template %q must not be spot", tpl.Name)
		}
	}
}
