// Package qlearn implements the tabular Q-learning baseline the paper
// discusses in §2.2: an actor-style learner that must be trained offline
// ("computationally expensive training periods of a few hundred iterations
// before using it in an online setup") before it can serve, in contrast to
// Megh which learns as-it-goes. The state space is the same per-VM
// (VM-load × host-load) discretization MadVM uses, with a Q-table shared
// across VMs.
package qlearn

import (
	"fmt"
	"math"
	"math/rand"

	"megh/internal/sim"
)

// Config parameterises the Q-learner.
type Config struct {
	// UtilBuckets and HostBuckets discretize the per-VM state (default 10).
	UtilBuckets, HostBuckets int
	// Alpha is the learning rate (default 0.1).
	Alpha float64
	// Gamma is the discount factor (default 0.5, matching the paper).
	Gamma float64
	// TrainEpsilon is the exploration rate during offline training
	// (default 0.3).
	TrainEpsilon float64
	// ServeEpsilon is the residual exploration when serving (default 0.01).
	ServeEpsilon float64
	// MigrationPenalty and OverloadPenalty shape the local cost signal.
	MigrationPenalty, OverloadPenalty float64
	// Seed drives exploration.
	Seed int64
}

// DefaultConfig returns the baseline configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		UtilBuckets:      10,
		HostBuckets:      10,
		Alpha:            0.1,
		Gamma:            0.5,
		TrainEpsilon:     0.3,
		ServeEpsilon:     0.01,
		MigrationPenalty: 0.05,
		OverloadPenalty:  1,
		Seed:             seed,
	}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.UtilBuckets <= 0 || c.HostBuckets <= 0:
		return fmt.Errorf("qlearn: buckets (%d, %d) must be positive", c.UtilBuckets, c.HostBuckets)
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("qlearn: Alpha %g out of (0,1]", c.Alpha)
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("qlearn: Gamma %g out of [0,1)", c.Gamma)
	case c.TrainEpsilon < 0 || c.TrainEpsilon > 1:
		return fmt.Errorf("qlearn: TrainEpsilon %g out of [0,1]", c.TrainEpsilon)
	case c.ServeEpsilon < 0 || c.ServeEpsilon > 1:
		return fmt.Errorf("qlearn: ServeEpsilon %g out of [0,1]", c.ServeEpsilon)
	case c.MigrationPenalty < 0 || c.OverloadPenalty < 0:
		return fmt.Errorf("qlearn: negative penalties")
	}
	return nil
}

// Per-VM actions (same vocabulary as MadVM).
const (
	actStay = iota
	actMigrate
	numActions
)

// QLearning implements sim.Policy. Call Train before serving; an untrained
// learner acts like an ε-greedy random policy, which is exactly the failure
// mode the paper criticises.
type QLearning struct {
	cfg    Config
	states int
	q      [][]float64 // Q[state][action], shared across VMs
	rng    *rand.Rand

	training bool
	trained  bool

	lastState []int
	lastAct   []int
	hasPrev   []bool

	addRAM  map[int]float64
	addMIPS map[int]float64
}

var _ sim.Policy = (*QLearning)(nil)

// New constructs a Q-learner for numVMs virtual machines.
func New(numVMs int, cfg Config) (*QLearning, error) {
	if numVMs <= 0 {
		return nil, fmt.Errorf("qlearn: numVMs %d must be positive", numVMs)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	states := cfg.UtilBuckets * cfg.HostBuckets
	q := make([][]float64, states)
	for s := range q {
		q[s] = make([]float64, numActions)
	}
	return &QLearning{
		cfg:       cfg,
		states:    states,
		q:         q,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		lastState: make([]int, numVMs),
		lastAct:   make([]int, numVMs),
		hasPrev:   make([]bool, numVMs),
		addRAM:    make(map[int]float64),
		addMIPS:   make(map[int]float64),
	}, nil
}

// Name implements sim.Policy.
func (q *QLearning) Name() string { return "Q-learning" }

// Trained reports whether Train has completed at least once.
func (q *QLearning) Trained() bool { return q.trained }

// Train runs the offline training phase: `episodes` full simulator runs
// with exploratory ε. This is the elaborate offline cost Megh avoids.
func (q *QLearning) Train(s *sim.Simulator, episodes int) error {
	if s == nil {
		return fmt.Errorf("qlearn: nil simulator")
	}
	if episodes <= 0 {
		return fmt.Errorf("qlearn: episodes %d must be positive", episodes)
	}
	q.training = true
	defer func() { q.training = false }()
	for e := 0; e < episodes; e++ {
		q.resetEpisode()
		if _, err := s.Run(q); err != nil {
			return fmt.Errorf("qlearn: training episode %d: %w", e, err)
		}
	}
	q.trained = true
	q.resetEpisode()
	return nil
}

func (q *QLearning) resetEpisode() {
	for j := range q.hasPrev {
		q.hasPrev[j] = false
	}
}

func (q *QLearning) epsilon() float64 {
	if q.training {
		return q.cfg.TrainEpsilon
	}
	return q.cfg.ServeEpsilon
}

func (q *QLearning) state(s *sim.Snapshot, j int) int {
	ub := bucket(s.VMUtil[j], q.cfg.UtilBuckets)
	hb := bucket(s.HostUtil[s.VMHost[j]], q.cfg.HostBuckets)
	return ub*q.cfg.HostBuckets + hb
}

func bucket(u float64, n int) int {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		return n - 1
	}
	return int(u * float64(n))
}

func (q *QLearning) localCost(s *sim.Snapshot, j int, migrated bool) float64 {
	host := s.VMHost[j]
	c := s.HostUtil[host]
	if s.HostOverloaded(host) {
		c += q.cfg.OverloadPenalty
	}
	if migrated {
		c += q.cfg.MigrationPenalty
	}
	return c
}

// Decide implements sim.Policy: temporal-difference update from the
// previous transition, then ε-greedy action per VM.
func (q *QLearning) Decide(s *sim.Snapshot) []sim.Migration {
	if s.NumVMs() != len(q.lastState) {
		panic(fmt.Sprintf("qlearn: snapshot has %d VMs, learner has %d",
			s.NumVMs(), len(q.lastState)))
	}
	clear(q.addRAM)
	clear(q.addMIPS)

	// TD(0) update for every live VM's last transition. Dead slots
	// (lifecycle runs) have no host to read; dropping hasPrev keeps a
	// death→rebirth pair from being learned as one transition.
	for j := range q.lastState {
		if !s.VMLive(j) {
			q.hasPrev[j] = false
			continue
		}
		cur := q.state(s, j)
		if q.hasPrev[j] {
			prev, act := q.lastState[j], q.lastAct[j]
			c := q.localCost(s, j, act == actMigrate)
			best := math.Inf(1)
			for a := 0; a < numActions; a++ {
				if q.q[cur][a] < best {
					best = q.q[cur][a]
				}
			}
			td := c + q.cfg.Gamma*best - q.q[prev][act]
			q.q[prev][act] += q.cfg.Alpha * td
		}
	}

	var migrations []sim.Migration
	eps := q.epsilon()
	for j := range q.lastState {
		if !s.VMLive(j) {
			continue
		}
		cur := q.state(s, j)
		var act int
		if q.rng.Float64() < eps {
			act = q.rng.Intn(numActions)
		} else if q.q[cur][actMigrate] < q.q[cur][actStay] {
			act = actMigrate
		} else {
			act = actStay
		}
		migrated := false
		if act == actMigrate {
			if dest, ok := q.bestDestination(s, j); ok {
				migrations = append(migrations, sim.Migration{VM: j, Dest: dest})
				q.addRAM[dest] += s.VMSpecs[j].RAMMB
				q.addMIPS[dest] += s.VMMIPS[j]
				migrated = true
			}
		}
		if !migrated {
			act = actStay
		}
		q.lastState[j], q.lastAct[j], q.hasPrev[j] = cur, act, true
	}
	return migrations
}

// bestDestination mirrors MadVM's load-balancing placement.
func (q *QLearning) bestDestination(s *sim.Snapshot, j int) (int, bool) {
	cur := s.VMHost[j]
	best, bestUtil := -1, math.Inf(1)
	for h := 0; h < s.NumHosts(); h++ {
		if h == cur || !q.fits(s, j, h) {
			continue
		}
		spec := s.HostSpecs[h]
		var mips float64
		for _, other := range s.HostVMs[h] {
			mips += s.VMMIPS[other]
		}
		after := (mips + q.addMIPS[h] + s.VMMIPS[j]) / spec.MIPS
		if after > s.OverloadThreshold {
			continue
		}
		if after < bestUtil {
			bestUtil = after
			best = h
		}
	}
	return best, best >= 0
}

func (q *QLearning) fits(s *sim.Snapshot, j, h int) bool {
	spec := s.HostSpecs[h]
	var ram, mips float64
	for _, other := range s.HostVMs[h] {
		ram += s.VMSpecs[other].RAMMB
		mips += s.VMMIPS[other]
	}
	return ram+q.addRAM[h]+s.VMSpecs[j].RAMMB <= spec.RAMMB &&
		mips+q.addMIPS[h]+s.VMMIPS[j] <= spec.MIPS
}

// QValue exposes the learned table for tests and diagnostics.
func (q *QLearning) QValue(state, action int) float64 {
	if state < 0 || state >= q.states || action < 0 || action >= numActions {
		panic(fmt.Sprintf("qlearn: Q(%d,%d) out of range", state, action))
	}
	return q.q[state][action]
}
