package qlearn

import (
	"math"
	"testing"

	"megh/internal/sim"
	"megh/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.UtilBuckets = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.Gamma = 1 },
		func(c *Config) { c.TrainEpsilon = -0.1 },
		func(c *Config) { c.ServeEpsilon = 1.1 },
		func(c *Config) { c.MigrationPenalty = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if _, err := New(5, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(-1, DefaultConfig(1)); err == nil {
		t.Error("negative VM count should error")
	}
}

func buildSim(t *testing.T, nVMs, nHosts, steps int, seed int64) *sim.Simulator {
	t.Helper()
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(seed)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := sim.PlanetLabHosts(nHosts)
	if err != nil {
		t.Fatal(err)
	}
	vms, err := sim.PlanetLabVMs(nVMs, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrainRequiresValidArguments(t *testing.T) {
	q, err := New(5, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Train(nil, 1); err == nil {
		t.Error("nil simulator should error")
	}
	s := buildSim(t, 5, 4, 5, 2)
	if err := q.Train(s, 0); err == nil {
		t.Error("zero episodes should error")
	}
}

func TestTrainingFlipsTrainedFlagAndLearnsValues(t *testing.T) {
	const nVMs, nHosts = 10, 6
	s := buildSim(t, nVMs, nHosts, 40, 3)
	q, err := New(nVMs, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if q.Trained() {
		t.Fatal("fresh learner claims to be trained")
	}
	if err := q.Train(s, 3); err != nil {
		t.Fatal(err)
	}
	if !q.Trained() {
		t.Fatal("Train did not mark learner trained")
	}
	// Some Q entries must have moved away from zero.
	moved := 0
	for st := 0; st < q.states; st++ {
		for a := 0; a < numActions; a++ {
			if q.QValue(st, a) != 0 {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Fatal("training left the whole Q-table at zero")
	}
}

func TestServingAfterTrainingIsFeasibleAndCheap(t *testing.T) {
	const nVMs, nHosts = 10, 6
	s := buildSim(t, nVMs, nHosts, 40, 3)
	q, err := New(nVMs, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Train(s, 2); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range res.Steps {
		if sm.Rejected != 0 {
			t.Fatalf("step %d: %d infeasible proposals", sm.Step, sm.Rejected)
		}
	}
	if math.IsNaN(res.TotalCost()) || res.TotalCost() <= 0 {
		t.Fatalf("bad total cost %g", res.TotalCost())
	}
}

func TestQValueBoundsChecked(t *testing.T) {
	q, err := New(3, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range state")
		}
	}()
	q.QValue(q.states, 0)
}

func TestDecidePanicsOnVMCountMismatch(t *testing.T) {
	q, err := New(3, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s := buildSim(t, 5, 4, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on VM-count mismatch")
		}
	}()
	if _, err := s.Run(q); err != nil {
		t.Fatal(err)
	}
}

func TestTrainedLearnerResolvesPersistentOverload(t *testing.T) {
	// The paper's point about Q-learning: it only performs after offline
	// training. Build a world with one persistently overloaded host; the
	// untrained learner (all-zero Q, ε ≈ 0) mostly stays and suffers,
	// while the trained learner must have learned to migrate away.
	overloadSim := func() *sim.Simulator {
		hosts, err := sim.PlanetLabHosts(6)
		if err != nil {
			t.Fatal(err)
		}
		vms := make([]sim.VMSpec, 3)
		traces := make([]workload.Trace, 3)
		for i := range vms {
			vms[i] = sim.VMSpec{MIPS: 1200, RAMMB: 512, BandwidthMbps: 100}
			tr := make(workload.Trace, 60)
			for k := range tr {
				tr[k] = 0.95
			}
			traces[i] = tr
		}
		s, err := sim.New(sim.Config{
			Hosts: hosts, VMs: vms, Traces: traces,
			InitialPlacement: sim.PlacementFirstFit, // all three on host 0 → 92% util
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := overloadSim()

	untrained, err := New(3, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	resU, err := s.Run(untrained)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := New(3, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := trained.Train(s, 5); err != nil {
		t.Fatal(err)
	}
	resT, err := s.Run(trained)
	if err != nil {
		t.Fatal(err)
	}
	overloads := func(r *sim.Result) int {
		n := 0
		for _, sm := range r.Steps {
			n += sm.OverloadedHosts
		}
		return n
	}
	if overloads(resT) >= overloads(resU) {
		t.Fatalf("trained overload host-steps %d not fewer than untrained %d",
			overloads(resT), overloads(resU))
	}
}
