package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"megh/internal/mdp"
	"megh/internal/obs"
	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/sparse"
	"megh/internal/trace"
	"megh/internal/workload"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(100, 50, 1)
	if cfg.Gamma != 0.5 {
		t.Errorf("γ = %g, want 0.5 (§6.1)", cfg.Gamma)
	}
	if cfg.Temp0 != 3 {
		t.Errorf("Temp0 = %g, want 3 (§6.1)", cfg.Temp0)
	}
	if cfg.Epsilon != 0.01 {
		t.Errorf("ε = %g, want 0.01 (§6.1)", cfg.Epsilon)
	}
	if cfg.MaxMigrationsFrac != 0.02 {
		t.Errorf("migration cap = %g, want 0.02 (§6.1)", cfg.MaxMigrationsFrac)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NumVMs = 0 },
		func(c *Config) { c.NumHosts = -1 },
		func(c *Config) { c.Gamma = 1 },
		func(c *Config) { c.Gamma = -0.1 },
		func(c *Config) { c.Temp0 = 0 },
		func(c *Config) { c.Epsilon = -1 },
		func(c *Config) { c.MaxMigrationsFrac = 0 },
		func(c *Config) { c.MaxMigrationsFrac = 1.5 },
		func(c *Config) { c.UnderloadThreshold = 2 },
		func(c *Config) { c.ExplorationRate = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig(10, 5, 1)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestUpdateMaintainsThetaInvariant checks the incremental θ maintenance:
// after arbitrary update sequences, θ must equal B·z exactly (the defining
// relation of Algorithm 1 line 11).
func TestUpdateMaintainsThetaInvariant(t *testing.T) {
	m, err := New(DefaultConfig(4, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for step := 0; step < 120; step++ {
		a := r.Intn(m.d)
		b := r.Intn(m.d)
		c := r.Float64() * 5
		m.update(a, b, c)
		want := m.b.MulVec(m.z)
		for i := 0; i < m.d; i++ {
			if diff := math.Abs(m.theta[i] - want.Get(i)); diff > 1e-6 {
				t.Fatalf("step %d: θ[%d] = %g, B·z = %g (|Δ| = %g)",
					step, i, m.theta[i], want.Get(i), diff)
			}
		}
	}
}

// TestUpdateMatchesDenseLSTD drives Megh's update and an explicit dense
// T-accumulation in parallel and verifies B = T⁻¹ and θ = T⁻¹·z.
func TestUpdateMatchesDenseLSTD(t *testing.T) {
	cfg := DefaultConfig(3, 3, 1)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := m.d
	tm := sparse.NewDenseIdentity(d, float64(d))
	zd := make([]float64, d)
	r := rand.New(rand.NewSource(4))
	for step := 0; step < 60; step++ {
		a, b := r.Intn(d), r.Intn(d)
		c := r.Float64()
		u := make([]float64, d)
		u[a] = 1
		v := make([]float64, d)
		v[a] += 1
		v[b] -= cfg.Gamma
		m.update(a, b, c)
		tm.AddOuter(1, u, v)
		zd[a] += c
	}
	inv, err := tm.Invert()
	if err != nil {
		t.Fatal(err)
	}
	wantTheta := inv.MulVec(zd)
	for i := 0; i < d; i++ {
		if diff := math.Abs(m.theta[i] - wantTheta[i]); diff > 1e-6 {
			t.Fatalf("θ[%d] = %g, dense LSTD = %g", i, m.theta[i], wantTheta[i])
		}
		for j := 0; j < d; j++ {
			if diff := math.Abs(m.b.Get(i, j) - inv.Get(i, j)); diff > 1e-6 {
				t.Fatalf("B[%d,%d] = %g, dense T⁻¹ = %g", i, j, m.b.Get(i, j), inv.Get(i, j))
			}
		}
	}
}

// Property: θ = B·z holds for random update sequences of any shape.
func TestQuickThetaInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := New(DefaultConfig(1+r.Intn(4), 1+r.Intn(4), seed))
		if err != nil {
			return false
		}
		for step := 0; step < 30; step++ {
			m.update(r.Intn(m.d), r.Intn(m.d), r.Float64()*3)
		}
		want := m.b.MulVec(m.z)
		for i := 0; i < m.d; i++ {
			if math.Abs(m.theta[i]-want.Get(i)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTemperatureDecay(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap := tinySnapshot(t, 2, 2)
	t0 := m.Temperature()
	m.Decide(snap)
	want := t0 * math.Exp(-m.cfg.Epsilon)
	if math.Abs(m.Temperature()-want) > 1e-12 {
		t.Fatalf("temp after one step = %g, want %g", m.Temperature(), want)
	}
	// Decay must floor rather than reach zero.
	for i := 0; i < 10000; i++ {
		m.Decide(snap)
	}
	if m.Temperature() <= 0 {
		t.Fatal("temperature reached zero")
	}
}

// tinySnapshot builds a minimal world through the simulator to get a
// consistent snapshot: nVMs VMs at low load on nHosts hosts.
func tinySnapshot(t testing.TB, nVMs, nHosts int) *sim.Snapshot {
	t.Helper()
	return tinySnapshotN(t, nVMs, nHosts)
}

// tinySnapshotN is the sized-snapshot helper: a one-step simulated world of
// nVMs lightly-loaded VMs round-robined over nHosts hosts. Every VM runs at
// 10% utilisation, which leaves each host under the underload threshold and
// guarantees the learner sees consolidation candidates — tests that need
// Decide to actually produce migrations rely on that.
func tinySnapshotN(t testing.TB, nVMs, nHosts int) *sim.Snapshot {
	t.Helper()
	var snap *sim.Snapshot
	cfg := tinyConfig(t, nVMs, nHosts, 0.1)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&snapGrabber{out: &snap}); err != nil {
		t.Fatal(err)
	}
	return snap
}

// snapGrabber captures a deep-enough copy of the final snapshot.
type snapGrabber struct {
	out **sim.Snapshot
}

func (snapGrabber) Name() string { return "grab" }

func (g *snapGrabber) Decide(s *sim.Snapshot) []sim.Migration {
	c := *s
	c.VMHost = append([]int(nil), s.VMHost...)
	c.VMUtil = append([]float64(nil), s.VMUtil...)
	c.VMMIPS = append([]float64(nil), s.VMMIPS...)
	c.HostUtil = append([]float64(nil), s.HostUtil...)
	c.HostVMs = make([][]int, len(s.HostVMs))
	for i := range s.HostVMs {
		c.HostVMs[i] = append([]int(nil), s.HostVMs[i]...)
	}
	c.HostHistory = make([][]float64, len(s.HostHistory))
	for i := range s.HostHistory {
		c.HostHistory[i] = append([]float64(nil), s.HostHistory[i]...)
	}
	*g.out = &c
	return nil
}

func tinyConfig(t testing.TB, nVMs, nHosts int, util float64) sim.Config {
	t.Helper()
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := make([]sim.VMSpec, nVMs)
	traces := make([]workload.Trace, nVMs)
	for i := range vms {
		vms[i] = sim.VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
		traces[i] = workload.Trace{util}
	}
	return sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
		InitialPlacement: sim.PlacementRoundRobin,
	}
}

func TestDecidePanicsOnMismatchedWorld(t *testing.T) {
	m, err := New(DefaultConfig(5, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap := tinySnapshot(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on N×M mismatch")
		}
	}()
	m.Decide(snap)
}

func TestQInitiallyZero(t *testing.T) {
	m, err := New(DefaultConfig(3, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if q := m.Q(mdp.Action{VM: 2, Host: 3}); q != 0 {
		t.Fatalf("fresh Q = %g, want 0", q)
	}
	if m.QTableNNZ() != 0 {
		t.Fatalf("fresh Q-table NNZ = %d, want 0", m.QTableNNZ())
	}
}

// TestEndToEndLearningRun drives Megh through a real simulation and checks
// the structural properties the paper claims: migrations bounded by the 2%
// cap, no infeasible proposals, and a growing Q-table.
func TestEndToEndLearningRun(t *testing.T) {
	const nVMs, nHosts, steps = 20, 10, 120
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(3)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := sim.PlanetLabHosts(nHosts)
	if err != nil {
		t.Fatal(err)
	}
	vms, err := sim.PlanetLabVMs(nVMs, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(nVMs, nHosts, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	maxPerStep := int(math.Ceil(0.02 * nVMs))
	for _, sm := range res.Steps {
		if sm.Migrations > maxPerStep {
			t.Fatalf("step %d migrated %d VMs, cap is %d", sm.Step, sm.Migrations, maxPerStep)
		}
		if sm.Rejected != 0 {
			t.Fatalf("step %d: Megh proposed %d infeasible migrations", sm.Step, sm.Rejected)
		}
	}
	hist := m.NNZHistory()
	if len(hist) != steps {
		t.Fatalf("NNZ history length %d, want %d", len(hist), steps)
	}
	if hist[steps-1] == 0 {
		t.Fatal("Q-table never grew over a burst-heavy run")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i] < hist[i-1] {
			t.Fatalf("Q-table shrank at step %d: %d → %d", i, hist[i-1], hist[i])
		}
	}
	if res.TotalMigrations() == 0 {
		t.Fatal("Megh never migrated despite overloads in the trace")
	}
}

func TestMeghRespondsToOverload(t *testing.T) {
	// One host saturated by two hot VMs, plenty of cold hosts. Within a
	// few steps Megh must move at least one VM off the overloaded host.
	const nVMs, nHosts = 2, 4
	lin, _ := power.NewLinear("test", 100, 200)
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 2000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := make([]sim.VMSpec, nVMs)
	traces := make([]workload.Trace, nVMs)
	for i := range vms {
		vms[i] = sim.VMSpec{MIPS: 1000, RAMMB: 512, BandwidthMbps: 100}
		tr := make(workload.Trace, 30)
		for k := range tr {
			tr[k] = 0.95
		}
		traces[i] = tr
	}
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces,
		InitialPlacement: sim.PlacementFirstFit, // both VMs land on host 0 → 95% util
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(nVMs, nHosts, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations() == 0 {
		t.Fatal("Megh never addressed a persistently overloaded host")
	}
	// After resolution the overload should stop recurring for most steps.
	overloadedLate := 0
	for _, sm := range res.Steps[10:] {
		overloadedLate += sm.OverloadedHosts
	}
	if overloadedLate > 10 {
		t.Fatalf("overload persisted: %d overloaded host-steps after step 10", overloadedLate)
	}
}

func TestSampleDestinationGreedyAtLowTemperature(t *testing.T) {
	// Plant Q values so one destination is clearly cheapest; with a tiny
	// temperature the sampler must pick it (Algorithm 2's exploitation
	// limit).
	m, err := New(DefaultConfig(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.temp = 1e-9
	// VM 0's row: host 0 cost 5, host 1 cost 1 (min), host 2 cost 9.
	m.theta[mdp.Action{VM: 0, Host: 0}.Index(3)] = 5
	m.theta[mdp.Action{VM: 0, Host: 1}.Index(3)] = 1
	m.theta[mdp.Action{VM: 0, Host: 2}.Index(3)] = 9
	snap := tinySnapshot(t, 2, 3)
	m.refreshHostAggregates(snap)
	for trial := 0; trial < 20; trial++ {
		dest, _ := m.sampleDestination(snap, candidate{vm: 0})
		if dest != 1 {
			t.Fatalf("trial %d: low-temp sample chose host %d, want greedy 1", trial, dest)
		}
	}
}

func TestSampleDestinationExploresAtHighTemperature(t *testing.T) {
	m, err := New(DefaultConfig(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.temp = 1e6
	m.theta[mdp.Action{VM: 0, Host: 1}.Index(3)] = 50
	snap := tinySnapshot(t, 2, 3)
	seen := make(map[int]bool)
	m.refreshHostAggregates(snap)
	for trial := 0; trial < 200; trial++ {
		dest, _ := m.sampleDestination(snap, candidate{vm: 0})
		seen[dest] = true
	}
	// Hosts 0 and 1 are active (round-robin placement of 2 VMs on 3
	// hosts); host 2 sleeps and a non-overload candidate may not wake it.
	if len(seen) != 2 || !seen[0] || !seen[1] {
		t.Fatalf("high-temp sampling visited %v, want the two active hosts", seen)
	}
}

func TestSampleDestinationOverloadMayWakeSleepingHostAsFallback(t *testing.T) {
	// Give the VMs demands so large that only the sleeping host can
	// absorb a shed VM without itself crossing β.
	m, err := New(DefaultConfig(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.temp = 1e6
	snap := tinySnapshot(t, 2, 3)
	for j := range snap.VMMIPS {
		snap.VMMIPS[j] = 0.6 * snap.HostSpecs[0].MIPS
		snap.VMUtil[j] = snap.VMMIPS[j] / snap.VMSpecs[j].MIPS
	}
	m.refreshHostAggregates(snap)
	sawSleeping := false
	for trial := 0; trial < 100; trial++ {
		dest, _ := m.sampleDestination(snap, candidate{vm: 0, reason: trace.ReasonOverload})
		if dest == 2 {
			sawSleeping = true
		}
		if dest == 1 {
			t.Fatal("overload shed chose a destination that would itself overload")
		}
	}
	if !sawSleeping {
		t.Fatal("overload fallback never woke the sleeping host despite no active fit")
	}
}

func TestObserveBeforeAnyDecideIsHarmless(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(&sim.Feedback{StepCost: 3})
	snap := tinySnapshot(t, 2, 2)
	m.Decide(snap) // must not panic with cost but no pending actions
}

func BenchmarkMeghDecide(b *testing.B) {
	const nVMs, nHosts = 150, 100
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(3)
		c.Steps = 4
		return c
	}(), nVMs)
	if err != nil {
		b.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 2)
	s, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(DefaultConfig(nVMs, nHosts, 7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFitsExcludesFailedHosts is the regression test for the failed-host
// destination bug: fits must never admit a failed host, in any mode, even
// when capacity-wise it is the best destination.
func TestFitsExcludesFailedHosts(t *testing.T) {
	m, err := New(DefaultConfig(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap := tinySnapshot(t, 2, 3)
	snap.HostFailed = []bool{false, true, false}
	m.refreshHostAggregates(snap)
	if m.fits(snap, 0, 1, true) {
		t.Fatal("fits admitted a failed host (activeOnly=true)")
	}
	if m.fits(snap, 0, 1, false) {
		t.Fatal("fits admitted a failed host (activeOnly=false)")
	}
	// Healthy hosts remain admissible under the same aggregates.
	if !m.fits(snap, 0, 0, true) {
		t.Fatal("fits rejected a healthy active host")
	}
}

// TestSampleDestinationAvoidsFailedHost plants Q values that make the
// failed host the greedy choice; the sampler must still never pick it.
func TestSampleDestinationAvoidsFailedHost(t *testing.T) {
	m, err := New(DefaultConfig(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.temp = 1e-9 // exploitation limit: always take the min-Q destination
	// VM 0 lives on host 0; host 1 (failed) gets the lowest cost.
	m.theta[mdp.Action{VM: 0, Host: 0}.Index(3)] = 5
	m.theta[mdp.Action{VM: 0, Host: 1}.Index(3)] = -10
	m.theta[mdp.Action{VM: 0, Host: 2}.Index(3)] = 1
	snap := tinySnapshot(t, 2, 3)
	snap.HostFailed = []bool{false, true, false}
	m.refreshHostAggregates(snap)
	for trial := 0; trial < 50; trial++ {
		if dest, _ := m.sampleDestination(snap, candidate{vm: 0, reason: trace.ReasonOverload}); dest == 1 {
			t.Fatalf("trial %d: sampler chose the failed host", trial)
		}
	}
}

// TestMeghDoesNotProposeFailedHostsEndToEnd drives Megh through a run with
// a long outage on a capacious host; with the fits guard every proposal
// stays feasible (pre-fix, proposals into the failed host were rejected by
// the simulator and silently burned the migration budget).
func TestMeghDoesNotProposeFailedHostsEndToEnd(t *testing.T) {
	const nVMs, nHosts, steps = 12, 6, 80
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(4)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 2)
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Seed: 3,
		Failures: []sim.Failure{{Host: 1, From: 10, Until: 70}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(nVMs, nHosts, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range res.Steps {
		if sm.Rejected != 0 {
			t.Fatalf("step %d: %d proposals rejected (failed-host destinations?)",
				sm.Step, sm.Rejected)
		}
	}
}

// TestObserveReconcilesRejectedActions is the regression test for the
// pending/feedback reconciliation: a rejected migration must be dropped
// from the pending LSPI actions and receive no share of the interval cost.
func TestObserveReconcilesRejectedActions(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	aKept := mdp.Action{VM: 0, Host: 1}.Index(2)     // executed migration
	aRejected := mdp.Action{VM: 1, Host: 0}.Index(2) // rejected migration
	m.pending = []int{aKept, aRejected}
	m.pendingTotal = 2
	m.Observe(&sim.Feedback{
		Step:     0,
		StepCost: 5,
		Executed: []sim.Migration{{VM: 0, Dest: 1}},
		Rejected: []sim.Migration{{VM: 1, Dest: 0}},
	})
	if len(m.pending) != 1 || m.pending[0] != aKept {
		t.Fatalf("pending after reconcile = %v, want [%d]", m.pending, aKept)
	}
	// The next Decide completes the update: the rejected action accrues
	// nothing, and the survivor gets its pre-reconcile share — the cost was
	// generated while two actions were intended, so the survivor's slice is
	// stepCost/2, not the whole interval (the cost-share skew bug gave it
	// all 5).
	m.Decide(tinySnapshot(t, 2, 2))
	if got := m.z.Get(aRejected); got != 0 {
		t.Fatalf("rejected action accrued cost z=%g, want 0", got)
	}
	if got := m.z.Get(aKept); got != 2.5 {
		t.Fatalf("executed action accrued z=%g, want the pre-reconcile share 2.5", got)
	}
}

// TestCostShareLegacyPendingFallsBack pins the compatibility path: a learner
// whose pending predates pendingTotal (a legacy checkpoint restores it as
// zero) divides by the surviving count, the historical behaviour.
func TestCostShareLegacyPendingFallsBack(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	a := mdp.Action{VM: 0, Host: 1}.Index(2)
	m.pending = []int{a} // pendingTotal left at zero, as a legacy restore would
	m.Observe(&sim.Feedback{Step: 0, StepCost: 3})
	m.Decide(tinySnapshot(t, 2, 2))
	if got := m.z.Get(a); got != 3 {
		t.Fatalf("legacy pending accrued z=%g, want the full cost 3", got)
	}
}

// TestInstrumentMirrorsLearnerInternals checks the obs wiring: after a
// Decide, the gauges track NNZ and temperature and the decide histogram has
// one observation; after a rejection-bearing Observe the counter moves.
func TestInstrumentMirrorsLearnerInternals(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.Instrument(reg)
	snap := tinySnapshot(t, 2, 2)
	m.Decide(snap)
	if got := reg.Histogram("megh_decide_seconds", "", nil).Count(); got != 1 {
		t.Fatalf("decide histogram count = %d, want 1", got)
	}
	if got := reg.Gauge("megh_temperature", "", nil).Value(); got != m.Temperature() {
		t.Fatalf("temperature gauge = %g, want %g", got, m.Temperature())
	}
	if got := reg.Gauge("megh_qtable_nnz", "", nil).Value(); got != float64(m.QTableNNZ()) {
		t.Fatalf("nnz gauge = %g, want %d", got, m.QTableNNZ())
	}
	m.pending = []int{mdp.Action{VM: 1, Host: 0}.Index(2)}
	m.Observe(&sim.Feedback{StepCost: 1, Rejected: []sim.Migration{{VM: 1, Dest: 0}}})
	if got := reg.Counter("megh_actions_rejected_total", "", nil).Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}
