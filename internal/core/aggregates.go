package core

import (
	"math"
	"sort"

	"megh/internal/sim"
)

// This file holds snapshot-delta aggregate reuse: refreshHostAggregates
// used to rebuild every per-host feasibility table from scratch on every
// Decide — O(N+M) of float adds that, at 10k-host grids, dwarf the decision
// itself. Three reuse tiers now sit in front of the full rebuild:
//
//   - trusted: inside one DecideBatch call, an item whose *Snapshot pointer
//     equals the previous item's is reading the same memory the aggregates
//     were just built from, so nothing is recomputed at all (the candidate
//     base set is reused too). The trust window is scoped by aggEpoch,
//     which every non-batch Decide bumps — a simulator mutating one
//     snapshot in place between Decide calls can never hit this tier.
//   - delta: a content diff of VM placement/size against privately stored
//     previous values marks dirty hosts (old and new host of any changed
//     VM); dirty hosts' sums are zeroed and recomputed by a second VM-major
//     pass restricted to them. Because that pass adds each dirty host's
//     VMs in the same ascending-VM order the full rebuild uses, the sums
//     are bitwise identical to a rebuild's — float addition is not
//     associative, so subtract-then-readd patching would NOT be.
//   - rebuild: the historical full pass, taken on the first call, when a
//     host failure is (or was) present, or when aggregate reuse is
//     disabled (SetAggregateReuse(false), the differential-test baseline).
//
// Speculative per-step mutations (chooseFromCandidates charging a chosen
// destination) are recorded in an undo log that restores the exact
// pre-mutation values — again because (x+y)−y is not bitwise x — so the
// next delta/trusted refresh starts from the clean snapshot-derived state.

// aggUndo records one host's aggregate state before a speculative charge.
type aggUndo struct {
	host      int
	ram, mips float64
	active    bool
	pen       float64 // penActive before the charge
}

// SetAggregateReuse toggles snapshot-delta aggregate reuse (default on).
// With reuse off every refresh is a full rebuild — the reference behaviour
// the differential tests compare against. Runtime-only state, like the
// scan-kernel selection: not part of Config, not persisted, and unable to
// change any decision.
func (m *Megh) SetAggregateReuse(on bool) {
	m.aggReuse = on
	m.aggValid = false
	m.candCacheOK = false
}

// refreshHostAggregates (re)establishes the flat per-host feasibility
// tables for snapshot s, choosing the cheapest sound tier (see the file
// comment). Postcondition, identical across tiers bit for bit: hostRAM /
// hostMIPS hold each host's committed RAM and demanded MIPS, hostActive /
// hostBlocked and their penalty mirrors match the snapshot, activeList is
// the ascending list of active hosts, and all speculative charges from the
// previous step are rolled back.
func (m *Megh) refreshHostAggregates(s *sim.Snapshot) {
	if !m.aggReuse {
		m.undoLog = m.undoLog[:0]
		m.candCacheOK = false
		m.aggSnap = nil
		m.rebuildHostAggregates(s)
		return
	}
	if m.aggValid {
		m.undoSpeculative()
		if s == m.aggSnap && m.aggSnapEpoch == m.aggEpoch {
			// Trusted: same pointer within the same batch window; the
			// aggregates (and the cached candidate base set) still describe
			// exactly this memory.
			return
		}
	}
	m.candCacheOK = false
	if !m.aggValid || !m.deltaHostAggregates(s) {
		m.rebuildHostAggregates(s)
	}
	m.aggSnap = s
	m.aggSnapEpoch = m.aggEpoch
	m.aggValid = true
}

// rebuildHostAggregates is the full O(N+M) pass, and the bitwise reference
// the delta tier reproduces: per-host zeroing and flag/capacity refresh,
// then one ascending-VM accumulation.
func (m *Megh) rebuildHostAggregates(s *sim.Snapshot) {
	failed := len(s.HostFailed) > 0
	anyBlocked := false
	inf := math.Inf(1)
	m.activeList = m.activeList[:0]
	for i := 0; i < s.NumHosts(); i++ {
		m.hostRAM[i] = 0
		m.hostMIPS[i] = 0
		nVMs := len(s.HostVMs[i])
		m.hostVMCount[i] = nVMs
		act := nVMs > 0
		m.hostActive[i] = act
		m.hostRAMCap[i] = s.HostSpecs[i].RAMMB
		m.hostMIPSCap[i] = s.HostSpecs[i].MIPS
		blk := failed && s.HostFailed[i]
		m.hostBlocked[i] = blk
		anyBlocked = anyBlocked || blk
		if blk {
			m.penAll[i] = inf
		} else {
			m.penAll[i] = 0
		}
		if blk || !act {
			m.penActive[i] = inf
		} else {
			m.penActive[i] = 0
		}
		if act {
			m.activeList = append(m.activeList, i)
		}
	}
	for j := 0; j < s.NumVMs(); j++ {
		h := s.VMHost[j]
		if h >= 0 { // dead slots (lifecycle runs) occupy nothing
			m.hostRAM[h] += s.VMSpecs[j].RAMMB
			m.hostMIPS[h] += s.VMMIPS[j]
		}
		m.prevVMHost[j] = h
		m.prevVMRAM[j] = s.VMSpecs[j].RAMMB
		m.prevVMMIPS[j] = s.VMMIPS[j]
	}
	m.aggAnyBlocked = anyBlocked
	m.prevHostSpecs = s.HostSpecs
}

// deltaHostAggregates patches the aggregates from the previous snapshot's
// state to s by content diff, returning false when only a full rebuild is
// sound (any host failure now or at the last rebuild — failures also flow
// into penalties and candidate blocking, and are rare enough that the
// rebuild is the right price). Capacities refresh by backing-array
// identity: a caller may reuse a HostSpecs slice across snapshots only with
// unchanged contents (the simulator's static specs), while per-request
// decoders allocate fresh slices, which the pointer test catches.
func (m *Megh) deltaHostAggregates(s *sim.Snapshot) bool {
	if m.aggAnyBlocked || anyFailed(s.HostFailed) {
		return false
	}
	if !sameHostSpecs(m.prevHostSpecs, s.HostSpecs) {
		for i := 0; i < s.NumHosts(); i++ {
			m.hostRAMCap[i] = s.HostSpecs[i].RAMMB
			m.hostMIPSCap[i] = s.HostSpecs[i].MIPS
		}
		m.prevHostSpecs = s.HostSpecs
	}
	n := s.NumVMs()
	m.dirtyEpoch++
	m.dirtyHosts = m.dirtyHosts[:0]
	for j := 0; j < n; j++ {
		nh := s.VMHost[j]
		nr := s.VMSpecs[j].RAMMB
		nm := s.VMMIPS[j]
		if nh == m.prevVMHost[j] && nr == m.prevVMRAM[j] && nm == m.prevVMMIPS[j] {
			continue
		}
		if ph := m.prevVMHost[j]; ph >= 0 {
			m.markDirty(ph)
		}
		if nh >= 0 {
			m.markDirty(nh)
		}
		m.prevVMHost[j] = nh
		m.prevVMRAM[j] = nr
		m.prevVMMIPS[j] = nm
	}
	if len(m.dirtyHosts) == 0 {
		return true
	}
	for _, h := range m.dirtyHosts {
		m.hostRAM[h] = 0
		m.hostMIPS[h] = 0
		m.hostVMCount[h] = 0
	}
	// Recompute dirty hosts' sums in ascending-VM order — the exact
	// addition sequence the full rebuild would use, so the patched sums are
	// bitwise identical to a rebuild's.
	for j := 0; j < n; j++ {
		h := s.VMHost[j]
		if h >= 0 && m.dirtyStamp[h] == m.dirtyEpoch {
			m.hostRAM[h] += s.VMSpecs[j].RAMMB
			m.hostMIPS[h] += s.VMMIPS[j]
			m.hostVMCount[h]++
		}
	}
	inf := math.Inf(1)
	for _, h := range m.dirtyHosts {
		act := m.hostVMCount[h] > 0
		if act == m.hostActive[h] {
			continue
		}
		m.hostActive[h] = act
		if act {
			m.penActive[h] = 0
			m.activeInsert(h)
		} else {
			m.penActive[h] = inf
			m.activeRemove(h)
		}
	}
	return true
}

// markDirty stamps host h dirty for the current delta pass. Epoch stamps
// avoid an O(M) clear per refresh.
func (m *Megh) markDirty(h int) {
	if m.dirtyStamp[h] != m.dirtyEpoch {
		m.dirtyStamp[h] = m.dirtyEpoch
		m.dirtyHosts = append(m.dirtyHosts, h)
	}
}

// speculate charges VM vm's chosen migration against destination host dest
// so later candidates this step see the post-move aggregates, logging the
// pre-charge values for exact restoration at the next refresh.
func (m *Megh) speculate(s *sim.Snapshot, vm, dest int) {
	m.undoLog = append(m.undoLog, aggUndo{
		host:   dest,
		ram:    m.hostRAM[dest],
		mips:   m.hostMIPS[dest],
		active: m.hostActive[dest],
		pen:    m.penActive[dest],
	})
	m.hostRAM[dest] += s.VMSpecs[vm].RAMMB
	m.hostMIPS[dest] += s.VMMIPS[vm]
	if !m.hostActive[dest] {
		m.hostActive[dest] = true
		m.penActive[dest] = 0
		m.activeInsert(dest)
	}
}

// undoSpeculative rolls the speculative charges back in reverse order,
// restoring the exact recorded values — (x+y)−y is not bitwise x, so
// arithmetic reversal would poison the delta tier's bitwise guarantee.
func (m *Megh) undoSpeculative() {
	for i := len(m.undoLog) - 1; i >= 0; i-- {
		u := m.undoLog[i]
		m.hostRAM[u.host] = u.ram
		m.hostMIPS[u.host] = u.mips
		if !u.active && m.hostActive[u.host] {
			m.hostActive[u.host] = false
			m.activeRemove(u.host)
		}
		m.penActive[u.host] = u.pen
	}
	m.undoLog = m.undoLog[:0]
}

// activeInsert adds host h to the sorted active list.
func (m *Megh) activeInsert(h int) {
	i := sort.SearchInts(m.activeList, h)
	if i < len(m.activeList) && m.activeList[i] == h {
		return
	}
	m.activeList = append(m.activeList, 0)
	copy(m.activeList[i+1:], m.activeList[i:])
	m.activeList[i] = h
}

// activeRemove drops host h from the sorted active list.
func (m *Megh) activeRemove(h int) {
	i := sort.SearchInts(m.activeList, h)
	if i < len(m.activeList) && m.activeList[i] == h {
		m.activeList = append(m.activeList[:i], m.activeList[i+1:]...)
	}
}

// anyFailed reports whether any host is marked failed.
func anyFailed(failed []bool) bool {
	for _, f := range failed {
		if f {
			return true
		}
	}
	return false
}

// sameHostSpecs reports whether two spec slices share identical backing
// (same length, same first element address).
func sameHostSpecs(a, b []sim.HostSpec) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}
