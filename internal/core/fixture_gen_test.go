package core

import (
	"os"
	"testing"

	"megh/internal/sim"
)

// TestGenerateCheckpointFixture regenerates the committed checkpoint fixture.
// Run manually with MEGH_WRITE_FIXTURE=1; the committed file was produced by
// the original map-backed sparse implementation and must not be regenerated
// casually — it is the backward-compatibility anchor for LoadState.
func TestGenerateCheckpointFixture(t *testing.T) {
	if os.Getenv("MEGH_WRITE_FIXTURE") == "" {
		t.Skip("set MEGH_WRITE_FIXTURE=1 to regenerate the checkpoint fixture")
	}
	cfg := tinyConfig(t, 12, 6, 0.5)
	cfg.Steps = 60
	for i := range cfg.Traces {
		tr := make([]float64, cfg.Steps)
		for s := range tr {
			tr[s] = 0.15 + 0.7*float64((i+s)%6)/5
		}
		cfg.Traces[i] = tr
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(12, 6, 1234))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(m); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create("testdata/checkpoint_v1_mapbacked.gob")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.SaveState(f); err != nil {
		t.Fatal(err)
	}
	t.Logf("fixture written: temp=%g nnz=%d pending=%v", m.temp, m.b.NNZ(), m.pending)
}
