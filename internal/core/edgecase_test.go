package core

import (
	"bytes"
	"encoding/gob"
	"io"
	"math"
	"reflect"
	"testing"

	"megh/internal/obs"
	"megh/internal/sim"
	"megh/internal/sparse"
	"megh/internal/trace"
)

func TestValidateRejectsBadDeferParameters(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"nan-defer-threshold":      func(c *Config) { c.DeferThreshold = math.NaN() },
		"inf-defer-threshold":      func(c *Config) { c.DeferThreshold = math.Inf(1) },
		"negative-defer-threshold": func(c *Config) { c.DeferThreshold = -1 },
		"negative-defer-max-age":   func(c *Config) { c.DeferMaxAge = -1 },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(2, 2, 1)
			mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid defer parameter accepted")
			}
		})
	}
}

func TestDeferMaxAgeResolution(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.deferMaxAge(); got != DefaultDeferMaxAge {
		t.Fatalf("zero DeferMaxAge resolved to %d, want DefaultDeferMaxAge %d", got, DefaultDeferMaxAge)
	}
	cfg := DefaultConfig(2, 2, 1)
	cfg.DeferMaxAge = 3
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.deferMaxAge(); got != 3 {
		t.Fatalf("explicit DeferMaxAge resolved to %d, want 3", got)
	}
}

// TestInstrumentNilDetaches: a nil registry disables instrumentation, and a
// subsequent Decide must not touch the detached instruments.
func TestInstrumentNilDetaches(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.Instrument(reg)
	m.Instrument(nil)
	if m.metrics != nil {
		t.Fatal("nil registry left instruments attached")
	}
	m.Decide(tinySnapshot(t, 2, 2))
	if got := reg.Histogram("megh_decide_seconds", "", nil).Count(); got != 0 {
		t.Fatalf("detached registry still observed %d decides", got)
	}
}

// TestObserveReusesRejectedScratch: the second rejection-bearing Observe
// must reuse (clear) the scratch map the first one allocated.
func TestObserveReusesRejectedScratch(t *testing.T) {
	m := trainedLearner(t)
	snaps := snapshotStream(t, 6, 3, 2)
	fb := &sim.Feedback{StepCost: 0.2, Rejected: []sim.Migration{{VM: 0, Dest: 1}}}
	m.Decide(snaps[0])
	m.Observe(fb)
	if m.rejectedScratch == nil {
		t.Fatal("first rejection-bearing Observe did not allocate the scratch map")
	}
	m.Decide(snaps[1])
	m.Observe(fb)
}

// TestFitsExcludesBlockedAndInactiveHosts exercises the destination filter
// directly: a failed host is never a destination, and an empty host is
// excluded only from active-only scans.
func TestFitsExcludesBlockedAndInactiveHosts(t *testing.T) {
	m, err := New(DefaultConfig(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := tinySnapshot(t, 2, 3) // round-robin: hosts 0 and 1 hold a VM, host 2 is empty
	s.HostFailed = make([]bool, 3)
	s.HostFailed[1] = true
	m.refreshHostAggregates(s)
	if m.fits(s, 0, 1, false) {
		t.Fatal("failed host accepted as destination")
	}
	if m.fits(s, 0, 2, true) {
		t.Fatal("inactive host accepted in an active-only scan")
	}
	if !m.fits(s, 0, 2, false) {
		t.Fatal("healthy empty host rejected without active-only")
	}
}

// TestDecideRecordsTimingSpans: a Timings-enabled tracer switches Decide
// onto the span-recording path.
func TestDecideWithTimingsTracer(t *testing.T) {
	m, err := New(DefaultConfig(4, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.New(trace.Options{W: io.Discard, RingSize: -1, Timings: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Trace(tr)
	m.Decide(tinySnapshot(t, 4, 3))
	if m.spans == nil {
		t.Fatal("Timings tracer did not arm span recording")
	}
}

func TestXrandStateEdgeCases(t *testing.T) {
	x := newXrand(1)
	x.setState(0, 0)
	if s0, s1 := x.state(); s0|s1 == 0 {
		t.Fatal("all-zero state accepted; the generator would be stuck")
	}
	if v := x.Int63(); v < 0 {
		t.Fatalf("Int63 = %d, want non-negative", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	x.Intn(0)
}

// reencode round-trips a (possibly corrupted) persisted image back into the
// byte form LoadState consumes.
func reencode(t *testing.T, st persistedState) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// decodeState extracts the persisted image of m for corruption tests.
func decodeState(t *testing.T, m *Megh) persistedState {
	t.Helper()
	var buf bytes.Buffer
	if err := m.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	var st persistedState
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLoadStateRejectsCorruptSparseState(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	base := decodeState(t, m)
	d := base.B.Dim
	for name, mutate := range map[string]func(*persistedState){
		"corrupt-B": func(st *persistedState) { st.B.Dim = -1 },
		"corrupt-z": func(st *persistedState) {
			st.Z = sparse.VectorState{Dim: d, Index: []int{d + 1}, Value: []float64{1}}
		},
		"corrupt-theta": func(st *persistedState) {
			st.Theta = sparse.VectorState{Dim: d, Index: []int{-1}, Value: []float64{1}}
		},
		// A self-consistent matrix of the wrong dimension must be refused,
		// not silently adopted.
		"dim-mismatch": func(st *persistedState) { st.B.Dim = d + 1 },
	} {
		t.Run(name, func(t *testing.T) {
			st := base
			mutate(&st)
			if _, err := LoadState(reencode(t, st)); err == nil {
				t.Fatal("corrupt persisted state loaded without error")
			}
		})
	}
}

// TestLoadStateTrimsLegacyNNZHistory: a checkpoint written before the
// history ring existed may carry an arbitrarily long series; loading keeps
// only the newest cap entries.
func TestLoadStateTrimsLegacyNNZHistory(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.NNZHistoryCap = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeState(t, m)
	st.NNZHistory = []int{1, 2, 3, 4, 5, 6, 7}
	got, err := LoadState(reencode(t, st))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(got.NNZHistory(), want) {
		t.Fatalf("restored history %v, want newest-cap %v", got.NNZHistory(), want)
	}
}

// TestLoadStateMergesDuplicateDeferredEntries: duplicate (a, b) rows in a
// hand-edited image collapse into one queue slot, exactly as deferPush
// would have produced.
func TestLoadStateMergesDuplicateDeferredEntries(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.DeferThreshold = math.MaxFloat64
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.deferPush(1, 2, 0.5)
	st := decodeState(t, m)
	st.Deferred = append(st.Deferred, deferredUpdate{A: 1, B: 2, N: 2, C: 0.25})
	got, err := LoadState(reencode(t, st))
	if err != nil {
		t.Fatal(err)
	}
	if got.DeferredUpdates() != 3 {
		t.Fatalf("restored %d deferred transitions, want 3 merged", got.DeferredUpdates())
	}
	want := []deferredUpdate{{A: 1, B: 2, N: 3, C: 0.75}}
	if !reflect.DeepEqual(got.deferQ, want) {
		t.Fatalf("restored queue %+v, want %+v", got.deferQ, want)
	}
}
