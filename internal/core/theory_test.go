package core

import (
	"math"
	"testing"
)

// TestLSPIFixedPointRecurringAction validates the learner's value
// machinery against the theory (Theorem 2): if the policy keeps taking the
// same action a with constant per-stage cost c, the LSTD fixed point for
// that action is the discounted sum θ_a → c/(1−γ).
func TestLSPIFixedPointRecurringAction(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1) // d = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		a = 1
		c = 0.8
	)
	want := c / (1 - cfg.Gamma) // 1.6 for γ = 0.5
	for i := 0; i < 20000; i++ {
		m.update(a, a, c)
	}
	if got := m.theta[a]; math.Abs(got-want) > 0.01*want {
		t.Fatalf("θ_a = %g after 20k recurrences, want → %g = c/(1−γ)", got, want)
	}
	// Untouched actions stay at zero.
	for _, other := range []int{0, 2, 3} {
		if got := m.theta[other]; got != 0 {
			t.Fatalf("θ[%d] = %g, want 0 (never visited)", other, got)
		}
	}
}

// TestLSPIFixedPointTwoActionCycle: alternating a→b→a→… with costs c_a and
// c_b has the coupled fixed point
//
//	θ_a = c_a + γ·θ_b,  θ_b = c_b + γ·θ_a
//	⇒ θ_a = (c_a + γ·c_b)/(1 − γ²).
func TestLSPIFixedPointTwoActionCycle(t *testing.T) {
	cfg := DefaultConfig(2, 3, 1) // d = 6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		a, b   = 0, 4
		ca, cb = 1.0, 0.2
	)
	g := cfg.Gamma
	wantA := (ca + g*cb) / (1 - g*g)
	wantB := (cb + g*ca) / (1 - g*g)
	for i := 0; i < 20000; i++ {
		m.update(a, b, ca)
		m.update(b, a, cb)
	}
	if got := m.theta[a]; math.Abs(got-wantA) > 0.01*wantA {
		t.Fatalf("θ_a = %g, want → %g", got, wantA)
	}
	if got := m.theta[b]; math.Abs(got-wantB) > 0.01*wantB {
		t.Fatalf("θ_b = %g, want → %g", got, wantB)
	}
}

// TestLSPIDiscountZeroIsMyopic: with γ = 0 the fixed point is the plain
// average cost of the action.
func TestLSPIDiscountZeroIsMyopic(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.Gamma = 0
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate costs 0.4 and 0.8 → average 0.6.
	for i := 0; i < 10000; i++ {
		m.update(2, 2, 0.4)
		m.update(2, 2, 0.8)
	}
	if got := m.theta[2]; math.Abs(got-0.6) > 0.01 {
		t.Fatalf("θ = %g with γ = 0, want the average cost 0.6", got)
	}
}

// TestLSPIValuesOrderActions: after equal exposure, the cheaper of two
// recurring actions must have the lower θ — the property Algorithm 2's
// Boltzmann selection relies on.
func TestLSPIValuesOrderActions(t *testing.T) {
	m, err := New(DefaultConfig(3, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	const cheap, dear = 1, 7
	for i := 0; i < 5000; i++ {
		m.update(cheap, cheap, 0.1)
		m.update(dear, dear, 0.9)
	}
	if !(m.theta[cheap] < m.theta[dear]) {
		t.Fatalf("θ_cheap = %g not below θ_dear = %g",
			m.theta[cheap], m.theta[dear])
	}
}
