package core

import (
	"math"

	"megh/internal/sim"
	"megh/internal/sparse"
)

// This file holds the candidate-scoring sweep (scanRow) and its kernels.
// The scalar kernel is the historical loop, kept verbatim as the reference;
// the unrolled kernels are 4-wide blocked rewrites that hoist bounds checks
// and replace the blocked/active branches with a branch-free penalty mask,
// and are pinned bitwise-identical to the scalar kernel by
// TestScanKernelsBitwiseIdentical / TestScanKernelDecisionsIdentical.
//
// Bitwise identity rests on three IEEE-754 facts, each load-bearing:
//
//   - x + 0 == x bitwise for every finite x (the aggregates are finite by
//     Config/StateRequest validation), so folding a 0-penalty into the RAM
//     test changes nothing, while a +Inf penalty forces the test infeasible
//     — exactly what the blocked/inactive branches did.
//   - The MIPS test keeps its division form, (hostMIPS[k]+mipsJ)/mipsCap[k],
//     never the multiplied-out one: a/b > c and a > c*b round differently.
//   - The row minimum uses the same strict-less, sequential comparison
//     order, via sparse.GatherMin.

// ScanKernel selects the scanRow implementation.
type ScanKernel int

const (
	// ScanAuto (the default) picks the unrolled kernel for worlds with at
	// least unrolledMinHosts hosts and the scalar one below that, where the
	// mask setup outweighs the sweep.
	ScanAuto ScanKernel = iota
	// ScanScalar forces the historical scalar sweep.
	ScanScalar
	// ScanUnrolled forces the 4-wide unrolled sweep.
	ScanUnrolled
)

// unrolledMinHosts is the ScanAuto crossover: below it the scalar loop wins.
const unrolledMinHosts = 16

// SetScanKernel selects the scanRow kernel at runtime. The selection is
// runtime-only state: it is not part of Config and is not persisted in
// checkpoints (a restored learner starts back at ScanAuto), which it does
// not need to be — every kernel is bitwise-identical, so the choice can
// never change a decision, only its cost.
func (m *Megh) SetScanKernel(k ScanKernel) { m.scanKernel = k }

// scanRow is the candidate-scoring sweep: one pass over VM j's contiguous
// θ row θ[base:base+M], gathering the feasible destinations, their Q
// values and the row minimum. Feasibility reads only the flat per-host
// aggregate arrays refreshHostAggregates filled (committed RAM/MIPS,
// capacities, active/blocked flags and their penalty mirrors), with
// arithmetic identical to fits. Returned slices alias the learner's
// scratch. This dispatcher picks a kernel; every kernel returns bitwise
// identical results.
func (m *Megh) scanRow(s *sim.Snapshot, j, cur, base int, activeOnly bool) (feasible []int, qs []float64, minQ float64) {
	switch m.scanKernel {
	case ScanScalar:
		return m.scanRowScalar(s, j, cur, base, activeOnly)
	case ScanUnrolled:
	default: // ScanAuto
		if m.cfg.NumHosts < unrolledMinHosts {
			return m.scanRowScalar(s, j, cur, base, activeOnly)
		}
	}
	if activeOnly && m.hostActive[cur] {
		return m.scanRowActive(s, j, cur, base)
	}
	return m.scanRowUnrolled(s, j, cur, base, activeOnly)
}

// scanRowScalar is the historical scalar sweep — the reference the
// unrolled kernels are differential-tested against.
func (m *Megh) scanRowScalar(s *sim.Snapshot, j, cur, base int, activeOnly bool) (feasible []int, qs []float64, minQ float64) {
	n := m.cfg.NumHosts
	row := m.theta[base : base+n : base+n]
	ramJ := s.VMSpecs[j].RAMMB
	mipsJ := s.VMMIPS[j]
	beta := s.OverloadThreshold
	hostRAM := m.hostRAM[:n]
	hostMIPS := m.hostMIPS[:n]
	ramCap := m.hostRAMCap[:n]
	mipsCap := m.hostMIPSCap[:n]
	blocked := m.hostBlocked[:n]
	active := m.hostActive[:n]
	feasible = m.feasibleScratch[:0]
	qs = m.qScratch[:0]
	minQ = math.Inf(1)
	for k := 0; k < n; k++ {
		if k != cur {
			if blocked[k] || (activeOnly && !active[k]) ||
				hostRAM[k]+ramJ > ramCap[k] ||
				(hostMIPS[k]+mipsJ)/mipsCap[k] > beta {
				continue
			}
		}
		q := row[k]
		feasible = append(feasible, k)
		qs = append(qs, q)
		if q < minQ {
			minQ = q
		}
	}
	m.feasibleScratch = feasible
	m.qScratch = qs
	return feasible, qs, minQ
}

// scanRowUnrolled is the 4-wide unrolled full-grid sweep. The penalty
// arrays (penAll for blocked hosts, penActive additionally for inactive
// ones) fold the boolean branches into the RAM comparison: +Inf makes the
// test infeasible, 0 leaves it bit-for-bit unchanged. The k == cur escape
// is OR'd per lane, mirroring the scalar loop's skip of all feasibility
// tests for the stay destination.
func (m *Megh) scanRowUnrolled(s *sim.Snapshot, j, cur, base int, activeOnly bool) (feasible []int, qs []float64, minQ float64) {
	n := m.cfg.NumHosts
	ramJ := s.VMSpecs[j].RAMMB
	mipsJ := s.VMMIPS[j]
	beta := s.OverloadThreshold
	hostRAM := m.hostRAM[:n:n]
	hostMIPS := m.hostMIPS[:n:n]
	ramCap := m.hostRAMCap[:n:n]
	mipsCap := m.hostMIPSCap[:n:n]
	pen := m.penAll
	if activeOnly {
		pen = m.penActive
	}
	pen = pen[:n:n]
	feasible = m.feasibleScratch[:0]
	k := 0
	for ; k+4 <= n; k += 4 {
		ok0 := k == cur || (!(hostRAM[k]+ramJ+pen[k] > ramCap[k]) &&
			!((hostMIPS[k]+mipsJ)/mipsCap[k] > beta))
		ok1 := k+1 == cur || (!(hostRAM[k+1]+ramJ+pen[k+1] > ramCap[k+1]) &&
			!((hostMIPS[k+1]+mipsJ)/mipsCap[k+1] > beta))
		ok2 := k+2 == cur || (!(hostRAM[k+2]+ramJ+pen[k+2] > ramCap[k+2]) &&
			!((hostMIPS[k+2]+mipsJ)/mipsCap[k+2] > beta))
		ok3 := k+3 == cur || (!(hostRAM[k+3]+ramJ+pen[k+3] > ramCap[k+3]) &&
			!((hostMIPS[k+3]+mipsJ)/mipsCap[k+3] > beta))
		if ok0 {
			feasible = append(feasible, k)
		}
		if ok1 {
			feasible = append(feasible, k+1)
		}
		if ok2 {
			feasible = append(feasible, k+2)
		}
		if ok3 {
			feasible = append(feasible, k+3)
		}
	}
	for ; k < n; k++ {
		if k == cur || (!(hostRAM[k]+ramJ+pen[k] > ramCap[k]) &&
			!((hostMIPS[k]+mipsJ)/mipsCap[k] > beta)) {
			feasible = append(feasible, k)
		}
	}
	m.feasibleScratch = feasible
	qs, minQ = m.gatherRow(base, feasible)
	return feasible, qs, minQ
}

// scanRowActive is the activeOnly fast path at grid scale: instead of
// masking all M hosts it walks the sorted active-host list, which at the
// consolidation steady state is a small fraction of the grid. It is
// bitwise-equivalent to the full activeOnly sweep because an inactive host
// can never pass the active mask, cur is in the list (the dispatcher
// checked hostActive[cur]; it holds whenever the snapshot's VMHost and
// HostVMs agree, since VM j resides on cur), and the list is ascending —
// the same visit order, hence the same feasible sequence and the same
// minimum-comparison order. Active hosts satisfy the active test by
// construction, so the mask collapses to penAll (the blocked test).
func (m *Megh) scanRowActive(s *sim.Snapshot, j, cur, base int) (feasible []int, qs []float64, minQ float64) {
	n := m.cfg.NumHosts
	ramJ := s.VMSpecs[j].RAMMB
	mipsJ := s.VMMIPS[j]
	beta := s.OverloadThreshold
	hostRAM := m.hostRAM[:n:n]
	hostMIPS := m.hostMIPS[:n:n]
	ramCap := m.hostRAMCap[:n:n]
	mipsCap := m.hostMIPSCap[:n:n]
	pen := m.penAll[:n:n]
	list := m.activeList
	feasible = m.feasibleScratch[:0]
	i := 0
	for ; i+4 <= len(list); i += 4 {
		k0, k1, k2, k3 := list[i], list[i+1], list[i+2], list[i+3]
		ok0 := k0 == cur || (!(hostRAM[k0]+ramJ+pen[k0] > ramCap[k0]) &&
			!((hostMIPS[k0]+mipsJ)/mipsCap[k0] > beta))
		ok1 := k1 == cur || (!(hostRAM[k1]+ramJ+pen[k1] > ramCap[k1]) &&
			!((hostMIPS[k1]+mipsJ)/mipsCap[k1] > beta))
		ok2 := k2 == cur || (!(hostRAM[k2]+ramJ+pen[k2] > ramCap[k2]) &&
			!((hostMIPS[k2]+mipsJ)/mipsCap[k2] > beta))
		ok3 := k3 == cur || (!(hostRAM[k3]+ramJ+pen[k3] > ramCap[k3]) &&
			!((hostMIPS[k3]+mipsJ)/mipsCap[k3] > beta))
		if ok0 {
			feasible = append(feasible, k0)
		}
		if ok1 {
			feasible = append(feasible, k1)
		}
		if ok2 {
			feasible = append(feasible, k2)
		}
		if ok3 {
			feasible = append(feasible, k3)
		}
	}
	for ; i < len(list); i++ {
		k := list[i]
		if k == cur || (!(hostRAM[k]+ramJ+pen[k] > ramCap[k]) &&
			!((hostMIPS[k]+mipsJ)/mipsCap[k] > beta)) {
			feasible = append(feasible, k)
		}
	}
	m.feasibleScratch = feasible
	qs, minQ = m.gatherRow(base, feasible)
	return feasible, qs, minQ
}

// gatherRow fills qScratch with the feasible destinations' Q values and
// their minimum, in the same order and with the same comparison sequence
// as the scalar sweep's inline gather.
func (m *Megh) gatherRow(base int, feasible []int) ([]float64, float64) {
	if cap(m.qScratch) < len(feasible) {
		m.qScratch = make([]float64, len(feasible))
	}
	qs := m.qScratch[:len(feasible)]
	m.qScratch = qs
	minQ := sparse.GatherMin(qs, m.theta[base:base+m.cfg.NumHosts], feasible)
	return qs, minQ
}
