package core

import (
	"testing"

	"megh/internal/sim"
)

// The untraced decide path is contractually allocation-free once the scratch
// buffers have reached their high-water marks: a steady-state Decide with no
// pending cost (so no Sherman–Morrison update, whose Q-table growth is the
// one legitimate allocation source) must perform zero allocations.
func TestDecideSteadyStateAllocationFree(t *testing.T) {
	snap := tinySnapshot(t, 150, 100)
	m, err := New(DefaultConfig(150, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up with the full production cycle (Decide + cost feedback) so
	// every scratch buffer, Q-table row and θ entry the policy will touch
	// has been materialised.
	fb := sim.Feedback{StepCost: 0.5}
	for i := 0; i < 2000; i++ {
		m.Decide(snap)
		m.Observe(&fb)
	}
	m.haveCost = false
	allocs := testing.AllocsPerRun(200, func() {
		m.Decide(snap)
		m.haveCost = false // keep the LSPI update out of the measured path
	})
	if allocs != 0 {
		t.Fatalf("untraced Decide with no pending cost allocated %v/op, want 0", allocs)
	}
}

// With cost feedback flowing (the production path), allocations must stay
// amortised: the only allocation source is Q-table/scratch growth, which
// testing.AllocsPerRun's integer truncation reports as 0 when it happens
// less than once per call on average.
func TestDecideUpdatePathAllocationsAmortised(t *testing.T) {
	snap := tinySnapshot(t, 150, 100)
	m, err := New(DefaultConfig(150, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	fb := sim.Feedback{StepCost: 0.5}
	for i := 0; i < 2000; i++ {
		m.Decide(snap)
		m.Observe(&fb)
	}
	allocs := testing.AllocsPerRun(500, func() {
		m.Decide(snap)
		m.Observe(&fb)
	})
	if allocs > 1 {
		t.Fatalf("steady-state Decide+Observe averaged %v allocs/op, want ≤ 1 (amortised growth only)", allocs)
	}
}
