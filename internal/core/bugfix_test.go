package core

import (
	"bytes"
	"reflect"
	"testing"

	"megh/internal/sim"
	"megh/internal/trace"
)

// TestChooseFromCandidatesClipsToStayPut is the regression test for the
// phantom-transition bug: a candidate whose sampled move is clipped by the
// migration budget must be recorded as its stay-put action, never as the
// move that was not emitted. (End-to-end the budget cannot be exceeded —
// candidates() caps the decision set at the budget — so the clip branch is
// pinned here at the unit level, plus an every-step invariant check in
// TestPendingActionsAreEmittedOrStayPut.)
func TestChooseFromCandidatesClipsToStayPut(t *testing.T) {
	const nVMs, nHosts = 8, 4
	s := tinySnapshot(t, nVMs, nHosts)
	cands := make([]candidate, nVMs)
	for j := range cands {
		cands[j] = candidate{vm: j, reason: trace.ReasonUnderload}
	}
	mk := func() *Megh {
		m, err := New(DefaultConfig(nVMs, nHosts, 42))
		if err != nil {
			t.Fatal(err)
		}
		m.refreshHostAggregates(s)
		return m
	}

	// With an ample budget the untrained sampler (uniform over feasible
	// hosts) picks at least one real move — proving the zero-budget run
	// below actually exercises the clip, since both learners share a seed
	// and consume identical draws up to the first move.
	free, freeMigs := mk().chooseFromCandidates(s, cands, nVMs)
	if len(freeMigs) == 0 {
		t.Fatal("sampler never left the current host; the clip branch is untested")
	}
	if len(free) != nVMs {
		t.Fatalf("recorded %d actions for %d candidates", len(free), nVMs)
	}

	actions, migs := mk().chooseFromCandidates(s, cands, 0)
	if len(migs) != 0 {
		t.Fatalf("budget 0 emitted %d migrations", len(migs))
	}
	for i, act := range actions {
		if stay := cands[i].vm*nHosts + s.VMHost[cands[i].vm]; act != stay {
			t.Fatalf("candidate %d recorded action %d under budget 0, want stay-put %d",
				i, act, stay)
		}
	}

	// Budget 1: exactly the emitted move may appear; everything else must
	// be stay-put.
	actions, migs = mk().chooseFromCandidates(s, cands, 1)
	if len(migs) > 1 {
		t.Fatalf("budget 1 emitted %d migrations", len(migs))
	}
	emitted := make(map[int]bool, len(migs))
	for _, mg := range migs {
		emitted[mg.VM*nHosts+mg.Dest] = true
	}
	for i, act := range actions {
		stay := cands[i].vm*nHosts + s.VMHost[cands[i].vm]
		if act != stay && !emitted[act] {
			t.Fatalf("candidate %d recorded action %d: neither stay-put %d nor an emitted migration",
				i, act, stay)
		}
	}
}

// pendingAuditor forwards to a Megh learner and after every Decide asserts
// the LSPI invariant end-to-end: every pending action is either an emitted
// migration or the VM's stay-put action. Anything else is a phantom
// transition — next interval's cost would be credited to a configuration
// change that never happened.
type pendingAuditor struct {
	t *testing.T
	m *Megh
}

func (pendingAuditor) Name() string { return "audit" }

func (p *pendingAuditor) Decide(s *sim.Snapshot) []sim.Migration {
	migs := p.m.Decide(s)
	emitted := make(map[int]bool, len(migs))
	for _, mg := range migs {
		emitted[mg.VM*p.m.cfg.NumHosts+mg.Dest] = true
	}
	for _, act := range p.m.pending {
		vm := act / p.m.cfg.NumHosts
		if stay := vm*p.m.cfg.NumHosts + s.VMHost[vm]; act != stay && !emitted[act] {
			p.t.Fatalf("step %d: pending action %d for VM %d is neither stay-put %d nor emitted",
				s.Step, act, vm, stay)
		}
	}
	return migs
}

func (p *pendingAuditor) Observe(fb *sim.Feedback) { p.m.Observe(fb) }

func TestPendingActionsAreEmittedOrStayPut(t *testing.T) {
	const nVMs, nHosts, steps = 12, 6, 80
	cfg := tinyConfig(t, nVMs, nHosts, 0.1)
	cfg.Steps = steps
	for i := range cfg.Traces {
		tr := make([]float64, steps)
		for s := range tr {
			tr[s] = 0.15 + 0.7*float64((i+s)%5)/4
		}
		cfg.Traces[i] = tr
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(nVMs, nHosts, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&pendingAuditor{t: t, m: m}); err != nil {
		t.Fatal(err)
	}
}

// TestNNZHistoryRingCapsAtConfiguredSize is the regression test for the
// unbounded-growth bug: a million recorded samples must hold the history at
// the cap, keeping only the newest entries in chronological order.
func TestNNZHistoryRingCapsAtConfiguredSize(t *testing.T) {
	const cap_, samples = 16, 1_000_000
	cfg := DefaultConfig(2, 2, 1)
	cfg.NNZHistoryCap = cap_
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < samples; v++ {
		m.recordNNZ(v)
	}
	got := m.NNZHistory()
	if len(got) != cap_ {
		t.Fatalf("history holds %d entries after %d samples, cap is %d", len(got), samples, cap_)
	}
	want := make([]int, cap_)
	for i := range want {
		want[i] = samples - cap_ + i
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("history = %v, want newest %d samples %v", got, cap_, want)
	}
}

// TestNNZHistoryDefaultAndUnboundedModes pins the cap resolution: 0 means
// DefaultNNZHistoryCap, negative opts back into unbounded retention.
func TestNNZHistoryDefaultAndUnboundedModes(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < DefaultNNZHistoryCap+10; v++ {
		m.recordNNZ(v)
	}
	if got := len(m.NNZHistory()); got != DefaultNNZHistoryCap {
		t.Fatalf("default cap held %d entries, want %d", got, DefaultNNZHistoryCap)
	}

	cfg := DefaultConfig(2, 2, 1)
	cfg.NNZHistoryCap = -1
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = DefaultNNZHistoryCap + 10
	for v := 0; v < n; v++ {
		u.recordNNZ(v)
	}
	if got := len(u.NNZHistory()); got != n {
		t.Fatalf("unbounded mode held %d entries, want %d", got, n)
	}
}

// TestNNZHistoryBoundedThroughDecide exercises the cap through the public
// Decide path rather than recordNNZ directly.
func TestNNZHistoryBoundedThroughDecide(t *testing.T) {
	const nVMs, nHosts, steps = 6, 3, 30
	cfg := DefaultConfig(nVMs, nHosts, 3)
	cfg.NNZHistoryCap = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := tinySnapshot(t, nVMs, nHosts)
	for i := 0; i < steps; i++ {
		m.Decide(snap)
	}
	if got := len(m.NNZHistory()); got != 4 {
		t.Fatalf("history holds %d entries after %d decides, cap is 4", got, steps)
	}
}

// TestWrappedNNZHistorySurvivesCheckpoint: the ring is persisted linearized
// (oldest first), so a wrapped history must round-trip chronologically and
// byte-stably.
func TestWrappedNNZHistorySurvivesCheckpoint(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.NNZHistoryCap = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 21; v++ { // wraps the ring 2.5 times
		m.recordNNZ(v)
	}
	if m.nnzStart == 0 {
		t.Fatal("setup failed to wrap the ring")
	}
	var first bytes.Buffer
	if err := m.SaveState(&first); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.NNZHistory(), m.NNZHistory()) {
		t.Fatalf("restored history %v, want %v", back.NNZHistory(), m.NNZHistory())
	}
	var second bytes.Buffer
	if err := back.SaveState(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("wrapped-ring checkpoint round-trip is not byte-stable")
	}
}
