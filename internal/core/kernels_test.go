package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"megh/internal/sim"
	"megh/internal/trace"
)

// kernelWorld builds a learner and a snapshot large enough for the unrolled
// kernels to engage (NumHosts ≥ unrolledMinHosts), with a θ full of
// irregular values so row minima and ties are non-trivial.
func kernelWorld(t *testing.T, nVMs, nHosts int) (*Megh, *sim.Snapshot) {
	t.Helper()
	snaps := snapshotStream(t, nVMs, nHosts, 3)
	m, err := New(DefaultConfig(nVMs, nHosts, 11))
	if err != nil {
		t.Fatal(err)
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := range m.theta {
		x = x*6364136223846793005 + 1442695040888963407
		// Mostly zeros (the untrained-row shape) with irregular values and
		// deliberate ties sprinkled in.
		switch x % 5 {
		case 0:
			m.theta[i] = math.Ldexp(float64(int64(x>>12)%1000)-500, -20)
		case 1:
			m.theta[i] = -0.25
		}
	}
	return m, snaps[len(snaps)-1]
}

// TestScanKernelsBitwiseIdentical compares every scanRow kernel directly:
// same feasible set, bit-identical Q gather, bit-identical row minimum —
// including with failed (blocked) hosts in play.
func TestScanKernelsBitwiseIdentical(t *testing.T) {
	const nVMs, nHosts = 24, 23 // odd host count exercises the unroll tail
	m, snap := kernelWorld(t, nVMs, nHosts)

	check := func(t *testing.T, s *sim.Snapshot) {
		t.Helper()
		m.rebuildHostAggregates(s)
		for j := 0; j < nVMs; j++ {
			cur := s.VMHost[j]
			base := j * nHosts
			for _, activeOnly := range []bool{false, true} {
				f, q, min := m.scanRowScalar(s, j, cur, base, activeOnly)
				wantF := append([]int(nil), f...)
				wantQ := append([]float64(nil), q...)
				wantMin := min

				f, q, min = m.scanRowUnrolled(s, j, cur, base, activeOnly)
				compareScan(t, "unrolled", j, activeOnly, f, q, min, wantF, wantQ, wantMin)

				if activeOnly && m.hostActive[cur] {
					f, q, min = m.scanRowActive(s, j, cur, base)
					compareScan(t, "active", j, activeOnly, f, q, min, wantF, wantQ, wantMin)
				}
			}
		}
	}

	t.Run("healthy", func(t *testing.T) { check(t, snap) })
	t.Run("failed-hosts", func(t *testing.T) {
		cl := snap.Clone()
		cl.HostFailed = make([]bool, nHosts)
		cl.HostFailed[0] = true
		cl.HostFailed[7] = true
		cl.HostFailed[nHosts-1] = true
		check(t, cl)
	})
}

func compareScan(t *testing.T, kernel string, j int, activeOnly bool,
	f []int, q []float64, min float64, wantF []int, wantQ []float64, wantMin float64) {
	t.Helper()
	if !reflect.DeepEqual(f, wantF) && !(len(f) == 0 && len(wantF) == 0) {
		t.Fatalf("%s kernel, vm %d activeOnly=%v: feasible %v, scalar %v",
			kernel, j, activeOnly, f, wantF)
	}
	if math.Float64bits(min) != math.Float64bits(wantMin) {
		t.Fatalf("%s kernel, vm %d activeOnly=%v: minQ %x, scalar %x",
			kernel, j, activeOnly, math.Float64bits(min), math.Float64bits(wantMin))
	}
	for i := range q {
		if math.Float64bits(q[i]) != math.Float64bits(wantQ[i]) {
			t.Fatalf("%s kernel, vm %d activeOnly=%v: q[%d] %x, scalar %x",
				kernel, j, activeOnly, i, math.Float64bits(q[i]), math.Float64bits(wantQ[i]))
		}
	}
}

// TestScanKernelDecisionsIdentical is the end-to-end kernel differential:
// two same-seed learners, one forced scalar and one forced unrolled, must
// make identical decisions with byte-identical traces over a full stream.
func TestScanKernelDecisionsIdentical(t *testing.T) {
	const nVMs, nHosts, steps = 18, 20, 60
	snaps := snapshotStream(t, nVMs, nHosts, steps)
	items := batchItems(snaps)

	run := func(k ScanKernel) ([][]sim.Migration, []byte) {
		m, err := New(DefaultConfig(nVMs, nHosts, 4242))
		if err != nil {
			t.Fatal(err)
		}
		m.SetScanKernel(k)
		var buf bytes.Buffer
		tr, err := trace.New(trace.Options{W: &buf})
		if err != nil {
			t.Fatal(err)
		}
		m.Trace(tr)
		out := make([][]sim.Migration, len(items))
		for i, it := range items {
			if it.Feedback != nil {
				m.Observe(it.Feedback)
			}
			out[i] = m.DecideAppend(nil, it.Snap)
		}
		return out, buf.Bytes()
	}

	scalarOut, scalarTrace := run(ScanScalar)
	unrolledOut, unrolledTrace := run(ScanUnrolled)
	if !reflect.DeepEqual(scalarOut, unrolledOut) {
		t.Fatal("unrolled scanRow kernel diverged from the scalar kernel")
	}
	if !bytes.Equal(scalarTrace, unrolledTrace) {
		t.Fatal("scalar and unrolled trace streams differ byte-for-byte")
	}
	total := 0
	for _, migs := range scalarOut {
		total += len(migs)
	}
	if total == 0 {
		t.Fatal("stream produced no migrations — the differential exercised nothing")
	}
}

// TestAggregateReuseMatchesRebuild is the end-to-end reuse differential:
// a default learner (delta/trusted tiers active) against a same-seed
// learner with SetAggregateReuse(false) (every refresh a full rebuild),
// over a stream that exercises distinct snapshots, repeated pointers,
// in-place mutation of one snapshot, and the failed-host fallback.
func TestAggregateReuseMatchesRebuild(t *testing.T) {
	const nVMs, nHosts, steps = 18, 20, 40
	snaps := snapshotStream(t, nVMs, nHosts, steps)

	// Append adversarial shapes to the stream: the same pointer twice in a
	// row, an in-place placement mutation (moving a VM between hosts), and
	// a failed host appearing and clearing again.
	stream := append([]*sim.Snapshot(nil), snaps...)
	stream = append(stream, snaps[len(snaps)-1], snaps[len(snaps)-1])
	mut := snaps[len(snaps)-1].Clone()
	stream = append(stream, mut)
	failed := snaps[0].Clone()
	failed.HostFailed = make([]bool, nHosts)
	failed.HostFailed[3] = true
	stream = append(stream, failed, snaps[1], snaps[2])

	run := func(reuse bool) ([][]sim.Migration, []byte) {
		m, err := New(DefaultConfig(nVMs, nHosts, 777))
		if err != nil {
			t.Fatal(err)
		}
		m.SetAggregateReuse(reuse)
		var buf bytes.Buffer
		tr, err := trace.New(trace.Options{W: &buf})
		if err != nil {
			t.Fatal(err)
		}
		m.Trace(tr)
		out := make([][]sim.Migration, len(stream))
		for i, s := range stream {
			if i > 0 {
				m.Observe(&sim.Feedback{Step: i - 1, StepCost: 0.3 + 0.05*float64(i%7)})
			}
			if s == mut && i > 0 {
				// Mutate the snapshot in place between the two learners'
				// visibility windows: move the first VM to the next host.
				// The trust epoch must force the reuse learner to re-diff
				// rather than serve stale aggregates.
				moveVM(mut, 0, (mut.VMHost[0]+1)%nHosts)
			}
			out[i] = m.DecideAppend(nil, s)
		}
		return out, buf.Bytes()
	}

	rebuildOut, rebuildTrace := run(false)
	// The first run mutated `mut`; restore it so the second run applies the
	// same mutation from the same starting placement.
	moveVM(mut, 0, snaps[len(snaps)-1].VMHost[0])
	reuseOut, reuseTrace := run(true)
	if !reflect.DeepEqual(rebuildOut, reuseOut) {
		t.Fatal("aggregate reuse diverged from the full-rebuild reference")
	}
	if !bytes.Equal(rebuildTrace, reuseTrace) {
		t.Fatal("reuse and rebuild trace streams differ byte-for-byte")
	}
}

// moveVM relocates VM j to host dest in place, keeping VMHost and HostVMs
// consistent.
func moveVM(s *sim.Snapshot, j, dest int) {
	from := s.VMHost[j]
	if from == dest {
		return
	}
	s.VMHost[j] = dest
	vms := s.HostVMs[from][:0]
	for _, v := range s.HostVMs[from] {
		if v != j {
			vms = append(vms, v)
		}
	}
	s.HostVMs[from] = vms
	s.HostVMs[dest] = append(s.HostVMs[dest], j)
}

// TestTrustedBatchMatchesClonedBatch pins the trusted tier: a batch whose
// items share one snapshot pointer (the steady-state serving shape, served
// by the zero-work trusted tier and the candidate cache) must decide
// exactly like a batch of per-item clones (served by the delta tier).
func TestTrustedBatchMatchesClonedBatch(t *testing.T) {
	const nVMs, nHosts, batch = 18, 20, 64
	snaps := snapshotStream(t, nVMs, nHosts, 1)
	snap := snaps[0]

	mk := func() *Megh {
		m, err := New(DefaultConfig(nVMs, nHosts, 2026))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fb := sim.Feedback{StepCost: 0.4}
	shared := make([]BatchItem, batch)
	cloned := make([]BatchItem, batch)
	for i := range shared {
		shared[i] = BatchItem{Snap: snap, Feedback: &fb}
		cloned[i] = BatchItem{Snap: snap.Clone(), Feedback: &fb}
	}
	sharedOut := mk().DecideBatch(shared)
	clonedOut := mk().DecideBatch(cloned)
	if !reflect.DeepEqual(sharedOut, clonedOut) {
		t.Fatal("trusted-tier batch diverged from the per-item-clone batch")
	}
	total := 0
	for _, migs := range sharedOut {
		total += len(migs)
	}
	if total == 0 {
		t.Fatal("batch produced no migrations — the differential exercised nothing")
	}
}
