package core

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"
)

// newTestDecoder decodes a persisted state blob for white-box tests.
func newTestDecoder(t *testing.T, data []byte, st *persistedState) io.Reader {
	t.Helper()
	r := bytes.NewReader(data)
	if err := gob.NewDecoder(r).Decode(st); err != nil {
		t.Fatalf("decoding test state: %v", err)
	}
	return r
}

// encodeTestState re-encodes a (possibly mutated) state blob.
func encodeTestState(t *testing.T, w io.Writer, st persistedState) {
	t.Helper()
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		t.Fatalf("encoding test state: %v", err)
	}
}
