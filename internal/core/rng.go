package core

// xrand is the learner's exploration PRNG: xoroshiro128+ with splitmix64
// seeding. It exists instead of math/rand for one reason — its full state is
// two exportable words, so a checkpoint can persist the generator *exactly*
// and a restored learner continues the identical random stream. (math/rand
// hides its state, which forced the old checkpoints to reseed and made a
// save/resume run diverge from an uninterrupted one; the differential suite
// in internal/invariant asserts the two are now byte-identical.)
//
// It is not a cryptographic generator and is not safe for concurrent use —
// exactly the contract the single-goroutine decide path needs.
type xrand struct {
	s0, s1 uint64
}

// splitmix64 advances z and returns the next splitmix64 output — the
// recommended seeding generator for the xoroshiro family.
func splitmix64(z *uint64) uint64 {
	*z += 0x9e3779b97f4a7c15
	r := *z
	r = (r ^ (r >> 30)) * 0xbf58476d1ce4e5b9
	r = (r ^ (r >> 27)) * 0x94d049bb133111eb
	return r ^ (r >> 31)
}

// newXrand returns a generator seeded deterministically from seed.
func newXrand(seed int64) *xrand {
	x := &xrand{}
	x.seed(seed)
	return x
}

func (x *xrand) seed(seed int64) {
	z := uint64(seed)
	x.s0 = splitmix64(&z)
	x.s1 = splitmix64(&z)
	if x.s0|x.s1 == 0 {
		// The all-zero state is the one fixed point of xoroshiro128+;
		// splitmix64 cannot produce it from any seed, but guard anyway.
		x.s1 = 0x9e3779b97f4a7c15
	}
}

// state exports the generator state for persistence.
func (x *xrand) state() (s0, s1 uint64) { return x.s0, x.s1 }

// setState restores a state captured with state. A degenerate all-zero
// state (possible only in a hand-crafted checkpoint) is nudged off the
// fixed point so the generator keeps producing.
func (x *xrand) setState(s0, s1 uint64) {
	if s0|s1 == 0 {
		s1 = 0x9e3779b97f4a7c15
	}
	x.s0, x.s1 = s0, s1
}

// Uint64 returns the next 64 random bits (xoroshiro128+).
func (x *xrand) Uint64() uint64 {
	a, b := x.s0, x.s1
	r := a + b
	b ^= a
	x.s0 = (a<<55 | a>>9) ^ b ^ (b << 14)
	x.s1 = b<<36 | b>>28
	return r
}

// Int63 returns a uniform value in [0, 1<<63).
func (x *xrand) Int63() int64 { return int64(x.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *xrand) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0. Rejection
// sampling keeps the draw exactly uniform (no modulo bias).
func (x *xrand) Intn(n int) int {
	if n <= 0 {
		panic("core: Intn with non-positive n")
	}
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		if v := x.Uint64(); v < limit {
			return int(v % max)
		}
	}
}
