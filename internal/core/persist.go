package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"megh/internal/sparse"
)

// stateVersion guards the persisted format; bump on incompatible change.
const stateVersion = 1

// persistedState is the gob image of a learner. Everything the LSPI
// machinery needs survives a round-trip: B (the Q-table), z, θ, the
// temperature, and the pending transition. The exploration RNG is reseeded
// from its own next output, so a restored learner is deterministic but its
// random stream differs from an uninterrupted run (documented on SaveState).
type persistedState struct {
	Version    int
	Config     Config
	Temp       float64
	B          sparse.MatrixState
	Z          sparse.VectorState
	Theta      sparse.VectorState
	Pending    []int
	StepCost   float64
	HaveCost   bool
	NNZHistory []int
	RngSeed    int64
}

// SaveState serialises the learner so it can resume in a later process —
// the Q-table persistence a production deployment of an as-you-go learner
// needs across scheduler restarts. The exploration RNG position is not
// preserved bit-exactly (a fresh seed drawn from the current stream is
// stored), so a save/load pair is deterministic but not byte-identical to
// an uninterrupted run.
func (m *Megh) SaveState(w io.Writer) error {
	st := persistedState{
		Version:    stateVersion,
		Config:     m.cfg,
		Temp:       m.temp,
		B:          m.b.State(),
		Z:          m.z.State(),
		Theta:      thetaVector(m.theta).State(),
		Pending:    append([]int(nil), m.pending...),
		StepCost:   m.stepCost,
		HaveCost:   m.haveCost,
		NNZHistory: append([]int(nil), m.nnzHistory...),
		RngSeed:    m.rng.Int63(),
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("core: encoding learner state: %w", err)
	}
	return nil
}

// LoadState reconstructs a learner saved with SaveState.
func LoadState(r io.Reader) (*Megh, error) {
	var st persistedState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decoding learner state: %w", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("core: learner state version %d, this build reads %d",
			st.Version, stateVersion)
	}
	m, err := New(st.Config)
	if err != nil {
		return nil, fmt.Errorf("core: restoring learner: %w", err)
	}
	if st.Temp <= 0 {
		return nil, fmt.Errorf("core: persisted temperature %g invalid", st.Temp)
	}
	b, err := sparse.MatrixFromState(st.B)
	if err != nil {
		return nil, fmt.Errorf("core: restoring B: %w", err)
	}
	z, err := sparse.VectorFromState(st.Z)
	if err != nil {
		return nil, fmt.Errorf("core: restoring z: %w", err)
	}
	theta, err := sparse.VectorFromState(st.Theta)
	if err != nil {
		return nil, fmt.Errorf("core: restoring θ: %w", err)
	}
	if b.Dim() != m.d || z.Dim() != m.d || theta.Dim() != m.d {
		return nil, fmt.Errorf("core: persisted dimensions (%d,%d,%d) do not match config d=%d",
			b.Dim(), z.Dim(), theta.Dim(), m.d)
	}
	for _, a := range st.Pending {
		if a < 0 || a >= m.d {
			return nil, fmt.Errorf("core: pending action %d out of range [0,%d)", a, m.d)
		}
	}
	m.temp = st.Temp
	m.b = b
	m.z = z
	m.theta = theta.Dense()
	m.pending = st.Pending
	m.stepCost = st.StepCost
	m.haveCost = st.HaveCost
	m.nnzHistory = st.NNZHistory
	m.rng = rand.New(rand.NewSource(st.RngSeed))
	return m, nil
}
