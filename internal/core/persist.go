package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"megh/internal/sparse"
)

// stateVersion guards the persisted format; bump on incompatible change.
const stateVersion = 1

// persistedState is the gob image of a learner. Everything the LSPI
// machinery needs survives a round-trip: B (the Q-table), z, θ, the
// temperature, the pending transition, and the exploration RNG state —
// exact to the bit, so a save/load pair continues the identical random
// stream (the differential suite in internal/invariant depends on this).
//
// RngState holds the two xoroshiro128+ words. RngSeed is the legacy field:
// checkpoints written before exact RNG persistence carry only a reseed
// value there, which LoadState still honours when RngState is absent.
// PendingTotal, Deferred and DeferAge were added after version 1 shipped;
// gob tolerates their absence (they decode as zero values, which LoadState
// maps to the historical behaviour), so the version number is unchanged
// and old checkpoints keep loading.
type persistedState struct {
	Version      int
	Config       Config
	Temp         float64
	B            sparse.MatrixState
	Z            sparse.VectorState
	Theta        sparse.VectorState
	Pending      []int
	PendingTotal int
	StepCost     float64
	HaveCost     bool
	NNZHistory   []int
	Deferred     []deferredUpdate
	DeferAge     int
	RngSeed      int64
	RngState     []uint64
}

// SaveState serialises the learner so it can resume in a later process —
// the Q-table persistence a production deployment of an as-you-go learner
// needs across scheduler restarts. The exploration RNG state is preserved
// bit-exactly and SaveState itself consumes no randomness, so saving is
// side-effect-free and a checkpoint-restore-resumed run makes decisions
// byte-identical to the uninterrupted run it forked from.
func (m *Megh) SaveState(w io.Writer) error {
	s0, s1 := m.rng.state()
	st := persistedState{
		Version:      stateVersion,
		Config:       m.cfg,
		Temp:         m.temp,
		B:            m.b.State(),
		Z:            m.z.State(),
		Theta:        thetaVector(m.theta).State(),
		Pending:      append([]int(nil), m.pending...),
		PendingTotal: m.pendingTotal,
		StepCost:     m.stepCost,
		HaveCost:     m.haveCost,
		// NNZHistory() linearises the ring, so the image is chronological
		// regardless of where nnzStart points.
		NNZHistory: append([]int(nil), m.NNZHistory()...),
		Deferred:   append([]deferredUpdate(nil), m.deferQ...),
		DeferAge:   m.deferAge,
		RngState:   []uint64{s0, s1},
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("core: encoding learner state: %w", err)
	}
	return nil
}

// SaveStateFile persists the learner atomically to path: the image is
// written to a uniquely named temp file in the destination directory and
// renamed over path. Unique temp names make concurrent writers safe —
// each completes its own file and the last rename wins with a fully
// written image, never an interleaved one. Callers that need a consistent
// snapshot must serialise learner mutation themselves (SaveStateFile only
// reads).
func (m *Megh) SaveStateFile(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	err = m.SaveState(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// LoadStateFile reconstructs a learner from a file written by
// SaveStateFile. A missing file is reported with os.IsNotExist semantics
// (errors.Is(err, fs.ErrNotExist)), so callers can distinguish
// "no checkpoint yet" from a corrupt one.
func LoadStateFile(path string) (*Megh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := LoadState(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("core: closing %s: %w", path, cerr)
	}
	return m, err
}

// LoadState reconstructs a learner saved with SaveState.
func LoadState(r io.Reader) (*Megh, error) {
	var st persistedState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decoding learner state: %w", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("core: learner state version %d, this build reads %d",
			st.Version, stateVersion)
	}
	m, err := New(st.Config)
	if err != nil {
		return nil, fmt.Errorf("core: restoring learner: %w", err)
	}
	if st.Temp <= 0 || math.IsNaN(st.Temp) || math.IsInf(st.Temp, 0) {
		return nil, fmt.Errorf("core: persisted temperature %g invalid", st.Temp)
	}
	if len(st.RngState) != 0 && len(st.RngState) != 2 {
		return nil, fmt.Errorf("core: persisted RNG state has %d words, want 2", len(st.RngState))
	}
	b, err := sparse.MatrixFromState(st.B)
	if err != nil {
		return nil, fmt.Errorf("core: restoring B: %w", err)
	}
	z, err := sparse.VectorFromState(st.Z)
	if err != nil {
		return nil, fmt.Errorf("core: restoring z: %w", err)
	}
	theta, err := sparse.VectorFromState(st.Theta)
	if err != nil {
		return nil, fmt.Errorf("core: restoring θ: %w", err)
	}
	if b.Dim() != m.d || z.Dim() != m.d || theta.Dim() != m.d {
		return nil, fmt.Errorf("core: persisted dimensions (%d,%d,%d) do not match config d=%d",
			b.Dim(), z.Dim(), theta.Dim(), m.d)
	}
	for _, a := range st.Pending {
		if a < 0 || a >= m.d {
			return nil, fmt.Errorf("core: pending action %d out of range [0,%d)", a, m.d)
		}
	}
	for i := range st.Deferred {
		du := &st.Deferred[i]
		switch {
		case du.A < 0 || du.A >= m.d || du.B < 0 || du.B >= m.d:
			return nil, fmt.Errorf("core: deferred update (%d,%d) out of range [0,%d)", du.A, du.B, m.d)
		case du.N < 1:
			return nil, fmt.Errorf("core: deferred update multiplicity %d must be positive", du.N)
		case math.IsNaN(du.C) || math.IsInf(du.C, 0):
			return nil, fmt.Errorf("core: deferred update cost %g is not finite", du.C)
		}
	}
	m.temp = st.Temp
	m.b = b
	m.z = z
	m.theta = theta.Dense()
	m.pending = st.Pending
	m.pendingTotal = st.PendingTotal
	if m.pendingTotal < len(m.pending) {
		// Legacy checkpoint (no PendingTotal): the historical divisor was
		// the surviving pending count, which this floor reproduces.
		m.pendingTotal = len(m.pending)
	}
	m.stepCost = st.StepCost
	m.haveCost = st.HaveCost
	// The persisted series is chronological; the restored ring starts
	// unwrapped. A history longer than this config's cap (a legacy
	// unbounded checkpoint) keeps its newest cap entries.
	m.nnzHistory = st.NNZHistory
	m.nnzStart = 0
	if cap_ := m.nnzCap(); cap_ >= 0 && len(m.nnzHistory) > cap_ {
		m.nnzHistory = append([]int(nil), m.nnzHistory[len(m.nnzHistory)-cap_:]...)
	}
	for i := range st.Deferred {
		du := st.Deferred[i]
		key := int64(du.A)*int64(m.d) + int64(du.B)
		if j, ok := m.deferIdx[key]; ok {
			// Duplicate (a, b) entries in a hand-edited image merge, matching
			// what deferPush would have produced.
			m.deferQ[j].N += du.N
			m.deferQ[j].C += du.C
			continue
		}
		if m.deferIdx == nil {
			m.deferIdx = make(map[int64]int)
		}
		m.deferIdx[key] = len(m.deferQ)
		m.deferQ = append(m.deferQ, du)
	}
	m.deferAge = st.DeferAge
	if len(st.RngState) == 2 {
		m.rng.setState(st.RngState[0], st.RngState[1])
	} else {
		// Legacy checkpoint (pre exact-state persistence): reseed from the
		// stored value. Deterministic, but the stream differs from the run
		// that wrote the checkpoint — the historical behaviour.
		m.rng.seed(st.RngSeed)
	}
	return m, nil
}
