package core

import "megh/internal/sim"

// This file holds the batched/amortised decide path: DecideBatch, which
// drives many observe→decide steps through one call, and the deferred-update
// queue that lets those steps merge low-magnitude Sherman–Morrison updates
// instead of paying one rank-1 kernel pass per transition.
//
// The semantics contract is strict: DecideBatch is decision-identical to the
// equivalent sequential Observe/Decide loop in *both* modes — batching
// amortises transport and locking, deferral amortises linear algebra, and
// neither changes what the learner decides relative to its mode. Deferral
// does trade decision freshness for throughput (θ lags the queued
// transitions by at most DeferMaxAge decides), which is why it is opt-in
// via Config.DeferThreshold and off in the exact default.

// deferredUpdate is one queued LSPI transition awaiting application: the
// rank-1 T update φ_A(φ_A − γφ_B)ᵀ with multiplicity N (repeats of the same
// (A, B) pair merge) and summed cost share C. Fields are exported so
// checkpoints gob-encode the queue.
type deferredUpdate struct {
	A, B int
	N    int
	C    float64
}

// deferMaxAge resolves Config.DeferMaxAge, zero meaning DefaultDeferMaxAge.
func (m *Megh) deferMaxAge() int {
	if m.cfg.DeferMaxAge > 0 {
		return m.cfg.DeferMaxAge
	}
	return DefaultDeferMaxAge
}

// deferPush queues one transition, merging it with an already-queued update
// for the same (a, b) pair: n repetitions of φ_a(φ_a − γφ_b)ᵀ are exactly
// one rank-1 update of T with v scaled by n, so the merge loses nothing —
// applyUpdate replays the multiplicity through the scaled kernel. Queue
// order is insertion order of first occurrence, keeping flushes
// deterministic for a given decision sequence.
func (m *Megh) deferPush(a, b int, c float64) {
	key := int64(a)*int64(m.d) + int64(b)
	if i, ok := m.deferIdx[key]; ok {
		m.deferQ[i].N++
		m.deferQ[i].C += c
		return
	}
	if m.deferIdx == nil {
		m.deferIdx = make(map[int64]int)
	}
	m.deferIdx[key] = len(m.deferQ)
	m.deferQ = append(m.deferQ, deferredUpdate{A: a, B: b, N: 1, C: c})
}

// FlushUpdates applies every deferred transition now, in queue order, and
// resets the staleness clock. Decide calls it automatically on the
// DeferMaxAge cadence; callers that need a fully up-to-date learner at a
// known point (checkpointing at a phase boundary, handing the learner to
// an invariant probe, end of an experiment) may call it directly. A no-op
// in exact mode or when nothing is queued.
func (m *Megh) FlushUpdates() {
	for i := range m.deferQ {
		du := &m.deferQ[i]
		m.applyUpdate(du.A, du.B, du.N, du.C)
	}
	m.deferQ = m.deferQ[:0]
	clear(m.deferIdx)
	m.deferAge = 0
}

// DeferredUpdates reports the number of queued LSPI transitions counting
// multiplicity (merged repeats count individually), i.e. how many logical
// transitions the learner's B/z/θ state currently lags behind.
func (m *Megh) DeferredUpdates() int {
	n := 0
	for i := range m.deferQ {
		n += m.deferQ[i].N
	}
	return n
}

// BatchItem pairs one decision query with the feedback observed since the
// previous one.
type BatchItem struct {
	// Snap is the state to decide on. Batch callers queue snapshots ahead
	// of the call, so unlike the single-step Decide path the snapshot must
	// not alias simulator-owned scratch — use sim.Snapshot.Clone when the
	// producer reuses its buffers.
	Snap *sim.Snapshot
	// Feedback, when non-nil, is observed (cost recorded, rejected actions
	// reconciled) before this item's decide, exactly as a sequential
	// caller would invoke Observe between steps.
	Feedback *sim.Feedback
}

// DecideBatch runs the observe→decide loop over a batch of items against
// this learner and returns one caller-owned migration slice per item
// (nil when an item produced no migrations).
//
// It is decision-identical to the equivalent sequential loop of Observe and
// Decide calls — same RNG consumption, same updates, byte-identical traces
// (pinned by TestDecideBatchMatchesSequential) — in both exact and
// deferred-update modes; what it amortises is everything *around* the
// learner: one lock acquisition and one request decode for the whole batch
// on the server path, and, with deferral enabled, merged rank-1 updates
// across the batch's repeated transitions. Per-item tracer events and
// metrics fire exactly as they would sequentially.
func (m *Megh) DecideBatch(items []BatchItem) [][]sim.Migration {
	// One aggregate trust window for the whole batch: items are queued ahead
	// of the call and immutable while it runs (the Snap doc contract above),
	// so consecutive items sharing a *Snapshot pointer read the very memory
	// the aggregates were built from and can skip the refresh outright.
	// The defer keeps a panicking item (e.g. a dimension mismatch) from
	// leaving the learner stuck in batch mode.
	m.aggEpoch++
	m.inBatch = true
	defer func() { m.inBatch = false }()
	out := make([][]sim.Migration, len(items))
	for i := range items {
		if items[i].Feedback != nil {
			m.Observe(items[i].Feedback)
		}
		out[i] = m.DecideAppend(nil, items[i].Snap)
	}
	return out
}
