// Package core implements Megh, the paper's primary contribution: an online
// reinforcement-learning policy for live VM migration (Algorithms 1 and 2).
//
// Megh models migration as an infinite-horizon discounted MDP (§4) and runs
// least-squares policy iteration over a d = N·M-dimensional projection of
// the state-action space spanned by the sparse basis {φ_jk} (§5, Theorem 1).
// The inverse transition operator B = T⁻¹ is maintained incrementally with
// the Sherman–Morrison formula (Eq. 11) on a sparse triplet-backed matrix,
// so each step costs O(#migrations) rather than O(d³) (§5.2). Actions are
// drawn by Boltzmann exploration with an exponentially decaying temperature
// (Algorithm 2).
//
// Deviations from the pseudocode, and why, are catalogued in DESIGN.md §5:
// Boltzmann weights are *sampled* rather than arg-maxed, multiple actions
// per step share the observed interval cost, the action space contains a
// "stay" per VM, and per-step candidate VMs are drawn from overloaded and
// underloaded hosts plus an exploratory draw (the practical embodiment of
// §3.1's "Megh may migrate the VMs allocated in an underloaded PM … if a PM
// gets overloaded, some of the VMs operating on it are migrated").
package core

import (
	"fmt"
	"math"
	"time"

	"megh/internal/mdp"
	"megh/internal/obs"
	"megh/internal/sim"
	"megh/internal/sparse"
	"megh/internal/trace"
)

// Config parameterises a Megh learner. The defaults mirror §6.1.
type Config struct {
	// NumVMs (N) and NumHosts (M) fix the projected space dimension d = N·M.
	NumVMs, NumHosts int
	// Gamma is the discount factor γ (paper: 0.5).
	Gamma float64
	// Temp0 is the initial Boltzmann temperature (paper: 3).
	Temp0 float64
	// Epsilon is the temperature decay rate, Temp ← Temp·exp(−ε)
	// (paper: 0.01; the sensitivity study also uses 0.001).
	Epsilon float64
	// MaxMigrationsFrac caps per-step migrations at ⌈frac·N⌉ (paper: 0.02).
	MaxMigrationsFrac float64
	// UnderloadThreshold marks a host as a consolidation source when its
	// utilization falls below it (§3.1's underloaded-PM rule).
	UnderloadThreshold float64
	// ExplorationRate is the per-step probability of adding one uniformly
	// drawn candidate VM on top of the overload/underload candidates.
	ExplorationRate float64
	// Seed drives exploration randomness.
	Seed int64

	// NNZHistoryCap bounds the per-step Q-table-size history (Figure 7's
	// series): once the cap is reached the history becomes a ring and the
	// oldest entries are overwritten, so a long-lived meghd session holds
	// a fixed amount of bookkeeping instead of leaking one int per step.
	// 0 selects DefaultNNZHistoryCap; a negative value opts into unbounded
	// retention (the experiments harness, which needs the full series for
	// a bounded run, sets this).
	NNZHistoryCap int

	// DeferThreshold, when positive, enables the deferred-update decide
	// mode: a pending LSPI transition whose influence on the score vector,
	// |θ[a] − γ·θ[b]| + |c|, falls below the threshold is queued instead
	// of applied, and repeats of the same (a, b) pair merge into a single
	// scaled Sherman–Morrison update (sparse.ShermanMorrisonBasisScaled).
	// Queued transitions are applied after at most DeferMaxAge decides, so
	// staleness is bounded; θ = B·z continues to hold exactly at all times
	// because B, z and θ age together. Use math.MaxFloat64 to defer every
	// transition (pure cadence batching). Zero (the default) keeps the
	// exact mode: every update applies immediately and the decide path is
	// bit-for-bit the historical one.
	DeferThreshold float64

	// DeferMaxAge caps how many Decide calls a deferred transition may wait
	// before the queue is flushed. 0 selects DefaultDeferMaxAge. Only
	// meaningful when DeferThreshold > 0.
	DeferMaxAge int
}

// DefaultNNZHistoryCap is the NNZHistory ring size when Config.NNZHistoryCap
// is zero: large enough to cover every figure in the paper's experiments at
// full resolution, small enough (512 KiB of ints) to be irrelevant to a
// server's footprint.
const DefaultNNZHistoryCap = 65536

// DefaultDeferMaxAge is the deferred-update flush cadence when
// Config.DeferMaxAge is zero: a queued transition is applied after at most
// this many Decide calls.
const DefaultDeferMaxAge = 8

// DefaultConfig returns the paper's §6.1 parameters for an N-VM, M-host
// data center.
func DefaultConfig(numVMs, numHosts int, seed int64) Config {
	return Config{
		NumVMs:             numVMs,
		NumHosts:           numHosts,
		Gamma:              0.5,
		Temp0:              3,
		Epsilon:            0.01,
		MaxMigrationsFrac:  0.02,
		UnderloadThreshold: 0.1,
		ExplorationRate:    0.1,
		Seed:               seed,
	}
}

// Validate reports the first invalid parameter. Non-finite parameters are
// rejected explicitly: NaN compares false against every range bound, so
// without this guard a corrupted checkpoint could smuggle NaN into the
// learner and poison every Q value downstream.
func (c Config) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"Gamma", c.Gamma}, {"Temp0", c.Temp0}, {"Epsilon", c.Epsilon},
		{"MaxMigrationsFrac", c.MaxMigrationsFrac},
		{"UnderloadThreshold", c.UnderloadThreshold},
		{"ExplorationRate", c.ExplorationRate},
		{"DeferThreshold", c.DeferThreshold},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("core: %s %g is not finite", f.name, f.v)
		}
	}
	switch {
	case c.NumVMs <= 0:
		return fmt.Errorf("core: NumVMs %d must be positive", c.NumVMs)
	case c.NumHosts <= 0:
		return fmt.Errorf("core: NumHosts %d must be positive", c.NumHosts)
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("core: Gamma %g out of [0,1)", c.Gamma)
	case c.Temp0 <= 0:
		return fmt.Errorf("core: Temp0 %g must be positive", c.Temp0)
	case c.Epsilon < 0:
		return fmt.Errorf("core: Epsilon %g must be non-negative", c.Epsilon)
	case c.MaxMigrationsFrac <= 0 || c.MaxMigrationsFrac > 1:
		return fmt.Errorf("core: MaxMigrationsFrac %g out of (0,1]", c.MaxMigrationsFrac)
	case c.UnderloadThreshold < 0 || c.UnderloadThreshold > 1:
		return fmt.Errorf("core: UnderloadThreshold %g out of [0,1]", c.UnderloadThreshold)
	case c.ExplorationRate < 0 || c.ExplorationRate > 1:
		return fmt.Errorf("core: ExplorationRate %g out of [0,1]", c.ExplorationRate)
	case c.DeferThreshold < 0:
		return fmt.Errorf("core: DeferThreshold %g must be non-negative", c.DeferThreshold)
	case c.DeferMaxAge < 0:
		return fmt.Errorf("core: DeferMaxAge %d must be non-negative", c.DeferMaxAge)
	}
	return nil
}

// Megh is the learner. It implements sim.Policy and sim.FeedbackReceiver.
// It is not safe for concurrent use; one instance drives one simulation.
type Megh struct {
	cfg Config
	d   int

	// b is B = T⁻¹, initialised to (1/δ)·I with δ = d (Algorithm 1 line 2).
	b *sparse.Matrix
	// z accumulates Σ φ_{a_t}·C_{t+1} (Algorithm 1 line 10).
	z *sparse.Vector
	// theta is θ = B·z (Algorithm 1 line 11), maintained incrementally as
	// a dense mirror: the Boltzmann inner loop in sampleDestination reads
	// one Q value per (candidate, host) pair, so θ lookups are the single
	// hottest read in the system — an array index instead of a sparse
	// search. Size is d = N·M floats (a few MB at paper scale).
	theta []float64

	temp float64
	rng  *xrand

	// pending holds the action indices chosen last step, awaiting the
	// observed cost to complete their LSPI update. pendingTotal remembers
	// how many actions were chosen before Observe reconciled away any the
	// environment rejected: the interval's cost was generated by the full
	// intended action set, so each survivor's share is stepCost divided by
	// pendingTotal, not by the post-reconcile count (which would inflate
	// every survivor's share whenever a sibling was rejected).
	pending      []int
	pendingTotal int
	stepCost     float64
	haveCost     bool

	// nnzHistory records b.NNZ() after each Decide — Figure 7's series —
	// bounded by Config.NNZHistoryCap as a ring: once full, nnzStart is the
	// index of the oldest (next-overwritten) entry and the chronological
	// series wraps around it.
	nnzHistory []int
	nnzStart   int

	// deferQ holds queued low-magnitude LSPI transitions in deferred-update
	// mode, merged by (a, b) pair; deferIdx maps a*d+b to its queue slot and
	// deferAge counts Decide calls since the oldest entry was queued.
	deferQ   []deferredUpdate
	deferIdx map[int64]int
	deferAge int

	// updateHook, when non-nil, observes every rank-1 LSPI update the
	// learner attempts (SetUpdateHook). The verification layer
	// (internal/invariant) uses it to maintain an independent dense mirror
	// of T and z.
	updateHook func(a, b, n int, gamma, c float64, applied bool)

	// metrics, when non-nil, mirrors the learner internals into an obs
	// registry (Instrument).
	metrics *meghMetrics

	// learnStats, when non-nil, accumulates the learning-health sums the
	// health layer polls (EnableLearnStats). Nil costs one pointer test on
	// the update path and nothing on the decide path.
	learnStats *LearnStats

	// tracer, when non-nil, receives one structured event per Decide
	// (Trace). spans points at spanScratch while a timed Decide is in
	// flight and is nil otherwise; traceCands and traceEv are reused
	// across steps so the enabled path allocates only inside the tracer.
	tracer      *trace.Tracer
	spans       *trace.SpanRecorder
	spanScratch trace.SpanRecorder
	traceCands  []trace.Candidate
	traceEv     trace.Event

	// scratch state for per-step feasibility tracking, candidate
	// selection, sampling and the LSPI update, reused across steps so an
	// untraced Decide allocates nothing. hostRAM and hostMIPS hold each
	// host's aggregate committed RAM and demanded MIPS including this
	// step's already-chosen migrations, so feasibility checks are O(1)
	// per destination.
	hostRAM         []float64
	hostMIPS        []float64
	hostRAMCap      []float64 // static host RAM capacities, refreshed per step
	hostMIPSCap     []float64 // static host MIPS capacities, refreshed per step
	hostActive      []bool
	hostBlocked     []bool // failed hosts, refreshed per step
	feasibleScratch []int
	qScratch        []float64
	seenScratch     []bool          // candidate dedup, one flag per VM
	candScratch     []candidate     // candidates() output
	actionScratch   []int           // selectActions action indices
	migScratch      []sim.Migration // Decide's returned migrations
	pendingBuf      []int           // backing array for pending
	rejectedScratch map[int]bool    // Observe's rejected-action set

	// Aggregate-reuse and kernel-selection state (aggregates.go,
	// kernels.go). All of it is runtime-only — never persisted — and none
	// of it can change a decision: every reuse tier and every kernel is
	// pinned bitwise identical to the rebuild/scalar reference, so this
	// block only changes what a decision costs.
	scanKernel    ScanKernel
	aggReuse      bool          // snapshot-delta reuse enabled (default true)
	aggValid      bool          // aggregates describe aggSnap's state
	aggAnyBlocked bool          // last rebuild saw a failed host
	aggEpoch      uint64        // bumped per standalone Decide and per DecideBatch
	aggSnap       *sim.Snapshot // snapshot the aggregates were built from
	aggSnapEpoch  uint64        // epoch at which aggSnap was recorded
	inBatch       bool          // inside DecideBatch (epoch held for the batch)
	prevVMHost    []int         // per-VM placement/size at the last (re)build,
	prevVMRAM     []float64     // the delta tier's diff baseline
	prevVMMIPS    []float64
	prevHostSpecs []sim.HostSpec // backing identity of the last-seen HostSpecs
	hostVMCount   []int
	penAll        []float64 // +Inf iff blocked, else 0 (scanRow feasibility mask)
	penActive     []float64 // +Inf iff blocked or inactive, else 0
	activeList    []int     // ascending active hosts (scanRowActive's walk)
	dirtyStamp    []int     // per-host dirty epoch stamps for the delta diff
	dirtyEpoch    int
	dirtyHosts    []int
	undoLog       []aggUndo   // speculative charges to roll back next refresh
	candCache     []candidate // candidate base set reused in the trusted tier
	candCacheOK   bool
}

var (
	_ sim.Policy           = (*Megh)(nil)
	_ sim.FeedbackReceiver = (*Megh)(nil)
)

// New constructs a Megh learner.
func New(cfg Config) (*Megh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := mdp.SpaceSize(cfg.NumVMs, cfg.NumHosts)
	b := sparse.NewMatrix(d, 1/float64(d))
	// Entries this far below B's initial 1/δ scale cannot influence any
	// Q comparison; dropping them keeps the Q-table growth linear in the
	// migration count (§5.2, Figure 7).
	b.SetDropTolerance(1e-9 / float64(d))
	return &Megh{
		cfg:         cfg,
		d:           d,
		b:           b,
		z:           sparse.NewVector(d),
		theta:       make([]float64, d),
		temp:        cfg.Temp0,
		rng:         newXrand(cfg.Seed),
		hostRAM:     make([]float64, cfg.NumHosts),
		hostMIPS:    make([]float64, cfg.NumHosts),
		hostRAMCap:  make([]float64, cfg.NumHosts),
		hostMIPSCap: make([]float64, cfg.NumHosts),
		hostActive:  make([]bool, cfg.NumHosts),
		hostBlocked: make([]bool, cfg.NumHosts),
		seenScratch: make([]bool, cfg.NumVMs),
		hostVMCount: make([]int, cfg.NumHosts),
		penAll:      make([]float64, cfg.NumHosts),
		penActive:   make([]float64, cfg.NumHosts),
		dirtyStamp:  make([]int, cfg.NumHosts),
		prevVMHost:  make([]int, cfg.NumVMs),
		prevVMRAM:   make([]float64, cfg.NumVMs),
		prevVMMIPS:  make([]float64, cfg.NumVMs),
		aggReuse:    true,
	}, nil
}

// Name implements sim.Policy.
func (m *Megh) Name() string { return "Megh" }

// Config returns the learner's configuration (useful to validate that a
// restored checkpoint matches the world it is asked to schedule).
func (m *Megh) Config() Config { return m.cfg }

// meghMetrics caches the learner's obs instruments.
type meghMetrics struct {
	decideSeconds *obs.Histogram
	qtableNNZ     *obs.Gauge
	temperature   *obs.Gauge
	rejected      *obs.Counter
}

// Instrument mirrors the learner's internals into reg after every Decide:
// per-Decide wall time, Q-table NNZ (Figure 7's metric), the Boltzmann
// temperature, and the count of proposed actions the environment rejected.
// A nil registry disables instrumentation.
func (m *Megh) Instrument(reg *obs.Registry) {
	if reg == nil {
		m.metrics = nil
		return
	}
	m.metrics = &meghMetrics{
		decideSeconds: reg.Histogram("megh_decide_seconds",
			"Wall-clock time of one Megh.Decide call.", nil),
		qtableNNZ: reg.Gauge("megh_qtable_nnz",
			"Materialised entries in the Q-table operator B (Figure 7).", nil),
		temperature: reg.Gauge("megh_temperature",
			"Current Boltzmann exploration temperature.", nil),
		rejected: reg.Counter("megh_actions_rejected_total",
			"Proposed migrations rejected by the environment and dropped from the LSPI update.", nil),
	}
}

// Trace attaches a decision tracer: every Decide then emits one
// structured event (state digest, candidates considered with their
// Q-value context, chosen actions, and — when the tracer records
// timings — a span breakdown of the decide path). A nil tracer disables
// tracing; the disabled path performs a single pointer test and
// allocates nothing. Tracing never touches the exploration RNG, so a
// traced and an untraced run with the same seed make identical
// decisions.
func (m *Megh) Trace(t *trace.Tracer) { m.tracer = t }

// SetUpdateHook installs an observer called once per attempted rank-1 LSPI
// update, after the Sherman–Morrison step: a and b are the action indices
// of Eq. 10, n the multiplicity (how many identical logical transitions the
// rank-1 update folds together — always 1 in exact mode), gamma the
// discount, c the total cost added to z[a], and applied reports whether the
// update was applied (false when it was skipped as numerically singular, in
// which case z and θ were left untouched too). A nil hook (the default)
// costs one pointer test.
//
// The hook exists for the verification layer (internal/invariant), which
// shadows the sparse recursion with an independent dense accumulation of T
// and z and periodically checks ‖B·T − I‖∞.
//
// In deferred-update mode the hook fires when a queued transition is
// *applied* (at flush), not when it is queued, with n carrying the merged
// multiplicity. It fires once per rank-1 application — never mid-update —
// so B, z, θ and the n·(e_a e_aᵀ − γ·e_a e_bᵀ) the hook describes are
// always mutually consistent, and a probe run from inside the hook sees a
// coherent state.
func (m *Megh) SetUpdateHook(h func(a, b, n int, gamma, c float64, applied bool)) {
	m.updateHook = h
}

// Dim returns the projected space dimension d = N·M.
func (m *Megh) Dim() int { return m.d }

// Temperature returns the current Boltzmann temperature.
func (m *Megh) Temperature() float64 { return m.temp }

// QTableNNZ returns the number of materialised entries in B — the paper's
// "non-zero elements in the Q-table" metric (Figure 7).
func (m *Megh) QTableNNZ() int { return m.b.NNZ() }

// NNZHistory returns the per-step Q-table sizes recorded so far, oldest
// first. Until the Config.NNZHistoryCap ring wraps this is the learner's
// live slice (callers must copy anything they keep, as the experiments
// harness does); once wrapped it is a freshly allocated chronological copy
// of the most recent cap entries.
func (m *Megh) NNZHistory() []int {
	if m.nnzStart == 0 {
		return m.nnzHistory
	}
	out := make([]int, 0, len(m.nnzHistory))
	out = append(out, m.nnzHistory[m.nnzStart:]...)
	return append(out, m.nnzHistory[:m.nnzStart]...)
}

// nnzCap resolves Config.NNZHistoryCap: 0 means DefaultNNZHistoryCap,
// negative means unbounded (returns -1).
func (m *Megh) nnzCap() int {
	switch {
	case m.cfg.NNZHistoryCap < 0:
		return -1
	case m.cfg.NNZHistoryCap == 0:
		return DefaultNNZHistoryCap
	default:
		return m.cfg.NNZHistoryCap
	}
}

// recordNNZ appends one Q-table-size sample, overwriting the oldest entry
// once the configured cap is reached so a long-lived learner's bookkeeping
// stays bounded.
func (m *Megh) recordNNZ(v int) {
	if cap_ := m.nnzCap(); cap_ < 0 || len(m.nnzHistory) < cap_ {
		m.nnzHistory = append(m.nnzHistory, v)
		return
	}
	m.nnzHistory[m.nnzStart] = v
	m.nnzStart++
	if m.nnzStart == len(m.nnzHistory) {
		m.nnzStart = 0
	}
}

// Q returns the learned cost-to-go estimate θᵀφ_a for an action.
func (m *Megh) Q(a mdp.Action) float64 {
	return m.theta[a.Index(m.cfg.NumHosts)]
}

// Observe implements sim.FeedbackReceiver: it records the realised
// per-stage cost C_{t+1} of Eq. 6 for the actions chosen at step t, and
// reconciles the pending LSPI actions with what actually executed — a
// migration the environment rejected never changed the configuration, so
// learning it as an executed transition would credit the interval's cost to
// a state-action pair that was never visited.
func (m *Megh) Observe(fb *sim.Feedback) {
	m.stepCost = fb.StepCost
	m.haveCost = true
	if len(fb.Rejected) == 0 || len(m.pending) == 0 {
		return
	}
	if m.rejectedScratch == nil {
		m.rejectedScratch = make(map[int]bool, len(fb.Rejected))
	} else {
		clear(m.rejectedScratch)
	}
	rejected := m.rejectedScratch
	for _, mig := range fb.Rejected {
		if mig.VM >= 0 && mig.VM < m.cfg.NumVMs && mig.Dest >= 0 && mig.Dest < m.cfg.NumHosts {
			rejected[mig.VM*m.cfg.NumHosts+mig.Dest] = true
		}
	}
	kept := m.pending[:0]
	dropped := 0
	for _, a := range m.pending {
		if rejected[a] {
			dropped++
			continue
		}
		kept = append(kept, a)
	}
	m.pending = kept
	if m.metrics != nil && dropped > 0 {
		m.metrics.rejected.Add(int64(dropped))
	}
}

// Decide implements sim.Policy. Each call performs one iteration of
// Algorithm 1: select this step's actions with the current policy
// (Algorithm 2), then complete the pending LSPI update for last step's
// actions using the cost observed in between.
//
// The returned slice is scratch owned by the learner and is only valid
// until the next Decide or DecideAppend call; callers that retain
// migrations past that point — in particular callers that release a lock
// serialising learner access before reading the result — must copy them
// first, or use DecideAppend, which returns caller-owned storage. The
// simulator consumes the slice within the step, so the hot loop keeps the
// zero-copy form. With tracing disabled the whole decide path is
// allocation-free.
func (m *Megh) Decide(s *sim.Snapshot) []sim.Migration {
	if s.NumVMs() != m.cfg.NumVMs || s.NumHosts() != m.cfg.NumHosts {
		panic(fmt.Sprintf("core: snapshot %d×%d does not match Megh config %d×%d",
			s.NumVMs(), s.NumHosts(), m.cfg.NumVMs, m.cfg.NumHosts))
	}
	// Every standalone Decide opens a fresh aggregate trust window, so a
	// caller mutating one snapshot in place between calls can never hit the
	// trusted reuse tier. DecideBatch bumps once for the whole batch
	// instead: within one call the snapshots are immutable by contract.
	if !m.inBatch {
		m.aggEpoch++
	}
	if m.metrics != nil {
		start := time.Now()
		defer func() {
			m.metrics.decideSeconds.Observe(time.Since(start).Seconds())
			m.metrics.qtableNNZ.Set(float64(m.b.NNZ()))
			m.metrics.temperature.Set(m.temp)
		}()
	}
	m.spans = nil
	if m.tracer != nil {
		m.traceCands = m.traceCands[:0]
		if m.tracer.Timings() {
			m.spans = &m.spanScratch
			m.spans.Reset()
		}
	}
	// Temperature decay (Algorithm 2 line 2).
	m.temp *= math.Exp(-m.cfg.Epsilon)
	if m.temp < 1e-9 {
		m.temp = 1e-9
	}

	actions, migrations := m.selectActions(s)

	// Complete the pending update: for each action a taken at step t,
	// T ← T + φ_a(φ_a − γφ_b)ᵀ with b = π_t(s_{t+1}) (Eq. 10), B via
	// Sherman–Morrison (Eq. 11), z ← z + φ_a·C (line 10), θ = B·z
	// (line 11, maintained incrementally).
	if m.haveCost && len(m.pending) > 0 {
		next := m.pending[0]
		if len(actions) > 0 {
			next = actions[0]
		}
		// The interval's cost was generated by every action chosen last
		// step, including any the environment rejected and Observe
		// reconciled away — dividing by the survivor count alone would
		// inflate each survivor's share. pendingTotal is the pre-reconcile
		// count; the max guard covers learners whose pending predates the
		// field (legacy checkpoints record zero).
		total := m.pendingTotal
		if total < len(m.pending) {
			total = len(m.pending)
		}
		share := m.stepCost / float64(total)
		for _, a := range m.pending {
			m.update(a, next, share)
		}
	}
	// Bounded staleness for deferred updates: any queued transition is
	// applied after at most DeferMaxAge decides. In exact mode the queue
	// is always empty and this is one length test.
	if len(m.deferQ) > 0 {
		m.deferAge++
		if m.deferAge >= m.deferMaxAge() {
			m.FlushUpdates()
		}
	}
	m.spans.Mark("update")
	m.haveCost = false
	if len(actions) > 0 {
		// actions lives in actionScratch, which the next Decide reuses;
		// pending needs its own backing so the copy survives the step.
		m.pendingBuf = append(m.pendingBuf[:0], actions...)
		m.pending = m.pendingBuf
		m.pendingTotal = len(actions)
	}
	// When a step produces no decisions, the previous actions stay
	// pending: the configuration they created remains in effect, so
	// subsequent interval costs keep informing their value (a sequence of
	// implicit self-transitions, v = (1−γ)·φ_a).

	m.recordNNZ(m.b.NNZ())
	if m.learnStats != nil {
		m.learnStats.Decides++
	}
	if m.tracer != nil {
		m.traceEv = trace.Event{
			Kind:        trace.KindDecide,
			Step:        s.Step,
			Digest:      trace.DigestString(trace.Digest64(s.Step, s.VMHost, s.HostFailed)),
			Policy:      m.Name(),
			Temperature: m.temp,
			QTableNNZ:   m.b.NNZ(),
			Candidates:  m.traceCands,
			Spans:       m.spans.Spans(),
		}
		m.tracer.Emit(&m.traceEv)
	}
	return migrations
}

// DecideAppend runs exactly one Decide step but appends the chosen
// migrations to dst and returns the extended slice, which the caller owns:
// unlike Decide's scratch return, it remains valid across later decide
// calls. When dst has spare capacity the call allocates nothing beyond what
// Decide itself does, so callers that must retain results (e.g. the HTTP
// service) can reuse one buffer across requests.
func (m *Megh) DecideAppend(dst []sim.Migration, s *sim.Snapshot) []sim.Migration {
	return append(dst, m.Decide(s)...)
}

// update routes one LSPI transition (a taken, b the policy's next action,
// c the per-stage cost share): in exact mode (DeferThreshold == 0) it
// applies immediately; in deferred mode a transition whose influence on the
// score vector, |θ[a] − γ·θ[b]| + |c|, is below the threshold is queued and
// merged with repeats of the same (a, b) pair instead (Decide flushes the
// queue on the DeferMaxAge cadence).
func (m *Megh) update(a, b int, c float64) {
	if m.cfg.DeferThreshold > 0 {
		if math.Abs(m.theta[a]-m.cfg.Gamma*m.theta[b])+math.Abs(c) < m.cfg.DeferThreshold {
			m.deferPush(a, b, c)
			return
		}
	}
	m.applyUpdate(a, b, 1, c)
}

// applyUpdate applies n merged repetitions of one LSPI transition with
// summed cost c, maintaining B, z and θ = B·z incrementally:
//
//	B' = B − (B·u)(vᵀB)/den          u = φ_a, v = n·(φ_a − γφ_b)
//	θ' = B'·(z + c·φ_a) = θ − (B·u)(vᵀθ)/den + c·col_a(B')
//
// which is exact for T + n·φ_a(φ_a − γφ_b)ᵀ — n identical transitions in
// one rank-1 pass. B·u is column a of B and v has two non-zeros, so the
// whole transition runs through the structure-exploiting
// ShermanMorrisonBasisScaled kernel, and θ is maintained from the column
// snapshots the kernel already took (LastUpdateScaledCol /
// LastUpdateNewCol) — no vector allocations and no extra column walks.
// With n = 1 every scaling multiply is by exactly 1.0, so the exact-mode
// path is bit-for-bit the historical unscaled update. A numerically
// singular update is skipped (the operator would lose invertibility),
// matching the guarded inverse of §5.2.
//
// The update hook observes the rank-1 application once, with its full
// multiplicity and summed cost, so the invariant layer's dense T/z shadow
// stays in lockstep.
func (m *Megh) applyUpdate(a, b, n int, c float64) {
	scale := float64(n)
	vTheta := scale * (m.theta[a] - m.cfg.Gamma*m.theta[b])
	if _, err := m.b.ShermanMorrisonBasisScaled(a, b, m.cfg.Gamma, scale); err != nil {
		if m.learnStats != nil {
			m.learnStats.Skipped += int64(n)
		}
		if m.updateHook != nil {
			m.updateHook(a, b, n, m.cfg.Gamma, c, false)
		}
		return
	}
	ls := m.learnStats
	if ls != nil {
		// Bellman residual of the transition against the pre-update θ; c is
		// the merged cost of n identical transitions, so the per-transition
		// residual uses c/n (vTheta/scale is θ[a] − γθ[b] pre-update).
		resid := (vTheta - c) / scale
		if resid < 0 {
			resid = -resid
		}
		if isBad(resid) {
			ls.NonFinite++
		} else {
			ls.ResidualAbsSum += resid
		}
		ls.ResidualCount++
		ls.Applied += int64(n)
	}
	if vTheta != 0 {
		// θ needs (B·u)/den with B from *before* the rank-1 update; the
		// kernel snapshotted exactly that column, already scaled. The
		// subtraction routes through the scatter kernel with a negated
		// scale: x += (−a)·v is bitwise x −= a·v, and (−d)² == d², pinned by
		// sparse's TestScatterNegatedScaleMatchesSubtraction.
		idx, val := m.b.LastUpdateScaledCol()
		if ls != nil {
			dsq := sparse.ScatterAddScaledSq(m.theta, idx, val, -vTheta)
			if isBad(dsq) {
				ls.NonFinite++
			} else {
				ls.DriftSqSum += dsq
			}
		} else {
			sparse.ScatterAddScaled(m.theta, idx, val, -vTheta)
		}
	}
	m.z.Add(a, c)
	if c != 0 {
		idx, val := m.b.LastUpdateNewCol()
		if ls != nil {
			dsq := sparse.ScatterAddScaledSq(m.theta, idx, val, c)
			if isBad(dsq) {
				ls.NonFinite++
			} else {
				ls.DriftSqSum += dsq
			}
		} else {
			sparse.ScatterAddScaled(m.theta, idx, val, c)
		}
	}
	if m.updateHook != nil {
		m.updateHook(a, b, n, m.cfg.Gamma, c, true)
	}
}

// candidate pairs a VM with the reason it is being decided this step; the
// reason constrains its destination set (and labels the trace event).
type candidate struct {
	vm int
	// reason is one of trace.ReasonOverload, trace.ReasonUnderload,
	// trace.ReasonExploration. An overload shed (and only it) may wake a
	// sleeping destination, and only when no active host fits.
	reason string
}

// overload reports whether the candidate was shed from an overloaded host.
func (c candidate) overload() bool { return c.reason == trace.ReasonOverload }

// selectActions picks this step's candidate VMs and samples one action per
// candidate from the Boltzmann distribution over the learned Q row. The
// returned slices are scratch reused by the next Decide.
func (m *Megh) selectActions(s *sim.Snapshot) (actions []int, migrations []sim.Migration) {
	maxMig := int(math.Ceil(m.cfg.MaxMigrationsFrac * float64(m.cfg.NumVMs)))
	if maxMig < 1 {
		maxMig = 1
	}
	m.refreshHostAggregates(s)
	candidates := m.candidates(s, maxMig)
	m.spans.Mark("project")
	actions, migrations = m.chooseFromCandidates(s, candidates, maxMig)
	m.spans.Mark("sample")
	return actions, migrations
}

// chooseFromCandidates samples one destination per candidate and emits at
// most migBudget migrations. A candidate whose sampled move arrives after
// the budget is exhausted is recorded as its *stay-put* action: no
// migration is requested for it, so the VM factually stays where it is,
// and recording the sampled move instead would feed the LSPI update a
// transition that never executed — the next interval's cost would be
// credited to a state-action pair that was never visited, and the host
// aggregates (already charged for the move) would diverge from the action
// list. The invariant is pending ⊆ emitted ∪ stay-put, pinned by
// TestChooseFromCandidatesClipsToStayPut.
func (m *Megh) chooseFromCandidates(s *sim.Snapshot, candidates []candidate, migBudget int) (actions []int, migrations []sim.Migration) {
	if len(candidates) == 0 {
		return nil, nil
	}
	actions = m.actionScratch[:0]
	migrations = m.migScratch[:0]
	for _, c := range candidates {
		dest, act := m.sampleDestination(s, c)
		if dest != s.VMHost[c.vm] {
			if migBudget > 0 {
				migrations = append(migrations, sim.Migration{VM: c.vm, Dest: dest})
				m.speculate(s, c.vm, dest)
				migBudget--
			} else {
				act = c.vm*m.cfg.NumHosts + s.VMHost[c.vm]
			}
		}
		actions = append(actions, act)
	}
	m.actionScratch = actions
	m.migScratch = migrations
	return actions, migrations
}

// candidates assembles the step's decision set: up to two VMs per
// overloaded host, the VMs of the most underloaded active host
// (consolidation source, §3.1), and ExplorationCandidates uniform draws;
// deduplicated and capped.
func (m *Megh) candidates(s *sim.Snapshot, cap_ int) []candidate {
	// seenScratch and candScratch are scratch reused across steps (a
	// closure over locals here would heap-allocate every call); the result
	// is valid until the next candidates call.
	clear(m.seenScratch)
	m.candScratch = m.candScratch[:0]
	if m.candCacheOK {
		// Trusted-tier replay: the overload/underload scans below read only
		// the snapshot, which the trusted aggregate tier guarantees is the
		// same memory as last step, so their output is replayed from the
		// cache instead of rescanning all hosts. The exploration draw is
		// appended fresh below, consuming the RNG exactly as the scans'
		// (deterministic, RNG-free) path would.
		for _, c := range m.candCache {
			m.seenScratch[c.vm] = true
		}
		m.candScratch = append(m.candScratch, m.candCache...)
	} else {
		// Overloaded hosts: shed pressure, one decision per host per step so
		// a batch does not overshoot below the threshold (an unresolved
		// overload re-triggers next step). The heaviest VM is the decisive
		// one to re-place.
		for i := 0; i < s.NumHosts() && len(m.candScratch) < cap_; i++ {
			if !s.HostOverloaded(i) || len(s.HostVMs[i]) == 0 {
				continue
			}
			heaviest, demand := -1, -1.0
			for _, j := range s.HostVMs[i] {
				if s.VMMIPS[j] > demand {
					heaviest, demand = j, s.VMMIPS[j]
				}
			}
			m.addCandidate(heaviest, trace.ReasonOverload, cap_)
		}
		// Most underloaded active host below the threshold: consolidation
		// (may only target already-active hosts — never wake a machine to
		// empty another).
		minUtil := m.cfg.UnderloadThreshold
		minHost := -1
		for i := 0; i < s.NumHosts(); i++ {
			if len(s.HostVMs[i]) > 0 && s.HostUtil[i] < minUtil {
				minUtil = s.HostUtil[i]
				minHost = i
			}
		}
		if minHost >= 0 {
			for _, j := range s.HostVMs[minHost] {
				m.addCandidate(j, trace.ReasonUnderload, cap_)
			}
		}
		m.candCache = append(m.candCache[:0], m.candScratch...)
		m.candCacheOK = true
	}
	// An occasional exploration draw keeps the learner sampling the rest
	// of the space.
	if m.rng.Float64() < m.cfg.ExplorationRate && len(m.candScratch) < cap_ {
		// Draw before the liveness test so lifecycle runs consume exactly
		// the draws a fixed-population run would — byte-identical traces
		// depend on the RNG stream, not on who is alive.
		if j := m.rng.Intn(s.NumVMs()); s.VMLive(j) {
			m.addCandidate(j, trace.ReasonExploration, cap_)
		}
	}
	return m.candScratch
}

// addCandidate appends VM j to the candidate scratch unless it is already
// present or the cap is reached. A plain method (not a closure over locals)
// so the untraced Decide path stays allocation-free.
func (m *Megh) addCandidate(j int, reason string, cap_ int) {
	if !m.seenScratch[j] && len(m.candScratch) < cap_ {
		m.seenScratch[j] = true
		m.candScratch = append(m.candScratch, candidate{vm: j, reason: reason})
	}
}

// sampleDestination draws host k for VM j from the Boltzmann distribution
// exp(−(Q(j,k) − minQ)/Temp) over the feasible destinations (including the
// stay action), which is Algorithm 2 with sampling instead of arg-max.
// It returns the chosen destination and the action index.
func (m *Megh) sampleDestination(s *sim.Snapshot, c candidate) (dest, actionIdx int) {
	j := c.vm
	cur := s.VMHost[j]
	base := j * m.cfg.NumHosts

	// Collect feasible destinations and their Q values. Active hosts are
	// preferred; an overload shed may wake a sleeping machine, but only
	// when no active host can absorb the VM.
	feasible, qs, minQ := m.scanRow(s, j, cur, base, true)
	if c.overload() && len(feasible) <= 1 { // only the stay option found
		feasible, qs, minQ = m.scanRow(s, j, cur, base, false)
	}
	m.feasibleScratch = feasible
	m.qScratch = qs
	chosen := cur
	if len(feasible) > 0 {
		// Boltzmann weights; the minimum-Q action always has weight 1, so
		// the total never underflows. The q == minQ short-circuit is
		// bitwise-free: q−minQ is then a signed zero and Exp(±0) is exactly
		// 1 — but most θ entries of an untrained row are 0 == minQ, so it
		// skips the Exp call on the bulk of the lanes.
		var total float64
		for i, q := range qs {
			var w float64
			if q == minQ {
				w = 1
			} else {
				w = math.Exp(-(q - minQ) / m.temp)
			}
			qs[i] = w
			total += w
		}
		r := m.rng.Float64() * total
		chosen = feasible[len(feasible)-1]
		for i, w := range qs {
			r -= w
			if r <= 0 {
				chosen = feasible[i]
				break
			}
		}
	}
	if m.tracer != nil {
		stayQ := m.theta[base+cur]
		bestQ := minQ
		if len(feasible) == 0 {
			bestQ = stayQ
		}
		m.traceCands = append(m.traceCands, trace.Candidate{
			VM:       j,
			Reason:   c.reason,
			From:     cur,
			Dest:     chosen,
			Feasible: len(feasible),
			QChosen:  m.theta[base+chosen],
			QBest:    bestQ,
			QStay:    stayQ,
		})
	}
	return chosen, base + chosen
}

// fits checks whether VM j can move to host k: the host not being failed,
// RAM capacity, the overload threshold β after placement (a policy must not
// manufacture overloads), and — for consolidation/exploration moves — that
// the destination is already active. Aggregates include this step's earlier
// choices; refreshHostAggregates must have run for this snapshot. scanRow
// inlines the same tests (kept in exact sync) for the hot sweep.
func (m *Megh) fits(s *sim.Snapshot, j, k int, activeOnly bool) bool {
	// A failed host delivers no capacity; proposing it burns the per-step
	// migration budget on a guaranteed rejection and feeds the LSPI update
	// an action that never executed.
	if m.hostBlocked[k] {
		return false
	}
	if activeOnly && !m.hostActive[k] {
		return false
	}
	if m.hostRAM[k]+s.VMSpecs[j].RAMMB > m.hostRAMCap[k] {
		return false
	}
	after := (m.hostMIPS[k] + s.VMMIPS[j]) / m.hostMIPSCap[k]
	return after <= s.OverloadThreshold
}

// DebugTriplets exposes B's materialised entries for diagnostics. Rows the
// learner never touched keep their implicit (1/δ)-diagonal, which this view
// omits; use DebugB for the full matrix.
func (m *Megh) DebugTriplets() []sparse.Triplet { return m.b.Triplets() }

// DebugB materialises the full B matrix, implicit diagonal included, as a
// dense row-major copy. O(d²) — intended for the invariant probes and tests
// on small configurations.
func (m *Megh) DebugB() [][]float64 { return m.b.Dense() }

// DebugTheta exposes a sparse copy of θ for diagnostics.
func (m *Megh) DebugTheta() *sparse.Vector { return thetaVector(m.theta) }

// DebugZ exposes a copy of the accumulated cost vector z for diagnostics
// and the invariant probes (θ must equal B·z at all times).
func (m *Megh) DebugZ() *sparse.Vector { return m.z.Clone() }

// thetaVector converts the dense θ mirror into its sparse export form.
func thetaVector(theta []float64) *sparse.Vector {
	v := sparse.NewVector(len(theta))
	for i, x := range theta {
		if x != 0 {
			v.Set(i, x)
		}
	}
	return v
}
