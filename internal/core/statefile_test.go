package core

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"megh/internal/sim"
)

// trainedLearner runs a short workload through a fresh learner so its
// checkpoint carries non-trivial B, θ, z, and history.
func trainedLearner(t *testing.T) *Megh {
	t.Helper()
	m, err := New(DefaultConfig(6, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range snapshotStream(t, 6, 3, 12) {
		if i > 0 {
			m.Observe(&sim.Feedback{Step: i - 1, StepCost: 0.4})
		}
		m.Decide(s)
	}
	return m
}

func TestSaveStateFileRoundTrip(t *testing.T) {
	m := trainedLearner(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "learner.ckpt")
	if err := m.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != m.Config() {
		t.Fatalf("restored config %+v, want %+v", got.Config(), m.Config())
	}
	if !reflect.DeepEqual(got.DebugTriplets(), m.DebugTriplets()) {
		t.Fatal("restored B differs from the saved learner")
	}
	if !reflect.DeepEqual(got.DebugTheta().Dense(), m.DebugTheta().Dense()) {
		t.Fatal("restored θ differs from the saved learner")
	}
	if !reflect.DeepEqual(got.DebugZ().Dense(), m.DebugZ().Dense()) {
		t.Fatal("restored z differs from the saved learner")
	}
	// The atomic write must not leave its temp file behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "learner.ckpt" {
		t.Fatalf("checkpoint directory holds %v, want only learner.ckpt", entries)
	}
}

// TestSaveStateFileBareFilename: a path with no directory component writes
// into the current directory (the temp file needs an explicit "." there).
func TestSaveStateFileBareFilename(t *testing.T) {
	m := trainedLearner(t)
	t.Chdir(t.TempDir())
	if err := m.SaveStateFile("learner.ckpt"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("learner.ckpt"); err != nil {
		t.Fatal(err)
	}
}

func TestSaveStateFileErrors(t *testing.T) {
	m := trainedLearner(t)
	// The destination directory does not exist: temp-file creation fails.
	missing := filepath.Join(t.TempDir(), "missing", "x.ckpt")
	if err := m.SaveStateFile(missing); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	// The destination path is an existing directory: the rename fails and
	// the already-written temp file must be cleaned up.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "isdir")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveStateFile(blocked); err == nil {
		t.Fatal("save onto a directory path succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file left behind after failed rename: %v", entries)
	}
}

func TestLoadStateFileErrors(t *testing.T) {
	// A missing checkpoint keeps fs.ErrNotExist semantics so callers can
	// distinguish "no checkpoint yet" from a corrupt one.
	if _, err := LoadStateFile(filepath.Join(t.TempDir(), "none.ckpt")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing checkpoint error = %v, want fs.ErrNotExist", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStateFile(bad); err == nil {
		t.Fatal("corrupt checkpoint loaded")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestSaveStatePropagatesWriteError(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveState(failWriter{}); err == nil {
		t.Fatal("encode onto a failing writer succeeded")
	}
}
