package core

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"megh/internal/sim"
	"megh/internal/trace"
)

const crossProcessChildEnv = "MEGH_TRACE_DETERMINISM_OUT"

// TestCrossProcessTraceChild is not a test of its own: it is the child
// half of TestSameSeedTracesAreByteIdenticalAcrossProcesses, active only
// when the parent sets crossProcessChildEnv to an output path.
func TestCrossProcessTraceChild(t *testing.T) {
	out := os.Getenv(crossProcessChildEnv)
	if out == "" {
		t.Skip("child mode only (set by the cross-process determinism test)")
	}
	if err := os.WriteFile(out, deterministicTraceRun(t), 0o644); err != nil {
		t.Fatal(err)
	}
}

// deterministicTraceRun executes the fixed same-seed scenario and returns
// the raw trace bytes.
func deterministicTraceRun(t *testing.T) []byte {
	t.Helper()
	cfg := tinyConfig(t, 14, 7, 0.55)
	cfg.Steps = 50
	var buf bytes.Buffer
	tracer, err := trace.New(trace.Options{W: &buf})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tracer
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(14, 7, 4242))
	if err != nil {
		t.Fatal(err)
	}
	m.Trace(tracer)
	if _, err := s.Run(m); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Same-seed runs must be byte-identical *across process restarts*, not just
// within one process: every container iterates in sorted index order, so no
// map-iteration nondeterminism (which is reseeded per process) can leak
// into floating-point accumulation order. This re-runs the test binary
// twice in child mode and compares the trace bytes, then checks the parent
// process produces those same bytes too.
func TestSameSeedTracesAreByteIdenticalAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	runChild := func(name string) []byte {
		out := filepath.Join(dir, name)
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrossProcessTraceChild$", "-test.count=1")
		cmd.Env = append(os.Environ(), crossProcessChildEnv+"="+out)
		if raw, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child run failed: %v\n%s", err, raw)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := runChild("a.trace")
	b := runChild("b.trace")
	if len(a) == 0 {
		t.Fatal("child produced no trace output")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed traces differ between two child processes")
	}
	if parent := deterministicTraceRun(t); !bytes.Equal(a, parent) {
		t.Fatal("child trace differs from the parent process's same-seed trace")
	}
}
