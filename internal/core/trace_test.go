package core

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"megh/internal/sim"
	"megh/internal/trace"
)

// Tracing must be a pure observer: a traced learner and an untraced one,
// given the same seed and world, must make exactly the same decisions.
// This guards the invariant that the trace path never consumes the
// exploration RNG.
func TestTracingDoesNotChangeDecisions(t *testing.T) {
	cfg := tinyConfig(t, 12, 6, 0.5)
	cfg.Steps = 40
	for i := range cfg.Traces {
		// Vary utilization so over- and underload candidates both occur.
		tr := make([]float64, cfg.Steps)
		for s := range tr {
			tr[s] = 0.2 + 0.6*float64((i+s)%5)/4
		}
		cfg.Traces[i] = tr
	}

	run := func(tracer *trace.Tracer) *sim.Result {
		c := cfg
		c.Tracer = tracer
		s, err := sim.New(c)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(DefaultConfig(12, 6, 99))
		if err != nil {
			t.Fatal(err)
		}
		m.Trace(tracer)
		res, err := s.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	tracer, err := trace.New(trace.Options{W: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	plain := run(nil)
	traced := run(tracer)
	// DecideSeconds is wall time and differs between any two runs; every
	// other field must match exactly.
	for i := range plain.Steps {
		plain.Steps[i].DecideSeconds = 0
		traced.Steps[i].DecideSeconds = 0
	}
	if !reflect.DeepEqual(plain.Steps, traced.Steps) {
		t.Fatal("tracing changed the run's step metrics — the trace path consumed RNG or mutated state")
	}
	if tracer.Events() == 0 {
		t.Fatal("traced run emitted no events")
	}
}

// Two same-seed traced runs must produce byte-identical event streams —
// the reproducibility contract meghtrace diff relies on.
func TestSameSeedTracesAreByteIdentical(t *testing.T) {
	cfg := tinyConfig(t, 10, 5, 0.6)
	cfg.Steps = 30

	run := func() []byte {
		var buf bytes.Buffer
		tracer, err := trace.New(trace.Options{W: &buf})
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Tracer = tracer
		s, err := sim.New(c)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(DefaultConfig(10, 5, 42))
		if err != nil {
			t.Fatal(err)
		}
		m.Trace(tracer)
		if _, err := s.Run(m); err != nil {
			t.Fatal(err)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no trace output")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed traces differ byte-for-byte")
	}
	events, err := trace.Read(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	res := trace.Diff(events, events, 0)
	if !res.Identical() {
		t.Fatalf("self-diff reports divergence: %+v", res.Divergences)
	}
}

// A disabled tracer must not add a single allocation to the decide path.
func TestDisabledTracerAddsNoAllocations(t *testing.T) {
	snap := tinySnapshot(t, 20, 8)
	baseline, err := New(DefaultConfig(20, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	disabled, err := New(DefaultConfig(20, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	disabled.Trace(nil)

	measure := func(m *Megh) float64 {
		m.Decide(snap) // warm scratch buffers once
		return testing.AllocsPerRun(200, func() { m.Decide(snap) })
	}
	if base, dis := measure(baseline), measure(disabled); dis > base {
		t.Fatalf("disabled tracing allocates: %.1f allocs/op vs %.1f baseline", dis, base)
	}
}

// BenchmarkDecide isolates one full decide cycle (Decide plus cost
// feedback, so the Sherman–Morrison update runs every iteration — the
// production path) on a 150-VM × 100-host world. Compare the
// sub-benchmarks to verify the tracing contract: "disabled" must match
// "no-tracer" in both ns/op and allocs/op, and "enabled" (JSONL sink)
// must stay within a few percent of wall time.
func BenchmarkDecide(b *testing.B) {
	const nVMs, nHosts = 150, 100
	snap := tinySnapshot(b, nVMs, nHosts)

	bench := func(b *testing.B, tracer *trace.Tracer, setTracer bool) {
		m, err := New(DefaultConfig(nVMs, nHosts, 7))
		if err != nil {
			b.Fatal(err)
		}
		if setTracer {
			m.Trace(tracer)
		}
		fb := sim.Feedback{StepCost: 0.5, EnergyCost: 0.4, SLACost: 0.1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Decide(snap)
			m.Observe(&fb)
		}
		reportGridDims(b, nVMs, nHosts)
	}
	newTracer := func(b *testing.B, timings bool) *trace.Tracer {
		tr, err := trace.New(trace.Options{W: io.Discard, RingSize: -1, Timings: timings})
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	// The nocost variant never feeds a step cost back, so the LSPI update
	// (the one legitimate allocation source: Q-table growth) stays out of
	// the loop — this sub-benchmark must report 0 allocs/op, and `make
	// check` gates on it.
	b.Run("no-tracer-nocost", func(b *testing.B) {
		m, err := New(DefaultConfig(nVMs, nHosts, 7))
		if err != nil {
			b.Fatal(err)
		}
		fb := sim.Feedback{StepCost: 0.5}
		for i := 0; i < 2000; i++ { // warm scratch and Q-table
			m.Decide(snap)
			m.Observe(&fb)
		}
		m.haveCost = false
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Decide(snap)
			m.haveCost = false
		}
		reportGridDims(b, nVMs, nHosts)
	})
	b.Run("no-tracer", func(b *testing.B) { bench(b, nil, false) })
	b.Run("disabled", func(b *testing.B) { bench(b, nil, true) })
	b.Run("enabled", func(b *testing.B) { bench(b, newTracer(b, false), true) })
	b.Run("enabled-timings", func(b *testing.B) { bench(b, newTracer(b, true), true) })
}
