package core

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"megh/internal/sim"
)

// The committed fixture was serialised by the original map-of-maps sparse
// implementation (before the slice-backed storage rewrite). The gob format
// carries only triplets and index/value pairs, so it must load unchanged
// into the current implementation — checkpoints written by older builds may
// not be orphaned by a storage rewrite.
func TestLoadStateReadsMapBackedFixture(t *testing.T) {
	raw, err := os.ReadFile("testdata/checkpoint_v1_mapbacked.gob")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadState(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("map-backed checkpoint no longer loads: %v", err)
	}
	// Values recorded when the fixture was generated (see
	// fixture_gen_test.go); they pin the decoded state, not just the
	// absence of errors.
	if m.cfg.NumVMs != 12 || m.cfg.NumHosts != 6 {
		t.Fatalf("decoded config %d×%d, want 12×6", m.cfg.NumVMs, m.cfg.NumHosts)
	}
	if got, want := m.temp, 1.6464349082820848; got != want {
		t.Fatalf("decoded temperature %v, want %v", got, want)
	}
	if got := m.b.NNZ(); got != 45 {
		t.Fatalf("decoded Q-table NNZ %d, want 45", got)
	}
	if want := []int{64}; !reflect.DeepEqual(m.pending, want) {
		t.Fatalf("decoded pending %v, want %v", m.pending, want)
	}
	// Re-saving through the current implementation upgrades the checkpoint
	// to the exact-RNG-state format, and from there on save → load → save
	// must be byte-stable: SaveState consumes no randomness and persists the
	// full generator state, so nothing can drift across the round-trip.
	var first, second bytes.Buffer
	if err := m.SaveState(&first); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadState(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("round-trip reload failed: %v", err)
	}
	if err := m2.SaveState(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("save → load → save is no longer byte-stable")
	}
	if m.temp != m2.temp || m.b.NNZ() != m2.b.NNZ() || !reflect.DeepEqual(m.pending, m2.pending) {
		t.Fatal("round-trip through the slice-backed implementation changed learner state")
	}
	for i := range m.theta {
		if m.theta[i] != m2.theta[i] {
			t.Fatalf("θ[%d] changed across round-trip: %v vs %v", i, m.theta[i], m2.theta[i])
		}
	}
}

// A learner restored from the map-backed fixture must keep scheduling:
// resuming the same world for more steps exercises the restored Q-table,
// θ mirror and pending update end to end on the new storage.
func TestMapBackedFixtureResumesScheduling(t *testing.T) {
	raw, err := os.ReadFile("testdata/checkpoint_v1_mapbacked.gob")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadState(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(t, 12, 6, 0.5)
	cfg.Steps = 40
	for i := range cfg.Traces {
		tr := make([]float64, cfg.Steps)
		for s := range tr {
			tr[s] = 0.15 + 0.7*float64((i+s)%6)/5
		}
		cfg.Traces[i] = tr
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(m)
	if err != nil {
		t.Fatalf("restored learner failed to resume: %v", err)
	}
	if len(res.Steps) != cfg.Steps {
		t.Fatalf("resumed run produced %d steps, want %d", len(res.Steps), cfg.Steps)
	}
}
