package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"megh/internal/sim"
	"megh/internal/trace"
	"megh/internal/workload"
)

// snapSequence captures a cloned snapshot per simulated step, giving tests
// a deterministic stream of distinct states to replay against learners.
type snapSequence struct {
	out *[]*sim.Snapshot
}

func (snapSequence) Name() string { return "seq" }

func (c *snapSequence) Decide(s *sim.Snapshot) []sim.Migration {
	*c.out = append(*c.out, s.Clone())
	return nil
}

// snapshotStream simulates `steps` intervals of a world whose VM loads vary
// step to step (so overload and underload candidates both occur) and
// returns every step's snapshot.
func snapshotStream(t testing.TB, nVMs, nHosts, steps int) []*sim.Snapshot {
	t.Helper()
	cfg := tinyConfig(t, nVMs, nHosts, 0.1)
	cfg.Steps = steps
	for i := range cfg.Traces {
		tr := make([]float64, steps)
		for s := range tr {
			tr[s] = 0.15 + 0.7*float64((i+s)%5)/4
		}
		cfg.Traces[i] = workload.Trace(tr)
	}
	var snaps []*sim.Snapshot
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&snapSequence{out: &snaps}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != steps {
		t.Fatalf("captured %d snapshots, want %d", len(snaps), steps)
	}
	return snaps
}

// batchItems pairs the snapshot stream with per-step cost feedback, the
// shape both the sequential and the batched learner consume.
func batchItems(snaps []*sim.Snapshot) []BatchItem {
	items := make([]BatchItem, len(snaps))
	for i, s := range snaps {
		items[i].Snap = s
		if i > 0 {
			items[i].Feedback = &sim.Feedback{
				Step:     i - 1,
				StepCost: 0.3 + 0.05*float64(i%7),
			}
		}
	}
	return items
}

// TestDecideBatchMatchesSequential is the differential acceptance test for
// the batch path: in both exact and deferred-update mode, DecideBatch over
// a snapshot stream must be decision-identical — same migrations AND
// byte-identical trace streams — to the equivalent sequential Observe/
// Decide loop with the same seed. Batching amortises transport and
// locking; it must not change semantics. Run under -race by `make check`.
func TestDecideBatchMatchesSequential(t *testing.T) {
	const nVMs, nHosts, steps = 12, 6, 60
	snaps := snapshotStream(t, nVMs, nHosts, steps)

	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"exact", func(*Config) {}},
		{"deferred", func(c *Config) {
			c.DeferThreshold = math.MaxFloat64
			c.DeferMaxAge = 4
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			newLearner := func(buf *bytes.Buffer) *Megh {
				cfg := DefaultConfig(nVMs, nHosts, 1234)
				tc.mod(&cfg)
				m, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := trace.New(trace.Options{W: buf})
				if err != nil {
					t.Fatal(err)
				}
				m.Trace(tr)
				return m
			}

			items := batchItems(snaps)

			var seqBuf bytes.Buffer
			seq := newLearner(&seqBuf)
			seqOut := make([][]sim.Migration, len(items))
			deferredSeen := false
			for i, it := range items {
				if it.Feedback != nil {
					seq.Observe(it.Feedback)
				}
				seqOut[i] = seq.DecideAppend(nil, it.Snap)
				deferredSeen = deferredSeen || seq.DeferredUpdates() > 0
			}

			var batchBuf bytes.Buffer
			batch := newLearner(&batchBuf)
			batchOut := batch.DecideBatch(items)

			if !reflect.DeepEqual(seqOut, batchOut) {
				t.Fatal("DecideBatch diverged from the sequential Observe/Decide loop")
			}
			if !bytes.Equal(seqBuf.Bytes(), batchBuf.Bytes()) {
				t.Fatal("batched and sequential trace streams differ byte-for-byte")
			}
			total := 0
			for _, migs := range batchOut {
				total += len(migs)
			}
			if total == 0 {
				t.Fatal("stream produced no migrations — the differential test exercised nothing")
			}
			if tc.name == "deferred" && !deferredSeen {
				t.Fatal("deferred mode never queued an update — the amortised path was not exercised")
			}
		})
	}
}

// TestDeferredFlushCadence pins the bounded-staleness contract: with
// DeferMaxAge = K, no queued transition survives more than K decides, and
// the flush applies the whole queue (merged multiplicities included) to B.
func TestDeferredFlushCadence(t *testing.T) {
	const nVMs, nHosts, steps = 10, 5, 40
	snaps := snapshotStream(t, nVMs, nHosts, steps)
	cfg := DefaultConfig(nVMs, nHosts, 7)
	cfg.DeferThreshold = math.MaxFloat64 // defer everything
	cfg.DeferMaxAge = 3
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	m.SetUpdateHook(func(a, b, n int, gamma, c float64, ok bool) {
		if ok {
			applied += n
		}
	})
	queuedEver := false
	for i, it := range batchItems(snaps) {
		if it.Feedback != nil {
			m.Observe(it.Feedback)
		}
		m.Decide(it.Snap)
		queuedEver = queuedEver || m.DeferredUpdates() > 0
		if m.deferAge >= cfg.DeferMaxAge {
			t.Fatalf("step %d: deferred queue aged %d decides, cap is %d",
				i, m.deferAge, cfg.DeferMaxAge)
		}
	}
	if !queuedEver {
		t.Fatal("defer-everything mode never queued an update")
	}
	if applied == 0 {
		t.Fatal("no deferred update was ever flushed into B")
	}
	// A manual flush drains whatever is still queued.
	m.FlushUpdates()
	if n := m.DeferredUpdates(); n != 0 {
		t.Fatalf("FlushUpdates left %d transitions queued", n)
	}
	if m.deferAge != 0 {
		t.Fatalf("FlushUpdates left deferAge = %d", m.deferAge)
	}
}

// TestDeferPushMergesRepeats checks the merge algebra bookkeeping: repeats
// of one (a, b) pair fold into a single queue entry with summed
// multiplicity and cost, and distinct pairs keep insertion order.
func TestDeferPushMergesRepeats(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.DeferThreshold = math.MaxFloat64
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.deferPush(1, 2, 0.5)
	m.deferPush(3, 0, 0.25)
	m.deferPush(1, 2, 0.5)
	m.deferPush(1, 2, 0.5)
	want := []deferredUpdate{{A: 1, B: 2, N: 3, C: 1.5}, {A: 3, B: 0, N: 1, C: 0.25}}
	if !reflect.DeepEqual(m.deferQ, want) {
		t.Fatalf("deferQ = %+v, want %+v", m.deferQ, want)
	}
	if got := m.DeferredUpdates(); got != 4 {
		t.Fatalf("DeferredUpdates() = %d, want 4", got)
	}
}

// TestScaledUpdateMatchesRepeatedUpdates verifies the amortisation algebra
// end-to-end at the learner level: applying one merged update of
// multiplicity n must leave B, z and θ (numerically) where n individual
// updates of cost c/n leave them.
func TestScaledUpdateMatchesRepeatedUpdates(t *testing.T) {
	const n, a, b, c = 5, 1, 3, 0.7
	mk := func() *Megh {
		m, err := New(DefaultConfig(2, 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		// Seed some asymmetry so θ is non-trivial before the updates.
		m.applyUpdate(0, 2, 1, 0.4)
		return m
	}
	merged := mk()
	merged.applyUpdate(a, b, n, c)
	repeated := mk()
	for i := 0; i < n; i++ {
		repeated.applyUpdate(a, b, 1, c/n)
	}
	for i := 0; i < merged.Dim(); i++ {
		got, want := merged.theta[i], repeated.theta[i]
		if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("θ[%d]: merged %g vs repeated %g", i, got, want)
		}
	}
	gb, rb := merged.DebugB(), repeated.DebugB()
	for i := range gb {
		for j := range gb[i] {
			if math.Abs(gb[i][j]-rb[i][j]) > 1e-12 {
				t.Fatalf("B[%d,%d]: merged %g vs repeated %g", i, j, gb[i][j], rb[i][j])
			}
		}
	}
}

// TestDeferredCheckpointRoundTrip: a learner with a non-empty deferred
// queue must checkpoint losslessly — byte-stable re-save, queue preserved,
// and the restored learner's future decisions identical to the original's.
func TestDeferredCheckpointRoundTrip(t *testing.T) {
	const nVMs, nHosts, steps = 10, 5, 30
	snaps := snapshotStream(t, nVMs, nHosts, steps)
	cfg := DefaultConfig(nVMs, nHosts, 99)
	cfg.DeferThreshold = math.MaxFloat64
	cfg.DeferMaxAge = 1 << 30 // never auto-flush: keep the queue non-empty
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := batchItems(snaps[:20])
	m.DecideBatch(items)
	if m.DeferredUpdates() == 0 {
		t.Fatal("setup failed to leave updates queued")
	}

	var first bytes.Buffer
	if err := m.SaveState(&first); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.DeferredUpdates(), m.DeferredUpdates(); got != want {
		t.Fatalf("restored queue holds %d transitions, want %d", got, want)
	}
	if back.deferAge != m.deferAge {
		t.Fatalf("restored deferAge %d, want %d", back.deferAge, m.deferAge)
	}
	if back.pendingTotal != m.pendingTotal {
		t.Fatalf("restored pendingTotal %d, want %d", back.pendingTotal, m.pendingTotal)
	}
	var second bytes.Buffer
	if err := back.SaveState(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("deferred-state checkpoint round-trip is not byte-stable")
	}

	rest := batchItems(snaps)[20:]
	if !reflect.DeepEqual(m.DecideBatch(rest), back.DecideBatch(rest)) {
		t.Fatal("restored learner diverged from the original after the checkpoint")
	}
}

// TestLoadStateRejectsCorruptDeferredQueue: out-of-range indices, zero
// multiplicities and non-finite costs in a persisted queue must be refused,
// not replayed into the kernel.
func TestLoadStateRejectsCorruptDeferredQueue(t *testing.T) {
	cfg := DefaultConfig(2, 2, 1)
	cfg.DeferThreshold = math.MaxFloat64
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.deferPush(1, 2, 0.5)
	for name, corrupt := range map[string]deferredUpdate{
		"action-out-of-range": {A: 99, B: 0, N: 1, C: 0},
		"zero-multiplicity":   {A: 0, B: 1, N: 0, C: 0},
		"nan-cost":            {A: 0, B: 1, N: 1, C: math.NaN()},
	} {
		t.Run(name, func(t *testing.T) {
			saved := m.deferQ[0]
			m.deferQ[0] = corrupt
			var buf bytes.Buffer
			err := m.SaveState(&buf)
			m.deferQ[0] = saved
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadState(&buf); err == nil {
				t.Fatalf("corrupt deferred entry %+v loaded without error", corrupt)
			}
		})
	}
}

// BenchmarkDecideBatch measures the amortised per-decision cost of the
// batched hot path on the BenchmarkDecide world (150 VMs × 100 hosts).
// ns/op is per *decision*, not per batch, so the sub-benchmarks compare
// directly against BenchmarkDecide/disabled. The deferred variants queue
// every transition (DeferThreshold = +Inf) and flush once per batch
// (DeferMaxAge = batch size): the near-greedy policy resamples the same
// (a, b) transitions step after step, so a batch of K decides collapses
// into a handful of merged rank-1 kernel passes instead of K.
// Fixed iterations (-benchtime=10000x, see Makefile bench-json) keep ns/op
// comparable across revisions as the Q-table densifies.
func BenchmarkDecideBatch(b *testing.B) {
	const nVMs, nHosts = 150, 100
	snap := tinySnapshot(b, nVMs, nHosts)

	bench := func(b *testing.B, batch int, deferred bool) {
		cfg := DefaultConfig(nVMs, nHosts, 7)
		if deferred {
			cfg.DeferThreshold = math.MaxFloat64
			cfg.DeferMaxAge = batch
		}
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fb := sim.Feedback{StepCost: 0.5, EnergyCost: 0.4, SLACost: 0.1}
		items := make([]BatchItem, batch)
		for i := range items {
			items[i] = BatchItem{Snap: snap, Feedback: &fb}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			m.DecideBatch(items)
		}
		reportGridDims(b, nVMs, nHosts)
	}
	// Sub-benchmark names avoid a trailing "-<digits>" (n64, not 64):
	// benchjson strips the GOMAXPROCS suffix go test appends, and a bare
	// numeric tail would be eaten with it.
	b.Run("exact-n64", func(b *testing.B) { bench(b, 64, false) })
	b.Run("deferred-n16", func(b *testing.B) { bench(b, 16, true) })
	b.Run("deferred-n64", func(b *testing.B) { bench(b, 64, true) })
	b.Run("deferred-n256", func(b *testing.B) { bench(b, 256, true) })

	// The ROADMAP's scaling target: amortized decide cost on a 10k-host
	// grid. The world sits at a consolidation steady state (every active
	// host at 12.5% utilisation — no overload or underload candidates), and
	// the batch reuses one snapshot pointer per call, the serving shape the
	// trusted aggregate tier and candidate cache exist for: the measured
	// amortized cost is fixed bookkeeping plus the exploration-rate share
	// of active-list sweeps.
	b.Run("deferred-grid10k", func(b *testing.B) {
		const gVMs, gHosts, batch = 1000, 10000, 256
		snap := steadySnapshot(b, gVMs, gHosts, 0.5)
		cfg := DefaultConfig(gVMs, gHosts, 7)
		cfg.DeferThreshold = math.MaxFloat64
		cfg.DeferMaxAge = batch
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fb := sim.Feedback{StepCost: 0.5, EnergyCost: 0.4, SLACost: 0.1}
		items := make([]BatchItem, batch)
		for i := range items {
			items[i] = BatchItem{Snap: snap, Feedback: &fb}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			m.DecideBatch(items)
		}
		reportGridDims(b, gVMs, gHosts)
	})
}

// steadySnapshot is tinySnapshotN at a chosen utilisation: util 0.5 parks
// every occupied host between the underload and overload thresholds, so a
// decide stream at that load has no structural candidates — the grid-scale
// steady state.
func steadySnapshot(t testing.TB, nVMs, nHosts int, util float64) *sim.Snapshot {
	t.Helper()
	var snap *sim.Snapshot
	cfg := tinyConfig(t, nVMs, nHosts, util)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&snapGrabber{out: &snap}); err != nil {
		t.Fatal(err)
	}
	return snap
}

// reportGridDims attaches the world's dimensions to a Decide/DecideBatch
// benchmark as custom metrics; benchjson lifts unknown units into the
// BENCH_*.json extra map, keeping ns/op trajectories comparable across
// grid-size changes.
func reportGridDims(b *testing.B, nVMs, nHosts int) {
	b.ReportMetric(float64(nHosts), "hosts")
	b.ReportMetric(float64(nVMs), "vms")
}

// TestDecideBatchPanicsOnMismatchedWorld: the batch path must reject a
// wrong-sized snapshot exactly as Decide does.
func TestDecideBatchPanicsOnMismatchedWorld(t *testing.T) {
	m, err := New(DefaultConfig(5, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on N×M mismatch")
		}
	}()
	m.DecideBatch([]BatchItem{{Snap: tinySnapshot(t, 2, 2)}})
}
