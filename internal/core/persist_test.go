package core

import (
	"bytes"
	"math"
	"testing"

	"megh/internal/sim"
	"megh/internal/workload"
)

// trainLearner runs a learner through a short bursty simulation so its
// state is non-trivial.
func trainLearner(t *testing.T) (*Megh, *sim.Simulator) {
	t.Helper()
	const nVMs, nHosts, steps = 12, 8, 60
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(3)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 2)
	s, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(nVMs, nHosts, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(m); err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, _ := trainLearner(t)
	var buf bytes.Buffer
	if err := m.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.QTableNNZ() != m.QTableNNZ() {
		t.Fatalf("Q-table NNZ %d != %d", back.QTableNNZ(), m.QTableNNZ())
	}
	if math.Abs(back.Temperature()-m.Temperature()) > 1e-15 {
		t.Fatalf("temperature %g != %g", back.Temperature(), m.Temperature())
	}
	if len(back.NNZHistory()) != len(m.NNZHistory()) {
		t.Fatal("NNZ history length lost")
	}
	// θ must be identical entry-wise.
	for i := 0; i < m.d; i++ {
		if back.theta[i] != m.theta[i] {
			t.Fatalf("θ[%d] differs after round-trip", i)
		}
	}
	// B must be identical on a sample of entries.
	for _, tr := range m.b.Triplets() {
		if back.b.Get(tr.Row, tr.Col) != tr.Val {
			t.Fatalf("B[%d,%d] differs after round-trip", tr.Row, tr.Col)
		}
	}
}

func TestRestoredLearnerKeepsServing(t *testing.T) {
	m, s := trainLearner(t)
	var buf bytes.Buffer
	if err := m.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The restored learner must drive a fresh simulation without issue
	// and keep its learned state growing.
	before := back.QTableNNZ()
	res, err := s.Run(back)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost() <= 0 {
		t.Fatal("restored learner produced a degenerate run")
	}
	if back.QTableNNZ() < before {
		t.Fatal("restored learner's Q-table shrank")
	}
}

// TestSaveLoadPreservesRNGStream pins the property the differential suite
// in internal/invariant builds on: SaveState captures the exploration RNG
// exactly and consumes nothing, so the original learner and a restored one
// continue the identical random stream.
func TestSaveLoadPreservesRNGStream(t *testing.T) {
	m, _ := trainLearner(t)
	var buf bytes.Buffer
	if err := m.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if a, b := m.rng.Uint64(), back.rng.Uint64(); a != b {
			t.Fatalf("RNG streams diverge at draw %d: %#x vs %#x", i, a, b)
		}
	}
}

// TestLoadStateLegacyReseed keeps the pre-RngState path alive: a checkpoint
// carrying only the old RngSeed field must still load, deterministically
// reseeded from that value.
func TestLoadStateLegacyReseed(t *testing.T) {
	m, _ := trainLearner(t)
	var buf bytes.Buffer
	if err := m.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	var st persistedState
	newTestDecoder(t, buf.Bytes(), &st)
	st.RngState = nil
	st.RngSeed = 12345
	var buf2 bytes.Buffer
	encodeTestState(t, &buf2, st)
	back, err := LoadState(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	want := newXrand(12345)
	for i := 0; i < 16; i++ {
		if a, b := back.rng.Uint64(), want.Uint64(); a != b {
			t.Fatalf("legacy reseed stream wrong at draw %d", i)
		}
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	if _, err := LoadState(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadStateRejectsWrongVersion(t *testing.T) {
	m, _ := trainLearner(t)
	var buf bytes.Buffer
	if err := m.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding through the internal type.
	var st persistedState
	dec := newTestDecoder(t, buf.Bytes(), &st)
	_ = dec
	st.Version = 99
	var buf2 bytes.Buffer
	encodeTestState(t, &buf2, st)
	if _, err := LoadState(&buf2); err == nil {
		t.Fatal("expected version error")
	}
}

func TestLoadStateRejectsInvalidFields(t *testing.T) {
	m, _ := trainLearner(t)
	mutations := []func(*persistedState){
		func(st *persistedState) { st.Temp = -1 },
		func(st *persistedState) { st.Temp = math.NaN() },
		func(st *persistedState) { st.Temp = math.Inf(1) },
		func(st *persistedState) { st.Config.NumVMs = 0 },
		func(st *persistedState) { st.Pending = []int{1 << 30} },
		func(st *persistedState) { st.Z.Dim = 1 },
		func(st *persistedState) { st.RngState = []uint64{1, 2, 3} },
	}
	for i, mutate := range mutations {
		var buf bytes.Buffer
		if err := m.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		var st persistedState
		newTestDecoder(t, buf.Bytes(), &st)
		mutate(&st)
		var buf2 bytes.Buffer
		encodeTestState(t, &buf2, st)
		if _, err := LoadState(&buf2); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
