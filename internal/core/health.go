package core

import "megh/internal/sparse"

// This file holds the learner's cheap, always-on learning-health
// accumulators: cumulative sums the health layer (internal/health) polls
// and diffs to derive windowed rates (θ drift per decide, Bellman residual
// EWMAs) without adding any work to the disabled path. The accumulators are
// telemetry, not learner state — they are not persisted in checkpoints, and
// a restored learner restarts them from zero (pollers rebase on reattach).

// LearnStats is a cumulative snapshot of learning activity since stats were
// enabled. All fields are monotone, so a poller can subtract consecutive
// readings to get exact per-window aggregates regardless of how many
// decides (or batch items) elapsed between polls.
type LearnStats struct {
	// Decides counts completed Decide calls.
	Decides int64
	// Applied counts logical LSPI transitions applied, with merged
	// multiplicity (a deferred update of multiplicity n counts n).
	Applied int64
	// Skipped counts logical transitions skipped as numerically singular.
	Skipped int64
	// DriftSqSum accumulates the squared magnitude of every θ write the
	// update path performs: Σ (Δθ_i)² across the rank-1 column passes. Its
	// square-rooted per-window delta is a tight proxy for ‖Δθ‖₂ over the
	// window (exact when the scaled and cost column passes touch disjoint
	// indices; within √2 otherwise).
	DriftSqSum float64
	// ResidualAbsSum accumulates |θ[a] − γ·θ[b] − c/n| per rank-1
	// application, evaluated against the pre-update θ — the Bellman/TD
	// residual of the transition being learned. ResidualCount is the number
	// of samples folded in.
	ResidualAbsSum float64
	ResidualCount  int64
	// NonFinite counts NaN/Inf residuals or drift contributions — any
	// value here means the learner state is numerically corrupt.
	NonFinite int64
}

// EnableLearnStats turns on the in-line learning-health accumulation.
// Idempotent; enabling costs one extra multiply-add per θ write and two
// scalar ops per rank-1 update. When never enabled the update path pays a
// single nil pointer test and the untraced Decide stays 0 allocs/op.
func (m *Megh) EnableLearnStats() {
	if m.learnStats == nil {
		m.learnStats = &LearnStats{}
	}
}

// LearnStats returns a copy of the current accumulators; the zero value
// when stats were never enabled.
func (m *Megh) LearnStats() LearnStats {
	if m.learnStats == nil {
		return LearnStats{}
	}
	return *m.learnStats
}

// DeferredAge reports how many Decide calls the oldest queued deferred
// transition has been waiting — 0 in exact mode or with an empty queue.
func (m *Megh) DeferredAge() int { return m.deferAge }

// DebugBRow returns row i of B as a sparse vector copy (implicit diagonal
// included). Like the other Debug accessors it is a verification/probe
// surface, not a hot-path API: the health layer's sampled ‖B·T−I‖∞ and
// θ = B·z probes read a handful of rows per probe cadence.
func (m *Megh) DebugBRow(i int) *sparse.Vector { return m.b.Row(i) }

// DebugBZRow returns (B·z)[i] — the dot product of row i of B with z —
// computed against the live state without cloning either operand. The
// θ = B·z consistency probe compares it with Theta(i).
func (m *Megh) DebugBZRow(i int) float64 {
	var sum float64
	row := m.b.Row(i)
	row.Range(func(j int, x float64) bool {
		sum += x * m.z.Get(j)
		return true
	})
	return sum
}

// Theta returns θ[i] from the dense mirror.
func (m *Megh) Theta(i int) float64 { return m.theta[i] }

func isBad(v float64) bool {
	// NaN or ±Inf without calling math (keeps this inlineable): NaN is the
	// only value that differs from itself; Inf−Inf is NaN.
	return v != v || v-v != 0
}
