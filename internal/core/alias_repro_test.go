package core

import (
	"testing"
	"unsafe"

	"megh/internal/sim"
)

func TestDecideReturnsAliasedScratch(t *testing.T) {
	m, err := New(DefaultConfig(20, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	snap := hotSnapshotForAlias(t)
	var first []sim.Migration
	for i := 0; i < 200; i++ {
		out := m.Decide(snap)
		if len(out) > 0 {
			first = out
			break
		}
	}
	if first == nil {
		t.Skip("no migrations produced")
	}
	for i := 0; i < 200; i++ {
		out := m.Decide(snap)
		if len(out) > 0 {
			if &out[0] == &first[0] {
				t.Logf("CONFIRMED: Decide reuses backing array %p across calls", unsafe.Pointer(&out[0]))
				return
			}
			t.Fatalf("backing arrays differ: %p vs %p", &out[0], &first[0])
		}
	}
}

func hotSnapshotForAlias(t *testing.T) *sim.Snapshot {
	t.Helper()
	return tinySnapshotN(t, 20, 10)
}
