package core

import (
	"testing"

	"megh/internal/sim"
)

// TestDecideScratchContract pins the documented aliasing contract of the
// zero-alloc hot path: Decide returns a learner-owned scratch slice that is
// only valid until the next Decide/DecideAppend call. The test asserts the
// scratch really is reused (if a future change silently starts allocating,
// the alloc gate in alloc_test.go and this test both flag it) so callers are
// never lulled into holding the slice across calls.
func TestDecideScratchContract(t *testing.T) {
	m, err := New(DefaultConfig(20, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	snap := tinySnapshotN(t, 20, 10)
	first := decideUntilMigrations(t, m, snap)
	for i := 0; i < 200; i++ {
		out := m.Decide(snap)
		if len(out) > 0 {
			if &out[0] != &first[0] {
				t.Fatalf("Decide no longer reuses its scratch buffer (%p vs %p); "+
					"if that is intentional, update the documented contract and the alloc gate",
					&out[0], &first[0])
			}
			return
		}
	}
	t.Fatal("no second migration batch produced")
}

// TestDecideAppendReturnsOwnedCopy is the regression test for the
// scratch-aliasing bug: callers that must hold decisions past the next
// Decide (the HTTP server releasing its lock before encoding the response)
// use DecideAppend, whose result must NOT alias the internal scratch and
// must survive arbitrarily many later calls unchanged.
func TestDecideAppendReturnsOwnedCopy(t *testing.T) {
	m, err := New(DefaultConfig(20, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	snap := tinySnapshotN(t, 20, 10)

	var owned []sim.Migration
	for i := 0; i < 200 && len(owned) == 0; i++ {
		owned = m.DecideAppend(nil, snap)
	}
	if len(owned) == 0 {
		t.Fatal("no migrations produced")
	}
	saved := append([]sim.Migration(nil), owned...)

	// Hammer the scratch path; the owned copy must not move underneath us.
	for i := 0; i < 200; i++ {
		if out := m.Decide(snap); len(out) > 0 && &out[0] == &owned[0] {
			t.Fatalf("DecideAppend result aliases the Decide scratch buffer")
		}
	}
	for i := range saved {
		if owned[i] != saved[i] {
			t.Fatalf("owned copy mutated by later Decide calls: index %d was %+v, now %+v",
				i, saved[i], owned[i])
		}
	}

	// Appending to a caller-provided slice must extend it in place.
	prefix := make([]sim.Migration, 1, 1+len(saved))
	prefix[0] = sim.Migration{VM: -1, Dest: -1}
	var got []sim.Migration
	for i := 0; i < 200; i++ {
		got = m.DecideAppend(prefix, snap)
		if len(got) > 1 {
			break
		}
	}
	if len(got) <= 1 {
		t.Fatal("no migrations appended to caller slice")
	}
	if got[0] != prefix[0] {
		t.Fatalf("DecideAppend clobbered the caller's prefix: %+v", got[0])
	}
}

func decideUntilMigrations(t *testing.T, m *Megh, snap *sim.Snapshot) []sim.Migration {
	t.Helper()
	for i := 0; i < 200; i++ {
		if out := m.Decide(snap); len(out) > 0 {
			return out
		}
	}
	t.Fatal("no migrations produced")
	return nil
}
