package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"megh/internal/sim"
)

// FuzzCheckpointLoad feeds arbitrary bytes to the checkpoint loader. It
// must never panic, and anything it accepts must behave like a real
// checkpoint: re-saving is possible and the save → load → save cycle is
// byte-stable.
func FuzzCheckpointLoad(f *testing.F) {
	// Seed with a genuine checkpoint from a learner holding non-trivial
	// state, plus a truncation of it and a couple of obvious non-gobs.
	m, err := New(DefaultConfig(4, 3, 5))
	if err != nil {
		f.Fatal(err)
	}
	snap := tinySnapshotN(f, 4, 3)
	for i := 0; i < 8; i++ {
		snap.Step = i
		m.Decide(snap)
		m.Observe(&sim.Feedback{Step: i, EnergyCost: 1, SLACost: 0.5, ResourceCost: 0.25, StepCost: 1.75})
	}
	var seed bytes.Buffer
	if err := m.SaveState(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Resource guard, not an oracle: a syntactically valid gob can
		// declare an absurd learner dimension, and LoadState would then
		// legitimately allocate d = NumVMs·NumHosts floats. Keep the
		// harness on small configurations; rejection paths don't care.
		var st persistedState
		if gob.NewDecoder(bytes.NewReader(data)).Decode(&st) == nil {
			if st.Config.NumVMs > 64 || st.Config.NumHosts > 64 {
				return
			}
		}
		back, err := LoadState(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var first, second bytes.Buffer
		if err := back.SaveState(&first); err != nil {
			t.Fatalf("accepted checkpoint cannot re-save: %v", err)
		}
		again, err := LoadState(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("our own save does not load: %v", err)
		}
		if err := again.SaveState(&second); err != nil {
			t.Fatalf("second save failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("save → load → save is not byte-stable for accepted input")
		}
	})
}
