package experiments

import (
	"strings"
	"testing"

	"megh/internal/invariant"
	"megh/internal/scenario"
	"megh/internal/sim"
)

// smallScenario is a fast matrix size used across the scenario tests.
func smallScenario() ScenarioSetup {
	return ScenarioSetup{Hosts: 12, VMs: 20, Steps: 100, Seed: 1}
}

func TestRunScenarioProducesChurnStats(t *testing.T) {
	SetCheckerFactory(func() sim.Checker { return invariant.NewSimChecker() })
	defer SetCheckerFactory(nil)
	row, err := RunScenario(smallScenario(), "churn", "Megh")
	if err != nil {
		t.Fatal(err)
	}
	if row.Scenario != "churn" || row.Policy != "Megh" {
		t.Fatalf("row mislabeled: %+v", row)
	}
	if row.Arrivals == 0 || row.Departures == 0 {
		t.Fatalf("churn scenario reported no churn: %+v", row)
	}
	if row.MeanLiveVMs <= 0 || row.MeanLiveVMs > float64(smallScenario().VMs) {
		t.Fatalf("mean live VMs %g out of range", row.MeanLiveVMs)
	}
	if row.TotalCost <= 0 {
		t.Fatalf("degenerate total cost %g", row.TotalCost)
	}
}

func TestRunScenarioRejectsUnknownInputs(t *testing.T) {
	if _, err := RunScenario(smallScenario(), "no-such-scenario", "Megh"); err == nil {
		t.Error("unknown scenario must error")
	}
	if _, err := RunScenario(smallScenario(), "churn", "no-such-policy"); err == nil {
		t.Error("unknown policy must error")
	}
}

func TestRunScenarioMatrixDefaultsCoverRegistry(t *testing.T) {
	setup := smallScenario()
	setup.Steps = 60
	rows, err := RunScenarioMatrix(setup, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(scenario.Names()) * len(ScenarioPolicies())
	if len(rows) != wantRows {
		t.Fatalf("matrix has %d rows, want %d", len(rows), wantRows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Scenario] = true
	}
	for _, name := range scenario.Names() {
		if !seen[name] {
			t.Errorf("matrix is missing scenario %q", name)
		}
	}
}

func TestScenarioMatrixDeterministic(t *testing.T) {
	setup := smallScenario()
	setup.Steps = 60
	a, err := RunScenarioMatrix(setup, []string{"churn"}, []string{"Megh"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarioMatrix(setup, []string{"churn"}, []string{"Megh"})
	if err != nil {
		t.Fatal(err)
	}
	// DecideMs is wall-clock; everything else must repeat exactly.
	a[0].MeanDecideMs, b[0].MeanDecideMs = 0, 0
	if a[0] != b[0] {
		t.Fatalf("same-seed matrix rows differ:\n%+v\n%+v", a[0], b[0])
	}
}

func TestWriteScenarioTableAndCSV(t *testing.T) {
	rows := []ScenarioRow{
		{
			Scenario: "churn",
			TableRow: TableRow{Policy: "Megh", TotalCost: 7.84, EnergyCost: 6.1,
				SLACost: 1.2, Migrations: 42, MeanActiveHosts: 9.5, MeanDecideMs: 0.1},
			MeanLiveVMs: 27.1, Arrivals: 90, Departures: 92,
		},
	}
	var tbl strings.Builder
	if err := WriteScenarioTable(&tbl, "Scenario matrix", rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scenario matrix", "churn", "Megh", "7.84", "27.1", "90", "92"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, tbl.String())
		}
	}
	var csv strings.Builder
	if err := WriteScenarioCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scenario,policy,total_cost_usd") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "churn,Megh,7.8400") {
		t.Errorf("CSV row wrong: %q", lines[1])
	}
}
