package experiments

import (
	"strings"
	"testing"
)

func TestRunReplicated(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 20, VMs: 26, Steps: 48, Seed: 1}
	rows, err := RunReplicated(setup, []string{"Megh", "THR-MMT"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Reps != 3 {
			t.Fatalf("%s: reps = %d", r.Policy, r.Reps)
		}
		if r.Cost.Mean <= 0 {
			t.Fatalf("%s: degenerate mean cost", r.Policy)
		}
		if r.Cost.Std < 0 || r.Migrations.Std < 0 {
			t.Fatalf("%s: negative std", r.Policy)
		}
	}
	if !strings.Contains(rows[0].Cost.String(), "±") {
		t.Fatal("MeanStd.String missing ± rendering")
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 5, VMs: 6, Steps: 10, Seed: 1}
	if _, err := RunReplicated(setup, nil, 0); err == nil {
		t.Fatal("zero reps should error")
	}
	if _, err := RunReplicated(setup, []string{"bogus"}, 1); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestRunReplicatedDefaultPolicies(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 8, VMs: 10, Steps: 24, Seed: 2}
	rows, err := RunReplicated(setup, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy != "THR-MMT" || rows[1].Policy != "Megh" {
		t.Fatalf("default policies wrong: %+v", rows)
	}
}
