package experiments

import "megh/internal/sim"

// checkerFactory, when non-nil, is invoked once per Setup.Build so every
// simulation this package assembles carries a fresh invariant checker.
var checkerFactory func() sim.Checker

// SetCheckerFactory installs (or, with nil, clears) a factory producing the
// runtime invariant checker attached to every built configuration. The
// package's own tests use it to run every experiment under the conservation
// checks in internal/invariant without this package importing the checker;
// cmd/meghsim's -check flag rides the same configuration field directly.
//
// The factory must be safe for concurrent calls: parallel runners build
// several configurations at once. Install it before starting runs — the
// variable itself is not synchronised.
func SetCheckerFactory(f func() sim.Checker) { checkerFactory = f }
