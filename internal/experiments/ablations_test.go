package experiments

import (
	"strings"
	"testing"

	"megh/internal/cost"
	"megh/internal/sim"
)

func ablationSetup() Setup {
	return Setup{Dataset: PlanetLab, Hosts: 24, VMs: 32, Steps: 72, Seed: 5}
}

func TestRunCustomMutatorApplied(t *testing.T) {
	setup := ablationSetup()
	p, err := NewPolicy("Megh", setup.VMs, setup.Hosts, 1)
	if err != nil {
		t.Fatal(err)
	}
	mutated := false
	res, err := RunCustom(setup, p, func(c *sim.Config) {
		mutated = true
		params := cost.Default()
		params.EnergyPricePerKWh = 0 // free electricity
		c.Cost = params
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mutated {
		t.Fatal("mutator not invoked")
	}
	if res.TotalEnergyCost() != 0 {
		t.Fatalf("energy cost %g with zero tariff", res.TotalEnergyCost())
	}
}

func TestMigrationCapSweep(t *testing.T) {
	rows, err := MigrationCapSweep(ablationSetup(), []float64{0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !strings.Contains(rows[0].Policy, "cap=1%") {
		t.Fatalf("row label %q", rows[0].Policy)
	}
	if _, err := MigrationCapSweep(ablationSetup(), []float64{-1}); err == nil {
		t.Fatal("invalid cap should error")
	}
}

func TestExplorationSweep(t *testing.T) {
	rows, err := ExplorationSweep(ablationSetup(), []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// More exploration must not migrate less (same world, same seed).
	if rows[1].Migrations < rows[0].Migrations {
		t.Fatalf("exploration=1 migrated %d < exploration=0's %d",
			rows[1].Migrations, rows[0].Migrations)
	}
}

func TestAccountingComparison(t *testing.T) {
	rows, err := AccountingComparison(ablationSetup(), []string{"Megh"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var perInterval, cumulative float64
	for _, r := range rows {
		switch {
		case strings.Contains(r.Policy, "per-interval"):
			perInterval = r.SLACost
		case strings.Contains(r.Policy, "cumulative"):
			cumulative = r.SLACost
		default:
			t.Fatalf("unlabelled row %q", r.Policy)
		}
	}
	// The ratchet can only increase SLA cost.
	if cumulative < perInterval {
		t.Fatalf("cumulative SLA %.4f below per-interval %.4f", cumulative, perInterval)
	}
}

func TestSelectionComparison(t *testing.T) {
	rows, err := SelectionComparison(ablationSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Policy] = true
	}
	for _, want := range []string{"THR-MMT", "THR-RS", "THR-MC", "THR-MU"} {
		if !names[want] {
			t.Fatalf("missing %s in %v", want, names)
		}
	}
}

func TestTopologyComparison(t *testing.T) {
	rows, err := TopologyComparison(ablationSetup(), []string{"Megh"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !strings.Contains(rows[0].Policy, "flat") || !strings.Contains(rows[1].Policy, "fat-tree") {
		t.Fatalf("row labels %q / %q", rows[0].Policy, rows[1].Policy)
	}
	if _, err := TopologyComparison(ablationSetup(), nil, -1); err == nil {
		t.Fatal("negative hop factor should error")
	}
}

func TestFailureRecovery(t *testing.T) {
	setup := ablationSetup()
	failures := []sim.Failure{{Host: 0, From: 24, Until: 48}}
	rows, err := FailureRecovery(setup, []string{"Megh", "THR-MMT"}, failures)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Compare against the failure-free baseline: injected outages must
	// not reduce cost.
	base, err := RunPolicy(setup, "Megh")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Policy == "Megh" && r.TotalCost < base.TotalCost()*0.95 {
			t.Fatalf("failure run cost %.4f suspiciously below baseline %.4f",
				r.TotalCost, base.TotalCost())
		}
	}
	if _, err := FailureRecovery(setup, nil, []sim.Failure{{Host: 99, From: 0, Until: 1}}); err == nil {
		t.Fatal("invalid failure host should error")
	}
}

func TestLearnerComparison(t *testing.T) {
	rows, err := LearnerComparison(ablationSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	names := map[string]bool{}
	var megh, madvm float64
	for _, r := range rows {
		names[r.Policy] = true
		switch r.Policy {
		case "Megh":
			megh = r.MeanDecideMs
		case "MadVM":
			madvm = r.MeanDecideMs
		}
	}
	for _, want := range []string{"Megh", "MadVM", "Q-learning"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
	// The paper's execution-time ordering: Megh ≪ MadVM.
	if megh >= madvm {
		t.Fatalf("Megh decide %.4f ms not below MadVM's %.4f ms", megh, madvm)
	}
}
