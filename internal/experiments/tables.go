package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"megh/internal/qlearn"
	"megh/internal/sim"
)

// TableRow is one policy's line in a Table-2/3-style comparison.
type TableRow struct {
	Policy          string
	TotalCost       float64 // USD
	EnergyCost      float64 // USD
	SLACost         float64 // USD
	Migrations      int
	MeanActiveHosts float64
	MeanDecideMs    float64
}

// RunPolicy builds and runs one named policy on the setup. Q-learning is
// given its offline training phase first (two episodes), which is part of
// the point the paper makes about it.
func RunPolicy(setup Setup, policy string) (*sim.Result, error) {
	cfg, err := setup.Build()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	p, err := NewPolicy(policy, setup.VMs, setup.Hosts, setup.PolicySeed())
	if err != nil {
		return nil, err
	}
	if q, ok := p.(*qlearn.QLearning); ok {
		if err := q.Train(s, 2); err != nil {
			return nil, err
		}
	}
	return s.Run(p)
}

// RowFromResult condenses a run into a table row.
func RowFromResult(r *sim.Result) TableRow {
	return TableRow{
		Policy:          r.Policy,
		TotalCost:       r.TotalCost(),
		EnergyCost:      r.TotalEnergyCost(),
		SLACost:         r.TotalSLACost(),
		Migrations:      r.TotalMigrations(),
		MeanActiveHosts: r.MeanActiveHosts(),
		MeanDecideMs:    r.MeanDecideSeconds() * 1000,
	}
}

// RunTable reproduces a Table-2/3-style comparison: every named policy on
// the same setup. On the full paper setups this is the most expensive
// entry point in the package.
func RunTable(setup Setup, policies []string) ([]TableRow, error) {
	if len(policies) == 0 {
		policies = []string{"THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT", "Megh"}
	}
	rows := make([]TableRow, 0, len(policies))
	for _, name := range policies {
		res, err := RunPolicy(setup, name)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", name, err)
		}
		rows = append(rows, RowFromResult(res))
	}
	return rows, nil
}

// WriteTable renders rows as an aligned text table (the layout of the
// paper's Tables 2–3).
func WriteTable(w io.Writer, title string, rows []TableRow) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Policy\tTotal cost (USD)\tEnergy (USD)\tSLA (USD)\t#VM migrations\tMean active hosts\tExec time (ms)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%d\t%.1f\t%.3f\n",
			r.Policy, r.TotalCost, r.EnergyCost, r.SLACost,
			r.Migrations, r.MeanActiveHosts, r.MeanDecideMs)
	}
	return tw.Flush()
}

// WriteTableCSV renders rows as CSV.
func WriteTableCSV(w io.Writer, rows []TableRow) error {
	if _, err := fmt.Fprintln(w, "policy,total_cost_usd,energy_usd,sla_usd,migrations,mean_active_hosts,exec_ms"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%d,%.2f,%.4f\n",
			r.Policy, r.TotalCost, r.EnergyCost, r.SLACost,
			r.Migrations, r.MeanActiveHosts, r.MeanDecideMs); err != nil {
			return err
		}
	}
	return nil
}
