package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"megh/internal/qlearn"
	"megh/internal/scenario"
	"megh/internal/sim"
)

// ScenarioSetup sizes a scenario-matrix run. Unlike Setup it carries no
// Dataset: the scenario layer generates its own fleet, VM mix, load,
// lifecycle and failure schedules from the scenario config plus one seed.
type ScenarioSetup struct {
	Hosts, VMs, Steps int
	Seed              int64
}

// DefaultScenarioSetup is the size the committed EXPERIMENTS.md matrix uses
// — big enough for real churn dynamics, small enough to rerun casually.
func DefaultScenarioSetup(seed int64) ScenarioSetup {
	return ScenarioSetup{Hosts: 20, VMs: 40, Steps: 300, Seed: seed}
}

// ScenarioPolicies is the default policy set of the scenario matrix: the
// paper's learner, the strongest CloudSim heuristic, and the
// value-iteration baseline.
func ScenarioPolicies() []string {
	return []string{"Megh", "THR-MMT", "MadVM"}
}

// ScenarioRow is one (scenario, policy) cell of the scenario matrix: the
// standard cost/migration columns plus the churn statistics that only exist
// in lifecycle runs.
type ScenarioRow struct {
	Scenario string
	TableRow
	MeanLiveVMs float64
	Arrivals    int
	Departures  int
}

// RunScenario realises the named scenario at the setup's size and runs one
// policy over it. The checker factory (SetCheckerFactory / -check) applies
// exactly as it does to the dataset experiments.
func RunScenario(setup ScenarioSetup, scenarioName, policy string) (ScenarioRow, error) {
	cfg, err := scenario.Build(scenarioName, setup.Hosts, setup.VMs, setup.Steps, setup.Seed)
	if err != nil {
		return ScenarioRow{}, err
	}
	if checkerFactory != nil {
		cfg.Checker = checkerFactory()
	}
	s, err := sim.New(cfg)
	if err != nil {
		return ScenarioRow{}, err
	}
	p, err := NewPolicy(policy, setup.VMs, setup.Hosts, sim.Seeds{Base: setup.Seed}.Policy())
	if err != nil {
		return ScenarioRow{}, err
	}
	if q, ok := p.(*qlearn.QLearning); ok {
		if err := q.Train(s, 2); err != nil {
			return ScenarioRow{}, err
		}
	}
	res, err := s.Run(p)
	if err != nil {
		return ScenarioRow{}, fmt.Errorf("experiments: scenario %s policy %s: %w", scenarioName, policy, err)
	}
	return ScenarioRow{
		Scenario:    scenarioName,
		TableRow:    RowFromResult(res),
		MeanLiveVMs: res.MeanLiveVMs(),
		Arrivals:    res.TotalArrivals(),
		Departures:  res.TotalDepartures(),
	}, nil
}

// RunScenarioMatrix runs every named scenario × every named policy. Empty
// argument slices mean the full registry and the default policy set.
func RunScenarioMatrix(setup ScenarioSetup, scenarios, policies []string) ([]ScenarioRow, error) {
	if len(scenarios) == 0 {
		scenarios = scenario.Names()
	}
	if len(policies) == 0 {
		policies = ScenarioPolicies()
	}
	rows := make([]ScenarioRow, 0, len(scenarios)*len(policies))
	for _, sc := range scenarios {
		for _, pol := range policies {
			row, err := RunScenario(setup, sc, pol)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteScenarioTable renders the matrix as an aligned text table, one block
// of policies per scenario.
func WriteScenarioTable(w io.Writer, title string, rows []ScenarioRow) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Scenario\tPolicy\tTotal cost (USD)\tEnergy (USD)\tSLA (USD)\t#VM migrations\tMean active hosts\tMean live VMs\tArrivals\tDepartures")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%d\t%.1f\t%.1f\t%d\t%d\n",
			r.Scenario, r.Policy, r.TotalCost, r.EnergyCost, r.SLACost,
			r.Migrations, r.MeanActiveHosts, r.MeanLiveVMs, r.Arrivals, r.Departures)
	}
	return tw.Flush()
}

// WriteScenarioCSV renders the matrix as CSV.
func WriteScenarioCSV(w io.Writer, rows []ScenarioRow) error {
	if _, err := fmt.Fprintln(w, "scenario,policy,total_cost_usd,energy_usd,sla_usd,migrations,mean_active_hosts,mean_live_vms,arrivals,departures"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%.4f,%.4f,%.4f,%d,%.2f,%.2f,%d,%d\n",
			r.Scenario, r.Policy, r.TotalCost, r.EnergyCost, r.SLACost,
			r.Migrations, r.MeanActiveHosts, r.MeanLiveVMs, r.Arrivals, r.Departures); err != nil {
			return err
		}
	}
	return nil
}
