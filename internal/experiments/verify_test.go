package experiments

import (
	"os"
	"testing"

	"megh/internal/invariant"
	"megh/internal/sim"
)

// TestMain runs the entire experiments suite with the runtime invariant
// checker attached to every simulation: each existing test doubles as a
// zero-violation assertion, because a violated conservation law aborts the
// run and fails whichever test triggered it.
func TestMain(m *testing.M) {
	SetCheckerFactory(func() sim.Checker { return invariant.NewSimChecker() })
	os.Exit(m.Run())
}

// TestPaperSetupsRunClean drives the Megh policy through shrunk versions of
// both paper-scale setups (Tables 2 and 3) under the checker. Zero
// violations over full heterogeneous worlds — including first-fit placement,
// host sleeps, and the real cost model — is the tentpole acceptance check.
func TestPaperSetupsRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale verification run")
	}
	for _, tc := range []struct {
		name  string
		setup Setup
	}{
		{"planetlab", PaperPlanetLab(1).Scaled(8)},
		{"google", PaperGoogle(1).Scaled(8)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunPolicy(tc.setup, "Megh")
			if err != nil {
				t.Fatalf("checked paper-scale run failed: %v", err)
			}
			if len(res.Steps) != tc.setup.Steps {
				t.Fatalf("run covered %d steps, want %d", len(res.Steps), tc.setup.Steps)
			}
			if res.TotalCost() <= 0 {
				t.Fatal("degenerate run: non-positive total cost")
			}
		})
	}
}
