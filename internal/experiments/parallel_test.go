package experiments

import (
	"testing"
)

func TestRunTableParallelMatchesSequential(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 20, VMs: 26, Steps: 48, Seed: 3}
	policies := []string{"THR-MMT", "Megh", "LR-MMT"}
	seq, err := RunTable(setup, policies)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTableParallel(setup, policies, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Policy != par[i].Policy {
			t.Fatalf("row %d ordering differs: %s vs %s", i, seq[i].Policy, par[i].Policy)
		}
		// Everything except wall-clock timing must be bit-identical.
		if seq[i].TotalCost != par[i].TotalCost ||
			seq[i].Migrations != par[i].Migrations ||
			seq[i].MeanActiveHosts != par[i].MeanActiveHosts {
			t.Fatalf("row %d differs:\nseq %+v\npar %+v", i, seq[i], par[i])
		}
	}
}

func TestRunTableParallelDefaults(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 10, VMs: 13, Steps: 24, Seed: 1}
	rows, err := RunTableParallel(setup, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("default policy set yielded %d rows", len(rows))
	}
}

func TestRunTableParallelPropagatesErrors(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 10, VMs: 13, Steps: 24, Seed: 1}
	if _, err := RunTableParallel(setup, []string{"Megh", "bogus"}, 2); err == nil {
		t.Fatal("unknown policy should fail the whole table")
	}
}
