package experiments

import (
	"fmt"

	"megh/internal/stats"
)

// ReplicatedRow summarises one policy across independent seeded
// repetitions — how EXPERIMENTS.md reports run-to-run robustness.
type ReplicatedRow struct {
	Policy string
	Reps   int
	// Cost, Migrations, ActiveHosts, DecideMs hold mean and population
	// standard deviation across repetitions.
	Cost, Migrations, ActiveHosts, DecideMs MeanStd
}

// MeanStd is a mean ± standard deviation pair.
type MeanStd struct {
	Mean, Std float64
}

func meanStd(xs []float64) MeanStd {
	return MeanStd{Mean: stats.Mean(xs), Std: stats.StdDev(xs)}
}

// String renders the pair as "m ± s".
func (m MeanStd) String() string { return fmt.Sprintf("%.2f ± %.2f", m.Mean, m.Std) }

// RunReplicated runs each named policy `reps` times with distinct seeds
// (setup.Seed + k·8779) and returns per-policy summaries. The same seed
// sequence is used for every policy so they face identical workloads.
func RunReplicated(setup Setup, policies []string, reps int) ([]ReplicatedRow, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiments: reps %d must be positive", reps)
	}
	if len(policies) == 0 {
		policies = []string{"THR-MMT", "Megh"}
	}
	rows := make([]ReplicatedRow, 0, len(policies))
	for _, name := range policies {
		costs := make([]float64, 0, reps)
		migs := make([]float64, 0, reps)
		act := make([]float64, 0, reps)
		dec := make([]float64, 0, reps)
		for k := 0; k < reps; k++ {
			s := setup
			s.Seed = setup.Seed + int64(k)*8779
			res, err := RunPolicy(s, name)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s rep %d: %w", name, k, err)
			}
			costs = append(costs, res.TotalCost())
			migs = append(migs, float64(res.TotalMigrations()))
			act = append(act, res.MeanActiveHosts())
			dec = append(dec, res.MeanDecideSeconds()*1000)
		}
		rows = append(rows, ReplicatedRow{
			Policy:      name,
			Reps:        reps,
			Cost:        meanStd(costs),
			Migrations:  meanStd(migs),
			ActiveHosts: meanStd(act),
			DecideMs:    meanStd(dec),
		})
	}
	return rows, nil
}
