// Package experiments assembles the paper's evaluation (§6): one named
// runner per table and figure, each returning the data series the paper
// plots, plus text/CSV emitters used by cmd/tables and cmd/figures and the
// repository-root benchmarks.
package experiments

import (
	"fmt"

	"megh/internal/consolidation"
	"megh/internal/core"
	"megh/internal/madvm"
	"megh/internal/qlearn"
	"megh/internal/sim"
	"megh/internal/workload"
)

// Dataset selects which of the paper's two workloads drives an experiment.
type Dataset string

// The two evaluation workloads (§6.2).
const (
	PlanetLab Dataset = "planetlab"
	Google    Dataset = "google"
)

// Validate reports unknown datasets.
func (d Dataset) Validate() error {
	switch d {
	case PlanetLab, Google:
		return nil
	default:
		return fmt.Errorf("experiments: unknown dataset %q", string(d))
	}
}

// Setup sizes one experiment.
type Setup struct {
	Dataset Dataset
	// Hosts (M) and VMs (N).
	Hosts, VMs int
	// Steps is the horizon in 5-minute intervals.
	Steps int
	// Seed drives trace generation, VM specs and initial placement.
	Seed int64
	// Placement defaults to first-fit (CloudSim's provisioner); the
	// MadVM comparison uses random (§6.3).
	Placement sim.Placement
}

// PaperPlanetLab returns the full Table-2 setup: 800 PMs, 1052 VMs, 7 days.
func PaperPlanetLab(seed int64) Setup {
	return Setup{Dataset: PlanetLab, Hosts: 800, VMs: 1052, Steps: workload.SevenDays, Seed: seed}
}

// PaperGoogle returns the full Table-3 setup: 500 PMs, 2000 VMs, 7 days.
func PaperGoogle(seed int64) Setup {
	return Setup{Dataset: Google, Hosts: 500, VMs: 2000, Steps: workload.SevenDays, Seed: seed}
}

// PaperMadVMSubset returns the Figure-4/5 setup: 100 PMs, 150 VMs, 3 days,
// uniform random initial placement.
func PaperMadVMSubset(ds Dataset, seed int64) Setup {
	return Setup{
		Dataset: ds, Hosts: 100, VMs: 150, Steps: workload.ThreeDays,
		Seed: seed, Placement: sim.PlacementRandom,
	}
}

// PolicySeed derives the seed for the policy under test from the setup's
// base seed, via the simulator's sub-stream scheme (sim.Seeds). One base
// seed thus pins traces, specs, placement and policy exploration at once.
func (s Setup) PolicySeed() int64 {
	return sim.Seeds{Base: s.Seed}.Policy()
}

// Scaled shrinks a setup by an integer factor for fast benchmarks; steps
// are shrunk too but kept ≥ 36 (3 hours) so the dynamics still show.
func (s Setup) Scaled(factor int) Setup {
	if factor <= 1 {
		return s
	}
	out := s
	out.Hosts = maxInt(2, s.Hosts/factor)
	out.VMs = maxInt(2, s.VMs/factor)
	out.Steps = maxInt(36, s.Steps/factor)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Build materialises the setup into a ready simulator configuration.
func (s Setup) Build() (sim.Config, error) {
	if err := s.Dataset.Validate(); err != nil {
		return sim.Config{}, err
	}
	if s.Hosts <= 0 || s.VMs <= 0 || s.Steps <= 0 {
		return sim.Config{}, fmt.Errorf("experiments: setup %+v has non-positive sizes", s)
	}
	var (
		hosts  []sim.HostSpec
		vms    []sim.VMSpec
		traces []workload.Trace
		err    error
	)
	switch s.Dataset {
	case PlanetLab:
		hosts, err = sim.PlanetLabHosts(s.Hosts)
		if err != nil {
			return sim.Config{}, err
		}
		vms, err = sim.PlanetLabVMs(s.VMs, s.Seed)
		if err != nil {
			return sim.Config{}, err
		}
		cfg := workload.DefaultPlanetLabConfig(s.Seed)
		cfg.Steps = s.Steps
		traces, err = workload.GeneratePlanetLab(cfg, s.VMs)
		if err != nil {
			return sim.Config{}, err
		}
	case Google:
		hosts, err = sim.GoogleHosts(s.Hosts)
		if err != nil {
			return sim.Config{}, err
		}
		vms, err = sim.GoogleVMs(s.VMs, s.Seed)
		if err != nil {
			return sim.Config{}, err
		}
		cfg := workload.DefaultGoogleConfig(s.Seed)
		cfg.Steps = s.Steps
		traces, _, err = workload.GenerateGoogle(cfg, s.VMs)
		if err != nil {
			return sim.Config{}, err
		}
	}
	placement := s.Placement
	if placement == 0 {
		placement = sim.PlacementFirstFit
	}
	cfg := sim.Config{
		Hosts:            hosts,
		VMs:              vms,
		Traces:           traces,
		Steps:            s.Steps,
		Seed:             s.Seed,
		InitialPlacement: placement,
	}
	if checkerFactory != nil {
		cfg.Checker = checkerFactory()
	}
	return cfg, nil
}

// PolicyFactory builds a policy for an N-VM, M-host world.
type PolicyFactory func(numVMs, numHosts int, seed int64) (sim.Policy, error)

// PolicyNames lists the registered policies in presentation order
// (Tables 2–3 column order, then the extra learners).
func PolicyNames() []string {
	return []string{"THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT", "Megh", "MadVM", "Q-learning"}
}

// NewPolicy builds a registered policy by name.
func NewPolicy(name string, numVMs, numHosts int, seed int64) (sim.Policy, error) {
	switch name {
	case "Megh":
		return core.New(core.DefaultConfig(numVMs, numHosts, seed))
	case "THR-MMT":
		return consolidation.NewTHRMMT()
	case "IQR-MMT":
		return consolidation.NewIQRMMT()
	case "MAD-MMT":
		return consolidation.NewMADMMT()
	case "LR-MMT":
		return consolidation.NewLRMMT()
	case "LRR-MMT":
		return consolidation.NewLRRMMT()
	case "MadVM":
		return madvm.New(numVMs, madvm.DefaultConfig(seed))
	case "Q-learning":
		return qlearn.New(numVMs, qlearn.DefaultConfig(seed))
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}
