package experiments

import (
	"fmt"
	"io"
	"math"

	"megh/internal/core"
	"megh/internal/sim"
	"megh/internal/stats"
	"megh/internal/workload"
)

// Figure1a holds the PlanetLab workload-dynamics series of Figure 1(a):
// per-step mean, max, min and standard deviation of utilization across VMs.
type Figure1a struct {
	Mean, Max, Min, Std []float64
}

// RunFigure1a generates the PlanetLab-like trace population and computes
// the per-step cross-VM statistics.
func RunFigure1a(numVMs, steps int, seed int64) (Figure1a, error) {
	cfg := workload.DefaultPlanetLabConfig(seed)
	cfg.Steps = steps
	traces, err := workload.GeneratePlanetLab(cfg, numVMs)
	if err != nil {
		return Figure1a{}, err
	}
	out := Figure1a{
		Mean: make([]float64, steps),
		Max:  make([]float64, steps),
		Min:  make([]float64, steps),
		Std:  make([]float64, steps),
	}
	col := make([]float64, numVMs)
	for t := 0; t < steps; t++ {
		for v, tr := range traces {
			col[v] = tr.At(t) * 100 // percent, as plotted
		}
		out.Mean[t] = stats.Mean(col)
		out.Max[t] = stats.Max(col)
		out.Min[t] = stats.Min(col)
		out.Std[t] = stats.StdDev(col)
	}
	return out, nil
}

// Figure1b holds the Google task-duration histogram of Figure 1(b):
// log10-spaced duration bins and their task counts.
type Figure1b struct {
	// BinEdges has len(Counts)+1 entries, in seconds.
	BinEdges []float64
	Counts   []int
}

// RunFigure1b generates the Google-like task stream and histograms its
// durations over 10¹–10⁶ s.
func RunFigure1b(numVMs, steps int, seed int64, bins int) (Figure1b, error) {
	cfg := workload.DefaultGoogleConfig(seed)
	cfg.Steps = steps
	_, tasks, err := workload.GenerateGoogle(cfg, numVMs)
	if err != nil {
		return Figure1b{}, err
	}
	durations := make([]float64, len(tasks))
	for i, task := range tasks {
		durations[i] = task.DurationSec
	}
	counts := stats.LogHistogram(durations, cfg.MinDurationSec, cfg.MaxDurationSec, bins)
	edges := make([]float64, bins+1)
	lo, hi := math.Log10(cfg.MinDurationSec), math.Log10(cfg.MaxDurationSec)
	for i := range edges {
		edges[i] = math.Pow(10, lo+(hi-lo)*float64(i)/float64(bins))
	}
	return Figure1b{BinEdges: edges, Counts: counts}, nil
}

// SeriesSet maps policy name → full run result; the per-step series of
// Figures 2–5 (cost, cumulative migrations, active hosts, execution time)
// are all views over it.
type SeriesSet map[string]*sim.Result

// RunSeries reproduces the Figure-2/3 time-series comparison (default
// policies: Megh vs THR-MMT) or Figure-4/5 (Megh vs MadVM) depending on
// the setup and policy list.
func RunSeries(setup Setup, policies []string) (SeriesSet, error) {
	if len(policies) == 0 {
		policies = []string{"Megh", "THR-MMT"}
	}
	out := make(SeriesSet, len(policies))
	for _, name := range policies {
		res, err := RunPolicy(setup, name)
		if err != nil {
			return nil, fmt.Errorf("experiments: series policy %s: %w", name, err)
		}
		out[name] = res
	}
	return out, nil
}

// WriteSeriesCSV emits one row per step with, per policy, the four panel
// series of Figures 2–5: per-step cost, cumulative migrations, active
// hosts and decide time (ms).
func WriteSeriesCSV(w io.Writer, set SeriesSet, order []string) error {
	if len(order) == 0 {
		for name := range set {
			order = append(order, name)
		}
	}
	header := "step"
	for _, name := range order {
		header += fmt.Sprintf(",%s_cost,%s_cum_migrations,%s_active_hosts,%s_exec_ms",
			name, name, name, name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	steps := 0
	for _, r := range set {
		if len(r.Steps) > steps {
			steps = len(r.Steps)
		}
	}
	cums := make(map[string][]int, len(order))
	for _, name := range order {
		if r, ok := set[name]; ok {
			cums[name] = r.CumulativeMigrations()
		}
	}
	for t := 0; t < steps; t++ {
		line := fmt.Sprintf("%d", t)
		for _, name := range order {
			r, ok := set[name]
			if !ok || t >= len(r.Steps) {
				line += ",,,,"
				continue
			}
			m := r.Steps[t]
			line += fmt.Sprintf(",%.6f,%d,%d,%.4f",
				m.TotalCost(), cums[name][t], m.ActiveHosts, m.DecideSeconds*1000)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// ScalabilityPoint is one cell of the Figure-6 grids.
type ScalabilityPoint struct {
	Hosts, VMs   int
	MeanDecideMs float64
}

// RunScalability reproduces Figure 6: per-step execution time over a grid
// of (hosts, VMs) sizes, averaged over `reps` randomized runs each, for
// one policy ("THR-MMT" for 6a, "Megh" for 6b).
func RunScalability(ds Dataset, policy string, sizes []int, reps, steps int, seed int64) ([]ScalabilityPoint, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiments: reps %d must be positive", reps)
	}
	var out []ScalabilityPoint
	for _, m := range sizes {
		for _, n := range sizes {
			var total float64
			for rep := 0; rep < reps; rep++ {
				setup := Setup{
					Dataset: ds, Hosts: m, VMs: n, Steps: steps,
					Seed: seed + int64(rep)*1009 + int64(m)*31 + int64(n),
				}
				p, err := NewPolicy(policy, setup.VMs, setup.Hosts, setup.PolicySeed())
				if err != nil {
					return nil, err
				}
				// Grid cells with many more VMs than hosts (the paper
				// sweeps m and n independently) need extra host RAM to
				// be placeable at all; scale it so RAM never blocks
				// the cell.
				res, err := RunCustom(setup, p, scaleHostRAM(1.3))
				if err != nil {
					return nil, fmt.Errorf("experiments: scalability %d×%d rep %d: %w", m, n, rep, err)
				}
				total += res.MeanDecideSeconds()
			}
			out = append(out, ScalabilityPoint{
				Hosts: m, VMs: n,
				MeanDecideMs: total / float64(reps) * 1000,
			})
		}
	}
	return out, nil
}

// scaleHostRAM returns a config mutator that grows every host's RAM until
// the fleet holds `factor` × the total VM RAM demand.
func scaleHostRAM(factor float64) func(*sim.Config) {
	return func(c *sim.Config) {
		var vmRAM, hostRAM float64
		for _, v := range c.VMs {
			vmRAM += v.RAMMB
		}
		for _, h := range c.Hosts {
			hostRAM += h.RAMMB
		}
		if hostRAM >= vmRAM*factor || hostRAM == 0 {
			return
		}
		scale := vmRAM * factor / hostRAM
		for i := range c.Hosts {
			c.Hosts[i].RAMMB *= scale
		}
	}
}

// WriteScalabilityCSV emits the Figure-6 grid.
func WriteScalabilityCSV(w io.Writer, pts []ScalabilityPoint) error {
	if _, err := fmt.Fprintln(w, "hosts,vms,mean_exec_ms"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%d,%.4f\n", p.Hosts, p.VMs, p.MeanDecideMs); err != nil {
			return err
		}
	}
	return nil
}

// QTableGrowth reproduces Figure 7: for each size M (with N = M, as the
// paper assumes), Megh's per-step Q-table non-zero count.
func QTableGrowth(ds Dataset, sizes []int, steps int, seed int64) (map[int][]int, error) {
	out := make(map[int][]int, len(sizes))
	for _, m := range sizes {
		setup := Setup{Dataset: ds, Hosts: m, VMs: m, Steps: steps, Seed: seed + int64(m)}
		cfg, err := setup.Build()
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		megh, err := core.New(core.DefaultConfig(m, m, seed+int64(m)*7))
		if err != nil {
			return nil, err
		}
		if _, err := s.Run(megh); err != nil {
			return nil, err
		}
		out[m] = append([]int(nil), megh.NNZHistory()...)
	}
	return out, nil
}

// WriteQTableGrowthCSV emits Figure 7's series: one column per size.
func WriteQTableGrowthCSV(w io.Writer, growth map[int][]int, sizes []int) error {
	header := "step"
	for _, m := range sizes {
		header += fmt.Sprintf(",nnz_m%d", m)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	steps := 0
	for _, m := range sizes {
		if len(growth[m]) > steps {
			steps = len(growth[m])
		}
	}
	for t := 0; t < steps; t++ {
		line := fmt.Sprintf("%d", t)
		for _, m := range sizes {
			if t < len(growth[m]) {
				line += fmt.Sprintf(",%d", growth[m][t])
			} else {
				line += ","
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// SensitivityPoint is one boxplot of Figure 8: the distribution of per-step
// cost across repetitions at one parameter value.
type SensitivityPoint struct {
	Param   float64
	Boxplot stats.Boxplot
}

// RunSensitivityTemp reproduces Figure 8(a): per-step-cost boxplots as
// Temp₀ varies with ε fixed (paper: ε = 0.001, Temp₀ ∈ {0.5, 1, …, 10},
// 25 repetitions).
func RunSensitivityTemp(setup Setup, temps []float64, epsilon float64, reps int) ([]SensitivityPoint, error) {
	return runSensitivity(setup, temps, reps, func(c *core.Config, v float64) {
		c.Temp0 = v
		c.Epsilon = epsilon
	})
}

// RunSensitivityEpsilon reproduces Figure 8(b): boxplots as ε varies with
// Temp₀ fixed (paper: Temp₀ = 1, 30 log-spaced ε in [10⁻³, 10⁰]).
func RunSensitivityEpsilon(setup Setup, epsilons []float64, temp0 float64, reps int) ([]SensitivityPoint, error) {
	return runSensitivity(setup, epsilons, reps, func(c *core.Config, v float64) {
		c.Epsilon = v
		c.Temp0 = temp0
	})
}

func runSensitivity(setup Setup, params []float64, reps int,
	apply func(*core.Config, float64)) ([]SensitivityPoint, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiments: reps %d must be positive", reps)
	}
	out := make([]SensitivityPoint, 0, len(params))
	for _, v := range params {
		var costs []float64
		for rep := 0; rep < reps; rep++ {
			s := setup
			s.Seed = setup.Seed + int64(rep)*2003
			cfg, err := s.Build()
			if err != nil {
				return nil, err
			}
			simulator, err := sim.New(cfg)
			if err != nil {
				return nil, err
			}
			mc := core.DefaultConfig(s.VMs, s.Hosts, s.Seed+7)
			apply(&mc, v)
			megh, err := core.New(mc)
			if err != nil {
				return nil, err
			}
			res, err := simulator.Run(megh)
			if err != nil {
				return nil, err
			}
			costs = append(costs, res.PerStepCosts()...)
		}
		out = append(out, SensitivityPoint{Param: v, Boxplot: stats.BoxplotOf(costs)})
	}
	return out, nil
}

// WriteSensitivityCSV emits Figure 8's boxplot summaries.
func WriteSensitivityCSV(w io.Writer, pts []SensitivityPoint) error {
	if _, err := fmt.Fprintln(w, "param,p05,q1,median,q3,p95"); err != nil {
		return err
	}
	for _, p := range pts {
		b := p.Boxplot
		if _, err := fmt.Fprintf(w, "%g,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			p.Param, b.P05, b.Q1, b.Median, b.Q3, b.P95); err != nil {
			return err
		}
	}
	return nil
}
