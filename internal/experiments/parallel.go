package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// RunTableParallel is RunTable with the policies executed concurrently,
// bounded by maxParallel workers (0 means GOMAXPROCS). Policies never
// share state — each gets its own simulator world built from the same
// setup — so the results are identical to the sequential runner; only
// wall-clock time changes. Per-step DecideSeconds remain comparable
// because each policy's Decide runs single-threaded.
func RunTableParallel(setup Setup, policies []string, maxParallel int) ([]TableRow, error) {
	if len(policies) == 0 {
		policies = []string{"THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT", "Megh"}
	}
	if maxParallel <= 0 {
		maxParallel = runtime.GOMAXPROCS(0)
	}
	type slot struct {
		row TableRow
		err error
	}
	results := make([]slot, len(policies))
	sem := make(chan struct{}, maxParallel)
	var wg sync.WaitGroup
	for i, name := range policies {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := RunPolicy(setup, name)
			if err != nil {
				results[i].err = fmt.Errorf("experiments: policy %s: %w", name, err)
				return
			}
			results[i].row = RowFromResult(res)
		}(i, name)
	}
	wg.Wait()
	rows := make([]TableRow, 0, len(policies))
	for _, s := range results {
		if s.err != nil {
			return nil, s.err
		}
		rows = append(rows, s.row)
	}
	return rows, nil
}
