package experiments

import (
	"fmt"

	"megh/internal/consolidation"
	"megh/internal/core"
	"megh/internal/cost"
	"megh/internal/sim"
	"megh/internal/topology"
)

// RunCustom runs a pre-built policy on a setup, optionally mutating the
// simulator configuration first (cost model, topology, failures, …). It is
// the extension point every ablation below is built on.
func RunCustom(setup Setup, p sim.Policy, mutate func(*sim.Config)) (*sim.Result, error) {
	cfg, err := setup.Build()
	if err != nil {
		return nil, err
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(p)
}

// MigrationCapSweep ablates Megh's 2 % per-step migration cap (§6.1,
// DESIGN.md §4): one row per cap fraction.
func MigrationCapSweep(setup Setup, fractions []float64) ([]TableRow, error) {
	rows := make([]TableRow, 0, len(fractions))
	for _, f := range fractions {
		mc := core.DefaultConfig(setup.VMs, setup.Hosts, setup.PolicySeed())
		mc.MaxMigrationsFrac = f
		learner, err := core.New(mc)
		if err != nil {
			return nil, fmt.Errorf("experiments: cap %g: %w", f, err)
		}
		res, err := RunCustom(setup, learner, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: cap %g: %w", f, err)
		}
		row := RowFromResult(res)
		row.Policy = fmt.Sprintf("Megh(cap=%g%%)", f*100)
		rows = append(rows, row)
	}
	return rows, nil
}

// ExplorationSweep ablates Megh's exploratory candidate rate.
func ExplorationSweep(setup Setup, rates []float64) ([]TableRow, error) {
	rows := make([]TableRow, 0, len(rates))
	for _, r := range rates {
		mc := core.DefaultConfig(setup.VMs, setup.Hosts, setup.PolicySeed())
		mc.ExplorationRate = r
		learner, err := core.New(mc)
		if err != nil {
			return nil, fmt.Errorf("experiments: exploration %g: %w", r, err)
		}
		res, err := RunCustom(setup, learner, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: exploration %g: %w", r, err)
		}
		row := RowFromResult(res)
		row.Policy = fmt.Sprintf("Megh(explore=%g)", r)
		rows = append(rows, row)
	}
	return rows, nil
}

// AccountingComparison reruns the named policies under both SLA accounting
// modes (the DESIGN.md §5.4 deviation, quantified).
func AccountingComparison(setup Setup, policies []string) ([]TableRow, error) {
	if len(policies) == 0 {
		policies = []string{"THR-MMT", "Megh"}
	}
	modes := []cost.SLAAccounting{cost.SLAPerInterval, cost.SLACumulative}
	rows := make([]TableRow, 0, len(policies)*len(modes))
	for _, mode := range modes {
		for _, name := range policies {
			p, err := NewPolicy(name, setup.VMs, setup.Hosts, setup.PolicySeed())
			if err != nil {
				return nil, err
			}
			res, err := RunCustom(setup, p, func(c *sim.Config) {
				params := cost.Default()
				params.Accounting = mode
				c.Cost = params
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s under %v: %w", name, mode, err)
			}
			row := RowFromResult(res)
			row.Policy = fmt.Sprintf("%s[%v]", name, mode)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SelectionComparison runs the THR detector with every victim-selection
// policy (MMT vs RS vs MC vs MU).
func SelectionComparison(setup Setup) ([]TableRow, error) {
	selections := []consolidation.Selection{
		consolidation.SelectMMT,
		consolidation.SelectRandom,
		consolidation.SelectMaxCorrelation,
		consolidation.SelectMinUtil,
	}
	rows := make([]TableRow, 0, len(selections))
	for _, sel := range selections {
		thr, err := consolidation.NewTHR(0.7)
		if err != nil {
			return nil, err
		}
		p, err := consolidation.NewMMT(thr, consolidation.Config{
			Selection: sel, Seed: setup.PolicySeed(),
		})
		if err != nil {
			return nil, err
		}
		res, err := RunCustom(setup, p, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: selection %v: %w", sel, err)
		}
		rows = append(rows, RowFromResult(res))
	}
	return rows, nil
}

// TopologyComparison reruns the named policies with and without the
// fat-tree migration-time model (§7's future-work extension).
func TopologyComparison(setup Setup, policies []string, hopFactor float64) ([]TableRow, error) {
	if len(policies) == 0 {
		policies = []string{"THR-MMT", "Megh"}
	}
	model, err := topology.NewMigrationModel(setup.Hosts, hopFactor)
	if err != nil {
		return nil, err
	}
	rows := make([]TableRow, 0, 2*len(policies))
	for _, withTopo := range []bool{false, true} {
		for _, name := range policies {
			p, err := NewPolicy(name, setup.VMs, setup.Hosts, setup.PolicySeed())
			if err != nil {
				return nil, err
			}
			var mutate func(*sim.Config)
			label := name + "[flat]"
			if withTopo {
				mutate = func(c *sim.Config) { c.Migration = model }
				label = fmt.Sprintf("%s[fat-tree k=%d]", name, model.Tree.K())
			}
			res, err := RunCustom(setup, p, mutate)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", label, err)
			}
			row := RowFromResult(res)
			row.Policy = label
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// LearnerComparison runs the three reinforcement-learning approaches the
// paper discusses (§2.2) head to head on the MadVM-subset world: Megh
// (online, sparse LSPI), MadVM (online, per-VM value iteration) and
// Q-learning with its offline training phase. It substantiates the paper's
// narrative that Megh avoids both MadVM's per-step cost and Q-learning's
// training dependency.
func LearnerComparison(setup Setup) ([]TableRow, error) {
	return RunTable(setup, []string{"Megh", "MadVM", "Q-learning"})
}

// FailureRecovery injects host outages and reports how each policy copes:
// the standard table columns plus the failure exposure.
func FailureRecovery(setup Setup, policies []string, failures []sim.Failure) ([]TableRow, error) {
	if len(policies) == 0 {
		policies = []string{"THR-MMT", "Megh"}
	}
	rows := make([]TableRow, 0, len(policies))
	for _, name := range policies {
		p, err := NewPolicy(name, setup.VMs, setup.Hosts, setup.PolicySeed())
		if err != nil {
			return nil, err
		}
		res, err := RunCustom(setup, p, func(c *sim.Config) {
			c.Failures = append([]sim.Failure(nil), failures...)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s with failures: %w", name, err)
		}
		rows = append(rows, RowFromResult(res))
	}
	return rows, nil
}
