package experiments

import (
	"math"
	"strings"
	"testing"

	"megh/internal/workload"
)

// smallPL is a fast PlanetLab-like setup used across the tests.
func smallPL() Setup {
	return Setup{Dataset: PlanetLab, Hosts: 40, VMs: 52, Steps: 144, Seed: 1}
}

func TestDatasetValidate(t *testing.T) {
	if err := PlanetLab.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Google.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Dataset("nope").Validate(); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestPaperSetups(t *testing.T) {
	pl := PaperPlanetLab(1)
	if pl.Hosts != 800 || pl.VMs != 1052 || pl.Steps != workload.SevenDays {
		t.Fatalf("PaperPlanetLab = %+v, want 800×1052×%d (§6.2)", pl, workload.SevenDays)
	}
	g := PaperGoogle(1)
	if g.Hosts != 500 || g.VMs != 2000 {
		t.Fatalf("PaperGoogle = %+v, want 500×2000 (§6.2)", g)
	}
	m := PaperMadVMSubset(PlanetLab, 1)
	if m.Hosts != 100 || m.VMs != 150 || m.Steps != workload.ThreeDays {
		t.Fatalf("PaperMadVMSubset = %+v, want 100×150×%d (§6.3)", m, workload.ThreeDays)
	}
}

func TestScaled(t *testing.T) {
	s := PaperPlanetLab(1).Scaled(8)
	if s.Hosts != 100 || s.VMs != 131 || s.Steps != 252 {
		t.Fatalf("Scaled(8) = %+v", s)
	}
	if same := PaperPlanetLab(1).Scaled(1); same != PaperPlanetLab(1) {
		t.Fatal("Scaled(1) must be identity")
	}
	tiny := Setup{Dataset: PlanetLab, Hosts: 4, VMs: 4, Steps: 40, Seed: 1}.Scaled(100)
	if tiny.Hosts < 2 || tiny.VMs < 2 || tiny.Steps < 36 {
		t.Fatalf("Scaled floor violated: %+v", tiny)
	}
}

func TestBuildRejectsBadSetups(t *testing.T) {
	bad := []Setup{
		{Dataset: "nope", Hosts: 2, VMs: 2, Steps: 2},
		{Dataset: PlanetLab, Hosts: 0, VMs: 2, Steps: 2},
		{Dataset: PlanetLab, Hosts: 2, VMs: -1, Steps: 2},
		{Dataset: Google, Hosts: 2, VMs: 2, Steps: 0},
	}
	for i, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d: expected Build error for %+v", i, s)
		}
	}
}

func TestBuildBothDatasets(t *testing.T) {
	for _, ds := range []Dataset{PlanetLab, Google} {
		s := Setup{Dataset: ds, Hosts: 10, VMs: 15, Steps: 20, Seed: 3}
		cfg, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if len(cfg.Hosts) != 10 || len(cfg.VMs) != 15 || len(cfg.Traces) != 15 {
			t.Fatalf("%s: built %d hosts / %d VMs / %d traces", ds,
				len(cfg.Hosts), len(cfg.VMs), len(cfg.Traces))
		}
	}
}

func TestNewPolicyAllNames(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, 10, 5, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("bogus", 10, 5, 1); err == nil {
		t.Fatal("unknown policy should error")
	}
}

// TestHeadlineShape is the repository's core reproduction assertion at test
// scale: Megh must beat THR-MMT on total cost with several-fold fewer
// migrations (paper Table 2: −14 % cost, ~140× fewer migrations). The gap
// opens with data-center size (MMT's churn scales with the host count), so
// the assertion runs at 100 hosts — the smallest size where the paper-shape
// is stable across seeds; see EXPERIMENTS.md for the full-scale numbers.
func TestHeadlineShape(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 100, VMs: 132, Steps: 288, Seed: 1}
	megh, err := RunPolicy(setup, "Megh")
	if err != nil {
		t.Fatal(err)
	}
	thr, err := RunPolicy(setup, "THR-MMT")
	if err != nil {
		t.Fatal(err)
	}
	if megh.TotalCost() >= thr.TotalCost() {
		t.Errorf("Megh total cost %.2f not below THR-MMT %.2f (paper Table 2 shape)",
			megh.TotalCost(), thr.TotalCost())
	}
	if megh.TotalMigrations()*2 >= thr.TotalMigrations() {
		t.Errorf("Megh migrations %d not ≪ THR-MMT %d", megh.TotalMigrations(), thr.TotalMigrations())
	}
}

func TestRunTableDefaultsAndEmit(t *testing.T) {
	setup := smallPL()
	rows, err := RunTable(setup, []string{"THR-MMT", "Megh"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TotalCost <= 0 || math.IsNaN(r.TotalCost) {
			t.Fatalf("row %+v has bad cost", r)
		}
		if math.Abs(r.TotalCost-(r.EnergyCost+r.SLACost)) > 1e-9 {
			t.Fatalf("row %s: cost decomposition inconsistent", r.Policy)
		}
	}
	var text strings.Builder
	if err := WriteTable(&text, "T", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "Megh") || !strings.Contains(text.String(), "THR-MMT") {
		t.Fatal("text table missing policies")
	}
	var csv strings.Builder
	if err := WriteTableCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "policy,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRunFigure1a(t *testing.T) {
	fig, err := RunFigure1a(60, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Mean) != 100 || len(fig.Max) != 100 || len(fig.Min) != 100 || len(fig.Std) != 100 {
		t.Fatal("series length mismatch")
	}
	for i := range fig.Mean {
		if fig.Min[i] > fig.Mean[i] || fig.Mean[i] > fig.Max[i] {
			t.Fatalf("step %d: ordering violated (%g ≤ %g ≤ %g)", i, fig.Min[i], fig.Mean[i], fig.Max[i])
		}
	}
	// The paper's Figure 1(a) shows mean around 12% and max near 90%+.
	meanOfMeans := 0.0
	for _, m := range fig.Mean {
		meanOfMeans += m
	}
	meanOfMeans /= float64(len(fig.Mean))
	if meanOfMeans < 5 || meanOfMeans > 25 {
		t.Errorf("mean utilization %.1f%%, want ≈12%%", meanOfMeans)
	}
}

func TestRunFigure1b(t *testing.T) {
	fig, err := RunFigure1b(100, 200, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Counts) != 10 || len(fig.BinEdges) != 11 {
		t.Fatal("histogram shape wrong")
	}
	total := 0
	nonEmpty := 0
	for _, c := range fig.Counts {
		total += c
		if c > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		t.Fatal("no tasks histogrammed")
	}
	// The paper's point: durations spread over many decades.
	if nonEmpty < 5 {
		t.Errorf("durations concentrated in %d bins, want broad spread", nonEmpty)
	}
	if fig.BinEdges[0] > 10.01 || fig.BinEdges[10] < 0.99e6 {
		t.Errorf("bin edges [%g, %g] do not span 10¹–10⁶ s", fig.BinEdges[0], fig.BinEdges[10])
	}
}

func TestRunSeriesAndCSV(t *testing.T) {
	setup := smallPL()
	set, err := RunSeries(setup, []string{"Megh", "THR-MMT"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("got %d series", len(set))
	}
	var csv strings.Builder
	if err := WriteSeriesCSV(&csv, set, []string{"Megh", "THR-MMT"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != setup.Steps+1 {
		t.Fatalf("CSV rows = %d, want %d", len(lines), setup.Steps+1)
	}
	if !strings.Contains(lines[0], "Megh_cost") || !strings.Contains(lines[0], "THR-MMT_exec_ms") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRunScalability(t *testing.T) {
	pts, err := RunScalability(PlanetLab, "Megh", []int{6, 12}, 2, 36, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("grid size %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.MeanDecideMs < 0 {
			t.Fatalf("negative decide time at %dx%d", p.Hosts, p.VMs)
		}
	}
	if _, err := RunScalability(PlanetLab, "Megh", []int{4}, 0, 10, 1); err == nil {
		t.Fatal("zero reps should error")
	}
	var csv strings.Builder
	if err := WriteScalabilityCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "hosts,vms,mean_exec_ms") {
		t.Fatal("scalability CSV header wrong")
	}
}

func TestQTableGrowth(t *testing.T) {
	growth, err := QTableGrowth(PlanetLab, []int{8, 16}, 72, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{8, 16} {
		hist := growth[m]
		if len(hist) != 72 {
			t.Fatalf("m=%d: history length %d", m, len(hist))
		}
		for i := 1; i < len(hist); i++ {
			if hist[i] < hist[i-1] {
				t.Fatalf("m=%d: Q-table shrank at %d", m, i)
			}
		}
	}
	var csv strings.Builder
	if err := WriteQTableGrowthCSV(&csv, growth, []int{8, 16}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "nnz_m8") {
		t.Fatal("growth CSV header wrong")
	}
}

func TestSensitivityRunners(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 12, VMs: 16, Steps: 48, Seed: 4}
	temps, err := RunSensitivityTemp(setup, []float64{1, 3}, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) != 2 {
		t.Fatalf("got %d temp points", len(temps))
	}
	for _, p := range temps {
		b := p.Boxplot
		if !(b.P05 <= b.Median && b.Median <= b.P95) {
			t.Fatalf("boxplot unordered at Temp0=%g: %+v", p.Param, b)
		}
	}
	eps, err := RunSensitivityEpsilon(setup, []float64{0.001, 0.1}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 {
		t.Fatalf("got %d epsilon points", len(eps))
	}
	if _, err := RunSensitivityTemp(setup, []float64{1}, 0.001, 0); err == nil {
		t.Fatal("zero reps should error")
	}
	var csv strings.Builder
	if err := WriteSensitivityCSV(&csv, temps); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "param,p05,q1,median,q3,p95") {
		t.Fatal("sensitivity CSV header wrong")
	}
}

func TestQLearningGetsTrainedInRunPolicy(t *testing.T) {
	setup := Setup{Dataset: PlanetLab, Hosts: 8, VMs: 10, Steps: 36, Seed: 6}
	res, err := RunPolicy(setup, "Q-learning")
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "Q-learning" {
		t.Fatalf("policy name %q", res.Policy)
	}
}
