package obs

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", nil)
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never go down
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("in_flight", "gauge", nil)
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestGetOrCreateReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "", Labels{"route": "/x"})
	b := r.Counter("c", "", Labels{"route": "/x"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("c", "", Labels{"route": "/y"})
	if a == other {
		t.Fatal("different labels must return distinct counters")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestHistogramObserveAndExport(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat_seconds", "latency", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("b", "", []float64{1, 2}, nil)
	h.Observe(1) // exactly on a bound → counted in le="1"
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `b_bucket{le="1"} 1`) {
		t.Fatalf("le bound must be inclusive:\n%s", sb.String())
	}
}

// TestExportIsWellFormed checks every sample line against the exposition
// grammar (metric name, optional label block, one value).
func TestExportIsWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help text", Labels{"route": "/v1/decide"}).Inc()
	r.Gauge("b", "with \"quotes\" and \\slashes\\", Labels{"k": "va\"lue\n2"}).Set(2.5)
	r.Histogram("c_seconds", "latency", nil).Observe(0.01)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)
	for _, l := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed sample line %q", l)
		}
	}
}

func TestExportDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "", nil).Inc()
	r.Counter("a_total", "", nil).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Index(out, "a_total") > strings.Index(out, "z_total") {
		t.Fatalf("families must be name-sorted:\n%s", out)
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race this is the package's thread-safety regression test.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "", Labels{"g": string(rune('a' + g%4))}).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h_seconds", "", nil).Observe(float64(i) * 1e-5)
				if i%50 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c_total", "", Labels{"g": l}).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
	if got := r.Histogram("h_seconds", "", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
