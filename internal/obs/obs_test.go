package obs

import (
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", nil)
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never go down
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("in_flight", "gauge", nil)
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestGetOrCreateReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "", Labels{"route": "/x"})
	b := r.Counter("c", "", Labels{"route": "/x"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("c", "", Labels{"route": "/y"})
	if a == other {
		t.Fatal("different labels must return distinct counters")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestHistogramObserveAndExport(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat_seconds", "latency", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("b", "", []float64{1, 2}, nil)
	h.Observe(1) // exactly on a bound → counted in le="1"
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `b_bucket{le="1"} 1`) {
		t.Fatalf("le bound must be inclusive:\n%s", sb.String())
	}
}

// TestExportIsWellFormed checks every sample line against the exposition
// grammar (metric name, optional label block, one value).
func TestExportIsWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help text", Labels{"route": "/v1/decide"}).Inc()
	r.Gauge("b", "with \"quotes\" and \\slashes\\", Labels{"k": "va\"lue\n2"}).Set(2.5)
	r.Histogram("c_seconds", "latency", nil).Observe(0.01)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)
	for _, l := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed sample line %q", l)
		}
	}
}

func TestExportDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "", nil).Inc()
	r.Counter("a_total", "", nil).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Index(out, "a_total") > strings.Index(out, "z_total") {
		t.Fatalf("families must be name-sorted:\n%s", out)
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race this is the package's thread-safety regression test.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "", Labels{"g": string(rune('a' + g%4))}).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h_seconds", "", nil).Observe(float64(i) * 1e-5)
				if i%50 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c_total", "", Labels{"g": l}).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
	if got := r.Histogram("h_seconds", "", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

// TestHistogramBucketBoundaries sweeps values below, exactly on, and just
// above every bucket bound and checks the exported cumulative counts.
// Bounds are inclusive (le semantics): a value exactly on a bound lands in
// that bucket, a value infinitesimally above spills to the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.5, 1, 2.5}
	h := r.HistogramBuckets("sweep", "", bounds, nil)

	observations := []float64{
		0.4,                    // strictly inside bucket 0
		0.5,                    // exactly on bound 0 → bucket 0 (inclusive)
		math.Nextafter(0.5, 1), // just above bound 0 → bucket 1
		1,                      // exactly on bound 1
		2.5,                    // exactly on the last finite bound
		math.Nextafter(2.5, 3), // just above the last bound → +Inf only
		1e9,                    // far overflow → +Inf only
	}
	for _, v := range observations {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative per-le expectations for the observations above.
	for _, want := range []string{
		`sweep_bucket{le="0.5"} 2`,
		`sweep_bucket{le="1"} 4`,
		`sweep_bucket{le="2.5"} 5`,
		`sweep_bucket{le="+Inf"} 7`,
		`sweep_count 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	if got, want := h.Count(), int64(7); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

// TestGaugeAddConcurrentSum drives Gauge.Add (a float CAS loop) from many
// writers with exactly representable deltas; the final value must be the
// exact sum — a lost CAS update would show up as a shortfall. Run with
// -race this doubles as the gauge's data-race regression test.
func TestGaugeAddConcurrentSum(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cas", "", nil)
	const (
		writers = 16
		perG    = 2000
		delta   = 0.25 // exactly representable in binary
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if w%2 == 0 {
					g.Add(delta)
				} else {
					g.Add(2 * delta)
				}
			}
		}(w)
	}
	wg.Wait()
	want := float64(writers/2)*perG*delta + float64(writers/2)*perG*2*delta
	if got := g.Value(); got != want {
		t.Fatalf("concurrent Add lost updates: got %g, want %g", got, want)
	}
}
