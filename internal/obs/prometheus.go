package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and instances
// by label signature, so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if err := fam.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.instances))
	for k := range f.instances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	insts := make([]any, len(keys))
	for i, k := range keys {
		insts[i] = f.instances[k]
	}
	f.mu.Unlock()

	if len(insts) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	for i, key := range keys {
		if err := writeInstance(w, f.name, key, insts[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeInstance(w io.Writer, name, labelSig string, inst any) error {
	switch m := inst.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelSig, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labelSig, formatFloat(m.Value()))
		return err
	case *Histogram:
		return writeHistogram(w, name, labelSig, m)
	default:
		return fmt.Errorf("obs: unknown metric type %T", inst)
	}
}

func writeHistogram(w io.Writer, name, labelSig string, h *Histogram) error {
	// Snapshot the per-bucket counts once, then accumulate; sum/count may
	// skew by in-flight observations, which the format tolerates.
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, withLabel(labelSig, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, withLabel(labelSig, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSig, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelSig, cum)
	return err
}

// withLabel splices one extra label pair into an existing signature
// ("{a=\"b\"}" or "").
func withLabel(sig, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if sig == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(sig, "}") + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the text-format escaping rules for HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry as text/plain for a Prometheus scraper.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
