package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLOWindow names one burn-rate evaluation window (e.g. {"5m", 5*time.Minute}).
type SLOWindow struct {
	Name     string
	Duration time.Duration
}

// DefSLOWindows is the classic short/long multi-window pair: a fast 5m
// window that reacts quickly and a 1h window that filters blips.
func DefSLOWindows() []SLOWindow {
	return []SLOWindow{
		{Name: "5m", Duration: 5 * time.Minute},
		{Name: "1h", Duration: time.Hour},
	}
}

// SLOConfig configures one latency service-level objective.
type SLOConfig struct {
	// Name distinguishes the objective in gauge names ("decide" →
	// megh_slo_decide_burn_rate{window="5m"}).
	Name string
	// Objective is the latency threshold in seconds; a request is "good"
	// when it completes within it.
	Objective float64
	// Target is the required good fraction (e.g. 0.99 means 1% error
	// budget). Defaults to 0.99.
	Target float64
	// Windows are the burn-rate evaluation windows; DefSLOWindows when nil.
	Windows []SLOWindow
	// FastBurnThreshold is the burn rate above which, sustained across
	// every window simultaneously, the SLO reports FastBurn (page-worthy).
	// Defaults to 14.4, the conventional 5m/1h multi-window page threshold.
	FastBurnThreshold float64
	// Now is the clock; time.Now when nil. Injectable for tests.
	Now func() time.Time
}

// sloRing is one window's time-sliced good/total ring. Each of the n slots
// covers width of wall time; stale slots are lazily zeroed when the clock
// advances past them, so the ring always covers the trailing n*width span.
type sloRing struct {
	width time.Duration
	epoch []int64 // absolute slot number last written into each index
	good  []int64
	total []int64
}

func newSLORing(window time.Duration) *sloRing {
	const slots = 60
	w := window / slots
	if w <= 0 {
		w = time.Second
	}
	return &sloRing{
		width: w,
		epoch: make([]int64, slots),
		good:  make([]int64, slots),
		total: make([]int64, slots),
	}
}

func (r *sloRing) observe(now time.Time, good bool, n int64) {
	slot := int64(now.UnixNano()) / int64(r.width)
	i := int(slot % int64(len(r.epoch)))
	if i < 0 {
		i += len(r.epoch)
	}
	if r.epoch[i] != slot {
		r.epoch[i] = slot
		r.good[i] = 0
		r.total[i] = 0
	}
	r.total[i] += n
	if good {
		r.good[i] += n
	}
}

func (r *sloRing) tally(now time.Time) (good, total int64) {
	slot := int64(now.UnixNano()) / int64(r.width)
	min := slot - int64(len(r.epoch)) + 1
	for i := range r.epoch {
		if r.epoch[i] >= min && r.epoch[i] <= slot {
			good += r.good[i]
			total += r.total[i]
		}
	}
	return good, total
}

// SLO tracks a latency objective over multiple trailing windows and reports
// burn rates: bad-fraction divided by the error budget (1−target). A burn
// rate of 1 means the error budget is being consumed exactly at the
// sustainable rate; 14.4 over both a 5m and 1h window is the conventional
// fast-burn page condition.
type SLO struct {
	cfg  SLOConfig
	mu   sync.Mutex
	wins []*sloRing
}

// NewSLO builds an SLO tracker; a nil receiver elsewhere means "no SLO
// configured" and every method is a no-op.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Target <= 0 || cfg.Target >= 1 {
		cfg.Target = 0.99
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = DefSLOWindows()
	}
	if cfg.FastBurnThreshold <= 0 {
		cfg.FastBurnThreshold = 14.4
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &SLO{cfg: cfg}
	for _, w := range cfg.Windows {
		s.wins = append(s.wins, newSLORing(w.Duration))
	}
	return s
}

// Observe records one request latency (seconds) against the objective.
func (s *SLO) Observe(latencySeconds float64) { s.ObserveN(latencySeconds, 1) }

// ObserveN records n requests that each took latencySeconds — the batch
// decide path reports per-item amortized latency this way.
func (s *SLO) ObserveN(latencySeconds float64, n int64) {
	if s == nil || n <= 0 {
		return
	}
	now := s.cfg.Now()
	good := latencySeconds <= s.cfg.Objective
	s.mu.Lock()
	for _, r := range s.wins {
		r.observe(now, good, n)
	}
	s.mu.Unlock()
}

// SLOWindowStatus is one window's burn-rate reading.
type SLOWindowStatus struct {
	Window      string  `json:"window"`
	Seconds     float64 `json:"seconds"`
	Good        int64   `json:"good"`
	Total       int64   `json:"total"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// SLOStatus is a point-in-time evaluation of the objective.
type SLOStatus struct {
	Name      string            `json:"name"`
	Objective float64           `json:"objective_seconds"`
	Target    float64           `json:"target"`
	Windows   []SLOWindowStatus `json:"windows"`
	// FastBurn is true when every window's burn rate is at or above the
	// fast-burn threshold — the multi-window page condition.
	FastBurn bool `json:"fast_burn"`
}

// Status evaluates every window at the current clock reading.
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	now := s.cfg.Now()
	budget := 1 - s.cfg.Target
	st := SLOStatus{Name: s.cfg.Name, Objective: s.cfg.Objective, Target: s.cfg.Target}
	burning := 0
	s.mu.Lock()
	for i, r := range s.wins {
		good, total := r.tally(now)
		ws := SLOWindowStatus{
			Window:  s.cfg.Windows[i].Name,
			Seconds: s.cfg.Windows[i].Duration.Seconds(),
			Good:    good,
			Total:   total,
		}
		if total > 0 {
			ws.BadFraction = float64(total-good) / float64(total)
			ws.BurnRate = ws.BadFraction / budget
		}
		if ws.BurnRate >= s.cfg.FastBurnThreshold {
			burning++
		}
		st.Windows = append(st.Windows, ws)
	}
	s.mu.Unlock()
	st.FastBurn = len(st.Windows) > 0 && burning == len(st.Windows)
	return st
}

// Publish refreshes the SLO's gauges in reg: one burn-rate and one
// bad-fraction gauge per window, plus a 0/1 fast-burn gauge. Meant to be
// called from the /metrics handler just before the registry is written, so
// scrapes always see current readings without a background ticker.
func (s *SLO) Publish(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	st := s.Status()
	for _, w := range st.Windows {
		lbl := Labels{"window": w.Window}
		reg.Gauge(fmt.Sprintf("megh_slo_%s_burn_rate", s.cfg.Name),
			"SLO burn rate (bad fraction over error budget) per window.", lbl).Set(w.BurnRate)
		reg.Gauge(fmt.Sprintf("megh_slo_%s_bad_ratio", s.cfg.Name),
			"Fraction of requests missing the SLO objective per window.", lbl).Set(w.BadFraction)
	}
	fast := 0.0
	if st.FastBurn {
		fast = 1
	}
	reg.Gauge(fmt.Sprintf("megh_slo_%s_fast_burn", s.cfg.Name),
		"1 when every burn-rate window is at or above the fast-burn threshold.", nil).Set(fast)
}
