package obs

import (
	"fmt"
	"io"
	"sort"
)

func writef(w io.Writer, format string, args ...any) error {
	_, err := fmt.Fprintf(w, format, args...)
	return err
}

// MetricPoint is a point-in-time copy of one labelled instance inside a
// family. For counters and gauges Value carries the reading; for histograms
// Buckets holds the per-bucket (non-cumulative) counts aligned with the
// family's Bounds plus one trailing +Inf bucket, and Sum/Count carry the
// running aggregate.
type MetricPoint struct {
	// LabelSig is the rendered label block (`{k="v",…}` or "" for none),
	// identical to what the exposition writer prints.
	LabelSig string
	Value    float64
	Buckets  []int64
	Sum      float64
	Count    int64
}

// FamilySnapshot is a point-in-time copy of one metric family: its
// metadata plus every labelled instance, points sorted by label signature.
type FamilySnapshot struct {
	Name string
	Help string
	Type string // "counter" | "gauge" | "histogram"
	// Bounds are the histogram bucket upper bounds (nil for other types).
	Bounds []float64
	Points []MetricPoint
}

// Gather returns a deterministic snapshot of every family in the registry,
// sorted by name. It is the introspection surface for the metric-name lint
// and for fleet-level re-export of per-session registries: callers can
// relabel, merge, and re-render snapshots without holding any registry
// locks.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

func (f *family) snapshot() FamilySnapshot {
	fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
	if f.typ == typeHistogram {
		fs.Bounds = append([]float64(nil), f.buckets...)
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.instances))
	for k := range f.instances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	insts := make([]any, len(keys))
	for i, k := range keys {
		insts[i] = f.instances[k]
	}
	f.mu.Unlock()

	for i, key := range keys {
		p := MetricPoint{LabelSig: key}
		switch m := insts[i].(type) {
		case *Counter:
			p.Value = float64(m.Value())
		case *Gauge:
			p.Value = m.Value()
		case *Histogram:
			p.Buckets = make([]int64, len(m.counts))
			for j := range m.counts {
				p.Buckets[j] = m.counts[j].Load()
				p.Count += p.Buckets[j]
			}
			p.Sum = m.Sum()
		}
		fs.Points = append(fs.Points, p)
	}
	return fs
}

// WithLabelFirst splices one extra label pair at the front of a rendered
// label signature. Prepending (rather than sorted insertion) keeps the
// operation cheap and deterministic without re-parsing escaped values; the
// exposition format does not require sorted label order.
func WithLabelFirst(sig, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if sig == "" {
		return "{" + extra + "}"
	}
	return "{" + extra + "," + sig[1:]
}

// MergeSnapshots folds src's points into dst under the same family name,
// summing counters, gauges, and histogram buckets point-wise by label
// signature. dst families are created as needed. Gauges fold as sums: for
// fleet roll-ups this reads as a fleet total (document per metric whether a
// summed gauge is meaningful). Histograms merge only when bucket bounds
// match; mismatched families are skipped.
func MergeSnapshots(dst map[string]*FamilySnapshot, src []FamilySnapshot) {
	for i := range src {
		s := &src[i]
		d, ok := dst[s.Name]
		if !ok {
			cp := FamilySnapshot{Name: s.Name, Help: s.Help, Type: s.Type,
				Bounds: append([]float64(nil), s.Bounds...)}
			for _, p := range s.Points {
				cp.Points = append(cp.Points, clonePoint(p))
			}
			dst[s.Name] = &cp
			continue
		}
		if d.Type != s.Type || len(d.Bounds) != len(s.Bounds) {
			continue
		}
		for _, p := range s.Points {
			mergePoint(d, p)
		}
	}
}

func clonePoint(p MetricPoint) MetricPoint {
	p.Buckets = append([]int64(nil), p.Buckets...)
	return p
}

func mergePoint(d *FamilySnapshot, p MetricPoint) {
	for i := range d.Points {
		if d.Points[i].LabelSig == p.LabelSig {
			d.Points[i].Value += p.Value
			d.Points[i].Sum += p.Sum
			d.Points[i].Count += p.Count
			for j := range p.Buckets {
				if j < len(d.Points[i].Buckets) {
					d.Points[i].Buckets[j] += p.Buckets[j]
				}
			}
			return
		}
	}
	d.Points = append(d.Points, clonePoint(p))
}

// WriteSnapshots renders family snapshots in the Prometheus text format,
// families sorted by name and points by label signature — the same layout
// WritePrometheus produces for a live registry.
func WriteSnapshots(w io.Writer, fams []FamilySnapshot) error {
	sorted := append([]FamilySnapshot(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i := range sorted {
		if err := writeSnapshot(w, &sorted[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeSnapshot(w io.Writer, f *FamilySnapshot) error {
	if len(f.Points) == 0 {
		return nil
	}
	pts := append([]MetricPoint(nil), f.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].LabelSig < pts[j].LabelSig })
	if f.Help != "" {
		if err := writef(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
			return err
		}
	}
	if err := writef(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
		return err
	}
	for _, p := range pts {
		switch f.Type {
		case typeHistogram:
			var cum int64
			for j, bound := range f.Bounds {
				if j < len(p.Buckets) {
					cum += p.Buckets[j]
				}
				if err := writef(w, "%s_bucket%s %d\n",
					f.Name, withLabel(p.LabelSig, "le", formatFloat(bound)), cum); err != nil {
					return err
				}
			}
			if len(p.Buckets) > len(f.Bounds) {
				cum += p.Buckets[len(f.Bounds)]
			}
			if err := writef(w, "%s_bucket%s %d\n",
				f.Name, withLabel(p.LabelSig, "le", "+Inf"), cum); err != nil {
				return err
			}
			if err := writef(w, "%s_sum%s %s\n", f.Name, p.LabelSig, formatFloat(p.Sum)); err != nil {
				return err
			}
			if err := writef(w, "%s_count%s %d\n", f.Name, p.LabelSig, cum); err != nil {
				return err
			}
		case typeCounter:
			if err := writef(w, "%s%s %d\n", f.Name, p.LabelSig, int64(p.Value)); err != nil {
				return err
			}
		default:
			if err := writef(w, "%s%s %s\n", f.Name, p.LabelSig, formatFloat(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
