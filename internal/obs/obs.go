// Package obs is the reproduction's zero-dependency observability layer:
// a metrics registry with atomic counters, gauges, and log-bucketed
// histograms, exported in the Prometheus text format (obs.Registry.Handler
// serves it at GET /metrics). It exists so the serving path (meghd) and the
// simulator can defend the paper's operational claims — constant-time
// decisions (§5.2, Figure 6) and linear Q-table growth (Figure 7) — with
// live measurements instead of test helpers.
//
// The module is intentionally stdlib-only (the repo's go.mod has no
// dependencies); the exporter emits text format version 0.0.4, which every
// Prometheus-compatible scraper understands.
//
// All metric operations are safe for concurrent use and lock-free on the
// hot path: counters and histogram buckets are atomic integers, gauges and
// histogram sums are atomic float64 bit patterns. Get-or-create lookups
// (Registry.Counter, …) take the registry lock, so instruments should be
// resolved once and cached by callers on hot paths.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimension key/value pairs to one metric instance
// (e.g. {"route": "/v1/decide"}). A nil map means no labels.
type Labels map[string]string

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets hold per-bucket (not
// cumulative) counts internally; the exporter accumulates them into the
// cumulative `le` form Prometheus expects.
type Histogram struct {
	// bounds are the ascending inclusive upper bounds; one extra implicit
	// +Inf bucket follows the last bound.
	bounds  []float64
	counts  []atomic.Int64
	sumBits atomic.Uint64
	// exemplars holds, per bucket, the most recent exemplar recorded via
	// ObserveExemplar — a link from a latency bucket back to the request
	// (X-Request-ID / trace offset) that landed in it. Plain Observe never
	// touches it, so the hot path stays allocation-free.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to a concrete observation: the
// request ID (or trace offset) and value that most recently landed in it.
type Exemplar struct {
	// Bucket is the bucket's upper bound; math.Inf(1) for the overflow
	// bucket.
	Bucket float64 `json:"bucket_le"`
	// Value is the observed sample.
	Value float64 `json:"value"`
	// Label identifies the request: an X-Request-ID or trace offset.
	Label string `json:"label"`
}

// ObserveExemplar records a sample like Observe and additionally stores an
// exemplar for the bucket it lands in. It allocates (one Exemplar per
// call), so use it on request-scoped paths — middleware, not kernels.
func (h *Histogram) ObserveExemplar(v float64, label string) {
	i := sort.SearchFloat64s(h.bounds, v)
	bound := math.Inf(1)
	if i < len(h.bounds) {
		bound = h.bounds[i]
	}
	h.exemplars[i].Store(&Exemplar{Bucket: bound, Value: v, Label: label})
	h.Observe(v)
}

// Exemplars returns the recorded exemplars in ascending bucket order,
// skipping buckets that never received one.
func (h *Histogram) Exemplars() []Exemplar {
	var out []Exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the +Inf bucket catches the
	// rest.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LogBuckets returns count upper bounds growing geometrically from start by
// factor — the log-spaced bucketing that keeps relative error uniform
// across decision latencies spanning microseconds to seconds.
func LogBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("obs: invalid log buckets (start=%g factor=%g count=%d)", start, factor, count))
	}
	out := make([]float64, count)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// DefLatencyBuckets covers 1 µs … ~16.8 s in factor-2 steps, wide enough
// for both the sub-millisecond Megh decisions of §5.2 and slow cold paths.
func DefLatencyBuckets() []float64 { return LogBuckets(1e-6, 2, 25) }

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family groups every labelled instance of one metric name.
type family struct {
	name, help, typ string
	// buckets is set for histogram families; all instances share it.
	buckets []float64

	mu        sync.Mutex
	instances map[string]any // label signature → *Counter | *Gauge | *Histogram
}

// Registry holds a process's metric families. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter with the given name and labels, creating it
// on first use. It panics if the name is already registered as a different
// metric type (a programming error, like Prometheus client libraries).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	inst := r.instance(name, help, typeCounter, nil, labels, func() any { return &Counter{} })
	return inst.(*Counter)
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	inst := r.instance(name, help, typeGauge, nil, labels, func() any { return &Gauge{} })
	return inst.(*Gauge)
}

// Histogram returns the histogram with the given name and labels, creating
// it with DefLatencyBuckets on first use.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.HistogramBuckets(name, help, nil, labels)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds (nil
// means DefLatencyBuckets). The first registration of a name fixes the
// family's buckets; later callers inherit them.
func (r *Registry) HistogramBuckets(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets()
	} else {
		buckets = append([]float64(nil), buckets...)
		sort.Float64s(buckets)
	}
	var fam *family
	inst := r.instanceWith(name, help, typeHistogram, buckets, labels, func() any {
		h := &Histogram{bounds: fam.buckets}
		h.counts = make([]atomic.Int64, len(fam.buckets)+1)
		h.exemplars = make([]atomic.Pointer[Exemplar], len(fam.buckets)+1)
		return h
	}, &fam)
	return inst.(*Histogram)
}

func (r *Registry) instance(name, help, typ string, buckets []float64, labels Labels, mk func() any) any {
	var fam *family
	return r.instanceWith(name, help, typ, buckets, labels, mk, &fam)
}

// instanceWith resolves (or creates) the family, stores it through famOut
// so the constructor can read family-level state (histogram buckets), and
// returns the labelled instance.
func (r *Registry) instanceWith(name, help, typ string, buckets []float64, labels Labels, mk func() any, famOut **family) any {
	r.mu.Lock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{
			name: name, help: help, typ: typ,
			buckets:   buckets,
			instances: make(map[string]any),
		}
		r.families[name] = fam
	}
	r.mu.Unlock()
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.typ, typ))
	}
	*famOut = fam

	key := labelSignature(labels)
	fam.mu.Lock()
	defer fam.mu.Unlock()
	if inst, ok := fam.instances[key]; ok {
		return inst
	}
	inst := mk()
	fam.instances[key] = inst
	return inst
}

// labelSignature renders labels deterministically for use as a map key and
// as the exported label block ({k="v",…}); empty for no labels.
func labelSignature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the text-format escaping rules for label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
