package health_test

import (
	"testing"

	"megh/internal/core"
	"megh/internal/health"
	"megh/internal/sim"
)

// BenchmarkDecideHealth prices the always-on health layer against the
// production decide cycle (Decide plus cost feedback, so the
// Sherman–Morrison update runs every iteration) on the same 150-VM ×
// 100-host world core's BenchmarkDecide uses. Compare the sub-benchmarks:
// "on-default-cadence" must stay within a few percent of "off" — the
// overhead budget DESIGN.md's health section commits to — because the
// per-decide work is one cumulative-stats diff and a handful of EWMAs;
// the O(sample·row) probes amortize across the cadence.
func BenchmarkDecideHealth(b *testing.B) {
	const nVMs, nHosts = 150, 100
	snap := testWorld(b, nVMs, nHosts)
	fb := sim.Feedback{StepCost: 0.5, EnergyCost: 0.4, SLACost: 0.1}

	b.Run("off", func(b *testing.B) {
		m, err := core.New(core.DefaultConfig(nVMs, nHosts, 7))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Decide(snap)
			m.Observe(&fb)
		}
	})
	b.Run("on-default-cadence", func(b *testing.B) {
		m, err := core.New(core.DefaultConfig(nVMs, nHosts, 7))
		if err != nil {
			b.Fatal(err)
		}
		tr := health.NewTracker(m, true, health.Config{Seed: 7})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Decide(snap)
			m.Observe(&fb)
			tr.AfterDecide()
		}
	})
}

// TestAfterDecideStaysCheapOffProbe pins the per-decide cost of the health
// layer between probes: after warm-up, a non-probe AfterDecide must not
// allocate at all — the stats diff and EWMA updates run on struct fields.
func TestAfterDecideStaysCheapOffProbe(t *testing.T) {
	m, snap := newLearner(t, 7)
	// A cadence far beyond the measured window keeps every measured call on
	// the cheap path.
	tr := health.NewTracker(m, true, health.Config{ProbeEvery: 1 << 20, Seed: 7})
	drive(m, tr, snap, 8, 1.0)
	allocs := testing.AllocsPerRun(200, func() {
		m.Observe(&sim.Feedback{StepCost: 1.0})
		m.Decide(snap)
		tr.AfterDecide()
	})
	base := testing.AllocsPerRun(200, func() {
		m.Observe(&sim.Feedback{StepCost: 1.0})
		m.Decide(snap)
	})
	if allocs > base {
		t.Fatalf("off-probe AfterDecide allocates: %.1f allocs/op vs %.1f without health", allocs, base)
	}
}
