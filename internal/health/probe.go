package health

import (
	"math"
	"strconv"
)

// splitmix64 is the tracker's private sampling stream: probe rows must be
// deterministic for a given decision sequence and must never consume the
// learner's exploration RNG (probing would otherwise change decisions).
func (t *Tracker) nextRow() int {
	t.rngState += 0x9e3779b97f4a7c15
	z := t.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(t.dim))
}

// runProbe samples SampleRows random rows and computes
//
//   - the θ = B·z residual |θ[i] − (B·z)[i]| — valid on any learner,
//   - when the shadow is armed, the inverse-drift residual
//     max_j |(B·T)[i,j] − I[i,j]| with T = δ·I + D reconstructed from the
//     sparse shadow D: (B·T)[i,j] = δ·B[i,j] + Σ_k B[i,k]·D[k,j].
//
// Cost is O(rows · nnz_row · nnz_shadow_row) — a few sampled sparse dot
// products per cadence, independent of d², which is what makes the
// invariant package's dense oracle production-affordable.
func (t *Tracker) runProbe() {
	rows := t.cfg.SampleRows
	if rows > t.dim {
		rows = t.dim
	}
	p := &ProbeResult{
		AtDecide:         t.decides,
		Rows:             rows,
		InverseAvailable: t.shadowArmed,
	}
	delta := float64(t.dim) // B₀ = (1/δ)·I with δ = d, so T₀ = δ·I
	if t.shadowArmed && t.scratch == nil {
		t.scratch = make([]float64, t.dim)
	}
	for r := 0; r < rows; r++ {
		i := t.nextRow()
		if d := math.Abs(t.m.Theta(i) - t.m.DebugBZRow(i)); d > p.ThetaResidualMax || isNaN(d) {
			p.ThetaResidualMax = maxNaN(p.ThetaResidualMax, d)
		}
		if !t.shadowArmed {
			continue
		}
		row := t.m.DebugBRow(i)
		t.touched = t.touched[:0]
		row.Range(func(k int, bik float64) bool {
			// δ·B[i,k] term of B·T.
			if t.scratch[k] == 0 {
				t.touched = append(t.touched, k)
			}
			t.scratch[k] += delta * bik
			// B[i,k] · D[k,·] terms.
			for j, dkj := range t.shadow[k] {
				if t.scratch[j] == 0 {
					t.touched = append(t.touched, j)
				}
				t.scratch[j] += bik * dkj
			}
			return true
		})
		if t.scratch[i] == 0 {
			t.touched = append(t.touched, i)
		}
		t.scratch[i] -= 1
		for _, j := range t.touched {
			if v := math.Abs(t.scratch[j]); v > p.InverseResidualMax || isNaN(v) {
				p.InverseResidualMax = maxNaN(p.InverseResidualMax, v)
			}
			t.scratch[j] = 0
		}
	}
	t.probe = p
}

func isNaN(v float64) bool { return v != v }

// maxNaN is max that treats NaN as the largest value: a NaN residual is
// the worst possible news and must not be masked by a later finite sample.
func maxNaN(a, b float64) float64 {
	if isNaN(a) {
		return a
	}
	if isNaN(b) || b > a {
		return b
	}
	return a
}

// fg formats a float for reason strings exactly as the JSON encoder does,
// keeping snapshots and reasons byte-stable across runs.
func fg(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// evaluate rescores the verdict from the current telemetry, most severe
// signal first, and records a reason naming the signal, its value, and the
// threshold it crossed. Reason strings are built only in the branch that
// fires: evaluate runs on every decide, so the healthy path must not
// allocate.
func (t *Tracker) evaluate() {
	exceeds := func(v, thr float64) bool {
		return thr >= 0 && (isNaN(v) || v >= thr)
	}
	probeTheta, probeInv := 0.0, 0.0
	haveProbe := t.probe != nil
	if haveProbe {
		probeTheta = t.probe.ThetaResidualMax
		probeInv = t.probe.InverseResidualMax
	}
	fail := func(v Verdict, reason string) {
		t.verdict, t.reason = v, reason
		t.publish()
	}
	switch {
	case t.nonFinite > 0:
		fail(Diverging,
			"non-finite values in LSPI updates (count "+strconv.FormatInt(t.nonFinite, 10)+")")
	case haveProbe && t.probe.InverseAvailable && exceeds(probeInv, t.thr.InverseDiverging):
		fail(Diverging,
			"inverse probe |B*T-I| "+fg(probeInv)+" >= "+fg(t.thr.InverseDiverging))
	case haveProbe && exceeds(probeTheta, t.thr.ThetaDiverging):
		fail(Diverging,
			"theta probe |theta-B*z| "+fg(probeTheta)+" >= "+fg(t.thr.ThetaDiverging))
	case t.drift.init && exceeds(t.drift.v, t.thr.DriftDiverging):
		fail(Diverging,
			"theta drift EWMA "+fg(t.drift.v)+" >= "+fg(t.thr.DriftDiverging))
	case t.resid.init && exceeds(t.resid.v, t.thr.ResidualDiverging):
		fail(Diverging,
			"bellman residual EWMA "+fg(t.resid.v)+" >= "+fg(t.thr.ResidualDiverging))
	case haveProbe && t.probe.InverseAvailable && exceeds(probeInv, t.thr.InverseDegraded):
		fail(Degraded,
			"inverse probe |B*T-I| "+fg(probeInv)+" >= "+fg(t.thr.InverseDegraded))
	case haveProbe && exceeds(probeTheta, t.thr.ThetaDegraded):
		fail(Degraded,
			"theta probe |theta-B*z| "+fg(probeTheta)+" >= "+fg(t.thr.ThetaDegraded))
	case t.drift.init && exceeds(t.drift.v, t.thr.DriftDegraded):
		fail(Degraded,
			"theta drift EWMA "+fg(t.drift.v)+" >= "+fg(t.thr.DriftDegraded))
	case t.resid.init && exceeds(t.resid.v, t.thr.ResidualDegraded):
		fail(Degraded,
			"bellman residual EWMA "+fg(t.resid.v)+" >= "+fg(t.thr.ResidualDegraded))
	case t.thr.QueueDepthDegraded > 0 && t.qDepth >= t.thr.QueueDepthDegraded:
		fail(Degraded,
			"deferred queue depth "+strconv.Itoa(t.qDepth)+" >= "+strconv.Itoa(t.thr.QueueDepthDegraded))
	case t.thr.StalenessDegraded > 0 && t.qAge >= t.thr.StalenessDegraded:
		fail(Degraded,
			"deferred queue age "+strconv.Itoa(t.qAge)+" decides >= "+strconv.Itoa(t.thr.StalenessDegraded))
	case t.nnzRate.init && exceeds(t.nnzRate.v, t.thr.NNZGrowthDegraded):
		fail(Degraded,
			"nnz growth "+fg(t.nnzRate.v)+" per decide >= "+fg(t.thr.NNZGrowthDegraded))
	default:
		t.verdict, t.reason = Healthy, ""
		t.publish()
	}
}

// publish refreshes the optional obs gauges.
func (t *Tracker) publish() {
	g := t.gauges
	if g == nil {
		return
	}
	g.verdict.Set(float64(t.verdict))
	g.drift.Set(t.drift.v)
	g.residual.Set(t.resid.v)
	g.queue.Set(float64(t.qDepth))
	if t.probe != nil {
		g.inverse.Set(t.probe.InverseResidualMax)
	}
}
