package health_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"megh/internal/core"
	"megh/internal/health"
	"megh/internal/obs"
	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

// testWorld builds a consistent snapshot through the simulator: nVMs VMs at
// low utilisation on nHosts hosts, so underload consolidation candidates
// exist and Decide produces migrations (and therefore LSPI updates).
func testWorld(t testing.TB, nVMs, nHosts int) *sim.Snapshot {
	t.Helper()
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := make([]sim.VMSpec, nVMs)
	traces := make([]workload.Trace, nVMs)
	for i := range vms {
		vms[i] = sim.VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
		traces[i] = workload.Trace{0.1}
	}
	var snap *sim.Snapshot
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
		InitialPlacement: sim.PlacementRoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&snapGrabber{out: &snap}); err != nil {
		t.Fatal(err)
	}
	return snap
}

type snapGrabber struct{ out **sim.Snapshot }

func (snapGrabber) Name() string { return "grab" }

func (g *snapGrabber) Decide(s *sim.Snapshot) []sim.Migration {
	c := *s
	c.VMHost = append([]int(nil), s.VMHost...)
	c.VMUtil = append([]float64(nil), s.VMUtil...)
	c.VMMIPS = append([]float64(nil), s.VMMIPS...)
	c.HostUtil = append([]float64(nil), s.HostUtil...)
	c.HostVMs = make([][]int, len(s.HostVMs))
	for i := range s.HostVMs {
		c.HostVMs[i] = append([]int(nil), s.HostVMs[i]...)
	}
	c.HostFailed = append([]bool(nil), s.HostFailed...)
	*g.out = &c
	return nil
}

// drive runs steps of the observe→decide loop with a constant step cost.
func drive(m *core.Megh, tr *health.Tracker, snap *sim.Snapshot, steps int, cost float64) {
	for i := 0; i < steps; i++ {
		m.Observe(&sim.Feedback{StepCost: cost})
		m.Decide(snap)
		tr.AfterDecide()
	}
}

func newLearner(t testing.TB, seed int64) (*core.Megh, *sim.Snapshot) {
	t.Helper()
	m, err := core.New(core.DefaultConfig(8, 4, seed))
	if err != nil {
		t.Fatal(err)
	}
	return m, testWorld(t, 8, 4)
}

// A normally learning session stays Healthy, probes run on cadence, and the
// inverse probe is available on a fresh learner.
func TestHealthyOnNormalRun(t *testing.T) {
	m, snap := newLearner(t, 7)
	tr := health.NewTracker(m, true, health.Config{ProbeEvery: 8, SampleRows: 6, Seed: 7})
	drive(m, tr, snap, 40, 1.5)
	v, reason := tr.Verdict()
	if v != health.Healthy {
		t.Fatalf("verdict = %s (%s), want healthy", v, reason)
	}
	s := tr.Snapshot()
	if s.Probe == nil {
		t.Fatal("no probe ran in 40 decides at cadence 8")
	}
	if !s.Probe.InverseAvailable {
		t.Fatal("inverse probe unavailable on a fresh learner")
	}
	if s.Probe.InverseResidualMax > 1e-8 {
		t.Fatalf("inverse residual %g on a consistent learner", s.Probe.InverseResidualMax)
	}
	if s.Probe.ThetaResidualMax > 1e-8 {
		t.Fatalf("theta residual %g on a consistent learner", s.Probe.ThetaResidualMax)
	}
	if s.Decides != 40 {
		t.Fatalf("decides = %d, want 40", s.Decides)
	}
	if len(s.TempTimeline) == 0 {
		t.Fatal("temperature timeline empty")
	}
	if s.Applied == 0 {
		t.Fatal("no LSPI updates observed — world produced no learning")
	}
}

// Driving costs across custom thresholds walks the verdict deterministically
// through Healthy → Degraded → Diverging with the matching reason strings.
func TestVerdictTransitions(t *testing.T) {
	m, snap := newLearner(t, 11)
	tr := health.NewTracker(m, true, health.Config{
		ProbeEvery: -1, // streaming EWMAs only; probes off
		Thresholds: health.Thresholds{
			DriftDegraded:  1e3,
			DriftDiverging: 1e7,
			// Residual scales with cost too; keep it out of the way so the
			// drift reasons are the ones asserted.
			ResidualDegraded:  1e30,
			ResidualDiverging: 1e31,
		},
		Seed: 11,
	})

	drive(m, tr, snap, 10, 1)
	if v, reason := tr.Verdict(); v != health.Healthy {
		t.Fatalf("after small costs: verdict = %s (%s), want healthy", v, reason)
	}

	drive(m, tr, snap, 30, 5e4)
	v, reason := tr.Verdict()
	if v != health.Degraded {
		t.Fatalf("after moderate costs: verdict = %s (%s), want degraded", v, reason)
	}
	if !strings.Contains(reason, "theta drift EWMA") || !strings.Contains(reason, ">= 1000") {
		t.Fatalf("degraded reason = %q, want theta drift EWMA vs 1000", reason)
	}

	drive(m, tr, snap, 30, 5e9)
	v, reason = tr.Verdict()
	if v != health.Diverging {
		t.Fatalf("after huge costs: verdict = %s (%s), want diverging", v, reason)
	}
	if !strings.Contains(reason, "theta drift EWMA") || !strings.Contains(reason, ">= 1e+07") {
		t.Fatalf("diverging reason = %q, want theta drift EWMA vs 1e+07", reason)
	}
}

// A non-finite cost is a corrupted update: the verdict flips to Diverging at
// the very next AfterDecide — well within one probe cadence — and the theta
// probe confirms the poisoned state.
func TestNaNCostDiverges(t *testing.T) {
	m, snap := newLearner(t, 3)
	tr := health.NewTracker(m, true, health.Config{ProbeEvery: 16, Seed: 3})
	drive(m, tr, snap, 20, 1)
	if v, reason := tr.Verdict(); v != health.Healthy {
		t.Fatalf("pre-corruption verdict = %s (%s)", v, reason)
	}
	drive(m, tr, snap, 1, math.NaN())
	v, reason := tr.Verdict()
	if v != health.Diverging {
		t.Fatalf("post-NaN verdict = %s (%s), want diverging", v, reason)
	}
	if !strings.Contains(reason, "non-finite") {
		t.Fatalf("reason = %q, want non-finite", reason)
	}
	s := tr.Snapshot()
	if s.NonFinite == 0 {
		t.Fatal("NonFinite counter did not move")
	}
}

// If the tracker misses updates (hook detached — the stand-in for a
// corrupted/unobserved update stream), the inverse probe catches the drift
// between B and the shadowed T within one probe cadence.
func TestInverseProbeCatchesMissedUpdates(t *testing.T) {
	m, snap := newLearner(t, 5)
	tr := health.NewTracker(m, true, health.Config{ProbeEvery: 4, SampleRows: 12, Seed: 5})
	drive(m, tr, snap, 16, 2)
	if v, reason := tr.Verdict(); v != health.Healthy {
		t.Fatalf("pre-divergence verdict = %s (%s)", v, reason)
	}
	// Updates now bypass the shadow: B keeps moving, T's mirror does not.
	m.SetUpdateHook(nil)
	drive(m, tr, snap, 8, 2)
	v, reason := tr.Verdict()
	if v == health.Healthy {
		s := tr.Snapshot()
		t.Fatalf("verdict still healthy after divergence (probe=%+v)", s.Probe)
	}
	if !strings.Contains(reason, "inverse probe") {
		t.Fatalf("reason = %q, want inverse probe", reason)
	}
}

// Same-seed runs produce byte-identical health snapshots: the determinism
// guarantee extends to telemetry.
func TestSnapshotByteIdentical(t *testing.T) {
	run := func() []byte {
		m, snap := newLearner(t, 42)
		tr := health.NewTracker(m, true, health.Config{ProbeEvery: 8, SampleRows: 5, Seed: 42})
		drive(m, tr, snap, 64, 3)
		b, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed snapshots differ:\n%s\n%s", a, b)
	}
}

// A tracker attached to a restored learner (fresh=false) still runs the
// θ = B·z probe but reports the inverse probe unavailable.
func TestRestoredLearnerThetaProbeOnly(t *testing.T) {
	m, snap := newLearner(t, 9)
	// Simulate a mid-stream attach: learner has history the tracker missed.
	for i := 0; i < 10; i++ {
		m.Observe(&sim.Feedback{StepCost: 2})
		m.Decide(snap)
	}
	tr := health.NewTracker(m, false, health.Config{ProbeEvery: 4, Seed: 9})
	drive(m, tr, snap, 8, 2)
	s := tr.Snapshot()
	if s.InverseArmed {
		t.Fatal("inverse probe armed on a mid-stream attach")
	}
	if s.Probe == nil {
		t.Fatal("no probe ran")
	}
	if s.Probe.InverseAvailable {
		t.Fatal("inverse probe reported available without full observation")
	}
	if s.Probe.ThetaResidualMax > 1e-8 {
		t.Fatalf("theta residual %g on a consistent learner", s.Probe.ThetaResidualMax)
	}
	if v, reason := tr.Verdict(); v != health.Healthy {
		t.Fatalf("verdict = %s (%s), want healthy", v, reason)
	}
}

// Detach keeps the cached telemetry readable (the evicted-session
// observability guarantee) and Reattach rebases the learner's restarted
// counters without double counting.
func TestDetachReattach(t *testing.T) {
	m, snap := newLearner(t, 13)
	tr := health.NewTracker(m, true, health.Config{ProbeEvery: 8, Seed: 13})
	drive(m, tr, snap, 16, 2)
	before := tr.Snapshot()

	tr.Detach()
	if tr.Attached() {
		t.Fatal("tracker still attached after Detach")
	}
	tr.AfterDecide() // must be a no-op
	after := tr.Snapshot()
	if after.Decides != before.Decides || after.Applied != before.Applied {
		t.Fatalf("detached snapshot moved: %+v vs %+v", after, before)
	}
	if after.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", after.Evictions)
	}

	// The server restores byte-identically; reusing the same learner here
	// models that (its cumulative stats keep running, which Reattach's
	// rebase must tolerate just like a zeroed restart).
	tr.Reattach(m)
	drive(m, tr, snap, 8, 2)
	s := tr.Snapshot()
	if s.Decides != before.Decides+8 {
		t.Fatalf("decides after reattach = %d, want %d", s.Decides, before.Decides+8)
	}
	if v, reason := tr.Verdict(); v != health.Healthy {
		t.Fatalf("verdict = %s (%s), want healthy", v, reason)
	}
	if s.Probe == nil || !s.Probe.InverseAvailable {
		t.Fatal("inverse probe lost across detach/reattach")
	}
}

// The tracker plugs into sim.Config.Health and its gauges land in a
// registry.
func TestSimIntegrationAndGauges(t *testing.T) {
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	const nVMs, nHosts = 6, 3
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := make([]sim.VMSpec, nVMs)
	traces := make([]workload.Trace, nVMs)
	for i := range vms {
		vms[i] = sim.VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
		tr := make(workload.Trace, 30)
		for k := range tr {
			tr[k] = 0.1 + 0.05*float64(i%3)
		}
		traces[i] = tr
	}
	m, err := core.New(core.DefaultConfig(nVMs, nHosts, 21))
	if err != nil {
		t.Fatal(err)
	}
	tr := health.NewTracker(m, true, health.Config{ProbeEvery: 4, Seed: 21})
	reg := obs.NewRegistry()
	tr.Instrument(reg)
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 30,
		InitialPlacement: sim.PlacementRoundRobin,
		Seed:             21,
		Health:           tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(m); err != nil {
		t.Fatal(err)
	}
	if tr.Decides() != 30 {
		t.Fatalf("tracker saw %d decides, want 30", tr.Decides())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"megh_health_verdict", "megh_health_theta_drift_ewma", "megh_health_deferred_queue_depth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry missing %s:\n%s", want, out)
		}
	}
}
