// Package health is the learning-health observability layer: it turns the
// invariant package's test-only oracles into cheap always-on production
// probes and rolls them up into a per-session verdict an operator (or the
// fleet rollup in internal/server) can act on.
//
// A Tracker rides alongside one core.Megh learner. After every decide (or
// batch of decides) the owner calls AfterDecide, which diffs the learner's
// cumulative core.LearnStats to advance streaming telemetry:
//
//   - θ drift rate — EWMA of ‖Δθ‖ per decide,
//   - Bellman/TD residual EWMA,
//   - nnz growth rate per decide,
//   - deferred-update queue depth and staleness,
//   - the exploration-temperature timeline,
//
// and, on a configurable cadence, runs sampled consistency probes: a
// θ = B·z spot check on K random rows and — when the tracker has observed
// the learner since construction via the update hook — a sampled
// ‖B·T − I‖∞ inverse-drift probe against a sparse shadow of T. Every
// signal is scored against Thresholds into a Healthy/Degraded/Diverging
// verdict with a human-readable reason.
//
// Everything is deterministic for a fixed decision sequence: probe rows
// come from the tracker's own splitmix64 stream (never the learner's RNG),
// no wall clock is read, and Snapshot marshals to byte-identical JSON for
// same-seed runs.
package health

import (
	"math"
	"strconv"

	"megh/internal/core"
	"megh/internal/obs"
)

// Verdict is the tracker's rolled-up assessment of a learner.
type Verdict int

// Verdict levels, ordered by severity.
const (
	Healthy Verdict = iota
	Degraded
	Diverging
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Diverging:
		return "diverging"
	default:
		return "verdict(" + strconv.Itoa(int(v)) + ")"
	}
}

// Thresholds scores each telemetry stream. A zero-valued field falls back
// to the matching DefThresholds entry; setting a threshold negative
// disables that check.
type Thresholds struct {
	// DriftDegraded / DriftDiverging bound the EWMA of ‖Δθ‖ per decide.
	DriftDegraded  float64
	DriftDiverging float64
	// ResidualDegraded / ResidualDiverging bound the Bellman residual EWMA.
	ResidualDegraded  float64
	ResidualDiverging float64
	// InverseDegraded / InverseDiverging bound the sampled ‖B·T − I‖∞
	// probe (numerical-consistency scale, not cost scale).
	InverseDegraded  float64
	InverseDiverging float64
	// ThetaDegraded / ThetaDiverging bound the sampled max |θ[i] − (B·z)[i]|.
	ThetaDegraded  float64
	ThetaDiverging float64
	// QueueDepthDegraded bounds the deferred-update queue depth (logical
	// transitions, merged multiplicity counted).
	QueueDepthDegraded int
	// StalenessDegraded bounds the deferred queue's age in decides. The
	// learner flushes at its DeferMaxAge, so the default (2× the learner's
	// effective max age, resolved at NewTracker) only fires if flushing is
	// broken.
	StalenessDegraded int
	// NNZGrowthDegraded bounds the EWMA of Q-table nnz growth per decide.
	NNZGrowthDegraded float64
}

// DefThresholds returns the default scoring thresholds. Cost-scale bounds
// (drift, residual) are deliberately loose — they catch runaway feedback,
// not normal learning; the numerical bounds (θ, inverse) sit well above
// float noise but far below anything a corrupted state produces.
func DefThresholds() Thresholds {
	return Thresholds{
		DriftDegraded:      1e4,
		DriftDiverging:     1e8,
		ResidualDegraded:   1e4,
		ResidualDiverging:  1e8,
		InverseDegraded:    1e-5,
		InverseDiverging:   1e-2,
		ThetaDegraded:      1e-5,
		ThetaDiverging:     1e-2,
		QueueDepthDegraded: 1 << 16,
		NNZGrowthDegraded:  0, // resolved to dim/20 per decide at NewTracker
	}
}

// Config configures one Tracker.
type Config struct {
	// ProbeEvery is the number of decides between sampled probes; 0 means
	// DefProbeEvery, negative disables probing (the streaming EWMAs and
	// queue telemetry still run).
	ProbeEvery int
	// SampleRows is how many rows each probe samples; 0 means 4.
	SampleRows int
	// Alpha is the EWMA smoothing factor in (0,1]; 0 means 0.2.
	Alpha float64
	// Thresholds scores the telemetry; zero-valued fields use defaults.
	Thresholds Thresholds
	// Seed seeds the tracker's private row-sampling stream. The tracker
	// never touches the learner's RNG, so probing cannot change decisions.
	Seed int64
	// TimelineCap bounds the temperature timeline ring; 0 means 64.
	TimelineCap int
}

// DefProbeEvery is the default probe cadence in decides.
const DefProbeEvery = 256

// TempSample is one point of the exploration-temperature timeline.
type TempSample struct {
	Decide      int64   `json:"decide"`
	Temperature float64 `json:"temperature"`
}

// ProbeResult is the outcome of one sampled consistency probe.
type ProbeResult struct {
	// AtDecide is the tracker-relative decide count the probe ran at.
	AtDecide int64 `json:"at_decide"`
	// Rows is how many rows were sampled.
	Rows int `json:"rows_sampled"`
	// ThetaResidualMax is the sampled max |θ[i] − (B·z)[i]| — valid on
	// every learner, including ones restored mid-stream from a checkpoint
	// (θ and z are both persisted state).
	ThetaResidualMax float64 `json:"theta_residual_max"`
	// InverseAvailable reports whether the ‖B·T − I‖∞ probe ran. It
	// requires the tracker to have shadowed every update since the
	// learner's construction; a tracker attached to a learner restored
	// from a checkpoint it did not witness reports false here (the θ = B·z
	// probe carries the corruption check instead).
	InverseAvailable bool `json:"inverse_available"`
	// InverseResidualMax is the sampled row-wise max of |B·T − I| when
	// available.
	InverseResidualMax float64 `json:"inverse_residual_max,omitempty"`
}

// Snapshot is a point-in-time copy of the tracker's telemetry, shaped for
// stable JSON: field order is fixed and all values derive from the
// decision sequence, so same-seed runs marshal byte-identically.
type Snapshot struct {
	Decides      int64        `json:"decides"`
	Verdict      string       `json:"verdict"`
	Reason       string       `json:"reason,omitempty"`
	Evictions    int64        `json:"evictions"`
	InverseArmed bool         `json:"inverse_probe_armed"`
	ThetaDrift   float64      `json:"theta_drift_ewma"`
	Residual     float64      `json:"bellman_residual_ewma"`
	Temperature  float64      `json:"temperature"`
	QTableNNZ    int          `json:"qtable_nnz"`
	NNZGrowth    float64      `json:"nnz_growth_per_decide_ewma"`
	QueueDepth   int          `json:"deferred_queue_depth"`
	QueueAge     int          `json:"deferred_queue_age"`
	QueueAgePeak int          `json:"deferred_queue_age_peak"`
	Applied      int64        `json:"updates_applied_total"`
	Skipped      int64        `json:"updates_skipped_total"`
	NonFinite    int64        `json:"non_finite_total"`
	Probe        *ProbeResult `json:"probe,omitempty"`
	TempTimeline []TempSample `json:"temperature_timeline,omitempty"`
}

// ewma is an exponentially weighted moving average seeded by its first
// sample.
type ewma struct {
	v    float64
	init bool
}

func (e *ewma) add(alpha, x float64) {
	if !e.init {
		e.v, e.init = x, true
		return
	}
	e.v += alpha * (x - e.v)
}

// Tracker maintains learning-health telemetry for one learner. It is not
// safe for concurrent use; the owner serialises AfterDecide, Snapshot and
// the eviction lifecycle exactly as it serialises learner access (the
// server holds the session lock, the simulator is single-threaded).
type Tracker struct {
	cfg      Config
	thr      Thresholds
	m        *core.Megh
	dim      int
	rngState uint64

	// shadow, when armed, mirrors T − δ·I per row: every applied rank-1
	// update adds n to (a,a) and −n·γ to (a,b). Armed only when the
	// tracker has witnessed every update since construction (fresh
	// learners; survives byte-identical evict/restore cycles because B and
	// the shadow age together).
	shadowArmed bool
	shadow      map[int]map[int]float64
	scratch     []float64
	touched     []int

	last      core.LearnStats
	decides   int64
	applied   int64
	skipped   int64
	nonFinite int64
	evictions int64

	drift    ewma
	resid    ewma
	nnzRate  ewma
	lastNNZ  int
	temp     float64
	nnz      int
	qDepth   int
	qAge     int
	qAgePeak int

	sinceProbe int64
	probe      *ProbeResult
	timeline   []TempSample

	verdict Verdict
	reason  string

	gauges *gauges
}

// gauges caches the tracker's optional obs instruments.
type gauges struct {
	verdict  *obs.Gauge
	drift    *obs.Gauge
	residual *obs.Gauge
	queue    *obs.Gauge
	inverse  *obs.Gauge
}

// NewTracker attaches learning-health tracking to m. fresh must be true
// only when m was just constructed (core.New) and the tracker will observe
// every update from now on — that arms the sampled ‖B·T − I‖∞ probe via
// the learner's update hook. For a learner restored from a checkpoint the
// tracker did not witness, pass fresh=false: the inverse probe reports
// unavailable and the restore-safe θ = B·z probe carries the consistency
// check.
//
// NewTracker installs the learner's update hook when fresh and probing is
// enabled; it cannot share the hook with internal/invariant's probes
// (last SetUpdateHook wins).
func NewTracker(m *core.Megh, fresh bool, cfg Config) *Tracker {
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefProbeEvery
	}
	if cfg.SampleRows <= 0 {
		cfg.SampleRows = 4
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.2
	}
	if cfg.TimelineCap <= 0 {
		cfg.TimelineCap = 64
	}
	t := &Tracker{
		cfg:      cfg,
		thr:      resolveThresholds(cfg.Thresholds, m),
		m:        m,
		dim:      m.Dim(),
		rngState: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x1234567,
		lastNNZ:  m.QTableNNZ(),
		temp:     m.Temperature(),
		nnz:      m.QTableNNZ(),
	}
	m.EnableLearnStats()
	t.last = m.LearnStats()
	if fresh && cfg.ProbeEvery > 0 {
		t.shadowArmed = true
		t.shadow = make(map[int]map[int]float64)
		t.installHook()
	}
	return t
}

func resolveThresholds(thr Thresholds, m *core.Megh) Thresholds {
	def := DefThresholds()
	pick := func(v, d float64) float64 {
		if v == 0 {
			return d
		}
		return v
	}
	thr.DriftDegraded = pick(thr.DriftDegraded, def.DriftDegraded)
	thr.DriftDiverging = pick(thr.DriftDiverging, def.DriftDiverging)
	thr.ResidualDegraded = pick(thr.ResidualDegraded, def.ResidualDegraded)
	thr.ResidualDiverging = pick(thr.ResidualDiverging, def.ResidualDiverging)
	thr.InverseDegraded = pick(thr.InverseDegraded, def.InverseDegraded)
	thr.InverseDiverging = pick(thr.InverseDiverging, def.InverseDiverging)
	thr.ThetaDegraded = pick(thr.ThetaDegraded, def.ThetaDegraded)
	thr.ThetaDiverging = pick(thr.ThetaDiverging, def.ThetaDiverging)
	if thr.QueueDepthDegraded == 0 {
		thr.QueueDepthDegraded = def.QueueDepthDegraded
	}
	if thr.StalenessDegraded == 0 {
		maxAge := m.Config().DeferMaxAge
		if maxAge <= 0 {
			maxAge = core.DefaultDeferMaxAge
		}
		thr.StalenessDegraded = 2 * maxAge
	}
	if thr.NNZGrowthDegraded == 0 {
		// The paper's Figure 7 expects near-linear growth; a sustained rate
		// of dim/20 new entries per decide means the Q-table is densifying.
		thr.NNZGrowthDegraded = float64(m.Dim()) / 20
	}
	return thr
}

func (t *Tracker) installHook() {
	t.m.SetUpdateHook(func(a, b, n int, gamma, c float64, applied bool) {
		if !applied {
			return
		}
		row := t.shadow[a]
		if row == nil {
			row = make(map[int]float64, 2)
			t.shadow[a] = row
		}
		row[a] += float64(n)
		row[b] -= float64(n) * gamma
	})
}

// Detach is called when the learner is evicted (checkpointed and dropped):
// the tracker keeps every accumulated telemetry stream and its T shadow,
// drops the learner pointer, and counts the eviction. Snapshot keeps
// working from cached state — observing an evicted session never thaws it.
func (t *Tracker) Detach() {
	t.m = nil
	t.evictions++
}

// Reattach resumes tracking on a learner lazily restored from the
// checkpoint taken at Detach. Restores are byte-identical (exact-RNG
// checkpoints), so B picks up exactly where the shadow left off and the
// inverse probe stays armed; only the learner's cumulative LearnStats
// counters restart from zero, which Reattach rebases.
func (t *Tracker) Reattach(m *core.Megh) {
	t.m = m
	m.EnableLearnStats()
	t.last = m.LearnStats()
	t.lastNNZ = m.QTableNNZ()
	if t.shadowArmed && t.cfg.ProbeEvery > 0 {
		t.installHook()
	}
}

// Attached reports whether a live learner is currently being tracked.
func (t *Tracker) Attached() bool { return t.m != nil }

// Instrument mirrors the tracker's headline telemetry into reg as gauges
// (refreshed on every AfterDecide): the verdict as 0/1/2, the drift and
// residual EWMAs, the deferred queue depth, and the last inverse-probe
// residual.
func (t *Tracker) Instrument(reg *obs.Registry) {
	if reg == nil {
		t.gauges = nil
		return
	}
	t.gauges = &gauges{
		verdict: reg.Gauge("megh_health_verdict",
			"Learning-health verdict: 0 healthy, 1 degraded, 2 diverging.", nil),
		drift: reg.Gauge("megh_health_theta_drift_ewma",
			"EWMA of per-decide theta drift magnitude.", nil),
		residual: reg.Gauge("megh_health_bellman_residual_ewma",
			"EWMA of the Bellman/TD residual per applied LSPI transition.", nil),
		queue: reg.Gauge("megh_health_deferred_queue_depth",
			"Deferred LSPI transitions queued (merged multiplicity counted).", nil),
		inverse: reg.Gauge("megh_health_inverse_residual",
			"Sampled max |B*T - I| from the last inverse-drift probe.", nil),
	}
}

// AfterDecide advances the telemetry after one or more completed decides
// (a batch counts once — the learner's cumulative stats make the deltas
// exact regardless). It must be called with the same serialisation as the
// learner itself. No-op when the learner is detached.
func (t *Tracker) AfterDecide() {
	if t.m == nil {
		return
	}
	st := t.m.LearnStats()
	dd := st.Decides - t.last.Decides
	if dd > 0 {
		driftSq := st.DriftSqSum - t.last.DriftSqSum
		if driftSq < 0 {
			driftSq = 0
		}
		t.drift.add(t.cfg.Alpha, math.Sqrt(driftSq/float64(dd)))
		if rc := st.ResidualCount - t.last.ResidualCount; rc > 0 {
			t.resid.add(t.cfg.Alpha, (st.ResidualAbsSum-t.last.ResidualAbsSum)/float64(rc))
		}
		nnz := t.m.QTableNNZ()
		t.nnzRate.add(t.cfg.Alpha, float64(nnz-t.lastNNZ)/float64(dd))
		t.lastNNZ = nnz
	}
	t.applied += st.Applied - t.last.Applied
	t.skipped += st.Skipped - t.last.Skipped
	t.nonFinite += st.NonFinite - t.last.NonFinite
	t.last = st
	t.decides += dd

	t.temp = t.m.Temperature()
	t.nnz = t.m.QTableNNZ()
	t.qDepth = t.m.DeferredUpdates()
	t.qAge = t.m.DeferredAge()
	if t.qAge > t.qAgePeak {
		t.qAgePeak = t.qAge
	}

	if t.cfg.ProbeEvery > 0 {
		t.sinceProbe += dd
		if t.sinceProbe >= int64(t.cfg.ProbeEvery) {
			t.sinceProbe = 0
			t.runProbe()
			t.timeline = append(t.timeline, TempSample{Decide: t.decides, Temperature: t.temp})
			if len(t.timeline) > t.cfg.TimelineCap {
				t.timeline = t.timeline[len(t.timeline)-t.cfg.TimelineCap:]
			}
		}
	}
	t.evaluate()
}

// ObserveStep implements sim.StepObserver, so a Tracker can plug straight
// into sim.Config.Health.
func (t *Tracker) ObserveStep(step int, decideSeconds float64) { t.AfterDecide() }

// Probe forces a sampled probe now (outside the cadence); primarily for
// tests and the server's on-demand health endpoint refresh. No-op when
// probing is disabled or the learner is detached.
func (t *Tracker) Probe() {
	if t.m == nil || t.cfg.ProbeEvery <= 0 {
		return
	}
	t.runProbe()
	t.evaluate()
}

// Verdict returns the current verdict and its reason ("" when healthy).
func (t *Tracker) Verdict() (Verdict, string) { return t.verdict, t.reason }

// Decides returns the tracker-relative decide count (survives
// evict/restore cycles).
func (t *Tracker) Decides() int64 { return t.decides }

// Snapshot copies the current telemetry. Safe on a detached (evicted)
// tracker: every field is cached at the last AfterDecide.
func (t *Tracker) Snapshot() Snapshot {
	s := Snapshot{
		Decides:      t.decides,
		Verdict:      t.verdict.String(),
		Reason:       t.reason,
		Evictions:    t.evictions,
		InverseArmed: t.shadowArmed,
		ThetaDrift:   t.drift.v,
		Residual:     t.resid.v,
		Temperature:  t.temp,
		QTableNNZ:    t.nnz,
		NNZGrowth:    t.nnzRate.v,
		QueueDepth:   t.qDepth,
		QueueAge:     t.qAge,
		QueueAgePeak: t.qAgePeak,
		Applied:      t.applied,
		Skipped:      t.skipped,
		NonFinite:    t.nonFinite,
	}
	if t.probe != nil {
		p := *t.probe
		s.Probe = &p
	}
	if len(t.timeline) > 0 {
		s.TempTimeline = append([]TempSample(nil), t.timeline...)
	}
	return s
}
