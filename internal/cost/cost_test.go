package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperConstants(t *testing.T) {
	p := Default()
	if p.EnergyPricePerKWh != 0.18675 {
		t.Errorf("energy price = %g, want 0.18675 (paper §6.1)", p.EnergyPricePerKWh)
	}
	if p.RevenuePerVMHour != 1.2 {
		t.Errorf("revenue = %g, want 1.2", p.RevenuePerVMHour)
	}
	if p.RefundTier1 != 0.167 || p.RefundTier2 != 0.333 {
		t.Errorf("refunds = %g/%g, want 0.167/0.333", p.RefundTier1, p.RefundTier2)
	}
	if p.Tier1Threshold != 0.0005 || p.Tier2Threshold != 0.0010 {
		t.Errorf("thresholds = %g/%g, want 0.0005/0.0010", p.Tier1Threshold, p.Tier2Threshold)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.EnergyPricePerKWh = -1 },
		func(p *Params) { p.RevenuePerVMHour = -1 },
		func(p *Params) { p.RefundTier1 = 1.5 },
		func(p *Params) { p.RefundTier2 = -0.1 },
		func(p *Params) { p.RefundTier1, p.RefundTier2 = 0.4, 0.2 },
		func(p *Params) { p.Tier1Threshold = -0.1 },
		func(p *Params) { p.Tier2Threshold = 0.0001 },
		func(p *Params) { p.MigrationDowntimeFactor = 2 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEnergyCostKnown(t *testing.T) {
	p := Default()
	// 1000 W for one hour = 1 kWh.
	if got := p.EnergyCost(1000, 3600); math.Abs(got-0.18675) > 1e-12 {
		t.Fatalf("EnergyCost = %g, want 0.18675", got)
	}
	if p.EnergyCost(0, 100) != 0 || p.EnergyCost(100, 0) != 0 || p.EnergyCost(-5, 10) != 0 {
		t.Fatal("degenerate energy costs should be 0")
	}
}

func TestRefundRateTiers(t *testing.T) {
	p := Default()
	cases := []struct {
		frac, want float64
	}{
		{0, 0},
		{0.0005, 0},     // exactly at tier-1 boundary: still free (open interval)
		{0.0007, 0.167}, // inside (0.05%, 0.10%]
		{0.0010, 0.167}, // exactly at tier-2 boundary: tier 1 (closed)
		{0.0011, 0.333}, // beyond 0.10%
		{0.5, 0.333},
	}
	for _, c := range cases {
		if got := p.RefundRate(c.frac); got != c.want {
			t.Errorf("RefundRate(%g) = %g, want %g", c.frac, got, c.want)
		}
	}
}

func TestSLACost(t *testing.T) {
	p := Default()
	// Tier-2 VM for 300 s: 0.333 × 1.2 USD/h × (300/3600) h.
	want := 0.333 * 1.2 * 300 / 3600
	if got := p.SLACost(0.01, 300); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SLACost = %g, want %g", got, want)
	}
	if p.SLACost(0, 300) != 0 {
		t.Fatal("no downtime must cost nothing")
	}
	if p.SLACost(0.01, 0) != 0 {
		t.Fatal("zero-length interval must cost nothing")
	}
}

// Property: costs are non-negative and monotone in their drivers.
func TestQuickCostMonotone(t *testing.T) {
	p := Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w1, w2 := r.Float64()*500, r.Float64()*500
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		sec := r.Float64() * 1e5
		if p.EnergyCost(w1, sec) > p.EnergyCost(w2, sec) {
			return false
		}
		d1, d2 := r.Float64()*0.01, r.Float64()*0.01
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		if p.SLACost(d1, sec) > p.SLACost(d2, sec) {
			return false
		}
		return p.EnergyCost(w1, sec) >= 0 && p.SLACost(d1, sec) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccountingString(t *testing.T) {
	if SLAPerInterval.String() != "per-interval" || SLACumulative.String() != "cumulative" {
		t.Fatal("accounting names wrong")
	}
	if SLAAccounting(77).String() != "accounting(77)" {
		t.Fatalf("unknown accounting renders %q", SLAAccounting(77).String())
	}
}

func TestMemoryCost(t *testing.T) {
	p := Default()
	p.MemoryPricePerGBHour = 0.02
	// 2048 MiB = 2 GB for half an hour.
	if got, want := p.MemoryCost(2048, 1800), 0.02*2*0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MemoryCost = %g, want %g", got, want)
	}
	if p.MemoryCost(0, 100) != 0 || p.MemoryCost(100, 0) != 0 || p.MemoryCost(-1, 5) != 0 {
		t.Fatal("degenerate memory costs should be 0")
	}
}

func TestTransferCost(t *testing.T) {
	p := Default()
	p.MigrationTransferPricePerGB = 0.25
	if got, want := p.TransferCost(512), 0.25*0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("TransferCost = %g, want %g", got, want)
	}
	if p.TransferCost(0) != 0 || p.TransferCost(-3) != 0 {
		t.Fatal("degenerate transfer costs should be 0")
	}
}

func TestValidateResourceAndAccountingFields(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Accounting = SLAAccounting(9) },
		func(p *Params) { p.MemoryPricePerGBHour = -0.1 },
		func(p *Params) { p.MigrationTransferPricePerGB = -0.1 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	for _, a := range []SLAAccounting{0, SLAPerInterval, SLACumulative} {
		p := Default()
		p.Accounting = a
		if err := p.Validate(); err != nil {
			t.Errorf("accounting %v should validate: %v", a, err)
		}
	}
}
