// Package cost implements the operation-cost model of paper §3: energy
// consumption cost (Eq. 1–2) priced at the local electricity tariff, and
// SLA-violation cost (Eq. 3) as tiered refunds of the per-VM revenue keyed
// on the VM's cumulative downtime percentage.
package cost

import "fmt"

// SLAAccounting selects how the refund tiers of §3.3 are keyed.
type SLAAccounting int

// SLA accounting modes.
const (
	// SLAPerInterval keys each interval's refund on that interval's own
	// downtime fraction — the reproduction default, under which ΔC_v of
	// Eq. 6 is a true per-stage cost (see DESIGN.md §5.4).
	SLAPerInterval SLAAccounting = iota + 1
	// SLACumulative keys the refund on the VM's downtime percentage up
	// to the current time — the paper's Eq. 3 read literally. Once a VM
	// crosses a tier it pays that refund in every later interval, which
	// makes SLA cost dominate long horizons; provided for the ablation
	// in EXPERIMENTS.md.
	SLACumulative
)

// String implements fmt.Stringer.
func (a SLAAccounting) String() string {
	switch a {
	case SLAPerInterval:
		return "per-interval"
	case SLACumulative:
		return "cumulative"
	default:
		return fmt.Sprintf("accounting(%d)", int(a))
	}
}

// Params holds every constant of the paper's cost model (§3.2–3.3, §6.1).
type Params struct {
	// EnergyPricePerKWh is c_p expressed per kWh (paper: 0.18675 USD/kWh).
	EnergyPricePerKWh float64
	// RevenuePerVMHour is what a user pays per VM-hour (paper: 1.2 USD/h).
	RevenuePerVMHour float64
	// RefundTier1 is the fraction of revenue refunded when the cumulative
	// downtime percentage lies in (Tier1Threshold, Tier2Threshold]
	// (paper: 16.7 %).
	RefundTier1 float64
	// RefundTier2 is the refund fraction beyond Tier2Threshold (paper: 33.3 %).
	RefundTier2 float64
	// Tier1Threshold and Tier2Threshold are downtime fractions
	// (paper: 0.05 % and 0.10 %, i.e. 0.0005 and 0.0010).
	Tier1Threshold, Tier2Threshold float64
	// MigrationDowntimeFactor is the fraction of a live migration's copy
	// time during which the VM's delivered capacity falls below the α
	// threshold of Eq. 5 and therefore counts as downtime. The paper
	// estimates this with α = 30 %; we expose the resulting effective
	// fraction directly. The default 0.1 matches the 10 % CPU degradation
	// live migration is commonly measured to cause (and which the
	// CloudSim experiments the paper follows also assume).
	MigrationDowntimeFactor float64
	// Accounting selects the SLA refund keying; 0 means SLAPerInterval.
	Accounting SLAAccounting

	// The two optional resource modules §3.1 mentions ("one can build
	// cost models for these resources and add them as additional modules
	// ... without modifying Megh algorithmically"). Both default to 0,
	// which reproduces the paper's CPU-only cost model exactly.

	// MemoryPricePerGBHour prices the DRAM kept powered on active hosts.
	MemoryPricePerGBHour float64
	// MigrationTransferPricePerGB prices the network volume a live
	// migration copies (the VM's RAM image).
	MigrationTransferPricePerGB float64
}

// Default returns the paper's §6.1 cost constants.
func Default() Params {
	return Params{
		EnergyPricePerKWh:       0.18675,
		RevenuePerVMHour:        1.2,
		RefundTier1:             0.167,
		RefundTier2:             0.333,
		Tier1Threshold:          0.0005,
		Tier2Threshold:          0.0010,
		MigrationDowntimeFactor: 0.1,
	}
}

// Validate reports the first out-of-range parameter.
func (p Params) Validate() error {
	switch {
	case p.EnergyPricePerKWh < 0:
		return fmt.Errorf("cost: negative energy price %g", p.EnergyPricePerKWh)
	case p.RevenuePerVMHour < 0:
		return fmt.Errorf("cost: negative revenue %g", p.RevenuePerVMHour)
	case p.RefundTier1 < 0 || p.RefundTier1 > 1:
		return fmt.Errorf("cost: RefundTier1 %g out of [0,1]", p.RefundTier1)
	case p.RefundTier2 < 0 || p.RefundTier2 > 1:
		return fmt.Errorf("cost: RefundTier2 %g out of [0,1]", p.RefundTier2)
	case p.RefundTier2 < p.RefundTier1:
		return fmt.Errorf("cost: RefundTier2 %g < RefundTier1 %g", p.RefundTier2, p.RefundTier1)
	case p.Tier1Threshold < 0 || p.Tier2Threshold < p.Tier1Threshold:
		return fmt.Errorf("cost: thresholds (%g, %g) invalid", p.Tier1Threshold, p.Tier2Threshold)
	case p.MigrationDowntimeFactor < 0 || p.MigrationDowntimeFactor > 1:
		return fmt.Errorf("cost: MigrationDowntimeFactor %g out of [0,1]", p.MigrationDowntimeFactor)
	case p.Accounting != 0 && p.Accounting != SLAPerInterval && p.Accounting != SLACumulative:
		return fmt.Errorf("cost: unknown SLA accounting %d", int(p.Accounting))
	case p.MemoryPricePerGBHour < 0:
		return fmt.Errorf("cost: negative memory price %g", p.MemoryPricePerGBHour)
	case p.MigrationTransferPricePerGB < 0:
		return fmt.Errorf("cost: negative transfer price %g", p.MigrationTransferPricePerGB)
	}
	return nil
}

// MemoryCost prices ramMB MiB of powered DRAM for an interval.
func (p Params) MemoryCost(ramMB, seconds float64) float64 {
	if ramMB <= 0 || seconds <= 0 {
		return 0
	}
	return p.MemoryPricePerGBHour * (ramMB / 1024) * (seconds / 3600)
}

// TransferCost prices one live migration's copied volume (the RAM image).
func (p Params) TransferCost(ramMB float64) float64 {
	if ramMB <= 0 {
		return 0
	}
	return p.MigrationTransferPricePerGB * ramMB / 1024
}

// EnergyCost converts an average power draw over an interval into money:
// watts drawn for seconds at the configured tariff (Eq. 2 integrand).
func (p Params) EnergyCost(watts, seconds float64) float64 {
	if watts <= 0 || seconds <= 0 {
		return 0
	}
	kWh := watts * seconds / 3.6e6
	return kWh * p.EnergyPricePerKWh
}

// RefundRate returns the refund fraction owed at a cumulative downtime
// fraction (Eq. 3's c_v tiers): 0 below Tier1Threshold, RefundTier1 up to
// Tier2Threshold, RefundTier2 beyond.
func (p Params) RefundRate(downtimeFrac float64) float64 {
	switch {
	case downtimeFrac > p.Tier2Threshold:
		return p.RefundTier2
	case downtimeFrac > p.Tier1Threshold:
		return p.RefundTier1
	default:
		return 0
	}
}

// SLACost prices an interval of `seconds` for one VM whose cumulative
// downtime fraction has reached downtimeFrac: the refund rate applied to
// the interval's revenue share. Under this reading ΔC_v of Eq. 6 is
// per-interval and non-negative, and grows when migrations or overloads
// push VMs across the refund tiers.
func (p Params) SLACost(downtimeFrac, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	rate := p.RefundRate(downtimeFrac)
	if rate == 0 {
		return 0
	}
	return rate * p.RevenuePerVMHour * seconds / 3600
}
