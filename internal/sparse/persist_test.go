package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorStateRoundTrip(t *testing.T) {
	v := NewVector(10)
	v.Set(3, 1.5)
	v.Set(7, -2)
	st := v.State()
	back, err := VectorFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != 10 || back.Get(3) != 1.5 || back.Get(7) != -2 || back.NNZ() != 2 {
		t.Fatalf("round-trip lost data: %v", back)
	}
}

func TestVectorFromStateRejectsMalformed(t *testing.T) {
	cases := []VectorState{
		{Dim: -1},
		{Dim: 3, Index: []int{0, 1}, Value: []float64{1}},
		{Dim: 3, Index: []int{5}, Value: []float64{1}},
		{Dim: 3, Index: []int{-1}, Value: []float64{1}},
	}
	for i, st := range cases {
		if _, err := VectorFromState(st); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMatrixStateRoundTripPreservesImplicitDiag(t *testing.T) {
	m := NewMatrix(6, 0.25)
	m.Set(1, 2, 3)
	m.Set(4, 4, 0) // override implicit diagonal with zero
	m.Set(2, 2, 9) // override with a value
	st := m.State()
	back, err := MatrixFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if back.Get(1, 2) != 3 {
		t.Fatal("off-diagonal lost")
	}
	if back.Get(2, 2) != 9 {
		t.Fatal("materialised diagonal lost")
	}
	if back.Get(4, 4) != 0 {
		t.Fatal("zero-overridden diagonal resurrected as implicit 0.25")
	}
	if back.Get(0, 0) != 0.25 {
		t.Fatal("untouched implicit diagonal lost")
	}
	if back.NNZ() != m.NNZ() {
		t.Fatalf("NNZ %d != %d", back.NNZ(), m.NNZ())
	}
}

func TestMatrixFromStateRejectsMalformed(t *testing.T) {
	cases := []MatrixState{
		{Dim: -1},
		{Dim: 2, DropTol: -1},
		{Dim: 2, Triplets: []Triplet{{Row: 2, Col: 0, Val: 1}}},
		{Dim: 2, OverriddenDiag: []int{5}},
	}
	for i, st := range cases {
		if _, err := MatrixFromState(st); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: matrix round-trips exactly after random Sherman–Morrison
// update streams (the persistence path used by the Megh learner).
func TestQuickMatrixStateRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const dim = 12
		m := NewMatrix(dim, 1.0/dim)
		m.SetDropTolerance(1e-12)
		for step := 0; step < 20; step++ {
			a, nb := r.Intn(dim), r.Intn(dim)
			u := Basis(dim, a)
			v := Basis(dim, a)
			v.Add(nb, -0.5)
			if _, err := m.ShermanMorrison(u, v); err != nil {
				continue
			}
		}
		back, err := MatrixFromState(m.State())
		if err != nil {
			return false
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if m.Get(i, j) != back.Get(i, j) {
					return false
				}
			}
		}
		return back.NNZ() == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
