package sparse

import "fmt"

// VectorState is the serializable image of a Vector (index/value pairs).
type VectorState struct {
	Dim   int
	Index []int
	Value []float64
}

// State exports the vector for persistence, indices sorted (the storage
// order, so the export is a pair of copies).
func (v *Vector) State() VectorState {
	return VectorState{
		Dim:   v.dim,
		Index: append([]int(nil), v.idx...),
		Value: append([]float64(nil), v.val...),
	}
}

// VectorFromState reconstructs a Vector. It rejects malformed states.
func VectorFromState(st VectorState) (*Vector, error) {
	if st.Dim < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d in vector state", st.Dim)
	}
	if len(st.Index) != len(st.Value) {
		return nil, fmt.Errorf("sparse: vector state has %d indices but %d values",
			len(st.Index), len(st.Value))
	}
	v := NewVector(st.Dim)
	for i, j := range st.Index {
		if j < 0 || j >= st.Dim {
			return nil, fmt.Errorf("sparse: vector state index %d out of range [0,%d)", j, st.Dim)
		}
		v.Set(j, st.Value[i])
	}
	return v, nil
}

// MatrixState is the serializable image of a Matrix: the materialised
// triplets plus the bookkeeping needed to reconstruct the implicit
// scaled-identity exactly (which rows' implicit diagonal has been
// overridden, even when overridden to zero).
type MatrixState struct {
	Dim            int
	Diag           float64
	DropTol        float64
	Triplets       []Triplet
	OverriddenDiag []int
}

// State exports the matrix for persistence. OverriddenDiag is emitted in
// ascending order, so two identical matrices serialise byte-identically.
func (m *Matrix) State() MatrixState {
	var over []int
	for i, set := range m.diagSet {
		if set {
			over = append(over, i)
		}
	}
	return MatrixState{
		Dim:            m.dim,
		Diag:           m.diag,
		DropTol:        m.dropTol,
		Triplets:       m.Triplets(),
		OverriddenDiag: over,
	}
}

// MatrixFromState reconstructs a Matrix. It rejects malformed states.
func MatrixFromState(st MatrixState) (*Matrix, error) {
	if st.Dim < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d in matrix state", st.Dim)
	}
	if st.DropTol < 0 {
		return nil, fmt.Errorf("sparse: negative drop tolerance %g in matrix state", st.DropTol)
	}
	m := NewMatrix(st.Dim, st.Diag)
	for _, i := range st.OverriddenDiag {
		if i < 0 || i >= st.Dim {
			return nil, fmt.Errorf("sparse: overridden diagonal %d out of range [0,%d)", i, st.Dim)
		}
		m.diagSet[i] = true
	}
	for _, t := range st.Triplets {
		if t.Row < 0 || t.Row >= st.Dim || t.Col < 0 || t.Col >= st.Dim {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of range for dim %d",
				t.Row, t.Col, st.Dim)
		}
		m.Set(t.Row, t.Col, t.Val)
	}
	// Apply the tolerance only after restoring, so stored entries that
	// are individually below a later-raised tolerance still round-trip.
	m.dropTol = st.DropTol
	return m, nil
}
