package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewVectorPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewVector(-1)
}

func TestVectorSetGet(t *testing.T) {
	v := NewVector(10)
	if got := v.Get(3); got != 0 {
		t.Fatalf("fresh vector Get(3) = %g, want 0", got)
	}
	v.Set(3, 2.5)
	if got := v.Get(3); got != 2.5 {
		t.Fatalf("Get(3) = %g, want 2.5", got)
	}
	if got := v.NNZ(); got != 1 {
		t.Fatalf("NNZ = %d, want 1", got)
	}
	v.Set(3, 0)
	if got := v.NNZ(); got != 0 {
		t.Fatalf("NNZ after zeroing = %d, want 0", got)
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	cases := []func(*Vector){
		func(v *Vector) { v.Get(10) },
		func(v *Vector) { v.Get(-1) },
		func(v *Vector) { v.Set(10, 1) },
		func(v *Vector) { v.Add(-1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected out-of-range panic", i)
				}
			}()
			f(NewVector(10))
		}()
	}
}

func TestVectorAddRemovesExactZero(t *testing.T) {
	v := NewVector(4)
	v.Add(2, 1.5)
	v.Add(2, -1.5)
	if v.NNZ() != 0 {
		t.Fatalf("NNZ = %d after cancelling adds, want 0", v.NNZ())
	}
}

func TestBasis(t *testing.T) {
	e := Basis(5, 2)
	want := []float64{0, 0, 1, 0, 0}
	if got := e.Dense(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Basis(5,2) = %v, want %v", got, want)
	}
}

func TestVectorDot(t *testing.T) {
	v := NewVector(6)
	u := NewVector(6)
	v.Set(0, 1)
	v.Set(3, 2)
	u.Set(3, 4)
	u.Set(5, 7)
	if got := v.Dot(u); got != 8 {
		t.Fatalf("Dot = %g, want 8", got)
	}
	if got := u.Dot(v); got != 8 {
		t.Fatalf("Dot not symmetric: %g", got)
	}
}

func TestVectorDotDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension-mismatch panic")
		}
	}()
	NewVector(3).Dot(NewVector(4))
}

func TestVectorAXPY(t *testing.T) {
	v := NewVector(4)
	v.Set(1, 1)
	u := NewVector(4)
	u.Set(1, 2)
	u.Set(2, 3)
	v.AXPY(2, u)
	want := []float64{0, 5, 6, 0}
	if got := v.Dense(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AXPY result = %v, want %v", got, want)
	}
}

func TestVectorScale(t *testing.T) {
	v := NewVector(3)
	v.Set(0, 2)
	v.Set(2, -4)
	v.Scale(0.5)
	want := []float64{1, 0, -2}
	if got := v.Dense(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Scale result = %v, want %v", got, want)
	}
	v.Scale(0)
	if v.NNZ() != 0 {
		t.Fatalf("Scale(0) left %d non-zeros", v.NNZ())
	}
}

func TestVectorCloneIsDeep(t *testing.T) {
	v := NewVector(3)
	v.Set(1, 5)
	c := v.Clone()
	c.Set(1, 9)
	if v.Get(1) != 5 {
		t.Fatal("Clone is not deep: mutation leaked to original")
	}
}

func TestVectorIndicesSorted(t *testing.T) {
	v := NewVector(10)
	for _, i := range []int{7, 1, 4} {
		v.Set(i, float64(i))
	}
	want := []int{1, 4, 7}
	if got := v.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
}

func TestVectorMaxAbs(t *testing.T) {
	v := NewVector(5)
	if v.MaxAbs() != 0 {
		t.Fatalf("zero vector MaxAbs = %g", v.MaxAbs())
	}
	v.Set(1, -3)
	v.Set(2, 2)
	if got := v.MaxAbs(); got != 3 {
		t.Fatalf("MaxAbs = %g, want 3", got)
	}
}

func TestVectorString(t *testing.T) {
	v := NewVector(5)
	v.Set(4, 2)
	v.Set(0, 1)
	if got, want := v.String(), "[0:1, 4:2]"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestVectorRangeEarlyStop(t *testing.T) {
	v := NewVector(10)
	for i := 0; i < 10; i++ {
		v.Set(i, 1)
	}
	n := 0
	v.Range(func(int, float64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Range visited %d entries after early stop, want 3", n)
	}
}

// randomVector draws a sparse vector of dimension dim with roughly k
// non-zeros in [-1, 1].
func randomVector(r *rand.Rand, dim, k int) *Vector {
	v := NewVector(dim)
	for i := 0; i < k; i++ {
		v.Set(r.Intn(dim), r.Float64()*2-1)
	}
	return v
}

// Property: Dot distributes over AXPY — ⟨w, v + a·u⟩ = ⟨w,v⟩ + a⟨w,u⟩.
func TestQuickDotLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64, a float64) bool {
		rr := rand.New(rand.NewSource(seed))
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 8)
		const dim = 24
		v := randomVector(rr, dim, 6)
		u := randomVector(rr, dim, 6)
		w := randomVector(rr, dim, 6)
		lhsV := v.Clone()
		lhsV.AXPY(a, u)
		lhs := w.Dot(lhsV)
		rhs := w.Dot(v) + a*w.Dot(u)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dense round-trips Set/Get.
func TestQuickDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		const dim = 16
		v := randomVector(rr, dim, 8)
		d := v.Dense()
		for i := 0; i < dim; i++ {
			if d[i] != v.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVectorDot(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	v := randomVector(r, 1<<16, 256)
	u := randomVector(r, 1<<16, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Dot(u)
	}
}
