// Package sparse provides the sparse linear-algebra primitives used by the
// Megh learner: sparse vectors, a dictionary-of-keys matrix with an implicit
// scaled-identity initialisation, and an incremental Sherman–Morrison rank-1
// inverse update.
//
// The package exists because Megh (Algorithm 1 of the paper) must maintain
// B = T⁻¹ for a d × d operator where d = N·M can reach hundreds of thousands,
// while only O(#migrations) entries ever deviate from the initial (1/δ)·I.
// Storing only the deviations keeps every per-step operation proportional to
// the number of migrations rather than to d² (paper §5.2).
package sparse

import (
	"fmt"
	"sort"
	"strings"
)

// Vector is a sparse real vector of a fixed dimension. Only non-zero entries
// are stored. The zero value is not usable; construct with NewVector.
type Vector struct {
	dim int
	nz  map[int]float64
}

// NewVector returns a zero vector of the given dimension.
// It panics if dim is negative.
func NewVector(dim int) *Vector {
	if dim < 0 {
		panic(fmt.Sprintf("sparse: negative vector dimension %d", dim))
	}
	return &Vector{dim: dim, nz: make(map[int]float64)}
}

// Basis returns the standard basis vector e_i of the given dimension.
func Basis(dim, i int) *Vector {
	v := NewVector(dim)
	v.Set(i, 1)
	return v
}

// Dim returns the dimension of the vector.
func (v *Vector) Dim() int { return v.dim }

// NNZ returns the number of stored non-zero entries.
func (v *Vector) NNZ() int { return len(v.nz) }

// Get returns the i-th entry. It panics if i is out of range.
func (v *Vector) Get(i int) float64 {
	v.check(i)
	return v.nz[i]
}

// Set assigns the i-th entry. Setting an entry to exactly zero removes it
// from the underlying storage.
func (v *Vector) Set(i int, x float64) {
	v.check(i)
	if x == 0 {
		delete(v.nz, i)
		return
	}
	v.nz[i] = x
}

// Add adds x to the i-th entry.
func (v *Vector) Add(i int, x float64) {
	v.check(i)
	nx := v.nz[i] + x
	if nx == 0 {
		delete(v.nz, i)
		return
	}
	v.nz[i] = nx
}

// Scale multiplies every entry by a. Scaling by zero clears the vector.
func (v *Vector) Scale(a float64) {
	if a == 0 {
		v.nz = make(map[int]float64)
		return
	}
	for i := range v.nz {
		v.nz[i] *= a
	}
}

// AXPY computes v ← v + a·u. It panics if dimensions differ.
func (v *Vector) AXPY(a float64, u *Vector) {
	if v.dim != u.dim {
		panic(fmt.Sprintf("sparse: AXPY dimension mismatch %d vs %d", v.dim, u.dim))
	}
	if a == 0 {
		return
	}
	for i, x := range u.nz {
		v.Add(i, a*x)
	}
}

// Dot returns the inner product ⟨v,u⟩. It panics if dimensions differ.
func (v *Vector) Dot(u *Vector) float64 {
	if v.dim != u.dim {
		panic(fmt.Sprintf("sparse: Dot dimension mismatch %d vs %d", v.dim, u.dim))
	}
	// Iterate over the smaller support.
	a, b := v, u
	if len(b.nz) < len(a.nz) {
		a, b = b, a
	}
	var s float64
	for i, x := range a.nz {
		s += x * b.nz[i]
	}
	return s
}

// Range calls f for every stored non-zero entry in unspecified order. If f
// returns false, iteration stops. f must not mutate the vector.
func (v *Vector) Range(f func(i int, x float64) bool) {
	for i, x := range v.nz {
		if !f(i, x) {
			return
		}
	}
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := &Vector{dim: v.dim, nz: make(map[int]float64, len(v.nz))}
	for i, x := range v.nz {
		c.nz[i] = x
	}
	return c
}

// Dense materialises the vector as a dense slice of length Dim().
func (v *Vector) Dense() []float64 {
	d := make([]float64, v.dim)
	for i, x := range v.nz {
		d[i] = x
	}
	return d
}

// Indices returns the sorted indices of the non-zero entries.
func (v *Vector) Indices() []int {
	idx := make([]int, 0, len(v.nz))
	for i := range v.nz {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// MaxAbs returns the largest absolute entry value, or 0 for a zero vector.
func (v *Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v.nz {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// String renders the non-zero entries in index order, for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for n, i := range v.Indices() {
		if n > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%g", i, v.nz[i])
	}
	b.WriteByte(']')
	return b.String()
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.dim {
		panic(fmt.Sprintf("sparse: index %d out of range [0,%d)", i, v.dim))
	}
}
