// Package sparse provides the sparse linear-algebra primitives used by the
// Megh learner: sparse vectors, an index-sorted slice-backed matrix with an
// implicit scaled-identity initialisation, and an incremental
// Sherman–Morrison rank-1 inverse update.
//
// The package exists because Megh (Algorithm 1 of the paper) must maintain
// B = T⁻¹ for a d × d operator where d = N·M can reach hundreds of thousands,
// while only O(#migrations) entries ever deviate from the initial (1/δ)·I.
// Storing only the deviations keeps every per-step operation proportional to
// the number of migrations rather than to d² (paper §5.2).
//
// All containers iterate in ascending index order, so floating-point
// accumulation order — and therefore every computed value — is identical
// across runs and across processes. This is what makes same-seed simulation
// traces byte-identical (see DESIGN.md, Performance).
package sparse

import (
	"fmt"
	"sort"
	"strings"
)

// Vector is a sparse real vector of a fixed dimension, stored as parallel
// index/value slices kept sorted by index. Only non-zero entries are stored.
// The zero value is not usable; construct with NewVector.
type Vector struct {
	dim int
	idx []int
	val []float64
}

// NewVector returns a zero vector of the given dimension.
// It panics if dim is negative.
func NewVector(dim int) *Vector {
	if dim < 0 {
		panic(fmt.Sprintf("sparse: negative vector dimension %d", dim))
	}
	return &Vector{dim: dim}
}

// Basis returns the standard basis vector e_i of the given dimension.
func Basis(dim, i int) *Vector {
	v := NewVector(dim)
	v.Set(i, 1)
	return v
}

// Dim returns the dimension of the vector.
func (v *Vector) Dim() int { return v.dim }

// NNZ returns the number of stored non-zero entries.
func (v *Vector) NNZ() int { return len(v.idx) }

// find returns the position of index i in the sorted index slice and whether
// it is present; when absent, the position is the insertion point.
func (v *Vector) find(i int) (int, bool) {
	p := sort.SearchInts(v.idx, i)
	return p, p < len(v.idx) && v.idx[p] == i
}

// Get returns the i-th entry. It panics if i is out of range.
func (v *Vector) Get(i int) float64 {
	v.check(i)
	if p, ok := v.find(i); ok {
		return v.val[p]
	}
	return 0
}

// Set assigns the i-th entry. Setting an entry to exactly zero removes it
// from the underlying storage.
func (v *Vector) Set(i int, x float64) {
	v.check(i)
	p, ok := v.find(i)
	if ok {
		if x == 0 {
			v.removeAt(p)
			return
		}
		v.val[p] = x
		return
	}
	if x == 0 {
		return
	}
	v.insertAt(p, i, x)
}

// Add adds x to the i-th entry.
func (v *Vector) Add(i int, x float64) {
	v.check(i)
	p, ok := v.find(i)
	if ok {
		nx := v.val[p] + x
		if nx == 0 {
			v.removeAt(p)
			return
		}
		v.val[p] = nx
		return
	}
	if x == 0 {
		return
	}
	v.insertAt(p, i, x)
}

func (v *Vector) insertAt(p, i int, x float64) {
	v.idx = append(v.idx, 0)
	copy(v.idx[p+1:], v.idx[p:])
	v.idx[p] = i
	v.val = append(v.val, 0)
	copy(v.val[p+1:], v.val[p:])
	v.val[p] = x
}

func (v *Vector) removeAt(p int) {
	v.idx = append(v.idx[:p], v.idx[p+1:]...)
	v.val = append(v.val[:p], v.val[p+1:]...)
}

// Scale multiplies every entry by a. Scaling by zero clears the vector.
func (v *Vector) Scale(a float64) {
	if a == 0 {
		v.idx = v.idx[:0]
		v.val = v.val[:0]
		return
	}
	for p := range v.val {
		v.val[p] *= a
	}
}

// AXPY computes v ← v + a·u by merging the two sorted supports. Entries that
// cancel to exact zero are removed. It panics if dimensions differ.
func (v *Vector) AXPY(a float64, u *Vector) {
	if v.dim != u.dim {
		panic(fmt.Sprintf("sparse: AXPY dimension mismatch %d vs %d", v.dim, u.dim))
	}
	if a == 0 || len(u.idx) == 0 {
		return
	}
	ni := make([]int, 0, len(v.idx)+len(u.idx))
	nv := make([]float64, 0, len(v.idx)+len(u.idx))
	p, q := 0, 0
	for p < len(v.idx) && q < len(u.idx) {
		switch {
		case v.idx[p] < u.idx[q]:
			ni = append(ni, v.idx[p])
			nv = append(nv, v.val[p])
			p++
		case v.idx[p] > u.idx[q]:
			if x := a * u.val[q]; x != 0 {
				ni = append(ni, u.idx[q])
				nv = append(nv, x)
			}
			q++
		default:
			if x := v.val[p] + a*u.val[q]; x != 0 {
				ni = append(ni, v.idx[p])
				nv = append(nv, x)
			}
			p++
			q++
		}
	}
	for ; p < len(v.idx); p++ {
		ni = append(ni, v.idx[p])
		nv = append(nv, v.val[p])
	}
	for ; q < len(u.idx); q++ {
		if x := a * u.val[q]; x != 0 {
			ni = append(ni, u.idx[q])
			nv = append(nv, x)
		}
	}
	v.idx, v.val = ni, nv
}

// Dot returns the inner product ⟨v,u⟩, accumulated in ascending index order
// via a merge walk over the two sorted supports. It panics if dimensions
// differ.
func (v *Vector) Dot(u *Vector) float64 {
	if v.dim != u.dim {
		panic(fmt.Sprintf("sparse: Dot dimension mismatch %d vs %d", v.dim, u.dim))
	}
	var s float64
	p, q := 0, 0
	for p < len(v.idx) && q < len(u.idx) {
		switch {
		case v.idx[p] < u.idx[q]:
			p++
		case v.idx[p] > u.idx[q]:
			q++
		default:
			s += v.val[p] * u.val[q]
			p++
			q++
		}
	}
	return s
}

// Range calls f for every stored non-zero entry in ascending index order. If
// f returns false, iteration stops. f must not mutate the vector.
func (v *Vector) Range(f func(i int, x float64) bool) {
	for p, i := range v.idx {
		if !f(i, v.val[p]) {
			return
		}
	}
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	return &Vector{
		dim: v.dim,
		idx: append([]int(nil), v.idx...),
		val: append([]float64(nil), v.val...),
	}
}

// Dense materialises the vector as a dense slice of length Dim().
func (v *Vector) Dense() []float64 {
	d := make([]float64, v.dim)
	for p, i := range v.idx {
		d[i] = v.val[p]
	}
	return d
}

// Indices returns the sorted indices of the non-zero entries.
func (v *Vector) Indices() []int {
	return append([]int(nil), v.idx...)
}

// MaxAbs returns the largest absolute entry value, or 0 for a zero vector.
func (v *Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v.val {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// String renders the non-zero entries in index order, for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for p, i := range v.idx {
		if p > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%g", i, v.val[p])
	}
	b.WriteByte(']')
	return b.String()
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.dim {
		panic(fmt.Sprintf("sparse: index %d out of range [0,%d)", i, v.dim))
	}
}
