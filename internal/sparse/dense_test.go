package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseIdentityInvert(t *testing.T) {
	d := NewDenseIdentity(4, 2)
	inv, err := d.Invert()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 0.5
			}
			if math.Abs(inv.Get(i, j)-want) > 1e-12 {
				t.Fatalf("inv[%d,%d] = %g, want %g", i, j, inv.Get(i, j), want)
			}
		}
	}
}

func TestDenseInvertSingular(t *testing.T) {
	d := NewDense(3) // all zeros
	if _, err := d.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestDenseInvertKnownMatrix(t *testing.T) {
	// A = [[4,7],[2,6]], A⁻¹ = [[0.6,-0.7],[-0.2,0.4]]
	d := NewDense(2)
	d.Set(0, 0, 4)
	d.Set(0, 1, 7)
	d.Set(1, 0, 2)
	d.Set(1, 1, 6)
	inv, err := d.Invert()
	if err != nil {
		t.Fatal(err)
	}
	want := [2][2]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(inv.Get(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("inv[%d,%d] = %g, want %g", i, j, inv.Get(i, j), want[i][j])
			}
		}
	}
}

func TestDenseInvertNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	d := NewDense(2)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	inv, err := d.Invert()
	if err != nil {
		t.Fatal(err)
	}
	// Inverse of the permutation is itself.
	if inv.Get(0, 1) != 1 || inv.Get(1, 0) != 1 || inv.Get(0, 0) != 0 || inv.Get(1, 1) != 0 {
		t.Fatalf("permutation inverse wrong: %+v", inv.a)
	}
}

func TestDenseAddOuter(t *testing.T) {
	d := NewDense(3)
	d.AddOuter(2, []float64{1, 0, 2}, []float64{0, 3, 1})
	if d.Get(0, 1) != 6 || d.Get(0, 2) != 2 || d.Get(2, 1) != 12 || d.Get(2, 2) != 4 {
		t.Fatalf("AddOuter result wrong: %v", d.a)
	}
	if d.Get(1, 0) != 0 || d.Get(1, 1) != 0 {
		t.Fatal("AddOuter touched rows with zero u entries")
	}
}

func TestDenseMulVec(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 3)
	d.Set(1, 1, 4)
	got := d.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", got)
	}
}

// Property: A·A⁻¹ ≈ I for random well-conditioned matrices.
func TestQuickDenseInvertProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 6
		d := NewDenseIdentity(n, float64(n)) // diagonally dominant start
		for k := 0; k < 12; k++ {
			d.Add(r.Intn(n), r.Intn(n), r.Float64()*2-1)
		}
		inv, err := d.Invert()
		if err != nil {
			return true // singular draw: skip
		}
		for i := 0; i < n; i++ {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				x[j] = inv.Get(j, i)
			}
			col := d.MulVec(x)
			for j := 0; j < n; j++ {
				want := 0.0
				if j == i {
					want = 1
				}
				if math.Abs(col[j]-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
