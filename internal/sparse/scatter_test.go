package sparse

import (
	"math"
	"testing"
)

// scatterRef is the scalar reference the unrolled kernels must match
// bitwise.
func scatterRef(dst []float64, idx []int, val []float64, s float64) float64 {
	var dsq float64
	for k := range idx {
		d := s * val[k]
		dst[idx[k]] += d
		dsq += d * d
	}
	return dsq
}

func gatherRef(dst []float64, row []float64, idx []int) float64 {
	min := math.Inf(1)
	for k, i := range idx {
		q := row[i]
		dst[k] = q
		if q < min {
			min = q
		}
	}
	return min
}

// scatterCase builds an awkward deterministic input: irregular lengths
// (exercising every unroll tail), duplicate indices, negative and
// denormal-ish magnitudes, and a scale that does not round trip through
// decimal.
func scatterCase(n, width int, seed uint64) (idx []int, val []float64) {
	idx = make([]int, n)
	val = make([]float64, n)
	x := seed
	for k := 0; k < n; k++ {
		x = x*6364136223846793005 + 1442695040888963407
		idx[k] = int(x>>33) % width
		val[k] = math.Ldexp(float64(int64(x)%1000)-500, -int(x>>60)) / 3
	}
	// Force duplicates inside one 4-group and across groups.
	if n >= 6 {
		idx[1] = idx[0]
		idx[5] = idx[0]
	}
	return idx, val
}

func TestScatterAddScaledBitwiseMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 31, 100} {
		idx, val := scatterCase(n, 40, uint64(n)+1)
		scale := -0.7316519841
		a := make([]float64, 40)
		b := make([]float64, 40)
		for i := range a {
			a[i] = 1e-3 * float64(i*i-17)
			b[i] = a[i]
		}
		ScatterAddScaled(a, idx, val, scale)
		scatterRef(b, idx, val, scale)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("n=%d: dst[%d] = %x, scalar ref %x",
					n, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
}

func TestScatterAddScaledSqBitwiseMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 6, 9, 64, 101} {
		idx, val := scatterCase(n, 64, uint64(n)+99)
		scale := 2.5000000001
		a := make([]float64, 64)
		b := make([]float64, 64)
		for i := range a {
			a[i] = math.Sin(float64(i))
			b[i] = a[i]
		}
		gotSq := ScatterAddScaledSq(a, idx, val, scale)
		wantSq := scatterRef(b, idx, val, scale)
		if math.Float64bits(gotSq) != math.Float64bits(wantSq) {
			t.Fatalf("n=%d: dsq = %x, scalar ref %x", n,
				math.Float64bits(gotSq), math.Float64bits(wantSq))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("n=%d: dst[%d] = %x, scalar ref %x",
					n, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
}

// TestScatterNegatedScaleMatchesSubtraction pins the identity the core θ
// update relies on: x += (−a)·v is bitwise x −= a·v (IEEE-754 negation of a
// product is exact), so applyUpdate can route its subtraction through the
// one scatter kernel.
func TestScatterNegatedScaleMatchesSubtraction(t *testing.T) {
	idx, val := scatterCase(37, 50, 5)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = 0.1*float64(i) - 2
		b[i] = a[i]
	}
	const scale = 1.9137516254e-3
	ScatterAddScaled(a, idx, val, -scale)
	for k := range idx {
		b[idx[k]] -= scale * val[k]
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("dst[%d]: negated-scale add %x vs subtraction %x",
				i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
}

func TestGatherMinBitwiseMatchesScalar(t *testing.T) {
	row := make([]float64, 128)
	for i := range row {
		// Include ties (equal bit patterns) and signed zeros: -0.0 == 0.0
		// compares equal, so strict-less keeps whichever came first — both
		// loops must agree on that.
		row[i] = float64((i*7)%13) - 6
		if i%13 == 0 {
			row[i] = math.Copysign(0, -1)
		}
	}
	for _, n := range []int{0, 1, 2, 4, 5, 11, 128} {
		idx := make([]int, n)
		for k := range idx {
			idx[k] = (k * 17) % len(row)
		}
		got := make([]float64, n)
		want := make([]float64, n)
		gm := GatherMin(got, row, idx)
		wm := gatherRef(want, row, idx)
		if math.Float64bits(gm) != math.Float64bits(wm) {
			t.Fatalf("n=%d: min = %x, scalar ref %x", n, math.Float64bits(gm), math.Float64bits(wm))
		}
		for k := range got {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("n=%d: dst[%d] = %v, scalar ref %v", n, k, got[k], want[k])
			}
		}
	}
	if gm := GatherMin(nil, row, nil); !math.IsInf(gm, 1) {
		t.Fatalf("empty gather min = %v, want +Inf", gm)
	}
}
