package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkMatrixInvariants verifies the structural contract between the two
// indexes: every column-membership entry points at a materialised row entry,
// every row entry is mirrored in the column index, rows are strictly sorted,
// and the incremental NNZ counter matches a full count.
func checkMatrixInvariants(t *testing.T, m *Matrix) {
	t.Helper()
	counted := 0
	for i := range m.rows {
		r := &m.rows[i]
		if len(r.idx) != len(r.val) {
			t.Fatalf("row %d: %d indices vs %d values", i, len(r.idx), len(r.val))
		}
		for p, j := range r.idx {
			if p > 0 && r.idx[p-1] >= j {
				t.Fatalf("row %d not strictly sorted at %d", i, p)
			}
			if r.val[p] == 0 {
				t.Fatalf("row %d stores exact zero at col %d", i, j)
			}
			c := m.cols[j]
			pos := 0
			for pos < len(c) && c[pos] != i {
				pos++
			}
			if pos == len(c) {
				t.Fatalf("entry (%d,%d) missing from column index", i, j)
			}
			counted++
		}
	}
	colCount := 0
	for j := range m.cols {
		for p, i := range m.cols[j] {
			if p > 0 && m.cols[j][p-1] >= i {
				t.Fatalf("col %d not strictly sorted at %d", j, p)
			}
			if _, ok := m.rows[i].find(j); !ok {
				t.Fatalf("column index lists (%d,%d) but the row has no entry", i, j)
			}
			colCount++
		}
	}
	if counted != m.nnz || colCount != m.nnz {
		t.Fatalf("NNZ counter %d, rows hold %d, columns hold %d", m.nnz, counted, colCount)
	}
}

// randomSeedMatrix materialises a handful of random entries — including
// diagonals overridden to zero and to fresh values — so update sequences
// start from every storage state the learner can produce.
func randomSeedMatrix(r *rand.Rand, dim int, diag, tol float64) *Matrix {
	m := NewMatrix(dim, diag)
	m.SetDropTolerance(tol)
	for k := 0; k < dim; k++ {
		switch r.Intn(5) {
		case 0:
			m.Set(r.Intn(dim), r.Intn(dim), r.NormFloat64())
		case 1:
			i := r.Intn(dim)
			m.Set(i, i, 0) // diagonal overridden to zero: stored as absent
		case 2:
			i := r.Intn(dim)
			m.Set(i, i, r.NormFloat64())
		}
	}
	return m
}

// The structure-exploiting kernel must agree with the generic
// Sherman–Morrison path *bitwise* — same denominators, same stored entries,
// same NNZ — over long randomized Megh-shaped sequences, with the drop
// tolerance both off and on, including self-transitions (a == b) and
// matrices pre-seeded with overridden diagonals.
func TestShermanMorrisonBasisMatchesGenericBitwise(t *testing.T) {
	const dim = 16
	const gamma = 0.9
	for _, tol := range []float64{0, 1e-7} {
		r := rand.New(rand.NewSource(7))
		mk := randomSeedMatrix(rand.New(rand.NewSource(3)), dim, 1.0/dim, tol)
		mg := randomSeedMatrix(rand.New(rand.NewSource(3)), dim, 1.0/dim, tol)
		for it := 0; it < 300; it++ {
			a, b := r.Intn(dim), r.Intn(dim)
			if it%17 == 0 {
				b = a // self-transition: v = (1−γ)·e_a
			}
			u := Basis(dim, a)
			v := Basis(dim, a)
			v.Add(b, -gamma)
			dk, ek := mk.ShermanMorrisonBasis(a, b, gamma)
			dg, eg := mg.ShermanMorrison(u, v)
			if (ek == nil) != (eg == nil) {
				t.Fatalf("tol %g it %d: error mismatch %v vs %v", tol, it, ek, eg)
			}
			if dk != dg {
				t.Fatalf("tol %g it %d: denominator %v vs %v", tol, it, dk, dg)
			}
			if mk.NNZ() != mg.NNZ() {
				t.Fatalf("tol %g it %d: NNZ %d vs %d", tol, it, mk.NNZ(), mg.NNZ())
			}
			dkD, dgD := mk.Dense(), mg.Dense()
			for i := range dkD {
				for j := range dkD[i] {
					if dkD[i][j] != dgD[i][j] {
						t.Fatalf("tol %g it %d: (%d,%d) kernel %v generic %v",
							tol, it, i, j, dkD[i][j], dgD[i][j])
					}
				}
			}
		}
		checkMatrixInvariants(t, mk)
		checkMatrixInvariants(t, mg)
	}
}

// With the tolerance off the kernel is exact: B must track the dense
// Gauss–Jordan inverse of the accumulated T to 1e-9 over a Megh-shaped
// sequence (the same oracle the generic path is tested against).
func TestShermanMorrisonBasisMatchesDenseInverse(t *testing.T) {
	const dim = 10
	const gamma = 0.5
	r := rand.New(rand.NewSource(23))
	delta := float64(dim)
	b := NewMatrix(dim, 1/delta)
	oracle := newDenseOracle(dim, delta)
	for step := 0; step < 60; step++ {
		a := r.Intn(dim)
		nb := r.Intn(dim)
		if step%11 == 0 {
			nb = a
		}
		u := Basis(dim, a)
		v := Basis(dim, a)
		v.Add(nb, -gamma)
		if _, err := b.ShermanMorrisonBasis(a, nb, gamma); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		oracle.update(u, v)
		inv := oracle.inverse(t)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if d := math.Abs(b.Get(i, j) - inv.Get(i, j)); d > 1e-9 {
					t.Fatalf("step %d: B[%d,%d] = %g, dense inverse = %g (|Δ| = %g)",
						step, i, j, b.Get(i, j), inv.Get(i, j), d)
				}
			}
		}
	}
	checkMatrixInvariants(t, b)
}

// Property over random seeds, dimensions and tolerances: kernel and generic
// stay bitwise identical, and the structural invariants hold throughout.
func TestQuickShermanMorrisonBasisMatchesGeneric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 4 + r.Intn(12)
		gamma := 0.1 + 0.8*r.Float64()
		tol := 0.0
		if r.Intn(2) == 0 {
			tol = math.Pow(10, -3-float64(r.Intn(6)))
		}
		mk := randomSeedMatrix(rand.New(rand.NewSource(seed+1)), dim, 1.0/float64(dim), tol)
		mg := randomSeedMatrix(rand.New(rand.NewSource(seed+1)), dim, 1.0/float64(dim), tol)
		for it := 0; it < 40; it++ {
			a, b := r.Intn(dim), r.Intn(dim)
			u := Basis(dim, a)
			v := Basis(dim, a)
			v.Add(b, -gamma)
			dk, ek := mk.ShermanMorrisonBasis(a, b, gamma)
			dg, eg := mg.ShermanMorrison(u, v)
			if (ek == nil) != (eg == nil) || dk != dg || mk.NNZ() != mg.NNZ() {
				return false
			}
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					if mk.Get(i, j) != mg.Get(i, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A numerically singular basis update must leave the matrix fully
// unchanged — values, NNZ, column index and diagonal overrides — because
// the learner continues scheduling with the untouched operator.
func TestShermanMorrisonBasisSingularRollback(t *testing.T) {
	const dim = 6
	m := randomSeedMatrix(rand.New(rand.NewSource(9)), dim, 1, 0)
	// Engineer den = 1 + vm[a] = 0 for a ≠ b: with row a = −e_a and
	// row b zeroed at column a, vm[a] = B[a,a] = −1.
	a, b := 2, 4
	m.Set(a, a, -1)
	for j := 0; j < dim; j++ {
		m.Set(b, j, 0)
	}
	before := m.Dense()
	nnzBefore := m.NNZ()
	_, err := m.ShermanMorrisonBasis(a, b, 0.5)
	if !errors.Is(err, ErrSingularUpdate) {
		t.Fatalf("err = %v, want ErrSingularUpdate", err)
	}
	if m.NNZ() != nnzBefore {
		t.Fatalf("NNZ changed across rejected update: %d vs %d", m.NNZ(), nnzBefore)
	}
	after := m.Dense()
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("entry (%d,%d) mutated by rejected singular update", i, j)
			}
		}
	}
	checkMatrixInvariants(t, m)
}

// The kernel's column snapshots must be exactly what the θ-maintenance path
// needs: LastUpdateScaledCol is the pre-update column a scaled by 1/den,
// and LastUpdateNewCol is bitwise identical to the post-update column
// (exact zeros omitted in both).
func TestShermanMorrisonBasisColumnSnapshots(t *testing.T) {
	const dim = 12
	const gamma = 0.5
	for _, tol := range []float64{0, 1e-6} {
		r := rand.New(rand.NewSource(31))
		m := randomSeedMatrix(rand.New(rand.NewSource(17)), dim, 1.0/dim, tol)
		for it := 0; it < 120; it++ {
			a, b := r.Intn(dim), r.Intn(dim)
			var beforeIdx []int
			var beforeVal []float64
			beforeIdx, beforeVal = m.AppendCol(a, beforeIdx, beforeVal)
			den, err := m.ShermanMorrisonBasis(a, b, gamma)
			if err != nil {
				continue
			}
			inv := 1 / den
			sIdx, sVal := m.LastUpdateScaledCol()
			want := map[int]float64{}
			for k, i := range beforeIdx {
				if x := beforeVal[k] * inv; x != 0 {
					want[i] = x
				}
			}
			if len(sIdx) != len(want) {
				t.Fatalf("tol %g it %d: scaled col has %d entries, want %d", tol, it, len(sIdx), len(want))
			}
			for k, i := range sIdx {
				if want[i] != sVal[k] {
					t.Fatalf("tol %g it %d: scaled col[%d] = %v, want %v", tol, it, i, sVal[k], want[i])
				}
			}
			var afterIdx []int
			var afterVal []float64
			afterIdx, afterVal = m.AppendCol(a, afterIdx, afterVal)
			nIdx, nVal := m.LastUpdateNewCol()
			wantNew := map[int]float64{}
			for k, i := range afterIdx {
				if afterVal[k] != 0 {
					wantNew[i] = afterVal[k]
				}
			}
			if len(nIdx) != len(wantNew) {
				t.Fatalf("tol %g it %d: new col has %d entries, want %d", tol, it, len(nIdx), len(wantNew))
			}
			for k, i := range nIdx {
				if wantNew[i] != nVal[k] {
					t.Fatalf("tol %g it %d: new col[%d] = %v, want %v (stored)", tol, it, i, nVal[k], wantNew[i])
				}
			}
		}
		checkMatrixInvariants(t, m)
	}
}

// Updates landing on a diagonal that was explicitly overridden to zero must
// behave identically in both paths (the override blocks the implicit
// identity but stores nothing).
func TestShermanMorrisonBasisDiagonalOverriddenToZero(t *testing.T) {
	const dim = 8
	const gamma = 0.5
	mk := NewMatrix(dim, 1.0/dim)
	mg := NewMatrix(dim, 1.0/dim)
	for i := 0; i < dim; i += 2 {
		mk.Set(i, i, 0)
		mg.Set(i, i, 0)
	}
	r := rand.New(rand.NewSource(41))
	for it := 0; it < 100; it++ {
		a, b := r.Intn(dim), r.Intn(dim)
		u := Basis(dim, a)
		v := Basis(dim, a)
		v.Add(b, -gamma)
		dk, ek := mk.ShermanMorrisonBasis(a, b, gamma)
		dg, eg := mg.ShermanMorrison(u, v)
		if (ek == nil) != (eg == nil) || (ek == nil && dk != dg) {
			t.Fatalf("it %d: kernel (%v,%v) vs generic (%v,%v)", it, dk, ek, dg, eg)
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if mk.Get(i, j) != mg.Get(i, j) {
					t.Fatalf("it %d: (%d,%d) %v vs %v", it, i, j, mk.Get(i, j), mg.Get(i, j))
				}
			}
		}
	}
	checkMatrixInvariants(t, mk)
}
