package sparse

import (
	"fmt"
	"math"
)

// Dense is a small dense square matrix used as a reference implementation in
// tests and ablation benchmarks (e.g. Sherman–Morrison vs full re-inversion).
// It is row-major.
type Dense struct {
	n int
	a []float64
}

// NewDense returns an n × n zero dense matrix.
func NewDense(n int) *Dense {
	if n < 0 {
		panic(fmt.Sprintf("sparse: negative dense dimension %d", n))
	}
	return &Dense{n: n, a: make([]float64, n*n)}
}

// NewDenseIdentity returns c·I of dimension n.
func NewDenseIdentity(n int, c float64) *Dense {
	d := NewDense(n)
	for i := 0; i < n; i++ {
		d.Set(i, i, c)
	}
	return d
}

// Dim returns the matrix dimension.
func (d *Dense) Dim() int { return d.n }

// Get returns entry (i,j).
func (d *Dense) Get(i, j int) float64 { return d.a[i*d.n+j] }

// Set assigns entry (i,j).
func (d *Dense) Set(i, j int, x float64) { d.a[i*d.n+j] = x }

// Add adds x to entry (i,j).
func (d *Dense) Add(i, j int, x float64) { d.a[i*d.n+j] += x }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.n)
	copy(c.a, d.a)
	return c
}

// AddOuter applies A ← A + s·u·vᵀ with dense vectors u, v.
func (d *Dense) AddOuter(s float64, u, v []float64) {
	if len(u) != d.n || len(v) != d.n {
		panic("sparse: AddOuter dimension mismatch")
	}
	for i := 0; i < d.n; i++ {
		if u[i] == 0 {
			continue
		}
		su := s * u[i]
		row := d.a[i*d.n : (i+1)*d.n]
		for j := 0; j < d.n; j++ {
			row[j] += su * v[j]
		}
	}
}

// MulVec returns A·x as a dense slice.
func (d *Dense) MulVec(x []float64) []float64 {
	if len(x) != d.n {
		panic("sparse: MulVec dimension mismatch")
	}
	out := make([]float64, d.n)
	for i := 0; i < d.n; i++ {
		row := d.a[i*d.n : (i+1)*d.n]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		out[i] = s
	}
	return out
}

// ErrSingular is returned by Invert when the matrix is numerically singular.
var ErrSingular = fmt.Errorf("sparse: matrix is numerically singular")

// Invert returns A⁻¹ computed by Gauss–Jordan elimination with partial
// pivoting (the O(d³) path Megh avoids; kept as the test oracle and the
// ablation baseline). It returns ErrSingular when a pivot underflows.
func (d *Dense) Invert() (*Dense, error) {
	n := d.n
	// Augmented [A | I] worked in place.
	a := d.Clone()
	inv := NewDenseIdentity(n, 1)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(a.Get(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.Get(r, col)); v > best {
				best, p = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if p != col {
			a.swapRows(p, col)
			inv.swapRows(p, col)
		}
		piv := a.Get(col, col)
		invPiv := 1 / piv
		for j := 0; j < n; j++ {
			a.Set(col, j, a.Get(col, j)*invPiv)
			inv.Set(col, j, inv.Get(col, j)*invPiv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.Get(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Add(r, j, -f*a.Get(col, j))
				inv.Add(r, j, -f*inv.Get(col, j))
			}
		}
	}
	return inv, nil
}

func (d *Dense) swapRows(i, j int) {
	ri := d.a[i*d.n : (i+1)*d.n]
	rj := d.a[j*d.n : (j+1)*d.n]
	for k := 0; k < d.n; k++ {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
