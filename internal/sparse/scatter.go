package sparse

import "math"

// This file holds the flat dense-slice helpers the core decide path leans
// on: scatter-adds that push a sparse column into the dense θ mirror and a
// gather that pulls a θ row's feasible entries out again. They are 4-wide
// unrolled but semantically *sequential*: every arithmetic operation runs
// in the same order, with the same operands, as the obvious scalar loop, so
// results are bitwise identical to it — the property the decision-identity
// guarantees of core.DecideBatch and the scanRow kernels are built on.

// ScatterAddScaled performs dst[idx[k]] += s*val[k] for every k in index
// order. Duplicate indices accumulate sequentially, exactly as the plain
// loop would. idx and val must have equal length.
func ScatterAddScaled(dst []float64, idx []int, val []float64, s float64) {
	val = val[:len(idx)]
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		dst[idx[k]] += s * val[k]
		dst[idx[k+1]] += s * val[k+1]
		dst[idx[k+2]] += s * val[k+2]
		dst[idx[k+3]] += s * val[k+3]
	}
	for ; k < len(idx); k++ {
		dst[idx[k]] += s * val[k]
	}
}

// ScatterAddScaledSq is ScatterAddScaled plus the squared-delta sum the
// learning-health layer feeds its θ-drift EWMA: it returns Σ (s*val[k])²,
// accumulated one term at a time in index order (never pairwise), so the
// sum is bitwise identical to the scalar loop's.
func ScatterAddScaledSq(dst []float64, idx []int, val []float64, s float64) float64 {
	val = val[:len(idx)]
	var dsq float64
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		d0 := s * val[k]
		dst[idx[k]] += d0
		dsq += d0 * d0
		d1 := s * val[k+1]
		dst[idx[k+1]] += d1
		dsq += d1 * d1
		d2 := s * val[k+2]
		dst[idx[k+2]] += d2
		dsq += d2 * d2
		d3 := s * val[k+3]
		dst[idx[k+3]] += d3
		dsq += d3 * d3
	}
	for ; k < len(idx); k++ {
		d := s * val[k]
		dst[idx[k]] += d
		dsq += d * d
	}
	return dsq
}

// GatherMin copies row[idx[k]] into dst[k] for every k and returns the
// minimum gathered value. dst must have length len(idx). The minimum uses
// the same strict-less, first-wins comparison sequence as the scalar
// `if q < min` loop, so it is bitwise identical to it (for finite inputs
// the comparison order is observable only through which of several equal
// bit patterns wins — and that order is preserved).
func GatherMin(dst []float64, row []float64, idx []int) float64 {
	dst = dst[:len(idx)]
	min := math.Inf(1)
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		q0 := row[idx[k]]
		q1 := row[idx[k+1]]
		q2 := row[idx[k+2]]
		q3 := row[idx[k+3]]
		dst[k] = q0
		dst[k+1] = q1
		dst[k+2] = q2
		dst[k+3] = q3
		if q0 < min {
			min = q0
		}
		if q1 < min {
			min = q1
		}
		if q2 < min {
			min = q2
		}
		if q3 < min {
			min = q3
		}
	}
	for ; k < len(idx); k++ {
		q := row[idx[k]]
		dst[k] = q
		if q < min {
			min = q
		}
	}
	return min
}
