package sparse

import (
	"math"
	"testing"
)

// FuzzShermanMorrisonBasis decodes fuzz bytes into a Megh-shaped update
// sequence — dimension, γ, then (a,b) transition pairs — and drives it
// through three implementations at once with the drop tolerance off:
//
//   - the structure-exploiting kernel (ShermanMorrisonBasis),
//   - the generic Sherman–Morrison reference (bitwise agreement required,
//     including on which updates are rejected as singular),
//   - a dense T accumulation, against which ‖B·T − I‖∞ must stay tiny.
//
// Every applied update adds 1 to T[a][a] and γ < 1 off the diagonal, so T
// stays strictly row diagonally dominant and the dense oracle is always
// well-posed, no matter what sequence the fuzzer invents.
func FuzzShermanMorrisonBasis(f *testing.F) {
	f.Add([]byte{6, 50, 0, 1, 1, 2, 2, 0, 3, 3})
	f.Add([]byte{2, 99, 0, 0, 1, 1, 0, 1, 1, 0})
	f.Add([]byte{8, 0, 7, 3})
	f.Add([]byte{3, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		dim := 2 + int(data[0])%7           // 2..8: small enough for the O(d³) oracle
		gamma := float64(data[1]%100) / 100 // 0.00..0.99, strictly below 1
		ops := data[2:]
		if len(ops) > 128 {
			ops = ops[:128] // ≤ 64 updates per input keeps execs fast
		}

		delta := float64(dim)
		kernel := NewMatrix(dim, 1/delta)
		generic := NewMatrix(dim, 1/delta)
		oracle := newDenseOracle(dim, delta)
		applied := 0
		minDen := math.Inf(1)

		for p := 0; p+1 < len(ops); p += 2 {
			a, b := int(ops[p])%dim, int(ops[p+1])%dim
			u := Basis(dim, a)
			v := Basis(dim, a)
			v.Add(b, -gamma)
			dk, ek := kernel.ShermanMorrisonBasis(a, b, gamma)
			dg, eg := generic.ShermanMorrison(u, v)
			if (ek == nil) != (eg == nil) {
				t.Fatalf("op %d (a=%d b=%d γ=%g): kernel err %v, generic err %v", p/2, a, b, gamma, ek, eg)
			}
			if dk != dg {
				t.Fatalf("op %d (a=%d b=%d γ=%g): denominator %v vs %v", p/2, a, b, gamma, dk, dg)
			}
			if ek != nil {
				continue // both rejected; both matrices must be unchanged, checked below
			}
			oracle.update(u, v)
			applied++
			if d := math.Abs(dk); d < minDen {
				minDen = d
			}
			if kernel.NNZ() != generic.NNZ() {
				t.Fatalf("op %d: NNZ %d vs %d", p/2, kernel.NNZ(), generic.NNZ())
			}
		}

		kd, gd := kernel.Dense(), generic.Dense()
		for i := range kd {
			for j := range kd[i] {
				if kd[i][j] != gd[i][j] {
					t.Fatalf("B[%d,%d]: kernel %v, generic %v", i, j, kd[i][j], gd[i][j])
				}
			}
		}
		checkMatrixInvariants(t, kernel)
		checkMatrixInvariants(t, generic)

		// Dense oracle: only meaningful when no update came close to the
		// singularity threshold — a tiny denominator legitimately amplifies
		// rounding error beyond any fixed residual bound.
		if applied == 0 || minDen < 1e-3 {
			return
		}
		var norm float64
		for i := 0; i < dim; i++ {
			var row float64
			for j := 0; j < dim; j++ {
				var prod float64
				for k := 0; k < dim; k++ {
					prod += kd[i][k] * oracle.T.Get(k, j)
				}
				if i == j {
					prod -= 1
				}
				row += math.Abs(prod)
			}
			if row > norm {
				norm = row
			}
		}
		if norm > 1e-6 || math.IsNaN(norm) {
			t.Fatalf("‖B·T − I‖∞ = %g after %d applied updates (dim %d, γ %g)", norm, applied, dim, gamma)
		}
	})
}
