package sparse

import (
	"fmt"
	"math"
	"sort"
)

// span is one sorted sparse row: parallel index/value slices kept in
// ascending index order. Gets are binary searches, inserts are amortised
// memmoves, and iteration is deterministic.
type span struct {
	idx []int
	val []float64
}

func (l *span) find(i int) (int, bool) {
	p := sort.SearchInts(l.idx, i)
	return p, p < len(l.idx) && l.idx[p] == i
}

func (l *span) insertAt(p, i int, x float64) {
	l.idx = append(l.idx, 0)
	copy(l.idx[p+1:], l.idx[p:])
	l.idx[p] = i
	l.val = append(l.val, 0)
	copy(l.val[p+1:], l.val[p:])
	l.val[p] = x
}

func (l *span) removeAt(p int) {
	l.idx = append(l.idx[:p], l.idx[p+1:]...)
	l.val = append(l.val[:p], l.val[p+1:]...)
}

func (l *span) reset() {
	l.idx = l.idx[:0]
	l.val = l.val[:0]
}

func (l *span) push(i int, x float64) {
	l.idx = append(l.idx, i)
	l.val = append(l.val, x)
}

// Matrix is a square sparse matrix stored as index-sorted slice-backed rows
// plus a membership-only column index, with an *implicit* scaled identity: a
// fresh Matrix of dimension d with initial diagonal value c behaves exactly
// like c·I, but stores nothing until entries are written.
//
// Values live in the rows only; cols[j] lists (sorted) which rows have a
// materialised entry in column j. A rank-1 update therefore rewrites each
// touched row in place and adjusts the column index only for the few entries
// that materialise or vanish, instead of mirroring every value write.
//
// This mirrors the B = (1/δ)·I initialisation of Megh (Algorithm 1, line 2):
// the matrix starts as a huge scaled identity of which only the entries
// touched by migrations are ever materialised.
//
// Every iteration over stored entries runs in ascending index order, so
// floating-point accumulation order is fixed: two identical update sequences
// produce bit-identical matrices, in any process.
//
// Matrix is not safe for concurrent mutation.
type Matrix struct {
	dim  int
	diag float64 // implicit value of unmaterialised diagonal entries
	// dropTol, when positive, makes the matrix treat entries with
	// |x| < dropTol as exact zeros. Rank-1 updates produce cascades of
	// numerically negligible fill-in (products of already-tiny
	// off-diagonal entries); dropping them keeps the Q-table's growth
	// linear in the number of migrations, which is the behaviour the
	// paper reports in Figure 7.
	dropTol float64

	rows []span
	cols [][]int
	// diagSet[i] marks rows whose implicit diagonal has been materialised
	// (even if it was materialised to the same value, or to zero — which
	// stores nothing but still overrides the implicit entry). A row i with
	// diagSet[i] == false still has the implicit entry (i,i) = diag.
	diagSet []bool
	// nnz counts materialised entries incrementally so NNZ() is O(1); it
	// is read on every Megh.Decide (nnzHistory, metrics, trace).
	nnz int

	// Scratch buffers reused across ShermanMorrisonBasis calls so the hot
	// update path allocates only when a buffer grows past its high-water
	// mark.
	colA      span // snapshot of column a, pre-scaled by 1/den
	colARaw   span // snapshot of column a as stored (unscaled)
	colANew   span // column a after the update (see LastUpdateNewCol)
	rowA      span // snapshot of row a (implicit diagonal included)
	rowB      span // snapshot of row b (implicit diagonal included)
	vmRow     span // vᵀM = row_a − γ·row_b
	colIns    []ij // entries materialised by the in-flight update
	colDel    []ij // entries vanished during the in-flight update
	diagFlips []int
}

// ij addresses one matrix cell.
type ij struct{ i, j int }

// NewMatrix returns a d × d matrix equal to diag·I, storing nothing yet.
func NewMatrix(dim int, diag float64) *Matrix {
	if dim < 0 {
		panic(fmt.Sprintf("sparse: negative matrix dimension %d", dim))
	}
	return &Matrix{
		dim:     dim,
		diag:    diag,
		rows:    make([]span, dim),
		cols:    make([][]int, dim),
		diagSet: make([]bool, dim),
	}
}

// Dim returns the matrix dimension.
func (m *Matrix) Dim() int { return m.dim }

// NNZ returns the number of *materialised* non-zero entries, maintained
// incrementally (O(1)). The implicit identity is excluded: this is the
// quantity the paper plots in Figure 7 (growth of the Q-table with time),
// which starts near zero and grows with the number of executed migrations.
func (m *Matrix) NNZ() int { return m.nnz }

// Get returns entry (i,j), including the implicit diagonal.
func (m *Matrix) Get(i, j int) float64 {
	m.check(i, j)
	if p, ok := m.rows[i].find(j); ok {
		return m.rows[i].val[p]
	}
	if i == j && !m.diagSet[i] {
		return m.diag
	}
	return 0
}

// SetDropTolerance makes the matrix discard entries with |x| < tol on
// write. Passing 0 restores exact arithmetic. It panics on negative tol.
func (m *Matrix) SetDropTolerance(tol float64) {
	if tol < 0 {
		panic(fmt.Sprintf("sparse: negative drop tolerance %g", tol))
	}
	m.dropTol = tol
}

// colInsert records row i as a member of column j.
func (m *Matrix) colInsert(j, i int) {
	c := m.cols[j]
	p := sort.SearchInts(c, i)
	c = append(c, 0)
	copy(c[p+1:], c[p:])
	c[p] = i
	m.cols[j] = c
}

// colRemove drops row i from column j's membership.
func (m *Matrix) colRemove(j, i int) {
	c := m.cols[j]
	p := sort.SearchInts(c, i)
	m.cols[j] = append(c[:p], c[p+1:]...)
}

// Set assigns entry (i,j). Setting an off-diagonal entry to zero (or below
// the drop tolerance) removes it; a diagonal entry set to zero stays
// materialised as absent (overriding the implicit identity).
func (m *Matrix) Set(i, j int, x float64) {
	m.check(i, j)
	if i == j {
		m.diagSet[i] = true
	}
	if x < m.dropTol && x > -m.dropTol {
		x = 0
	}
	r := &m.rows[i]
	p, ok := r.find(j)
	if x == 0 {
		if ok {
			r.removeAt(p)
			m.colRemove(j, i)
			m.nnz--
		}
		return
	}
	if ok {
		r.val[p] = x
		return
	}
	r.insertAt(p, j, x)
	m.colInsert(j, i)
	m.nnz++
}

// Add adds x to entry (i,j), respecting the implicit diagonal.
func (m *Matrix) Add(i, j int, x float64) {
	m.Set(i, j, m.Get(i, j)+x)
}

// Row returns row i as a sparse vector (a copy, including the implicit
// diagonal entry if still in effect).
func (m *Matrix) Row(i int) *Vector {
	m.check(i, 0)
	v := &Vector{dim: m.dim}
	v.idx, v.val = m.appendRow(i, v.idx, v.val)
	return v
}

// Col returns column j as a sparse vector (a copy, including the implicit
// diagonal entry if still in effect).
func (m *Matrix) Col(j int) *Vector {
	m.check(0, j)
	v := &Vector{dim: m.dim}
	v.idx, v.val = m.AppendCol(j, v.idx, v.val)
	return v
}

// appendRow appends row i's entries — ascending column order, implicit
// diagonal spliced in when still in effect — onto idx/val.
func (m *Matrix) appendRow(i int, idx []int, val []float64) ([]int, []float64) {
	r := &m.rows[i]
	if m.diagSet[i] {
		return append(idx, r.idx...), append(val, r.val...)
	}
	p := sort.SearchInts(r.idx, i)
	idx = append(idx, r.idx[:p]...)
	val = append(val, r.val[:p]...)
	idx = append(idx, i)
	val = append(val, m.diag)
	idx = append(idx, r.idx[p:]...)
	val = append(val, r.val[p:]...)
	return idx, val
}

// AppendCol appends column j's entries — in ascending row order, with the
// implicit diagonal spliced in when still in effect — onto idx/val and
// returns the extended slices. Values are fetched from the owning rows
// (binary search each), so the cost is O(nnz(col)·log nnz(row)). It lets
// callers snapshot a column into reusable scratch buffers without allocating
// a Vector (the Megh θ-update path does this twice per transition).
func (m *Matrix) AppendCol(j int, idx []int, val []float64) ([]int, []float64) {
	m.check(0, j)
	implicit := !m.diagSet[j]
	for _, i := range m.cols[j] {
		if implicit && i > j {
			idx = append(idx, j)
			val = append(val, m.diag)
			implicit = false
		}
		r := &m.rows[i]
		p, _ := r.find(j)
		idx = append(idx, i)
		val = append(val, r.val[p])
	}
	if implicit {
		idx = append(idx, j)
		val = append(val, m.diag)
	}
	return idx, val
}

// MulVec returns M·x as a sparse vector. Cost is proportional to the support
// of x times the density of the touched columns, plus the implicit diagonal
// contribution (one entry per non-zero of x).
func (m *Matrix) MulVec(x *Vector) *Vector {
	if x.Dim() != m.dim {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch %d vs %d", m.dim, x.Dim()))
	}
	out := NewVector(m.dim)
	x.Range(func(j int, xj float64) bool {
		for _, i := range m.cols[j] {
			r := &m.rows[i]
			p, _ := r.find(j)
			out.Add(i, r.val[p]*xj)
		}
		if !m.diagSet[j] {
			out.Add(j, m.diag*xj)
		}
		return true
	})
	return out
}

// VecMul returns xᵀ·M as a sparse vector (the row-vector product).
func (m *Matrix) VecMul(x *Vector) *Vector {
	if x.Dim() != m.dim {
		panic(fmt.Sprintf("sparse: VecMul dimension mismatch %d vs %d", m.dim, x.Dim()))
	}
	out := NewVector(m.dim)
	x.Range(func(i int, xi float64) bool {
		r := &m.rows[i]
		for p, j := range r.idx {
			out.Add(j, xi*r.val[p])
		}
		if !m.diagSet[i] {
			out.Add(i, xi*m.diag)
		}
		return true
	})
	return out
}

// ErrSingularUpdate is returned by ShermanMorrison when the rank-1 update
// would make the matrix singular (denominator too close to zero).
var ErrSingularUpdate = fmt.Errorf("sparse: sherman-morrison denominator is numerically zero")

// ShermanMorrison applies the rank-1 inverse update
//
//	M ← M − (M·u)(vᵀ·M) / (1 + vᵀ·M·u)
//
// in place, which is the Sherman–Morrison formula for maintaining M = A⁻¹
// under A ← A + u·vᵀ (paper Eq. 11). It returns the denominator 1 + vᵀMu.
// If the denominator is numerically zero the matrix is left unchanged and
// ErrSingularUpdate is returned.
//
// This is the fully general form, kept as the reference implementation; the
// Megh hot path uses the structure-exploiting ShermanMorrisonBasis, which is
// cross-checked against this one in tests.
func (m *Matrix) ShermanMorrison(u, v *Vector) (float64, error) {
	mu := m.MulVec(u) // column combination: M·u
	vm := m.VecMul(v) // row combination: vᵀ·M
	den := 1 + vm.Dot(u)
	if math.Abs(den) < 1e-12 {
		return den, ErrSingularUpdate
	}
	inv := 1 / den
	tol := m.dropTol
	mu.Range(func(i int, a float64) bool {
		ai := a * inv
		vm.Range(func(j int, b float64) bool {
			d := ai * b
			// Skip numerically negligible fill-in without touching
			// the storage at all; an existing entry this small is
			// kept only until its next write.
			if d < tol && d > -tol {
				return true
			}
			m.Add(i, j, -d)
			return true
		})
		return true
	})
	return den, nil
}

// ShermanMorrisonBasis applies the same rank-1 inverse update as
// ShermanMorrison specialised to the shape every Megh transition has
// (Eq. 10): u = e_a and v = e_a − γ·e_b. The structure collapses the two
// matrix-vector products into reads:
//
//	M·u  = column a of M
//	vᵀ·M = row_a − γ·row_b        (a merge of two sorted rows)
//	den  = 1 + (vᵀM)[a]
//
// and the outer-product subtraction into in-place rewrites of the touched
// rows: existing entries are updated where they sit, and only the few
// entries that materialise or vanish pay a memmove plus a column-index
// adjustment. Everything runs through scratch buffers owned by the matrix —
// no Vector allocations and no generic dispatch. For a == b the update is
// u = e_a, v = (1−γ)·e_a.
//
// A numerically zero denominator leaves the matrix unchanged and returns
// ErrSingularUpdate, exactly as the general form does.
func (m *Matrix) ShermanMorrisonBasis(a, b int, gamma float64) (float64, error) {
	return m.ShermanMorrisonBasisScaled(a, b, gamma, 1)
}

// ShermanMorrisonBasisScaled is ShermanMorrisonBasis with a scaled v:
// u = e_a, v = scale·(e_a − γ·e_b). One call with scale = n maintains the
// inverse of T + n·e_a(e_a − γ·e_b)ᵀ, i.e. it folds n repetitions of the
// same Megh transition into a single kernel pass — the primitive the
// deferred-update mode in internal/core amortises rank-1 work with.
//
// scale = 1 reproduces ShermanMorrisonBasis bit for bit: every extra
// multiply the scaling introduces is by exactly 1.0, an identity in
// IEEE-754, so the exact-mode decide path keeps its determinism contract.
// A non-finite or zero scale is rejected (zero would be a no-op update
// that still invalidated the column snapshots).
func (m *Matrix) ShermanMorrisonBasisScaled(a, b int, gamma, scale float64) (float64, error) {
	m.check(a, b)
	if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return 0, fmt.Errorf("sparse: sherman-morrison scale %g must be finite and non-zero", scale)
	}
	vm := &m.vmRow
	m.buildVMRow(a, b, gamma, scale)

	vma, vmaOK := 0.0, false
	if p, ok := vm.find(a); ok {
		vma, vmaOK = vm.val[p], true
	}
	den := 1 + vma
	if math.Abs(den) < 1e-12 {
		return den, ErrSingularUpdate
	}
	inv := 1 / den

	// Snapshot column a — the update rewrites rows a and b, so both
	// factors of the outer product must be taken before any mutation.
	// Pre-scaling by 1/den makes every delta a single multiply. Exact
	// zeros (an implicit diagonal of 0) are dropped, matching what the
	// generic path's Vector accumulation stores. The unscaled snapshot is
	// kept too: LastUpdateScaledCol/LastUpdateNewCol serve it back to the
	// θ-maintenance path without re-walking the column index.
	m.colARaw.reset()
	m.colARaw.idx, m.colARaw.val = m.AppendCol(a, m.colARaw.idx, m.colARaw.val)
	m.colA.reset()
	for k, i := range m.colARaw.idx {
		if x := m.colARaw.val[k] * inv; x != 0 {
			m.colA.push(i, x)
		}
	}

	// Row pass: for each i in col_a's support, row_i ← row_i − aᵢ·vm,
	// in place. Structural changes (entries appearing or vanishing) are
	// collected and applied to the column index afterwards.
	m.colIns = m.colIns[:0]
	m.colDel = m.colDel[:0]
	m.diagFlips = m.diagFlips[:0]
	for k, i := range m.colA.idx {
		m.updateRowInPlace(i, m.colA.val[k], vm)
	}
	for _, e := range m.colDel {
		m.colRemove(e.j, e.i)
	}
	for _, e := range m.colIns {
		m.colInsert(e.j, e.i)
	}
	// Diagonal overrides flip only after the pass has read the original
	// state for every row.
	for _, i := range m.diagFlips {
		m.diagSet[i] = true
	}

	// Reproduce column a's post-update values analytically: the row pass
	// computed each entry (i,a) as old − aᵢ·vm[a] with aᵢ the pre-scaled
	// snapshot value, so replaying the identical products (same operands,
	// same skip/drop rules) yields bitwise-identical results without
	// re-walking the column index.
	m.colANew.reset()
	for k, i := range m.colARaw.idx {
		x := m.colARaw.val[k]
		nv := x
		if ai := x * inv; ai != 0 && vmaOK {
			d := ai * vma
			tol := m.dropTol
			if !(d < tol && d > -tol) {
				nv = x - d
				if nv == 0 || (nv < tol && nv > -tol) {
					continue
				}
			}
		}
		if nv != 0 {
			m.colANew.push(i, nv)
		}
	}
	return den, nil
}

// LastUpdateScaledCol returns column a of the matrix as it was immediately
// before the last successful ShermanMorrisonBasis call, pre-scaled by
// 1/den — i.e. the vector (M·u)/den the update subtracted a multiple of.
// Exact zeros are omitted. The slices are scratch owned by the matrix,
// valid only until the next update.
func (m *Matrix) LastUpdateScaledCol() ([]int, []float64) {
	return m.colA.idx, m.colA.val
}

// LastUpdateNewCol returns column a of the matrix as it is immediately
// after the last successful ShermanMorrisonBasis call, bitwise identical to
// the stored entries (exact zeros omitted). The slices are scratch owned by
// the matrix, valid only until the next update.
func (m *Matrix) LastUpdateNewCol() ([]int, []float64) {
	return m.colANew.idx, m.colANew.val
}

// buildVMRow assembles vᵀM = scale·(row_a − γ·row_b) (implicit diagonals
// included) into m.vmRow, merging the two sorted rows; exact-zero results
// are skipped, matching what the generic path's Add-based accumulation
// stores. With scale == 1 every multiplication by scale (and the folded
// scale·γ factor) is a multiply by exactly 1.0, so the arithmetic — and
// therefore the stored bits — match the historical unscaled kernel.
func (m *Matrix) buildVMRow(a, b int, gamma, scale float64) {
	m.rowA.reset()
	m.rowA.idx, m.rowA.val = m.appendRow(a, m.rowA.idx, m.rowA.val)
	vm := &m.vmRow
	vm.reset()
	if a == b {
		s := scale * (1 - gamma)
		for p, j := range m.rowA.idx {
			if x := s * m.rowA.val[p]; x != 0 {
				vm.push(j, x)
			}
		}
		return
	}
	// Materialised entries are never zero, but the spliced-in implicit
	// diagonal can be when diag == 0; every push below guards against
	// storing exact zeros.
	m.rowB.reset()
	m.rowB.idx, m.rowB.val = m.appendRow(b, m.rowB.idx, m.rowB.val)
	ra, rb := &m.rowA, &m.rowB
	g := scale * gamma
	p, q := 0, 0
	for p < len(ra.idx) && q < len(rb.idx) {
		switch {
		case ra.idx[p] < rb.idx[q]:
			if x := scale * ra.val[p]; x != 0 {
				vm.push(ra.idx[p], x)
			}
			p++
		case ra.idx[p] > rb.idx[q]:
			if x := -g * rb.val[q]; x != 0 {
				vm.push(rb.idx[q], x)
			}
			q++
		default:
			if x := scale*ra.val[p] - g*rb.val[q]; x != 0 {
				vm.push(ra.idx[p], x)
			}
			p++
			q++
		}
	}
	for ; p < len(ra.idx); p++ {
		if x := scale * ra.val[p]; x != 0 {
			vm.push(ra.idx[p], x)
		}
	}
	for ; q < len(rb.idx); q++ {
		if x := -g * rb.val[q]; x != 0 {
			vm.push(rb.idx[q], x)
		}
	}
}

// updateRowInPlace applies row_i ← row_i − aᵢ·delta by walking the two
// sorted supports in lockstep. Entries hit by a significant delta are
// rewritten in place; a delta the tolerance deems negligible leaves the
// entry untouched (exactly like the generic path); entries whose new value
// is zero or below tolerance vanish; deltas landing on unmaterialised slots
// (or the still-implicit diagonal) materialise new entries. Structural
// changes are queued on m.colIns/m.colDel/m.diagFlips for the caller.
func (m *Matrix) updateRowInPlace(i int, ai float64, delta *span) {
	r := &m.rows[i]
	tol := m.dropTol
	ridx, rval := r.idx, r.val
	didx, dval := delta.idx, delta.val
	implicitDiag := !m.diagSet[i]
	p := 0
	for q := 0; q < len(didx); q++ {
		d := ai * dval[q]
		if d < tol && d > -tol {
			continue // negligible fill-in: slot stays as it was
		}
		j := didx[q]
		for p < len(ridx) && ridx[p] < j {
			p++
		}
		if p < len(ridx) && ridx[p] == j {
			nv := rval[p] - d
			if nv == 0 || (nv < tol && nv > -tol) {
				r.removeAt(p)
				ridx, rval = r.idx, r.val
				m.nnz--
				m.colDel = append(m.colDel, ij{i, j})
				continue
			}
			rval[p] = nv
			p++
			continue
		}
		// Delta lands on an unmaterialised slot (or the implicit
		// diagonal).
		old := 0.0
		if j == i && implicitDiag {
			old = m.diag
			m.diagFlips = append(m.diagFlips, i)
		}
		nv := old - d
		if nv == 0 || (nv < tol && nv > -tol) {
			continue // result dropped: nothing materialises
		}
		r.insertAt(p, j, nv)
		ridx, rval = r.idx, r.val
		m.nnz++
		m.colIns = append(m.colIns, ij{i, j})
		p++ // step past the entry just inserted
	}
}

// Triplet is one materialised matrix entry in (row, col, value) form — the
// storage representation described in paper §5.2.
type Triplet struct {
	Row, Col int
	Val      float64
}

// Triplets exports the materialised entries sorted by (row, col) — the
// natural storage order, so no sorting pass is needed.
func (m *Matrix) Triplets() []Triplet {
	ts := make([]Triplet, 0, m.nnz)
	for i := range m.rows {
		r := &m.rows[i]
		for p, j := range r.idx {
			ts = append(ts, Triplet{Row: i, Col: j, Val: r.val[p]})
		}
	}
	return ts
}

// Dense materialises the full matrix (including the implicit diagonal) as a
// dense row-major [dim][dim] slice. Intended for tests on small matrices.
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.dim)
	for i := range d {
		d[i] = make([]float64, m.dim)
		if !m.diagSet[i] {
			d[i][i] = m.diag
		}
		r := &m.rows[i]
		for p, j := range r.idx {
			d[i][j] = r.val[p]
		}
	}
	return d
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.dim || j < 0 || j >= m.dim {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for %d×%d matrix", i, j, m.dim, m.dim))
	}
}
