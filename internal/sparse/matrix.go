package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a square sparse matrix stored as a dictionary of keys with both
// row-major and column-major indexes, plus an *implicit* scaled identity: a
// fresh Matrix of dimension d with initial diagonal value c behaves exactly
// like c·I, but stores nothing until entries are written.
//
// This mirrors the B = (1/δ)·I initialisation of Megh (Algorithm 1, line 2):
// the matrix starts as a huge scaled identity of which only the entries
// touched by migrations are ever materialised.
//
// Matrix is not safe for concurrent mutation.
type Matrix struct {
	dim  int
	diag float64 // implicit value of unmaterialised diagonal entries
	// dropTol, when positive, makes the matrix treat entries with
	// |x| < dropTol as exact zeros. Rank-1 updates produce cascades of
	// numerically negligible fill-in (products of already-tiny
	// off-diagonal entries); dropping them keeps the Q-table's growth
	// linear in the number of migrations, which is the behaviour the
	// paper reports in Figure 7.
	dropTol float64

	rows map[int]map[int]float64
	cols map[int]map[int]float64
	// rowTouched marks rows whose implicit diagonal has been materialised
	// (even if it was materialised to the same value). A row i not in this
	// set still has the implicit entry (i,i)=diag.
	diagDone map[int]bool
}

// NewMatrix returns a d × d matrix equal to diag·I, storing nothing yet.
func NewMatrix(dim int, diag float64) *Matrix {
	if dim < 0 {
		panic(fmt.Sprintf("sparse: negative matrix dimension %d", dim))
	}
	return &Matrix{
		dim:      dim,
		diag:     diag,
		rows:     make(map[int]map[int]float64),
		cols:     make(map[int]map[int]float64),
		diagDone: make(map[int]bool),
	}
}

// Dim returns the matrix dimension.
func (m *Matrix) Dim() int { return m.dim }

// NNZ returns the number of *materialised* non-zero entries. The implicit
// identity is excluded: this is the quantity the paper plots in Figure 7
// (growth of the Q-table with time), which starts near zero and grows with
// the number of executed migrations.
func (m *Matrix) NNZ() int {
	n := 0
	for _, r := range m.rows {
		n += len(r)
	}
	return n
}

// Get returns entry (i,j), including the implicit diagonal.
func (m *Matrix) Get(i, j int) float64 {
	m.check(i, j)
	if r, ok := m.rows[i]; ok {
		if x, ok := r[j]; ok {
			return x
		}
	}
	if i == j && !m.diagDone[i] {
		return m.diag
	}
	return 0
}

// SetDropTolerance makes the matrix discard entries with |x| < tol on
// write. Passing 0 restores exact arithmetic. It panics on negative tol.
func (m *Matrix) SetDropTolerance(tol float64) {
	if tol < 0 {
		panic(fmt.Sprintf("sparse: negative drop tolerance %g", tol))
	}
	m.dropTol = tol
}

// Set assigns entry (i,j). Setting an off-diagonal entry to zero (or below
// the drop tolerance) removes it; a diagonal entry set to zero stays
// materialised as absent (overriding the implicit identity).
func (m *Matrix) Set(i, j int, x float64) {
	m.check(i, j)
	if i == j {
		m.diagDone[i] = true
	}
	if x < m.dropTol && x > -m.dropTol {
		x = 0
	}
	if x == 0 {
		if r, ok := m.rows[i]; ok {
			delete(r, j)
			if len(r) == 0 {
				delete(m.rows, i)
			}
		}
		if c, ok := m.cols[j]; ok {
			delete(c, i)
			if len(c) == 0 {
				delete(m.cols, j)
			}
		}
		return
	}
	r, ok := m.rows[i]
	if !ok {
		r = make(map[int]float64)
		m.rows[i] = r
	}
	r[j] = x
	c, ok := m.cols[j]
	if !ok {
		c = make(map[int]float64)
		m.cols[j] = c
	}
	c[i] = x
}

// Add adds x to entry (i,j), respecting the implicit diagonal.
func (m *Matrix) Add(i, j int, x float64) {
	m.Set(i, j, m.Get(i, j)+x)
}

// Row returns row i as a sparse vector (a copy, including the implicit
// diagonal entry if still in effect).
func (m *Matrix) Row(i int) *Vector {
	m.check(i, 0)
	v := NewVector(m.dim)
	for j, x := range m.rows[i] {
		v.Set(j, x)
	}
	if !m.diagDone[i] {
		v.Set(i, m.diag)
	}
	return v
}

// Col returns column j as a sparse vector (a copy, including the implicit
// diagonal entry if still in effect).
func (m *Matrix) Col(j int) *Vector {
	m.check(0, j)
	v := NewVector(m.dim)
	for i, x := range m.cols[j] {
		v.Set(i, x)
	}
	if !m.diagDone[j] {
		v.Set(j, m.diag)
	}
	return v
}

// MulVec returns M·x as a sparse vector. Cost is proportional to the support
// of x times the density of the touched columns, plus the implicit diagonal
// contribution (one entry per non-zero of x).
func (m *Matrix) MulVec(x *Vector) *Vector {
	if x.Dim() != m.dim {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch %d vs %d", m.dim, x.Dim()))
	}
	out := NewVector(m.dim)
	x.Range(func(j int, xj float64) bool {
		for i, mij := range m.cols[j] {
			out.Add(i, mij*xj)
		}
		if !m.diagDone[j] {
			out.Add(j, m.diag*xj)
		}
		return true
	})
	return out
}

// VecMul returns xᵀ·M as a sparse vector (the row-vector product).
func (m *Matrix) VecMul(x *Vector) *Vector {
	if x.Dim() != m.dim {
		panic(fmt.Sprintf("sparse: VecMul dimension mismatch %d vs %d", m.dim, x.Dim()))
	}
	out := NewVector(m.dim)
	x.Range(func(i int, xi float64) bool {
		for j, mij := range m.rows[i] {
			out.Add(j, xi*mij)
		}
		if !m.diagDone[i] {
			out.Add(i, xi*m.diag)
		}
		return true
	})
	return out
}

// ErrSingularUpdate is returned by ShermanMorrison when the rank-1 update
// would make the matrix singular (denominator too close to zero).
var ErrSingularUpdate = fmt.Errorf("sparse: sherman-morrison denominator is numerically zero")

// ShermanMorrison applies the rank-1 inverse update
//
//	M ← M − (M·u)(vᵀ·M) / (1 + vᵀ·M·u)
//
// in place, which is the Sherman–Morrison formula for maintaining M = A⁻¹
// under A ← A + u·vᵀ (paper Eq. 11). It returns the denominator 1 + vᵀMu.
// If the denominator is numerically zero the matrix is left unchanged and
// ErrSingularUpdate is returned.
//
// Cost is O(nnz(Mu) · nnz(vᵀM)); for Megh u is a basis vector and v has two
// non-zeros, so this is O(#migrations) amortised per step.
func (m *Matrix) ShermanMorrison(u, v *Vector) (float64, error) {
	mu := m.MulVec(u) // column combination: M·u
	vm := m.VecMul(v) // row combination: vᵀ·M
	den := 1 + vm.Dot(u)
	if math.Abs(den) < 1e-12 {
		return den, ErrSingularUpdate
	}
	inv := 1 / den
	tol := m.dropTol
	mu.Range(func(i int, a float64) bool {
		ai := a * inv
		vm.Range(func(j int, b float64) bool {
			d := ai * b
			// Skip numerically negligible fill-in without touching
			// the maps at all; an existing entry this small is kept
			// only until its next write.
			if d < tol && d > -tol {
				return true
			}
			m.Add(i, j, -d)
			return true
		})
		return true
	})
	return den, nil
}

// Triplet is one materialised matrix entry in (row, col, value) form — the
// storage representation described in paper §5.2.
type Triplet struct {
	Row, Col int
	Val      float64
}

// Triplets exports the materialised entries sorted by (row, col).
func (m *Matrix) Triplets() []Triplet {
	ts := make([]Triplet, 0, m.NNZ())
	for i, r := range m.rows {
		for j, x := range r {
			ts = append(ts, Triplet{Row: i, Col: j, Val: x})
		}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].Row != ts[b].Row {
			return ts[a].Row < ts[b].Row
		}
		return ts[a].Col < ts[b].Col
	})
	return ts
}

// Dense materialises the full matrix (including the implicit diagonal) as a
// dense row-major [dim][dim] slice. Intended for tests on small matrices.
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.dim)
	for i := range d {
		d[i] = make([]float64, m.dim)
		if !m.diagDone[i] {
			d[i][i] = m.diag
		}
	}
	for i, r := range m.rows {
		for j, x := range r {
			d[i][j] = x
		}
	}
	return d
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.dim || j < 0 || j >= m.dim {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for %d×%d matrix", i, j, m.dim, m.dim))
	}
}
