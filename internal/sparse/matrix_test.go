package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixImplicitDiagonal(t *testing.T) {
	m := NewMatrix(5, 0.2)
	for i := 0; i < 5; i++ {
		if got := m.Get(i, i); got != 0.2 {
			t.Fatalf("Get(%d,%d) = %g, want implicit 0.2", i, i, got)
		}
	}
	if got := m.Get(0, 1); got != 0 {
		t.Fatalf("off-diagonal = %g, want 0", got)
	}
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, implicit identity should not count", m.NNZ())
	}
}

func TestMatrixSetOverridesImplicitDiagonal(t *testing.T) {
	m := NewMatrix(4, 0.25)
	m.Set(2, 2, 9)
	if got := m.Get(2, 2); got != 9 {
		t.Fatalf("Get(2,2) = %g, want 9", got)
	}
	m.Set(2, 2, 0)
	if got := m.Get(2, 2); got != 0 {
		t.Fatalf("Get(2,2) after zeroing = %g, want 0 (not implicit diag)", got)
	}
}

func TestMatrixAddOnImplicitDiagonal(t *testing.T) {
	m := NewMatrix(3, 0.5)
	m.Add(1, 1, 1)
	if got := m.Get(1, 1); got != 1.5 {
		t.Fatalf("Add on implicit diag: Get = %g, want 1.5", got)
	}
}

func TestMatrixRowColIncludeImplicit(t *testing.T) {
	m := NewMatrix(3, 0.5)
	m.Set(0, 2, 7)
	row := m.Row(0)
	if row.Get(0) != 0.5 || row.Get(2) != 7 {
		t.Fatalf("Row(0) = %v, want implicit diag 0.5 and (0,2)=7", row)
	}
	col := m.Col(2)
	if col.Get(2) != 0.5 || col.Get(0) != 7 {
		t.Fatalf("Col(2) = %v, want implicit diag 0.5 and (0,2)=7", col)
	}
}

func TestMatrixRowIsACopy(t *testing.T) {
	m := NewMatrix(3, 1)
	m.Set(0, 1, 4)
	r := m.Row(0)
	r.Set(1, 99)
	if m.Get(0, 1) != 4 {
		t.Fatal("mutating Row() result leaked into the matrix")
	}
}

func TestMatrixMulVecMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const dim = 12
	m := NewMatrix(dim, 1.0/dim)
	for k := 0; k < 20; k++ {
		m.Set(r.Intn(dim), r.Intn(dim), r.Float64()*2-1)
	}
	x := randomVector(r, dim, 5)
	got := m.MulVec(x).Dense()
	dm := m.Dense()
	want := make([]float64, dim)
	xd := x.Dense()
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			want[i] += dm[i][j] * xd[j]
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMatrixVecMulMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const dim = 12
	m := NewMatrix(dim, 0.3)
	for k := 0; k < 20; k++ {
		m.Set(r.Intn(dim), r.Intn(dim), r.Float64()*2-1)
	}
	x := randomVector(r, dim, 5)
	got := m.VecMul(x).Dense()
	dm := m.Dense()
	want := make([]float64, dim)
	xd := x.Dense()
	for j := 0; j < dim; j++ {
		for i := 0; i < dim; i++ {
			want[j] += xd[i] * dm[i][j]
		}
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("VecMul[%d] = %g, want %g", j, got[j], want[j])
		}
	}
}

func TestMatrixTripletsSorted(t *testing.T) {
	m := NewMatrix(4, 1)
	m.Set(2, 1, 3)
	m.Set(0, 3, 1)
	m.Set(2, 0, 2)
	ts := m.Triplets()
	want := []Triplet{{0, 3, 1}, {2, 0, 2}, {2, 1, 3}}
	if len(ts) != len(want) {
		t.Fatalf("Triplets len = %d, want %d", len(ts), len(want))
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("Triplets[%d] = %+v, want %+v", i, ts[i], want[i])
		}
	}
}

// denseOracle mirrors the T ← T + u·vᵀ / B = T⁻¹ evolution densely.
type denseOracle struct {
	T *Dense
}

func newDenseOracle(dim int, diagT float64) *denseOracle {
	return &denseOracle{T: NewDenseIdentity(dim, diagT)}
}

func (o *denseOracle) update(u, v *Vector) {
	o.T.AddOuter(1, u.Dense(), v.Dense())
}

func (o *denseOracle) inverse(t *testing.T) *Dense {
	t.Helper()
	inv, err := o.T.Invert()
	if err != nil {
		t.Fatalf("oracle inversion failed: %v", err)
	}
	return inv
}

// TestShermanMorrisonMatchesDenseInverse drives a Megh-shaped update sequence
// (u = e_a, v = e_a − γ·e_b) through both the sparse Sherman–Morrison path
// and a dense T accumulation + Gauss–Jordan oracle, and compares B to T⁻¹.
func TestShermanMorrisonMatchesDenseInverse(t *testing.T) {
	const dim = 10
	const gamma = 0.5
	r := rand.New(rand.NewSource(11))
	delta := float64(dim)
	b := NewMatrix(dim, 1/delta)
	oracle := newDenseOracle(dim, delta)
	for step := 0; step < 60; step++ {
		a := r.Intn(dim)
		nb := r.Intn(dim)
		u := Basis(dim, a)
		v := Basis(dim, a)
		v.Add(nb, -gamma)
		if _, err := b.ShermanMorrison(u, v); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		oracle.update(u, v)
		inv := oracle.inverse(t)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if d := math.Abs(b.Get(i, j) - inv.Get(i, j)); d > 1e-8 {
					t.Fatalf("step %d: B[%d,%d] = %g, dense inverse = %g (|Δ| = %g)",
						step, i, j, b.Get(i, j), inv.Get(i, j), d)
				}
			}
		}
	}
}

func TestShermanMorrisonSingularRejected(t *testing.T) {
	// With B = I and v = -u (unit u), denominator 1 + vᵀBu = 0.
	b := NewMatrix(3, 1)
	u := Basis(3, 0)
	v := Basis(3, 0)
	v.Scale(-1)
	_, err := b.ShermanMorrison(u, v)
	if !errors.Is(err, ErrSingularUpdate) {
		t.Fatalf("err = %v, want ErrSingularUpdate", err)
	}
	// Matrix must be unchanged.
	if b.Get(0, 0) != 1 || b.NNZ() != 0 {
		t.Fatal("matrix mutated by rejected singular update")
	}
}

// Property: for random Megh-shaped updates, B·T ≈ I.
func TestQuickShermanMorrisonInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const dim = 8
		const gamma = 0.5
		b := NewMatrix(dim, 1.0/dim)
		tm := NewDenseIdentity(dim, float64(dim))
		for step := 0; step < 25; step++ {
			a, nb := r.Intn(dim), r.Intn(dim)
			u := Basis(dim, a)
			v := Basis(dim, a)
			v.Add(nb, -gamma)
			if _, err := b.ShermanMorrison(u, v); err != nil {
				return true // singular update legitimately skipped
			}
			tm.AddOuter(1, u.Dense(), v.Dense())
		}
		// Check B·T ≈ I.
		for i := 0; i < dim; i++ {
			col := make([]float64, dim)
			for k := 0; k < dim; k++ {
				col[k] = tm.Get(k, i)
			}
			bt := make([]float64, dim)
			for r2 := 0; r2 < dim; r2++ {
				var s float64
				for k := 0; k < dim; k++ {
					s += b.Get(r2, k) * col[k]
				}
				bt[r2] = s
			}
			for r2 := 0; r2 < dim; r2++ {
				want := 0.0
				if r2 == i {
					want = 1.0
				}
				if math.Abs(bt[r2]-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	m := NewMatrix(3, 1)
	cases := []func(){
		func() { m.Get(3, 0) },
		func() { m.Set(0, -1, 1) },
		func() { m.Row(5) },
		func() { m.Col(-2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNNZCountsMaterializedOnly(t *testing.T) {
	m := NewMatrix(100, 0.01)
	if m.NNZ() != 0 {
		t.Fatalf("fresh NNZ = %d", m.NNZ())
	}
	m.Set(1, 2, 5)
	m.Set(3, 3, 7)
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	m.Set(1, 2, 0)
	if m.NNZ() != 1 {
		t.Fatalf("NNZ after delete = %d, want 1", m.NNZ())
	}
}

// BenchmarkShermanMorrisonMeghShape measures the production update path:
// the structure-exploiting basis kernel (u = e_a, v = e_a − γ·e_b) that
// Megh.update drives once per completed transition.
func BenchmarkShermanMorrisonMeghShape(b *testing.B) {
	const dim = 1 << 16
	m := NewMatrix(dim, 1.0/float64(dim))
	// The drop tolerance Megh configures in production: without it the
	// fill-in cascade makes each update progressively slower (that
	// contrast is measured by BenchmarkAblationDropTolerance* at the
	// repository root).
	m.SetDropTolerance(1e-9 / float64(dim))
	r := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, nb := r.Intn(dim), r.Intn(dim)
		if _, err := m.ShermanMorrisonBasis(a, nb, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShermanMorrisonGeneric runs the same update sequence through the
// fully general rank-1 path (basis vectors materialised, MulVec/VecMul
// products, per-entry Add). The gap to BenchmarkShermanMorrisonMeghShape is
// what the specialised kernel buys.
func BenchmarkShermanMorrisonGeneric(b *testing.B) {
	const dim = 1 << 16
	m := NewMatrix(dim, 1.0/float64(dim))
	m.SetDropTolerance(1e-9 / float64(dim))
	r := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, nb := r.Intn(dim), r.Intn(dim)
		u := Basis(dim, a)
		v := Basis(dim, a)
		v.Add(nb, -0.5)
		if _, err := m.ShermanMorrison(u, v); err != nil {
			b.Fatal(err)
		}
	}
}
