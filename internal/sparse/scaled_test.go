package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// The scaled kernel at scale 1 must be *bitwise* the unscaled kernel: the
// exact-mode learner path goes through ShermanMorrisonBasisScaled with
// scale = 1.0, and multiplying by exactly 1.0 is an IEEE-754 identity, so
// historical byte-identical traces and checkpoints must be preserved.
func TestShermanMorrisonBasisScaledOneIsBitwiseUnscaled(t *testing.T) {
	const dim = 16
	const gamma = 0.9
	for _, tol := range []float64{0, 1e-7} {
		r := rand.New(rand.NewSource(7))
		ms := randomSeedMatrix(rand.New(rand.NewSource(3)), dim, 1.0/dim, tol)
		mu := randomSeedMatrix(rand.New(rand.NewSource(3)), dim, 1.0/dim, tol)
		for it := 0; it < 300; it++ {
			a, b := r.Intn(dim), r.Intn(dim)
			if it%17 == 0 {
				b = a
			}
			ds, es := ms.ShermanMorrisonBasisScaled(a, b, gamma, 1)
			du, eu := mu.ShermanMorrisonBasis(a, b, gamma)
			if (es == nil) != (eu == nil) {
				t.Fatalf("tol %g it %d: error mismatch %v vs %v", tol, it, es, eu)
			}
			if ds != du {
				t.Fatalf("tol %g it %d: denominator %v vs %v", tol, it, ds, du)
			}
			sD, uD := ms.Dense(), mu.Dense()
			for i := range sD {
				for j := range sD[i] {
					if sD[i][j] != uD[i][j] {
						t.Fatalf("tol %g it %d: (%d,%d) scaled %v unscaled %v",
							tol, it, i, j, sD[i][j], uD[i][j])
					}
				}
			}
		}
		checkMatrixInvariants(t, ms)
		checkMatrixInvariants(t, mu)
	}
}

// The scaled kernel must agree with the generic Sherman–Morrison path fed
// the equivalent scaled direction v = n·(e_a − γ·e_b) across random
// multiplicities, self-transitions included: identical error decisions,
// denominators and entries within a tight tolerance (the two paths
// associate the scale multiplications differently, so exact bitwise
// equality only holds at n = 1 — pinned separately above — and the
// ulp-level differences compound as the sequences evolve).
func TestShermanMorrisonBasisScaledMatchesGeneric(t *testing.T) {
	const dim = 16
	const gamma = 0.9
	for _, tol := range []float64{0, 1e-7} {
		r := rand.New(rand.NewSource(11))
		mk := randomSeedMatrix(rand.New(rand.NewSource(5)), dim, 1.0/dim, tol)
		mg := randomSeedMatrix(rand.New(rand.NewSource(5)), dim, 1.0/dim, tol)
		for it := 0; it < 300; it++ {
			a, b := r.Intn(dim), r.Intn(dim)
			if it%17 == 0 {
				b = a
			}
			n := float64(1 + r.Intn(64))
			u := Basis(dim, a)
			v := Basis(dim, a)
			v.Scale(n)
			v.Add(b, -n*gamma)
			dk, ek := mk.ShermanMorrisonBasisScaled(a, b, gamma, n)
			dg, eg := mg.ShermanMorrison(u, v)
			if (ek == nil) != (eg == nil) {
				t.Fatalf("tol %g it %d: error mismatch %v vs %v", tol, it, ek, eg)
			}
			if math.Abs(dk-dg) > 1e-9*math.Max(1, math.Abs(dg)) {
				t.Fatalf("tol %g it %d: denominator %v vs %v", tol, it, dk, dg)
			}
			kD, gD := mk.Dense(), mg.Dense()
			for i := range kD {
				for j := range kD[i] {
					rel := math.Max(1, math.Abs(gD[i][j]))
					if math.Abs(kD[i][j]-gD[i][j]) > 1e-9*rel {
						t.Fatalf("tol %g it %d n %g: (%d,%d) kernel %v generic %v",
							tol, it, n, i, j, kD[i][j], gD[i][j])
					}
				}
			}
		}
		checkMatrixInvariants(t, mk)
		checkMatrixInvariants(t, mg)
	}
}

// One scale-n update is the amortisation of n identical transitions: it
// must land (numerically) where n sequential unscaled updates land, and
// both must track the dense Gauss–Jordan inverse of the accumulated T.
func TestShermanMorrisonBasisScaledMatchesRepeated(t *testing.T) {
	const dim = 10
	const gamma = 0.5
	r := rand.New(rand.NewSource(29))
	delta := float64(dim)
	merged := NewMatrix(dim, 1/delta)
	repeated := NewMatrix(dim, 1/delta)
	oracle := newDenseOracle(dim, delta)
	for step := 0; step < 40; step++ {
		a := r.Intn(dim)
		b := r.Intn(dim)
		if step%11 == 0 {
			b = a
		}
		n := 1 + r.Intn(8)
		if _, err := merged.ShermanMorrisonBasisScaled(a, b, gamma, float64(n)); err != nil {
			t.Fatalf("step %d: merged: %v", step, err)
		}
		for i := 0; i < n; i++ {
			if _, err := repeated.ShermanMorrisonBasis(a, b, gamma); err != nil {
				t.Fatalf("step %d rep %d: %v", step, i, err)
			}
			u := Basis(dim, a)
			v := Basis(dim, a)
			v.Add(b, -gamma)
			oracle.update(u, v)
		}
		inv := oracle.inverse(t)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if d := math.Abs(merged.Get(i, j) - repeated.Get(i, j)); d > 1e-9 {
					t.Fatalf("step %d: (%d,%d) merged %g vs repeated %g (|Δ| = %g)",
						step, i, j, merged.Get(i, j), repeated.Get(i, j), d)
				}
				if d := math.Abs(merged.Get(i, j) - inv.Get(i, j)); d > 1e-9 {
					t.Fatalf("step %d: B[%d,%d] = %g, dense inverse = %g (|Δ| = %g)",
						step, i, j, merged.Get(i, j), inv.Get(i, j), d)
				}
			}
		}
	}
	checkMatrixInvariants(t, merged)
	checkMatrixInvariants(t, repeated)
}

// Degenerate scales are programming errors, not recoverable states: the
// kernel must refuse them and leave the matrix untouched.
func TestShermanMorrisonBasisScaledRejectsBadScale(t *testing.T) {
	for _, scale := range []float64{0, math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := NewMatrix(4, 0.25)
		before := m.Dense()
		if _, err := m.ShermanMorrisonBasisScaled(1, 2, 0.9, scale); err == nil {
			t.Fatalf("scale %v accepted", scale)
		}
		after := m.Dense()
		for i := range before {
			for j := range before[i] {
				if before[i][j] != after[i][j] {
					t.Fatalf("scale %v mutated the matrix at (%d,%d)", scale, i, j)
				}
			}
		}
	}
}
