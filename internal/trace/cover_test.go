package trace

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestNewFileSinkRoundTrip exercises the Path-backed sink: events written
// through a file tracer must read back with ReadFile, Close must flush and
// release the file, and a second Close must be a no-op.
func TestNewFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	tr, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	ev := sampleDecideEvent()
	tr.Emit(&ev)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	evs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != ev.Kind || evs[0].Step != ev.Step {
		t.Fatalf("read back %+v", evs)
	}
}

func TestNewRejectsUnwritablePath(t *testing.T) {
	if _, err := New(Options{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")}); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}

// TestNewStdoutSink pins the "-" convention. The 64 KiB buffer is never
// flushed here, so nothing actually reaches the test's stdout.
func TestNewStdoutSink(t *testing.T) {
	tr, err := New(Options{Path: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.w == nil {
		t.Fatal("stdout sink not installed")
	}
	if tr.closer != nil {
		t.Fatal("stdout must not get a closer")
	}
	ev := sampleDecideEvent()
	tr.Emit(&ev)
	if tr.Events() != 1 {
		t.Fatalf("events = %d", tr.Events())
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadRejectsKindlessEvent(t *testing.T) {
	_, err := Read(strings.NewReader("{\"step\":3}\n"))
	if err == nil || !strings.Contains(err.Error(), "no kind") {
		t.Fatalf("err = %v", err)
	}
}

// TestTracerWithoutRing: RingSize < 0 disables the tail buffer entirely;
// Tail and Flush must degrade to no-ops, not nil-dereference.
func TestTracerWithoutRing(t *testing.T) {
	tr, err := New(Options{RingSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ev := sampleDecideEvent()
	tr.Emit(&ev)
	if got := tr.Tail(4); got != nil {
		t.Fatalf("Tail on ring-less tracer = %v", got)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush on writer-less tracer: %v", err)
	}
}

func TestRingTailEmpty(t *testing.T) {
	if got := newRing(4).tail(3); got != nil {
		t.Fatalf("tail of empty ring = %v", got)
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelDebug: "debug", LevelInfo: "info", LevelWarn: "warn", LevelError: "error",
		Level(42): "level(42)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int32(l), got, want)
		}
	}
}

func TestLoggerNilSinkAndSetLevel(t *testing.T) {
	lg := NewLogger(nil, LevelError) // nil writer falls back to stderr
	if lg.Enabled(LevelInfo) {
		t.Fatal("info enabled at error threshold")
	}
	lg.SetLevel(LevelDebug)
	if !lg.Enabled(LevelDebug) {
		t.Fatal("SetLevel did not lower the threshold")
	}
	var nilLogger *Logger
	nilLogger.SetLevel(LevelDebug) // must not panic
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

// divergenceFields collects the Field labels a Diff produced.
func divergenceFields(d *DiffResult) map[string]bool {
	out := make(map[string]bool, len(d.Divergences))
	for _, dv := range d.Divergences {
		out[dv.Field] = true
	}
	return out
}

// TestDiffCoversEveryField perturbs each compared field in turn and checks
// the diff names it — the oracle meghtrace users rely on when bisecting a
// nondeterminism report.
func TestDiffCoversEveryField(t *testing.T) {
	base := func() []Event {
		return []Event{
			{Kind: KindDecide, Step: 0, Policy: "Megh", Temperature: 3, QTableNNZ: 10, Digest: "7",
				Candidates: []Candidate{
					{VM: 1, Reason: ReasonOverload, From: 0, Dest: 2, Feasible: 3,
						QChosen: -1, QBest: -1, QStay: -2},
				}},
			{Kind: KindStep, Step: 0, Digest: "7", StepCost: 5, EnergyCost: 3, SLACost: 2,
				ActiveHosts: 4, OverloadedHosts: 1,
				Executed: []Migration{{VM: 1, From: 0, Dest: 2, Reason: "overload"}},
				Rejected: []Migration{{VM: 3, From: 1, Dest: 0}}},
			{Kind: KindBatch, Step: 0, BatchItems: 4},
		}
	}
	cases := []struct {
		field  string
		mutate func(evs []Event)
	}{
		{"digest", func(e []Event) { e[0].Digest = "99" }},
		{"policy", func(e []Event) { e[0].Policy = "Other" }},
		{"temp", func(e []Event) { e[0].Temperature = 1 }},
		{"qtable_nnz", func(e []Event) { e[0].QTableNNZ = 11 }},
		{"candidates", func(e []Event) { e[0].Candidates = nil }},
		{"candidate[0]", func(e []Event) { e[0].Candidates[0].VM = 9 }},
		{"candidate[0].dest", func(e []Event) { e[0].Candidates[0].Dest = 9 }},
		{"candidate[0].feasible", func(e []Event) { e[0].Candidates[0].Feasible = 9 }},
		{"candidate[0].q", func(e []Event) { e[0].Candidates[0].QBest = 9 }},
		{"step_cost", func(e []Event) { e[1].StepCost = 9 }},
		{"energy_cost", func(e []Event) { e[1].EnergyCost = 9 }},
		{"sla_cost", func(e []Event) { e[1].SLACost = 9 }},
		{"active_hosts", func(e []Event) { e[1].ActiveHosts = 9 }},
		{"overloaded_hosts", func(e []Event) { e[1].OverloadedHosts = 9 }},
		{"executed", func(e []Event) { e[1].Executed = nil }},
		{"executed[0]", func(e []Event) { e[1].Executed[0].Dest = 9 }},
		{"rejected[0]", func(e []Event) { e[1].Rejected[0].VM = 9 }},
		{"batch_items", func(e []Event) { e[2].BatchItems = 9 }},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			a, b := base(), base()
			tc.mutate(b)
			res := Diff(a, b, 0)
			if res.Identical() {
				t.Fatal("mutation not detected")
			}
			if !divergenceFields(res)[tc.field] {
				t.Fatalf("divergences %+v do not name %q", res.Divergences, tc.field)
			}
		})
	}
}

func TestFormatMigrations(t *testing.T) {
	if got := formatMigrations(nil); got != "[]" {
		t.Fatalf("empty = %q", got)
	}
	got := formatMigrations([]Migration{
		{VM: 1, From: 0, Dest: 2, Reason: "overload"},
		{VM: 3, From: 2, Dest: 0},
	})
	want := "[vm1:0→2(overload) vm3:2→0]"
	if got != want {
		t.Fatalf("formatMigrations = %q, want %q", got, want)
	}
}
