package trace

import (
	"bytes"
	"encoding/json"
)

// ring is a bounded buffer of the most recent encoded events. It stores
// private copies of the encoded lines, so Tracer.buf can be reused
// across Emit calls. Callers hold the Tracer mutex.
type ring struct {
	lines [][]byte
	next  int
	full  bool
}

func newRing(size int) *ring {
	return &ring{lines: make([][]byte, size)}
}

// push stores a copy of one encoded line (trailing newline trimmed).
func (r *ring) push(line []byte) {
	line = bytes.TrimSuffix(line, []byte{'\n'})
	slot := r.lines[r.next]
	r.lines[r.next] = append(slot[:0], line...)
	r.next++
	if r.next == len(r.lines) {
		r.next = 0
		r.full = true
	}
}

// len reports how many events the ring currently holds.
func (r *ring) len() int {
	if r.full {
		return len(r.lines)
	}
	return r.next
}

// tail returns up to n of the most recent events, oldest first. The
// returned slices are copies, safe to retain after the lock is released.
func (r *ring) tail(n int) []json.RawMessage {
	have := r.len()
	if n <= 0 || n > have {
		n = have
	}
	if n == 0 {
		return nil
	}
	out := make([]json.RawMessage, 0, n)
	start := r.next - n
	if r.full && start < 0 {
		start += len(r.lines)
	}
	if start < 0 {
		start = 0
	}
	for i := 0; i < n; i++ {
		idx := (start + i) % len(r.lines)
		out = append(out, append(json.RawMessage(nil), r.lines[idx]...))
	}
	return out
}
