package trace

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel resolves a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("trace: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Logger is a small leveled logger for operational messages, so daemon
// chatter (restarts, checkpoints, shutdown) carries severities and stays
// on stderr, cleanly separated from the structured event stream on its
// own sink. A nil *Logger discards everything, mirroring the nil-Tracer
// convention.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
}

// NewLogger writes messages at or above min to w (nil w means stderr).
func NewLogger(w io.Writer, min Level) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{w: w, min: min}
}

// Enabled reports whether a message at l would be written.
func (lg *Logger) Enabled(l Level) bool {
	if lg == nil {
		return false
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return l >= lg.min
}

// SetLevel changes the threshold at runtime.
func (lg *Logger) SetLevel(l Level) {
	if lg == nil {
		return
	}
	lg.mu.Lock()
	lg.min = l
	lg.mu.Unlock()
}

func (lg *Logger) logf(l Level, format string, args ...any) {
	if lg == nil {
		return
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if l < lg.min {
		return
	}
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	fmt.Fprintf(lg.w, "%s %-5s %s\n", ts, l.String(), fmt.Sprintf(format, args...))
}

// Debugf logs at LevelDebug.
func (lg *Logger) Debugf(format string, args ...any) { lg.logf(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (lg *Logger) Infof(format string, args ...any) { lg.logf(LevelInfo, format, args...) }

// Warnf logs at LevelWarn.
func (lg *Logger) Warnf(format string, args ...any) { lg.logf(LevelWarn, format, args...) }

// Errorf logs at LevelError.
func (lg *Logger) Errorf(format string, args ...any) { lg.logf(LevelError, format, args...) }
