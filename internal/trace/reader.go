package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Read decodes a JSONL event stream. Blank lines are skipped; a
// malformed line aborts with its 1-based line number so truncated traces
// are diagnosable.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if ev.Kind == "" {
			return nil, fmt.Errorf("trace: line %d: event has no kind", line)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return out, nil
}

// ReadFile decodes the JSONL trace at path.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}
