// Package trace is the reproduction's decision-tracing layer: a
// zero-dependency structured event log that records one event per
// simulator step and per Megh decision, so the question "why did Megh
// migrate this VM at this step?" has a replayable, diffable answer —
// the per-decision interpretability that aggregate metrics (internal/obs)
// cannot give.
//
// A Tracer fans each Event out to two sinks: an optional JSONL stream
// (buffered writer over a file or any io.Writer) and an optional bounded
// in-memory ring for live inspection (meghd serves it at
// GET /v1/trace/tail). Events are encoded with a hand-rolled append-based
// JSON encoder so that (a) the enabled hot path stays cheap and (b) the
// byte output is a pure function of the event values — two runs with the
// same seed produce byte-identical traces, which is what makes
// `meghtrace diff` meaningful.
//
// Wall-clock span timings are opt-in (Options.Timings) precisely because
// they would break that byte-determinism; everything else in an event is
// derived from seeded computation.
//
// All methods on *Tracer are nil-safe: a nil Tracer is "tracing
// disabled" and every call is a cheap no-op, so call sites guard with a
// single pointer test and allocate nothing when disabled.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Event kinds.
const (
	// KindDecide is emitted by a policy (Megh) once per Decide call.
	KindDecide = "decide"
	// KindStep is emitted by the simulator (or meghd's feedback path)
	// once per completed τ-interval.
	KindStep = "step"
	// KindBatch is emitted by the server's batched decide path once per
	// POST /v2/sessions/{id}/decide/batch request, after the per-item
	// decide events. It records how many observe→decide items the request
	// carried, so analysis can amortize the request's wall time per item.
	KindBatch = "batch"
)

// Candidate reasons — why a VM entered the decision set.
const (
	ReasonOverload    = "overload"
	ReasonUnderload   = "underload"
	ReasonExploration = "exploration"
)

// Rejection reasons — why the simulator refused a requested migration.
const (
	RejectOutOfRange = "out-of-range"
	RejectDuplicate  = "duplicate"
	RejectInfeasible = "infeasible"
	RejectDeadVM     = "dead-vm"
)

// Span is one timed phase of the decide path (feature projection, Q
// lookup/sampling, Sherman–Morrison update). Present only when the
// tracer was built with Options.Timings.
type Span struct {
	Name  string `json:"name"`
	Nanos int64  `json:"ns"`
}

// Candidate records one VM the policy considered this step: why it was
// considered, where it was, where it was sent, and the Q-value context
// at choice time (cost-to-go estimates; lower is better).
type Candidate struct {
	VM int `json:"vm"`
	// Reason is one of ReasonOverload, ReasonUnderload, ReasonExploration.
	Reason string `json:"reason"`
	// From is the VM's host at decision time; Dest the sampled
	// destination (Dest == From means the stay action was chosen).
	From int `json:"from"`
	Dest int `json:"dest"`
	// Feasible is how many destinations (including stay) were feasible.
	Feasible int `json:"feasible"`
	// QChosen, QBest and QStay are θᵀφ for the chosen action, the
	// minimum over feasible actions, and the stay action.
	QChosen float64 `json:"q_chosen"`
	QBest   float64 `json:"q_best"`
	QStay   float64 `json:"q_stay"`
}

// Migration is one executed or rejected live-migration in a step event.
type Migration struct {
	VM   int `json:"vm"`
	From int `json:"from"`
	Dest int `json:"dest"`
	// Reason is set on rejected migrations (RejectOutOfRange, …).
	Reason string `json:"reason,omitempty"`
	// Seconds is the live-migration copy time for executed migrations.
	Seconds float64 `json:"seconds,omitempty"`
}

// Event is one trace record. Kind selects which field groups are
// populated: decide events carry the policy's view of the choice, step
// events carry the environment's account of what happened.
type Event struct {
	Kind string `json:"kind"`
	Step int    `json:"step"`

	// Digest fingerprints the placement + failure state (Digest64),
	// rendered as fixed-width hex so 64-bit values survive JSON.
	Digest string `json:"digest,omitempty"`

	// Decide fields.
	Policy      string      `json:"policy,omitempty"`
	Temperature float64     `json:"temp,omitempty"`
	QTableNNZ   int         `json:"qtable_nnz,omitempty"`
	Candidates  []Candidate `json:"candidates,omitempty"`
	Spans       []Span      `json:"spans,omitempty"`

	// Step fields.
	Executed []Migration `json:"executed,omitempty"`
	Rejected []Migration `json:"rejected,omitempty"`

	EnergyCost   float64 `json:"energy_cost,omitempty"`
	SLACost      float64 `json:"sla_cost,omitempty"`
	ResourceCost float64 `json:"resource_cost,omitempty"`
	StepCost     float64 `json:"step_cost,omitempty"`

	ActiveHosts     int `json:"active_hosts,omitempty"`
	OverloadedHosts int `json:"overloaded_hosts,omitempty"`
	FailedHosts     int `json:"failed_hosts,omitempty"`

	// Woken and Slept list hosts whose activity changed this step
	// (empty→running and running→empty respectively).
	Woken []int `json:"woken,omitempty"`
	Slept []int `json:"slept,omitempty"`

	// Arrived and Departed list VM slots whose lifecycle changed this
	// step, and LiveVMs the population after those changes. Only runs
	// with lifecycle events populate them, so fixed-population traces
	// stay byte-identical to the pre-lifecycle format.
	Arrived  []int `json:"arrived,omitempty"`
	Departed []int `json:"departed,omitempty"`
	LiveVMs  int   `json:"live_vms,omitempty"`

	// BatchItems is how many observe→decide items a batch event's request
	// carried (KindBatch only). With timings enabled DecideNanos holds the
	// whole request's decide wall time; per-item latency is the quotient.
	BatchItems int `json:"batch_items,omitempty"`

	// DecideNanos is the policy's wall time for this step; like Spans it
	// is only recorded when timings are enabled.
	DecideNanos int64 `json:"decide_ns,omitempty"`
}

// Options configures a Tracer.
type Options struct {
	// Path, when non-empty, appends events as JSON lines to this file
	// ("-" means stdout). The file is truncated on open.
	Path string
	// W, when non-nil, receives the JSONL stream instead of Path
	// (useful for tests and in-memory capture).
	W io.Writer
	// RingSize bounds the in-memory tail ring: 0 means DefaultRingSize,
	// negative disables the ring entirely.
	RingSize int
	// Timings enables wall-clock span recording. Off by default so that
	// same-seed runs produce byte-identical traces.
	Timings bool
}

// DefaultRingSize is the tail ring capacity when Options.RingSize is 0.
const DefaultRingSize = 256

// Tracer writes events to the configured sinks. Safe for concurrent use
// (one mutex serialises Emit; the decide path is single-goroutine in the
// simulator and lock-uncontended in meghd).
type Tracer struct {
	timings bool

	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	ring   *ring
	buf    []byte
	events uint64
}

// New builds a Tracer. With neither Path, W, nor a ring it still works
// (events are encoded and counted) but retains nothing; pass a nil
// *Tracer instead to disable tracing outright.
func New(o Options) (*Tracer, error) {
	t := &Tracer{timings: o.Timings}
	switch {
	case o.W != nil:
		t.w = bufio.NewWriterSize(o.W, 1<<16)
	case o.Path == "-":
		t.w = bufio.NewWriterSize(os.Stdout, 1<<16)
	case o.Path != "":
		f, err := os.Create(o.Path)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		t.w = bufio.NewWriterSize(f, 1<<16)
		t.closer = f
	}
	size := o.RingSize
	if size == 0 {
		size = DefaultRingSize
	}
	if size > 0 {
		t.ring = newRing(size)
	}
	return t, nil
}

// Enabled reports whether the tracer records anything; it is the
// nil-safe guard call sites use before building an Event.
func (t *Tracer) Enabled() bool { return t != nil }

// Timings reports whether wall-clock spans should be recorded.
func (t *Tracer) Timings() bool { return t != nil && t.timings }

// Emit encodes the event and appends it to the configured sinks. The
// event may be reused by the caller as soon as Emit returns.
func (t *Tracer) Emit(ev *Event) {
	if t == nil || ev == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = appendEventJSON(t.buf[:0], ev)
	t.buf = append(t.buf, '\n')
	t.events++
	if t.w != nil {
		_, _ = t.w.Write(t.buf)
	}
	if t.ring != nil {
		t.ring.push(t.buf)
	}
}

// Events returns how many events have been emitted.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Tail returns up to n of the most recent events, oldest first, as raw
// JSON objects (ready to embed in a JSON array response). A nil tracer
// or disabled ring yields nil.
func (t *Tracer) Tail(n int) []json.RawMessage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil {
		return nil
	}
	return t.ring.tail(n)
}

// Flush forces buffered bytes to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return nil
	}
	return t.w.Flush()
}

// Close flushes and closes the underlying file, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
		t.closer = nil
	}
	return err
}

// Digest64 fingerprints a placement + failure state with FNV-1a over the
// VM→host assignment and the failed-host set. It allocates nothing, so
// the decide path can call it per step.
func Digest64(step int, vmHost []int, hostFailed []bool) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(step))
	for _, v := range vmHost {
		mix(uint64(v))
	}
	for i, f := range hostFailed {
		if f {
			mix(uint64(i) | 1<<63)
		}
	}
	return h
}

// DigestString renders a Digest64 value in the fixed-width hex form the
// Event.Digest field carries. Hand-rolled (not fmt.Sprintf) to keep the
// enabled decide path at one allocation for the string itself.
func DigestString(d uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[d&0xf]
		d >>= 4
	}
	return string(b[:])
}
