package trace

import "strconv"

// appendEventJSON renders ev as one JSON object using append-style
// encoding: no reflection, no intermediate allocations beyond the
// caller's buffer, and byte-for-byte deterministic output (fields in
// declaration order, floats in strconv's shortest round-trip form).
// The field names match the struct's json tags so encoding/json can
// decode what this produces (reader.go relies on that).
func appendEventJSON(b []byte, ev *Event) []byte {
	b = append(b, `{"kind":`...)
	b = appendString(b, ev.Kind)
	b = append(b, `,"step":`...)
	b = strconv.AppendInt(b, int64(ev.Step), 10)
	if ev.Digest != "" {
		b = append(b, `,"digest":`...)
		b = appendString(b, ev.Digest)
	}
	if ev.Policy != "" {
		b = append(b, `,"policy":`...)
		b = appendString(b, ev.Policy)
	}
	if ev.Temperature != 0 {
		b = append(b, `,"temp":`...)
		b = appendFloat(b, ev.Temperature)
	}
	if ev.QTableNNZ != 0 {
		b = append(b, `,"qtable_nnz":`...)
		b = strconv.AppendInt(b, int64(ev.QTableNNZ), 10)
	}
	if len(ev.Candidates) > 0 {
		b = append(b, `,"candidates":[`...)
		for i := range ev.Candidates {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendCandidateJSON(b, &ev.Candidates[i])
		}
		b = append(b, ']')
	}
	if len(ev.Spans) > 0 {
		b = append(b, `,"spans":[`...)
		for i, s := range ev.Spans {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"name":`...)
			b = appendString(b, s.Name)
			b = append(b, `,"ns":`...)
			b = strconv.AppendInt(b, s.Nanos, 10)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if len(ev.Executed) > 0 {
		b = append(b, `,"executed":[`...)
		b = appendMigrationsJSON(b, ev.Executed)
		b = append(b, ']')
	}
	if len(ev.Rejected) > 0 {
		b = append(b, `,"rejected":[`...)
		b = appendMigrationsJSON(b, ev.Rejected)
		b = append(b, ']')
	}
	if ev.EnergyCost != 0 {
		b = append(b, `,"energy_cost":`...)
		b = appendFloat(b, ev.EnergyCost)
	}
	if ev.SLACost != 0 {
		b = append(b, `,"sla_cost":`...)
		b = appendFloat(b, ev.SLACost)
	}
	if ev.ResourceCost != 0 {
		b = append(b, `,"resource_cost":`...)
		b = appendFloat(b, ev.ResourceCost)
	}
	if ev.StepCost != 0 {
		b = append(b, `,"step_cost":`...)
		b = appendFloat(b, ev.StepCost)
	}
	if ev.ActiveHosts != 0 {
		b = append(b, `,"active_hosts":`...)
		b = strconv.AppendInt(b, int64(ev.ActiveHosts), 10)
	}
	if ev.OverloadedHosts != 0 {
		b = append(b, `,"overloaded_hosts":`...)
		b = strconv.AppendInt(b, int64(ev.OverloadedHosts), 10)
	}
	if ev.FailedHosts != 0 {
		b = append(b, `,"failed_hosts":`...)
		b = strconv.AppendInt(b, int64(ev.FailedHosts), 10)
	}
	if len(ev.Woken) > 0 {
		b = append(b, `,"woken":`...)
		b = appendInts(b, ev.Woken)
	}
	if len(ev.Slept) > 0 {
		b = append(b, `,"slept":`...)
		b = appendInts(b, ev.Slept)
	}
	if len(ev.Arrived) > 0 {
		b = append(b, `,"arrived":`...)
		b = appendInts(b, ev.Arrived)
	}
	if len(ev.Departed) > 0 {
		b = append(b, `,"departed":`...)
		b = appendInts(b, ev.Departed)
	}
	if ev.LiveVMs != 0 {
		b = append(b, `,"live_vms":`...)
		b = strconv.AppendInt(b, int64(ev.LiveVMs), 10)
	}
	if ev.BatchItems != 0 {
		b = append(b, `,"batch_items":`...)
		b = strconv.AppendInt(b, int64(ev.BatchItems), 10)
	}
	if ev.DecideNanos != 0 {
		b = append(b, `,"decide_ns":`...)
		b = strconv.AppendInt(b, ev.DecideNanos, 10)
	}
	return append(b, '}')
}

func appendCandidateJSON(b []byte, c *Candidate) []byte {
	b = append(b, `{"vm":`...)
	b = strconv.AppendInt(b, int64(c.VM), 10)
	b = append(b, `,"reason":`...)
	b = appendString(b, c.Reason)
	b = append(b, `,"from":`...)
	b = strconv.AppendInt(b, int64(c.From), 10)
	b = append(b, `,"dest":`...)
	b = strconv.AppendInt(b, int64(c.Dest), 10)
	b = append(b, `,"feasible":`...)
	b = strconv.AppendInt(b, int64(c.Feasible), 10)
	b = append(b, `,"q_chosen":`...)
	b = appendFloat(b, c.QChosen)
	b = append(b, `,"q_best":`...)
	b = appendFloat(b, c.QBest)
	b = append(b, `,"q_stay":`...)
	b = appendFloat(b, c.QStay)
	return append(b, '}')
}

func appendMigrationsJSON(b []byte, ms []Migration) []byte {
	for i := range ms {
		m := &ms[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"vm":`...)
		b = strconv.AppendInt(b, int64(m.VM), 10)
		b = append(b, `,"from":`...)
		b = strconv.AppendInt(b, int64(m.From), 10)
		b = append(b, `,"dest":`...)
		b = strconv.AppendInt(b, int64(m.Dest), 10)
		if m.Reason != "" {
			b = append(b, `,"reason":`...)
			b = appendString(b, m.Reason)
		}
		if m.Seconds != 0 {
			b = append(b, `,"seconds":`...)
			b = appendFloat(b, m.Seconds)
		}
		b = append(b, '}')
	}
	return b
}

func appendInts(b []byte, xs []int) []byte {
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return append(b, ']')
}

// appendFloat writes the shortest decimal that round-trips to the same
// float64 — deterministic and parseable by encoding/json.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendString writes a JSON string literal with the escaping subset the
// trace vocabulary needs (quotes, backslashes, control bytes). Event
// strings are policy names and fixed reason tokens, so the fast path is
// the plain append.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\t':
			b = append(b, '\\', 't')
		case '\r':
			b = append(b, '\\', 'r')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
