package trace

import (
	"strings"
	"testing"
)

func analyzeFixture() []Event {
	return []Event{
		{Kind: KindDecide, Step: 0, Policy: "Megh", Temperature: 3, QTableNNZ: 10,
			Candidates: []Candidate{
				{VM: 1, Reason: ReasonOverload, From: 0, Dest: 2, Feasible: 3},
				{VM: 2, Reason: ReasonUnderload, From: 3, Dest: 3, Feasible: 2},
			},
			Spans: []Span{{Name: "project", Nanos: 100}, {Name: "sample", Nanos: 50}}},
		{Kind: KindStep, Step: 0,
			Executed: []Migration{{VM: 1, From: 0, Dest: 2}},
			Rejected: []Migration{{VM: 5, From: 1, Dest: 9, Reason: RejectInfeasible}},
			StepCost: 2, EnergyCost: 1.5, SLACost: 0.5,
			Woken: []int{2}, DecideNanos: 900},
		{Kind: KindDecide, Step: 1, Policy: "Megh", Temperature: 2.9, QTableNNZ: 14,
			Candidates: []Candidate{
				{VM: 4, Reason: ReasonExploration, From: 2, Dest: 5, Feasible: 4},
			},
			Spans: []Span{{Name: "project", Nanos: 300}, {Name: "sample", Nanos: 70}}},
		{Kind: KindStep, Step: 1,
			Executed: []Migration{{VM: 4, From: 2, Dest: 5}},
			StepCost: 3, EnergyCost: 3,
			Slept: []int{2}, DecideNanos: 1100},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(analyzeFixture())
	if s.Events != 4 || s.DecideEvents != 2 || s.StepEvents != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.FirstStep != 0 || s.LastStep != 1 {
		t.Fatalf("step range [%d,%d]", s.FirstStep, s.LastStep)
	}
	if s.TotalCost != 5 || s.EnergyCost != 4.5 || s.SLACost != 0.5 {
		t.Fatalf("costs: %+v", s)
	}
	if s.Executed != 2 || s.Rejected != 1 {
		t.Fatalf("migrations: %+v", s)
	}
	if s.RejectedByReason[RejectInfeasible] != 1 {
		t.Fatalf("reject reasons: %v", s.RejectedByReason)
	}
	if s.CandidatesByReason[ReasonOverload] != 1 ||
		s.CandidatesByReason[ReasonUnderload] != 1 ||
		s.CandidatesByReason[ReasonExploration] != 1 {
		t.Fatalf("candidate reasons: %v", s.CandidatesByReason)
	}
	if s.StayChosen != 1 {
		t.Fatalf("stay chosen = %d", s.StayChosen)
	}
	if s.MigrationsByCause[ReasonOverload] != 1 || s.MigrationsByCause[ReasonExploration] != 1 {
		t.Fatalf("migration causes: %v", s.MigrationsByCause)
	}
	if s.WokenHosts != 1 || s.SleptHosts != 1 {
		t.Fatalf("transitions: woken=%d slept=%d", s.WokenHosts, s.SleptHosts)
	}
	if s.FinalQTableNNZ != 14 || s.FinalTemperature != 2.9 {
		t.Fatalf("final learner state: %+v", s)
	}
	if len(s.Spans) != 2 || s.Spans[0].Name != "project" || s.Spans[0].Count != 2 {
		t.Fatalf("spans: %+v", s.Spans)
	}
	if s.Spans[0].Max != 300 || s.Spans[0].Total != 400 {
		t.Fatalf("project span stats: %+v", s.Spans[0])
	}
	if s.DecideTotal.Count != 2 || s.DecideTotal.Max != 1100 {
		t.Fatalf("decide total: %+v", s.DecideTotal)
	}
}

func TestSummarizeBatchAware(t *testing.T) {
	events := append(analyzeFixture(),
		Event{Kind: KindBatch, Step: 1, BatchItems: 2, DecideNanos: 2000},
		Event{Kind: KindBatch, Step: 3, BatchItems: 4, DecideNanos: 2000},
		// Untimed batch marker: counted, but contributes no latency sample.
		Event{Kind: KindBatch, Step: 5, BatchItems: 3},
	)
	s := Summarize(events)
	if s.BatchEvents != 3 || s.BatchItems != 9 {
		t.Fatalf("batch counts: events=%d items=%d", s.BatchEvents, s.BatchItems)
	}
	if s.Events != 7 || s.LastStep != 5 {
		t.Fatalf("totals: events=%d last=%d", s.Events, s.LastStep)
	}
	// Per-item amortization: 2000/2=1000 and 2000/4=500.
	if s.BatchPerItem.Name != "decide/item" || s.BatchPerItem.Count != 2 {
		t.Fatalf("per-item stat: %+v", s.BatchPerItem)
	}
	if s.BatchPerItem.Max != 1000 || s.BatchPerItem.Total != 1500 {
		t.Fatalf("per-item amortized samples: %+v", s.BatchPerItem)
	}
	// Decide-event stats are untouched by batch markers.
	if s.DecideEvents != 2 || s.DecideTotal.Count != 2 {
		t.Fatalf("decide stats changed: %+v", s)
	}
}

func TestDiffBatchItems(t *testing.T) {
	a := []Event{{Kind: KindBatch, Step: 2, BatchItems: 3, DecideNanos: 111}}
	b := []Event{{Kind: KindBatch, Step: 2, BatchItems: 5, DecideNanos: 999}}
	res := Diff(a, b, 0)
	if len(res.Divergences) != 1 || res.Divergences[0].Field != "batch_items" {
		t.Fatalf("divergences: %+v", res.Divergences)
	}
	// Timing-only differences must not diverge.
	b[0].BatchItems = 3
	if res := Diff(a, b, 0); !res.Identical() {
		t.Fatalf("timing-only batch diff diverged: %+v", res.Divergences)
	}
}

func TestSpanStatPercentiles(t *testing.T) {
	samples := make([]int64, 100)
	for i := range samples {
		samples[i] = int64(i + 1) // 1..100
	}
	st := spanStat("x", samples)
	if st.P50 != 50 || st.P90 != 90 || st.P99 != 99 || st.Max != 100 {
		t.Fatalf("percentiles: %+v", st)
	}
	empty := spanStat("y", nil)
	if empty.Count != 0 || empty.Max != 0 {
		t.Fatalf("empty stat: %+v", empty)
	}
}

func TestDiffIdentical(t *testing.T) {
	a, b := analyzeFixture(), analyzeFixture()
	res := Diff(a, b, 0)
	if !res.Identical() {
		t.Fatalf("identical traces diverge: %+v", res.Divergences)
	}
	if res.Compared != 4 || res.FirstStep() != -1 {
		t.Fatalf("compared=%d first=%d", res.Compared, res.FirstStep())
	}
}

func TestDiffFindsDivergence(t *testing.T) {
	a, b := analyzeFixture(), analyzeFixture()
	b[2].Candidates[0].Dest = 7 // different chosen action at step 1
	b[3].Executed[0].Dest = 7   // and a different executed migration
	b[3].StepCost = 9           // and cost
	res := Diff(a, b, 0)
	if res.Identical() {
		t.Fatal("divergence not detected")
	}
	if res.FirstStep() != 1 {
		t.Fatalf("first divergent step = %d, want 1", res.FirstStep())
	}
	var fields []string
	for _, d := range res.Divergences {
		fields = append(fields, d.Field)
	}
	joined := strings.Join(fields, ",")
	for _, want := range []string{"candidate[0].dest", "executed[0]", "step_cost"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing divergence %q in %v", want, fields)
		}
	}
}

func TestDiffMissingEvents(t *testing.T) {
	a := analyzeFixture()
	b := analyzeFixture()[:2] // b lost step 1
	res := Diff(a, b, 0)
	if res.Identical() {
		t.Fatal("missing events must count as divergence")
	}
	if res.MissingInB != 2 || res.MissingInA != 0 {
		t.Fatalf("missing: a=%d b=%d", res.MissingInA, res.MissingInB)
	}
}

func TestDiffTruncation(t *testing.T) {
	a, b := analyzeFixture(), analyzeFixture()
	b[0].Temperature = 9
	b[0].QTableNNZ = 99
	b[2].Temperature = 9
	res := Diff(a, b, 1)
	if len(res.Divergences) != 1 || !res.Truncated {
		t.Fatalf("truncation: %+v", res)
	}
}
