package trace

import (
	"fmt"
	"sort"
)

// SpanStat summarises one named phase's latency distribution across a
// trace, in nanoseconds.
type SpanStat struct {
	Name  string
	Count int
	P50   int64
	P90   int64
	P99   int64
	Max   int64
	Total int64
}

// Summary aggregates one trace: what the run cost, why VMs moved, and —
// when the trace carries timings — where the decide path spent its time.
type Summary struct {
	Events       int
	DecideEvents int
	StepEvents   int
	BatchEvents  int
	FirstStep    int
	LastStep     int

	// BatchItems is the total number of observe→decide items carried by
	// batch events — the denominator for per-item amortization.
	BatchItems int

	TotalCost    float64
	EnergyCost   float64
	SLACost      float64
	ResourceCost float64

	Executed         int
	Rejected         int
	RejectedByReason map[string]int

	// Candidate accounting from decide events: how often each selection
	// cause fired, and how many candidates chose to stay put.
	CandidatesByReason map[string]int
	StayChosen         int

	// MigrationsByCause joins executed migrations (step events) to the
	// candidate reason that proposed them, keyed by (step, vm).
	MigrationsByCause map[string]int

	WokenHosts int
	SleptHosts int

	FinalQTableNNZ   int
	FinalTemperature float64

	// Spans holds per-phase latency stats; DecideTotal the whole-call
	// distribution. Both are zero-valued when the trace has no timings.
	Spans       []SpanStat
	DecideTotal SpanStat

	// BatchPerItem is the per-item amortized decide latency from batch
	// events (request wall time ÷ items in that request), so batched and
	// single-decide runs compare on equal footing. Zero-valued when the
	// trace has no timed batch events.
	BatchPerItem SpanStat
}

// Summarize aggregates a decoded trace.
func Summarize(events []Event) *Summary {
	s := &Summary{
		FirstStep:          -1,
		RejectedByReason:   map[string]int{},
		CandidatesByReason: map[string]int{},
		MigrationsByCause:  map[string]int{},
	}
	spanSamples := map[string][]int64{}
	var spanOrder []string
	var decideSamples []int64
	var batchItemSamples []int64
	// cause[(step,vm)] = candidate reason, filled from decide events and
	// consumed by the same step's executed migrations.
	cause := map[[2]int]string{}

	for i := range events {
		ev := &events[i]
		s.Events++
		if s.FirstStep < 0 || ev.Step < s.FirstStep {
			s.FirstStep = ev.Step
		}
		if ev.Step > s.LastStep {
			s.LastStep = ev.Step
		}
		switch ev.Kind {
		case KindDecide:
			s.DecideEvents++
			for j := range ev.Candidates {
				c := &ev.Candidates[j]
				s.CandidatesByReason[c.Reason]++
				if c.Dest == c.From {
					s.StayChosen++
				} else {
					cause[[2]int{ev.Step, c.VM}] = c.Reason
				}
			}
			for _, sp := range ev.Spans {
				if _, ok := spanSamples[sp.Name]; !ok {
					spanOrder = append(spanOrder, sp.Name)
				}
				spanSamples[sp.Name] = append(spanSamples[sp.Name], sp.Nanos)
			}
			if ev.QTableNNZ != 0 {
				s.FinalQTableNNZ = ev.QTableNNZ
			}
			if ev.Temperature != 0 {
				s.FinalTemperature = ev.Temperature
			}
		case KindStep:
			s.StepEvents++
			s.TotalCost += ev.StepCost
			s.EnergyCost += ev.EnergyCost
			s.SLACost += ev.SLACost
			s.ResourceCost += ev.ResourceCost
			s.Executed += len(ev.Executed)
			s.Rejected += len(ev.Rejected)
			for _, m := range ev.Rejected {
				reason := m.Reason
				if reason == "" {
					reason = "unknown"
				}
				s.RejectedByReason[reason]++
			}
			for _, m := range ev.Executed {
				reason, ok := cause[[2]int{ev.Step, m.VM}]
				if !ok {
					reason = "unattributed"
				}
				s.MigrationsByCause[reason]++
			}
			s.WokenHosts += len(ev.Woken)
			s.SleptHosts += len(ev.Slept)
			if ev.DecideNanos > 0 {
				decideSamples = append(decideSamples, ev.DecideNanos)
			}
		case KindBatch:
			s.BatchEvents++
			s.BatchItems += ev.BatchItems
			if ev.DecideNanos > 0 && ev.BatchItems > 0 {
				// Amortize the request's wall time across its items so the
				// sample is comparable to a single decide's latency.
				batchItemSamples = append(batchItemSamples, ev.DecideNanos/int64(ev.BatchItems))
			}
		}
	}
	if s.FirstStep < 0 {
		s.FirstStep = 0
	}
	for _, name := range spanOrder {
		s.Spans = append(s.Spans, spanStat(name, spanSamples[name]))
	}
	s.DecideTotal = spanStat("decide", decideSamples)
	s.BatchPerItem = spanStat("decide/item", batchItemSamples)
	return s
}

func spanStat(name string, samples []int64) SpanStat {
	st := SpanStat{Name: name, Count: len(samples)}
	if len(samples) == 0 {
		return st
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) int64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	st.P50 = rank(0.50)
	st.P90 = rank(0.90)
	st.P99 = rank(0.99)
	st.Max = sorted[len(sorted)-1]
	for _, v := range sorted {
		st.Total += v
	}
	return st
}

// Divergence is one step where two traces disagree.
type Divergence struct {
	Step  int
	Kind  string
	Field string
	A, B  string
}

// DiffResult reports a step-by-step comparison of two traces. Timing
// fields (spans, decide_ns) are excluded — they differ between any two
// runs; the comparison targets decision behaviour.
type DiffResult struct {
	EventsA, EventsB int
	Compared         int
	// MissingInA / MissingInB count (kind, step) keys present in only
	// one trace.
	MissingInA, MissingInB int
	Divergences            []Divergence
	// Truncated marks that divergence collection stopped at the limit.
	Truncated bool
}

// Identical reports zero divergence: every compared step matched and
// neither trace had events the other lacked.
func (d *DiffResult) Identical() bool {
	return len(d.Divergences) == 0 && d.MissingInA == 0 && d.MissingInB == 0
}

// FirstStep returns the earliest divergent step, or -1 when identical.
func (d *DiffResult) FirstStep() int {
	first := -1
	for _, dv := range d.Divergences {
		if first < 0 || dv.Step < first {
			first = dv.Step
		}
	}
	return first
}

// Diff compares two decoded traces event by event, keyed by (kind,
// step). maxDivergences bounds the collected detail (≤ 0 means no
// bound); counting continues past the bound so totals stay truthful.
func Diff(a, b []Event, maxDivergences int) *DiffResult {
	res := &DiffResult{EventsA: len(a), EventsB: len(b)}
	type key struct {
		kind string
		step int
	}
	index := func(evs []Event) map[key]*Event {
		m := make(map[key]*Event, len(evs))
		for i := range evs {
			k := key{evs[i].Kind, evs[i].Step}
			if _, ok := m[k]; !ok {
				m[k] = &evs[i]
			}
		}
		return m
	}
	ia, ib := index(a), index(b)
	add := func(step int, kind, field string, va, vb any) {
		if maxDivergences > 0 && len(res.Divergences) >= maxDivergences {
			res.Truncated = true
			return
		}
		res.Divergences = append(res.Divergences, Divergence{
			Step: step, Kind: kind, Field: field,
			A: fmt.Sprint(va), B: fmt.Sprint(vb),
		})
	}
	// Walk a's events in order for stable reporting.
	seen := map[key]bool{}
	for i := range a {
		ea := &a[i]
		k := key{ea.Kind, ea.Step}
		if seen[k] {
			continue
		}
		seen[k] = true
		eb, ok := ib[k]
		if !ok {
			res.MissingInB++
			continue
		}
		res.Compared++
		diffEvent(ea, eb, add)
	}
	for i := range b {
		k := key{b[i].Kind, b[i].Step}
		if _, ok := ia[k]; !ok && !seen[k] {
			seen[k] = true
			res.MissingInA++
		}
	}
	return res
}

func diffEvent(a, b *Event, add func(step int, kind, field string, va, vb any)) {
	step, kind := a.Step, a.Kind
	if a.Digest != b.Digest {
		add(step, kind, "digest", a.Digest, b.Digest)
	}
	switch kind {
	case KindDecide:
		if a.Policy != b.Policy {
			add(step, kind, "policy", a.Policy, b.Policy)
		}
		if a.Temperature != b.Temperature {
			add(step, kind, "temp", a.Temperature, b.Temperature)
		}
		if a.QTableNNZ != b.QTableNNZ {
			add(step, kind, "qtable_nnz", a.QTableNNZ, b.QTableNNZ)
		}
		if len(a.Candidates) != len(b.Candidates) {
			add(step, kind, "candidates", len(a.Candidates), len(b.Candidates))
			return
		}
		for i := range a.Candidates {
			ca, cb := &a.Candidates[i], &b.Candidates[i]
			tag := fmt.Sprintf("candidate[%d]", i)
			switch {
			case ca.VM != cb.VM || ca.Reason != cb.Reason || ca.From != cb.From:
				add(step, kind, tag,
					fmt.Sprintf("vm=%d reason=%s from=%d", ca.VM, ca.Reason, ca.From),
					fmt.Sprintf("vm=%d reason=%s from=%d", cb.VM, cb.Reason, cb.From))
			case ca.Dest != cb.Dest:
				add(step, kind, tag+".dest", ca.Dest, cb.Dest)
			case ca.Feasible != cb.Feasible:
				add(step, kind, tag+".feasible", ca.Feasible, cb.Feasible)
			case ca.QChosen != cb.QChosen || ca.QBest != cb.QBest || ca.QStay != cb.QStay:
				add(step, kind, tag+".q",
					fmt.Sprintf("chosen=%g best=%g stay=%g", ca.QChosen, ca.QBest, ca.QStay),
					fmt.Sprintf("chosen=%g best=%g stay=%g", cb.QChosen, cb.QBest, cb.QStay))
			}
		}
	case KindStep:
		diffMigrations(step, kind, "executed", a.Executed, b.Executed, add)
		diffMigrations(step, kind, "rejected", a.Rejected, b.Rejected, add)
		if a.StepCost != b.StepCost {
			add(step, kind, "step_cost", a.StepCost, b.StepCost)
		}
		if a.EnergyCost != b.EnergyCost {
			add(step, kind, "energy_cost", a.EnergyCost, b.EnergyCost)
		}
		if a.SLACost != b.SLACost {
			add(step, kind, "sla_cost", a.SLACost, b.SLACost)
		}
		if a.ActiveHosts != b.ActiveHosts {
			add(step, kind, "active_hosts", a.ActiveHosts, b.ActiveHosts)
		}
		if a.OverloadedHosts != b.OverloadedHosts {
			add(step, kind, "overloaded_hosts", a.OverloadedHosts, b.OverloadedHosts)
		}
	case KindBatch:
		if a.BatchItems != b.BatchItems {
			add(step, kind, "batch_items", a.BatchItems, b.BatchItems)
		}
	}
}

func diffMigrations(step int, kind, field string, a, b []Migration, add func(step int, kind, field string, va, vb any)) {
	if len(a) != len(b) {
		add(step, kind, field, formatMigrations(a), formatMigrations(b))
		return
	}
	for i := range a {
		if a[i].VM != b[i].VM || a[i].From != b[i].From || a[i].Dest != b[i].Dest || a[i].Reason != b[i].Reason {
			add(step, kind, fmt.Sprintf("%s[%d]", field, i),
				formatMigration(a[i]), formatMigration(b[i]))
		}
	}
}

func formatMigration(m Migration) string {
	if m.Reason != "" {
		return fmt.Sprintf("vm%d:%d→%d(%s)", m.VM, m.From, m.Dest, m.Reason)
	}
	return fmt.Sprintf("vm%d:%d→%d", m.VM, m.From, m.Dest)
}

func formatMigrations(ms []Migration) string {
	if len(ms) == 0 {
		return "[]"
	}
	out := "["
	for i, m := range ms {
		if i > 0 {
			out += " "
		}
		out += formatMigration(m)
	}
	return out + "]"
}
