package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleDecideEvent() Event {
	return Event{
		Kind: KindDecide, Step: 7,
		Digest: DigestString(0xdeadbeef), Policy: "Megh",
		Temperature: 2.97, QTableNNZ: 41,
		Candidates: []Candidate{
			{VM: 3, Reason: ReasonOverload, From: 1, Dest: 2, Feasible: 5,
				QChosen: -0.25, QBest: -0.5, QStay: 0.125},
			{VM: 9, Reason: ReasonExploration, From: 4, Dest: 4, Feasible: 1},
		},
		Spans: []Span{{Name: "project", Nanos: 1200}, {Name: "update", Nanos: 800}},
	}
}

func sampleStepEvent() Event {
	return Event{
		Kind: KindStep, Step: 7,
		Digest:     DigestString(0xfeedface),
		Executed:   []Migration{{VM: 3, From: 1, Dest: 2, Seconds: 13.5}},
		Rejected:   []Migration{{VM: 9, From: 4, Dest: 0, Reason: RejectInfeasible}},
		EnergyCost: 0.31, SLACost: 0.07, ResourceCost: 0.01, StepCost: 0.39,
		ActiveHosts: 12, OverloadedHosts: 1, FailedHosts: 2,
		Woken: []int{2}, Slept: []int{5, 6}, DecideNanos: 4000,
	}
}

// The hand-rolled encoder must produce exactly what encoding/json can
// decode back into an equal Event — reader.go and meghtrace depend on it.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	batch := Event{Kind: KindBatch, Step: 7, BatchItems: 32, DecideNanos: 64000}
	for _, ev := range []Event{sampleDecideEvent(), sampleStepEvent(), batch, {Kind: KindStep, Step: 0}} {
		b := appendEventJSON(nil, &ev)
		var got Event
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("decoding %s: %v", b, err)
		}
		if !reflect.DeepEqual(ev, got) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v\njson: %s", ev, got, b)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	ev := sampleDecideEvent()
	a := appendEventJSON(nil, &ev)
	b := appendEventJSON(nil, &ev)
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not deterministic:\n%s\n%s", a, b)
	}
}

func TestAppendStringEscaping(t *testing.T) {
	cases := map[string]string{
		`plain`:        `"plain"`,
		`a"b`:          `"a\"b"`,
		`back\slash`:   `"back\\slash"`,
		"tab\tnl\n":    `"tab\tnl\n"`,
		"ctrl\x01byte": `"ctrl\u0001byte"`,
	}
	for in, want := range cases {
		if got := string(appendString(nil, in)); got != want {
			t.Errorf("appendString(%q) = %s, want %s", in, got, want)
		}
		var back string
		if err := json.Unmarshal(appendString(nil, in), &back); err != nil || back != in {
			t.Errorf("appendString(%q) does not round trip: %q, %v", in, back, err)
		}
	}
}

func TestTracerEmitAndRead(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(Options{W: &buf, RingSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	d, s := sampleDecideEvent(), sampleStepEvent()
	tr.Emit(&d)
	tr.Emit(&s)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind != KindDecide || events[1].Kind != KindStep {
		t.Fatalf("got %d events: %+v", len(events), events)
	}
	if !reflect.DeepEqual(events[0], d) || !reflect.DeepEqual(events[1], s) {
		t.Errorf("events do not survive the sink round trip")
	}
	if tr.Events() != 2 {
		t.Errorf("Events() = %d, want 2", tr.Events())
	}
}

func TestReadRejectsMalformedLine(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"kind\":\"step\",\"step\":1}\nnot json\n")); err == nil {
		t.Fatal("want error for malformed line")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name line 2: %v", err)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Timings() {
		t.Fatal("nil tracer must report disabled")
	}
	ev := sampleStepEvent()
	tr.Emit(&ev) // must not panic
	if got := tr.Tail(10); got != nil {
		t.Fatalf("nil tracer Tail = %v", got)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 0 {
		t.Fatal("nil tracer counted events")
	}
}

func TestRingWrapAndTail(t *testing.T) {
	tr, err := New(Options{RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tr.Emit(&Event{Kind: KindStep, Step: i})
	}
	tail := tr.Tail(0) // all retained
	if len(tail) != 4 {
		t.Fatalf("ring retained %d, want 4", len(tail))
	}
	for i, raw := range tail {
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatal(err)
		}
		if want := 6 + i; ev.Step != want {
			t.Errorf("tail[%d].Step = %d, want %d", i, ev.Step, want)
		}
	}
	if got := tr.Tail(2); len(got) != 2 {
		t.Fatalf("Tail(2) returned %d", len(got))
	} else {
		var ev Event
		_ = json.Unmarshal(got[1], &ev)
		if ev.Step != 9 {
			t.Errorf("Tail(2) newest step = %d, want 9", ev.Step)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	tr, _ := New(Options{RingSize: 8})
	tr.Emit(&Event{Kind: KindStep, Step: 1})
	tr.Emit(&Event{Kind: KindStep, Step: 2})
	tail := tr.Tail(100)
	if len(tail) != 2 {
		t.Fatalf("got %d events, want 2", len(tail))
	}
}

func TestDigest64(t *testing.T) {
	vmHost := []int{0, 1, 2, 1}
	failed := []bool{false, true, false}
	a := Digest64(3, vmHost, failed)
	if b := Digest64(3, vmHost, failed); a != b {
		t.Fatal("digest not deterministic")
	}
	if b := Digest64(4, vmHost, failed); a == b {
		t.Fatal("digest ignores step")
	}
	vmHost[3] = 2
	if b := Digest64(3, vmHost, failed); a == b {
		t.Fatal("digest ignores placement")
	}
	vmHost[3] = 1
	failed[1] = false
	if b := Digest64(3, vmHost, failed); a == b {
		t.Fatal("digest ignores failures")
	}
	if len(DigestString(1)) != 16 {
		t.Fatalf("DigestString not fixed width: %q", DigestString(1))
	}
}

func TestSpanRecorder(t *testing.T) {
	var rec SpanRecorder
	rec.Reset()
	rec.Mark("a")
	rec.Mark("b")
	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("spans = %+v", spans)
	}
	for _, s := range spans {
		if s.Nanos < 0 {
			t.Errorf("span %s has negative duration %d", s.Name, s.Nanos)
		}
	}
	rec.Reset()
	if len(rec.Spans()) != 0 {
		t.Fatal("Reset did not clear spans")
	}
	var nilRec *SpanRecorder
	nilRec.Reset()
	nilRec.Mark("x")
	if nilRec.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelWarn)
	lg.Debugf("d")
	lg.Infof("i")
	lg.Warnf("w %d", 1)
	lg.Errorf("e")
	out := buf.String()
	if strings.Contains(out, " d\n") || strings.Contains(out, " i\n") {
		t.Fatalf("sub-threshold messages written: %q", out)
	}
	if !strings.Contains(out, "warn  w 1") || !strings.Contains(out, "error e") {
		t.Fatalf("missing leveled output: %q", out)
	}
	lg.SetLevel(LevelDebug)
	if !lg.Enabled(LevelDebug) {
		t.Fatal("SetLevel did not lower threshold")
	}
	var nilLogger *Logger
	nilLogger.Infof("ignored") // must not panic
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("want error for unknown level")
	}
}
