package trace

import "time"

// maxSpans bounds a SpanRecorder; the decide path has three phases, the
// headroom is for future instrumentation.
const maxSpans = 8

// SpanRecorder measures consecutive phases of one operation with a
// fixed-size backing array, so recording allocates nothing. Usage:
//
//	rec.Reset()
//	… phase 1 …
//	rec.Mark("project")
//	… phase 2 …
//	rec.Mark("sample")
//	ev.Spans = rec.Spans()
//
// All methods are nil-safe: a nil *SpanRecorder ignores every call and
// returns no spans, so call sites need no timing-enabled branches.
type SpanRecorder struct {
	last  time.Time
	spans [maxSpans]Span
	n     int
}

// Reset starts a new measurement at the current time.
func (r *SpanRecorder) Reset() {
	if r == nil {
		return
	}
	r.n = 0
	r.last = time.Now()
}

// Mark closes the phase started by the previous Reset/Mark under the
// given name.
func (r *SpanRecorder) Mark(name string) {
	if r == nil || r.n >= maxSpans {
		return
	}
	now := time.Now()
	r.spans[r.n] = Span{Name: name, Nanos: now.Sub(r.last).Nanoseconds()}
	r.n++
	r.last = now
}

// Spans returns the recorded phases; the slice aliases the recorder's
// backing array and is valid until the next Reset.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans[:r.n]
}
