package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestSnapshotCloneCompleteness walks the Snapshot struct by reflection,
// fills every field with synthetic non-zero data, clones, and verifies the
// clone shares no mutable storage with the original. Unlike the hand-rolled
// deep-copy test, this one cannot go stale: a newly added field that Clone
// forgets (the silent-aliasing bug this PR's VMAlive field could have
// introduced) fails here without anyone updating the test, and a field of a
// kind the filler does not understand fails loudly instead of being skipped.
func TestSnapshotCloneCompleteness(t *testing.T) {
	// Unexported fields Clone intentionally shares (immutable interfaces).
	shared := map[string]bool{"migModel": true}

	orig := &Snapshot{}
	v := reflect.ValueOf(orig).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if !f.IsExported() {
			if !shared[f.Name] {
				t.Errorf("unexported field %s is neither filled nor allowlisted as shared; "+
					"decide whether Clone must copy it and update this test", f.Name)
			}
			continue
		}
		if err := fillField(v.Field(i), i); err != nil {
			t.Fatalf("field %s: %v — extend fillField for the new field kind", f.Name, err)
		}
	}

	c := orig.Clone()
	// Pristine reference, deep-copied by reflection — NOT by Clone. If the
	// reference were itself a Clone, a field Clone aliases would drift in
	// lockstep in both copies and the comparison below would never notice.
	want := reflect.New(tp).Elem()
	for i := 0; i < tp.NumField(); i++ {
		if !tp.Field(i).IsExported() {
			continue
		}
		want.Field(i).Set(deepCopyValue(v.Field(i)))
	}

	// Mutate every exported field of the original through reflection:
	// scalar fields get a different value, slices get every element (and
	// nested element) scribbled over.
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if !f.IsExported() {
			continue
		}
		scribbleField(t, v.Field(i), f.Name)
	}

	cv := reflect.ValueOf(c).Elem()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if !f.IsExported() {
			continue
		}
		if !reflect.DeepEqual(cv.Field(i).Interface(), want.Field(i).Interface()) {
			t.Errorf("field %s: clone changed when the original was mutated — Clone does not deep-copy it",
				f.Name)
		}
	}
}

// fillField populates one Snapshot field with non-zero synthetic data. The
// supported kinds cover the struct today; anything else errors so a new
// field of a new shape forces a conscious extension here.
func fillField(fv reflect.Value, salt int) error {
	switch fv.Kind() {
	case reflect.Int:
		fv.SetInt(int64(salt + 1))
	case reflect.Float64:
		fv.SetFloat(float64(salt) + 0.5)
	case reflect.Bool:
		fv.SetBool(true)
	case reflect.Slice:
		s := reflect.MakeSlice(fv.Type(), 2, 2)
		for k := 0; k < 2; k++ {
			if err := fillField(s.Index(k), salt+k+1); err != nil {
				return err
			}
		}
		fv.Set(s)
	case reflect.Struct:
		for k := 0; k < fv.NumField(); k++ {
			if !fv.Type().Field(k).IsExported() {
				continue
			}
			if err := fillField(fv.Field(k), salt+k+1); err != nil {
				return err
			}
		}
	case reflect.Interface:
		// Interface fields (power models, migration models) hold immutable
		// implementations shared by design; left nil.
	default:
		return fmt.Errorf("unsupported kind %s", fv.Kind())
	}
	return nil
}

// deepCopyValue returns a value equal to v that shares no mutable storage
// with it, for the kinds Snapshot uses. The independent reference copy for
// the aliasing check is built with this, never with Clone itself.
func deepCopyValue(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Slice:
		if v.IsNil() {
			return reflect.Zero(v.Type())
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for k := 0; k < v.Len(); k++ {
			out.Index(k).Set(deepCopyValue(v.Index(k)))
		}
		return out
	case reflect.Struct:
		out := reflect.New(v.Type()).Elem()
		for k := 0; k < v.NumField(); k++ {
			if v.Type().Field(k).IsExported() {
				out.Field(k).Set(deepCopyValue(v.Field(k)))
			}
		}
		return out
	default:
		return v
	}
}

// scribbleField overwrites the mutable storage a field reaches (slice
// elements, recursively) with different values, simulating the simulator's
// in-place reuse between steps. Scalar struct fields are reassigned too —
// harmless for value semantics, and it keeps the walk uniform.
func scribbleField(t *testing.T, fv reflect.Value, name string) {
	t.Helper()
	switch fv.Kind() {
	case reflect.Int:
		fv.SetInt(fv.Int() + 1000)
	case reflect.Float64:
		fv.SetFloat(fv.Float() + 1000)
	case reflect.Bool:
		fv.SetBool(!fv.Bool())
	case reflect.Slice:
		for k := 0; k < fv.Len(); k++ {
			scribbleField(t, fv.Index(k), name)
		}
	case reflect.Struct:
		for k := 0; k < fv.NumField(); k++ {
			if fv.Type().Field(k).IsExported() {
				scribbleField(t, fv.Field(k), name)
			}
		}
	case reflect.Interface:
		// Shared by design (see fillField); nothing to scribble.
	default:
		t.Fatalf("field %s: unsupported kind %s in scribble — extend the test", name, fv.Kind())
	}
}
