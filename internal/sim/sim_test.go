package sim

import (
	"math"
	"testing"

	"megh/internal/cost"
	"megh/internal/obs"
	"megh/internal/power"
	"megh/internal/workload"
)

// nopPolicy never migrates.
type nopPolicy struct{}

func (nopPolicy) Name() string                 { return "nop" }
func (nopPolicy) Decide(*Snapshot) []Migration { return nil }

// scriptPolicy replays a fixed schedule of migrations keyed by step and
// records the feedback it receives.
type scriptPolicy struct {
	script   map[int][]Migration
	feedback []*Feedback
}

func (s *scriptPolicy) Name() string { return "script" }

func (s *scriptPolicy) Decide(snap *Snapshot) []Migration {
	return s.script[snap.Step]
}

func (s *scriptPolicy) Observe(fb *Feedback) { s.feedback = append(s.feedback, fb) }

var (
	_ Policy           = nopPolicy{}
	_ Policy           = (*scriptPolicy)(nil)
	_ FeedbackReceiver = (*scriptPolicy)(nil)
)

// testConfig builds a tiny deterministic world: 3 hosts, 2 VMs, flat traces.
func testConfig(t *testing.T, traces []workload.Trace) Config {
	t.Helper()
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	host := HostSpec{MIPS: 1000, RAMMB: 4096, BandwidthMbps: 1000, Power: lin}
	vm := VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
	return Config{
		Hosts:            []HostSpec{host, host, host},
		VMs:              []VMSpec{vm, vm},
		Traces:           traces,
		Steps:            len(traces[0]),
		InitialPlacement: PlacementRoundRobin,
	}
}

func TestConfigValidation(t *testing.T) {
	lin, _ := power.NewLinear("test", 100, 200)
	host := HostSpec{MIPS: 1000, RAMMB: 4096, BandwidthMbps: 1000, Power: lin}
	vm := VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
	tr := workload.Trace{0.5}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no hosts", Config{VMs: []VMSpec{vm}, Traces: []workload.Trace{tr}}},
		{"no vms", Config{Hosts: []HostSpec{host}}},
		{"trace mismatch", Config{Hosts: []HostSpec{host}, VMs: []VMSpec{vm}}},
		{"bad host", Config{Hosts: []HostSpec{{}}, VMs: []VMSpec{vm}, Traces: []workload.Trace{tr}}},
		{"bad vm", Config{Hosts: []HostSpec{host}, VMs: []VMSpec{{}}, Traces: []workload.Trace{tr}}},
		{"bad overload", Config{Hosts: []HostSpec{host}, VMs: []VMSpec{vm},
			Traces: []workload.Trace{tr}, OverloadThreshold: 1.5}},
		{"negative history", Config{Hosts: []HostSpec{host}, VMs: []VMSpec{vm},
			Traces: []workload.Trace{tr}, HistoryLen: -1}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := testConfig(t, []workload.Trace{{0.5}, {0.5}})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Config()
	if got.StepSeconds != 300 {
		t.Errorf("default τ = %g, want 300", got.StepSeconds)
	}
	if got.OverloadThreshold != 0.70 {
		t.Errorf("default β = %g, want 0.70 (paper §6.1)", got.OverloadThreshold)
	}
	if got.Cost != cost.Default() {
		t.Error("default cost params not applied")
	}
	if got.HistoryLen != 12 {
		t.Errorf("default history = %d, want 12", got.HistoryLen)
	}
}

func TestRunNilPolicy(t *testing.T) {
	s, err := New(testConfig(t, []workload.Trace{{0.5}, {0.5}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil); err == nil {
		t.Fatal("expected error for nil policy")
	}
}

func TestEnergyAccountingFlatLoad(t *testing.T) {
	// Two VMs at 50% on separate hosts (round-robin): each host at
	// 500/1000 = 50% → 150 W on the linear model; third host asleep.
	traces := []workload.Trace{{0.5, 0.5}, {0.5, 0.5}}
	cfg := testConfig(t, traces)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	wantPerStep := cost.Default().EnergyCost(300, 300) // 2 hosts × 150 W
	for _, m := range res.Steps {
		if math.Abs(m.EnergyCost-wantPerStep) > 1e-12 {
			t.Fatalf("step %d energy = %g, want %g", m.Step, m.EnergyCost, wantPerStep)
		}
		if m.SLACost != 0 {
			t.Fatalf("unexpected SLA cost %g with no overload/migrations", m.SLACost)
		}
		if m.ActiveHosts != 2 {
			t.Fatalf("active hosts = %d, want 2", m.ActiveHosts)
		}
	}
	if res.TotalMigrations() != 0 {
		t.Fatal("nop policy migrated")
	}
}

func TestSleepingHostsDrawNoPower(t *testing.T) {
	// Both VMs idle at 0%: hosts are active (VMs present) but the third
	// host must cost nothing.
	traces := []workload.Trace{{0.0}, {0.0}}
	cfg := testConfig(t, traces)
	s, _ := New(cfg)
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Two active hosts at idle power 100 W each.
	want := cost.Default().EnergyCost(200, 300)
	if math.Abs(res.TotalEnergyCost()-want) > 1e-12 {
		t.Fatalf("energy = %g, want %g (sleeping host must be free)",
			res.TotalEnergyCost(), want)
	}
}

func TestMigrationExecutesAndCharges(t *testing.T) {
	// Step 0: move VM 1 onto host 0. Both at 30% → host 0 at 60% after.
	traces := []workload.Trace{{0.3, 0.3}, {0.3, 0.3}}
	cfg := testConfig(t, traces)
	p := &scriptPolicy{script: map[int][]Migration{0: {{VM: 1, Dest: 0}}}}
	s, _ := New(cfg)
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations() != 1 {
		t.Fatalf("migrations = %d, want 1", res.TotalMigrations())
	}
	if res.Steps[0].ActiveHosts != 1 {
		t.Fatalf("active hosts after consolidation = %d, want 1", res.Steps[0].ActiveHosts)
	}
	// Migration downtime: 1024 MiB × 8 / 1000 Mbps = 8.192 s × factor 0.5.
	wantDowntime := 1024 * 8 / 1000.0 * cost.Default().MigrationDowntimeFactor
	totalReq := float64(len(traces[0])) * 300
	wantFrac := wantDowntime / totalReq
	if math.Abs(res.VMDowntimeFrac[1]-wantFrac) > 1e-12 {
		t.Fatalf("VM1 downtime frac = %g, want %g", res.VMDowntimeFrac[1], wantFrac)
	}
	if res.VMDowntimeFrac[0] != 0 {
		t.Fatal("VM0 should have no downtime")
	}
	// The migration interval carries 0.8192 s / 300 s ≈ 0.27% downtime →
	// tier-2 refund for that interval only; the second interval is clean.
	wantSLA := cost.Default().SLACost(wantDowntime/300, 300)
	if math.Abs(res.TotalSLACost()-wantSLA) > 1e-9 {
		t.Fatalf("SLA cost = %g, want %g (charged in the migration interval only)",
			res.TotalSLACost(), wantSLA)
	}
	if res.Steps[1].SLACost != 0 {
		t.Fatal("violation-free interval must cost nothing")
	}
}

func TestStayMigrationIsFreeNoOp(t *testing.T) {
	traces := []workload.Trace{{0.3}, {0.3}}
	cfg := testConfig(t, traces)
	// VM 0 starts on host 0 (round-robin); "migrate" it to host 0.
	p := &scriptPolicy{script: map[int][]Migration{0: {{VM: 0, Dest: 0}}}}
	s, _ := New(cfg)
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations() != 0 {
		t.Fatal("stay action was counted as a migration")
	}
	if res.Steps[0].Rejected != 0 {
		t.Fatal("stay action was counted as rejected")
	}
	if res.VMDowntimeFrac[0] != 0 {
		t.Fatal("stay action charged downtime")
	}
}

func TestInfeasibleMigrationRejected(t *testing.T) {
	// Host RAM 4096, VM RAM 1024: five VMs cannot share one host if four
	// fill it. Build 2 hosts, 5 VMs round-robin, then try to move all to
	// host 0.
	lin, _ := power.NewLinear("test", 100, 200)
	host := HostSpec{MIPS: 10000, RAMMB: 4096, BandwidthMbps: 1000, Power: lin}
	vm := VMSpec{MIPS: 100, RAMMB: 1024, BandwidthMbps: 100}
	traces := make([]workload.Trace, 5)
	for i := range traces {
		traces[i] = workload.Trace{0.1}
	}
	cfg := Config{
		Hosts:            []HostSpec{host, host},
		VMs:              []VMSpec{vm, vm, vm, vm, vm},
		Traces:           traces,
		Steps:            1,
		InitialPlacement: PlacementRoundRobin,
	}
	var moves []Migration
	for j := 0; j < 5; j++ {
		moves = append(moves, Migration{VM: j, Dest: 0})
	}
	p := &scriptPolicy{script: map[int][]Migration{0: moves}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Host 0 starts with VMs 0,2,4 (RR). VM 1 fits (4th), VM 3 rejected.
	if res.Steps[0].Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", res.Steps[0].Migrations)
	}
	if res.Steps[0].Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", res.Steps[0].Rejected)
	}
}

func TestDuplicateAndOutOfRangeMigrationsRejected(t *testing.T) {
	traces := []workload.Trace{{0.3}, {0.3}}
	cfg := testConfig(t, traces)
	p := &scriptPolicy{script: map[int][]Migration{0: {
		{VM: 0, Dest: 2},
		{VM: 0, Dest: 1},  // duplicate VM in same step
		{VM: 9, Dest: 0},  // bad VM
		{VM: 1, Dest: -1}, // bad host
	}}}
	s, _ := New(cfg)
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Migrations != 1 || res.Steps[0].Rejected != 3 {
		t.Fatalf("migrations/rejected = %d/%d, want 1/3",
			res.Steps[0].Migrations, res.Steps[0].Rejected)
	}
}

func TestOverloadAccruesDowntimeAndSLACost(t *testing.T) {
	// One VM demanding 90% of a host that it fully owns → host util 0.9 >
	// β = 0.7 → downtime accrues every step.
	lin, _ := power.NewLinear("test", 100, 200)
	cfg := Config{
		Hosts:            []HostSpec{{MIPS: 1000, RAMMB: 4096, BandwidthMbps: 1000, Power: lin}},
		VMs:              []VMSpec{{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}},
		Traces:           []workload.Trace{{0.9, 0.9, 0.9}},
		Steps:            3,
		InitialPlacement: PlacementFirstFit,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Severity = (0.9 − 0.7)/(1 − 0.7) = 2/3 of each interval.
	if want := 2.0 / 3.0; math.Abs(res.VMDowntimeFrac[0]-want) > 1e-12 {
		t.Fatalf("downtime frac = %g, want %g (severity-scaled overload)",
			res.VMDowntimeFrac[0], want)
	}
	for _, m := range res.Steps {
		if m.OverloadedHosts != 1 {
			t.Fatalf("step %d overloaded hosts = %d, want 1", m.Step, m.OverloadedHosts)
		}
		want := cost.Default().SLACost(1, 300)
		if math.Abs(m.SLACost-want) > 1e-12 {
			t.Fatalf("step %d SLA = %g, want %g", m.Step, m.SLACost, want)
		}
	}
}

func TestFeedbackDelivered(t *testing.T) {
	traces := []workload.Trace{{0.3, 0.3}, {0.3, 0.3}}
	cfg := testConfig(t, traces)
	p := &scriptPolicy{script: map[int][]Migration{0: {{VM: 1, Dest: 0}}}}
	s, _ := New(cfg)
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.feedback) != 2 {
		t.Fatalf("feedback count = %d, want 2", len(p.feedback))
	}
	fb := p.feedback[0]
	if len(fb.Executed) != 1 || fb.Executed[0] != (Migration{VM: 1, Dest: 0}) {
		t.Fatalf("feedback executed = %+v", fb.Executed)
	}
	if math.Abs(fb.StepCost-res.Steps[0].TotalCost()) > 1e-12 {
		t.Fatalf("feedback cost %g != step cost %g", fb.StepCost, res.Steps[0].TotalCost())
	}
	if fb.StepCost != fb.EnergyCost+fb.SLACost {
		t.Fatal("feedback cost decomposition inconsistent")
	}
}

func TestHostHistoryWindow(t *testing.T) {
	// Utilization ramps; the snapshot history must hold the last
	// HistoryLen pre-decision samples, oldest first.
	n := 20
	tr := make(workload.Trace, n)
	for i := range tr {
		tr[i] = float64(i) / float64(n)
	}
	cfg := testConfig(t, []workload.Trace{tr, tr})
	cfg.HistoryLen = 5
	var got [][]float64
	p := &probePolicy{onDecide: func(s *Snapshot) {
		if s.Step == n-1 {
			got = append(got, append([]float64(nil), s.HostHistory[0]...))
		}
	}}
	s, _ := New(cfg)
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("probe fired %d times", len(got))
	}
	h := got[0]
	if len(h) != 5 {
		t.Fatalf("history length = %d, want 5", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatalf("history not oldest-first on a rising ramp: %v", h)
		}
	}
	// Newest entry is the current pre-decision utilization of host 0
	// (VM 0 at (n-1)/n of 1000 MIPS on a 1000 MIPS host).
	want := float64(n-1) / float64(n)
	if math.Abs(h[4]-want) > 1e-12 {
		t.Fatalf("newest history = %g, want %g", h[4], want)
	}
}

// probePolicy runs a callback at each Decide without migrating.
type probePolicy struct {
	onDecide func(*Snapshot)
}

func (p *probePolicy) Name() string { return "probe" }
func (p *probePolicy) Decide(s *Snapshot) []Migration {
	if p.onDecide != nil {
		p.onDecide(s)
	}
	return nil
}

func TestInitialPlacementsFeasibleAndDeterministic(t *testing.T) {
	hosts, err := PlanetLabHosts(10)
	if err != nil {
		t.Fatal(err)
	}
	vms, err := PlanetLabVMs(25, 3)
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]workload.Trace, len(vms))
	for i := range traces {
		traces[i] = workload.Trace{0.1}
	}
	for _, placement := range []Placement{PlacementRandom, PlacementRoundRobin, PlacementFirstFit} {
		cfg := Config{
			Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
			InitialPlacement: placement, Seed: 42,
		}
		var first, second []int
		for rep := 0; rep < 2; rep++ {
			var placed []int
			p := &probePolicy{onDecide: func(s *Snapshot) {
				placed = append([]int(nil), s.VMHost...)
				// RAM feasibility.
				ram := make([]float64, s.NumHosts())
				for j, h := range s.VMHost {
					ram[h] += s.VMSpecs[j].RAMMB
				}
				for i := range ram {
					if ram[i] > s.HostSpecs[i].RAMMB {
						t.Fatalf("%v placement overfills host %d", placement, i)
					}
				}
			}}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(p); err != nil {
				t.Fatal(err)
			}
			if rep == 0 {
				first = placed
			} else {
				second = placed
			}
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%v placement not deterministic", placement)
			}
		}
	}
}

func TestPlacementImpossibleErrors(t *testing.T) {
	lin, _ := power.NewLinear("test", 100, 200)
	cfg := Config{
		Hosts:            []HostSpec{{MIPS: 1000, RAMMB: 512, BandwidthMbps: 1000, Power: lin}},
		VMs:              []VMSpec{{MIPS: 100, RAMMB: 1024, BandwidthMbps: 100}},
		Traces:           []workload.Trace{{0.1}},
		Steps:            1,
		InitialPlacement: PlacementFirstFit,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nopPolicy{}); err == nil {
		t.Fatal("expected placement error: VM larger than any host")
	}
}

func TestRunIsRepeatable(t *testing.T) {
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(5)
		c.Steps = 50
		return c
	}(), 8)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := PlanetLabHosts(6)
	vms, _ := PlanetLabVMs(8, 1)
	cfg := Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 9}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCost() != r2.TotalCost() || r1.TotalMigrations() != r2.TotalMigrations() {
		t.Fatal("two runs of the same config+policy differ")
	}
}

func TestSnapshotFitsOn(t *testing.T) {
	traces := []workload.Trace{{0.5}, {0.5}}
	cfg := testConfig(t, traces)
	p := &probePolicy{onDecide: func(s *Snapshot) {
		if !s.FitsOn(0, s.VMHost[0]) {
			t.Error("VM must always fit on its own host")
		}
		// Host 2 is empty: a 1000-MIPS demand of 500 fits.
		if !s.FitsOn(0, 2) {
			t.Error("VM should fit on the empty host")
		}
	}}
	s, _ := New(cfg)
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMigrationSeconds(t *testing.T) {
	traces := []workload.Trace{{0.5}, {0.5}}
	cfg := testConfig(t, traces)
	p := &probePolicy{onDecide: func(s *Snapshot) {
		// 1024 MiB × 8 bits / 1000 Mbps = 8.192 s.
		if got := s.MigrationSeconds(0, 2); math.Abs(got-8.192) > 1e-9 {
			t.Errorf("MigrationSeconds = %g, want 8.192", got)
		}
	}}
	s, _ := New(cfg)
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsAggregations(t *testing.T) {
	r := &Result{Steps: []StepMetrics{
		{EnergyCost: 1, SLACost: 2, Migrations: 3, ActiveHosts: 10, DecideSeconds: 0.5},
		{EnergyCost: 2, SLACost: 1, Migrations: 1, ActiveHosts: 20, DecideSeconds: 1.5},
	}}
	if r.TotalCost() != 6 || r.TotalEnergyCost() != 3 || r.TotalSLACost() != 3 {
		t.Fatal("cost aggregation wrong")
	}
	if r.TotalMigrations() != 4 {
		t.Fatal("migration aggregation wrong")
	}
	if r.MeanActiveHosts() != 15 || r.MeanDecideSeconds() != 1 {
		t.Fatal("mean aggregation wrong")
	}
	cm := r.CumulativeMigrations()
	if cm[0] != 3 || cm[1] != 4 {
		t.Fatalf("cumulative migrations = %v", cm)
	}
	pc := r.PerStepCosts()
	if pc[0] != 3 || pc[1] != 3 {
		t.Fatalf("per-step costs = %v", pc)
	}
	empty := &Result{}
	if empty.MeanActiveHosts() != 0 || empty.MeanDecideSeconds() != 0 {
		t.Fatal("empty result means should be 0")
	}
}

func TestFleetConstructors(t *testing.T) {
	hosts, err := PlanetLabHosts(4)
	if err != nil {
		t.Fatal(err)
	}
	if hosts[0].MIPS != g4MIPS || hosts[1].MIPS != g5MIPS {
		t.Fatal("host type mix wrong")
	}
	if hosts[0].Power.Name() == hosts[1].Power.Name() {
		t.Fatal("both host types share a power model")
	}
	if _, err := PlanetLabHosts(0); err == nil {
		t.Fatal("expected error for zero hosts")
	}
	vms, err := PlanetLabVMs(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vms {
		if v.Validate() != nil {
			t.Fatalf("invalid VM spec %+v", v)
		}
	}
	if _, err := PlanetLabVMs(-1, 0); err == nil {
		t.Fatal("expected error for negative VM count")
	}
	g, err := GoogleHosts(2)
	if err != nil {
		t.Fatal(err)
	}
	if g[0].RAMMB <= hosts[0].RAMMB {
		t.Fatal("Google hosts should have more RAM")
	}
	if _, err := GoogleVMs(5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementString(t *testing.T) {
	if PlacementRandom.String() != "random" ||
		PlacementRoundRobin.String() != "round-robin" ||
		PlacementFirstFit.String() != "first-fit" {
		t.Fatal("Placement String() wrong")
	}
	if Placement(99).String() == "" {
		t.Fatal("unknown placement should still render")
	}
}

// TestMetricsFeed checks the obs wiring: a metered run lands per-step
// decide latencies, migration/rejection counts, and overload host-steps in
// the registry, labelled by policy name.
func TestMetricsFeed(t *testing.T) {
	traces := []workload.Trace{{0.9, 0.9, 0.9}, {0.9, 0.9, 0.9}}
	cfg := testConfig(t, traces)
	cfg.InitialPlacement = PlacementFirstFit // both hot VMs on host 0 → overload
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Step 0: move VM 1 to host 1 (executed) and propose an out-of-range
	// destination (rejected).
	p := &scriptPolicy{script: map[int][]Migration{
		0: {{VM: 1, Dest: 1}, {VM: 0, Dest: 99}},
	}}
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	l := obs.Labels{"policy": "script"}
	if got := reg.Counter("megh_sim_steps_total", "", l).Value(); got != 3 {
		t.Fatalf("megh_megh_sim_steps_total = %d, want 3", got)
	}
	if got := reg.Histogram("megh_sim_decide_seconds", "", l).Count(); got != 3 {
		t.Fatalf("megh_megh_sim_decide_seconds count = %d, want 3", got)
	}
	if got := reg.Counter("megh_sim_migrations_total", "", l).Value(); got != int64(res.TotalMigrations()) {
		t.Fatalf("megh_megh_sim_migrations_total = %d, want %d", got, res.TotalMigrations())
	}
	if got := reg.Counter("megh_sim_rejections_total", "", l).Value(); got != 1 {
		t.Fatalf("megh_megh_sim_rejections_total = %d, want 1", got)
	}
	var wantOverloaded int64
	for _, m := range res.Steps {
		wantOverloaded += int64(m.OverloadedHosts)
	}
	if wantOverloaded == 0 {
		t.Fatal("scenario never overloaded a host; test world broken")
	}
	if got := reg.Counter("megh_sim_overloaded_host_steps_total", "", l).Value(); got != wantOverloaded {
		t.Fatalf("megh_megh_sim_overloaded_host_steps_total = %d, want %d", got, wantOverloaded)
	}
	last := res.Steps[len(res.Steps)-1]
	if got := reg.Gauge("megh_sim_active_hosts", "", l).Value(); got != float64(last.ActiveHosts) {
		t.Fatalf("megh_megh_sim_active_hosts = %g, want %d", got, last.ActiveHosts)
	}
	// An unmetered run must keep working (nil feed).
	cfg.Metrics = nil
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(nopPolicy{}); err != nil {
		t.Fatal(err)
	}
}
