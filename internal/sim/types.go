// Package sim is the CloudSim-equivalent data-center simulator the
// reproduction runs on (DESIGN.md substitution S1). It executes the
// power-aware simulation loop the paper's experiments assume: at every
// τ = 5 min step it reads one utilization sample per VM, lets the
// allocation policy under test decide live migrations, executes them,
// and integrates energy, SLA-downtime, and cost metrics.
//
// Policies only interact with the simulator through the read-only Snapshot
// and the returned []Migration, so heuristics (MMT), learners (Megh,
// MadVM, Q-learning) and trivial baselines plug in interchangeably.
package sim

import (
	"fmt"
	"sort"

	"megh/internal/cost"
	"megh/internal/obs"
	"megh/internal/power"
	"megh/internal/trace"
	"megh/internal/workload"
)

// HostSpec describes one physical machine (PM). Following paper §3.1, all
// CPUs of a PM are modelled as a single core with their cumulative MIPS.
type HostSpec struct {
	// MIPS is the cumulative CPU capacity.
	MIPS float64
	// RAMMB is the memory capacity in MiB.
	RAMMB float64
	// BandwidthMbps is the network bandwidth available for migrations.
	BandwidthMbps float64
	// Power is the utilization→Watts model (e.g. power.HPProLiantG4()).
	Power power.Model
}

// Validate reports the first invalid field.
func (h HostSpec) Validate() error {
	switch {
	case h.MIPS <= 0:
		return fmt.Errorf("sim: host MIPS %g must be positive", h.MIPS)
	case h.RAMMB <= 0:
		return fmt.Errorf("sim: host RAM %g must be positive", h.RAMMB)
	case h.BandwidthMbps <= 0:
		return fmt.Errorf("sim: host bandwidth %g must be positive", h.BandwidthMbps)
	case h.Power == nil:
		return fmt.Errorf("sim: host power model is nil")
	}
	return nil
}

// VMSpec describes one virtual machine's requested resources.
type VMSpec struct {
	// MIPS is the requested CPU capacity; the trace utilization is a
	// fraction of this.
	MIPS float64
	// RAMMB is the allocated memory, which determines migration time
	// (TM = RAM / bandwidth, paper §3.3).
	RAMMB float64
	// BandwidthMbps is the VM's network allocation.
	BandwidthMbps float64
}

// Validate reports the first invalid field.
func (v VMSpec) Validate() error {
	switch {
	case v.MIPS <= 0:
		return fmt.Errorf("sim: VM MIPS %g must be positive", v.MIPS)
	case v.RAMMB <= 0:
		return fmt.Errorf("sim: VM RAM %g must be positive", v.RAMMB)
	case v.BandwidthMbps < 0:
		return fmt.Errorf("sim: VM bandwidth %g must be non-negative", v.BandwidthMbps)
	}
	return nil
}

// Placement selects the initial VM→host assignment strategy.
type Placement int

// Initial placement strategies.
const (
	// PlacementRandom spreads VMs uniformly at random across hosts with a
	// RAM-feasibility check — the setup of the paper's MadVM comparison
	// ("allocated uniformly at random ... so that there is no initial
	// bias", §6.3).
	PlacementRandom Placement = iota + 1
	// PlacementRoundRobin deals VMs to hosts in order.
	PlacementRoundRobin
	// PlacementFirstFit packs each VM onto the first host with enough
	// spare RAM, mimicking CloudSim's default simple provisioner.
	PlacementFirstFit
	// PlacementExplicit uses Config.InitialAssignment verbatim. The
	// metamorphic host-relabeling suite needs this: permuting host indices
	// must reproduce the permuted world exactly, which no strategy that
	// re-derives the assignment can guarantee.
	PlacementExplicit
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlacementRandom:
		return "random"
	case PlacementRoundRobin:
		return "round-robin"
	case PlacementFirstFit:
		return "first-fit"
	case PlacementExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Config assembles one simulation run.
type Config struct {
	// Hosts and VMs define the data center.
	Hosts []HostSpec
	VMs   []VMSpec
	// Traces supplies one utilization trace per VM.
	Traces []workload.Trace
	// Steps is the horizon in τ-intervals; 0 means the longest trace.
	Steps int
	// StepSeconds is τ; 0 means 300 s (5 minutes, the paper's interval).
	StepSeconds float64
	// OverloadThreshold is β (paper: 0.70): a host above it accrues
	// overloading time for its VMs (Eq. 4).
	OverloadThreshold float64
	// Cost holds the money model; zero value means cost.Default().
	Cost cost.Params
	// InitialPlacement defaults to PlacementRandom (or PlacementExplicit
	// when InitialAssignment is set).
	InitialPlacement Placement
	// InitialAssignment fixes the initial VM→host map for
	// PlacementExplicit: entry j is VM j's host. Must satisfy RAM
	// feasibility; ignored by the other strategies.
	InitialAssignment []int
	// Seed is the run's base seed. The simulator itself consumes only the
	// placement sub-stream (Seeds().Placement()); harnesses derive the
	// policy seed and any further component streams from the same base via
	// Seeds(), so one seed reproduces the entire run.
	Seed int64
	// HistoryLen is how many past host-utilization samples the Snapshot
	// exposes to policies (MMT's detectors need ~12); 0 means 12. The
	// same window length is kept per VM for selection policies that
	// inspect VM behaviour (e.g. maximum-correlation selection).
	HistoryLen int
	// Failures injects host outages for robustness experiments: during
	// [From, Until) the host delivers no capacity, its VMs are fully
	// down, and it cannot receive migrations. Policies observe the
	// failure as an overloaded host (plus Snapshot.HostFailed).
	Failures []Failure
	// Lifecycle schedules VM arrivals and departures over a fixed slot
	// universe (len(VMs) slots): a departed slot frees its host's RAM and
	// MIPS, accrues no SLA time, and reads VMHost -1; an arriving slot is
	// placed on the first host that fits it in both dimensions (or its
	// pinned host), deferring to later steps while nothing fits. Events
	// are applied at the start of their step, before utilization is
	// sampled and the policy decides. Empty means the static population
	// the paper's experiments assume.
	Lifecycle []LifecycleEvent
	// InitialAlive marks which VM slots exist at step 0 (nil = all). A
	// slot that starts dead is placed only when a lifecycle arrival
	// brings it up. Must have len(VMs) entries when non-nil.
	InitialAlive []bool
	// Migration optionally replaces the default RAM/bandwidth
	// migration-time estimate, e.g. with a topology-aware model.
	Migration MigrationTimeModel
	// Metrics optionally receives per-step instrumentation (decide
	// latency, migration/rejection counts, overload counts), labelled by
	// policy name so several Run calls on one registry stay separable.
	Metrics *obs.Registry
	// Tracer optionally receives one structured event per step: executed
	// and rejected migrations (with rejection reasons), the cost
	// decomposition, and host activity transitions. Policies that also
	// trace (core.Megh via Trace) should share the same tracer so decide
	// and step events interleave in one stream. Nil disables tracing at
	// zero cost.
	Tracer *trace.Tracer
	// Checker optionally validates the world state after every step (see
	// internal/invariant for the conservation-law implementation). A
	// returned error aborts the run — an invariant violation means the
	// metrics can no longer be trusted, so there is nothing useful to
	// finish. Nil disables checking at the cost of one pointer test per
	// step.
	Checker Checker
	// Health optionally observes every completed step — the learning-health
	// layer (internal/health.Tracker) uses it to advance its per-decide
	// EWMAs and probe cadence during sim runs, exactly as the server does
	// per request. Nil disables it at the cost of one pointer test per
	// step.
	Health StepObserver
}

// StepObserver receives one callback per completed simulation step, after
// metrics are recorded and feedback delivered. Implementations must not
// retain arguments past the call.
type StepObserver interface {
	// ObserveStep is called with the 0-based step index and the policy's
	// decide wall time for the step.
	ObserveStep(step int, decideSeconds float64)
}

// Checker validates simulator state. Implementations live outside the hot
// path's import graph (internal/invariant); the simulator only promises to
// call CheckStep once per completed step with a consistent view.
type Checker interface {
	// CheckStep inspects the post-step world. The StepCheck and everything
	// it references are owned by the simulator and valid only for the
	// duration of the call.
	CheckStep(c *StepCheck) error
}

// StepCheck bundles what a Checker may inspect after one step: the live
// snapshot (post-migration placement and utilizations), the step's feedback
// and metrics, and the pre-step placement/activity needed to audit
// migration accounting and the host wake/sleep state machine.
type StepCheck struct {
	// Step is the 0-based step index.
	Step int
	// Snapshot is the post-step world view.
	Snapshot *Snapshot
	// Feedback carries executed/rejected migrations and the cost
	// decomposition.
	Feedback *Feedback
	// Metrics is the step's aggregate record, exactly what Run returns.
	Metrics StepMetrics
	// PrevVMHost[j] is VM j's host before this step's migrations (but
	// after its lifecycle events: an arrived VM reads its placement, a
	// departed one -1).
	PrevVMHost []int
	// PrevActive[i] reports whether host i ran a VM before this step's
	// lifecycle events and migrations.
	PrevActive []bool
	// PrevAlive[j] reports whether VM slot j was alive before this step's
	// lifecycle events. Nil when the run has no lifecycle (all alive).
	PrevAlive []bool
	// Arrived lists the VM slots placed by lifecycle arrivals this step;
	// Snapshot.VMHost names each one's host.
	Arrived []int
	// Departed lists this step's lifecycle departures with the host each
	// slot vacated.
	Departed []Departure
}

// Departure records one executed lifecycle departure for checkers: the
// slot that left and the host it freed.
type Departure struct {
	VM   int
	Host int
}

// LifecycleKind selects what a LifecycleEvent does to its VM slot.
type LifecycleKind int

// Lifecycle event kinds.
const (
	// VMArrive brings a dead slot up. If no host fits the VM the arrival
	// is deferred and retried every following step until it places (or a
	// later VMDepart for the slot cancels it).
	VMArrive LifecycleKind = iota + 1
	// VMDepart takes a live slot down, freeing its host's capacity. On a
	// dead slot it cancels that slot's pending deferred arrival, if any.
	VMDepart
)

// String implements fmt.Stringer.
func (k LifecycleKind) String() string {
	switch k {
	case VMArrive:
		return "arrive"
	case VMDepart:
		return "depart"
	default:
		return fmt.Sprintf("lifecycle(%d)", int(k))
	}
}

// LifecycleEvent is one scheduled VM arrival or departure.
type LifecycleEvent struct {
	// Step is when the event applies (start of the interval).
	Step int
	// VM is the slot index.
	VM int
	// Kind is VMArrive or VMDepart.
	Kind LifecycleKind
	// Host pins an arrival's destination (-1 = first host that fits,
	// scanning ascending). Ignored for departures.
	Host int
}

// Validate reports out-of-range fields given the world dimensions.
func (e LifecycleEvent) Validate(numVMs, numHosts int) error {
	switch {
	case e.Step < 0:
		return fmt.Errorf("sim: lifecycle step %d negative", e.Step)
	case e.VM < 0 || e.VM >= numVMs:
		return fmt.Errorf("sim: lifecycle VM %d out of range [0,%d)", e.VM, numVMs)
	case e.Kind != VMArrive && e.Kind != VMDepart:
		return fmt.Errorf("sim: lifecycle kind %d unknown", int(e.Kind))
	case e.Kind == VMArrive && (e.Host < -1 || e.Host >= numHosts):
		return fmt.Errorf("sim: lifecycle arrival host %d out of range", e.Host)
	}
	return nil
}

// Failure is one injected host outage.
type Failure struct {
	// Host is the failing host's index.
	Host int
	// From (inclusive) and Until (exclusive) bound the outage in steps.
	From, Until int
}

// Validate reports out-of-range fields given the host count.
func (f Failure) Validate(numHosts int) error {
	switch {
	case f.Host < 0 || f.Host >= numHosts:
		return fmt.Errorf("sim: failure host %d out of range [0,%d)", f.Host, numHosts)
	case f.From < 0 || f.Until <= f.From:
		return fmt.Errorf("sim: failure window [%d,%d) invalid", f.From, f.Until)
	}
	return nil
}

// MigrationTimeModel estimates the live-migration copy time. The default
// is RAM divided by the bottleneck bandwidth (paper §3.3); a
// topology-aware model can scale it with network distance.
type MigrationTimeModel interface {
	// MigrationSeconds returns the copy time for moving vm to dest.
	MigrationSeconds(s *Snapshot, vm, dest int) float64
}

// Migration asks the simulator to live-migrate VM to host Dest. A
// migration whose Dest equals the VM's current host is a no-op and is not
// counted or charged.
type Migration struct {
	VM   int
	Dest int
}

// Policy decides live migrations each step. Implementations must treat the
// Snapshot as read-only. Decide is timed by the simulator to produce the
// per-step execution-time metric of Tables 2–3.
type Policy interface {
	// Name identifies the policy in reports (e.g. "Megh", "THR-MMT").
	Name() string
	// Decide returns the migrations to execute for this step.
	Decide(s *Snapshot) []Migration
}

const (
	defaultStepSeconds = 300.0
	defaultHistoryLen  = 12
	defaultOverload    = 0.70
)

// normalized returns a copy of the config with defaults applied, after
// validation.
func (c Config) normalized() (Config, error) {
	if len(c.Hosts) == 0 {
		return c, fmt.Errorf("sim: no hosts configured")
	}
	if len(c.VMs) == 0 {
		return c, fmt.Errorf("sim: no VMs configured")
	}
	if len(c.Traces) != len(c.VMs) {
		return c, fmt.Errorf("sim: %d traces for %d VMs", len(c.Traces), len(c.VMs))
	}
	for i, h := range c.Hosts {
		if err := h.Validate(); err != nil {
			return c, fmt.Errorf("host %d: %w", i, err)
		}
	}
	for i, v := range c.VMs {
		if err := v.Validate(); err != nil {
			return c, fmt.Errorf("vm %d: %w", i, err)
		}
	}
	if c.StepSeconds == 0 {
		c.StepSeconds = defaultStepSeconds
	}
	if c.StepSeconds < 0 {
		return c, fmt.Errorf("sim: negative StepSeconds %g", c.StepSeconds)
	}
	if c.OverloadThreshold == 0 {
		c.OverloadThreshold = defaultOverload
	}
	if c.OverloadThreshold < 0 || c.OverloadThreshold > 1 {
		return c, fmt.Errorf("sim: OverloadThreshold %g out of [0,1]", c.OverloadThreshold)
	}
	if c.Cost == (cost.Params{}) {
		c.Cost = cost.Default()
	}
	if err := c.Cost.Validate(); err != nil {
		return c, err
	}
	if c.InitialPlacement == 0 {
		if c.InitialAssignment != nil {
			c.InitialPlacement = PlacementExplicit
		} else {
			c.InitialPlacement = PlacementRandom
		}
	}
	if c.InitialAlive != nil && len(c.InitialAlive) != len(c.VMs) {
		return c, fmt.Errorf("sim: InitialAlive covers %d of %d VMs",
			len(c.InitialAlive), len(c.VMs))
	}
	if c.InitialPlacement == PlacementExplicit {
		if len(c.InitialAssignment) != len(c.VMs) {
			return c, fmt.Errorf("sim: explicit assignment covers %d of %d VMs",
				len(c.InitialAssignment), len(c.VMs))
		}
		for j, h := range c.InitialAssignment {
			if h == -1 && c.InitialAlive != nil && !c.InitialAlive[j] {
				continue // dead slot: placed only when it arrives
			}
			if h < 0 || h >= len(c.Hosts) {
				return c, fmt.Errorf("sim: VM %d assigned to unknown host %d", j, h)
			}
		}
	}
	if c.HistoryLen == 0 {
		c.HistoryLen = defaultHistoryLen
	}
	if c.HistoryLen < 0 {
		return c, fmt.Errorf("sim: negative HistoryLen %d", c.HistoryLen)
	}
	if c.Steps == 0 {
		for _, tr := range c.Traces {
			if tr.Len() > c.Steps {
				c.Steps = tr.Len()
			}
		}
	}
	if c.Steps <= 0 {
		return c, fmt.Errorf("sim: horizon resolves to %d steps", c.Steps)
	}
	for i, f := range c.Failures {
		if err := f.Validate(len(c.Hosts)); err != nil {
			return c, fmt.Errorf("failure %d: %w", i, err)
		}
	}
	for i, e := range c.Lifecycle {
		if err := e.Validate(len(c.VMs), len(c.Hosts)); err != nil {
			return c, fmt.Errorf("lifecycle %d: %w", i, err)
		}
	}
	if len(c.Lifecycle) > 0 {
		// Stable-sort by step on a private copy: callers keep their slice,
		// and same-step events keep their given order (the order deferred
		// arrivals queue in).
		sorted := append([]LifecycleEvent(nil), c.Lifecycle...)
		sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Step < sorted[b].Step })
		c.Lifecycle = sorted
	}
	return c, nil
}
