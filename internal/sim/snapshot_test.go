package sim

import (
	"reflect"
	"testing"
)

// TestSnapshotCloneIsDeep: the simulator reuses all snapshot slices across
// steps, so Clone must share no mutable storage — mutating the original
// afterwards (as the next step does) must not show through.
func TestSnapshotCloneIsDeep(t *testing.T) {
	orig := &Snapshot{
		Step: 3, StepSeconds: 300, OverloadThreshold: 0.8,
		VMHost:      []int{0, 1},
		VMUtil:      []float64{0.5, 0.25},
		VMMIPS:      []float64{500, 250},
		VMSpecs:     []VMSpec{{MIPS: 1000, RAMMB: 1024}, {MIPS: 1000, RAMMB: 2048}},
		HostUtil:    []float64{0.125, 0.0625},
		HostVMs:     [][]int{{0}, {1}},
		HostSpecs:   []HostSpec{{MIPS: 4000, RAMMB: 8192}, {MIPS: 4000, RAMMB: 8192}},
		HostHistory: [][]float64{{0.1, 0.125}, {0.05, 0.0625}},
		VMHistory:   [][]float64{{0.4, 0.5}, {0.2, 0.25}},
		HostFailed:  []bool{false, true},
	}
	c := orig.Clone()
	want := orig.Clone() // pristine reference copy

	// Step-advance-style mutations on every reused slice.
	orig.Step = 99
	orig.VMHost[0] = 1
	orig.VMUtil[0] = 0.9
	orig.VMMIPS[0] = 900
	orig.VMSpecs[0].RAMMB = 512
	orig.HostUtil[0] = 0.5
	orig.HostVMs[0][0] = 1
	orig.HostVMs[1] = append(orig.HostVMs[1], 0)
	orig.HostSpecs[0].MIPS = 1
	orig.HostHistory[0][0] = -1
	orig.VMHistory[1][1] = -1
	orig.HostFailed[1] = false

	if !reflect.DeepEqual(c, want) {
		t.Fatalf("clone changed when the original was mutated:\ngot  %+v\nwant %+v", c, want)
	}
}

// TestSnapshotClonePreservesNil: optional slices (histories, failure flags)
// stay nil through Clone — code distinguishes nil from empty.
func TestSnapshotClonePreservesNil(t *testing.T) {
	orig := &Snapshot{
		VMHost:   []int{0},
		VMUtil:   []float64{0.5},
		VMMIPS:   []float64{500},
		VMSpecs:  []VMSpec{{MIPS: 1000, RAMMB: 1024}},
		HostUtil: []float64{0.125},
		HostVMs:  [][]int{{0}, nil},
		HostSpecs: []HostSpec{
			{MIPS: 4000, RAMMB: 8192}, {MIPS: 4000, RAMMB: 8192},
		},
	}
	c := orig.Clone()
	if c.HostHistory != nil || c.VMHistory != nil || c.HostFailed != nil {
		t.Fatal("clone materialised a slice that was nil in the original")
	}
	if c.HostVMs[1] != nil {
		t.Fatal("clone materialised a nil inner slice")
	}
}
