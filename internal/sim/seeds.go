package sim

import "math/rand"

// Seeds derives deterministic per-component seed sub-streams from one
// base seed, so every randomised component of a run (initial placement,
// policy exploration, future workload perturbations) draws from its own
// independent stream. Two runs with the same base seed are then fully
// reproducible end to end — the property the byte-identical-trace
// regression tests assert — while adding a new randomised component
// (via Stream) cannot perturb the existing ones.
//
// Placement and Policy keep their historical derivations (base and
// base+101) so seeds pinned in tests and EXPERIMENTS.md keep producing
// the exact runs they were recorded with.
type Seeds struct {
	// Base is the run's single user-facing seed.
	Base int64
}

// Placement seeds the initial VM→host assignment.
func (s Seeds) Placement() int64 { return s.Base }

// Policy seeds the policy under test (e.g. Megh's Boltzmann exploration).
func (s Seeds) Policy() int64 { return s.Base + 101 }

// Stream derives the sub-stream for a named component by mixing the name
// into the base seed with FNV-1a. Distinct names yield independent
// streams; the same (base, name) pair always yields the same seed.
func (s Seeds) Stream(name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	b := uint64(s.Base)
	for i := 0; i < 8; i++ {
		h ^= (b >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int64(h)
}

// Rand returns a fresh generator on the named sub-stream.
func (s Seeds) Rand(name string) *rand.Rand {
	return rand.New(rand.NewSource(s.Stream(name)))
}

// Seeds exposes the config's seed sub-streams.
func (c Config) Seeds() Seeds { return Seeds{Base: c.Seed} }
