package sim

// Snapshot is the read-only view of the data center a Policy sees at one
// decision step. All slices are owned by the simulator and reused across
// steps for efficiency; policies must not mutate or retain them beyond the
// Decide call (copy anything you keep).
type Snapshot struct {
	// Step is the 0-based step index.
	Step int
	// StepSeconds is τ.
	StepSeconds float64
	// OverloadThreshold is β.
	OverloadThreshold float64

	// VMHost[j] is the index of the host currently running VM j.
	VMHost []int
	// VMUtil[j] is VM j's demanded fraction of its own requested MIPS.
	VMUtil []float64
	// VMMIPS[j] is VM j's demanded MIPS (VMUtil[j] × spec MIPS).
	VMMIPS []float64
	// VMSpecs holds the static VM descriptions.
	VMSpecs []VMSpec

	// HostUtil[i] is host i's demanded-capacity fraction (may exceed 1
	// when demand outstrips capacity).
	HostUtil []float64
	// HostVMs[i] lists the VMs on host i.
	HostVMs [][]int
	// HostSpecs holds the static host descriptions.
	HostSpecs []HostSpec

	// HostHistory[i] is host i's recent utilization window, oldest first,
	// at most Config.HistoryLen entries including the current step.
	HostHistory [][]float64
	// VMHistory[j] is VM j's recent utilization window, oldest first,
	// same length policy as HostHistory.
	VMHistory [][]float64
	// HostFailed[i] reports an injected outage on host i this step.
	HostFailed []bool
	// VMAlive[j] reports whether VM slot j currently exists. Nil means
	// the run has no lifecycle: every slot is alive, the historical
	// fixed-population world. A dead slot reads VMHost -1, zero demand,
	// and sits in no host's list.
	VMAlive []bool

	// migModel optionally overrides MigrationSeconds.
	migModel MigrationTimeModel
}

// Clone returns a deep copy of the snapshot that shares no mutable storage
// with the original. The simulator reuses every slice across steps, so a
// snapshot is only valid inside the Decide call it was passed to; callers
// that queue snapshots for later — most importantly producers building a
// core.DecideBatch request across several steps — must clone each one
// first. Static spec slices are copied too (cheap relative to the history
// windows, and it keeps the contract simple: a clone is always safe).
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	c.VMHost = append([]int(nil), s.VMHost...)
	c.VMUtil = append([]float64(nil), s.VMUtil...)
	c.VMMIPS = append([]float64(nil), s.VMMIPS...)
	c.VMSpecs = append([]VMSpec(nil), s.VMSpecs...)
	c.HostUtil = append([]float64(nil), s.HostUtil...)
	c.HostVMs = cloneNested(s.HostVMs)
	c.HostSpecs = append([]HostSpec(nil), s.HostSpecs...)
	c.HostHistory = cloneNested(s.HostHistory)
	c.VMHistory = cloneNested(s.VMHistory)
	c.HostFailed = append([]bool(nil), s.HostFailed...)
	c.VMAlive = append([]bool(nil), s.VMAlive...)
	return &c
}

// cloneNested deep-copies a slice of slices, preserving nil-ness of both
// levels.
func cloneNested[E any](src [][]E) [][]E {
	if src == nil {
		return nil
	}
	out := make([][]E, len(src))
	for i, row := range src {
		out[i] = append([]E(nil), row...)
	}
	return out
}

// NumVMs returns the number of VM slots (alive or not).
func (s *Snapshot) NumVMs() int { return len(s.VMHost) }

// VMLive reports whether VM slot j currently exists.
func (s *Snapshot) VMLive(j int) bool {
	return s.VMAlive == nil || s.VMAlive[j]
}

// LiveVMs counts the slots currently alive.
func (s *Snapshot) LiveVMs() int {
	if s.VMAlive == nil {
		return len(s.VMHost)
	}
	n := 0
	for _, a := range s.VMAlive {
		if a {
			n++
		}
	}
	return n
}

// NumHosts returns the number of hosts.
func (s *Snapshot) NumHosts() int { return len(s.HostUtil) }

// HostActive reports whether host i currently runs at least one VM.
func (s *Snapshot) HostActive(i int) bool { return len(s.HostVMs[i]) > 0 }

// ActiveHosts counts hosts running at least one VM.
func (s *Snapshot) ActiveHosts() int {
	n := 0
	for i := range s.HostVMs {
		if len(s.HostVMs[i]) > 0 {
			n++
		}
	}
	return n
}

// HostOverloaded reports whether host i's utilization exceeds β. A failed
// host counts as overloaded so that overload-driven policies evacuate it
// without failure-specific logic.
func (s *Snapshot) HostOverloaded(i int) bool {
	if len(s.HostFailed) > 0 && s.HostFailed[i] {
		return true
	}
	return s.HostUtil[i] > s.OverloadThreshold
}

// FitsOn reports whether VM j could run on host i right now: enough spare
// RAM and enough spare MIPS capacity at current demand, and the host not
// being failed. The VM's current host always fits it (a stay is always
// legal). A dead slot fits nowhere — it cannot be migrated.
func (s *Snapshot) FitsOn(j, i int) bool {
	if !s.VMLive(j) {
		return false
	}
	if s.VMHost[j] == i {
		return true
	}
	if len(s.HostFailed) > 0 && s.HostFailed[i] {
		return false
	}
	spec := s.HostSpecs[i]
	var ram, mips float64
	for _, other := range s.HostVMs[i] {
		ram += s.VMSpecs[other].RAMMB
		mips += s.VMMIPS[other]
	}
	return ram+s.VMSpecs[j].RAMMB <= spec.RAMMB &&
		mips+s.VMMIPS[j] <= spec.MIPS
}

// MigrationSeconds returns the live-migration copy time for VM j moving to
// host dest. The default model is RAM divided by the smaller of the two
// hosts' bandwidths (paper §3.3: TM = M/B; RAM is MiB, bandwidth Mbit/s,
// so ×8 converts); a Config.Migration model overrides it.
func (s *Snapshot) MigrationSeconds(j, dest int) float64 {
	if s.migModel != nil {
		return s.migModel.MigrationSeconds(s, j, dest)
	}
	src := s.VMHost[j]
	bw := s.HostSpecs[src].BandwidthMbps
	if b := s.HostSpecs[dest].BandwidthMbps; b < bw {
		bw = b
	}
	if bw <= 0 {
		return 0
	}
	return s.VMSpecs[j].RAMMB * 8 / bw
}
