package sim

import (
	"bytes"
	"testing"

	"megh/internal/trace"
	"megh/internal/workload"
)

func TestSeedsSubStreams(t *testing.T) {
	s := Seeds{Base: 42}
	// Historical derivations are frozen: changing them would silently
	// reshuffle every pinned experiment in EXPERIMENTS.md.
	if s.Placement() != 42 {
		t.Fatalf("Placement() = %d, want the base seed", s.Placement())
	}
	if s.Policy() != 42+101 {
		t.Fatalf("Policy() = %d, want base+101", s.Policy())
	}
	if s.Stream("x") != s.Stream("x") {
		t.Fatal("Stream is not deterministic")
	}
	if s.Stream("x") == s.Stream("y") {
		t.Fatal("distinct names must yield distinct streams")
	}
	if s.Stream("x") == (Seeds{Base: 43}).Stream("x") {
		t.Fatal("streams must depend on the base seed")
	}
	a, b := s.Rand("w"), s.Rand("w")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Rand on the same stream diverged")
		}
	}
	if (Config{Seed: 7}).Seeds() != (Seeds{Base: 7}) {
		t.Fatal("Config.Seeds must wrap Config.Seed")
	}
}

// Two Runs of the same config with the same scripted policy must emit
// byte-identical step-event streams, including rejection reasons and
// host wake/sleep transitions.
func TestStepTraceDeterministicAndComplete(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tracer, err := trace.New(trace.Options{W: &buf, RingSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(t, []workload.Trace{{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}})
		cfg.Tracer = tracer
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := &scriptPolicy{script: map[int][]Migration{
			0: {{VM: 0, Dest: 1}},  // executed: sleeps host 0, (VM moves 0→1)
			1: {{VM: 9, Dest: 0}},  // rejected: VM out of range
			2: {{VM: 0, Dest: 99}}, // rejected: host out of range
		}}
		if _, err := s.Run(p); err != nil {
			t.Fatal(err)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-config runs traced differently:\n%s\nvs\n%s", a, b)
	}

	events, err := trace.Read(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want one per step:\n%s", len(events), a)
	}
	step0 := events[0]
	if len(step0.Executed) != 1 || step0.Executed[0].VM != 0 ||
		step0.Executed[0].From != 0 || step0.Executed[0].Dest != 1 {
		t.Fatalf("step 0 executed = %+v", step0.Executed)
	}
	if len(step0.Slept) != 1 || step0.Slept[0] != 0 {
		t.Fatalf("moving the only VM off host 0 must record it as slept: %+v", step0)
	}
	if step0.StepCost == 0 || step0.ActiveHosts == 0 || step0.Digest == "" {
		t.Fatalf("step 0 missing cost/host/digest fields: %+v", step0)
	}
	for i, want := range map[int]string{1: trace.RejectOutOfRange, 2: trace.RejectOutOfRange} {
		ev := events[i]
		if len(ev.Rejected) != 1 || ev.Rejected[0].Reason != want {
			t.Fatalf("step %d rejected = %+v, want reason %q", i, ev.Rejected, want)
		}
	}
	// VM index was invalid at step 1, so its origin is unknowable.
	if events[1].Rejected[0].From != -1 {
		t.Fatalf("invalid VM must record From=-1: %+v", events[1].Rejected)
	}
	// VM 0 was valid at step 2 (living on host 1 after step 0's move).
	if events[2].Rejected[0].From != 1 {
		t.Fatalf("invalid dest must still record the VM's host: %+v", events[2].Rejected)
	}
}

// An infeasible destination (not enough RAM) must be traced as such.
func TestStepTraceInfeasibleRejection(t *testing.T) {
	var buf bytes.Buffer
	tracer, err := trace.New(trace.Options{W: &buf, RingSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, []workload.Trace{{0.5}, {0.5}})
	cfg.VMs[0].RAMMB = 4096 // VM 0 fills a whole host
	cfg.VMs[1].RAMMB = 4096
	cfg.Tracer = tracer
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &scriptPolicy{script: map[int][]Migration{
		0: {{VM: 0, Dest: 1}}, // host 1 already holds VM 1: no RAM left
	}}
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || len(events[0].Rejected) != 1 ||
		events[0].Rejected[0].Reason != trace.RejectInfeasible {
		t.Fatalf("want one infeasible rejection, got %+v", events)
	}
}
