package sim

import (
	"fmt"
	"math/rand"

	"megh/internal/power"
)

// Fleet constructors for the paper's two experimental setups (§6.2).
//
// PlanetLab: 800 heterogeneous PMs, half HP ProLiant ML110 G4 and half G5,
// each a dual-core machine modelled as a single core with cumulative MIPS,
// 4 GiB RAM and 1 Gbps network; 1052 VMs with 1 vCPU, 0.5–2.5 GiB RAM and
// 100 Mbps. Google Cluster: 500 machines and 2000 VMs running low, bursty
// task workloads; we keep the same 50:50 server mix (the paper keeps it for
// its subset experiments too) but give the hosts more RAM, matching the
// beefier Google fleet.

// MIPS capacities: dual-core Xeon 3040 (G4) and Xeon 3075 (G5) as used in
// the CloudSim experiments the paper follows.
const (
	g4MIPS = 2 * 1860.0
	g5MIPS = 2 * 2660.0
)

// PlanetLabHosts builds m hosts alternating the paper's two server types.
func PlanetLabHosts(m int) ([]HostSpec, error) {
	return mixedHosts(m, 4096, 1000)
}

// GoogleHosts builds m hosts for the Google setup: same 50:50 type mix with
// a much larger memory footprint (Google's fleet is memory-rich), so CPU
// rather than RAM is the binding consolidation constraint.
func GoogleHosts(m int) ([]HostSpec, error) {
	return mixedHosts(m, 16384, 1000)
}

func mixedHosts(m int, ramMB, bwMbps float64) ([]HostSpec, error) {
	if m <= 0 {
		return nil, fmt.Errorf("sim: host count %d must be positive", m)
	}
	hosts := make([]HostSpec, m)
	g4 := power.HPProLiantG4()
	g5 := power.HPProLiantG5()
	for i := range hosts {
		spec := HostSpec{RAMMB: ramMB, BandwidthMbps: bwMbps}
		if i%2 == 0 {
			spec.MIPS = g4MIPS
			spec.Power = g4
		} else {
			spec.MIPS = g5MIPS
			spec.Power = g5
		}
		hosts[i] = spec
	}
	return hosts, nil
}

// vmMIPSOptions and vmRAMOptions are the instance-type mixes (1 vCPU,
// 0.5–2.5 GMIPS, 0.5–2 GiB) the CloudSim experiments draw from.
var (
	vmMIPSOptions = []float64{1000, 1500, 2000, 2500}
	vmRAMOptions  = []float64{613, 870, 1740}
	// Google task containers are small: sub-GiB memory footprints.
	googleRAMOptions = []float64{256, 512, 1024}
)

// PlanetLabVMs builds n VM specs drawn deterministically from the paper's
// instance-type mix with the given seed.
func PlanetLabVMs(n int, seed int64) ([]VMSpec, error) {
	return mixedVMs(n, seed, 100, vmRAMOptions)
}

// GoogleVMs builds n VM specs for the Google setup: same CPU mix but the
// small memory footprints of cluster task containers.
func GoogleVMs(n int, seed int64) ([]VMSpec, error) {
	return mixedVMs(n, seed, 100, googleRAMOptions)
}

func mixedVMs(n int, seed int64, bwMbps float64, ramOptions []float64) ([]VMSpec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: VM count %d must be positive", n)
	}
	r := rand.New(rand.NewSource(seed))
	vms := make([]VMSpec, n)
	for i := range vms {
		vms[i] = VMSpec{
			MIPS:          vmMIPSOptions[r.Intn(len(vmMIPSOptions))],
			RAMMB:         ramOptions[r.Intn(len(ramOptions))],
			BandwidthMbps: bwMbps,
		}
	}
	return vms, nil
}
