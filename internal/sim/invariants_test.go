package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"megh/internal/workload"
)

// chaosPolicy issues random migration requests, many of them invalid, to
// stress the engine's validation paths.
type chaosPolicy struct {
	rng *rand.Rand
}

func (chaosPolicy) Name() string { return "chaos" }

func (c *chaosPolicy) Decide(s *Snapshot) []Migration {
	n := c.rng.Intn(6)
	migs := make([]Migration, 0, n)
	for i := 0; i < n; i++ {
		migs = append(migs, Migration{
			VM:   c.rng.Intn(s.NumVMs()+2) - 1, // sometimes out of range
			Dest: c.rng.Intn(s.NumHosts()+2) - 1,
		})
	}
	return migs
}

// invariantProbe wraps another policy and checks structural invariants on
// every snapshot it sees.
type invariantProbe struct {
	inner Policy
	t     *testing.T
}

func (p *invariantProbe) Name() string { return p.inner.Name() }

func (p *invariantProbe) Decide(s *Snapshot) []Migration {
	t := p.t
	// Invariant 1: placement is a bijection-compatible assignment — every
	// VM appears on exactly one host's list, and that host matches VMHost.
	seen := make(map[int]int, s.NumVMs())
	for h, vms := range s.HostVMs {
		for _, vm := range vms {
			if prev, dup := seen[vm]; dup {
				t.Fatalf("step %d: VM %d on hosts %d and %d", s.Step, vm, prev, h)
			}
			seen[vm] = h
			if s.VMHost[vm] != h {
				t.Fatalf("step %d: VMHost[%d] = %d but listed on %d", s.Step, vm, s.VMHost[vm], h)
			}
		}
	}
	if len(seen) != s.NumVMs() {
		t.Fatalf("step %d: %d of %d VMs placed", s.Step, len(seen), s.NumVMs())
	}
	// Invariant 2: host utilization equals its VMs' demand sum.
	for h := range s.HostVMs {
		var mips float64
		for _, vm := range s.HostVMs[h] {
			mips += s.VMMIPS[vm]
		}
		if want := mips / s.HostSpecs[h].MIPS; math.Abs(want-s.HostUtil[h]) > 1e-9 {
			t.Fatalf("step %d: host %d util %g, demand sum %g", s.Step, h, s.HostUtil[h], want)
		}
	}
	// Invariant 3: RAM capacity is never exceeded.
	for h := range s.HostVMs {
		var ram float64
		for _, vm := range s.HostVMs[h] {
			ram += s.VMSpecs[vm].RAMMB
		}
		if ram > s.HostSpecs[h].RAMMB+1e-9 {
			t.Fatalf("step %d: host %d RAM %g over capacity %g", s.Step, h, ram, s.HostSpecs[h].RAMMB)
		}
	}
	return p.inner.Decide(s)
}

// TestQuickEngineInvariants drives random worlds with a chaos policy and
// asserts the engine preserves placement, utilization, RAM, and cost
// consistency throughout.
func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nHosts := 3 + r.Intn(8)
		// At most 2 VMs per host keeps any placement RAM-feasible
		// (2 × 1740 MiB < 4096 MiB).
		nVMs := 2 + r.Intn(2*nHosts-2)
		hosts, err := PlanetLabHosts(nHosts)
		if err != nil {
			t.Fatal(err)
		}
		vms, err := PlanetLabVMs(nVMs, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.DefaultPlanetLabConfig(seed)
		cfg.Steps = 30
		traces, err := workload.GeneratePlanetLab(cfg, nVMs)
		if err != nil {
			t.Fatal(err)
		}
		simCfg := Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: seed}
		if r.Intn(2) == 0 {
			simCfg.Failures = []Failure{{Host: r.Intn(nHosts), From: 5, Until: 15}}
		}
		s, err := New(simCfg)
		if err != nil {
			t.Fatal(err)
		}
		probe := &invariantProbe{inner: &chaosPolicy{rng: r}, t: t}
		res, err := s.Run(probe)
		if err != nil {
			// Random placement can legitimately fail only if RAM is
			// insufficient, which PlanetLab fleets of this size never are.
			t.Fatalf("run failed: %v", err)
		}
		// Invariant 4: cost decomposition and non-negativity.
		for _, m := range res.Steps {
			if m.EnergyCost < 0 || m.SLACost < 0 || m.DecideSeconds < 0 {
				return false
			}
			if math.Abs(m.TotalCost()-(m.EnergyCost+m.SLACost)) > 1e-12 {
				return false
			}
		}
		// Invariant 5: downtime fractions are valid fractions.
		for _, f := range res.VMDowntimeFrac {
			if f < 0 || f > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
