package sim

import (
	"math"
	"testing"

	"megh/internal/cost"
	"megh/internal/workload"
)

func TestResourceModulesDefaultOff(t *testing.T) {
	cfg := testConfig(t, []workload.Trace{{0.3}, {0.3}})
	s, _ := New(cfg)
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalResourceCost() != 0 {
		t.Fatalf("default resource cost = %g, want 0 (paper's CPU-only model)",
			res.TotalResourceCost())
	}
}

func TestMemoryModuleChargesActiveHosts(t *testing.T) {
	cfg := testConfig(t, []workload.Trace{{0.3, 0.3}, {0.3, 0.3}})
	params := cost.Default()
	params.MemoryPricePerGBHour = 0.01
	cfg.Cost = params
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Two active hosts (round-robin) × 4096 MiB × 0.01 USD/GB-h × 2 steps
	// of 300 s.
	want := 2 * 2 * 0.01 * 4 * (300.0 / 3600)
	if math.Abs(res.TotalResourceCost()-want) > 1e-12 {
		t.Fatalf("memory module cost = %g, want %g", res.TotalResourceCost(), want)
	}
	if math.Abs(res.TotalCost()-(res.TotalEnergyCost()+res.TotalSLACost()+res.TotalResourceCost())) > 1e-12 {
		t.Fatal("cost decomposition broken with resource module")
	}
}

func TestTransferModuleChargesMigrations(t *testing.T) {
	cfg := testConfig(t, []workload.Trace{{0.3}, {0.3}})
	params := cost.Default()
	params.MigrationTransferPricePerGB = 0.5
	cfg.Cost = params
	p := &scriptPolicy{script: map[int][]Migration{0: {{VM: 1, Dest: 0}}}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// One migration of a 1024 MiB VM = 1 GB × 0.5 USD.
	if want := 0.5; math.Abs(res.TotalResourceCost()-want) > 1e-12 {
		t.Fatalf("transfer module cost = %g, want %g", res.TotalResourceCost(), want)
	}
}

func TestResourceCostReachesLearnerFeedback(t *testing.T) {
	cfg := testConfig(t, []workload.Trace{{0.3}, {0.3}})
	params := cost.Default()
	params.MigrationTransferPricePerGB = 0.5
	cfg.Cost = params
	p := &scriptPolicy{script: map[int][]Migration{0: {{VM: 1, Dest: 0}}}}
	s, _ := New(cfg)
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	fb := p.feedback[0]
	if fb.ResourceCost != 0.5 {
		t.Fatalf("feedback resource cost = %g, want 0.5", fb.ResourceCost)
	}
	if math.Abs(fb.StepCost-(fb.EnergyCost+fb.SLACost+fb.ResourceCost)) > 1e-12 {
		t.Fatal("feedback decomposition broken")
	}
}

func TestCostResourceValidation(t *testing.T) {
	p := cost.Default()
	p.MemoryPricePerGBHour = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative memory price should fail")
	}
	p = cost.Default()
	p.MigrationTransferPricePerGB = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative transfer price should fail")
	}
	if cost.Default().MemoryCost(-1, 10) != 0 || cost.Default().TransferCost(0) != 0 {
		t.Fatal("degenerate module costs should be 0")
	}
}
