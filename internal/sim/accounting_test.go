package sim

import (
	"math"
	"testing"

	"megh/internal/cost"
	"megh/internal/workload"
)

// TestCumulativeAccountingRatchets demonstrates the difference between the
// two SLA accounting modes on the same scenario: one overloaded interval
// followed by clean ones. Per-interval charges once; cumulative keeps
// charging every interval after the tier is crossed (the ratchet DESIGN.md
// §5.4 documents).
func TestCumulativeAccountingRatchets(t *testing.T) {
	build := func(acct cost.SLAAccounting) *Result {
		t.Helper()
		cfg := testConfig(t, []workload.Trace{
			{0.95, 0.1, 0.1, 0.1, 0.1}, // overloads its host in step 0 only
			{0.1, 0.1, 0.1, 0.1, 0.1},
		})
		params := cost.Default()
		params.Accounting = acct
		cfg.Cost = params
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(nopPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	perInterval := build(cost.SLAPerInterval)
	cumulative := build(cost.SLACumulative)

	// Step 0 overloads (util 0.95 > β), later steps are clean.
	if perInterval.Steps[0].SLACost <= 0 {
		t.Fatal("per-interval: violating interval should cost")
	}
	for _, m := range perInterval.Steps[1:] {
		if m.SLACost != 0 {
			t.Fatalf("per-interval: clean step %d charged %g", m.Step, m.SLACost)
		}
	}
	// Cumulative: downtime fraction stays above the tier thresholds
	// (0.8333/k per step k), so every later interval keeps charging.
	for _, m := range cumulative.Steps {
		if m.SLACost <= 0 {
			t.Fatalf("cumulative: step %d should keep charging (ratchet)", m.Step)
		}
	}
	if cumulative.TotalSLACost() <= perInterval.TotalSLACost() {
		t.Fatalf("cumulative %.4f not above per-interval %.4f",
			cumulative.TotalSLACost(), perInterval.TotalSLACost())
	}
}

func TestAccountingValidation(t *testing.T) {
	p := cost.Default()
	p.Accounting = cost.SLAAccounting(9)
	if err := p.Validate(); err == nil {
		t.Fatal("unknown accounting should fail validation")
	}
	if cost.SLAPerInterval.String() != "per-interval" ||
		cost.SLACumulative.String() != "cumulative" {
		t.Fatal("accounting String() wrong")
	}
	if cost.SLAAccounting(9).String() == "" {
		t.Fatal("unknown accounting should still render")
	}
	// Both defined modes must pass simulator validation.
	for _, acct := range []cost.SLAAccounting{cost.SLAPerInterval, cost.SLACumulative} {
		cfg := testConfig(t, []workload.Trace{{0.1}, {0.1}})
		params := cost.Default()
		params.Accounting = acct
		cfg.Cost = params
		if _, err := New(cfg); err != nil {
			t.Fatalf("%v: %v", acct, err)
		}
	}
}

// TestAccountingModesAgreeOnEnergy pins that the accounting switch only
// affects SLA cost.
func TestAccountingModesAgreeOnEnergy(t *testing.T) {
	run := func(acct cost.SLAAccounting) float64 {
		cfg := testConfig(t, []workload.Trace{{0.5, 0.5}, {0.5, 0.5}})
		params := cost.Default()
		params.Accounting = acct
		cfg.Cost = params
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(nopPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalEnergyCost()
	}
	if a, b := run(cost.SLAPerInterval), run(cost.SLACumulative); math.Abs(a-b) > 1e-12 {
		t.Fatalf("energy differs across accounting modes: %g vs %g", a, b)
	}
}
