package sim

import (
	"fmt"
	"math/rand"
	"time"

	"megh/internal/cost"
	"megh/internal/obs"
	"megh/internal/trace"
)

// Feedback is the post-step signal delivered to policies that implement
// FeedbackReceiver. It is what lets learning policies (Megh, MadVM,
// Q-learning) observe the realised per-stage cost of their decisions.
type Feedback struct {
	// Step is the interval that just completed.
	Step int
	// Executed lists the migrations that actually happened.
	Executed []Migration
	// Rejected lists requested migrations refused by feasibility checks.
	Rejected []Migration
	// StepCost is the interval's total cost (energy + SLA), the per-stage
	// cost C(s_{t-1}, s_t) of Eq. 6.
	StepCost float64
	// EnergyCost, SLACost and ResourceCost break StepCost down.
	EnergyCost, SLACost, ResourceCost float64
}

// FeedbackReceiver is implemented by policies that learn from realised
// costs. Observe is called once per step, after the interval's cost is
// known and before the next Decide.
type FeedbackReceiver interface {
	Observe(fb *Feedback)
}

// Simulator executes Config against one Policy per Run call. Each Run
// starts from the same seeded initial placement, so several policies can be
// compared on identical conditions.
type Simulator struct {
	cfg Config
}

// New validates the configuration and returns a Simulator.
func New(cfg Config) (*Simulator, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	return &Simulator{cfg: norm}, nil
}

// Config returns the normalized configuration (defaults applied).
func (s *Simulator) Config() Config { return s.cfg }

// runState is the mutable world state of one Run.
type runState struct {
	cfg Config

	vmHost  []int
	hostVMs [][]int

	vmUtil   []float64
	vmMIPS   []float64
	hostUtil []float64

	// downtimeSec and requestedSec implement Eq. 4–5 accounting per VM;
	// stepDowntime is the current interval's share, which drives the
	// per-interval SLA refund.
	downtimeSec  []float64
	requestedSec []float64
	stepDowntime []float64

	history   [][]float64
	vmHistory [][]float64

	hostFailed []bool

	// VM lifecycle state: vmAlive is nil for fixed-population runs. The
	// lifecycle schedule is consumed by a cursor (events are sorted by
	// step at config normalization); arrivals that do not fit wait in
	// pendingArr in FIFO order and are retried every step.
	vmAlive     []bool
	lifeIdx     int
	pendingArr  []LifecycleEvent
	arrived     []int
	departed    []Departure
	departedIDs []int

	snap Snapshot

	// tracer and its scratch buffers; all nil/empty when tracing is off,
	// so the untraced hot loop pays one pointer test per guard.
	tracer     *trace.Tracer
	traceExec  []trace.Migration
	traceRej   []trace.Migration
	prevActive []bool
	woken      []int
	slept      []int

	// checker and its own pre-step buffers; independent of the tracer's so
	// enabling one never changes what the other observes.
	checker       Checker
	checkPrevHost []int
	checkPrevUp   []bool
	checkPrevLive []bool
	checkScratch  StepCheck
}

// Run executes the full horizon with the given policy and returns the
// collected metrics. State is rebuilt from the seed at every call.
func (s *Simulator) Run(p Policy) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	st, err := newRunState(s.cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Policy: p.Name(),
		Steps:  make([]StepMetrics, 0, s.cfg.Steps),
	}
	obsFeed := newObsFeed(s.cfg.Metrics, p.Name())
	receiver, _ := p.(FeedbackReceiver)
	for t := 0; t < s.cfg.Steps; t++ {
		metrics, fb, err := st.step(t, p)
		if err != nil {
			return nil, fmt.Errorf("sim: step %d: %w", t, err)
		}
		res.Steps = append(res.Steps, metrics)
		obsFeed.record(metrics)
		if receiver != nil {
			receiver.Observe(fb)
		}
		if s.cfg.Health != nil {
			s.cfg.Health.ObserveStep(t, metrics.DecideSeconds)
		}
	}
	res.VMDowntimeFrac = make([]float64, len(st.downtimeSec))
	for j := range st.downtimeSec {
		if st.requestedSec[j] > 0 {
			res.VMDowntimeFrac[j] = st.downtimeSec[j] / st.requestedSec[j]
		}
	}
	if err := s.cfg.Tracer.Flush(); err != nil {
		return nil, fmt.Errorf("sim: flushing trace: %w", err)
	}
	return res, nil
}

func newRunState(cfg Config) (*runState, error) {
	st := &runState{
		cfg:          cfg,
		vmHost:       make([]int, len(cfg.VMs)),
		hostVMs:      make([][]int, len(cfg.Hosts)),
		vmUtil:       make([]float64, len(cfg.VMs)),
		vmMIPS:       make([]float64, len(cfg.VMs)),
		hostUtil:     make([]float64, len(cfg.Hosts)),
		downtimeSec:  make([]float64, len(cfg.VMs)),
		requestedSec: make([]float64, len(cfg.VMs)),
		stepDowntime: make([]float64, len(cfg.VMs)),
		history:      make([][]float64, len(cfg.Hosts)),
		vmHistory:    make([][]float64, len(cfg.VMs)),
		hostFailed:   make([]bool, len(cfg.Hosts)),
	}
	if cfg.InitialAlive != nil || len(cfg.Lifecycle) > 0 {
		st.vmAlive = make([]bool, len(cfg.VMs))
		for j := range st.vmAlive {
			st.vmAlive[j] = cfg.InitialAlive == nil || cfg.InitialAlive[j]
		}
	}
	for i := range st.history {
		st.history[i] = make([]float64, 0, cfg.HistoryLen)
	}
	for j := range st.vmHistory {
		st.vmHistory[j] = make([]float64, 0, cfg.HistoryLen)
	}
	if err := st.place(); err != nil {
		return nil, err
	}
	st.tracer = cfg.Tracer
	if st.tracer != nil {
		st.prevActive = make([]bool, len(cfg.Hosts))
	}
	st.checker = cfg.Checker
	if st.checker != nil {
		st.checkPrevHost = make([]int, len(cfg.VMs))
		st.checkPrevUp = make([]bool, len(cfg.Hosts))
		if st.vmAlive != nil {
			st.checkPrevLive = make([]bool, len(cfg.VMs))
		}
	}
	st.snap = Snapshot{
		StepSeconds:       cfg.StepSeconds,
		OverloadThreshold: cfg.OverloadThreshold,
		VMHost:            st.vmHost,
		VMUtil:            st.vmUtil,
		VMMIPS:            st.vmMIPS,
		VMSpecs:           cfg.VMs,
		HostUtil:          st.hostUtil,
		HostVMs:           st.hostVMs,
		HostSpecs:         cfg.Hosts,
		HostHistory:       st.history,
		VMHistory:         st.vmHistory,
		HostFailed:        st.hostFailed,
		VMAlive:           st.vmAlive,
		migModel:          cfg.Migration,
	}
	return st, nil
}

// PlanInitialPlacement computes the initial VM→host assignment the given
// configuration produces, without running any step: entry j is VM j's
// starting host, or -1 for a slot that starts dead. Harnesses use it to
// pin a run's exact starting world (e.g. to relabel it for metamorphic
// tests) via PlacementExplicit.
func PlanInitialPlacement(cfg Config) ([]int, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	st, err := newRunState(norm)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), st.vmHost...), nil
}

// place computes the initial assignment. Slots that start dead get host
// -1 and are skipped by every strategy; they join the world only through
// a lifecycle arrival.
func (st *runState) place() error {
	cfg := st.cfg
	skip := func(vm int) bool {
		if st.vmAlive != nil && !st.vmAlive[vm] {
			st.vmHost[vm] = -1
			return true
		}
		return false
	}
	hostRAM := make([]float64, len(cfg.Hosts))
	assign := func(vm, host int) {
		st.vmHost[vm] = host
		st.hostVMs[host] = append(st.hostVMs[host], vm)
		hostRAM[host] += cfg.VMs[vm].RAMMB
	}
	fits := func(vm, host int) bool {
		return hostRAM[host]+cfg.VMs[vm].RAMMB <= cfg.Hosts[host].RAMMB
	}
	firstFit := func(vm int) error {
		for h := range cfg.Hosts {
			if fits(vm, h) {
				assign(vm, h)
				return nil
			}
		}
		return fmt.Errorf("sim: VM %d (%.0f MiB) does not fit on any host", vm, cfg.VMs[vm].RAMMB)
	}
	switch cfg.InitialPlacement {
	case PlacementRandom:
		r := rand.New(rand.NewSource(cfg.Seeds().Placement()))
		for vm := range cfg.VMs {
			if skip(vm) {
				continue
			}
			placed := false
			for try := 0; try < 4*len(cfg.Hosts); try++ {
				h := r.Intn(len(cfg.Hosts))
				if fits(vm, h) {
					assign(vm, h)
					placed = true
					break
				}
			}
			if !placed {
				if err := firstFit(vm); err != nil {
					return err
				}
			}
		}
	case PlacementRoundRobin:
		for vm := range cfg.VMs {
			if skip(vm) {
				continue
			}
			placed := false
			for off := 0; off < len(cfg.Hosts); off++ {
				h := (vm + off) % len(cfg.Hosts)
				if fits(vm, h) {
					assign(vm, h)
					placed = true
					break
				}
			}
			if !placed {
				return fmt.Errorf("sim: VM %d does not fit on any host", vm)
			}
		}
	case PlacementFirstFit:
		for vm := range cfg.VMs {
			if skip(vm) {
				continue
			}
			if err := firstFit(vm); err != nil {
				return err
			}
		}
	case PlacementExplicit:
		for vm, h := range cfg.InitialAssignment {
			if skip(vm) {
				continue
			}
			if !fits(vm, h) {
				return fmt.Errorf("sim: explicit assignment overcommits host %d at VM %d", h, vm)
			}
			assign(vm, h)
		}
	default:
		return fmt.Errorf("sim: unknown placement %v", cfg.InitialPlacement)
	}
	return nil
}

// step executes one τ-interval: sample utilizations, let the policy decide,
// execute migrations, and integrate costs. Migrations take effect within
// the interval they are ordered in (live migration completes in seconds,
// τ is minutes), so a policy that reacts to an overload in the same step
// prevents that interval's overload downtime — the reason reactive
// heuristics show zero overloaded host-steps in the metrics.
func (st *runState) step(t int, p Policy) (StepMetrics, *Feedback, error) {
	cfg := st.cfg
	tau := cfg.StepSeconds

	// 0. Capture pre-step host activity and slot liveness: lifecycle
	// events (and later migrations) are the only things that change them,
	// so the before/after comparison yields this step's transitions for
	// the tracer's wake/sleep lists and the checker's churn audit.
	if st.tracer != nil {
		st.traceExec = st.traceExec[:0]
		st.traceRej = st.traceRej[:0]
		for i := range st.hostVMs {
			st.prevActive[i] = len(st.hostVMs[i]) > 0
		}
	}
	if st.checker != nil {
		for i := range st.hostVMs {
			st.checkPrevUp[i] = len(st.hostVMs[i]) > 0
		}
		copy(st.checkPrevLive, st.vmAlive)
	}

	// 1. Read the failure schedule, apply this step's lifecycle events,
	// then read utilization samples. Failures come first so an arrival
	// never places onto a host that is down this interval; departures
	// come before arrivals so the capacity they free is usable at once.
	for i := range st.hostFailed {
		st.hostFailed[i] = false
	}
	for _, f := range cfg.Failures {
		if t >= f.From && t < f.Until {
			st.hostFailed[f.Host] = true
		}
	}
	st.arrived = st.arrived[:0]
	st.departed = st.departed[:0]
	for st.lifeIdx < len(cfg.Lifecycle) && cfg.Lifecycle[st.lifeIdx].Step <= t {
		ev := cfg.Lifecycle[st.lifeIdx]
		st.lifeIdx++
		switch ev.Kind {
		case VMArrive:
			if !st.vmAlive[ev.VM] && !st.arrivalPending(ev.VM) {
				st.pendingArr = append(st.pendingArr, ev)
			}
		case VMDepart:
			if st.vmAlive[ev.VM] {
				st.depart(ev.VM)
			} else {
				st.cancelArrival(ev.VM)
			}
		}
	}
	for j := range cfg.VMs {
		st.stepDowntime[j] = 0
		if st.vmAlive != nil && !st.vmAlive[j] {
			st.vmUtil[j] = 0
			st.vmMIPS[j] = 0
			continue
		}
		u := cfg.Traces[j].At(t)
		st.vmUtil[j] = u
		st.vmMIPS[j] = u * cfg.VMs[j].MIPS
	}
	st.placeArrivals(t)
	st.recomputeHostUtil()

	// 2. Record the observed (pre-decision) utilization into the host and
	// VM history windows; MMT's adaptive detectors and the correlation-
	// based selection policies consume these.
	for i := range st.history {
		st.history[i] = pushWindow(st.history[i], st.hostUtil[i], cfg.HistoryLen)
	}
	for j := range st.vmHistory {
		st.vmHistory[j] = pushWindow(st.vmHistory[j], st.vmUtil[j], cfg.HistoryLen)
	}

	// 3. Ask the policy, timing the call. The checker's placement view is
	// captured here — after lifecycle, before migrations — so migration
	// accounting audits against the world the policy actually saw.
	if st.checker != nil {
		copy(st.checkPrevHost, st.vmHost)
	}
	st.snap.Step = t
	start := time.Now()
	migrations := p.Decide(&st.snap)
	decideDur := time.Since(start)
	decideSeconds := decideDur.Seconds()

	// 4. Execute migrations with feasibility checks.
	fb := &Feedback{Step: t}
	var resource float64
	migrated := make(map[int]bool, len(migrations))
	for _, m := range migrations {
		if m.VM < 0 || m.VM >= len(cfg.VMs) || m.Dest < 0 || m.Dest >= len(cfg.Hosts) {
			fb.Rejected = append(fb.Rejected, m)
			if st.tracer != nil {
				from := -1
				if m.VM >= 0 && m.VM < len(cfg.VMs) {
					from = st.vmHost[m.VM]
				}
				st.traceRej = append(st.traceRej, trace.Migration{
					VM: m.VM, From: from, Dest: m.Dest, Reason: trace.RejectOutOfRange})
			}
			continue
		}
		if st.vmAlive != nil && !st.vmAlive[m.VM] {
			fb.Rejected = append(fb.Rejected, m)
			if st.tracer != nil {
				st.traceRej = append(st.traceRej, trace.Migration{
					VM: m.VM, From: st.vmHost[m.VM], Dest: m.Dest, Reason: trace.RejectDeadVM})
			}
			continue
		}
		if st.vmHost[m.VM] == m.Dest {
			continue // stay: free no-op
		}
		if migrated[m.VM] || !st.snap.FitsOn(m.VM, m.Dest) {
			fb.Rejected = append(fb.Rejected, m)
			if st.tracer != nil {
				reason := trace.RejectInfeasible
				if migrated[m.VM] {
					reason = trace.RejectDuplicate
				}
				st.traceRej = append(st.traceRej, trace.Migration{
					VM: m.VM, From: st.vmHost[m.VM], Dest: m.Dest, Reason: reason})
			}
			continue
		}
		migrated[m.VM] = true
		// Live-migration downtime (Eq. 5 with the α model folded into
		// MigrationDowntimeFactor), plus the optional transfer-volume
		// price module.
		migSec := st.snap.MigrationSeconds(m.VM, m.Dest)
		st.stepDowntime[m.VM] += migSec * cfg.Cost.MigrationDowntimeFactor
		resource += cfg.Cost.TransferCost(cfg.VMs[m.VM].RAMMB)
		if st.tracer != nil {
			st.traceExec = append(st.traceExec, trace.Migration{
				VM: m.VM, From: st.vmHost[m.VM], Dest: m.Dest, Seconds: migSec})
		}
		st.move(m.VM, m.Dest)
		fb.Executed = append(fb.Executed, m)
	}
	if len(fb.Executed) > 0 {
		st.recomputeHostUtil()
	}

	// 5. Overload downtime (Eq. 4): every VM spending this interval on an
	// overloaded host accrues downtime proportional to the overload
	// severity — a host just past β barely degrades its VMs, one at full
	// saturation suspends them for the whole interval. VMs stranded on a
	// failed host are fully down.
	overloaded, failed := 0, 0
	for i := range st.hostUtil {
		if st.hostFailed[i] {
			failed++
			for _, j := range st.hostVMs[i] {
				st.stepDowntime[j] += tau
			}
			continue
		}
		if len(st.hostVMs[i]) == 0 {
			continue
		}
		if u := st.hostUtil[i]; u > cfg.OverloadThreshold {
			overloaded++
			severity := (u - cfg.OverloadThreshold) / (1 - cfg.OverloadThreshold)
			if severity > 1 {
				severity = 1
			}
			for _, j := range st.hostVMs[i] {
				st.stepDowntime[j] += tau * severity
			}
		}
	}

	// 6. Energy cost (Eq. 2): active hosts draw table power at their
	// (capped) utilization; empty hosts sleep and failed hosts are off.
	var energy float64
	for i := range st.hostUtil {
		if len(st.hostVMs[i]) == 0 || st.hostFailed[i] {
			continue
		}
		u := st.hostUtil[i]
		if u > 1 {
			u = 1
		}
		energy += cfg.Cost.EnergyCost(cfg.Hosts[i].Power.Power(u), tau)
		resource += cfg.Cost.MemoryCost(cfg.Hosts[i].RAMMB, tau)
	}

	// 7. SLA cost (Eq. 3): tiered refund on each VM's interval revenue.
	// Under the default per-interval accounting the refund is keyed on
	// the interval's own downtime fraction, keeping ΔC_v(s_{t-1}, s_t) a
	// true per-stage cost (Eq. 6); under SLACumulative it is keyed on
	// the cumulative downtime percentage, the paper's Eq. 3 verbatim.
	cumulative := cfg.Cost.Accounting == cost.SLACumulative
	var sla float64
	for j := range cfg.VMs {
		if st.vmAlive != nil && !st.vmAlive[j] {
			continue // dead slot: no service requested, no refund owed
		}
		st.requestedSec[j] += tau
		st.downtimeSec[j] += st.stepDowntime[j]
		var frac float64
		if cumulative {
			frac = st.downtimeSec[j] / st.requestedSec[j]
		} else {
			frac = st.stepDowntime[j] / tau
		}
		if frac > 1 {
			frac = 1
		}
		sla += cfg.Cost.SLACost(frac, tau)
	}

	fb.EnergyCost = energy
	fb.SLACost = sla
	fb.ResourceCost = resource
	fb.StepCost = energy + sla + resource

	active := st.snap.ActiveHosts()
	if st.tracer != nil {
		st.emitStepEvent(t, fb, active, overloaded, failed, decideDur)
	}

	metrics := StepMetrics{
		Step:             t,
		EnergyCost:       energy,
		SLACost:          sla,
		ResourceCost:     resource,
		Migrations:       len(fb.Executed),
		Rejected:         len(fb.Rejected),
		ActiveHosts:      active,
		OverloadedHosts:  overloaded,
		FailedHosts:      failed,
		DecideSeconds:    decideSeconds,
		LiveVMs:          st.snap.LiveVMs(),
		Arrivals:         len(st.arrived),
		Departures:       len(st.departed),
		DeferredArrivals: len(st.pendingArr),
	}
	if st.checker != nil {
		st.checkScratch = StepCheck{
			Step:       t,
			Snapshot:   &st.snap,
			Feedback:   fb,
			Metrics:    metrics,
			PrevVMHost: st.checkPrevHost,
			PrevActive: st.checkPrevUp,
			PrevAlive:  st.checkPrevLive,
			Arrived:    st.arrived,
			Departed:   st.departed,
		}
		if err := st.checker.CheckStep(&st.checkScratch); err != nil {
			return metrics, fb, fmt.Errorf("invariant violated: %w", err)
		}
	}
	return metrics, fb, nil
}

// emitStepEvent writes the environment-side trace event for step t: what
// was executed or refused, the realised cost decomposition, and which
// hosts woke or went to sleep as a result of the step's migrations.
// Decide wall time is recorded only when the tracer opts into timings,
// keeping the default trace byte-identical across same-seed runs.
func (st *runState) emitStepEvent(t int, fb *Feedback, active, overloaded, failed int, decideDur time.Duration) {
	st.woken = st.woken[:0]
	st.slept = st.slept[:0]
	for i := range st.hostVMs {
		nowActive := len(st.hostVMs[i]) > 0
		switch {
		case nowActive && !st.prevActive[i]:
			st.woken = append(st.woken, i)
		case !nowActive && st.prevActive[i]:
			st.slept = append(st.slept, i)
		}
	}
	ev := trace.Event{
		Kind:            trace.KindStep,
		Step:            t,
		Digest:          trace.DigestString(trace.Digest64(t, st.vmHost, st.hostFailed)),
		Executed:        st.traceExec,
		Rejected:        st.traceRej,
		EnergyCost:      fb.EnergyCost,
		SLACost:         fb.SLACost,
		ResourceCost:    fb.ResourceCost,
		StepCost:        fb.StepCost,
		ActiveHosts:     active,
		OverloadedHosts: overloaded,
		FailedHosts:     failed,
		Woken:           st.woken,
		Slept:           st.slept,
	}
	if st.vmAlive != nil {
		st.departedIDs = st.departedIDs[:0]
		for _, d := range st.departed {
			st.departedIDs = append(st.departedIDs, d.VM)
		}
		ev.Arrived = st.arrived
		ev.Departed = st.departedIDs
		ev.LiveVMs = st.snap.LiveVMs()
	}
	if st.tracer.Timings() {
		ev.DecideNanos = decideDur.Nanoseconds()
	}
	st.tracer.Emit(&ev)
}

// obsFeed mirrors per-step metrics into an obs registry, labelled by
// policy name. A nil registry yields a nil feed whose record is a no-op,
// keeping the hot loop branch-cheap for unmetered runs.
type obsFeed struct {
	decideSeconds   *obs.Histogram
	steps           *obs.Counter
	migrations      *obs.Counter
	rejections      *obs.Counter
	overloadedSteps *obs.Counter
	failedSteps     *obs.Counter
	activeHosts     *obs.Gauge
}

func newObsFeed(reg *obs.Registry, policy string) *obsFeed {
	if reg == nil {
		return nil
	}
	l := obs.Labels{"policy": policy}
	return &obsFeed{
		decideSeconds: reg.Histogram("megh_sim_decide_seconds",
			"Wall-clock time the policy spent in Decide, per step.", l),
		steps: reg.Counter("megh_sim_steps_total",
			"Simulated τ-intervals executed.", l),
		migrations: reg.Counter("megh_sim_migrations_total",
			"Live migrations executed.", l),
		rejections: reg.Counter("megh_sim_rejections_total",
			"Requested migrations refused by feasibility checks.", l),
		overloadedSteps: reg.Counter("megh_sim_overloaded_host_steps_total",
			"Host-steps spent above the overload threshold β.", l),
		failedSteps: reg.Counter("megh_sim_failed_host_steps_total",
			"Host-steps spent in an injected outage.", l),
		activeHosts: reg.Gauge("megh_sim_active_hosts",
			"Hosts running at least one VM after the step's migrations.", l),
	}
}

func (f *obsFeed) record(m StepMetrics) {
	if f == nil {
		return
	}
	f.decideSeconds.Observe(m.DecideSeconds)
	f.steps.Inc()
	f.migrations.Add(int64(m.Migrations))
	f.rejections.Add(int64(m.Rejected))
	f.overloadedSteps.Add(int64(m.OverloadedHosts))
	f.failedSteps.Add(int64(m.FailedHosts))
	f.activeHosts.Set(float64(m.ActiveHosts))
}

// pushWindow appends x to a fixed-capacity trailing window, evicting the
// oldest sample once full.
func pushWindow(w []float64, x float64, capLen int) []float64 {
	if len(w) == capLen {
		copy(w, w[1:])
		w = w[:capLen-1]
	}
	return append(w, x)
}

// depart takes live slot vm down: it leaves its host's list (the host may
// fall asleep), frees the RAM and MIPS it held, and reads host -1 until a
// lifecycle arrival brings it back.
func (st *runState) depart(vm int) {
	src := st.vmHost[vm]
	vms := st.hostVMs[src]
	for k, v := range vms {
		if v == vm {
			vms[k] = vms[len(vms)-1]
			st.hostVMs[src] = vms[:len(vms)-1]
			break
		}
	}
	st.vmHost[vm] = -1
	st.vmAlive[vm] = false
	st.departed = append(st.departed, Departure{VM: vm, Host: src})
}

// arrivalPending reports whether slot vm already waits in the deferred
// arrival queue.
func (st *runState) arrivalPending(vm int) bool {
	for _, e := range st.pendingArr {
		if e.VM == vm {
			return true
		}
	}
	return false
}

// cancelArrival drops slot vm's queued arrival, if any — a departure of a
// dead slot means "this instance is gone", including one still waiting for
// capacity.
func (st *runState) cancelArrival(vm int) {
	for k, e := range st.pendingArr {
		if e.VM == vm {
			st.pendingArr = append(st.pendingArr[:k], st.pendingArr[k+1:]...)
			return
		}
	}
}

// placeArrivals tries to place every queued arrival, in FIFO order, onto
// its pinned host or the first host with room in both dimensions at this
// step's demand. Unplaced arrivals stay queued for the next step.
func (st *runState) placeArrivals(t int) {
	if len(st.pendingArr) == 0 {
		return
	}
	kept := st.pendingArr[:0]
	for _, ev := range st.pendingArr {
		j := ev.VM
		u := st.cfg.Traces[j].At(t)
		demand := u * st.cfg.VMs[j].MIPS
		host := -1
		if ev.Host >= 0 {
			if st.hostFitsArrival(ev.Host, j, demand) {
				host = ev.Host
			}
		} else {
			for i := range st.cfg.Hosts {
				if st.hostFitsArrival(i, j, demand) {
					host = i
					break
				}
			}
		}
		if host < 0 {
			kept = append(kept, ev)
			continue
		}
		st.vmAlive[j] = true
		st.vmHost[j] = host
		st.hostVMs[host] = append(st.hostVMs[host], j)
		st.vmUtil[j] = u
		st.vmMIPS[j] = demand
		st.arrived = append(st.arrived, j)
	}
	st.pendingArr = kept
}

// hostFitsArrival reports whether host i can take arriving VM j at demand
// MIPS: not failed, and spare RAM and CPU at current occupancy.
func (st *runState) hostFitsArrival(i, j int, demand float64) bool {
	if st.hostFailed[i] {
		return false
	}
	var ram, mips float64
	for _, other := range st.hostVMs[i] {
		ram += st.cfg.VMs[other].RAMMB
		mips += st.vmMIPS[other]
	}
	return ram+st.cfg.VMs[j].RAMMB <= st.cfg.Hosts[i].RAMMB &&
		mips+demand <= st.cfg.Hosts[i].MIPS
}

// move reassigns VM j to host dest.
func (st *runState) move(j, dest int) {
	src := st.vmHost[j]
	vms := st.hostVMs[src]
	for k, v := range vms {
		if v == j {
			vms[k] = vms[len(vms)-1]
			st.hostVMs[src] = vms[:len(vms)-1]
			break
		}
	}
	st.vmHost[j] = dest
	st.hostVMs[dest] = append(st.hostVMs[dest], j)
}

func (st *runState) recomputeHostUtil() {
	for i := range st.hostUtil {
		var mips float64
		for _, j := range st.hostVMs[i] {
			mips += st.vmMIPS[j]
		}
		st.hostUtil[i] = mips / st.cfg.Hosts[i].MIPS
	}
}
