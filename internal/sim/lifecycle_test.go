package sim

import (
	"bytes"
	"strings"
	"testing"

	"megh/internal/trace"
	"megh/internal/workload"
)

// flatTraces builds n identical flat traces of the given level and length.
func flatTraces(n, steps int, level float64) []workload.Trace {
	traces := make([]workload.Trace, n)
	for i := range traces {
		tr := make(workload.Trace, steps)
		for t := range tr {
			tr[t] = level
		}
		traces[i] = tr
	}
	return traces
}

// lifecycleConfig builds a world with 3 hosts and 3 VM slots where slot 2
// starts dead.
func lifecycleConfig(t *testing.T, steps int) Config {
	t.Helper()
	cfg := testConfig(t, flatTraces(2, steps, 0.3))
	cfg.VMs = append(cfg.VMs, cfg.VMs[0])
	cfg.Traces = append(cfg.Traces, flatTraces(1, steps, 0.3)[0])
	cfg.InitialAlive = []bool{true, true, false}
	return cfg
}

func TestLifecycleArriveAndDepart(t *testing.T) {
	cfg := lifecycleConfig(t, 6)
	cfg.Lifecycle = []LifecycleEvent{
		{Step: 2, VM: 2, Kind: VMArrive, Host: -1},
		{Step: 4, VM: 0, Kind: VMDepart},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	wantLive := []int{2, 2, 3, 3, 2, 2}
	for i, m := range res.Steps {
		if m.LiveVMs != wantLive[i] {
			t.Errorf("step %d: %d live VMs, want %d", i, m.LiveVMs, wantLive[i])
		}
	}
	if got := res.TotalArrivals(); got != 1 {
		t.Errorf("TotalArrivals = %d, want 1", got)
	}
	if got := res.TotalDepartures(); got != 1 {
		t.Errorf("TotalDepartures = %d, want 1", got)
	}
	if got, want := res.MeanLiveVMs(), 14.0/6.0; got != want {
		t.Errorf("MeanLiveVMs = %g, want %g", got, want)
	}
	if res.Steps[2].Arrivals != 1 || res.Steps[4].Departures != 1 {
		t.Errorf("arrival/departure landed on wrong steps: %+v", res.Steps)
	}
}

// occupancyPolicy records each step's live set and placements.
type occupancyPolicy struct {
	hosts  [][]int
	alive  [][]bool
	orders map[int][]Migration
}

func (p *occupancyPolicy) Name() string { return "occupancy" }
func (p *occupancyPolicy) Decide(s *Snapshot) []Migration {
	p.hosts = append(p.hosts, append([]int(nil), s.VMHost...))
	p.alive = append(p.alive, append([]bool(nil), s.VMAlive...))
	return p.orders[s.Step]
}

func TestLifecycleDeadSlotInvisible(t *testing.T) {
	cfg := lifecycleConfig(t, 4)
	cfg.Lifecycle = []LifecycleEvent{{Step: 1, VM: 1, Kind: VMDepart}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &occupancyPolicy{}
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	// Slot 2 is dead throughout, slot 1 from step 1.
	for step, hosts := range p.hosts {
		if hosts[2] != -1 {
			t.Errorf("step %d: dead slot 2 on host %d", step, hosts[2])
		}
		if step >= 1 && hosts[1] != -1 {
			t.Errorf("step %d: departed slot 1 on host %d", step, hosts[1])
		}
		if p.alive[step][2] {
			t.Errorf("step %d: slot 2 reported alive", step)
		}
	}
}

func TestLifecycleDeadVMMigrationRejected(t *testing.T) {
	cfg := lifecycleConfig(t, 3)
	var buf bytes.Buffer
	tr, err := trace.New(trace.Options{W: &buf, RingSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tr
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &scriptPolicy{script: map[int][]Migration{1: {{VM: 2, Dest: 0}}}}
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Steps[1].Rejected != 1 || res.Steps[1].Migrations != 0 {
		t.Fatalf("dead-VM migration not rejected: %+v", res.Steps[1])
	}
	if !strings.Contains(buf.String(), trace.RejectDeadVM) {
		t.Fatalf("trace lacks %q rejection:\n%s", trace.RejectDeadVM, buf.String())
	}
}

func TestLifecycleDeferredArrivalAndCancel(t *testing.T) {
	// One tiny host fully occupied by VM 0: VM 1's arrival must defer
	// until VM 0 departs; VM 2's arrival is cancelled by its departure
	// while still pending.
	cfg := lifecycleConfig(t, 6)
	cfg.Hosts = cfg.Hosts[:1]
	cfg.Hosts[0].RAMMB = 1500 // fits exactly one 1024 MiB VM
	cfg.InitialAlive = []bool{true, false, false}
	cfg.Lifecycle = []LifecycleEvent{
		{Step: 1, VM: 1, Kind: VMArrive, Host: -1},
		{Step: 1, VM: 2, Kind: VMArrive, Host: -1},
		{Step: 2, VM: 2, Kind: VMDepart}, // cancels 2's pending arrival
		{Step: 3, VM: 0, Kind: VMDepart}, // frees the host for VM 1
	}
	cfg.InitialPlacement = PlacementFirstFit
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	wantLive := []int{1, 1, 1, 1, 1, 1} // 0 alone, then 1 alone after the swap
	wantDeferred := []int{0, 2, 1, 0, 0, 0}
	for i, m := range res.Steps {
		if m.LiveVMs != wantLive[i] {
			t.Errorf("step %d: %d live, want %d", i, m.LiveVMs, wantLive[i])
		}
		if m.DeferredArrivals != wantDeferred[i] {
			t.Errorf("step %d: %d deferred, want %d", i, m.DeferredArrivals, wantDeferred[i])
		}
	}
	// VM 1 placed exactly when VM 0 left (same step: departures precede
	// arrival retries).
	if res.Steps[3].Arrivals != 1 || res.Steps[3].Departures != 1 {
		t.Fatalf("step 3 should swap 0→1: %+v", res.Steps[3])
	}
	if res.TotalArrivals() != 1 {
		t.Fatalf("cancelled arrival still placed: %d arrivals", res.TotalArrivals())
	}
}

func TestLifecyclePinnedArrivalHost(t *testing.T) {
	cfg := lifecycleConfig(t, 3)
	cfg.Lifecycle = []LifecycleEvent{{Step: 1, VM: 2, Kind: VMArrive, Host: 2}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &occupancyPolicy{}
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := p.hosts[1][2]; got != 2 {
		t.Fatalf("pinned arrival placed on host %d, want 2", got)
	}
}

func TestLifecycleArrivalAvoidsFailedHost(t *testing.T) {
	cfg := lifecycleConfig(t, 3)
	cfg.Failures = []Failure{{Host: 0, From: 0, Until: 3}}
	cfg.Lifecycle = []LifecycleEvent{{Step: 1, VM: 2, Kind: VMArrive, Host: -1}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &occupancyPolicy{}
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := p.hosts[1][2]; got == 0 {
		t.Fatal("arrival placed on failed host 0")
	}
	if got := p.hosts[1][2]; got < 0 {
		t.Fatalf("arrival not placed: host %d", got)
	}
}

func TestLifecycleSLANotAccruedWhileDead(t *testing.T) {
	cfg := lifecycleConfig(t, 10)
	// Slot 2 alive only for the last 4 steps; a host failure downs it for
	// one of them.
	cfg.Lifecycle = []LifecycleEvent{{Step: 6, VM: 2, Kind: VMArrive, Host: 2}}
	cfg.Failures = []Failure{{Host: 2, From: 8, Until: 9}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Requested time = 4 steps, down 1 step → 25% downtime. Had the dead
	// steps accrued requested time, the fraction would be 10%.
	if got, want := res.VMDowntimeFrac[2], 0.25; got != want {
		t.Fatalf("VM 2 downtime fraction %g, want %g", got, want)
	}
}

func TestLifecycleTraceEventsCarryChurn(t *testing.T) {
	cfg := lifecycleConfig(t, 4)
	cfg.Lifecycle = []LifecycleEvent{
		{Step: 1, VM: 2, Kind: VMArrive, Host: -1},
		{Step: 2, VM: 0, Kind: VMDepart},
	}
	var buf bytes.Buffer
	tr, err := trace.New(trace.Options{W: &buf, RingSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tr
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nopPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"arrived":[2]`, `"departed":[0]`, `"live_vms":3`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace lacks %s:\n%s", want, out)
		}
	}
}

func TestLegacyTraceHasNoChurnFields(t *testing.T) {
	cfg := testConfig(t, flatTraces(2, 4, 0.3))
	var buf bytes.Buffer
	tr, err := trace.New(trace.Options{W: &buf, RingSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tr
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nopPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"arrived", "departed", "live_vms"} {
		if strings.Contains(buf.String(), banned) {
			t.Errorf("fixed-population trace carries %q — legacy byte-compat broken", banned)
		}
	}
}

func TestPlanInitialPlacement(t *testing.T) {
	cfg := lifecycleConfig(t, 3)
	cfg.InitialPlacement = PlacementFirstFit
	hosts, err := PlanInitialPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 3 {
		t.Fatalf("got %d entries, want 3", len(hosts))
	}
	if hosts[0] < 0 || hosts[1] < 0 {
		t.Fatalf("live slots unplaced: %v", hosts)
	}
	if hosts[2] != -1 {
		t.Fatalf("dead slot placed on host %d", hosts[2])
	}
}

func TestLifecycleEventValidation(t *testing.T) {
	cfg := lifecycleConfig(t, 3)
	for name, ev := range map[string]LifecycleEvent{
		"negative step": {Step: -1, VM: 2, Kind: VMArrive, Host: -1},
		"bad vm":        {Step: 0, VM: 9, Kind: VMArrive, Host: -1},
		"bad kind":      {Step: 0, VM: 2, Kind: 0},
		"bad host":      {Step: 0, VM: 2, Kind: VMArrive, Host: 99},
	} {
		c := cfg
		c.Lifecycle = []LifecycleEvent{ev}
		if _, err := New(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	bad := cfg
	bad.InitialAlive = []bool{true}
	if _, err := New(bad); err == nil {
		t.Error("short InitialAlive accepted")
	}
}
