package sim

import (
	"strings"
	"testing"

	"megh/internal/workload"
)

// TestExplicitPlacement pins the PlacementExplicit contract: the assignment
// is honoured VM for VM, and supplying InitialAssignment alone auto-selects
// the mode.
func TestExplicitPlacement(t *testing.T) {
	traces := []workload.Trace{{0.5, 0.5}, {0.5, 0.5}}
	cfg := testConfig(t, traces)
	cfg.InitialPlacement = 0 // auto-select from the assignment
	cfg.InitialAssignment = []int{2, 0}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	res, err := s.Run(&snapGrabberPolicy{onFirst: func(snap *Snapshot) {
		got = append([]int(nil), snap.VMHost...)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("ran %d steps", len(res.Steps))
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("initial placement %v, want [2 0]", got)
	}
}

// snapGrabberPolicy observes the first snapshot and migrates nothing.
type snapGrabberPolicy struct {
	onFirst func(*Snapshot)
	seen    bool
}

func (p *snapGrabberPolicy) Name() string { return "grab" }

func (p *snapGrabberPolicy) Decide(snap *Snapshot) []Migration {
	if !p.seen {
		p.seen = true
		p.onFirst(snap)
	}
	return nil
}

func TestExplicitPlacementRejectsBadAssignments(t *testing.T) {
	traces := []workload.Trace{{0.5}, {0.5}}
	cases := []struct {
		name    string
		mutate  func(*Config)
		errLike string
	}{
		{"wrong-length", func(c *Config) {
			c.InitialAssignment = []int{0}
		}, "covers 1 of 2"},
		{"unknown-host", func(c *Config) {
			c.InitialAssignment = []int{0, 9}
		}, "unknown host"},
		{"overcommit", func(c *Config) {
			// Both VMs on host 0: 2×1024 MiB fits in 4096, so shrink the RAM.
			c.Hosts[0].RAMMB = 1500
			c.InitialAssignment = []int{0, 0}
		}, "overcommits"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, traces)
			cfg.InitialPlacement = PlacementExplicit
			tc.mutate(&cfg)
			s, err := New(cfg)
			if err == nil {
				_, err = s.Run(nopPolicy{})
			}
			if err == nil {
				t.Fatal("bad explicit assignment accepted")
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
		})
	}
}
