package sim

import (
	"math"
	"testing"

	"megh/internal/power"
	"megh/internal/workload"
)

func failureConfig(t *testing.T, failures []Failure) Config {
	t.Helper()
	cfg := testConfig(t, []workload.Trace{{0.3, 0.3, 0.3, 0.3}, {0.3, 0.3, 0.3, 0.3}})
	cfg.Failures = failures
	return cfg
}

func TestFailureValidation(t *testing.T) {
	bad := []Failure{
		{Host: -1, From: 0, Until: 1},
		{Host: 9, From: 0, Until: 1},
		{Host: 0, From: -1, Until: 1},
		{Host: 0, From: 2, Until: 2},
		{Host: 0, From: 3, Until: 1},
	}
	for i, f := range bad {
		cfg := failureConfig(t, []Failure{f})
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, f)
		}
	}
}

func TestFailedHostFullyDownsItsVMs(t *testing.T) {
	// VM 0 sits on host 0 (round-robin); host 0 fails for steps 1–2.
	cfg := failureConfig(t, []Failure{{Host: 0, From: 1, Until: 3}})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Two failed intervals of full downtime out of four.
	if want := 2.0 / 4.0; math.Abs(res.VMDowntimeFrac[0]-want) > 1e-12 {
		t.Fatalf("VM0 downtime frac = %g, want %g", res.VMDowntimeFrac[0], want)
	}
	if res.VMDowntimeFrac[1] != 0 {
		t.Fatal("VM on healthy host accrued downtime")
	}
	for _, m := range res.Steps {
		wantFailed := 0
		if m.Step >= 1 && m.Step < 3 {
			wantFailed = 1
		}
		if m.FailedHosts != wantFailed {
			t.Fatalf("step %d: FailedHosts = %d, want %d", m.Step, m.FailedHosts, wantFailed)
		}
	}
}

func TestFailedHostDrawsNoPower(t *testing.T) {
	cfg := failureConfig(t, []Failure{{Host: 0, From: 0, Until: 4}})
	s, _ := New(cfg)
	res, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Only host 1 (the healthy one with VM 1 at 30%) draws power:
	// linear model 100 + 100·0.3 = 130 W.
	wantPerStep := s.Config().Cost.EnergyCost(130, 300)
	for _, m := range res.Steps {
		if math.Abs(m.EnergyCost-wantPerStep) > 1e-12 {
			t.Fatalf("step %d energy = %g, want %g (failed host must be off)",
				m.Step, m.EnergyCost, wantPerStep)
		}
	}
}

func TestMigrationToFailedHostRejected(t *testing.T) {
	cfg := failureConfig(t, []Failure{{Host: 2, From: 0, Until: 4}})
	p := &scriptPolicy{script: map[int][]Migration{0: {{VM: 0, Dest: 2}}}}
	s, _ := New(cfg)
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Migrations != 0 || res.Steps[0].Rejected != 1 {
		t.Fatalf("migration to failed host: executed %d rejected %d, want 0/1",
			res.Steps[0].Migrations, res.Steps[0].Rejected)
	}
}

func TestEvacuationFromFailedHostWorks(t *testing.T) {
	// The failed host's VM can be moved away; downtime stops accruing.
	cfg := failureConfig(t, []Failure{{Host: 0, From: 0, Until: 4}})
	p := &scriptPolicy{script: map[int][]Migration{1: {{VM: 0, Dest: 2}}}}
	s, _ := New(cfg)
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[1].Migrations != 1 {
		t.Fatal("evacuation migration did not execute")
	}
	// Downtime: full steps 0 and 1 (migration executes within step 1 but
	// the host was down at its start — we charge the migration downtime
	// plus nothing further), then clean steps 2–3.
	frac := res.VMDowntimeFrac[0]
	if frac >= 0.75 {
		t.Fatalf("downtime frac = %g: evacuation did not stop the bleeding", frac)
	}
	if frac <= 0 {
		t.Fatal("failed intervals should have charged downtime")
	}
}

// TestPoliciesEvacuateFailedHost checks that both Megh-style overload
// handling and MMT react to an injected failure without bespoke code,
// because HostOverloaded reports failed hosts.
func TestSnapshotTreatsFailureAsOverload(t *testing.T) {
	cfg := failureConfig(t, []Failure{{Host: 0, From: 0, Until: 4}})
	var sawOverloaded, sawFailed, fitsFailed bool
	p := &probePolicy{onDecide: func(s *Snapshot) {
		if s.HostOverloaded(0) {
			sawOverloaded = true
		}
		if s.HostFailed[0] {
			sawFailed = true
		}
		if s.FitsOn(1, 0) {
			fitsFailed = true
		}
	}}
	s, _ := New(cfg)
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if !sawOverloaded {
		t.Error("failed host not reported as overloaded")
	}
	if !sawFailed {
		t.Error("HostFailed not surfaced in snapshot")
	}
	if fitsFailed {
		t.Error("FitsOn accepted a failed destination")
	}
}

// constantMigModel doubles as the custom-model plumbing test.
type constantMigModel struct{ sec float64 }

func (c constantMigModel) MigrationSeconds(*Snapshot, int, int) float64 { return c.sec }

var _ MigrationTimeModel = constantMigModel{}

func TestCustomMigrationModelUsed(t *testing.T) {
	lin, _ := power.NewLinear("test", 100, 200)
	host := HostSpec{MIPS: 1000, RAMMB: 4096, BandwidthMbps: 1000, Power: lin}
	vm := VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
	cfg := Config{
		Hosts:            []HostSpec{host, host},
		VMs:              []VMSpec{vm},
		Traces:           []workload.Trace{{0.3}},
		Steps:            1,
		InitialPlacement: PlacementRoundRobin,
		Migration:        constantMigModel{sec: 42},
	}
	p := &scriptPolicy{script: map[int][]Migration{0: {{VM: 0, Dest: 1}}}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 42 * s.Config().Cost.MigrationDowntimeFactor / 300
	if math.Abs(res.VMDowntimeFrac[0]-want) > 1e-12 {
		t.Fatalf("downtime frac = %g, want %g from the custom model", res.VMDowntimeFrac[0], want)
	}
}

func TestVMHistoryExposed(t *testing.T) {
	n := 20
	tr := make(workload.Trace, n)
	for i := range tr {
		tr[i] = float64(i) / float64(n)
	}
	cfg := testConfig(t, []workload.Trace{tr, tr})
	cfg.HistoryLen = 4
	var got []float64
	p := &probePolicy{onDecide: func(s *Snapshot) {
		if s.Step == n-1 {
			got = append([]float64(nil), s.VMHistory[0]...)
		}
	}}
	s, _ := New(cfg)
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("VM history length = %d, want 4", len(got))
	}
	want := []float64{16.0 / 20, 17.0 / 20, 18.0 / 20, 19.0 / 20}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("VMHistory[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
