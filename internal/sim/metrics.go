package sim

// StepMetrics records everything measured in one τ-interval.
type StepMetrics struct {
	// Step is the 0-based interval index.
	Step int
	// EnergyCost and SLACost are the interval's money costs (USD).
	EnergyCost float64
	SLACost    float64
	// ResourceCost is the optional memory/transfer modules' charge
	// (0 under the paper's default CPU-only cost model).
	ResourceCost float64
	// Migrations is how many live migrations were executed.
	Migrations int
	// Rejected counts requested migrations that failed feasibility checks.
	Rejected int
	// ActiveHosts is the number of hosts running ≥ 1 VM after migration.
	ActiveHosts int
	// OverloadedHosts is the number of hosts above β after migration
	// (excluding failed hosts, which are counted separately).
	OverloadedHosts int
	// FailedHosts is the number of hosts down due to injected failures.
	FailedHosts int
	// DecideSeconds is the wall-clock time the policy spent in Decide —
	// the per-iteration execution time of Tables 2–3 and Figures 2d–6.
	DecideSeconds float64
	// LiveVMs is the number of VM slots alive after this step's lifecycle
	// events (equal to the slot count in runs without lifecycle).
	LiveVMs int
	// Arrivals and Departures count the VM lifecycle events applied this
	// step; both stay 0 in fixed-population runs.
	Arrivals   int
	Departures int
	// DeferredArrivals is the number of arrivals still waiting for
	// capacity at the end of this step.
	DeferredArrivals int
}

// TotalCost returns the interval's energy + SLA + resource cost (Eq. 6,
// plus the optional §3.1 modules).
func (m StepMetrics) TotalCost() float64 {
	return m.EnergyCost + m.SLACost + m.ResourceCost
}

// Result aggregates a whole run.
type Result struct {
	// Policy is the policy's reported name.
	Policy string
	// Steps holds the per-interval metrics in order.
	Steps []StepMetrics
	// VMDowntimeFrac is each VM's final cumulative downtime fraction.
	VMDowntimeFrac []float64
}

// TotalCost returns the run's total operation cost (USD), the paper's
// primary metric.
func (r *Result) TotalCost() float64 {
	var s float64
	for _, m := range r.Steps {
		s += m.TotalCost()
	}
	return s
}

// TotalEnergyCost returns the run's summed energy cost.
func (r *Result) TotalEnergyCost() float64 {
	var s float64
	for _, m := range r.Steps {
		s += m.EnergyCost
	}
	return s
}

// TotalSLACost returns the run's summed SLA-violation cost.
func (r *Result) TotalSLACost() float64 {
	var s float64
	for _, m := range r.Steps {
		s += m.SLACost
	}
	return s
}

// TotalResourceCost returns the run's summed optional resource-module cost.
func (r *Result) TotalResourceCost() float64 {
	var s float64
	for _, m := range r.Steps {
		s += m.ResourceCost
	}
	return s
}

// TotalMigrations returns the run's total executed migrations.
func (r *Result) TotalMigrations() int {
	n := 0
	for _, m := range r.Steps {
		n += m.Migrations
	}
	return n
}

// TotalArrivals returns the run's total VM arrivals.
func (r *Result) TotalArrivals() int {
	n := 0
	for _, m := range r.Steps {
		n += m.Arrivals
	}
	return n
}

// TotalDepartures returns the run's total VM departures.
func (r *Result) TotalDepartures() int {
	n := 0
	for _, m := range r.Steps {
		n += m.Departures
	}
	return n
}

// MeanLiveVMs returns the time-average live-VM count.
func (r *Result) MeanLiveVMs() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	var s float64
	for _, m := range r.Steps {
		s += float64(m.LiveVMs)
	}
	return s / float64(len(r.Steps))
}

// MeanActiveHosts returns the time-average number of active hosts.
func (r *Result) MeanActiveHosts() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	var s float64
	for _, m := range r.Steps {
		s += float64(m.ActiveHosts)
	}
	return s / float64(len(r.Steps))
}

// MeanDecideSeconds returns the average per-step policy execution time.
func (r *Result) MeanDecideSeconds() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	var s float64
	for _, m := range r.Steps {
		s += m.DecideSeconds
	}
	return s / float64(len(r.Steps))
}

// PerStepCosts returns the per-interval total costs in order — the series
// plotted in Figures 2a–5a.
func (r *Result) PerStepCosts() []float64 {
	out := make([]float64, len(r.Steps))
	for i, m := range r.Steps {
		out[i] = m.TotalCost()
	}
	return out
}

// CumulativeMigrations returns the running migration count per step — the
// series of Figures 2b–5b.
func (r *Result) CumulativeMigrations() []int {
	out := make([]int, len(r.Steps))
	n := 0
	for i, m := range r.Steps {
		n += m.Migrations
		out[i] = n
	}
	return out
}
