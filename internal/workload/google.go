package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// GoogleConfig parameterises the Google-Cluster-like synthetic generator.
//
// §6.2 and Figure 1b of the paper characterise the Google Cluster trace as
// a stream of tasks with durations spread over 10¹–10⁶ seconds following no
// standard distribution, varying start times, low and obfuscated resource
// usage, and each VM running one task to completion before switching to the
// next. We model each VM as a task queue: durations are drawn from a
// mixture of log-uniform components (which produces the heavy, non-standard
// spread of Figure 1b), per-task utilization is low, and tasks are separated
// by short idle gaps.
type GoogleConfig struct {
	// Steps is the trace length; 0 means SevenDays.
	Steps int
	// Seed drives all randomness.
	Seed int64

	// MinDurationSec/MaxDurationSec bound task durations (paper: 10¹–10⁶ s).
	MinDurationSec, MaxDurationSec float64
	// UtilMean/UtilStd shape per-task utilization (lognormal-ish, low).
	UtilMean, UtilStd float64
	// HeavyTaskProb is the chance a task is CPU-heavy, drawing its
	// utilization from [HeavyUtilLo, HeavyUtilHi] instead. Cluster
	// traces mix many near-idle tasks with occasional hot ones.
	HeavyTaskProb            float64
	HeavyUtilLo, HeavyUtilHi float64
	// IdleGapProb is the chance a finished task is followed by an idle gap.
	IdleGapProb float64
	// MaxIdleGapSteps bounds the idle gap length.
	MaxIdleGapSteps int
	// StepSeconds is the sample interval; 0 means 300 (τ = 5 min).
	StepSeconds float64
}

// DefaultGoogleConfig returns parameters matching the paper's description:
// durations 10–10⁶ s, mean utilization well below the PlanetLab trace, short
// idle gaps between tasks.
func DefaultGoogleConfig(seed int64) GoogleConfig {
	return GoogleConfig{
		Steps:           SevenDays,
		Seed:            seed,
		MinDurationSec:  10,
		MaxDurationSec:  1e6,
		UtilMean:        0.05,
		UtilStd:         0.04,
		HeavyTaskProb:   0.08,
		HeavyUtilLo:     0.4,
		HeavyUtilHi:     0.9,
		IdleGapProb:     0.35,
		MaxIdleGapSteps: 6,
		StepSeconds:     300,
	}
}

// Validate checks the configuration for out-of-range parameters.
func (c GoogleConfig) Validate() error {
	if c.Steps < 0 {
		return fmt.Errorf("workload: negative Steps %d", c.Steps)
	}
	if c.MinDurationSec <= 0 || c.MaxDurationSec <= c.MinDurationSec {
		return fmt.Errorf("workload: duration bounds (%g, %g) invalid",
			c.MinDurationSec, c.MaxDurationSec)
	}
	if c.IdleGapProb < 0 || c.IdleGapProb > 1 {
		return fmt.Errorf("workload: IdleGapProb %g out of [0,1]", c.IdleGapProb)
	}
	if c.HeavyTaskProb < 0 || c.HeavyTaskProb > 1 {
		return fmt.Errorf("workload: HeavyTaskProb %g out of [0,1]", c.HeavyTaskProb)
	}
	if c.HeavyTaskProb > 0 && (c.HeavyUtilLo < 0 || c.HeavyUtilHi < c.HeavyUtilLo) {
		return fmt.Errorf("workload: heavy-task utilization bounds (%g, %g) invalid",
			c.HeavyUtilLo, c.HeavyUtilHi)
	}
	if c.StepSeconds < 0 {
		return fmt.Errorf("workload: negative StepSeconds %g", c.StepSeconds)
	}
	return nil
}

// GoogleTask records one synthetic task for duration-distribution analysis
// (Figure 1b).
type GoogleTask struct {
	VM          int
	StartStep   int
	DurationSec float64
	Utilization float64
}

// GenerateGoogle produces n Google-like traces plus the underlying task
// list. Task durations are drawn from a three-component log-uniform mixture
// (short / medium / long) so the resulting log-duration histogram is broad
// and non-standard, as in Figure 1b.
func GenerateGoogle(cfg GoogleConfig, n int) ([]Trace, []GoogleTask, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("workload: negative trace count %d", n)
	}
	steps := cfg.Steps
	if steps == 0 {
		steps = SevenDays
	}
	stepSec := cfg.StepSeconds
	if stepSec == 0 {
		stepSec = 300
	}
	traces := make([]Trace, n)
	var tasks []GoogleTask
	r := rand.New(rand.NewSource(cfg.Seed))
	for v := 0; v < n; v++ {
		vr := rand.New(rand.NewSource(r.Int63()))
		tr := make(Trace, steps)
		// Stagger start times across the first day.
		t := vr.Intn(StepsPerDay / 2)
		for t < steps {
			durSec := cfg.drawDuration(vr)
			util := cfg.drawUtil(vr)
			durSteps := int(math.Ceil(durSec / stepSec))
			if durSteps < 1 {
				durSteps = 1
			}
			tasks = append(tasks, GoogleTask{
				VM: v, StartStep: t, DurationSec: durSec, Utilization: util,
			})
			for k := 0; k < durSteps && t < steps; k++ {
				// Small within-task jitter: usage is obfuscated/noisy.
				tr[t] = Clamp01(util * (0.9 + 0.2*vr.Float64()))
				t++
			}
			if vr.Float64() < cfg.IdleGapProb && cfg.MaxIdleGapSteps > 0 {
				t += 1 + vr.Intn(cfg.MaxIdleGapSteps)
			}
		}
		traces[v] = tr
	}
	return traces, tasks, nil
}

// drawDuration samples from a mixture of log-uniform components. The
// mixture weights skew short (most cluster tasks are brief) with a long
// tail out to MaxDurationSec.
func (c GoogleConfig) drawDuration(r *rand.Rand) float64 {
	lmin := math.Log10(c.MinDurationSec)
	lmax := math.Log10(c.MaxDurationSec)
	span := lmax - lmin
	var lo, hi float64
	switch p := r.Float64(); {
	case p < 0.55: // short tasks: bottom 40% of the log range
		lo, hi = lmin, lmin+0.4*span
	case p < 0.85: // medium tasks
		lo, hi = lmin+0.3*span, lmin+0.7*span
	default: // long-running services
		lo, hi = lmin+0.6*span, lmax
	}
	return math.Pow(10, lo+r.Float64()*(hi-lo))
}

// drawUtil samples per-task utilization: mostly low with a mild right
// tail, plus an occasional CPU-heavy task.
func (c GoogleConfig) drawUtil(r *rand.Rand) float64 {
	if c.HeavyTaskProb > 0 && r.Float64() < c.HeavyTaskProb {
		return Clamp01(c.HeavyUtilLo + r.Float64()*(c.HeavyUtilHi-c.HeavyUtilLo))
	}
	u := c.UtilMean + c.UtilStd*math.Abs(r.NormFloat64())
	return Clamp01(u)
}
