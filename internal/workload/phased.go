package workload

import "fmt"

// PhaseSpec is one segment of a phase script: from step From onward the
// per-VM load is multiplied by LoadScale, until the next segment starts.
// Scripts model the VMAgent-style regimes — a fading phase scales load
// down, a recovering phase brings it back, an expansion phase overshoots —
// so the same underlying diurnal process plays out under a scripted
// envelope rather than a stationary one.
type PhaseSpec struct {
	// Name labels the phase in docs and experiment rows ("fading", …).
	Name string
	// From is the first step the phase covers (the first phase must start
	// at 0; later phases must start strictly after their predecessor).
	From int
	// LoadScale multiplies each VM's utilization during the phase; it
	// must be non-negative, and the scaled value is clamped back to [0,1].
	LoadScale float64
}

// ValidatePhases checks a phase script: non-empty names, a phase at step 0,
// strictly ascending starts, and non-negative scales. An empty script is
// valid (no modulation).
func ValidatePhases(phases []PhaseSpec) error {
	for k, p := range phases {
		if p.Name == "" {
			return fmt.Errorf("workload: phase %d has no name", k)
		}
		if p.LoadScale < 0 {
			return fmt.Errorf("workload: phase %q LoadScale %g negative", p.Name, p.LoadScale)
		}
		if k == 0 {
			if p.From != 0 {
				return fmt.Errorf("workload: first phase %q starts at %d, want 0", p.Name, p.From)
			}
			continue
		}
		if p.From <= phases[k-1].From {
			return fmt.Errorf("workload: phase %q starts at %d, not after %q at %d",
				p.Name, p.From, phases[k-1].Name, phases[k-1].From)
		}
	}
	return nil
}

// PhaseAt returns the phase covering step t, or a neutral unnamed phase for
// an empty script.
func PhaseAt(phases []PhaseSpec, t int) PhaseSpec {
	cur := PhaseSpec{LoadScale: 1}
	for _, p := range phases {
		if p.From > t {
			break
		}
		cur = p
	}
	return cur
}

// LoadScaleAt returns the load multiplier in effect at step t.
func LoadScaleAt(phases []PhaseSpec, t int) float64 {
	return PhaseAt(phases, t).LoadScale
}

// GeneratePhased produces n diurnal traces with the phase script's load
// envelope applied: trace[t] = Clamp01(diurnal[t] × LoadScaleAt(t)). The
// underlying diurnal process is generated once from cfg's seed, so two
// scripts over the same cfg differ only by their envelopes.
func GeneratePhased(cfg DiurnalConfig, phases []PhaseSpec, n int) ([]Trace, error) {
	if err := ValidatePhases(phases); err != nil {
		return nil, err
	}
	traces, err := GenerateDiurnal(cfg, n)
	if err != nil {
		return nil, err
	}
	if len(phases) == 0 {
		return traces, nil
	}
	for _, tr := range traces {
		for t := range tr {
			tr[t] = Clamp01(tr[t] * LoadScaleAt(phases, t))
		}
	}
	return traces, nil
}
