package workload

import (
	"strings"
	"testing"
)

func TestReadGoogleUsage(t *testing.T) {
	in := strings.Join([]string{
		"# step,vm,cpu",
		"",
		"0,0,0.5",
		"2,1,1",
		" 1 , 0 , 0.25 ",
		"0,0,0.75", // repeated (step, vm): last write wins
	}, "\n")
	traces, err := ReadGoogleUsage(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Trace{
		{0.75, 0.25, 0},
		{0, 0, 1},
	}
	if len(traces) != len(want) {
		t.Fatalf("got %d traces, want %d", len(traces), len(want))
	}
	for v := range want {
		if traces[v].Len() != want[v].Len() {
			t.Fatalf("VM %d: %d steps, want %d", v, traces[v].Len(), want[v].Len())
		}
		for s := range want[v] {
			if traces[v][s] != want[v][s] {
				t.Fatalf("VM %d step %d: %g, want %g", v, s, traces[v][s], want[v][s])
			}
		}
	}
}

func TestReadGoogleUsageRejects(t *testing.T) {
	cases := []struct {
		name, in, errLike string
	}{
		{"empty", "", "no samples"},
		{"comments-only", "# nothing\n\n", "no samples"},
		{"wrong-arity", "1,2\n", "fields"},
		{"bad-step", "x,0,0.5\n", "step"},
		{"bad-vm", "0,x,0.5\n", "vm"},
		{"bad-cpu", "0,0,x\n", "cpu"},
		{"negative-step", "-1,0,0.5\n", "out of"},
		{"huge-vm", "0,99999999,0.5\n", "out of"},
		{"huge-step", "99999999,0,0.5\n", "out of"},
		{"cpu-above-one", "0,0,1.5\n", "out of [0,1]"},
		{"cpu-nan", "0,0,NaN\n", "out of [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadGoogleUsage(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("bad input accepted")
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
		})
	}
}
