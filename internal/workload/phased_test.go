package workload

import (
	"math"
	"testing"
)

func TestValidatePhases(t *testing.T) {
	valid := []PhaseSpec{
		{Name: "steady", From: 0, LoadScale: 1},
		{Name: "fading", From: 10, LoadScale: 0.4},
		{Name: "recovering", From: 20, LoadScale: 1.3},
	}
	if err := ValidatePhases(valid); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	if err := ValidatePhases(nil); err != nil {
		t.Fatalf("empty script rejected: %v", err)
	}
	bad := [][]PhaseSpec{
		{{Name: "", From: 0, LoadScale: 1}},
		{{Name: "late", From: 5, LoadScale: 1}},
		{{Name: "a", From: 0, LoadScale: 1}, {Name: "b", From: 0, LoadScale: 1}},
		{{Name: "a", From: 0, LoadScale: -0.1}},
	}
	for i, script := range bad {
		if err := ValidatePhases(script); err == nil {
			t.Errorf("bad script %d accepted", i)
		}
	}
}

func TestPhaseAt(t *testing.T) {
	phases := []PhaseSpec{
		{Name: "a", From: 0, LoadScale: 1},
		{Name: "b", From: 10, LoadScale: 0.5},
	}
	for _, tc := range []struct {
		t    int
		name string
	}{{0, "a"}, {9, "a"}, {10, "b"}, {100, "b"}} {
		if got := PhaseAt(phases, tc.t).Name; got != tc.name {
			t.Errorf("PhaseAt(%d) = %q, want %q", tc.t, got, tc.name)
		}
	}
	if got := LoadScaleAt(nil, 3); got != 1 {
		t.Errorf("empty script scale = %g, want 1", got)
	}
}

func TestGeneratePhasedAppliesEnvelope(t *testing.T) {
	cfg := DefaultDiurnalConfig(7)
	cfg.Steps = 30
	base, err := GenerateDiurnal(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	phases := []PhaseSpec{
		{Name: "steady", From: 0, LoadScale: 1},
		{Name: "fading", From: 10, LoadScale: 0.25},
		{Name: "expansion", From: 20, LoadScale: 2},
	}
	phased, err := GeneratePhased(cfg, phases, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range phased {
		for s := 0; s < 30; s++ {
			want := Clamp01(base[v][s] * LoadScaleAt(phases, s))
			if math.Abs(phased[v][s]-want) > 1e-15 {
				t.Fatalf("VM %d step %d: got %g, want %g", v, s, phased[v][s], want)
			}
			if phased[v][s] < 0 || phased[v][s] > 1 {
				t.Fatalf("VM %d step %d out of [0,1]: %g", v, s, phased[v][s])
			}
		}
	}
	// The fading envelope must actually attenuate relative to steady.
	var steady, faded float64
	for v := range phased {
		for s := 0; s < 10; s++ {
			steady += phased[v][s]
		}
		for s := 10; s < 20; s++ {
			faded += phased[v][s]
		}
	}
	if faded >= steady {
		t.Fatalf("fading phase sum %g not below steady %g", faded, steady)
	}
}

func TestGeneratePhasedEmptyScriptMatchesDiurnal(t *testing.T) {
	cfg := DefaultDiurnalConfig(11)
	cfg.Steps = 25
	a, err := GenerateDiurnal(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePhased(cfg, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		for s := range a[v] {
			if a[v][s] != b[v][s] {
				t.Fatalf("VM %d step %d: %g vs %g", v, s, a[v][s], b[v][s])
			}
		}
	}
}

func TestGeneratePhasedRejectsBadScript(t *testing.T) {
	cfg := DefaultDiurnalConfig(1)
	cfg.Steps = 10
	if _, err := GeneratePhased(cfg, []PhaseSpec{{Name: "x", From: 3, LoadScale: 1}}, 2); err == nil {
		t.Fatal("script not starting at 0 accepted")
	}
}
