package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// DiurnalConfig parameterises the periodic workload generator — the
// "additional knowledge about the workload, such as periodicity" extension
// the paper's §7 names as future work. Each VM's utilization follows a
// daily sinusoid with a per-VM phase (users in different time zones),
// amplitude jitter, AR(1) noise, and optional bursts layered on top.
type DiurnalConfig struct {
	// Steps is the trace length; 0 means SevenDays.
	Steps int
	// Seed drives all randomness.
	Seed int64
	// BaseMean is the average utilization level (default 0.3).
	BaseMean float64
	// Amplitude is the peak-to-mean sinusoid swing (default 0.25).
	Amplitude float64
	// NoiseStd is the AR(1) noise level (default 0.05).
	NoiseStd float64
	// PeriodSteps is the cycle length; 0 means StepsPerDay (24 h).
	PeriodSteps int
	// BurstProb adds PlanetLab-style saturation bursts on top of the
	// periodic baseline with this per-step probability (default 0).
	BurstProb float64
}

// DefaultDiurnalConfig returns a gentle day/night pattern.
func DefaultDiurnalConfig(seed int64) DiurnalConfig {
	return DiurnalConfig{
		Steps:       SevenDays,
		Seed:        seed,
		BaseMean:    0.30,
		Amplitude:   0.25,
		NoiseStd:    0.05,
		PeriodSteps: StepsPerDay,
	}
}

// Validate checks the configuration.
func (c DiurnalConfig) Validate() error {
	switch {
	case c.Steps < 0:
		return fmt.Errorf("workload: negative Steps %d", c.Steps)
	case c.BaseMean < 0 || c.BaseMean > 1:
		return fmt.Errorf("workload: BaseMean %g out of [0,1]", c.BaseMean)
	case c.Amplitude < 0 || c.Amplitude > 1:
		return fmt.Errorf("workload: Amplitude %g out of [0,1]", c.Amplitude)
	case c.NoiseStd < 0:
		return fmt.Errorf("workload: negative NoiseStd %g", c.NoiseStd)
	case c.PeriodSteps < 0:
		return fmt.Errorf("workload: negative PeriodSteps %d", c.PeriodSteps)
	case c.BurstProb < 0 || c.BurstProb > 1:
		return fmt.Errorf("workload: BurstProb %g out of [0,1]", c.BurstProb)
	}
	return nil
}

// GenerateDiurnal produces n periodic traces.
func GenerateDiurnal(cfg DiurnalConfig, n int) ([]Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative trace count %d", n)
	}
	steps := cfg.Steps
	if steps == 0 {
		steps = SevenDays
	}
	period := cfg.PeriodSteps
	if period == 0 {
		period = StepsPerDay
	}
	traces := make([]Trace, n)
	r := rand.New(rand.NewSource(cfg.Seed))
	for v := 0; v < n; v++ {
		vr := rand.New(rand.NewSource(r.Int63()))
		phase := vr.Float64() * 2 * math.Pi
		amp := cfg.Amplitude * (0.7 + 0.6*vr.Float64())
		tr := make(Trace, steps)
		noise := 0.0
		burstLeft := 0
		for t := 0; t < steps; t++ {
			u := cfg.BaseMean + amp*math.Sin(2*math.Pi*float64(t)/float64(period)+phase)
			noise = 0.8*noise + cfg.NoiseStd*vr.NormFloat64()
			u += noise
			if burstLeft > 0 {
				burstLeft--
				u = math.Max(u, 0.85+0.1*vr.Float64())
			} else if cfg.BurstProb > 0 && vr.Float64() < cfg.BurstProb {
				burstLeft = 1 + vr.Intn(8)
			}
			tr[t] = Clamp01(u)
		}
		traces[v] = tr
	}
	return traces, nil
}
