package workload

import (
	"math"
	"testing"

	"megh/internal/stats"
)

func TestDiurnalValidation(t *testing.T) {
	mutations := []func(*DiurnalConfig){
		func(c *DiurnalConfig) { c.Steps = -1 },
		func(c *DiurnalConfig) { c.BaseMean = 1.5 },
		func(c *DiurnalConfig) { c.Amplitude = -0.1 },
		func(c *DiurnalConfig) { c.NoiseStd = -1 },
		func(c *DiurnalConfig) { c.PeriodSteps = -2 },
		func(c *DiurnalConfig) { c.BurstProb = 2 },
	}
	for i, mutate := range mutations {
		cfg := DefaultDiurnalConfig(1)
		mutate(&cfg)
		if _, err := GenerateDiurnal(cfg, 1); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := GenerateDiurnal(DefaultDiurnalConfig(1), -1); err == nil {
		t.Error("negative count should error")
	}
}

func TestDiurnalBoundsAndLength(t *testing.T) {
	cfg := DefaultDiurnalConfig(2)
	cfg.Steps = 600
	traces, err := GenerateDiurnal(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 5 {
		t.Fatalf("got %d traces", len(traces))
	}
	for _, tr := range traces {
		if tr.Len() != 600 {
			t.Fatalf("trace length %d", tr.Len())
		}
		for _, u := range tr {
			if u < 0 || u > 1 {
				t.Fatalf("sample %g out of bounds", u)
			}
		}
	}
}

// TestDiurnalPeriodicity checks the defining property: strong positive
// autocorrelation at the period lag, much stronger than at the half-period
// (where the sinusoid anti-correlates).
func TestDiurnalPeriodicity(t *testing.T) {
	cfg := DefaultDiurnalConfig(3)
	cfg.Steps = 4 * StepsPerDay
	traces, err := GenerateDiurnal(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	var atPeriod, atHalf float64
	for _, tr := range traces {
		atPeriod += stats.Autocorrelation(tr, StepsPerDay)
		atHalf += stats.Autocorrelation(tr, StepsPerDay/2)
	}
	atPeriod /= float64(len(traces))
	atHalf /= float64(len(traces))
	if atPeriod < 0.5 {
		t.Fatalf("period-lag autocorrelation %.3f, want ≥ 0.5", atPeriod)
	}
	if atHalf > atPeriod-0.5 {
		t.Fatalf("half-period autocorrelation %.3f not clearly below period's %.3f",
			atHalf, atPeriod)
	}
}

func TestDiurnalMeanLevel(t *testing.T) {
	cfg := DefaultDiurnalConfig(4)
	cfg.Steps = 2 * StepsPerDay
	traces, err := GenerateDiurnal(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for _, tr := range traces {
		all = append(all, tr...)
	}
	if m := stats.Mean(all); math.Abs(m-cfg.BaseMean) > 0.08 {
		t.Fatalf("population mean %.3f, want ≈ %.2f", m, cfg.BaseMean)
	}
}

func TestDiurnalBursts(t *testing.T) {
	cfg := DefaultDiurnalConfig(5)
	cfg.Steps = 2 * StepsPerDay
	cfg.BurstProb = 0.02
	traces, err := GenerateDiurnal(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	saturated := 0
	for _, tr := range traces {
		for _, u := range tr {
			if u > 0.85 {
				saturated++
			}
		}
	}
	if saturated == 0 {
		t.Fatal("BurstProb > 0 produced no saturation samples")
	}
	// Without bursts the default config should rarely saturate.
	cfg.BurstProb = 0
	traces, err = GenerateDiurnal(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	base := 0
	for _, tr := range traces {
		for _, u := range tr {
			if u > 0.85 {
				base++
			}
		}
	}
	if base >= saturated {
		t.Fatalf("bursts (%d saturated) indistinguishable from baseline (%d)", saturated, base)
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	a, err := GenerateDiurnal(DefaultDiurnalConfig(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDiurnal(DefaultDiurnalConfig(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different diurnal traces")
			}
		}
	}
}
