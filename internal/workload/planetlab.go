package workload

import (
	"fmt"
	"math/rand"
)

// PlanetLabConfig parameterises the PlanetLab-like synthetic generator.
//
// §6.2 of the paper characterises the PlanetLab CoMoN traces as: 5-minute
// samples over 7 days, workloads running continuously, per-sample average
// ≈ 12 %, standard deviation ≈ 34 %, and instantaneous levels across VMs
// ranging from ≈ 5 % to ≈ 90 %. A population mean of 12 % with a 34 %
// standard deviation forces a bimodal shape — most samples near idle with
// sustained near-saturation bursts — which we model as a two-state Markov
// regime switcher per VM.
type PlanetLabConfig struct {
	// Steps is the trace length; 0 means SevenDays (2016).
	Steps int
	// Seed drives all randomness; traces are deterministic given (Seed, n).
	Seed int64

	// IdleMean/IdleStd shape the idle-regime utilization (clamped ≥ IdleFloor).
	IdleMean, IdleStd float64
	// BusyMean/BusyStd shape the busy-regime utilization (clamped ≤ BusyCeil).
	BusyMean, BusyStd float64
	// IdleFloor and BusyCeil bound the two regimes.
	IdleFloor, BusyCeil float64
	// PIdleToBusy and PBusyToIdle are the per-step regime switch
	// probabilities; their ratio sets the stationary busy fraction
	// PIdleToBusy / (PIdleToBusy + PBusyToIdle).
	PIdleToBusy, PBusyToIdle float64
}

// DefaultPlanetLabConfig returns parameters fitted to the paper's published
// trace statistics: stationary busy fraction ≈ 11.5 %, busy level ≈ 92 %,
// idle level ≈ 3 %, giving sample mean ≈ 12 % and std ≈ 31–35 %.
func DefaultPlanetLabConfig(seed int64) PlanetLabConfig {
	return PlanetLabConfig{
		Steps:       SevenDays,
		Seed:        seed,
		IdleMean:    0.03,
		IdleStd:     0.025,
		BusyMean:    0.92,
		BusyStd:     0.06,
		IdleFloor:   0.0,
		BusyCeil:    1.0,
		PIdleToBusy: 0.013,
		PBusyToIdle: 0.10,
	}
}

// Validate checks the configuration for out-of-range parameters.
func (c PlanetLabConfig) Validate() error {
	if c.Steps < 0 {
		return fmt.Errorf("workload: negative Steps %d", c.Steps)
	}
	if c.PIdleToBusy < 0 || c.PIdleToBusy > 1 || c.PBusyToIdle < 0 || c.PBusyToIdle > 1 {
		return fmt.Errorf("workload: switch probabilities (%g, %g) out of [0,1]",
			c.PIdleToBusy, c.PBusyToIdle)
	}
	if c.IdleMean < 0 || c.BusyMean > 1 || c.IdleMean > c.BusyMean {
		return fmt.Errorf("workload: regime means (%g, %g) invalid", c.IdleMean, c.BusyMean)
	}
	return nil
}

// GeneratePlanetLab produces n independent PlanetLab-like traces. Each VM
// follows a two-state (idle/busy) Markov chain; within a regime the level
// follows a clamped Gaussian around the regime mean with slight AR(1)
// smoothing so bursts are sustained rather than i.i.d. noise.
func GeneratePlanetLab(cfg PlanetLabConfig, n int) ([]Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative trace count %d", n)
	}
	steps := cfg.Steps
	if steps == 0 {
		steps = SevenDays
	}
	traces := make([]Trace, n)
	r := rand.New(rand.NewSource(cfg.Seed))
	busyFrac := 0.0
	if p := cfg.PIdleToBusy + cfg.PBusyToIdle; p > 0 {
		busyFrac = cfg.PIdleToBusy / p
	}
	for v := 0; v < n; v++ {
		// Per-VM generator seeded from the master stream keeps traces
		// independent yet reproducible regardless of generation order.
		vr := rand.New(rand.NewSource(r.Int63()))
		tr := make(Trace, steps)
		busy := vr.Float64() < busyFrac // start from the stationary mix
		level := cfg.regimeLevel(vr, busy)
		for t := 0; t < steps; t++ {
			switch {
			case busy && vr.Float64() < cfg.PBusyToIdle:
				busy = false
				level = cfg.regimeLevel(vr, busy)
			case !busy && vr.Float64() < cfg.PIdleToBusy:
				busy = true
				level = cfg.regimeLevel(vr, busy)
			default:
				// AR(1) drift toward the regime mean.
				target := cfg.regimeLevel(vr, busy)
				level = 0.8*level + 0.2*target
			}
			tr[t] = Clamp01(level)
		}
		traces[v] = tr
	}
	return traces, nil
}

func (c PlanetLabConfig) regimeLevel(r *rand.Rand, busy bool) float64 {
	if busy {
		return gaussClamped(r, c.BusyMean, c.BusyStd, c.IdleFloor, c.BusyCeil)
	}
	return gaussClamped(r, c.IdleMean, c.IdleStd, c.IdleFloor, c.BusyCeil)
}
