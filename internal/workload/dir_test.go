package workload

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/fstest"
)

func TestReadTraceDir(t *testing.T) {
	fsys := fstest.MapFS{
		"b.txt": {Data: []byte("50\n60\n")},
		"a.txt": {Data: []byte("10\n20\n")},
	}
	traces, err := ReadTraceDir(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces", len(traces))
	}
	// Sorted by name: a.txt first.
	if traces[0][0] != 0.10 || traces[1][0] != 0.50 {
		t.Fatalf("ordering wrong: %v", traces)
	}
}

func TestReadTraceDirErrors(t *testing.T) {
	if _, err := ReadTraceDir(fstest.MapFS{}); err == nil {
		t.Fatal("empty directory should error")
	}
	bad := fstest.MapFS{"x.txt": {Data: []byte("not a number\n")}}
	if _, err := ReadTraceDir(bad); err == nil {
		t.Fatal("unparsable file should error")
	}
}

// TestReadTraceDirRealFilesystem exercises the os.DirFS path the tracegen
// round-trip uses.
func TestReadTraceDirRealFilesystem(t *testing.T) {
	dir := t.TempDir()
	tr := Trace{0.1, 0.5, 0.9}
	f, err := os.Create(filepath.Join(dir, "vm0.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	traces, err := ReadTraceDir(os.DirFS(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Len() != 3 {
		t.Fatalf("round-trip failed: %v", traces)
	}
	for i := range tr {
		if math.Abs(traces[0][i]-tr[i]) > 0.005 {
			t.Fatalf("sample %d: %g vs %g", i, traces[0][i], tr[i])
		}
	}
}

func TestResample(t *testing.T) {
	tr := Trace{0.0, 0.2, 0.4, 0.6}
	up, err := Resample(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if up.Len() != 8 || up[0] != 0.0 || up[7] != 0.6 {
		t.Fatalf("upsample wrong: %v", up)
	}
	down, err := Resample(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if down.Len() != 2 || down[0] != 0.0 || down[1] != 0.4 {
		t.Fatalf("downsample wrong: %v", down)
	}
	if _, err := Resample(tr, -1); err == nil {
		t.Fatal("negative length should error")
	}
	empty, err := Resample(Trace{}, 5)
	if err != nil || empty.Len() != 0 {
		t.Fatal("empty trace should resample to empty")
	}
}

func TestAnalyze(t *testing.T) {
	tr := Trace{0.1, 0.9, 0.1, 0.9}
	st := Analyze(tr)
	if st.Len != 4 {
		t.Fatalf("Len = %d", st.Len)
	}
	if math.Abs(st.Mean-0.5) > 1e-12 {
		t.Fatalf("Mean = %g", st.Mean)
	}
	if st.Min != 0.1 || st.Max != 0.9 {
		t.Fatalf("Min/Max = %g/%g", st.Min, st.Max)
	}
	if math.Abs(st.Std-0.4) > 1e-12 {
		t.Fatalf("Std = %g, want 0.4", st.Std)
	}
	if st.BusyFrac != 0.5 {
		t.Fatalf("BusyFrac = %g", st.BusyFrac)
	}
	if st.Lag1 >= 0 {
		t.Fatalf("alternating series should anticorrelate, Lag1 = %g", st.Lag1)
	}
	zero := Analyze(Trace{})
	if zero.Len != 0 || zero.Mean != 0 {
		t.Fatal("empty Analyze should be zero")
	}
}

func TestAnalyzePersistentSeries(t *testing.T) {
	tr := make(Trace, 200)
	for i := 1; i < len(tr); i++ {
		tr[i] = Clamp01(0.9*tr[i-1] + 0.05)
	}
	if st := Analyze(tr); st.Lag1 < 0.5 {
		t.Fatalf("persistent series Lag1 = %g, want ≥ 0.5", st.Lag1)
	}
}
