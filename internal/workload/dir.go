package workload

import (
	"fmt"
	"io/fs"
	"math"
	"sort"
)

// ReadTraceDir loads every regular file in fsys (sorted by name) as a
// CloudSim PlanetLab-format trace — the path for plugging the original
// PlanetLab trace files into the simulator in place of the synthetic
// generators. Subdirectories are ignored; any unparsable file aborts with
// an error naming it.
func ReadTraceDir(fsys fs.FS) ([]Trace, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("workload: listing trace directory: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("workload: trace directory holds no files")
	}
	traces := make([]Trace, 0, len(names))
	for _, name := range names {
		f, err := fsys.Open(name)
		if err != nil {
			return nil, fmt.Errorf("workload: opening %s: %w", name, err)
		}
		tr, err := ReadTrace(f)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", name, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("workload: closing %s: %w", name, closeErr)
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// Resample stretches or shrinks a trace to n samples by nearest-neighbour
// index mapping — used to fit real trace files of one resolution onto a
// simulation horizon of another.
func Resample(tr Trace, n int) (Trace, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative resample length %d", n)
	}
	if n == 0 || tr.Len() == 0 {
		return Trace{}, nil
	}
	out := make(Trace, n)
	for i := range out {
		src := i * tr.Len() / n
		out[i] = tr[src]
	}
	return out, nil
}

// Stats summarises one trace for workload characterisation reports.
type Stats struct {
	Len                 int
	Mean, Std, Min, Max float64
	// Lag1 is the lag-1 autocorrelation (burst persistence).
	Lag1 float64
	// BusyFrac is the fraction of samples above 50 % utilization.
	BusyFrac float64
}

// Analyze computes Stats for a trace.
func Analyze(tr Trace) Stats {
	st := Stats{Len: tr.Len(), Min: 1, Max: 0}
	if tr.Len() == 0 {
		st.Min = 0
		return st
	}
	var sum float64
	busy := 0
	for _, u := range tr {
		sum += u
		if u < st.Min {
			st.Min = u
		}
		if u > st.Max {
			st.Max = u
		}
		if u > 0.5 {
			busy++
		}
	}
	st.Mean = sum / float64(tr.Len())
	st.BusyFrac = float64(busy) / float64(tr.Len())
	var varSum, lagNum, lagDen float64
	for i, u := range tr {
		d := u - st.Mean
		varSum += d * d
		if i > 0 {
			lagNum += (tr[i] - st.Mean) * (tr[i-1] - st.Mean)
		}
	}
	st.Std = math.Sqrt(varSum / float64(tr.Len()))
	lagDen = varSum
	if lagDen > 0 {
		st.Lag1 = lagNum / lagDen
	}
	return st
}
