package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace ensures the trace parser never panics and that everything
// it accepts round-trips through WriteTrace/ReadTrace within quantisation.
func FuzzReadTrace(f *testing.F) {
	f.Add("10\n20\n30\n")
	f.Add("")
	f.Add("100\n0\n")
	f.Add(" 55 \n\n 7\n")
	f.Add("101\n")
	f.Add("-1\n")
	f.Add("nonsense")
	f.Add("9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, u := range tr {
			if u < 0 || u > 1 {
				t.Fatalf("accepted out-of-range sample %g from %q", u, input)
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("re-encoding accepted trace failed: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parsing our own encoding failed: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed length %d → %d", len(tr), len(back))
		}
		for i := range tr {
			d := back[i] - tr[i]
			if d < -0.005-1e-12 || d > 0.005+1e-12 {
				t.Fatalf("round trip drifted at %d: %g → %g", i, tr[i], back[i])
			}
		}
	})
}
