package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPlanetLabParse hammers the CloudSim PlanetLab trace reader with
// arbitrary input. The parser must never panic; every accepted trace must
// hold only samples in [0,1]; and a Write→Read round-trip of an accepted
// trace must be lossless (accepted samples are exact integer percentages,
// which the writer reproduces verbatim).
func FuzzPlanetLabParse(f *testing.F) {
	f.Add("10\n20\n30\n")
	f.Add("")
	f.Add("100\n0\n")
	f.Add(" 55 \n\n 7\n")
	f.Add("101\n")
	f.Add("-1\n")
	f.Add("3.5\n")
	f.Add("nonsense")
	f.Add("9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, u := range tr {
			if u < 0 || u > 1 {
				t.Fatalf("accepted out-of-range sample %g from %q", u, input)
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("re-encoding accepted trace failed: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parsing our own encoding failed: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed length %d → %d", len(tr), len(back))
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("round trip changed sample %d: %g → %g", i, tr[i], back[i])
			}
		}
	})
}

// FuzzGoogleParse hammers the Google usage-extract reader. The parser must
// never panic or allocate past the MaxGoogle* caps, and every accepted
// result must be rectangular with samples in [0,1].
func FuzzGoogleParse(f *testing.F) {
	f.Add("0,0,0.5\n1,0,0.25\n0,1,1\n")
	f.Add("# header comment\n2,3,0\n")
	f.Add("0,0,NaN\n")
	f.Add("0,0,1.5\n")
	f.Add("5,99999999,0.1\n")
	f.Add("1,1\n")
	f.Add(strings.Repeat("3,2,0.75\n", 4))
	f.Fuzz(func(t *testing.T, input string) {
		traces, err := ReadGoogleUsage(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(traces) == 0 || len(traces) > MaxGoogleVMs {
			t.Fatalf("accepted input produced %d traces", len(traces))
		}
		steps := traces[0].Len()
		if steps == 0 || steps > MaxGoogleSteps {
			t.Fatalf("accepted input produced %d-step traces", steps)
		}
		for v, tr := range traces {
			if tr.Len() != steps {
				t.Fatalf("VM %d trace has %d steps, VM 0 has %d", v, tr.Len(), steps)
			}
			for s, u := range tr {
				if u < 0 || u > 1 {
					t.Fatalf("VM %d step %d: sample %g out of [0,1]", v, s, u)
				}
			}
		}
	})
}
