// Package workload provides the CPU-utilization traces that drive the
// simulator. The paper evaluates on PlanetLab (CoMoN) and Google Cluster
// traces; since the original files are external data, this package supplies
// (a) synthetic generators statistically matched to the trace properties
// the paper publishes in §6.2, and (b) a loader/writer for the CloudSim
// PlanetLab trace-file format so the real files can be dropped in.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Trace is a fixed-length sequence of CPU-utilization samples in [0,1],
// one per simulator step (τ = 5 minutes in all paper experiments). The
// sample is the fraction of the VM's *requested* MIPS that the workload
// demands at that step.
type Trace []float64

// At returns the utilization at step t. Steps beyond the end of the trace
// wrap around, matching CloudSim's behaviour of replaying traces that are
// shorter than the simulation; an empty trace reads as always idle.
func (tr Trace) At(t int) float64 {
	if len(tr) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	return tr[t%len(tr)]
}

// Len returns the number of samples in the trace.
func (tr Trace) Len() int { return len(tr) }

// Mean returns the average utilization of the trace (0 for an empty trace).
func (tr Trace) Mean() float64 {
	if len(tr) == 0 {
		return 0
	}
	var s float64
	for _, u := range tr {
		s += u
	}
	return s / float64(len(tr))
}

// Clamp01 bounds a sample into [0,1].
func Clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// StepsPerDay is the number of τ = 5 min samples in one day.
const StepsPerDay = 24 * 60 / 5 // 288

// SevenDays is the PlanetLab experiment horizon (7 days of 5-minute steps).
const SevenDays = 7 * StepsPerDay // 2016

// ThreeDays is the MadVM-comparison horizon (3 days of 5-minute steps).
const ThreeDays = 3 * StepsPerDay // 864

// ReadTrace parses a CloudSim PlanetLab-format trace: one integer
// utilization percentage (0–100) per line. Blank lines are skipped.
// Out-of-range or non-numeric lines are an error.
func ReadTrace(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	var tr Trace
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if v < 0 || v > 100 {
			return nil, fmt.Errorf("workload: line %d: utilization %d out of [0,100]", line, v)
		}
		tr = append(tr, float64(v)/100)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return tr, nil
}

// WriteTrace emits the trace in CloudSim PlanetLab format (one integer
// percentage per line, rounded to the nearest percent).
func WriteTrace(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	for _, u := range tr {
		pct := int(Clamp01(u)*100 + 0.5)
		if _, err := fmt.Fprintln(bw, pct); err != nil {
			return fmt.Errorf("workload: writing trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("workload: flushing trace: %w", err)
	}
	return nil
}

// gaussClamped draws N(mean, std) clamped into [lo, hi].
func gaussClamped(r *rand.Rand, mean, std, lo, hi float64) float64 {
	v := mean + std*r.NormFloat64()
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
