package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Limits for ReadGoogleUsage. Real Google cluster extracts are pre-filtered
// to the experiment's machine count and horizon, so generous fixed caps
// protect the parser from hostile or corrupt inputs (it is fuzzed) without
// constraining legitimate data: 1e4 VMs × 1e5 steps is three orders of
// magnitude past the paper's largest setup.
const (
	MaxGoogleVMs   = 10_000
	MaxGoogleSteps = 100_000
)

// ReadGoogleUsage parses a simplified Google-cluster-usage extract: one
// sample per line as
//
//	step,vm,cpu
//
// where step and vm are non-negative integers and cpu is the mean CPU usage
// fraction in [0,1] (the normalised "mean CPU usage rate" column of the
// cluster-usage table). Blank lines and lines starting with '#' are
// skipped. Samples may arrive in any order; a repeated (step, vm) pair
// keeps the last value; missing samples read as idle, matching how the
// cluster data reports no row for an unscheduled task.
//
// The result holds one Trace per VM index, each padded to the maximum step
// seen. Inputs addressing more than MaxGoogleVMs VMs or MaxGoogleSteps
// steps are rejected rather than trusted with unbounded allocation.
func ReadGoogleUsage(r io.Reader) ([]Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	type sample struct {
		step, vm int
		cpu      float64
	}
	var samples []sample
	maxVM, maxStep := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("workload: line %d: want step,vm,cpu, got %d fields", line, len(fields))
		}
		step, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: step: %w", line, err)
		}
		vm, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: vm: %w", line, err)
		}
		cpu, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: cpu: %w", line, err)
		}
		if step < 0 || step >= MaxGoogleSteps {
			return nil, fmt.Errorf("workload: line %d: step %d out of [0,%d)", line, step, MaxGoogleSteps)
		}
		if vm < 0 || vm >= MaxGoogleVMs {
			return nil, fmt.Errorf("workload: line %d: vm %d out of [0,%d)", line, vm, MaxGoogleVMs)
		}
		// NaN fails both ordered comparisons, so reject it explicitly.
		if math.IsNaN(cpu) || cpu < 0 || cpu > 1 {
			return nil, fmt.Errorf("workload: line %d: cpu %g out of [0,1]", line, cpu)
		}
		samples = append(samples, sample{step: step, vm: vm, cpu: cpu})
		if vm > maxVM {
			maxVM = vm
		}
		if step > maxStep {
			maxStep = step
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading usage: %w", err)
	}
	if maxVM < 0 {
		return nil, fmt.Errorf("workload: usage input holds no samples")
	}
	traces := make([]Trace, maxVM+1)
	for v := range traces {
		traces[v] = make(Trace, maxStep+1)
	}
	for _, s := range samples {
		traces[s.vm][s.step] = s.cpu
	}
	return traces, nil
}
