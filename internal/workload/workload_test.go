package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"megh/internal/stats"
)

func TestTraceAtWrapsAndClamps(t *testing.T) {
	tr := Trace{0.1, 0.2, 0.3}
	if tr.At(0) != 0.1 || tr.At(2) != 0.3 {
		t.Fatal("basic indexing broken")
	}
	if tr.At(3) != 0.1 || tr.At(7) != 0.2 {
		t.Fatal("wrap-around broken")
	}
	if tr.At(-5) != 0.1 {
		t.Fatal("negative step should clamp to start")
	}
	var empty Trace
	if empty.At(4) != 0 {
		t.Fatal("empty trace should read 0")
	}
}

func TestTraceMean(t *testing.T) {
	if m := (Trace{0.2, 0.4}).Mean(); math.Abs(m-0.3) > 1e-12 {
		t.Fatalf("Mean = %g, want 0.3", m)
	}
	if (Trace{}).Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-0.5) != 0 || Clamp01(1.5) != 1 || Clamp01(0.25) != 0.25 {
		t.Fatal("Clamp01 wrong")
	}
}

func TestStepConstants(t *testing.T) {
	if StepsPerDay != 288 || SevenDays != 2016 || ThreeDays != 864 {
		t.Fatalf("step constants wrong: %d %d %d", StepsPerDay, SevenDays, ThreeDays)
	}
}

func TestReadTrace(t *testing.T) {
	in := "10\n\n 25 \n100\n0\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Trace{0.10, 0.25, 1.0, 0.0}
	if len(tr) != len(want) {
		t.Fatalf("len = %d, want %d", len(tr), len(want))
	}
	for i := range want {
		if math.Abs(tr[i]-want[i]) > 1e-12 {
			t.Fatalf("tr[%d] = %g, want %g", i, tr[i], want[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("abc\n")); err == nil {
		t.Fatal("non-numeric line should error")
	}
	if _, err := ReadTrace(strings.NewReader("120\n")); err == nil {
		t.Fatal("out-of-range percentage should error")
	}
	if _, err := ReadTrace(strings.NewReader("-4\n")); err == nil {
		t.Fatal("negative percentage should error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := Trace{0.0, 0.07, 0.5, 0.99, 1.0}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("round-trip length %d, want %d", len(back), len(tr))
	}
	for i := range tr {
		if math.Abs(back[i]-tr[i]) > 0.005+1e-12 { // 1% quantisation
			t.Fatalf("round-trip[%d] = %g, want ≈%g", i, back[i], tr[i])
		}
	}
}

// TestPlanetLabMatchesPaperStatistics is the generator's contract with §6.2:
// sample mean ≈ 12 %, std ≈ 34 %, per-step max ≈ 90 %+, and all samples in
// [0,1].
func TestPlanetLabMatchesPaperStatistics(t *testing.T) {
	cfg := DefaultPlanetLabConfig(1)
	const nVM = 200
	traces, err := GeneratePlanetLab(cfg, nVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != nVM {
		t.Fatalf("got %d traces", len(traces))
	}
	var all []float64
	for _, tr := range traces {
		if tr.Len() != SevenDays {
			t.Fatalf("trace length %d, want %d", tr.Len(), SevenDays)
		}
		for _, u := range tr {
			if u < 0 || u > 1 {
				t.Fatalf("sample %g out of [0,1]", u)
			}
			all = append(all, u)
		}
	}
	mean := stats.Mean(all)
	std := stats.StdDev(all)
	if mean < 0.08 || mean > 0.17 {
		t.Errorf("population mean = %.3f, want ≈0.12 (paper §6.2)", mean)
	}
	if std < 0.24 || std > 0.40 {
		t.Errorf("population std = %.3f, want ≈0.34 (paper §6.2)", std)
	}
	// Instantaneous spread across VMs: at most steps the max should be
	// near saturation and the min near idle.
	hiSteps := 0
	for step := 0; step < SevenDays; step += 24 {
		var mx, mn float64 = 0, 1
		for _, tr := range traces {
			u := tr.At(step)
			if u > mx {
				mx = u
			}
			if u < mn {
				mn = u
			}
		}
		if mx > 0.80 && mn < 0.10 {
			hiSteps++
		}
	}
	if hiSteps < SevenDays/24*9/10 {
		t.Errorf("only %d sampled steps show the paper's 5%%–90%% spread", hiSteps)
	}
}

func TestPlanetLabDeterministicBySeed(t *testing.T) {
	a, err := GeneratePlanetLab(DefaultPlanetLabConfig(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePlanetLab(DefaultPlanetLabConfig(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different traces")
			}
		}
	}
	c, err := GeneratePlanetLab(DefaultPlanetLabConfig(8), 3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPlanetLabValidation(t *testing.T) {
	bad := DefaultPlanetLabConfig(1)
	bad.PIdleToBusy = 1.5
	if _, err := GeneratePlanetLab(bad, 1); err == nil {
		t.Fatal("expected validation error for probability > 1")
	}
	bad2 := DefaultPlanetLabConfig(1)
	bad2.Steps = -1
	if _, err := GeneratePlanetLab(bad2, 1); err == nil {
		t.Fatal("expected validation error for negative steps")
	}
	if _, err := GeneratePlanetLab(DefaultPlanetLabConfig(1), -1); err == nil {
		t.Fatal("expected error for negative count")
	}
}

func TestPlanetLabBurstsAreSustained(t *testing.T) {
	// The paper stresses "long duration but high variance" workloads;
	// consecutive samples must be strongly correlated (not i.i.d. noise).
	traces, err := GeneratePlanetLab(DefaultPlanetLabConfig(3), 50)
	if err != nil {
		t.Fatal(err)
	}
	var num, denA, denB float64
	for _, tr := range traces {
		m := tr.Mean()
		for t2 := 1; t2 < tr.Len(); t2++ {
			num += (tr[t2] - m) * (tr[t2-1] - m)
			denA += (tr[t2] - m) * (tr[t2] - m)
			denB += (tr[t2-1] - m) * (tr[t2-1] - m)
		}
	}
	rho := num / math.Sqrt(denA*denB)
	if rho < 0.7 {
		t.Fatalf("lag-1 autocorrelation = %.3f, want ≥ 0.7 (sustained bursts)", rho)
	}
}

// TestGoogleMatchesPaperCharacteristics checks §6.2/Fig. 1b: wide log-spread
// durations, low utilization, valid samples.
func TestGoogleMatchesPaperCharacteristics(t *testing.T) {
	cfg := DefaultGoogleConfig(1)
	traces, tasks, err := GenerateGoogle(cfg, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 150 {
		t.Fatalf("got %d traces", len(traces))
	}
	if len(tasks) == 0 {
		t.Fatal("no tasks generated")
	}
	var minDur, maxDur = math.Inf(1), math.Inf(-1)
	for _, task := range tasks {
		if task.DurationSec < cfg.MinDurationSec-1e-9 || task.DurationSec > cfg.MaxDurationSec+1e-9 {
			t.Fatalf("task duration %g out of bounds", task.DurationSec)
		}
		minDur = math.Min(minDur, task.DurationSec)
		maxDur = math.Max(maxDur, task.DurationSec)
	}
	if math.Log10(maxDur/minDur) < 3 {
		t.Errorf("duration spread only %.1f decades, want ≥ 3 (Fig. 1b: 10¹–10⁶ s)",
			math.Log10(maxDur/minDur))
	}
	var all []float64
	for _, tr := range traces {
		for _, u := range tr {
			if u < 0 || u > 1 {
				t.Fatalf("sample %g out of [0,1]", u)
			}
			all = append(all, u)
		}
	}
	if m := stats.Mean(all); m > 0.15 {
		t.Errorf("Google mean utilization = %.3f, want low (< 0.15)", m)
	}
	// Durations should not look like a single standard distribution: the
	// log-durations' kurtosis should differ clearly from a Gaussian's 3.
	logs := make([]float64, len(tasks))
	for i, task := range tasks {
		logs[i] = math.Log10(task.DurationSec)
	}
	if k := stats.Kurtosis(logs); math.Abs(k-3) < 0.2 {
		t.Logf("note: log-duration kurtosis %.2f close to normal; acceptable but unexpected", k)
	}
}

func TestGoogleDeterministicBySeed(t *testing.T) {
	a, _, err := GenerateGoogle(DefaultGoogleConfig(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateGoogle(DefaultGoogleConfig(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different Google traces")
			}
		}
	}
}

func TestGoogleValidation(t *testing.T) {
	bad := DefaultGoogleConfig(1)
	bad.MinDurationSec = 0
	if _, _, err := GenerateGoogle(bad, 1); err == nil {
		t.Fatal("expected validation error for zero MinDurationSec")
	}
	bad2 := DefaultGoogleConfig(1)
	bad2.IdleGapProb = 2
	if _, _, err := GenerateGoogle(bad2, 1); err == nil {
		t.Fatal("expected validation error for IdleGapProb > 1")
	}
	if _, _, err := GenerateGoogle(DefaultGoogleConfig(1), -2); err == nil {
		t.Fatal("expected error for negative count")
	}
}

// Property: generated traces always stay in [0,1] across random configs.
func TestQuickGeneratorsBounded(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultPlanetLabConfig(seed)
		cfg.Steps = 100
		trs, err := GeneratePlanetLab(cfg, 5)
		if err != nil {
			return false
		}
		gcfg := DefaultGoogleConfig(seed)
		gcfg.Steps = 100
		gtrs, _, err := GenerateGoogle(gcfg, 5)
		if err != nil {
			return false
		}
		for _, set := range [][]Trace{trs, gtrs} {
			for _, tr := range set {
				for _, u := range tr {
					if u < 0 || u > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussClamped(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := gaussClamped(r, 0.5, 10, 0.2, 0.8)
		if v < 0.2 || v > 0.8 {
			t.Fatalf("gaussClamped escaped bounds: %g", v)
		}
	}
}

func BenchmarkGeneratePlanetLab(b *testing.B) {
	cfg := DefaultPlanetLabConfig(1)
	cfg.Steps = StepsPerDay
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePlanetLab(cfg, 50); err != nil {
			b.Fatal(err)
		}
	}
}
