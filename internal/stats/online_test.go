package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 5
		o.Add(xs[i])
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Mean = %g, want %g", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Variance = %g, want %g", o.Variance(), Variance(xs))
	}
	if !almostEqual(o.StdDev(), StdDev(xs), 1e-9) {
		t.Fatalf("StdDev = %g, want %g", o.StdDev(), StdDev(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Fatal("Min/Max mismatch")
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Fatal("empty accumulator should be zero")
	}
	if !math.IsInf(o.Min(), 1) || !math.IsInf(o.Max(), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
}

func TestOnlineSingle(t *testing.T) {
	var o Online
	o.Add(7)
	if o.Mean() != 7 || o.Variance() != 0 || o.Min() != 7 || o.Max() != 7 {
		t.Fatal("single-sample accumulator wrong")
	}
}

func TestCorrelationKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Correlation(xs, xs); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("self correlation = %g", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("anti correlation = %g", got)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if Correlation([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("length mismatch should yield 0")
	}
	if Correlation([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant series should yield 0")
	}
	if Correlation([]float64{1}, []float64{2}) != 0 {
		t.Fatal("too-short series should yield 0")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly persistent series has high lag-1 autocorrelation.
	xs := make([]float64, 500)
	r := rand.New(rand.NewSource(2))
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.95*xs[i-1] + 0.05*r.NormFloat64()
	}
	if got := Autocorrelation(xs, 1); got < 0.8 {
		t.Fatalf("lag-1 autocorrelation = %g, want ≥ 0.8", got)
	}
	if Autocorrelation(xs, 0) != 0 || Autocorrelation(xs, len(xs)) != 0 {
		t.Fatal("degenerate lags should yield 0")
	}
}

func TestRollingMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := RollingMean(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("RollingMean[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Window larger than series = prefix means.
	got = RollingMean(xs, 10)
	if !almostEqual(got[3], 2.5, 1e-12) {
		t.Fatalf("prefix mean = %g, want 2.5", got[3])
	}
}

func TestRollingMeanPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for window 0")
		}
	}()
	RollingMean([]float64{1}, 0)
}

func TestConvergenceStep(t *testing.T) {
	// High transient for 50 steps, then settles at 1.
	xs := make([]float64, 200)
	for i := range xs {
		if i < 50 {
			xs[i] = 10
		} else {
			xs[i] = 1
		}
	}
	got := ConvergenceStep(xs, 10, 0.05)
	if got < 50 || got > 70 {
		t.Fatalf("ConvergenceStep = %d, want shortly after the transient (50–70)", got)
	}
	if ConvergenceStep(nil, 5, 0.1) != 0 {
		t.Fatal("empty series should converge at 0")
	}
	flat := []float64{2, 2, 2, 2}
	if ConvergenceStep(flat, 2, 0.01) != 0 {
		t.Fatal("flat series should converge immediately")
	}
}

func TestConvergenceStepNeverSettles(t *testing.T) {
	// Oscillation whose rolling mean keeps swinging beyond tolerance.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(2 * (i % 2))
	}
	// The last sample is trivially within tolerance of itself, so a
	// non-settling series converges no earlier than its final step.
	if got := ConvergenceStep(xs, 1, 0.01); got < len(xs)-1 {
		t.Fatalf("ConvergenceStep = %d, want ≥ %d for a non-settling series", got, len(xs)-1)
	}
}

// Property: Online mean/variance equal batch mean/variance for any sample.
func TestQuickOnlineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
			o.Add(xs[i])
		}
		return almostEqual(o.Mean(), Mean(xs), 1e-8) &&
			almostEqual(o.Variance(), Variance(xs), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: correlation is symmetric and bounded in [−1, 1].
func TestQuickCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		c1 := Correlation(xs, ys)
		c2 := Correlation(ys, xs)
		return almostEqual(c1, c2, 1e-12) && c1 >= -1-1e-12 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
