package stats

import "math"

// Online accumulates count, mean and variance in one pass using Welford's
// algorithm — used by the experiment harness to summarise long per-step
// series without retaining them.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance (0 for < 2 samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (+Inf when empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.Inf(1)
	}
	return o.min
}

// Max returns the largest observation (−Inf when empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.Inf(-1)
	}
	return o.max
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length samples, or 0 when either is degenerate (constant or too
// short). It backs the Maximum-Correlation VM selection policy.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Autocorrelation returns the lag-k autocorrelation of xs, or 0 when the
// series is too short or constant. Used to characterise trace burstiness.
func Autocorrelation(xs []float64, lag int) float64 {
	if lag <= 0 || len(xs) <= lag {
		return 0
	}
	return Correlation(xs[:len(xs)-lag], xs[lag:])
}

// RollingMean returns the trailing window-mean series of xs: out[i] is the
// mean of xs[max(0,i-window+1)..i]. It panics when window < 1.
func RollingMean(xs []float64, window int) []float64 {
	if window < 1 {
		panic("stats: RollingMean window must be ≥ 1")
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// ConvergenceStep estimates when a per-step cost series converges: the
// first step from which the trailing window-mean stays within tol
// (relative) of the series' final window-mean forever after. Returns
// len(xs) when the series never settles. This implements the paper's
// "takes around k time-steps before converging" readings of Figures 2–5.
func ConvergenceStep(xs []float64, window int, tol float64) int {
	if len(xs) == 0 {
		return 0
	}
	roll := RollingMean(xs, window)
	final := roll[len(roll)-1]
	if final == 0 {
		return 0
	}
	for start := 0; start < len(roll); start++ {
		ok := true
		for i := start; i < len(roll); i++ {
			if math.Abs(roll[i]-final) > tol*math.Abs(final) {
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	return len(xs)
}
