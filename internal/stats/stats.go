// Package stats provides the descriptive statistics and local-regression
// routines used across the reproduction: summary statistics for workload
// characterisation (Figure 1), adaptive thresholds for the IQR/MAD-MMT
// baselines, Loess local regression for the LR/LRR-MMT baselines, and
// boxplot summaries for the sensitivity analysis (Figure 8).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of the slice.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks (type-7, the R default). It panics on an empty slice
// or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	h := q * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range Q3 − Q1, used by the IQR-MMT adaptive
// overload threshold.
func IQR(xs []float64) float64 {
	return Quantile(xs, 0.75) - Quantile(xs, 0.25)
}

// MAD returns the median absolute deviation from the median, used by the
// MAD-MMT adaptive overload threshold.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// Skewness returns the sample skewness (third standardised moment), 0 when
// the variance vanishes. Together with Kurtosis it gives the coordinates of
// a Cullen–Frey plot (paper §6.2 uses one to argue the workloads match no
// standard parametric family).
func Skewness(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d
	}
	return s / float64(len(xs))
}

// Kurtosis returns the (non-excess) sample kurtosis, 0 when the variance
// vanishes. A normal distribution has kurtosis 3.
func Kurtosis(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d * d
	}
	return s / float64(len(xs))
}

// Summary bundles the descriptive statistics reported for a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Median, Max   float64
	Q1, Q3             float64
	Skewness, Kurtosis float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		Std:      StdDev(xs),
		Min:      Min(xs),
		Median:   Median(xs),
		Max:      Max(xs),
		Q1:       Quantile(xs, 0.25),
		Q3:       Quantile(xs, 0.75),
		Skewness: Skewness(xs),
		Kurtosis: Kurtosis(xs),
	}
}

// Boxplot holds the five-number summary plus the 5th/95th percentile whiskers
// used by the Figure-8 sensitivity plots ("median and 90 percentile
// distribution of the per-step cost").
type Boxplot struct {
	P05, Q1, Median, Q3, P95 float64
}

// BoxplotOf computes the boxplot summary of xs. It panics on empty input.
func BoxplotOf(xs []float64) Boxplot {
	return Boxplot{
		P05:    Quantile(xs, 0.05),
		Q1:     Quantile(xs, 0.25),
		Median: Median(xs),
		Q3:     Quantile(xs, 0.75),
		P95:    Quantile(xs, 0.95),
	}
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]; samples
// outside the range are clamped into the edge bins. It panics unless
// nbins ≥ 1 and hi > lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins < 1 {
		panic("stats: Histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: Histogram needs hi > lo")
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// LogHistogram counts xs into nbins log10-spaced bins over [lo, hi]. It is
// used for the Google task-duration distribution (Figure 1b), where
// durations span 10¹–10⁶ seconds. Non-positive samples are dropped.
func LogHistogram(xs []float64, lo, hi float64, nbins int) []int {
	if lo <= 0 || hi <= lo {
		panic("stats: LogHistogram needs 0 < lo < hi")
	}
	logs := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			logs = append(logs, math.Log10(x))
		}
	}
	return Histogram(logs, math.Log10(lo), math.Log10(hi), nbins)
}
