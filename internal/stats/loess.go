package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned by the regression helpers when the sample
// is too small or degenerate to fit a line.
var ErrInsufficientData = errors.New("stats: insufficient or degenerate data for regression")

// Tricube is the tricube kernel (1−|u|³)³ for |u| ≤ 1, else 0 — the classic
// Loess distance weight.
func Tricube(u float64) float64 {
	u = math.Abs(u)
	if u >= 1 {
		return 0
	}
	c := 1 - u*u*u
	return c * c * c
}

// Bisquare is Tukey's biweight (1−u²)² for |u| ≤ 1, else 0 — the robustness
// weight used in the LRR (robust local regression) detector.
func Bisquare(u float64) float64 {
	u = math.Abs(u)
	if u >= 1 {
		return 0
	}
	c := 1 - u*u
	return c * c
}

// WeightedLinearFit fits y ≈ a + b·x by weighted least squares and returns
// the intercept a and slope b. It returns ErrInsufficientData when fewer
// than two points carry positive weight or the weighted x-variance vanishes.
func WeightedLinearFit(xs, ys, ws []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) != len(ws) {
		return 0, 0, errors.New("stats: WeightedLinearFit length mismatch")
	}
	var sw, swx, swy, swxx, swxy float64
	positive := 0
	for i := range xs {
		w := ws[i]
		if w <= 0 {
			continue
		}
		positive++
		sw += w
		swx += w * xs[i]
		swy += w * ys[i]
		swxx += w * xs[i] * xs[i]
		swxy += w * xs[i] * ys[i]
	}
	if positive < 2 || sw == 0 {
		return 0, 0, ErrInsufficientData
	}
	den := sw*swxx - swx*swx
	if math.Abs(den) < 1e-12 {
		return 0, 0, ErrInsufficientData
	}
	b = (sw*swxy - swx*swy) / den
	a = (swy - b*swx) / sw
	return a, b, nil
}

// LoessPredict fits a degree-1 Loess local regression to the history ys
// (indexed 0..n−1, the last element most recent) with tricube weights
// anchored at the most recent point, and extrapolates `ahead` steps past the
// end. This is the predictor behind the LR-MMT overload detector
// (Beloglazov & Buyya 2012, "local regression" method).
func LoessPredict(ys []float64, ahead float64) (float64, error) {
	n := len(ys)
	if n < 3 {
		return 0, ErrInsufficientData
	}
	xs := make([]float64, n)
	ws := make([]float64, n)
	span := float64(n) // bandwidth: the full window
	for i := range ys {
		xs[i] = float64(i)
		ws[i] = Tricube(float64(n-1-i) / span)
	}
	a, b, err := WeightedLinearFit(xs, ys, ws)
	if err != nil {
		return 0, err
	}
	return a + b*(float64(n-1)+ahead), nil
}

// RobustLoessPredict is LoessPredict hardened with Tukey bisquare robustness
// iterations (the LRR-MMT predictor): after each fit, residual-based
// bisquare weights down-weight outliers and the fit is repeated.
func RobustLoessPredict(ys []float64, ahead float64, iterations int) (float64, error) {
	n := len(ys)
	if n < 3 {
		return 0, ErrInsufficientData
	}
	if iterations < 1 {
		iterations = 1
	}
	xs := make([]float64, n)
	base := make([]float64, n)
	span := float64(n)
	for i := range ys {
		xs[i] = float64(i)
		base[i] = Tricube(float64(n-1-i) / span)
	}
	ws := append([]float64(nil), base...)
	var a, b float64
	for it := 0; it < iterations; it++ {
		var err error
		a, b, err = WeightedLinearFit(xs, ys, ws)
		if err != nil {
			return 0, err
		}
		if it == iterations-1 {
			break
		}
		// Bisquare robustness weights from residuals.
		res := make([]float64, n)
		for i := range ys {
			res[i] = math.Abs(ys[i] - (a + b*xs[i]))
		}
		s := Median(res)
		if s == 0 {
			break // perfect fit; no outliers to down-weight
		}
		for i := range ws {
			ws[i] = base[i] * Bisquare(res[i]/(6*s))
		}
	}
	return a + b*(float64(n-1)+ahead), nil
}
