package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTricubeShape(t *testing.T) {
	if Tricube(0) != 1 {
		t.Fatalf("Tricube(0) = %g, want 1", Tricube(0))
	}
	if Tricube(1) != 0 || Tricube(-1) != 0 || Tricube(2) != 0 {
		t.Fatal("Tricube should vanish for |u| ≥ 1")
	}
	if !(Tricube(0.2) > Tricube(0.8)) {
		t.Fatal("Tricube should decrease with |u|")
	}
}

func TestBisquareShape(t *testing.T) {
	if Bisquare(0) != 1 {
		t.Fatalf("Bisquare(0) = %g, want 1", Bisquare(0))
	}
	if Bisquare(1) != 0 || Bisquare(-1.5) != 0 {
		t.Fatal("Bisquare should vanish for |u| ≥ 1")
	}
}

func TestWeightedLinearFitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	ws := []float64{1, 1, 1, 1}
	a, b, err := WeightedLinearFit(xs, ys, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-12) || !almostEqual(b, 2, 1e-12) {
		t.Fatalf("fit = (%g, %g), want (1, 2)", a, b)
	}
}

func TestWeightedLinearFitIgnoresZeroWeight(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 100} // outlier at the end
	ws := []float64{1, 1, 1, 0}
	a, b, err := WeightedLinearFit(xs, ys, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-9) || !almostEqual(b, 2, 1e-9) {
		t.Fatalf("fit = (%g, %g), want (1, 2) with outlier zero-weighted", a, b)
	}
}

func TestWeightedLinearFitErrors(t *testing.T) {
	if _, _, err := WeightedLinearFit([]float64{1}, []float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("single point: err = %v", err)
	}
	// Same x twice: degenerate.
	if _, _, err := WeightedLinearFit([]float64{2, 2}, []float64{1, 3}, []float64{1, 1}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("degenerate x: err = %v", err)
	}
	if _, _, err := WeightedLinearFit([]float64{1, 2}, []float64{1}, []float64{1, 1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestLoessPredictLinearTrend(t *testing.T) {
	ys := make([]float64, 10)
	for i := range ys {
		ys[i] = 0.1 * float64(i)
	}
	got, err := LoessPredict(ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.0, 1e-9) {
		t.Fatalf("LoessPredict = %g, want 1.0 (extrapolated line)", got)
	}
}

func TestLoessPredictTooShort(t *testing.T) {
	if _, err := LoessPredict([]float64{1, 2}, 1); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

func TestLoessPredictWeightsRecent(t *testing.T) {
	// History: long flat stretch then a recent ramp. The anchored tricube
	// weights must make the prediction follow the recent ramp rather than
	// the stale flat average.
	ys := []float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.3, 0.4, 0.5, 0.6}
	got, err := LoessPredict(ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0.55 {
		t.Fatalf("LoessPredict = %g, want > 0.55 (should track the recent ramp)", got)
	}
}

func TestRobustLoessDownweightsOutlier(t *testing.T) {
	// A clean rising line with one huge spike in the middle. The robust
	// prediction must stay closer to the clean extrapolation than the
	// non-robust one.
	ys := []float64{0.10, 0.12, 0.14, 0.16, 0.95, 0.20, 0.22, 0.24, 0.26, 0.28}
	clean := 0.30
	plain, err := LoessPredict(ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := RobustLoessPredict(ys, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust-clean) >= math.Abs(plain-clean) {
		t.Fatalf("robust |Δ| = %g not better than plain |Δ| = %g",
			math.Abs(robust-clean), math.Abs(plain-clean))
	}
}

func TestRobustLoessPerfectFitShortCircuits(t *testing.T) {
	ys := []float64{1, 2, 3, 4, 5}
	got, err := RobustLoessPredict(ys, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 6, 1e-9) {
		t.Fatalf("RobustLoessPredict = %g, want 6", got)
	}
}

func TestRobustLoessTooShort(t *testing.T) {
	if _, err := RobustLoessPredict([]float64{1, 2}, 1, 3); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

// Property: on noiseless lines, both predictors recover the line exactly.
func TestQuickLoessExactOnLines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		a := r.Float64()*4 - 2
		b := r.Float64()*2 - 1
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = a + b*float64(i)
		}
		want := a + b*float64(n)
		p1, err1 := LoessPredict(ys, 1)
		p2, err2 := RobustLoessPredict(ys, 1, 3)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p1, want, 1e-6) && almostEqual(p2, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
