package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMeanKnown(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", got)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of single sample should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("Min/Max/Sum = %g/%g/%g", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileSingle(t *testing.T) {
	if got := Quantile([]float64{9}, 0.3); got != 9 {
		t.Fatalf("Quantile single = %g", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for i, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestMedianIQRMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if got := Median(xs); got != 2 {
		t.Fatalf("Median = %g, want 2", got)
	}
	if got := MAD(xs); got != 1 {
		t.Fatalf("MAD = %g, want 1", got)
	}
	if got := IQR(xs); !almostEqual(got, 3.5, 1e-12) {
		t.Fatalf("IQR = %g, want 3.5", got)
	}
}

func TestSkewnessSymmetric(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	if got := Skewness(xs); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("Skewness of symmetric sample = %g", got)
	}
}

func TestSkewnessRightTail(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 10}
	if got := Skewness(xs); got <= 0 {
		t.Fatalf("Skewness = %g, want > 0 for right-tailed sample", got)
	}
}

func TestKurtosisNormalApprox(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if got := Kurtosis(xs); !almostEqual(got, 3, 0.1) {
		t.Fatalf("Kurtosis of normal sample = %g, want ≈3", got)
	}
}

func TestMomentsDegenerateSample(t *testing.T) {
	xs := []float64{4, 4, 4}
	if Skewness(xs) != 0 || Kurtosis(xs) != 0 {
		t.Fatal("constant sample should have zero skewness/kurtosis by convention")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if (Summary{}) != Summarize(nil) {
		t.Fatal("Summarize(nil) should be zero Summary")
	}
}

func TestBoxplotOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	b := BoxplotOf(xs)
	if !(b.P05 <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.P95) {
		t.Fatalf("boxplot not ordered: %+v", b)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.55, 0.9, -5, 17}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v, want [3 3] (outliers clamped)", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Histogram(nil, 0, 1, 0) },
		func() { Histogram(nil, 1, 1, 3) },
		func() { LogHistogram(nil, 0, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLogHistogram(t *testing.T) {
	xs := []float64{10, 100, 1000, 100000, -3, 0}
	h := LogHistogram(xs, 1, 1e6, 6)
	// log10 values 1,2,3,5 over [0,6] with 6 bins → bins 1,2,3,5.
	want := []int{0, 1, 1, 1, 0, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("LogHistogram = %v, want %v", h, want)
		}
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*20 - 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-12 || v < Min(xs)-1e-12 || v > Max(xs)+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MAD and IQR are translation invariant and scale linearly.
func TestQuickRobustScaleProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 5
		}
		shift := r.Float64()*10 - 5
		scale := 0.5 + r.Float64()*3
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = xs[i]*scale + shift
		}
		okMAD := almostEqual(MAD(ys), scale*MAD(xs), 1e-9)
		okIQR := almostEqual(IQR(ys), scale*IQR(xs), 1e-9)
		return okMAD && okIQR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
