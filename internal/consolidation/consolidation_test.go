package consolidation

import (
	"math"
	"testing"

	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

// buildSnapshot runs a one-step simulation to obtain a realistic snapshot
// for detector/placement unit tests.
func buildSnapshot(t *testing.T, hostMIPS float64, vmUtils [][]float64, placement sim.Placement) *sim.Snapshot {
	t.Helper()
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	nHosts := len(vmUtils)
	var vms []sim.VMSpec
	var traces []workload.Trace
	for _, hostVMs := range vmUtils {
		for _, u := range hostVMs {
			vms = append(vms, sim.VMSpec{MIPS: hostMIPS, RAMMB: 512, BandwidthMbps: 100})
			traces = append(traces, workload.Trace{u})
		}
	}
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: hostMIPS, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	var snap *sim.Snapshot
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
		InitialPlacement: placement,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&grabber{&snap}); err != nil {
		t.Fatal(err)
	}
	return snap
}

type grabber struct{ out **sim.Snapshot }

func (grabber) Name() string { return "grab" }
func (g *grabber) Decide(s *sim.Snapshot) []sim.Migration {
	c := *s
	c.VMHost = append([]int(nil), s.VMHost...)
	c.VMUtil = append([]float64(nil), s.VMUtil...)
	c.VMMIPS = append([]float64(nil), s.VMMIPS...)
	c.HostUtil = append([]float64(nil), s.HostUtil...)
	c.HostVMs = make([][]int, len(s.HostVMs))
	for i := range s.HostVMs {
		c.HostVMs[i] = append([]int(nil), s.HostVMs[i]...)
	}
	c.HostHistory = make([][]float64, len(s.HostHistory))
	for i := range s.HostHistory {
		c.HostHistory[i] = append([]float64(nil), s.HostHistory[i]...)
	}
	*g.out = &c
	return nil
}

func withHistory(s *sim.Snapshot, host int, hist []float64) *sim.Snapshot {
	s.HostHistory[host] = hist
	return s
}

func TestTHRDetector(t *testing.T) {
	d, err := NewTHR(0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Host 0: one VM at 90% of a host with equal MIPS → util 0.9.
	snap := buildSnapshot(t, 1000, [][]float64{{0.9}, {0.3}}, sim.PlacementRoundRobin)
	if !d.Overloaded(snap, 0) {
		t.Fatal("host at 0.9 should be overloaded at THR 0.7")
	}
	if d.Overloaded(snap, 1) {
		t.Fatal("host at 0.3 should not be overloaded")
	}
	if d.TargetUtilization(snap, 0) != 0.7 {
		t.Fatal("THR target should equal its threshold")
	}
	if d.Name() != "THR" {
		t.Fatal("name wrong")
	}
}

func TestNewTHRValidates(t *testing.T) {
	if _, err := NewTHR(0); err == nil {
		t.Fatal("expected error for threshold 0")
	}
	if _, err := NewTHR(1.2); err == nil {
		t.Fatal("expected error for threshold > 1")
	}
}

func TestAdaptiveDetectorsFallbackOnShortHistory(t *testing.T) {
	for _, mk := range []func() (Detector, error){
		func() (Detector, error) { return NewIQR(1.5) },
		func() (Detector, error) { return NewMAD(2.5) },
		func() (Detector, error) { return NewLR(1.2) },
		func() (Detector, error) { return NewLRR(1.2) },
	} {
		d, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		snap := buildSnapshot(t, 1000, [][]float64{{0.9}}, sim.PlacementRoundRobin)
		snap.HostHistory[0] = []float64{0.9} // too short for adaptation
		if !d.Overloaded(snap, 0) {
			t.Errorf("%s: fallback should flag util 0.9 > 0.7", d.Name())
		}
	}
}

func TestIQRAdaptiveThreshold(t *testing.T) {
	d, err := NewIQR(1.5)
	if err != nil {
		t.Fatal(err)
	}
	snap := buildSnapshot(t, 1000, [][]float64{{0.8}}, sim.PlacementRoundRobin)
	// Volatile history → wide IQR → low threshold → overloaded at 0.8.
	volatile := []float64{0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9}
	withHistory(snap, 0, volatile)
	if !d.Overloaded(snap, 0) {
		t.Fatal("volatile history should lower the IQR threshold below 0.8")
	}
	// Flat history → IQR ≈ 0 → threshold ≈ β = 0.7 (the β-anchored
	// formula; see the adaptive type's doc comment) → a host at 0.65 is
	// fine while one at 0.8 is flagged.
	snap2 := buildSnapshot(t, 1000, [][]float64{{0.65}}, sim.PlacementRoundRobin)
	flat := []float64{0.65, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65}
	withHistory(snap2, 0, flat)
	if d.Overloaded(snap2, 0) {
		t.Fatal("flat history at util 0.65 should not be overloaded (threshold ≈ β)")
	}
	withHistory(snap, 0, flat)
	if !d.Overloaded(snap, 0) {
		t.Fatal("flat history at util 0.8 should be overloaded (threshold ≈ β = 0.7)")
	}
}

func TestMADAdaptiveThreshold(t *testing.T) {
	d, err := NewMAD(2.5)
	if err != nil {
		t.Fatal(err)
	}
	snap := buildSnapshot(t, 1000, [][]float64{{0.8}}, sim.PlacementRoundRobin)
	volatile := []float64{0.1, 0.9, 0.1, 0.9, 0.2, 0.8, 0.1, 0.9, 0.2, 0.9, 0.1, 0.8}
	withHistory(snap, 0, volatile)
	if !d.Overloaded(snap, 0) {
		t.Fatal("volatile history should trip MAD at util 0.8")
	}
}

func TestLRDetectsRisingTrend(t *testing.T) {
	d, err := NewLR(1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Current util moderate but trending up hard → prediction ≥ 1/1.2.
	snap := buildSnapshot(t, 1000, [][]float64{{0.6}}, sim.PlacementRoundRobin)
	rising := []float64{0.1, 0.18, 0.26, 0.34, 0.42, 0.5, 0.58, 0.66, 0.74, 0.82, 0.9, 0.95}
	withHistory(snap, 0, rising)
	if !d.Overloaded(snap, 0) {
		t.Fatal("LR should flag a steeply rising host")
	}
	falling := []float64{0.95, 0.9, 0.82, 0.74, 0.66, 0.58, 0.5, 0.42, 0.34, 0.26, 0.18, 0.1}
	withHistory(snap, 0, falling)
	if d.Overloaded(snap, 0) {
		t.Fatal("LR should not flag a falling host")
	}
}

func TestLRRRobustToSpike(t *testing.T) {
	plain, err := NewLR(1.2)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := NewLRR(1.2)
	if err != nil {
		t.Fatal(err)
	}
	snap := buildSnapshot(t, 1000, [][]float64{{0.5}}, sim.PlacementRoundRobin)
	// Flat-with-spike history: LR's tricube-anchored fit may overreact to
	// the recent spike; LRR must not.
	spiky := []float64{0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.95, 0.3}
	withHistory(snap, 0, spiky)
	if robust.Overloaded(snap, 0) {
		t.Fatal("LRR should shrug off a single spike in an otherwise flat history")
	}
	_ = plain // LR's verdict on the spike is unspecified; LRR's is what matters.
}

func TestDetectorConstructorsValidate(t *testing.T) {
	if _, err := NewIQR(0); err == nil {
		t.Fatal("IQR safety 0 should error")
	}
	if _, err := NewMAD(-1); err == nil {
		t.Fatal("MAD safety -1 should error")
	}
	if _, err := NewLR(0); err == nil {
		t.Fatal("LR safety 0 should error")
	}
	if _, err := NewLRR(-2); err == nil {
		t.Fatal("LRR safety -2 should error")
	}
}

func TestMMTConstructorValidation(t *testing.T) {
	if _, err := NewMMT(nil, Config{}); err == nil {
		t.Fatal("nil detector should error")
	}
	thr, _ := NewTHR(0.7)
	if _, err := NewMMT(thr, Config{UnderloadThreshold: 2}); err == nil {
		t.Fatal("bad underload threshold should error")
	}
	if _, err := NewMMT(thr, Config{MaxUnderloadHostsPerStep: -1}); err == nil {
		t.Fatal("negative underload host cap should error")
	}
}

func TestAllVariantsConstructAndName(t *testing.T) {
	mks := []struct {
		mk   func() (*MMT, error)
		name string
	}{
		{NewTHRMMT, "THR-MMT"},
		{NewIQRMMT, "IQR-MMT"},
		{NewMADMMT, "MAD-MMT"},
		{NewLRMMT, "LR-MMT"},
		{NewLRRMMT, "LRR-MMT"},
	}
	for _, c := range mks {
		p, err := c.mk()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Name() != c.name {
			t.Fatalf("name = %q, want %q", p.Name(), c.name)
		}
		if p.Detector() == nil {
			t.Fatalf("%s: nil detector", c.name)
		}
	}
}

func TestMMTResolvesOverload(t *testing.T) {
	// Host 0 carries three hot VMs (util 0.9 total); host 1 idle-ish.
	snap := buildSnapshot(t, 3000, [][]float64{{0.9, 0.9, 0.9}, {0.1}}, sim.PlacementFirstFit)
	// First-fit puts all four VMs (512 MiB each) on host 0; adjust: check.
	p, err := NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	migs := p.Decide(snap)
	if len(migs) == 0 {
		t.Fatal("MMT did not react to an overloaded host")
	}
	// All migrations must move VMs off the overloaded host.
	for _, mig := range migs {
		if snap.VMHost[mig.VM] != mig.Dest {
			if snap.HostUtil[snap.VMHost[mig.VM]] <= 0.7 && snap.HostUtil[mig.Dest] < snap.HostUtil[snap.VMHost[mig.VM]] {
				continue // consolidation move
			}
		}
	}
}

func TestMMTSelectsMinimumMigrationTimeVM(t *testing.T) {
	// Build an overloaded host with one small-RAM and several big-RAM
	// VMs; the victim must be the small one (fastest to migrate).
	lin, _ := power.NewLinear("test", 100, 200)
	hosts := []sim.HostSpec{
		{MIPS: 3000, RAMMB: 16384, BandwidthMbps: 1000, Power: lin},
		{MIPS: 3000, RAMMB: 16384, BandwidthMbps: 1000, Power: lin},
	}
	vms := []sim.VMSpec{
		{MIPS: 1000, RAMMB: 4096, BandwidthMbps: 100},
		{MIPS: 1000, RAMMB: 256, BandwidthMbps: 100}, // fastest to move
		{MIPS: 1000, RAMMB: 4096, BandwidthMbps: 100},
	}
	traces := []workload.Trace{{0.9}, {0.9}, {0.9}}
	var snap *sim.Snapshot
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
		InitialPlacement: sim.PlacementFirstFit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&grabber{&snap}); err != nil {
		t.Fatal(err)
	}
	if snap.HostUtil[0] <= 0.7 {
		t.Fatalf("setup: host 0 util %g not overloaded", snap.HostUtil[0])
	}
	p, err := NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	migs := p.Decide(snap)
	if len(migs) == 0 {
		t.Fatal("no migrations proposed")
	}
	if migs[0].VM != 1 {
		t.Fatalf("first victim VM %d, want the 256 MiB VM 1 (minimum migration time)", migs[0].VM)
	}
}

func TestMMTPlacementAvoidsCreatingOverload(t *testing.T) {
	// Two destination hosts: one nearly full, one empty. The victim must
	// not land on the nearly full one.
	snap := buildSnapshot(t, 1000, [][]float64{{0.9}, {0.65}, {0.0}}, sim.PlacementRoundRobin)
	p, err := NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	migs := p.Decide(snap)
	for _, mig := range migs {
		if snap.VMHost[mig.VM] == 0 && mig.Dest == 1 {
			t.Fatal("placement pushed host 1 over the overload threshold")
		}
	}
}

func TestMMTConsolidatesUnderloadedHost(t *testing.T) {
	// Two active hosts at 10% each: MMT should vacate one onto the other.
	snap := buildSnapshot(t, 1000, [][]float64{{0.1}, {0.1}}, sim.PlacementRoundRobin)
	p, err := NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	migs := p.Decide(snap)
	if len(migs) != 1 {
		t.Fatalf("expected exactly one consolidation migration, got %v", migs)
	}
	src := snap.VMHost[migs[0].VM]
	if migs[0].Dest == src {
		t.Fatal("consolidation produced a no-op")
	}
}

func TestMMTConsolidationDoesNotWakeSleepingHosts(t *testing.T) {
	// Hosts 0 and 1 active at 10%, host 2 asleep. The consolidation
	// destination must be an active host.
	snap := buildSnapshot(t, 1000, [][]float64{{0.1}, {0.1}, {}}, sim.PlacementRoundRobin)
	p, err := NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	for _, mig := range p.Decide(snap) {
		if mig.Dest == 2 {
			t.Fatal("consolidation woke a sleeping host")
		}
	}
}

func TestMMTUnderloadDisabled(t *testing.T) {
	snap := buildSnapshot(t, 1000, [][]float64{{0.1}, {0.1}}, sim.PlacementRoundRobin)
	thr, _ := NewTHR(0.7)
	p, err := NewMMT(thr, Config{DisableUnderload: true})
	if err != nil {
		t.Fatal(err)
	}
	if migs := p.Decide(snap); len(migs) != 0 {
		t.Fatalf("underload disabled but migrations proposed: %v", migs)
	}
}

func TestMMTKeepsAtLeastOneVMOnOverloadedHost(t *testing.T) {
	// A single VM overloading its host cannot be fixed by shedding (the
	// host would go empty); MMT must keep it.
	snap := buildSnapshot(t, 1000, [][]float64{{0.95}, {0.0}}, sim.PlacementRoundRobin)
	p, err := NewTHRMMT()
	if err != nil {
		t.Fatal(err)
	}
	for _, mig := range p.Decide(snap) {
		if snap.VMHost[mig.VM] == 0 {
			t.Fatal("MMT evicted the last VM of an overloaded host")
		}
	}
}

func TestMMTEndToEndRun(t *testing.T) {
	const nVMs, nHosts, steps = 30, 12, 100
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(2)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 4)
	s, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() (*MMT, error){NewTHRMMT, NewIQRMMT, NewMADMMT, NewLRMMT, NewLRRMMT} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCost() <= 0 {
			t.Fatalf("%s: non-positive total cost", p.Name())
		}
		if math.IsNaN(res.TotalCost()) {
			t.Fatalf("%s: NaN cost", p.Name())
		}
		// MMT must actually migrate on a bursty trace.
		if res.TotalMigrations() == 0 {
			t.Fatalf("%s: zero migrations on bursty PlanetLab-like load", p.Name())
		}
		// Most proposed migrations should be feasible.
		rejected := 0
		for _, sm := range res.Steps {
			rejected += sm.Rejected
		}
		if rejected > res.TotalMigrations()/2 {
			t.Fatalf("%s: %d rejected vs %d executed migrations",
				p.Name(), rejected, res.TotalMigrations())
		}
	}
}
