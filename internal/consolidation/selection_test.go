package consolidation

import (
	"math/rand"
	"testing"

	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

func TestSelectionString(t *testing.T) {
	cases := map[Selection]string{
		SelectMMT:            "MMT",
		SelectRandom:         "RS",
		SelectMaxCorrelation: "MC",
		SelectMinUtil:        "MU",
		Selection(42):        "selection(42)",
	}
	for sel, want := range cases {
		if got := sel.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(sel), got, want)
		}
	}
}

func TestSelectionValidate(t *testing.T) {
	for _, sel := range []Selection{SelectMMT, SelectRandom, SelectMaxCorrelation, SelectMinUtil} {
		if err := sel.Validate(); err != nil {
			t.Errorf("%v: %v", sel, err)
		}
	}
	if Selection(0).Validate() == nil || Selection(9).Validate() == nil {
		t.Error("invalid selections should fail validation")
	}
}

func TestMMTConfigRejectsBadSelection(t *testing.T) {
	thr, _ := NewTHR(0.7)
	if _, err := NewMMT(thr, Config{Selection: Selection(99)}); err == nil {
		t.Fatal("expected error for unknown selection")
	}
}

func TestPolicyNameIncludesSelection(t *testing.T) {
	thr, _ := NewTHR(0.7)
	p, err := NewMMT(thr, Config{Selection: SelectRandom})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "THR-RS" {
		t.Fatalf("name = %q, want THR-RS", p.Name())
	}
}

// overloadedSnapshot builds one overloaded host with VMs of distinct RAM
// and MIPS so the selection policies produce distinguishable victims.
func overloadedSnapshot(t *testing.T) *sim.Snapshot {
	t.Helper()
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	hosts := []sim.HostSpec{
		{MIPS: 3000, RAMMB: 32768, BandwidthMbps: 1000, Power: lin},
		{MIPS: 3000, RAMMB: 32768, BandwidthMbps: 1000, Power: lin},
	}
	// VM 0: big RAM, high demand; VM 1: small RAM (MMT victim);
	// VM 2: low demand (MU victim).
	vms := []sim.VMSpec{
		{MIPS: 1500, RAMMB: 4096, BandwidthMbps: 100},
		{MIPS: 1500, RAMMB: 128, BandwidthMbps: 100},
		{MIPS: 1500, RAMMB: 2048, BandwidthMbps: 100},
	}
	traces := []workload.Trace{{0.9}, {0.8}, {0.1}}
	var snap *sim.Snapshot
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
		InitialPlacement: sim.PlacementFirstFit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&grabber{&snap}); err != nil {
		t.Fatal(err)
	}
	if snap.HostUtil[0] <= 0.7 {
		t.Fatalf("setup: host util %g not overloaded", snap.HostUtil[0])
	}
	return snap
}

func TestPickVictimMMT(t *testing.T) {
	snap := overloadedSnapshot(t)
	remaining := append([]int(nil), snap.HostVMs[0]...)
	idx := pickVictim(SelectMMT, snap, 0, remaining, rand.New(rand.NewSource(1)))
	if remaining[idx] != 1 {
		t.Fatalf("MMT picked VM %d, want the 128 MiB VM 1", remaining[idx])
	}
}

func TestPickVictimMinUtil(t *testing.T) {
	snap := overloadedSnapshot(t)
	remaining := append([]int(nil), snap.HostVMs[0]...)
	idx := pickVictim(SelectMinUtil, snap, 0, remaining, rand.New(rand.NewSource(1)))
	if remaining[idx] != 2 {
		t.Fatalf("MU picked VM %d, want the 10%%-load VM 2", remaining[idx])
	}
}

func TestPickVictimRandomCoversAll(t *testing.T) {
	snap := overloadedSnapshot(t)
	remaining := append([]int(nil), snap.HostVMs[0]...)
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[remaining[pickVictim(SelectRandom, snap, 0, remaining, rng)]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("RS visited %d of 3 VMs", len(seen))
	}
}

func TestPickVictimMaxCorrelation(t *testing.T) {
	snap := overloadedSnapshot(t)
	remaining := append([]int(nil), snap.HostVMs[0]...)
	// Hand-craft VM histories: VMs 0 and 1 spike together, VM 2 is flat.
	snap.VMHistory[0] = []float64{0.1, 0.9, 0.1, 0.9, 0.1, 0.9}
	snap.VMHistory[1] = []float64{0.2, 0.8, 0.2, 0.8, 0.2, 0.8}
	snap.VMHistory[2] = []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	idx := pickVictim(SelectMaxCorrelation, snap, 0, remaining, rand.New(rand.NewSource(1)))
	if vm := remaining[idx]; vm != 0 && vm != 1 {
		t.Fatalf("MC picked the uncorrelated VM %d", vm)
	}
}

func TestPickVictimMaxCorrelationShortHistoryFallsBack(t *testing.T) {
	snap := overloadedSnapshot(t)
	remaining := append([]int(nil), snap.HostVMs[0]...)
	for j := range snap.VMHistory {
		snap.VMHistory[j] = []float64{0.5}
	}
	if idx := pickVictim(SelectMaxCorrelation, snap, 0, remaining, rand.New(rand.NewSource(1))); idx != 0 {
		t.Fatalf("short-history MC fallback picked index %d, want 0", idx)
	}
}

// TestSelectionVariantsEndToEnd runs each selection policy through a full
// simulation and checks they all keep the data center functioning.
func TestSelectionVariantsEndToEnd(t *testing.T) {
	const nVMs, nHosts, steps = 26, 12, 72
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(4)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 4)
	s, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []Selection{SelectMMT, SelectRandom, SelectMaxCorrelation, SelectMinUtil} {
		thr, _ := NewTHR(0.7)
		p, err := NewMMT(thr, Config{Selection: sel, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		res, err := s.Run(p)
		if err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		if res.TotalCost() <= 0 {
			t.Fatalf("%v: bad cost", sel)
		}
	}
}
