package consolidation

import (
	"fmt"
	"math"
	"math/rand"

	"megh/internal/sim"
	"megh/internal/stats"
)

// Selection chooses which VM an overloaded host sheds first. The paper
// evaluates the Minimum-Migration-Time family; the sibling policies from
// the same literature (random selection, maximum correlation, minimum
// utilization) are provided for ablations.
type Selection int

// VM selection policies.
const (
	// SelectMMT sheds the VM with the smallest RAM/bandwidth ratio — the
	// fastest to migrate (the paper's family).
	SelectMMT Selection = iota + 1
	// SelectRandom sheds a uniformly random VM (Beloglazov's RS).
	SelectRandom
	// SelectMaxCorrelation sheds the VM whose utilization history is
	// most correlated with the rest of the host's load (Beloglazov's
	// MC): correlated VMs are the ones that spike together.
	SelectMaxCorrelation
	// SelectMinUtil sheds the least CPU-demanding VM first (MU), the
	// cheapest in immediate re-placement capacity.
	SelectMinUtil
)

// String implements fmt.Stringer with the literature's abbreviations.
func (s Selection) String() string {
	switch s {
	case SelectMMT:
		return "MMT"
	case SelectRandom:
		return "RS"
	case SelectMaxCorrelation:
		return "MC"
	case SelectMinUtil:
		return "MU"
	default:
		return fmt.Sprintf("selection(%d)", int(s))
	}
}

// Validate reports unknown selections.
func (s Selection) Validate() error {
	switch s {
	case SelectMMT, SelectRandom, SelectMaxCorrelation, SelectMinUtil:
		return nil
	default:
		return fmt.Errorf("consolidation: unknown selection %d", int(s))
	}
}

// pickVictim returns the index (within remaining) of the next VM to shed
// from host, following the policy.
func pickVictim(sel Selection, s *sim.Snapshot, host int, remaining []int, rng *rand.Rand) int {
	switch sel {
	case SelectRandom:
		return rng.Intn(len(remaining))
	case SelectMinUtil:
		best, bestMIPS := 0, math.Inf(1)
		for idx, vm := range remaining {
			if s.VMMIPS[vm] < bestMIPS {
				bestMIPS = s.VMMIPS[vm]
				best = idx
			}
		}
		return best
	case SelectMaxCorrelation:
		return pickMaxCorrelation(s, remaining)
	default: // SelectMMT
		best, bestTime := 0, math.Inf(1)
		bw := s.HostSpecs[host].BandwidthMbps
		for idx, vm := range remaining {
			mt := math.Inf(1)
			if bw > 0 {
				mt = s.VMSpecs[vm].RAMMB * 8 / bw
			}
			if mt < bestTime {
				bestTime = mt
				best = idx
			}
		}
		return best
	}
}

// pickMaxCorrelation selects the VM whose utilization history correlates
// most with the aggregate history of its co-located peers. With too little
// history it degrades to the first VM.
func pickMaxCorrelation(s *sim.Snapshot, remaining []int) int {
	if len(remaining) == 1 {
		return 0
	}
	histLen := len(s.VMHistory[remaining[0]])
	if histLen < 3 {
		return 0
	}
	// Aggregate utilization history across the candidate VMs.
	total := make([]float64, histLen)
	for _, vm := range remaining {
		h := s.VMHistory[vm]
		if len(h) != histLen {
			return 0 // ragged histories: bail out conservatively
		}
		for i, u := range h {
			total[i] += u
		}
	}
	best, bestCorr := 0, math.Inf(-1)
	others := make([]float64, histLen)
	for idx, vm := range remaining {
		h := s.VMHistory[vm]
		for i := range others {
			others[i] = total[i] - h[i]
		}
		if c := stats.Correlation(h, others); c > bestCorr {
			bestCorr = c
			best = idx
		}
	}
	return best
}
