package consolidation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"megh/internal/sim"
)

// Config tunes the MMT policy around its detector.
type Config struct {
	// UnderloadThreshold marks hosts to vacate for sleeping; 0 means 0.5.
	UnderloadThreshold float64
	// DisableUnderload turns the consolidation pass off entirely.
	DisableUnderload bool
	// MaxUnderloadHostsPerStep bounds how many hosts are vacated per
	// step; 0 means effectively unbounded (Beloglazov's behaviour).
	MaxUnderloadHostsPerStep int
	// Selection chooses the victim-VM policy; 0 means SelectMMT.
	Selection Selection
	// Seed drives SelectRandom.
	Seed int64
	// PlacementHeadroom keeps placements below headroom·β so a freshly
	// packed host has margin before the next workload shift overloads
	// it; 0 means 0.9.
	PlacementHeadroom float64
}

// MMT is an overload-detector + Minimum-Migration-Time selection + PABFD
// placement policy — the THR/IQR/MAD/LR/LRR-MMT family of the paper's
// Tables 2–3.
type MMT struct {
	detector Detector
	cfg      Config
	rng      *rand.Rand

	// per-step placement bookkeeping (reused to avoid allocation).
	addRAM  []float64
	addMIPS []float64
}

var _ sim.Policy = (*MMT)(nil)

// NewMMT builds an MMT policy around the given detector.
func NewMMT(detector Detector, cfg Config) (*MMT, error) {
	if detector == nil {
		return nil, fmt.Errorf("consolidation: nil detector")
	}
	if cfg.UnderloadThreshold < 0 || cfg.UnderloadThreshold > 1 {
		return nil, fmt.Errorf("consolidation: UnderloadThreshold %g out of [0,1]",
			cfg.UnderloadThreshold)
	}
	if cfg.UnderloadThreshold == 0 {
		// Beloglazov's consolidation continually tries to vacate the
		// least-utilized hosts; 0.5 reproduces that aggressive packing
		// (and the churn the paper attributes to the MMT heuristics).
		cfg.UnderloadThreshold = 0.5
	}
	if cfg.MaxUnderloadHostsPerStep == 0 {
		// Beloglazov's algorithm attempts to vacate every underloaded
		// host each step; keep the default effectively unbounded.
		cfg.MaxUnderloadHostsPerStep = 1 << 20
	}
	if cfg.MaxUnderloadHostsPerStep < 0 {
		return nil, fmt.Errorf("consolidation: MaxUnderloadHostsPerStep %d negative",
			cfg.MaxUnderloadHostsPerStep)
	}
	if cfg.Selection == 0 {
		cfg.Selection = SelectMMT
	}
	if cfg.PlacementHeadroom == 0 {
		cfg.PlacementHeadroom = 0.9
	}
	if cfg.PlacementHeadroom < 0 || cfg.PlacementHeadroom > 1 {
		return nil, fmt.Errorf("consolidation: PlacementHeadroom %g out of (0,1]",
			cfg.PlacementHeadroom)
	}
	if err := cfg.Selection.Validate(); err != nil {
		return nil, err
	}
	return &MMT{
		detector: detector,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// NewTHRMMT, NewIQRMMT, NewMADMMT, NewLRMMT and NewLRRMMT build the five
// variants with the literature's standard safety parameters.
func NewTHRMMT() (*MMT, error) {
	d, err := NewTHR(0.7)
	if err != nil {
		return nil, err
	}
	return NewMMT(d, Config{})
}

// NewIQRMMT returns IQR-MMT (safety 1.5).
func NewIQRMMT() (*MMT, error) {
	d, err := NewIQR(1.5)
	if err != nil {
		return nil, err
	}
	return NewMMT(d, Config{})
}

// NewMADMMT returns MAD-MMT (safety 2.5).
func NewMADMMT() (*MMT, error) {
	d, err := NewMAD(2.5)
	if err != nil {
		return nil, err
	}
	return NewMMT(d, Config{})
}

// NewLRMMT returns LR-MMT (safety 1.2).
func NewLRMMT() (*MMT, error) {
	d, err := NewLR(1.2)
	if err != nil {
		return nil, err
	}
	return NewMMT(d, Config{})
}

// NewLRRMMT returns LRR-MMT (safety 1.2, robust regression).
func NewLRRMMT() (*MMT, error) {
	d, err := NewLRR(1.2)
	if err != nil {
		return nil, err
	}
	return NewMMT(d, Config{})
}

// Name implements sim.Policy: detector plus selection policy, e.g.
// "THR-MMT" or "THR-RS".
func (m *MMT) Name() string { return m.detector.Name() + "-" + m.cfg.Selection.String() }

// Detector exposes the underlying overload detector.
func (m *MMT) Detector() Detector { return m.detector }

// Decide implements sim.Policy: shed VMs from overloaded hosts (MMT
// selection, PABFD placement), then vacate underloaded hosts.
func (m *MMT) Decide(s *sim.Snapshot) []sim.Migration {
	m.resetScratch(s)

	var migrations []sim.Migration
	moved := make(map[int]bool)      // VMs already scheduled to move
	receiving := make(map[int]bool)  // hosts that received a VM this step
	overloaded := make(map[int]bool) // detector verdicts, cached

	for i := 0; i < s.NumHosts(); i++ {
		if len(s.HostVMs[i]) > 0 && m.detector.Overloaded(s, i) {
			overloaded[i] = true
		}
	}

	// Pass 1: overload resolution. A failed host is fully evacuated (the
	// keep-one rule only makes sense when the host still has capacity);
	// an overloaded one sheds victims per the selection policy.
	for host := range s.HostVMs {
		if !overloaded[host] {
			continue
		}
		var victims []int
		if len(s.HostFailed) > 0 && s.HostFailed[host] {
			victims = append([]int(nil), s.HostVMs[host]...)
		} else {
			victims = m.selectVictims(s, host)
		}
		for _, vm := range victims {
			dest, ok := m.placePABFD(s, vm, host, overloaded, nil)
			if !ok {
				continue
			}
			migrations = append(migrations, sim.Migration{VM: vm, Dest: dest})
			moved[vm] = true
			receiving[dest] = true
			m.addRAM[dest] += s.VMSpecs[vm].RAMMB
			m.addMIPS[dest] += s.VMMIPS[vm]
		}
	}

	// Pass 2: underload consolidation — vacate the least-utilized active
	// hosts entirely so they can sleep.
	if !m.cfg.DisableUnderload {
		migrations = append(migrations,
			m.consolidate(s, moved, receiving, overloaded)...)
	}
	return migrations
}

func (m *MMT) resetScratch(s *sim.Snapshot) {
	if cap(m.addRAM) < s.NumHosts() {
		m.addRAM = make([]float64, s.NumHosts())
		m.addMIPS = make([]float64, s.NumHosts())
	}
	m.addRAM = m.addRAM[:s.NumHosts()]
	m.addMIPS = m.addMIPS[:s.NumHosts()]
	for i := range m.addRAM {
		m.addRAM[i] = 0
		m.addMIPS[i] = 0
	}
}

// selectVictims repeatedly picks a VM per the configured selection policy
// until the host's utilization would drop to the detector's target.
func (m *MMT) selectVictims(s *sim.Snapshot, host int) []int {
	target := m.detector.TargetUtilization(s, host)
	capMIPS := s.HostSpecs[host].MIPS
	util := s.HostUtil[host]
	remaining := append([]int(nil), s.HostVMs[host]...)
	var victims []int
	for util > target && len(remaining) > 1 { // keep at least one VM
		best := pickVictim(m.cfg.Selection, s, host, remaining, m.rng)
		vm := remaining[best]
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		victims = append(victims, vm)
		util -= s.VMMIPS[vm] / capMIPS
	}
	return victims
}

// placePABFD picks the destination with the least power increase among
// hosts that can take the VM without becoming overloaded (power-aware
// best-fit decreasing, Beloglazov & Buyya). Hosts in `exclude` are skipped.
func (m *MMT) placePABFD(s *sim.Snapshot, vm, srcHost int, overloaded map[int]bool,
	exclude map[int]bool) (int, bool) {
	bestHost := -1
	bestDelta := math.Inf(1)
	for h := 0; h < s.NumHosts(); h++ {
		if h == srcHost || overloaded[h] || exclude[h] {
			continue
		}
		if !m.fits(s, vm, h) {
			continue
		}
		spec := s.HostSpecs[h]
		var hostMIPS float64
		for _, other := range s.HostVMs[h] {
			hostMIPS += s.VMMIPS[other]
		}
		hostMIPS += m.addMIPS[h]
		before := spec.Power.Power(clamp01(hostMIPS / spec.MIPS))
		afterUtil := (hostMIPS + s.VMMIPS[vm]) / spec.MIPS
		if afterUtil > m.cfg.PlacementHeadroom*s.OverloadThreshold {
			continue // would leave no margin before the next overload
		}
		after := spec.Power.Power(clamp01(afterUtil))
		delta := after - before
		if len(s.HostVMs[h]) == 0 && m.addRAM[h] == 0 {
			// Waking a sleeping host costs its idle power too.
			delta += spec.Power.Power(0)
		}
		if delta < bestDelta {
			bestDelta = delta
			bestHost = h
		}
	}
	return bestHost, bestHost >= 0
}

// consolidate tries to fully vacate the least-utilized active hosts onto
// other already-active hosts.
func (m *MMT) consolidate(s *sim.Snapshot, moved, receiving, overloaded map[int]bool) []sim.Migration {
	type hostLoad struct {
		host int
		util float64
	}
	var cands []hostLoad
	for h := 0; h < s.NumHosts(); h++ {
		if len(s.HostVMs[h]) == 0 || overloaded[h] || receiving[h] {
			continue
		}
		if s.HostUtil[h] < m.cfg.UnderloadThreshold {
			cands = append(cands, hostLoad{h, s.HostUtil[h]})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].util < cands[j].util })

	var out []sim.Migration
	vacated := make(map[int]bool)
	done := 0
	for _, c := range cands {
		if done >= m.cfg.MaxUnderloadHostsPerStep {
			break
		}
		// All VMs of the host must be placeable on other active,
		// non-overloaded, non-vacated hosts; otherwise skip the host.
		var plan []sim.Migration
		planRAM := make(map[int]float64)
		planMIPS := make(map[int]float64)
		ok := true
		for _, vm := range s.HostVMs[c.host] {
			if moved[vm] {
				ok = false
				break
			}
			dest := m.placeOnActive(s, vm, c.host, overloaded, vacated, planRAM, planMIPS)
			if dest < 0 {
				ok = false
				break
			}
			plan = append(plan, sim.Migration{VM: vm, Dest: dest})
			planRAM[dest] += s.VMSpecs[vm].RAMMB
			planMIPS[dest] += s.VMMIPS[vm]
		}
		if !ok || len(plan) == 0 {
			continue
		}
		for _, mig := range plan {
			moved[mig.VM] = true
			m.addRAM[mig.Dest] += s.VMSpecs[mig.VM].RAMMB
			m.addMIPS[mig.Dest] += s.VMMIPS[mig.VM]
		}
		vacated[c.host] = true
		out = append(out, plan...)
		done++
	}
	return out
}

// placeOnActive is PABFD restricted to already-active hosts (consolidation
// must not wake sleeping machines), with additional per-plan deltas.
func (m *MMT) placeOnActive(s *sim.Snapshot, vm, srcHost int, overloaded, vacated map[int]bool,
	planRAM, planMIPS map[int]float64) int {
	bestHost := -1
	bestDelta := math.Inf(1)
	for h := 0; h < s.NumHosts(); h++ {
		if h == srcHost || overloaded[h] || vacated[h] {
			continue
		}
		if len(s.HostVMs[h]) == 0 && m.addRAM[h] == 0 {
			continue // sleeping
		}
		spec := s.HostSpecs[h]
		var ram, hostMIPS float64
		for _, other := range s.HostVMs[h] {
			ram += s.VMSpecs[other].RAMMB
			hostMIPS += s.VMMIPS[other]
		}
		ram += m.addRAM[h] + planRAM[h]
		hostMIPS += m.addMIPS[h] + planMIPS[h]
		if ram+s.VMSpecs[vm].RAMMB > spec.RAMMB {
			continue
		}
		afterUtil := (hostMIPS + s.VMMIPS[vm]) / spec.MIPS
		if afterUtil > m.cfg.PlacementHeadroom*s.OverloadThreshold {
			continue
		}
		before := spec.Power.Power(clamp01(hostMIPS / spec.MIPS))
		after := spec.Power.Power(clamp01(afterUtil))
		if delta := after - before; delta < bestDelta {
			bestDelta = delta
			bestHost = h
		}
	}
	return bestHost
}

// fits checks RAM and raw MIPS capacity including this step's additions.
func (m *MMT) fits(s *sim.Snapshot, vm, h int) bool {
	spec := s.HostSpecs[h]
	var ram, mips float64
	for _, other := range s.HostVMs[h] {
		ram += s.VMSpecs[other].RAMMB
		mips += s.VMMIPS[other]
	}
	return ram+m.addRAM[h]+s.VMSpecs[vm].RAMMB <= spec.RAMMB &&
		mips+m.addMIPS[h]+s.VMMIPS[vm] <= spec.MIPS
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
