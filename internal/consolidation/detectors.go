// Package consolidation implements the dynamic VM-consolidation heuristics
// the paper compares Megh against (§2.1, §6.3): the Minimum-Migration-Time
// (MMT) family of Beloglazov & Buyya — THR, IQR, MAD, LR and LRR overload
// detectors combined with MMT VM selection and power-aware best-fit-
// decreasing (PABFD) placement, plus underload consolidation that vacates
// lightly loaded hosts so they can sleep.
package consolidation

import (
	"fmt"

	"megh/internal/sim"
	"megh/internal/stats"
)

// Detector decides whether a host is overloaded and should shed VMs.
type Detector interface {
	// Name identifies the detector ("THR", "IQR", ...).
	Name() string
	// Overloaded inspects host i of the snapshot.
	Overloaded(s *sim.Snapshot, host int) bool
	// TargetUtilization returns the utilization the host should be
	// brought back under when shedding VMs.
	TargetUtilization(s *sim.Snapshot, host int) float64
}

// THR is the static-threshold detector: overloaded when utilization exceeds
// a fixed threshold.
type THR struct {
	// Threshold is the fixed utilization bound (paper experiments: 0.7,
	// matching β).
	Threshold float64
}

var _ Detector = THR{}

// NewTHR returns a THR detector, validating the threshold.
func NewTHR(threshold float64) (THR, error) {
	if threshold <= 0 || threshold > 1 {
		return THR{}, fmt.Errorf("consolidation: THR threshold %g out of (0,1]", threshold)
	}
	return THR{Threshold: threshold}, nil
}

// Name implements Detector.
func (THR) Name() string { return "THR" }

// Overloaded implements Detector.
func (d THR) Overloaded(s *sim.Snapshot, host int) bool {
	return s.HostUtil[host] > d.Threshold
}

// TargetUtilization implements Detector.
func (d THR) TargetUtilization(*sim.Snapshot, int) float64 { return d.Threshold }

// adaptive is the shared shape of the history-driven detectors: they derive
// a dynamic threshold β·(1 − safety·dispersion(history)) and fall back to a
// static threshold while history is short.
//
// Beloglazov's original formulas use 1 − safety·dispersion because his SLA
// model counts violations only at 100 % utilization; the paper's cost model
// (§3.3) starts charging at β = 70 %, so the adaptive margin is anchored at
// the snapshot's overload threshold instead — the volatility-adaptive
// safety margin is preserved, the violation boundary is the cost model's.
type adaptive struct {
	name       string
	safety     float64
	fallback   float64
	minHistory int
	dispersion func([]float64) float64
}

var _ Detector = adaptive{}

func (a adaptive) Name() string { return a.name }

func (a adaptive) threshold(s *sim.Snapshot, host int) float64 {
	h := s.HostHistory[host]
	if len(h) < a.minHistory {
		return a.fallback
	}
	thr := s.OverloadThreshold * (1 - a.safety*a.dispersion(h))
	if thr < 0 {
		thr = 0
	}
	return thr
}

func (a adaptive) Overloaded(s *sim.Snapshot, host int) bool {
	return s.HostUtil[host] > a.threshold(s, host)
}

func (a adaptive) TargetUtilization(s *sim.Snapshot, host int) float64 {
	return a.threshold(s, host)
}

// NewIQR returns the interquartile-range detector: threshold
// 1 − safety·IQR(history) (Beloglazov's safety 1.5).
func NewIQR(safety float64) (Detector, error) {
	if safety <= 0 {
		return nil, fmt.Errorf("consolidation: IQR safety %g must be positive", safety)
	}
	return adaptive{
		name: "IQR", safety: safety, fallback: 0.7, minHistory: 10,
		dispersion: stats.IQR,
	}, nil
}

// NewMAD returns the median-absolute-deviation detector: threshold
// 1 − safety·MAD(history) (Beloglazov's safety 2.5).
func NewMAD(safety float64) (Detector, error) {
	if safety <= 0 {
		return nil, fmt.Errorf("consolidation: MAD safety %g must be positive", safety)
	}
	return adaptive{
		name: "MAD", safety: safety, fallback: 0.7, minHistory: 10,
		dispersion: stats.MAD,
	}, nil
}

// lr is the local-regression detector: the host is overloaded when the
// Loess-extrapolated next utilization, inflated by a safety factor,
// reaches the overload threshold β (Beloglazov's original compares against
// 1; see the adaptive type's doc comment for why β anchors it here).
type lr struct {
	name       string
	safety     float64
	fallback   float64
	minHistory int
	robust     bool
}

var _ Detector = lr{}

// NewLR returns the local-regression detector (Beloglazov's safety 1.2).
func NewLR(safety float64) (Detector, error) {
	if safety <= 0 {
		return nil, fmt.Errorf("consolidation: LR safety %g must be positive", safety)
	}
	return lr{name: "LR", safety: safety, fallback: 0.7, minHistory: 10}, nil
}

// NewLRR returns the robust local-regression detector.
func NewLRR(safety float64) (Detector, error) {
	if safety <= 0 {
		return nil, fmt.Errorf("consolidation: LRR safety %g must be positive", safety)
	}
	return lr{name: "LRR", safety: safety, fallback: 0.7, minHistory: 10, robust: true}, nil
}

func (d lr) Name() string { return d.name }

func (d lr) Overloaded(s *sim.Snapshot, host int) bool {
	h := s.HostHistory[host]
	if len(h) < d.minHistory {
		return s.HostUtil[host] > d.fallback
	}
	var pred float64
	var err error
	if d.robust {
		pred, err = stats.RobustLoessPredict(h, 1, 4)
	} else {
		pred, err = stats.LoessPredict(h, 1)
	}
	if err != nil {
		return s.HostUtil[host] > d.fallback
	}
	return d.safety*pred >= s.OverloadThreshold
}

func (d lr) TargetUtilization(s *sim.Snapshot, host int) float64 {
	// Shed VMs until the inflated prediction would sit at β, i.e. bring
	// the current utilization under β/safety.
	return s.OverloadThreshold / d.safety
}
