// Package topology implements the data-center network topologies the
// paper's §7 names as future work ("to leverage knowledge of the network
// topology like fat-trees"): a k-ary fat-tree host layout with hop-count
// distances, and a migration-time model that scales the paper's RAM/B
// estimate with network distance. Plugging topology.MigrationModel into
// sim.Config.Migration makes every policy's migration downtime
// topology-aware without any algorithmic change — exactly the modularity
// §3.1 claims for the cost model.
package topology

import (
	"fmt"

	"megh/internal/sim"
)

// FatTree is a k-ary fat-tree (Leiserson): k pods, each with (k/2)² hosts
// hanging off k/2 edge switches; (k/2)² core switches connect the pods.
// Hosts are indexed 0..k³/4−1 in pod-major, edge-major order.
type FatTree struct {
	k int
}

// NewFatTree builds a k-ary fat-tree. k must be even and ≥ 2.
func NewFatTree(k int) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity %d must be even and ≥ 2", k)
	}
	return &FatTree{k: k}, nil
}

// FatTreeFor returns the smallest fat-tree with at least n hosts.
func FatTreeFor(n int) (*FatTree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: host count %d must be positive", n)
	}
	for k := 2; ; k += 2 {
		t := &FatTree{k: k}
		if t.Hosts() >= n {
			return t, nil
		}
	}
}

// K returns the switch arity.
func (t *FatTree) K() int { return t.k }

// Hosts returns the number of host ports, k³/4.
func (t *FatTree) Hosts() int { return t.k * t.k * t.k / 4 }

// hostsPerEdge and hostsPerPod describe the layout.
func (t *FatTree) hostsPerEdge() int { return t.k / 2 }
func (t *FatTree) hostsPerPod() int  { return t.k * t.k / 4 }

// Pod returns the pod index of a host.
func (t *FatTree) Pod(host int) int {
	t.check(host)
	return host / t.hostsPerPod()
}

// Edge returns the global edge-switch index of a host.
func (t *FatTree) Edge(host int) int {
	t.check(host)
	return host / t.hostsPerEdge()
}

// Hops returns the switch-hop count of the shortest path between two
// hosts: 0 to itself, 2 under the same edge switch, 4 within a pod, 6
// across pods (up to the core and back down).
func (t *FatTree) Hops(a, b int) int {
	t.check(a)
	t.check(b)
	switch {
	case a == b:
		return 0
	case t.Edge(a) == t.Edge(b):
		return 2
	case t.Pod(a) == t.Pod(b):
		return 4
	default:
		return 6
	}
}

func (t *FatTree) check(host int) {
	if host < 0 || host >= t.Hosts() {
		panic(fmt.Sprintf("topology: host %d out of range [0,%d)", host, t.Hosts()))
	}
}

// MigrationModel scales the default RAM/bottleneck-bandwidth migration
// time by the fat-tree path length: crossing more switch tiers shares more
// oversubscribed links, so copies take longer. Seconds are multiplied by
// 1 + HopFactor·(hops/2 − 1) for hops ≥ 2 (same-edge migrations keep the
// base time).
type MigrationModel struct {
	// Tree is the topology; hosts beyond Tree.Hosts() are mapped onto it
	// modulo its size (so a 800-host cluster can reuse a 512-port tree in
	// experiments without failing hard — exact studies should size the
	// tree with FatTreeFor).
	Tree *FatTree
	// HopFactor is the per-tier slowdown (default 0.5 when zero).
	HopFactor float64
}

var _ sim.MigrationTimeModel = (*MigrationModel)(nil)

// NewMigrationModel builds a topology-aware migration-time model for a
// cluster of numHosts hosts.
func NewMigrationModel(numHosts int, hopFactor float64) (*MigrationModel, error) {
	if hopFactor < 0 {
		return nil, fmt.Errorf("topology: negative hop factor %g", hopFactor)
	}
	tree, err := FatTreeFor(numHosts)
	if err != nil {
		return nil, err
	}
	if hopFactor == 0 {
		hopFactor = 0.5
	}
	return &MigrationModel{Tree: tree, HopFactor: hopFactor}, nil
}

// MigrationSeconds implements sim.MigrationTimeModel.
func (m *MigrationModel) MigrationSeconds(s *sim.Snapshot, vm, dest int) float64 {
	src := s.VMHost[vm]
	bw := s.HostSpecs[src].BandwidthMbps
	if b := s.HostSpecs[dest].BandwidthMbps; b < bw {
		bw = b
	}
	if bw <= 0 {
		return 0
	}
	base := s.VMSpecs[vm].RAMMB * 8 / bw
	n := m.Tree.Hosts()
	hops := m.Tree.Hops(src%n, dest%n)
	if hops <= 2 {
		return base
	}
	return base * (1 + m.HopFactor*(float64(hops)/2-1))
}
