package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

func TestNewFatTreeValidation(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		if _, err := NewFatTree(k); err == nil {
			t.Errorf("k = %d should be rejected", k)
		}
	}
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if ft.K() != 4 {
		t.Fatal("K mismatch")
	}
}

func TestFatTreeHostCounts(t *testing.T) {
	cases := map[int]int{2: 2, 4: 16, 6: 54, 8: 128, 48: 27648}
	for k, want := range cases {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		if got := ft.Hosts(); got != want {
			t.Errorf("k=%d: Hosts = %d, want %d (k³/4)", k, got, want)
		}
	}
}

func TestFatTreeFor(t *testing.T) {
	ft, err := FatTreeFor(100)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Hosts() < 100 {
		t.Fatalf("FatTreeFor(100) has %d hosts", ft.Hosts())
	}
	// Must be minimal: the next smaller even arity cannot fit 100.
	smaller, _ := NewFatTree(ft.K() - 2)
	if smaller.Hosts() >= 100 {
		t.Fatalf("FatTreeFor not minimal: k=%d already fits", ft.K()-2)
	}
	if _, err := FatTreeFor(0); err == nil {
		t.Fatal("FatTreeFor(0) should error")
	}
}

func TestFatTreeHops(t *testing.T) {
	ft, err := NewFatTree(4) // 16 hosts, 4 pods of 4, edges of 2
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 2},  // same edge switch (hosts 0,1)
		{0, 2, 4},  // same pod (hosts 0..3), different edge
		{0, 4, 6},  // different pod
		{5, 4, 2},  // same edge in pod 1
		{15, 0, 6}, // far corners
	}
	for _, c := range cases {
		if got := ft.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFatTreePodEdge(t *testing.T) {
	ft, _ := NewFatTree(4)
	if ft.Pod(0) != 0 || ft.Pod(4) != 1 || ft.Pod(15) != 3 {
		t.Fatal("Pod mapping wrong")
	}
	if ft.Edge(0) != ft.Edge(1) || ft.Edge(1) == ft.Edge(2) {
		t.Fatal("Edge mapping wrong")
	}
}

func TestFatTreeBoundsPanic(t *testing.T) {
	ft, _ := NewFatTree(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range host")
		}
	}()
	ft.Hops(0, 16)
}

// Property: Hops is a symmetric pseudo-metric taking values {0,2,4,6}.
func TestQuickHopsMetric(t *testing.T) {
	ft, _ := NewFatTree(8) // 128 hosts
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := r.Intn(128), r.Intn(128)
		h := ft.Hops(a, b)
		if h != ft.Hops(b, a) {
			return false
		}
		if a == b {
			return h == 0
		}
		return h == 2 || h == 4 || h == 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func buildTopoSnapshot(t *testing.T, nHosts int) *sim.Snapshot {
	t.Helper()
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := []sim.VMSpec{{MIPS: 1000, RAMMB: 1000, BandwidthMbps: 100}}
	traces := []workload.Trace{{0.5}}
	var snap *sim.Snapshot
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
		InitialPlacement: sim.PlacementRoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&grab{&snap}); err != nil {
		t.Fatal(err)
	}
	return snap
}

type grab struct{ out **sim.Snapshot }

func (grab) Name() string { return "grab" }
func (g *grab) Decide(s *sim.Snapshot) []sim.Migration {
	c := *s
	c.VMHost = append([]int(nil), s.VMHost...)
	*g.out = &c
	return nil
}

func TestMigrationModelScalesWithDistance(t *testing.T) {
	snap := buildTopoSnapshot(t, 16)
	m, err := NewMigrationModel(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// VM 0 on host 0 (round-robin). Base time: 1000 MiB × 8 / 1000 Mbps = 8 s.
	base := 8.0
	if got := m.MigrationSeconds(snap, 0, 1); math.Abs(got-base) > 1e-9 {
		t.Fatalf("same-edge migration = %g, want base %g", got, base)
	}
	if got := m.MigrationSeconds(snap, 0, 2); math.Abs(got-base*1.5) > 1e-9 {
		t.Fatalf("same-pod migration = %g, want %g", got, base*1.5)
	}
	if got := m.MigrationSeconds(snap, 0, 15); math.Abs(got-base*2) > 1e-9 {
		t.Fatalf("cross-pod migration = %g, want %g", got, base*2)
	}
}

func TestNewMigrationModelValidation(t *testing.T) {
	if _, err := NewMigrationModel(16, -1); err == nil {
		t.Fatal("negative hop factor should error")
	}
	m, err := NewMigrationModel(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.HopFactor != 0.5 {
		t.Fatalf("default hop factor = %g, want 0.5", m.HopFactor)
	}
}

// TestTopologyAwareSimulationEndToEnd plugs the model into a full run and
// verifies topology-scaled downtime shows up in the SLA accounting.
func TestTopologyAwareSimulationEndToEnd(t *testing.T) {
	lin, _ := power.NewLinear("test", 100, 200)
	hosts := make([]sim.HostSpec, 16)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := []sim.VMSpec{{MIPS: 1000, RAMMB: 1000, BandwidthMbps: 100}}
	model, err := NewMigrationModel(16, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(dest int) float64 {
		s, err := sim.New(sim.Config{
			Hosts: hosts, VMs: vms,
			Traces:           []workload.Trace{{0.5}},
			Steps:            1,
			InitialPlacement: sim.PlacementRoundRobin,
			Migration:        model,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(&scripted{dest: dest})
		if err != nil {
			t.Fatal(err)
		}
		return res.VMDowntimeFrac[0]
	}
	near := run(1) // same edge
	far := run(15) // cross-pod
	if !(far > near && near > 0) {
		t.Fatalf("downtime near = %g, far = %g; want 0 < near < far", near, far)
	}
}

type scripted struct{ dest int }

func (scripted) Name() string { return "scripted" }
func (p *scripted) Decide(s *sim.Snapshot) []sim.Migration {
	if s.Step == 0 {
		return []sim.Migration{{VM: 0, Dest: p.dest}}
	}
	return nil
}
