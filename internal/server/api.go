// Package server exposes the Megh learner as a long-running,
// multi-tenant scheduling service. Each named session is one data
// center's "global resource manager" (paper §3.1) — its own learner, its
// own MDP instance, its own tracer ring and metrics — so one process
// serves many independent data centers concurrently. VMMs (or a
// monitoring pipeline) POST utilization snapshots; the service answers
// with live-migration decisions, learns from posted cost feedback, and
// checkpoints each session's Q-table to disk so restarts lose nothing.
// Under a configured max-sessions cap, idle learners are checkpointed and
// evicted from memory LRU-first, then restored lazily on their next
// touch.
//
// API (JSON over HTTP). /v2 is the session surface:
//
//	GET    /v2/sessions                   → SessionListResponse
//	PUT    /v2/sessions/{id}              SessionSpec → SessionInfo (201 created / 200 idempotent)
//	GET    /v2/sessions/{id}              → SessionInfo (never restores an evicted learner)
//	DELETE /v2/sessions/{id}              → 204 (removes the checkpoint file too)
//	POST   /v2/sessions/{id}/decide       StateRequest → DecideResponse
//	POST   /v2/sessions/{id}/decide/batch BatchDecideRequest → BatchDecideResponse
//	POST   /v2/sessions/{id}/feedback     FeedbackRequest → 204
//	GET    /v2/sessions/{id}/stats        → SessionStatsResponse
//	POST   /v2/sessions/{id}/checkpoint   → CheckpointResponse
//	GET    /v2/sessions/{id}/trace/tail   → TraceTailResponse
//	GET    /v2/sessions/{id}/metrics      → per-session Prometheus text
//
// /v1 is the deprecated single-tenant shim, bound to the reserved
// "default" session (pinned, never evicted):
//
//	POST /v1/decide      StateRequest  → DecideResponse
//	POST /v1/feedback    FeedbackRequest → 204
//	GET  /v1/stats       → StatsResponse
//	GET  /v1/trace/tail  → TraceTailResponse (newest buffered trace events)
//	POST /v1/checkpoint  → CheckpointResponse (writes the state file)
//
// Operational routes:
//
//	GET  /metrics        → Prometheus text exposition (service + default session)
//	GET  /healthz        → 200 "ok"
//	GET  /debug/pprof/*  → standard net/http/pprof profiles
//
// Cluster mode (Config.Cluster) shards the /v2 sessions across several
// meghd nodes by consistent hashing: requests for sessions owned
// elsewhere are proxied one hop to the owner (X-Megh-Proxied names it),
// checkpoints replicate to the session's ring successors, and the
// elected leader rebalances sessions after membership changes. The
// cluster surface:
//
//	GET    /v2/cluster               → ClusterInfoResponse (enabled=false when unclustered)
//	GET    /v2/cluster/route/{id}    → ClusterRouteResponse (owner + replica set for an ID)
//	PUT    /v2/cluster/replicas/{id} checkpoint image → ClusterReplicaResponse (validated, atomic)
//	GET    /v2/cluster/replicas/{id} → stored image (octet-stream)
//	DELETE /v2/cluster/replicas/{id} → 204 (idempotent)
//	POST   /v2/cluster/rebalance     → ClusterRebalanceResponse (one handoff sweep)
//
// Every error response, on every route and from every layer (including
// the mux's own 404/405), is the JSON errorResponse envelope
// {"error": "..."} with a meaningful status code, and every response
// carries an X-Request-ID header — echoed from the request when the
// caller set one, generated otherwise. Decide/feedback traffic beyond the
// configured in-flight bound is refused with 429 plus Retry-After rather
// than queueing without limit.
package server

import (
	"encoding/json"
	"fmt"
	"math"

	"megh/internal/power"
	"megh/internal/sim"
)

// HostState describes one physical machine in a snapshot.
type HostState struct {
	// MIPS, RAMMB, BandwidthMbps are the static capacities.
	MIPS          float64 `json:"mips"`
	RAMMB         float64 `json:"ram_mb"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	// PowerModel names the utilization→Watts curve: "g4", "g5", or
	// "linear:<idle>:<max>". Only used for reporting; decisions do not
	// need it, so it may be empty.
	PowerModel string `json:"power_model,omitempty"`
	// Failed marks an injected/observed outage.
	Failed bool `json:"failed,omitempty"`
}

// VMState describes one virtual machine in a snapshot.
type VMState struct {
	// Host is the index of the PM currently running the VM.
	Host int `json:"host"`
	// Utilization is the demanded fraction of the VM's requested MIPS.
	Utilization float64 `json:"utilization"`
	// MIPS, RAMMB, BandwidthMbps are the requested resources.
	MIPS          float64 `json:"mips"`
	RAMMB         float64 `json:"ram_mb"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
}

// StateRequest is one monitoring interval's snapshot.
type StateRequest struct {
	Step  int         `json:"step"`
	Hosts []HostState `json:"hosts"`
	VMs   []VMState   `json:"vms"`
}

// MigrationDecision is one ordered live migration.
type MigrationDecision struct {
	VM   int `json:"vm"`
	Dest int `json:"dest"`
}

// DecideResponse carries the decisions for the posted snapshot.
type DecideResponse struct {
	Step       int                 `json:"step"`
	Migrations []MigrationDecision `json:"migrations"`
}

// FeedbackRequest reports the realised cost of the previous interval.
type FeedbackRequest struct {
	Step     int     `json:"step"`
	StepCost float64 `json:"step_cost"`
	// Optional decomposition, informational only.
	EnergyCost   float64 `json:"energy_cost,omitempty"`
	SLACost      float64 `json:"sla_cost,omitempty"`
	ResourceCost float64 `json:"resource_cost,omitempty"`
}

// StatsResponse reports the learner's internals.
type StatsResponse struct {
	NumVMs      int     `json:"num_vms"`
	NumHosts    int     `json:"num_hosts"`
	Decisions   int     `json:"decisions"`
	QTableNNZ   int     `json:"qtable_nnz"`
	Temperature float64 `json:"temperature"`
}

// TraceTailResponse carries the newest buffered trace events, oldest
// first. Enabled is false (and Events empty) when the service runs
// without a tracer.
type TraceTailResponse struct {
	Enabled bool              `json:"enabled"`
	Events  []json.RawMessage `json:"events,omitempty"`
}

// CheckpointResponse reports where the learner state was written.
type CheckpointResponse struct {
	Path  string `json:"path"`
	Bytes int    `json:"bytes"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Validate checks a snapshot for structural problems before it reaches
// the learner.
func (r *StateRequest) Validate() error {
	if len(r.Hosts) == 0 {
		return fmt.Errorf("server: snapshot has no hosts")
	}
	if len(r.VMs) == 0 {
		return fmt.Errorf("server: snapshot has no VMs")
	}
	if r.Step < 0 {
		return fmt.Errorf("server: negative step %d", r.Step)
	}
	for i, h := range r.Hosts {
		if !finitePositive(h.MIPS) || !finitePositive(h.RAMMB) {
			return fmt.Errorf("server: host %d has invalid capacity", i)
		}
		if math.IsNaN(h.BandwidthMbps) || math.IsInf(h.BandwidthMbps, 0) || h.BandwidthMbps < 0 {
			return fmt.Errorf("server: host %d has invalid bandwidth %g", i, h.BandwidthMbps)
		}
	}
	for j, v := range r.VMs {
		if v.Host < 0 || v.Host >= len(r.Hosts) {
			return fmt.Errorf("server: VM %d placed on unknown host %d", j, v.Host)
		}
		if !finitePositive(v.MIPS) || !finitePositive(v.RAMMB) {
			return fmt.Errorf("server: VM %d has invalid resources", j)
		}
		if math.IsNaN(v.BandwidthMbps) || math.IsInf(v.BandwidthMbps, 0) || v.BandwidthMbps < 0 {
			return fmt.Errorf("server: VM %d has invalid bandwidth %g", j, v.BandwidthMbps)
		}
		// NaN fails ordered comparisons in both directions, so the range
		// check alone would wave it through — reject non-finite explicitly.
		if math.IsNaN(v.Utilization) || v.Utilization < 0 || v.Utilization > 1 {
			return fmt.Errorf("server: VM %d utilization %g out of [0,1]", j, v.Utilization)
		}
	}
	return nil
}

// finitePositive reports whether v is a finite value > 0.
func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// snapshot converts the request into the read-only view the policies
// consume. The β threshold and τ come from the server configuration.
func (r *StateRequest) snapshot(overload float64, stepSeconds float64) *sim.Snapshot {
	nH, nV := len(r.Hosts), len(r.VMs)
	s := &sim.Snapshot{
		Step:              r.Step,
		StepSeconds:       stepSeconds,
		OverloadThreshold: overload,
		VMHost:            make([]int, nV),
		VMUtil:            make([]float64, nV),
		VMMIPS:            make([]float64, nV),
		VMSpecs:           make([]sim.VMSpec, nV),
		HostUtil:          make([]float64, nH),
		HostVMs:           make([][]int, nH),
		HostSpecs:         make([]sim.HostSpec, nH),
		HostHistory:       make([][]float64, nH),
		VMHistory:         make([][]float64, nV),
		HostFailed:        make([]bool, nH),
	}
	for i, h := range r.Hosts {
		s.HostSpecs[i] = sim.HostSpec{
			MIPS:          h.MIPS,
			RAMMB:         h.RAMMB,
			BandwidthMbps: h.BandwidthMbps,
			Power:         parsePowerModel(h.PowerModel),
		}
		s.HostFailed[i] = h.Failed
	}
	for j, v := range r.VMs {
		s.VMHost[j] = v.Host
		s.VMUtil[j] = v.Utilization
		s.VMMIPS[j] = v.Utilization * v.MIPS
		s.VMSpecs[j] = sim.VMSpec{MIPS: v.MIPS, RAMMB: v.RAMMB, BandwidthMbps: v.BandwidthMbps}
		s.HostVMs[v.Host] = append(s.HostVMs[v.Host], j)
	}
	for i := range s.HostUtil {
		var mips float64
		for _, j := range s.HostVMs[i] {
			mips += s.VMMIPS[j]
		}
		s.HostUtil[i] = mips / s.HostSpecs[i].MIPS
	}
	return s
}

// parsePowerModel resolves the optional power-model name; unknown or empty
// names fall back to the G4 table (decisions never read it, it only keeps
// the HostSpec valid).
func parsePowerModel(name string) power.Model {
	switch name {
	case "g5":
		return power.HPProLiantG5()
	default:
		return power.HPProLiantG4()
	}
}
