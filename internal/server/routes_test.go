package server

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite routes.golden from the live route table")

// TestRoutesGolden pins the service's HTTP surface: the sorted mux
// patterns must match the committed routes.golden file, so any API
// addition, removal, or rename shows up as an explicit diff in review.
// Regenerate deliberately with:
//
//	go test ./internal/server/ -run TestRoutesGolden -update
func TestRoutesGolden(t *testing.T) {
	svc, err := New(Config{NumVMs: 2, NumHosts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(svc.Routes(), "\n") + "\n"

	const golden = "routes.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create it): %v", golden, err)
	}
	if got != string(want) {
		t.Errorf("route table changed — update %s (-update) and document the change:\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}
