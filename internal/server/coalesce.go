package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"megh/internal/core"
	"megh/internal/sim"
)

// This file holds cross-request batch coalescing: concurrent decide and
// decide/batch requests against one session are merged into a single
// core.DecideBatch call per session-lock acquisition, and the results are
// demultiplexed back to each waiter in arrival order.
//
// Mechanics: the first request to arrive for a session with no open round
// becomes the round's *leader*. If no earlier round is still executing,
// the leader fires immediately — an uncontended decide pays no added
// latency. While a previous round's merged batch is executing, the leader
// instead lingers for up to the configured window (Config.CoalesceLinger,
// default DefCoalesceLinger) or until that batch completes, whichever is
// first — the execution window is exactly when concurrent requests pile
// up, so this is group commit: everything that arrives behind an
// in-flight decide merges into the next round. On firing, the leader
// detaches the round, concatenates every waiter's items in join order,
// runs one DecideBatch under one withLearner acquisition, slices the
// results back per waiter, and wakes them. A round also fires early when
// its item count reaches MaxBatchItems; a joiner that would push it past
// the cap instead fires the open round immediately and starts a new one
// as leader.
//
// Ordering guarantee: within one merged round, items are decided in waiter
// join order and each response carries exactly its own items' decisions in
// request order. Across rounds, decides serialise on the session lock;
// concurrent requests that land in different rounds have no relative
// ordering guarantee — the same contract they had without coalescing.
//
// Decision identity: DecideBatch is decision-identical to the sequential
// Observe/Decide loop (core's contract), so coalescing changes *when* the
// learner runs, never what it decides — pinned end to end by
// TestCoalescingPreservesDecisions.

// DefCoalesceLinger is the coalescing window when Config.CoalesceLinger is
// zero: the longest a round waits behind an in-flight decide before giving
// up on merging and contending for the session lock itself. Long enough to
// span a typical decide, short against any realistic monitoring interval.
// Negative disables coalescing. (An uncontended round never waits at all,
// so the window does not tax idle-session latency.)
const DefCoalesceLinger = 100 * time.Microsecond

// coalesceWaiter carries one request's items into a round and its slice of
// the results back out.
type coalesceWaiter struct {
	items []core.BatchItem
	out   [][]sim.Migration
	err   error
}

// coalesceRound is one open merge window.
type coalesceRound struct {
	waiters []*coalesceWaiter
	items   int
	// fired guards the fire channel's single close; both the capacity check
	// at join and a displacing joiner may try to fire. Written under the
	// coalescer mutex.
	fired bool
	// fire wakes the lingering leader early (capacity reached / displaced).
	fire chan struct{}
	// done is closed by the leader once every waiter's out/err is set.
	done chan struct{}
}

// fireNowLocked wakes the leader before its linger expires. Callers hold
// the coalescer mutex.
func (r *coalesceRound) fireNowLocked() {
	if !r.fired {
		r.fired = true
		close(r.fire)
	}
}

// coalescer is a session's merge point. The zero value is ready to use.
type coalescer struct {
	mu  sync.Mutex
	cur *coalesceRound
	// lastDone is the done channel of the most recently dispatched round:
	// open while that round's merged batch is still executing. A new
	// leader waits on it (capped by the linger window) before firing, so a
	// round sweeps up everything that arrives during the previous round's
	// execution; nil or closed, the leader fires immediately.
	lastDone chan struct{}
}

// noteDecidedLocked records a decided batch in the session's bookkeeping.
// Callers hold the session lock (it runs inside withLearner's fn).
func (s *session) noteDecidedLocked(items []core.BatchItem) {
	s.decisions += len(items)
	s.lastStep = items[len(items)-1].Snap.Step
	if s.health != nil {
		// One call covers the whole batch: the tracker diffs the learner's
		// cumulative stats, so deltas stay exact.
		s.health.AfterDecide()
	}
}

// decideDirect is the coalescing-off path: one request, one learner
// acquisition.
func (s *Service) decideDirect(sess *session, items []core.BatchItem) ([][]sim.Migration, error) {
	var out [][]sim.Migration
	err := s.mgr.withLearner(sess, func(l *core.Megh) error {
		out = l.DecideBatch(items)
		sess.noteDecidedLocked(items)
		return nil
	})
	return out, err
}

// coalesceDecide routes one request's items through the session's
// coalescer (or straight to the learner when coalescing is disabled) and
// returns the request's own per-item decision slices.
func (s *Service) coalesceDecide(sess *session, items []core.BatchItem) ([][]sim.Migration, error) {
	if s.coalesceLinger <= 0 {
		return s.decideDirect(sess, items)
	}
	w := &coalesceWaiter{items: items}
	c := &sess.coal
	c.mu.Lock()
	round := c.cur
	if round != nil && round.items+len(items) > MaxBatchItems {
		// Joining would overflow the batch cap: fire the open round now and
		// open a fresh one with this request as leader.
		round.fireNowLocked()
		round = nil
		c.cur = nil
	}
	leader := round == nil
	var prev chan struct{}
	if leader {
		round = &coalesceRound{fire: make(chan struct{}), done: make(chan struct{})}
		c.cur = round
		prev = c.lastDone
	}
	round.waiters = append(round.waiters, w)
	round.items += len(items)
	if round.items >= MaxBatchItems {
		round.fireNowLocked()
	}
	c.mu.Unlock()

	if leader {
		s.leadRound(sess, round, prev)
	} else {
		<-round.done
	}
	return w.out, w.err
}

// leadRound waits out the merge window, detaches the round, runs the
// merged batch, and demultiplexes the results. The merge window is zero
// when no earlier round is still executing (prev nil or closed): an
// uncontended decide fires immediately. Behind an in-flight round it is
// min(remaining execution time, linger) — group commit.
func (s *Service) leadRound(sess *session, round *coalesceRound, prev chan struct{}) {
	if prev != nil {
		select {
		case <-prev:
		case <-round.fire:
		default:
			timer := time.NewTimer(s.coalesceLinger)
			select {
			case <-prev:
			case <-round.fire:
			case <-timer.C:
			}
			timer.Stop()
		}
	}
	c := &sess.coal
	c.mu.Lock()
	if c.cur == round {
		c.cur = nil
	}
	round.fired = true
	c.lastDone = round.done
	waiters := round.waiters
	total := round.items
	c.mu.Unlock()
	// From here the round is closed: no joiner can reach it, so waiters and
	// total are stable without the lock.

	combined := make([]core.BatchItem, 0, total)
	for _, w := range waiters {
		combined = append(combined, w.items...)
	}
	s.coalRounds.Inc()
	s.coalItems.Add(int64(total))
	if len(waiters) > 1 {
		s.coalMerged.Add(int64(len(waiters)))
	}

	// A panic below (learner fed a state it cannot accept) must not strand
	// the followers on round.done: it is converted into an error delivered
	// to every waiter, which each handler answers as a 500.
	outs, err := func() (outs [][]sim.Migration, err error) {
		defer func() {
			if p := recover(); p != nil {
				outs, err = nil, fmt.Errorf("internal error: coalesced decide: %v", p)
			}
		}()
		err = s.mgr.withLearner(sess, func(l *core.Megh) error {
			outs = l.DecideBatch(combined)
			sess.noteDecidedLocked(combined)
			return nil
		})
		return outs, err
	}()

	off := 0
	for _, w := range waiters {
		if err != nil {
			w.err = err
		} else {
			w.out = outs[off : off+len(w.items)]
		}
		off += len(w.items)
	}
	close(round.done)
}

// admitGate bounds concurrent decide/feedback work, weighted by batch item
// count: a K-item batch holds K slots, so -max-inflight bounds in-flight
// *decisions*, not requests. A nil gate admits everything.
type admitGate struct {
	mu       sync.Mutex
	capacity int
	used     int
}

// tryAcquire claims n slots, returning the release closure, or nil when
// the gate is full. n clamps to [1, capacity], so a maximum-size batch is
// always admittable on an idle gate rather than deadlocked by its own
// weight.
func (g *admitGate) tryAcquire(n int) (release func()) {
	if g == nil {
		return func() {}
	}
	if n < 1 {
		n = 1
	}
	if n > g.capacity {
		n = g.capacity
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.used+n > g.capacity {
		return nil
	}
	g.used += n
	return func() {
		g.mu.Lock()
		g.used -= n
		g.mu.Unlock()
	}
}

// admitN acquires weight admission slots. A nil release means the request
// was refused with 429 (+ Retry-After) and the handler must return;
// otherwise the caller defers release().
func (s *Service) admitN(w http.ResponseWriter, weight int) (release func()) {
	if release = s.gate.tryAcquire(weight); release != nil {
		return release
	}
	s.throttled.Inc()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("server: admission gate full (%d decision slots)", s.gate.capacity))
	return nil
}
