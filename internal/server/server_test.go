package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"megh/internal/core"
	"megh/internal/obs"
	"megh/internal/trace"
)

// testWorld builds a small valid snapshot: nVMs VMs spread round-robin on
// nHosts hosts, with VM 0 optionally overloading host 0.
func testWorld(nVMs, nHosts int, hotVM0 bool) StateRequest {
	req := StateRequest{Step: 0}
	for i := 0; i < nHosts; i++ {
		req.Hosts = append(req.Hosts, HostState{
			MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, PowerModel: "g4",
		})
	}
	for j := 0; j < nVMs; j++ {
		util := 0.3
		host := j % nHosts
		if hotVM0 {
			if j == 0 {
				util = 1.0
			}
			if j == 1 {
				host = 0 // co-locate with the hot VM so host 0 overloads
			}
		}
		req.VMs = append(req.VMs, VMState{
			Host: host, Utilization: util,
			MIPS: 2500, RAMMB: 1024, BandwidthMbps: 100,
		})
	}
	return req
}

func newTestService(t *testing.T, nVMs, nHosts int, checkpoint string) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(Config{
		NumVMs: nVMs, NumHosts: nHosts,
		CheckpointPath: checkpoint, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumVMs: 0, NumHosts: 2}); err == nil {
		t.Fatal("zero VMs should error")
	}
	if _, err := New(Config{NumVMs: 2, NumHosts: 2, OverloadThreshold: 2}); err == nil {
		t.Fatal("bad threshold should error")
	}
	if _, err := New(Config{NumVMs: 2, NumHosts: 2, StepSeconds: -1}); err == nil {
		t.Fatal("negative τ should error")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestDecideRespondsToOverload(t *testing.T) {
	// Host 0 holds the hot VM 0 (2500 MIPS at 100%) plus VM 1, putting it
	// at 81% > β; the other VMs occupy hosts 2–5 too heavily to absorb
	// VM 0, so the learner must wake the empty host 6 (overload sheds may
	// wake sleeping hosts as a fallback).
	_, ts := newTestService(t, 6, 7, "")
	sawMigration := false
	for step := 0; step < 20 && !sawMigration; step++ {
		world := testWorld(6, 7, true)
		world.Step = step
		resp := postJSON(t, ts.URL+"/v1/decide", world)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decide status %d", resp.StatusCode)
		}
		var out DecideResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		for _, m := range out.Migrations {
			if m.VM == 0 && m.Dest != 0 {
				sawMigration = true
			}
		}
		fb := postJSON(t, ts.URL+"/v1/feedback", FeedbackRequest{Step: step, StepCost: 0.5})
		if fb.StatusCode != http.StatusNoContent {
			t.Fatalf("feedback status %d", fb.StatusCode)
		}
	}
	if !sawMigration {
		t.Fatal("service never migrated the hot VM off its overloaded host")
	}
}

func TestDecideRejectsMalformed(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	cases := []StateRequest{
		{},                     // empty
		testWorld(4, 2, false), // host count mismatch
		testWorld(3, 3, false), // VM count mismatch
		func() StateRequest { w := testWorld(4, 3, false); w.VMs[0].Host = 99; return w }(),
		func() StateRequest { w := testWorld(4, 3, false); w.VMs[1].Utilization = 2; return w }(),
		func() StateRequest { w := testWorld(4, 3, false); w.Step = -1; return w }(),
		func() StateRequest { w := testWorld(4, 3, false); w.Hosts[0].MIPS = 0; return w }(),
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/decide", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Non-JSON body.
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json",
		strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body status %d", resp.StatusCode)
	}
}

func TestFeedbackRejectsNegativeCost(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	resp := postJSON(t, ts.URL+"/v1/feedback", FeedbackRequest{StepCost: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	postJSON(t, ts.URL+"/v1/decide", testWorld(4, 3, true))
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.NumVMs != 4 || stats.NumHosts != 3 {
		t.Fatalf("stats world = %d×%d", stats.NumVMs, stats.NumHosts)
	}
	if stats.Decisions != 1 {
		t.Fatalf("decisions = %d, want 1", stats.Decisions)
	}
	if stats.Temperature <= 0 {
		t.Fatal("temperature missing")
	}
}

func TestCheckpointAndRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "megh.ckpt")
	svc, ts := newTestService(t, 4, 3, path)

	// Exercise the learner, then checkpoint.
	for step := 0; step < 5; step++ {
		world := testWorld(4, 3, true)
		world.Step = step
		postJSON(t, ts.URL+"/v1/decide", world)
		postJSON(t, ts.URL+"/v1/feedback", FeedbackRequest{Step: step, StepCost: 0.4})
	}
	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	var ck CheckpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	if ck.Path != path || ck.Bytes <= 0 {
		t.Fatalf("checkpoint response %+v", ck)
	}
	svc.def.mu.Lock()
	wantTemp := svc.def.learner.Temperature()
	wantNNZ := svc.def.learner.QTableNNZ()
	svc.def.mu.Unlock()

	// A fresh service restores from the file.
	restored, err := New(Config{NumVMs: 4, NumHosts: 3, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if restored.def.learner.Temperature() != wantTemp {
		t.Fatalf("restored temperature %g, want %g",
			restored.def.learner.Temperature(), wantTemp)
	}
	if restored.def.learner.QTableNNZ() != wantNNZ {
		t.Fatalf("restored Q-table %d entries, want %d",
			restored.def.learner.QTableNNZ(), wantNNZ)
	}
}

func TestCheckpointWithoutPathFails(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("status %d, want 412", resp.StatusCode)
	}
}

func TestConcurrentDecides(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				world := testWorld(4, 3, i%2 == 0)
				raw, _ := json.Marshal(world)
				resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(raw))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- nil
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStaleCheckpointRefusedAtStartup is the regression test for the
// dimension-validation bug: restoring a checkpoint from a different world
// size must fail at New time with a clean error, not panic the decide path
// on the first snapshot.
func TestStaleCheckpointRefusedAtStartup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "megh.ckpt")
	_, ts := newTestService(t, 4, 3, path)
	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	// A service for a different world must refuse the stale file.
	_, err := New(Config{NumVMs: 5, NumHosts: 4, CheckpointPath: path})
	if err == nil {
		t.Fatal("stale 4×3 checkpoint restored into a 5×4 service")
	}
	if !strings.Contains(err.Error(), "4×3") || !strings.Contains(err.Error(), "5×4") {
		t.Fatalf("error should name both world sizes, got: %v", err)
	}
}

// TestLearnerPanicBecomesHTTP500 is the regression test for the panic
// guard: a learner panic inside a handler must answer 500 with a JSON
// error body instead of killing the connection.
func TestLearnerPanicBecomesHTTP500(t *testing.T) {
	svc, ts := newTestService(t, 4, 3, "")
	// Simulate a corrupted restore: a learner whose world disagrees with
	// the service configuration.
	bad, err := core.New(core.DefaultConfig(3, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	svc.def.mu.Lock()
	svc.def.learner = bad
	svc.def.mu.Unlock()

	resp := postJSON(t, ts.URL+"/v1/decide", testWorld(4, 3, false))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("500 body is not the JSON error envelope: %v", err)
	}
	if e.Error == "" {
		t.Fatal("500 body carries no error message")
	}
	// The error counter must have recorded it.
	if got := svc.Metrics().Counter("megh_http_errors_total", "",
		obs.Labels{"route": "/v1/decide"}).Value(); got != 1 {
		t.Fatalf("error counter = %d, want 1", got)
	}
}

// TestConcurrentCheckpointsDoNotCorrupt is the regression test for the
// checkpoint temp-file race: concurrent writers must each complete a
// private temp file, leaving a fully written checkpoint whichever rename
// lands last.
func TestConcurrentCheckpointsDoNotCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "megh.ckpt")
	svc, ts := newTestService(t, 4, 3, path)
	for step := 0; step < 3; step++ {
		world := testWorld(4, 3, true)
		world.Step = step
		postJSON(t, ts.URL+"/v1/decide", world)
		postJSON(t, ts.URL+"/v1/feedback", FeedbackRequest{Step: step, StepCost: 0.4})
	}
	const writers = 8
	done := make(chan int, writers)
	for g := 0; g < writers; g++ {
		go func() {
			resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
			done <- resp.StatusCode
		}()
	}
	for g := 0; g < writers; g++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("concurrent checkpoint status %d", code)
		}
	}
	// The surviving file must decode as a complete learner image.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := core.LoadState(f); err != nil {
		t.Fatalf("checkpoint corrupted by concurrent writers: %v", err)
	}
	// No stray temp files may remain.
	leftovers, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("stray temp files left behind: %v", leftovers)
	}
	_ = svc
}

// TestMetricsEndpoint asserts the operational surface: /metrics serves
// valid Prometheus text including the decide-latency histogram, per-route
// request counters, and the learner gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	postJSON(t, ts.URL+"/v1/decide", testWorld(4, 3, true))
	postJSON(t, ts.URL+"/v1/feedback", FeedbackRequest{Step: 0, StepCost: 0.4})
	postJSON(t, ts.URL+"/v1/decide", StateRequest{}) // one 400 for the error counter

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE megh_http_requests_total counter",
		`megh_http_requests_total{route="/v1/decide"} 2`,
		`megh_http_requests_total{route="/v1/feedback"} 1`,
		`megh_http_errors_total{route="/v1/decide"} 1`,
		"# TYPE megh_http_request_seconds histogram",
		`megh_http_request_seconds_bucket{route="/v1/decide",le="+Inf"} 2`,
		`megh_http_request_seconds_count{route="/v1/decide"} 2`,
		"# TYPE megh_decide_seconds histogram",
		"megh_decide_seconds_count 1",
		"# TYPE megh_qtable_nnz gauge",
		"# TYPE megh_temperature gauge",
		"megh_http_in_flight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every sample line must match the exposition grammar.
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)
	for _, l := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed metrics line %q", l)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics body:\n%s", body)
	}
}

func TestTraceTailEndpoint(t *testing.T) {
	tracer, err := trace.New(trace.Options{RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// A decide and a feedback should each leave one event in the ring.
	resp := postJSON(t, ts.URL+"/v1/decide", testWorld(4, 3, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/feedback", FeedbackRequest{Step: 0, StepCost: 1.5, EnergyCost: 1, SLACost: 0.5})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("feedback status %d", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + "/v1/trace/tail?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var tail TraceTailResponse
	if err := json.NewDecoder(get.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	if !tail.Enabled {
		t.Fatal("tail reports tracing disabled")
	}
	if len(tail.Events) != 2 {
		t.Fatalf("tail holds %d events, want 2", len(tail.Events))
	}
	var first, second trace.Event
	if err := json.Unmarshal(tail.Events[0], &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tail.Events[1], &second); err != nil {
		t.Fatal(err)
	}
	if first.Kind != trace.KindDecide || first.Policy == "" {
		t.Fatalf("first event is not a decide event: %+v", first)
	}
	if second.Kind != trace.KindStep || second.StepCost != 1.5 {
		t.Fatalf("second event is not the feedback step event: %+v", second)
	}

	if resp, err := http.Get(ts.URL + "/v1/trace/tail?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad n should 400, got %d", resp.StatusCode)
		}
	}
}

func TestTraceTailDisabled(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	get, err := http.Get(ts.URL + "/v1/trace/tail")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var tail TraceTailResponse
	if err := json.NewDecoder(get.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	if tail.Enabled || len(tail.Events) != 0 {
		t.Fatalf("untraced service must report disabled: %+v", tail)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
	}
}
