package server

import (
	"sync"
	"testing"
)

func TestDecideConcurrentRaceRepro(t *testing.T) {
	_, ts := newTestService(t, 20, 10, "")
	req := testWorld(20, 10, true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(step int) {
			defer wg.Done()
			c := NewClient(ts.URL, nil)
			for i := 0; i < 30; i++ {
				r := req
				r.Step = i
				if _, err := c.Decide(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
