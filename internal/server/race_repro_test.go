package server

import (
	"sync"
	"testing"
)

// TestDecideConcurrentConsistency is the concurrency regression test for the
// scratch-aliasing bug in handleDecide: the handler used to release s.mu
// before copying the learner's decisions into the response, so a concurrent
// Decide could overwrite the scratch slice mid-encoding and one goroutine
// would receive another world's migrations.
//
// Each goroutine therefore gets a DISTINCT world — the VM→host placement is
// rotated by the goroutine index — and every response is checked for
// internal consistency against the request that produced it: the echoed
// step must match, every migration must reference a valid VM and host, and
// no migration may "move" a VM to the host it already occupies in this
// goroutine's world. A decision bleeding across requests trips the last
// check almost immediately, and `go test -race` (part of make check) flags
// the unsynchronized scratch read even when the payloads happen to agree.
func TestDecideConcurrentConsistency(t *testing.T) {
	const nVMs, nHosts, goroutines, rounds = 20, 10, 8, 30
	_, ts := newTestService(t, nVMs, nHosts, "")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := rotatedWorld(nVMs, nHosts, g)
			c := NewClient(ts.URL, nil)
			for i := 0; i < rounds; i++ {
				req.Step = g*rounds + i
				resp, err := c.Decide(req)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Step != req.Step {
					t.Errorf("goroutine %d: sent step %d, response echoes %d", g, req.Step, resp.Step)
					return
				}
				for _, m := range resp.Migrations {
					if m.VM < 0 || m.VM >= nVMs || m.Dest < 0 || m.Dest >= nHosts {
						t.Errorf("goroutine %d: migration out of range: %+v", g, m)
						return
					}
					if m.Dest == req.VMs[m.VM].Host {
						t.Errorf("goroutine %d: migration %+v targets the VM's current host %d — "+
							"decision likely bled in from a concurrent request's world",
							g, m, req.VMs[m.VM].Host)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// rotatedWorld builds a world whose placement is shifted by off hosts, so
// concurrent goroutines disagree about where every VM lives. Host 0 (in the
// rotated frame) is overloaded the same way testWorld's hotVM0 mode does it,
// guaranteeing the learner produces migrations to cross-check.
func rotatedWorld(nVMs, nHosts, off int) StateRequest {
	req := testWorld(nVMs, nHosts, true)
	for j := range req.VMs {
		req.VMs[j].Host = (req.VMs[j].Host + off) % nHosts
	}
	return req
}
